// E1 — The read vs write tradeoff (tutorial I-2, Module II-iv).
//
// Claim: leveling gives cheaper point lookups, tiering gives cheaper
// writes; the gap widens with the size ratio T. Reproduces the canonical
// tradeoff-curve experiment of Monkey/Dostoevsky on the counting env.
//
// Filters are disabled so the raw run-count effect is visible.

#include "bench_common.h"
#include "tuning/cost_model.h"

namespace lsmlab {
namespace bench {
namespace {

void Run() {
  PrintHeader("E1 read/write tradeoff",
              "policy,T,write_amp,model_write_amp_rank,zero_get_ios,"
              "model_zero_ios,existing_get_ios,runs");
  const size_t kN = 60000;
  for (MergePolicy policy : {MergePolicy::kLeveling, MergePolicy::kTiering}) {
    for (int t : {2, 4, 6, 8, 10}) {
      Options options;
      options.merge_policy = policy;
      options.size_ratio = t;
      options.write_buffer_size = 32 << 10;
      options.max_file_size = 32 << 10;
      options.level0_compaction_trigger = 2;
      options.filter_allocation = FilterAllocation::kNone;
      TestDb db = LoadDb(options, kN, 64);

      DBStats stats = db.db->GetStats();
      const GetCost zero = MeasureGets(&db, kN, 2000, /*existing=*/false);
      const GetCost hit = MeasureGets(&db, kN, 2000, /*existing=*/true);

      LsmDesignSpec spec;
      spec.policy = policy == MergePolicy::kLeveling
                        ? LsmDesignSpec::Policy::kLeveling
                        : LsmDesignSpec::Policy::kTiering;
      spec.size_ratio = t;
      spec.num_entries = kN;
      spec.entry_bytes = 72;
      spec.buffer_bytes = options.write_buffer_size;
      spec.filter_bits_per_key = 0;
      LsmCostModel model(spec);

      std::printf("%s,%d,%.2f,%.3f,%.2f,%d,%.2f,%d\n",
                  policy == MergePolicy::kLeveling ? "leveling" : "tiering",
                  t, stats.WriteAmplification(), model.WriteCost(),
                  zero.ios_per_op, model.TotalRuns(), hit.ios_per_op,
                  stats.total_runs);
    }
  }
  std::printf(
      "# expect: leveling write_amp grows with T while zero_get_ios falls;\n"
      "# tiering write_amp stays low while zero_get_ios grows with T.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() { lsmlab::bench::Run(); }
