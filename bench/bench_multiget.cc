// E20 — Batched point lookups (DB::MultiGet) vs looped Get.
//
// Claim: a batch that pins the read view once, prunes through the filters
// before any data I/O, and fetches every distinct data block exactly once
// turns k lookups with locality into ~(distinct blocks) reads instead of
// k. Measured: ns/key and logical block reads per key for looped Get vs
// one MultiGet, at batch sizes {1, 8, 64, 512}, cache-cold (no block
// cache: every fetch is a read) and cache-warm (shared 64 MiB cache).
//
// Batches draw `batch` keys adjacent in key order from the loaded set, the
// locality regime MultiGet's coalescing targets (think index-driven
// secondary lookups or a scatter-gather over a key range).

#include <algorithm>

#include "bench_common.h"
#include "cache/block_cache.h"

namespace lsmlab {
namespace bench {
namespace {

constexpr size_t kEntries = 50000;
constexpr size_t kValueBytes = 64;
constexpr size_t kLookups = 8192;  // per (mode, batch) cell, keys not ops

struct Cell {
  double ns_per_key = 0;
  double blocks_per_key = 0;
};

Cell MeasureLoopedGet(TestDb* t, const std::vector<std::string>& sorted_keys,
                      size_t batch, uint64_t seed) {
  Random rng(seed);
  const uint64_t io_before = t->io()->block_reads.load();
  size_t keys_done = 0;
  std::string value;
  const auto start = std::chrono::steady_clock::now();
  while (keys_done < kLookups) {
    const size_t base = rng.Uniform(sorted_keys.size() - batch);
    for (size_t i = 0; i < batch; i++) {
      t->db->Get({}, sorted_keys[base + i], &value).IgnoreError();
    }
    keys_done += batch;
  }
  const auto end = std::chrono::steady_clock::now();
  Cell c;
  c.ns_per_key =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count() /
      static_cast<double>(keys_done);
  c.blocks_per_key =
      static_cast<double>(t->io()->block_reads.load() - io_before) /
      static_cast<double>(keys_done);
  return c;
}

Cell MeasureMultiGet(TestDb* t, const std::vector<std::string>& sorted_keys,
                     size_t batch, uint64_t seed) {
  Random rng(seed);
  const uint64_t io_before = t->io()->block_reads.load();
  size_t keys_done = 0;
  std::vector<Slice> slices(batch);
  std::vector<std::string> values;
  std::vector<Status> statuses;
  const auto start = std::chrono::steady_clock::now();
  while (keys_done < kLookups) {
    const size_t base = rng.Uniform(sorted_keys.size() - batch);
    for (size_t i = 0; i < batch; i++) {
      slices[i] = sorted_keys[base + i];
    }
    t->db->MultiGet({}, std::span<const Slice>(slices), &values, &statuses);
    keys_done += batch;
  }
  const auto end = std::chrono::steady_clock::now();
  Cell c;
  c.ns_per_key =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count() /
      static_cast<double>(keys_done);
  c.blocks_per_key =
      static_cast<double>(t->io()->block_reads.load() - io_before) /
      static_cast<double>(keys_done);
  return c;
}

void Run() {
  PrintHeader("E20 batched reads: MultiGet vs looped Get",
              "cache,batch,get_ns_per_key,mget_ns_per_key,speedup,"
              "get_blocks_per_key,mget_blocks_per_key");
  for (bool warm : {false, true}) {
    Options options;
    options.filter_allocation = FilterAllocation::kUniform;
    options.filter_bits_per_key = 10.0;
    BlockCache cache(64 << 20);
    if (warm) {
      options.block_cache = &cache;
    }
    TestDb db = LoadDb(options, kEntries, kValueBytes);
    if (!db.db->CompactAll().ok()) {
      std::abort();
    }

    std::vector<std::string> sorted_keys = LoadedKeys(kEntries);
    std::sort(sorted_keys.begin(), sorted_keys.end());
    sorted_keys.erase(std::unique(sorted_keys.begin(), sorted_keys.end()),
                      sorted_keys.end());

    if (warm) {
      // Prime the cache with one full pass so both sides read 0 blocks
      // and the comparison isolates per-key CPU overhead.
      std::string value;
      for (const std::string& key : sorted_keys) {
        db.db->Get({}, key, &value).IgnoreError();
      }
    }

    for (size_t batch : {size_t{1}, size_t{8}, size_t{64}, size_t{512}}) {
      const Cell get = MeasureLoopedGet(&db, sorted_keys, batch, 7 + batch);
      const Cell mget = MeasureMultiGet(&db, sorted_keys, batch, 7 + batch);
      std::printf("%s,%zu,%.0f,%.0f,%.2f,%.3f,%.3f\n",
                  warm ? "warm" : "cold", batch, get.ns_per_key,
                  mget.ns_per_key, get.ns_per_key / mget.ns_per_key,
                  get.blocks_per_key, mget.blocks_per_key);
    }
  }
  std::printf(
      "# expect: cold, looped Get pays ~1 block read per key while the\n"
      "# batch pays ~(distinct blocks)/batch — blocks/key collapses and\n"
      "# the speedup grows with batch size; batch=1 matches Get (the\n"
      "# batch machinery adds no per-key regression). Warm, both sides\n"
      "# read 0 blocks and the batch still wins on amortized snapshot\n"
      "# pinning and one cache lookup per distinct block.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() { lsmlab::bench::Run(); }
