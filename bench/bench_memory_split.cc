// E9 — Splitting memory between write buffer and filters (tutorial §II-5;
// Monkey [18], Luo & Carey [54, 57]).
//
// Claim: with a fixed memory budget and a mixed read/write workload, both
// extremes lose — a tiny buffer inflates write amplification, tiny filters
// inflate read I/O — so total I/O has an interior optimum.

#include "bench_common.h"
#include "tuning/navigator.h"

namespace lsmlab {
namespace bench {
namespace {

void Run() {
  PrintHeader("E9 buffer-vs-filter memory split (fixed total budget)",
              "buffer_fraction,buffer_bytes,filter_bits_per_key,"
              "total_ios_per_op,write_ios_per_op,read_ios_per_op,model_cost");
  const size_t kN = 60000;
  const size_t kBudget = 192 << 10;  // bytes for buffer + filters

  for (double frac : {0.05, 0.15, 0.3, 0.5, 0.7, 0.9}) {
    Options options;
    options.merge_policy = MergePolicy::kLeveling;
    options.size_ratio = 4;
    options.write_buffer_size =
        std::max<size_t>(8 << 10, static_cast<size_t>(kBudget * frac));
    options.max_file_size = 64 << 10;
    options.level0_compaction_trigger = 2;
    const double filter_bits =
        (kBudget * (1.0 - frac)) * 8.0 / static_cast<double>(kN);
    options.filter_bits_per_key = filter_bits;
    options.filter_allocation = filter_bits <= 0.1
                                    ? FilterAllocation::kNone
                                    : FilterAllocation::kUniform;

    // Interleaved workload: writes and zero-result reads.
    TestDb db;
    db.env.reset(NewMemEnv());
    options.env = db.env.get();
    if (!DB::Open(options, "/bench", &db.db).ok()) {
      std::abort();
    }
    auto gen = NewUniformGenerator(kKeyDomain, 42);
    // Load half the data first so reads have something to miss against.
    for (size_t i = 0; i < kN / 2; i++) {
      const std::string key = EncodeKey(gen->Next());
      db.db->Put({}, key, ValueForKey(key, 64)).IgnoreError();
    }
    db.io()->Reset();
    const uint64_t writes_before = db.io()->block_writes.load();
    auto absent = NewUniformGenerator(kKeyDomain, 99);
    Random rng(3);
    std::string value;
    const size_t kOps = kN;  // 50/50 mix
    for (size_t i = 0; i < kOps; i++) {
      if (i % 2 == 0) {
        const std::string key = EncodeKey(gen->Next());
        db.db->Put({}, key, ValueForKey(key, 64)).IgnoreError();
      } else {
        db.db->Get({}, EncodeKey(absent->Next()), &value).IgnoreError();
      }
    }
    const double write_ios =
        static_cast<double>(db.io()->block_writes.load() - writes_before) /
        kOps;
    const double read_ios =
        static_cast<double>(db.io()->block_reads.load()) / kOps;

    LsmDesignSpec spec;
    spec.policy = LsmDesignSpec::Policy::kLeveling;
    spec.size_ratio = 4;
    spec.num_entries = kN;
    spec.entry_bytes = 72;
    spec.buffer_bytes = options.write_buffer_size;
    spec.filter_bits_per_key = filter_bits;
    WorkloadMix mix;
    mix.writes = 0.5;
    mix.zero_result_lookups = 0.5;
    mix.existing_lookups = 0;
    mix.short_scans = 0;
    const double model = WorkloadCost(spec, mix, /*monkey=*/false);

    std::printf("%.2f,%zu,%.1f,%.3f,%.3f,%.3f,%.4f\n", frac,
                options.write_buffer_size, filter_bits,
                write_ios + read_ios, write_ios, read_ios, model);
  }
  std::printf(
      "# expect: total_ios_per_op is minimized at an interior fraction —\n"
      "# small buffers pay compaction writes, small filters pay read FPs.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() { lsmlab::bench::Run(); }
