// E17 — Write-stall smoothing (tutorial III-2; Silk+ [8], CruiseDB [51],
// Luo & Carey [56]; also I-2 partial compaction [75, 76]).
//
// Claims: (i) the latency of an individual write is dominated by the
// compaction work it happens to trigger; whole-level compaction makes
// rare writes pay for moving entire levels (catastrophic max latency)
// while partial compaction bounds the unit of work — the tail flattens by
// ~50x. (ii) Tiering smooths writes further by merging less. (iii) The
// cautionary row: naive pacing (deferring compactions) in an engine with
// no background threads just accumulates compaction debt that later
// writes repay with interest — Luo & Carey's point that stability needs
// compaction to keep up, not merely be postponed.

#include "bench_common.h"
#include "util/histogram.h"

namespace lsmlab {
namespace bench {
namespace {

void Run() {
  PrintHeader("E17 write latency tail vs compaction scheduling",
              "config,p50_us,p99_us,p999_us,p9999_us,max_ms,write_amp,"
              "runs_after");
  const size_t kN = 60000;
  struct Cfg {
    const char* name;
    MergePolicy policy;
    CompactionFilePicker picker;
    int pace;
  } cfgs[] = {
      {"whole_level", MergePolicy::kLeveling,
       CompactionFilePicker::kWholeLevel, 0},
      {"partial_minoverlap", MergePolicy::kLeveling,
       CompactionFilePicker::kMinOverlap, 0},
      {"tiering", MergePolicy::kTiering,
       CompactionFilePicker::kWholeLevel, 0},
      {"deferred_paced_1", MergePolicy::kLeveling,
       CompactionFilePicker::kMinOverlap, 1},
  };
  for (const Cfg& cfg : cfgs) {
    Options options;
    options.merge_policy = cfg.policy;
    options.size_ratio = 4;
    options.write_buffer_size = 32 << 10;
    options.max_file_size = 16 << 10;
    options.level0_compaction_trigger = 2;
    options.file_picker = cfg.picker;
    options.max_compactions_per_write = cfg.pace;
    options.filter_allocation = FilterAllocation::kNone;

    TestDb db;
    db.env.reset(NewMemEnv());
    options.env = db.env.get();
    if (!DB::Open(options, "/bench", &db.db).ok()) {
      std::abort();
    }
    auto gen = NewUniformGenerator(kKeyDomain, 42);
    Histogram lat;
    double max_ms = 0;
    for (size_t i = 0; i < kN; i++) {
      const std::string key = EncodeKey(gen->Next());
      const std::string value = ValueForKey(key, 64);
      const double ms = TimeMs([&] { db.db->Put({}, key, value); });
      lat.Add(ms * 1000.0);  // microseconds
      max_ms = std::max(max_ms, ms);
    }
    DBStats stats = db.db->GetStats();
    std::printf("%s,%.1f,%.1f,%.1f,%.1f,%.1f,%.2f,%d\n", cfg.name,
                lat.Percentile(50), lat.Percentile(99),
                lat.Percentile(99.9), lat.Percentile(99.99), max_ms,
                stats.WriteAmplification(), stats.total_runs);
  }
  std::printf(
      "# expect: p50 flat everywhere (most writes only touch the\n"
      "# memtable); whole_level max dwarfs partial/tiering by 10-100x;\n"
      "# partial pays more frequent-but-small stalls (higher p99.9, far\n"
      "# lower max); deferred pacing inflates write_amp and the tail —\n"
      "# debt must be repaid.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() { lsmlab::bench::Run(); }
