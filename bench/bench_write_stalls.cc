// E17 — Write-stall smoothing (tutorial III-2; Silk+ [8], CruiseDB [51],
// Luo & Carey [56]; also I-2 partial compaction [75, 76]).
//
// Claims: (i) the latency of an individual write is dominated by the
// compaction work it happens to trigger; whole-level compaction makes
// rare writes pay for moving entire levels (catastrophic max latency)
// while partial compaction bounds the unit of work — the tail flattens by
// ~50x. (ii) Tiering smooths writes further by merging less. (iii) The
// cautionary row: naive pacing (deferring compactions) in an engine with
// no background threads just accumulates compaction debt that later
// writes repay with interest — Luo & Carey's point that stability needs
// compaction to keep up, not merely be postponed. (iv) Moving flush and
// compaction to a background thread takes merge work off the write path
// entirely: writers only block in the controller (1ms slowdown delays
// past l0_slowdown_trigger, hard stalls at l0_stop_trigger / full imm),
// so the put tail collapses to controller-shaped waits and the stall
// columns report exactly where the remaining latency lives.

#include "bench_common.h"
#include "util/histogram.h"

namespace lsmlab {
namespace bench {
namespace {

void Run() {
  PrintHeader("E17 write latency tail vs compaction scheduling",
              "config,p50_us,p99_us,p999_us,p9999_us,max_ms,write_amp,"
              "runs_after,slowdowns,stalls,slowdown_ms,stall_ms");
  const size_t kN = 60000;
  struct Cfg {
    const char* name;
    MergePolicy policy;
    CompactionFilePicker picker;
    int pace;
    bool background;
  } cfgs[] = {
      {"whole_level", MergePolicy::kLeveling,
       CompactionFilePicker::kWholeLevel, 0, false},
      {"partial_minoverlap", MergePolicy::kLeveling,
       CompactionFilePicker::kMinOverlap, 0, false},
      {"tiering", MergePolicy::kTiering,
       CompactionFilePicker::kWholeLevel, 0, false},
      {"deferred_paced_1", MergePolicy::kLeveling,
       CompactionFilePicker::kMinOverlap, 1, false},
      {"background_whole", MergePolicy::kLeveling,
       CompactionFilePicker::kWholeLevel, 0, true},
      {"background_partial", MergePolicy::kLeveling,
       CompactionFilePicker::kMinOverlap, 0, true},
      {"background_tiering", MergePolicy::kTiering,
       CompactionFilePicker::kWholeLevel, 0, true},
  };
  for (const Cfg& cfg : cfgs) {
    Options options;
    options.merge_policy = cfg.policy;
    options.size_ratio = 4;
    options.write_buffer_size = 32 << 10;
    options.max_file_size = 16 << 10;
    options.level0_compaction_trigger = 2;
    options.file_picker = cfg.picker;
    options.max_compactions_per_write = cfg.pace;
    options.filter_allocation = FilterAllocation::kNone;
    options.background_compaction = cfg.background;

    TestDb db;
    db.env.reset(NewMemEnv());
    options.env = db.env.get();
    if (!DB::Open(options, "/bench", &db.db).ok()) {
      std::abort();
    }
    auto gen = NewUniformGenerator(kKeyDomain, 42);
    Histogram lat;
    double max_ms = 0;
    for (size_t i = 0; i < kN; i++) {
      const std::string key = EncodeKey(gen->Next());
      const std::string value = ValueForKey(key, 64);
      const double ms = TimeMs([&] { db.db->Put({}, key, value).IgnoreError(); });
      lat.Add(ms * 1000.0);  // microseconds
      max_ms = std::max(max_ms, ms);
    }
    // Quiesce so runs_after/write_amp reflect comparable end states.
    if (cfg.background) {
      db.db->Flush().IgnoreError();
    }
    DBStats stats = db.db->GetStats();
    std::printf("%s,%.1f,%.1f,%.1f,%.1f,%.1f,%.2f,%d,%llu,%llu,%.1f,%.1f\n",
                cfg.name, lat.Percentile(50), lat.Percentile(99),
                lat.Percentile(99.9), lat.Percentile(99.99), max_ms,
                stats.WriteAmplification(), stats.total_runs,
                static_cast<unsigned long long>(stats.write_slowdowns),
                static_cast<unsigned long long>(stats.write_stalls),
                stats.write_slowdown_micros / 1000.0,
                stats.write_stall_micros / 1000.0);
  }
  std::printf(
      "# expect: p50 flat everywhere (most writes only touch the\n"
      "# memtable); whole_level max dwarfs partial/tiering by 10-100x;\n"
      "# partial pays more frequent-but-small stalls (higher p99.9, far\n"
      "# lower max); deferred pacing inflates write_amp and the tail —\n"
      "# debt must be repaid. background_* rows move merges off the write\n"
      "# path: p99/p999 drop well below the inline rows and the residual\n"
      "# tail shows up in the slowdown/stall columns instead (nonzero\n"
      "# once the single background thread falls behind the L0 triggers).\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() { lsmlab::bench::Run(); }
