// E17 — Write-stall smoothing (tutorial III-2; Silk+ [8], CruiseDB [51],
// Luo & Carey [56]; also I-2 partial compaction [75, 76]).
//
// Claims: (i) the latency of an individual write is dominated by the
// compaction work it happens to trigger; whole-level compaction makes
// rare writes pay for moving entire levels (catastrophic max latency)
// while partial compaction bounds the unit of work — the tail flattens by
// ~50x. (ii) Tiering smooths writes further by merging less. (iii) The
// cautionary row: naive pacing (deferring compactions) in an engine with
// no background threads just accumulates compaction debt that later
// writes repay with interest — Luo & Carey's point that stability needs
// compaction to keep up, not merely be postponed. (iv) Moving flush and
// compaction to a background thread takes merge work off the write path
// entirely: writers only block in the controller (1ms slowdown delays
// past l0_slowdown_trigger, hard stalls at l0_stop_trigger / full imm),
// so the put tail collapses to controller-shaped waits and the stall
// columns report exactly where the remaining latency lives.

#include <atomic>
#include <cstring>
#include <thread>

#include "bench_common.h"
#include "core/db_impl.h"
#include "core/sharded_db.h"
#include "util/histogram.h"

namespace lsmlab {
namespace bench {
namespace {

void RunE17() {
  PrintHeader("E17 write latency tail vs compaction scheduling",
              "config,p50_us,p99_us,p999_us,p9999_us,max_ms,write_amp,"
              "runs_after,slowdowns,stalls,slowdown_ms,stall_ms");
  const size_t kN = 60000;
  struct Cfg {
    const char* name;
    MergePolicy policy;
    CompactionFilePicker picker;
    int pace;
    bool background;
  } cfgs[] = {
      {"whole_level", MergePolicy::kLeveling,
       CompactionFilePicker::kWholeLevel, 0, false},
      {"partial_minoverlap", MergePolicy::kLeveling,
       CompactionFilePicker::kMinOverlap, 0, false},
      {"tiering", MergePolicy::kTiering,
       CompactionFilePicker::kWholeLevel, 0, false},
      {"deferred_paced_1", MergePolicy::kLeveling,
       CompactionFilePicker::kMinOverlap, 1, false},
      {"background_whole", MergePolicy::kLeveling,
       CompactionFilePicker::kWholeLevel, 0, true},
      {"background_partial", MergePolicy::kLeveling,
       CompactionFilePicker::kMinOverlap, 0, true},
      {"background_tiering", MergePolicy::kTiering,
       CompactionFilePicker::kWholeLevel, 0, true},
  };
  for (const Cfg& cfg : cfgs) {
    Options options;
    options.merge_policy = cfg.policy;
    options.size_ratio = 4;
    options.write_buffer_size = 32 << 10;
    options.max_file_size = 16 << 10;
    options.level0_compaction_trigger = 2;
    options.file_picker = cfg.picker;
    options.max_compactions_per_write = cfg.pace;
    options.filter_allocation = FilterAllocation::kNone;
    options.background_compaction = cfg.background;

    TestDb db;
    db.env.reset(NewMemEnv());
    options.env = db.env.get();
    if (!DB::Open(options, "/bench", &db.db).ok()) {
      std::abort();
    }
    auto gen = NewUniformGenerator(kKeyDomain, 42);
    Histogram lat;
    double max_ms = 0;
    for (size_t i = 0; i < kN; i++) {
      const std::string key = EncodeKey(gen->Next());
      const std::string value = ValueForKey(key, 64);
      const double ms = TimeMs([&] { db.db->Put({}, key, value).IgnoreError(); });
      lat.Add(ms * 1000.0);  // microseconds
      max_ms = std::max(max_ms, ms);
    }
    // Quiesce so runs_after/write_amp reflect comparable end states.
    if (cfg.background) {
      db.db->Flush().IgnoreError();
    }
    DBStats stats = db.db->GetStats();
    std::printf("%s,%.1f,%.1f,%.1f,%.1f,%.1f,%.2f,%d,%llu,%llu,%.1f,%.1f\n",
                cfg.name, lat.Percentile(50), lat.Percentile(99),
                lat.Percentile(99.9), lat.Percentile(99.99), max_ms,
                stats.WriteAmplification(), stats.total_runs,
                static_cast<unsigned long long>(stats.write_slowdowns),
                static_cast<unsigned long long>(stats.write_stalls),
                stats.write_slowdown_micros / 1000.0,
                stats.write_stall_micros / 1000.0);
  }
  std::printf(
      "# expect: p50 flat everywhere (most writes only touch the\n"
      "# memtable); whole_level max dwarfs partial/tiering by 10-100x;\n"
      "# partial pays more frequent-but-small stalls (higher p99.9, far\n"
      "# lower max); deferred pacing inflates write_amp and the tail —\n"
      "# debt must be repaid. background_* rows move merges off the write\n"
      "# path: p99/p999 drop well below the inline rows and the residual\n"
      "# tail shows up in the slowdown/stall columns instead (nonzero\n"
      "# once the single background thread falls behind the L0 triggers).\n");
}

// ------------------------------------------------------------------ E21 --
// Group commit: WAL sync amortization under concurrent writers.
//
// The mem env's Sync() is free, which would hide exactly the cost group
// commit exists to amortize. SlowSyncEnv charges every .wal fsync a fixed
// ~100us sleep (a cheap-SSD flush), so the bench measures how many
// acknowledged writes each physical sync pays for. The 1-thread
// kSyncEveryCommit row is the per-write-fsync baseline: with no
// concurrency every write leads its own group of one and eats a full
// sync. Concurrent sync writers should batch behind the leader's fsync
// (mean group size >> 1) and recover most of the lost throughput; the
// interval/bytes modes amortize further by decoupling syncs from commits.

constexpr auto kWalSyncCost = std::chrono::microseconds(100);

/// WritableFile that makes Sync() cost ~kWalSyncCost of wall clock.
class SlowSyncFile : public WritableFile {
 public:
  SlowSyncFile(std::unique_ptr<WritableFile> base, std::atomic<uint64_t>* syncs)
      : base_(std::move(base)), syncs_(syncs) {}

  Status Append(const Slice& data) override { return base_->Append(data); }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    std::this_thread::sleep_for(kWalSyncCost);
    syncs_->fetch_add(1, std::memory_order_relaxed);
    return base_->Sync();
  }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  std::atomic<uint64_t>* syncs_;
};

/// Env wrapper: WAL files get the slow-sync treatment, everything else
/// passes through untouched.
class SlowSyncEnv : public Env {
 public:
  explicit SlowSyncEnv(Env* base) : base_(base) {}

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    return base_->NewRandomAccessFile(fname, result);
  }
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    Status s = base_->NewWritableFile(fname, result);
    if (s.ok() && fname.size() >= 4 &&
        fname.compare(fname.size() - 4, 4, ".wal") == 0) {
      *result = std::make_unique<SlowSyncFile>(std::move(*result), &wal_syncs_);
    }
    return s;
  }
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }

  uint64_t wal_syncs() const {
    return wal_syncs_.load(std::memory_order_relaxed);
  }

 private:
  Env* base_;
  std::atomic<uint64_t> wal_syncs_{0};
};

void RunE21() {
  PrintHeader(
      "E21 group commit: sync-write throughput vs concurrency",
      "config,threads,kwrites_per_s,speedup,p50_us,p99_us,mean_group,"
      "syncs_per_commit,wal_syncs,sync_skipped");
  const size_t kOps = 8000;  // total across all threads
  struct Cfg {
    const char* name;
    int threads;
    WalSyncMode mode;
    // WriteOptions::sync forces a per-group fsync in EVERY mode, so the
    // interval/bytes rows use non-sync writers: they measure the policy's
    // own sync schedule, the durability those modes actually relax.
    bool sync;
  } cfgs[] = {
      {"fsync_per_write", 1, WalSyncMode::kSyncEveryCommit, true},
      {"every_commit", 4, WalSyncMode::kSyncEveryCommit, true},
      {"every_commit", 16, WalSyncMode::kSyncEveryCommit, true},
      {"interval_2ms", 1, WalSyncMode::kSyncIntervalMs, false},
      {"interval_2ms", 16, WalSyncMode::kSyncIntervalMs, false},
      {"bytes_64k", 1, WalSyncMode::kSyncBytes, false},
      {"bytes_64k", 16, WalSyncMode::kSyncBytes, false},
  };
  double baseline_wps = 0;
  for (const Cfg& cfg : cfgs) {
    Options options;
    options.background_compaction = true;
    options.filter_allocation = FilterAllocation::kNone;
    options.wal_sync_mode = cfg.mode;
    options.wal_sync_interval_ms = 2;
    options.wal_sync_bytes = 64 << 10;

    std::unique_ptr<Env> base_env(NewMemEnv());
    SlowSyncEnv env(base_env.get());
    options.env = &env;
    std::unique_ptr<DB> db;
    if (!DB::Open(options, "/bench", &db).ok()) {
      std::abort();
    }

    const size_t per_thread = kOps / cfg.threads;
    std::vector<std::vector<double>> lat_us(cfg.threads);
    std::vector<std::thread> threads;
    const auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < cfg.threads; t++) {
      threads.emplace_back([&, t] {
        WriteOptions wo;
        wo.sync = cfg.sync;
        lat_us[t].reserve(per_thread);
        for (size_t i = 0; i < per_thread; i++) {
          const std::string key =
              EncodeKey(static_cast<uint64_t>(t) * 1000000 + i);
          const std::string value = ValueForKey(key, 100);
          const double ms =
              TimeMs([&] { db->Put(wo, key, value).IgnoreError(); });
          lat_us[t].push_back(ms * 1000.0);
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    const double secs =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count() /
        1e6;

    Histogram lat;
    for (const auto& v : lat_us) {
      for (double us : v) {
        lat.Add(us);
      }
    }
    DBStats stats = db->GetStats();
    const double wps = per_thread * cfg.threads / secs;
    if (baseline_wps == 0) {
      baseline_wps = wps;  // first row: 1-thread per-write-fsync
    }
    std::printf("%s,%d,%.1f,%.2fx,%.1f,%.1f,%.2f,%.3f,%llu,%llu\n", cfg.name,
                cfg.threads, wps / 1000.0, wps / baseline_wps,
                lat.Percentile(50), lat.Percentile(99),
                stats.MeanWriteGroupSize(),
                stats.group_commits == 0
                    ? 0.0
                    : static_cast<double>(stats.wal_syncs) /
                          stats.group_commits,
                static_cast<unsigned long long>(stats.wal_syncs),
                static_cast<unsigned long long>(stats.wal_sync_skipped));
    db.reset();
  }
  std::printf(
      "# expect: fsync_per_write pays ~100us per put (~10 kwrites/s\n"
      "# ceiling). every_commit@16: concurrent sync writers pile up behind\n"
      "# the leader's fsync and commit as one group — mean_group > 4 and\n"
      "# throughput >= 4x the baseline row, while syncs_per_commit stays\n"
      "# 1.0 (every group holds a sync writer; wal.syncs + sync_skipped ==\n"
      "# group_commits). interval/bytes rows run non-sync writers (sync=\n"
      "# true forces an fsync in every mode) and drop syncs_per_commit\n"
      "# well below 1 even single-threaded — staleness bounded by time or\n"
      "# bytes instead of per-commit durability — and at 16 threads they\n"
      "# compound grouping with sync skipping for the highest throughput.\n");
}

// ------------------------------------------------------------------ E22 --
// Sharded keyspace: aggregate write throughput vs shard count.
//
// Each shard owns a private WAL and a private flush/compaction stream, so
// the scaling claim is about I/O channels: with one shard every byte of
// flush and compaction traffic funnels through one background sequence,
// while N shards overlap those waits N-ways. The mem env's writes are
// free, which hides exactly that cost, so SlowBlockWriteEnv charges every
// 4 KiB appended to any file a fixed ~kBlockWriteCost sleep (a cheap-SSD
// program latency) — the same trick E21 uses for WAL fsyncs. Total
// memtable memory is held constant across rows (write_buffer_size is
// divided by the shard count), so the sweep isolates parallelism rather
// than extra buffering.

constexpr auto kBlockWriteCost = std::chrono::microseconds(250);

/// WritableFile that charges ~kBlockWriteCost per 4 KiB appended.
class SlowWriteFile : public WritableFile {
 public:
  explicit SlowWriteFile(std::unique_ptr<WritableFile> base)
      : base_(std::move(base)) {}

  Status Append(const Slice& data) override {
    pending_ += data.size();
    while (pending_ >= 4096) {
      std::this_thread::sleep_for(kBlockWriteCost);
      pending_ -= 4096;
    }
    return base_->Append(data);
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override { return base_->Sync(); }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  size_t pending_ = 0;
};

/// Env wrapper: every writable file pays the block-write cost. Tiny
/// appends (manifest records) stay nearly free via the 4 KiB accumulator.
class SlowWriteEnv : public Env {
 public:
  explicit SlowWriteEnv(Env* base) : base_(base) {}

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    return base_->NewRandomAccessFile(fname, result);
  }
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    Status s = base_->NewWritableFile(fname, result);
    if (s.ok()) {
      *result = std::make_unique<SlowWriteFile>(std::move(*result));
    }
    return s;
  }
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }

 private:
  Env* base_;
};

void RunE22(const std::vector<int>& shard_counts) {
  PrintHeader(
      "E22 sharded write throughput vs shard count",
      "shards,kwrites_per_s,speedup,p50_us,p99_us,max_ms,slowdowns,stalls,"
      "stall_ms,shard_stalls_min,shard_stalls_max");
  const int kThreads = 8;
  const size_t kOps = 16000;  // total across all writer threads
  const size_t kTotalWriteBuffer = 64 << 10;

  double baseline_wps = 0;
  for (int shards : shard_counts) {
    Options options;
    options.num_shards = shards;
    options.merge_policy = MergePolicy::kLeveling;
    options.size_ratio = 4;
    // Constant total memtable memory: each shard gets an equal slice.
    options.write_buffer_size = kTotalWriteBuffer / shards;
    options.max_file_size = options.write_buffer_size / 2;
    options.level0_compaction_trigger = 2;
    options.file_picker = CompactionFilePicker::kMinOverlap;
    options.filter_allocation = FilterAllocation::kNone;
    options.background_compaction = true;

    std::unique_ptr<Env> base_env(NewMemEnv());
    SlowWriteEnv env(base_env.get());
    options.env = &env;
    std::unique_ptr<DB> db;
    if (!DB::Open(options, "/bench", &db).ok()) {
      std::abort();
    }

    const size_t per_thread = kOps / kThreads;
    std::vector<std::vector<double>> lat_us(kThreads);
    std::vector<std::thread> threads;
    std::atomic<double> max_ms{0};
    const auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < kThreads; t++) {
      threads.emplace_back([&, t] {
        auto gen = NewUniformGenerator(kKeyDomain, 42 + t);
        lat_us[t].reserve(per_thread);
        double local_max = 0;
        for (size_t i = 0; i < per_thread; i++) {
          const std::string key = EncodeKey(gen->Next());
          const std::string value = ValueForKey(key, 256);
          const double ms =
              TimeMs([&] { db->Put({}, key, value).IgnoreError(); });
          lat_us[t].push_back(ms * 1000.0);
          local_max = std::max(local_max, ms);
        }
        double seen = max_ms.load();
        while (local_max > seen && !max_ms.compare_exchange_weak(seen,
                                                                local_max)) {
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    const double secs =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count() /
        1e6;

    Histogram lat;
    for (const auto& v : lat_us) {
      for (double us : v) {
        lat.Add(us);
      }
    }
    const double wps = per_thread * kThreads / secs;
    if (baseline_wps == 0) {
      baseline_wps = wps;  // first row of the sweep
    }

    // Per-shard controller counters: the E17 stall shape must survive
    // sharding — every shard runs its own slowdown/stop triggers.
    DBStats agg = db->GetStats();
    uint64_t shard_stalls_min = agg.write_stalls + agg.write_slowdowns;
    uint64_t shard_stalls_max = 0;
    if (shards > 1) {
      auto* sharded = static_cast<ShardedDB*>(db.get());
      for (int s = 0; s < shards; s++) {
        DBStats ss = sharded->TEST_Shard(s)->GetStats();
        const uint64_t gated = ss.write_stalls + ss.write_slowdowns;
        shard_stalls_min = std::min(shard_stalls_min, gated);
        shard_stalls_max = std::max(shard_stalls_max, gated);
      }
    } else {
      shard_stalls_max = shard_stalls_min;
    }

    std::printf("%d,%.1f,%.2fx,%.1f,%.1f,%.1f,%llu,%llu,%.1f,%llu,%llu\n",
                shards, wps / 1000.0, wps / baseline_wps, lat.Percentile(50),
                lat.Percentile(99), max_ms.load(),
                static_cast<unsigned long long>(agg.write_slowdowns),
                static_cast<unsigned long long>(agg.write_stalls),
                agg.write_stall_micros / 1000.0,
                static_cast<unsigned long long>(shard_stalls_min),
                static_cast<unsigned long long>(shard_stalls_max));
    db.reset();
  }
  std::printf(
      "# expect: aggregate throughput scales near-linearly with shards\n"
      "# (>= 3x at 8 shards): one shard serializes all flush/compaction\n"
      "# block writes behind a single background sequence, so writers sit\n"
      "# in controller stalls waiting for it; N shards overlap those I/O\n"
      "# waits N-ways. Every row keeps the E17 stall shape per shard —\n"
      "# slowdown/stall counters stay nonzero on every shard (min > 0)\n"
      "# because each shard's controller still gates its own L0/imm debt;\n"
      "# sharding shrinks total stall_ms rather than bypassing the\n"
      "# controller.\n");
}

// ------------------------------------------------------------------ E23b --
// Parallel group apply: end-to-end multi-writer put throughput.
//
// E21 shows concurrent writers batching into groups of ~10; this measures
// what the group does once formed. With serial apply the leader inserts
// every member's batch while the members idle — the memtable insert work
// of the whole group runs on one thread. With
// `allow_concurrent_memtable_write` each member inserts its own batch at
// a pre-assigned sequence offset, so the group's insert work spreads
// across the writers that produced it.
//
// The cost being parallelized is insert CPU, which a small testbed
// machine cannot physically overlap the way the target multi-core server
// can — the same way the mem env's free fsyncs would hide what E21
// measures. Same fix: SlowCompareComparator charges ~one fixed sleep of
// wall clock per skiplist insert (one per 32 key comparisons, counted
// per thread), standing in for the per-insert work of a busy core.
// Sleeps overlap across threads exactly like the device latencies in
// E21/E22, so the serial rows pay the whole group's inserts end to end
// on the leader while the parallel rows overlap them across members.
// The workload is non-sync puts with flushes kept off the hot path, so
// the apply phase is the only cost that differs between configs.

/// Bytewise order, plus ~70us of wall clock per 16 comparisons on the
/// calling thread (~ two charges per skiplist insert at bench sizes).
class SlowCompareComparator : public Comparator {
 public:
  int Compare(const Slice& a, const Slice& b) const override {
    thread_local uint64_t calls = 0;
    if (++calls % 16 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(2));
    }
    return BytewiseComparator()->Compare(a, b);
  }
  const char* Name() const override { return "lsmlab.BytewiseComparator"; }
  void FindShortestSeparator(std::string* start,
                             const Slice& limit) const override {
    BytewiseComparator()->FindShortestSeparator(start, limit);
  }
  void FindShortSuccessor(std::string* key) const override {
    BytewiseComparator()->FindShortSuccessor(key);
  }
};

void RunE23() {
  PrintHeader(
      "E23b end-to-end puts: parallel apply on vs off",
      "config,threads,kwrites_per_s,speedup_vs_serial,p50_us,p99_us,"
      "mean_group,parallel_applies,serial_applies,group_commits,cas_retries");
  const size_t kOps = 8000;  // total across all threads
  SlowCompareComparator slow_cmp;
  struct Cfg {
    const char* name;
    int threads;
    bool parallel;
  } cfgs[] = {
      {"serial_apply", 1, false},   {"parallel_apply", 1, true},
      {"serial_apply", 8, false},   {"parallel_apply", 8, true},
  };
  double serial_wps[16] = {};  // indexed by thread count
  for (const Cfg& cfg : cfgs) {
    Options options;
    options.background_compaction = true;
    options.filter_allocation = FilterAllocation::kNone;
    options.write_buffer_size = 8 << 20;  // keep flushes off the hot path
    options.comparator = &slow_cmp;
    options.allow_concurrent_memtable_write = cfg.parallel;

    std::unique_ptr<Env> env(NewMemEnv());
    options.env = env.get();
    std::unique_ptr<DB> db;
    if (!DB::Open(options, "/bench", &db).ok()) {
      std::abort();
    }

    const size_t per_thread = kOps / cfg.threads;
    std::vector<std::vector<double>> lat_us(cfg.threads);
    std::vector<std::thread> threads;
    const auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < cfg.threads; t++) {
      threads.emplace_back([&, t] {
        lat_us[t].reserve(per_thread);
        for (size_t i = 0; i < per_thread; i++) {
          const std::string key =
              EncodeKey(static_cast<uint64_t>(t) * 10000000 + i);
          const std::string value = ValueForKey(key, 100);
          const double ms =
              TimeMs([&] { db->Put({}, key, value).IgnoreError(); });
          lat_us[t].push_back(ms * 1000.0);
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    const double secs =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count() /
        1e6;

    Histogram lat;
    for (const auto& v : lat_us) {
      for (double us : v) {
        lat.Add(us);
      }
    }
    DBStats stats = db->GetStats();
    // Apply-flavor tickers must reconcile with group commits exactly:
    // every committed group applied once, serially or in parallel.
    if (stats.parallel_applies + stats.serial_applies != stats.group_commits) {
      std::fprintf(stderr, "apply/group reconciliation failed: %llu+%llu!=%llu\n",
                   static_cast<unsigned long long>(stats.parallel_applies),
                   static_cast<unsigned long long>(stats.serial_applies),
                   static_cast<unsigned long long>(stats.group_commits));
      std::abort();
    }
    const double wps = per_thread * cfg.threads / secs;
    if (!cfg.parallel) {
      serial_wps[cfg.threads] = wps;
    }
    std::printf("%s,%d,%.1f,%.2fx,%.1f,%.1f,%.2f,%llu,%llu,%llu,%llu\n",
                cfg.name, cfg.threads, wps / 1000.0,
                serial_wps[cfg.threads] == 0 ? 1.0
                                             : wps / serial_wps[cfg.threads],
                lat.Percentile(50), lat.Percentile(99),
                stats.MeanWriteGroupSize(),
                static_cast<unsigned long long>(stats.parallel_applies),
                static_cast<unsigned long long>(stats.serial_applies),
                static_cast<unsigned long long>(stats.group_commits),
                static_cast<unsigned long long>(stats.insert_cas_retries));
    db.reset();
  }
  std::printf(
      "# expect: at 1 thread the two configs land within ~15%% (a group\n"
      "# of one applies serially in both; parallel_applies stays 0). At\n"
      "# 8 threads\n"
      "# serial_apply barely beats 1 thread — every group's inserts\n"
      "# funnel through its leader — while parallel_apply overlaps the\n"
      "# members' inserts for >= 2x the 8-thread serial row;\n"
      "# parallel_applies dominates group_commits and parallel+serial ==\n"
      "# group_commits in every row (asserted above). cas_retries stays\n"
      "# a small fraction of total entries.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main(int argc, char** argv) {
  // `--shards=1,2,4,8` runs only the E22 sweep with the given shard
  // counts; `--e23` runs only the parallel-apply comparison; with no
  // arguments all experiments run with the default sweeps.
  std::vector<int> shard_counts;
  bool e23_only = false;
  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--e23") == 0) {
      e23_only = true;
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      int value = 0;
      for (const char* p = arg + 9; *p != '\0'; p++) {
        if (*p >= '0' && *p <= '9') {
          value = value * 10 + (*p - '0');
        } else if (*p == ',' && value > 0) {
          shard_counts.push_back(value);
          value = 0;
        } else {
          std::fprintf(stderr, "bad --shards list: %s\n", arg);
          return 1;
        }
      }
      if (value > 0) {
        shard_counts.push_back(value);
      }
    } else {
      std::fprintf(stderr, "usage: %s [--shards=1,2,4,8] [--e23]\n", argv[0]);
      return 1;
    }
  }
  if (e23_only) {
    lsmlab::bench::RunE23();
    return 0;
  }
  if (!shard_counts.empty()) {
    lsmlab::bench::RunE22(shard_counts);
    return 0;
  }
  lsmlab::bench::RunE17();
  lsmlab::bench::RunE21();
  lsmlab::bench::RunE22({1, 2, 4, 8});
  lsmlab::bench::RunE23();
}
