#ifndef LSMLAB_BENCH_BENCH_COMMON_H_
#define LSMLAB_BENCH_BENCH_COMMON_H_

// Shared scaffolding for the experiment harnesses (DESIGN.md E1-E14).
// Each bench prints a small CSV-style table; EXPERIMENTS.md records the
// expected shapes. All I/O numbers are logical 4 KiB block accesses counted
// by the in-memory Env (the deterministic testbed substitute).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/db.h"
#include "storage/env.h"
#include "util/random.h"
#include "workload/keygen.h"
#include "workload/workload.h"

namespace lsmlab {
namespace bench {

inline constexpr uint64_t kKeyDomain = uint64_t{1} << 34;

/// A DB plus its private counting environment.
struct TestDb {
  std::unique_ptr<Env> env;
  std::unique_ptr<DB> db;

  IoStats* io() { return env->io_stats(); }
};

/// Opens a fresh DB over a fresh mem env and loads `n` uniform-random
/// entries with `value_bytes` values (keys are 8-byte big-endian).
inline TestDb LoadDb(Options options, size_t n, size_t value_bytes,
                     uint64_t seed = 42) {
  TestDb t;
  t.env.reset(NewMemEnv());
  options.env = t.env.get();
  Status s = DB::Open(options, "/bench", &t.db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  auto gen = NewUniformGenerator(kKeyDomain, seed);
  for (size_t i = 0; i < n; i++) {
    const std::string key = EncodeKey(gen->Next());
    s = t.db->Put({}, key, ValueForKey(key, value_bytes));
    if (!s.ok()) {
      std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      std::abort();
    }
  }
  return t;
}

/// Replays the same key sequence used by LoadDb (for existing-key reads).
inline std::vector<std::string> LoadedKeys(size_t n, uint64_t seed = 42) {
  std::vector<std::string> keys;
  keys.reserve(n);
  auto gen = NewUniformGenerator(kKeyDomain, seed);
  for (size_t i = 0; i < n; i++) {
    keys.push_back(EncodeKey(gen->Next()));
  }
  return keys;
}

struct GetCost {
  double ios_per_op = 0;
  double ns_per_op = 0;
  double found_fraction = 0;
};

/// Runs `ops` point lookups; existing=true draws from the loaded keys,
/// else from fresh keys (overwhelmingly absent in the sparse domain).
inline GetCost MeasureGets(TestDb* t, size_t loaded_n, size_t ops,
                           bool existing, uint64_t seed = 7) {
  auto keys = LoadedKeys(loaded_n);
  Random rng(seed);
  auto absent_gen = NewUniformGenerator(kKeyDomain, seed ^ 0x123457);

  const uint64_t io_before = t->io()->block_reads.load();
  size_t found = 0;
  const auto start = std::chrono::steady_clock::now();
  std::string value;
  for (size_t i = 0; i < ops; i++) {
    std::string key = existing ? keys[rng.Uniform(keys.size())]
                               : EncodeKey(absent_gen->Next());
    if (t->db->Get({}, key, &value).ok()) {
      found++;
    }
  }
  const auto end = std::chrono::steady_clock::now();
  const uint64_t io_after = t->io()->block_reads.load();

  GetCost cost;
  cost.ios_per_op = static_cast<double>(io_after - io_before) / ops;
  cost.ns_per_op =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count() /
      static_cast<double>(ops);
  cost.found_fraction = static_cast<double>(found) / ops;
  return cost;
}

/// Milliseconds of wall clock for `fn`.
template <typename Fn>
double TimeMs(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(end - start)
             .count() /
         1000.0;
}

inline void PrintHeader(const char* title, const char* columns) {
  std::printf("\n=== %s ===\n%s\n", title, columns);
}

}  // namespace bench
}  // namespace lsmlab

#endif  // LSMLAB_BENCH_BENCH_COMMON_H_
