// E6 — Range filters cut empty-range scan I/O (tutorial §II-3).
//
// Claim: without range filters every scan probes every run; SuRF-style
// tries help most for long ranges, Rosetta for short ranges, prefix Bloom
// only within its prefix bucket, SNARF across the board at its budget.
// Sweeps empty-range width; reports I/Os per scan and filter memory.

#include <memory>

#include "bench_common.h"
#include "rangefilter/range_filter.h"

namespace lsmlab {
namespace bench {
namespace {

struct Entry {
  const char* name;
  const RangeFilterPolicy* policy;  // may be null (baseline)
};

void Run() {
  PrintHeader("E6 range filters",
              "filter,range_width,ios_per_empty_scan,"
              "runs_skipped_per_scan,range_filter_bytes_per_table");

  std::unique_ptr<const RangeFilterPolicy> surf(NewSurfRangeFilter(8));
  std::unique_ptr<const RangeFilterPolicy> rosetta(
      NewRosettaRangeFilter(22, 26));
  std::unique_ptr<const RangeFilterPolicy> snarf(NewSnarfRangeFilter(12));
  std::unique_ptr<const RangeFilterPolicy> prefix(
      NewPrefixBloomRangeFilter(6, 12));
  const Entry entries[] = {
      {"none", nullptr},
      {"prefix_bloom", prefix.get()},
      {"surf", surf.get()},
      {"rosetta", rosetta.get()},
      {"snarf", snarf.get()},
  };

  // Keys on a coarse lattice so empty ranges of all widths exist: key i
  // maps to i << 24 (gaps of 2^24).
  const size_t kN = 50000;

  for (const Entry& e : entries) {
    Options options;
    options.merge_policy = MergePolicy::kTiering;  // many runs: worst case
    options.size_ratio = 4;
    options.write_buffer_size = 64 << 10;
    options.max_file_size = 64 << 10;
    options.level0_compaction_trigger = 2;
    options.filter_allocation = FilterAllocation::kNone;
    options.range_filter_policy = e.policy;

    TestDb db;
    db.env.reset(NewMemEnv());
    options.env = db.env.get();
    if (!DB::Open(options, "/bench", &db.db).ok()) {
      std::abort();
    }
    Random load_rng(11);
    for (size_t i = 0; i < kN; i++) {
      const uint64_t v = load_rng.Uniform(1 << 22);
      const std::string key = EncodeKey(v << 24);
      db.db->Put({}, key, ValueForKey(key, 32)).IgnoreError();
    }

    for (unsigned width_log : {4u, 8u, 12u, 16u, 20u}) {
      const uint64_t width = uint64_t{1} << width_log;
      Random rng(23);
      const int kScans = 300;
      DBStats before = db.db->GetStats();
      const uint64_t io_before = db.io()->block_reads.load();
      for (int i = 0; i < kScans; i++) {
        // Ranges inside lattice gaps: offset 2^23..2^23+width (< 2^24).
        const uint64_t base = rng.Uniform(1 << 22) << 24;
        const uint64_t lo = base + (1 << 23);
        std::vector<std::pair<std::string, std::string>> results;
        db.db->Scan({}, EncodeKey(lo), EncodeKey(lo + width), 100, &results).IgnoreError();
      }
      DBStats after = db.db->GetStats();
      const double ios =
          static_cast<double>(db.io()->block_reads.load() - io_before) /
          kScans;
      const double skipped =
          static_cast<double>(after.range_filter_skips -
                              before.range_filter_skips) /
          kScans;
      // index_filter_memory counts open tables, so read it after the
      // scans have touched every table.
      DBStats final_stats = db.db->GetStats();
      const double table_filter_bytes =
          final_stats.total_files == 0
              ? 0
              : static_cast<double>(final_stats.index_filter_memory) /
                    final_stats.total_files;
      std::printf("%s,2^%u,%.2f,%.2f,%.0f\n", e.name, width_log, ios,
                  skipped, table_filter_bytes);
    }
  }
  std::printf(
      "# expect: 'none' pays the full run count at every width; rosetta\n"
      "# and snarf skip nearly all runs for short ranges; surf skips\n"
      "# well at large widths; prefix_bloom only below its bucket size.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() { lsmlab::bench::Run(); }
