// E18 — End-to-end YCSB-style macro benchmark.
//
// Ties the survey together: the canonical cloud-serving workload mixes
// run against three tree shapes. No single design wins every workload —
// the reason the tutorial's design space is worth navigating (Module III).
//
//   A: 50% read / 50% update (zipfian)      B: 95% read / 5% update
//   C: 100% read                            D: 95% read latest / 5% insert
//   E: 95% short scans / 5% insert          F: 50% read / 50% RMW
//
// Reported: throughput proxy (ops per 1k logical I/Os — deterministic,
// hardware-free) and ns/op on this machine.

#include <cstring>

#include "bench_common.h"

namespace lsmlab {
namespace bench {
namespace {

struct Mix {
  const char* name;
  double read, update, insert, scan, rmw;
  bool read_latest;
};

void Run() {
  PrintHeader("E18 YCSB-style macro benchmark",
              "workload,policy,ops_per_1k_ios,ns_per_op,write_amp");
  const size_t kN = 50000;
  const Mix mixes[] = {
      {"A", 0.5, 0.5, 0, 0, 0, false},
      {"B", 0.95, 0.05, 0, 0, 0, false},
      {"C", 1.0, 0, 0, 0, 0, false},
      {"D", 0.95, 0, 0.05, 0, 0, true},
      {"E", 0, 0, 0.05, 0.95, 0, false},
      {"F", 0.5, 0, 0, 0, 0.5, false},
  };
  const MergePolicy policies[] = {MergePolicy::kLeveling,
                                  MergePolicy::kTiering,
                                  MergePolicy::kLazyLeveling};

  for (const Mix& mix : mixes) {
    for (MergePolicy policy : policies) {
      Options options;
      options.merge_policy = policy;
      options.size_ratio = 4;
      options.write_buffer_size = 64 << 10;
      options.max_file_size = 64 << 10;
      options.level0_compaction_trigger = 2;
      options.filter_bits_per_key = 10;
      TestDb db = LoadDb(options, kN, 100);

      auto keys = LoadedKeys(kN);
      auto zipf = NewZipfianGenerator(keys.size(), 0.99, 7);
      auto seq_insert = NewSequentialGenerator(kKeyDomain + 1);
      Random rng(13);
      uint64_t newest_inserted = 0;

      db.io()->Reset();
      const size_t kOps = 20000;
      std::string value;
      std::vector<std::pair<std::string, std::string>> results;
      const double ms = TimeMs([&] {
        for (size_t i = 0; i < kOps; i++) {
          const double r = rng.NextDouble();
          if (r < mix.read) {
            const std::string k =
                mix.read_latest && newest_inserted > 0 && rng.OneIn(2)
                    ? EncodeKey(kKeyDomain + newest_inserted)
                    : keys[zipf->Next()];
            db.db->Get({}, k, &value).IgnoreError();
          } else if (r < mix.read + mix.update) {
            const std::string& k = keys[zipf->Next()];
            db.db->Put({}, k, ValueForKey(k, 100)).IgnoreError();
          } else if (r < mix.read + mix.update + mix.insert) {
            newest_inserted = seq_insert->Next() - kKeyDomain;
            const std::string k = EncodeKey(kKeyDomain + newest_inserted);
            db.db->Put({}, k, ValueForKey(k, 100)).IgnoreError();
          } else if (r < mix.read + mix.update + mix.insert + mix.scan) {
            const std::string& k = keys[zipf->Next()];
            db.db->Scan({}, k, EncodeKey(DecodeKey(k) + (kKeyDomain / kN) * 60),
                        50, &results).IgnoreError();
          } else {  // read-modify-write
            const std::string& k = keys[zipf->Next()];
            db.db->Get({}, k, &value).IgnoreError();
            db.db->Put({}, k, ValueForKey(k, 100)).IgnoreError();
          }
        }
      });

      const uint64_t ios = db.io()->block_reads.load() +
                           db.io()->block_writes.load();
      const char* pname = policy == MergePolicy::kLeveling
                              ? "leveling"
                              : (policy == MergePolicy::kTiering
                                     ? "tiering"
                                     : "lazy");
      std::printf("%s,%s,%.1f,%.0f,%.2f\n", mix.name, pname,
                  ios == 0 ? 999999.0 : kOps * 1000.0 / ios,
                  ms * 1e6 / kOps, db.db->GetStats().WriteAmplification());
    }
  }
  std::printf(
      "# expect: leveling/lazy win scan-heavy E decisively and edge out\n"
      "# read-heavy B/C; tiering always posts the lowest write_amp and\n"
      "# overtakes as mixes approach write-only (E1); with 50%% zipfian\n"
      "# reads (A, F) Bloom filters keep leveling competitive — no policy\n"
      "# dominates, which is why the design space must be navigated.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() { lsmlab::bench::Run(); }
