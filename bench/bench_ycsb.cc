// E18 — End-to-end YCSB-style macro benchmark.
//
// Ties the survey together: the canonical cloud-serving workload mixes
// run against three tree shapes. No single design wins every workload —
// the reason the tutorial's design space is worth navigating (Module III).
//
//   A: 50% read / 50% update (zipfian)      B: 95% read / 5% update
//   C: 100% read                            D: 95% read latest / 5% insert
//   E: 95% short scans / 5% insert          F: 50% read / 50% RMW
//
// Reported: throughput proxy (ops per 1k logical I/Os — deterministic,
// hardware-free) and ns/op on this machine.

#include <cstring>

#include "bench_common.h"

namespace lsmlab {
namespace bench {
namespace {

struct Mix {
  const char* name;
  double read, update, insert, scan, rmw;
  bool read_latest;
};

void Run() {
  PrintHeader("E18 YCSB-style macro benchmark",
              "workload,policy,ops_per_1k_ios,ns_per_op,write_amp");
  const size_t kN = 50000;
  const Mix mixes[] = {
      {"A", 0.5, 0.5, 0, 0, 0, false},
      {"B", 0.95, 0.05, 0, 0, 0, false},
      {"C", 1.0, 0, 0, 0, 0, false},
      {"D", 0.95, 0, 0.05, 0, 0, true},
      {"E", 0, 0, 0.05, 0.95, 0, false},
      {"F", 0.5, 0, 0, 0, 0.5, false},
  };
  const MergePolicy policies[] = {MergePolicy::kLeveling,
                                  MergePolicy::kTiering,
                                  MergePolicy::kLazyLeveling};

  for (const Mix& mix : mixes) {
    for (MergePolicy policy : policies) {
      Options options;
      options.merge_policy = policy;
      options.size_ratio = 4;
      options.write_buffer_size = 64 << 10;
      options.max_file_size = 64 << 10;
      options.level0_compaction_trigger = 2;
      options.filter_bits_per_key = 10;
      TestDb db = LoadDb(options, kN, 100);

      auto keys = LoadedKeys(kN);
      auto zipf = NewZipfianGenerator(keys.size(), 0.99, 7);
      auto seq_insert = NewSequentialGenerator(kKeyDomain + 1);
      Random rng(13);
      uint64_t newest_inserted = 0;

      db.io()->Reset();
      const size_t kOps = 20000;
      std::string value;
      std::vector<std::pair<std::string, std::string>> results;
      const double ms = TimeMs([&] {
        for (size_t i = 0; i < kOps; i++) {
          const double r = rng.NextDouble();
          if (r < mix.read) {
            const std::string k =
                mix.read_latest && newest_inserted > 0 && rng.OneIn(2)
                    ? EncodeKey(kKeyDomain + newest_inserted)
                    : keys[zipf->Next()];
            db.db->Get({}, k, &value).IgnoreError();
          } else if (r < mix.read + mix.update) {
            const std::string& k = keys[zipf->Next()];
            db.db->Put({}, k, ValueForKey(k, 100)).IgnoreError();
          } else if (r < mix.read + mix.update + mix.insert) {
            newest_inserted = seq_insert->Next() - kKeyDomain;
            const std::string k = EncodeKey(kKeyDomain + newest_inserted);
            db.db->Put({}, k, ValueForKey(k, 100)).IgnoreError();
          } else if (r < mix.read + mix.update + mix.insert + mix.scan) {
            const std::string& k = keys[zipf->Next()];
            db.db->Scan({}, k, EncodeKey(DecodeKey(k) + (kKeyDomain / kN) * 60),
                        50, &results).IgnoreError();
          } else {  // read-modify-write
            const std::string& k = keys[zipf->Next()];
            db.db->Get({}, k, &value).IgnoreError();
            db.db->Put({}, k, ValueForKey(k, 100)).IgnoreError();
          }
        }
      });

      const uint64_t ios = db.io()->block_reads.load() +
                           db.io()->block_writes.load();
      const char* pname = policy == MergePolicy::kLeveling
                              ? "leveling"
                              : (policy == MergePolicy::kTiering
                                     ? "tiering"
                                     : "lazy");
      std::printf("%s,%s,%.1f,%.0f,%.2f\n", mix.name, pname,
                  ios == 0 ? 999999.0 : kOps * 1000.0 / ios,
                  ms * 1e6 / kOps, db.db->GetStats().WriteAmplification());
    }
  }
  std::printf(
      "# expect: leveling/lazy win scan-heavy E decisively and edge out\n"
      "# read-heavy B/C; tiering always posts the lowest write_amp and\n"
      "# overtakes as mixes approach write-only (E1); with 50%% zipfian\n"
      "# reads (A, F) Bloom filters keep leveling competitive — no policy\n"
      "# dominates, which is why the design space must be navigated.\n");
}

// Shard-count axis: the same YCSB mixes against a hash-sharded tree.
// Reads route to exactly one shard, so the logical I/O cost per op must
// stay flat as shards grow — sharding buys write parallelism (E22)
// without taxing the read path. Scans pay a small merge overhead (one
// heap pop per shard cursor) but identical block reads.
void RunSharded() {
  PrintHeader("E22b YCSB read-path cost vs shard count",
              "workload,shards,ops_per_1k_ios,ns_per_op,write_amp");
  const size_t kN = 50000;
  const Mix mixes[] = {
      {"A", 0.5, 0.5, 0, 0, 0, false},
      {"C", 1.0, 0, 0, 0, 0, false},
      {"E", 0, 0, 0.05, 0.95, 0, false},
  };
  for (const Mix& mix : mixes) {
    for (int shards : {1, 2, 4, 8}) {
      Options options;
      options.num_shards = shards;
      options.merge_policy = MergePolicy::kLeveling;
      options.size_ratio = 4;
      // Constant totals across rows: each shard gets an equal slice of
      // the same memtable budget; file size tracks the buffer.
      options.write_buffer_size = (64 << 10) / shards;
      options.max_file_size = (64 << 10) / shards;
      options.level0_compaction_trigger = 2;
      options.filter_bits_per_key = 10;
      TestDb db = LoadDb(options, kN, 100);

      auto keys = LoadedKeys(kN);
      auto zipf = NewZipfianGenerator(keys.size(), 0.99, 7);
      auto seq_insert = NewSequentialGenerator(kKeyDomain + 1);
      Random rng(13);
      uint64_t newest_inserted = 0;

      db.io()->Reset();
      const size_t kOps = 20000;
      std::string value;
      std::vector<std::pair<std::string, std::string>> results;
      const double ms = TimeMs([&] {
        for (size_t i = 0; i < kOps; i++) {
          const double r = rng.NextDouble();
          if (r < mix.read) {
            db.db->Get({}, keys[zipf->Next()], &value).IgnoreError();
          } else if (r < mix.read + mix.update) {
            const std::string& k = keys[zipf->Next()];
            db.db->Put({}, k, ValueForKey(k, 100)).IgnoreError();
          } else if (r < mix.read + mix.update + mix.insert) {
            newest_inserted = seq_insert->Next() - kKeyDomain;
            const std::string k = EncodeKey(kKeyDomain + newest_inserted);
            db.db->Put({}, k, ValueForKey(k, 100)).IgnoreError();
          } else {
            const std::string& k = keys[zipf->Next()];
            db.db->Scan({}, k, EncodeKey(DecodeKey(k) + (kKeyDomain / kN) * 60),
                        50, &results).IgnoreError();
          }
        }
      });

      const uint64_t ios = db.io()->block_reads.load() +
                           db.io()->block_writes.load();
      std::printf("%s,%d,%.1f,%.0f,%.2f\n", mix.name, shards,
                  ios == 0 ? 999999.0 : kOps * 1000.0 / ios,
                  ms * 1e6 / kOps, db.db->GetStats().WriteAmplification());
    }
  }
  std::printf(
      "# expect: point reads are where sharding is free — C stays flat\n"
      "# down the shard column because a Get touches exactly one shard's\n"
      "# filters and runs. A degrades mildly at 8 shards: the split\n"
      "# buffer means smaller files and more runs per shard, nudging\n"
      "# write_amp and per-read run counts up. E is the cautionary row:\n"
      "# hash partitioning scatters adjacent keys across every shard, so\n"
      "# each short scan fans out to all N shards and every shard\n"
      "# produces up to `limit` candidates before the merge truncates —\n"
      "# ops_per_1k_ios falls roughly Nx. Range scans want range\n"
      "# partitioning; the hash split buys E22's write scaling at the\n"
      "# price of scan fan-out, one more axis of the design space.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() {
  lsmlab::bench::Run();
  lsmlab::bench::RunSharded();
}
