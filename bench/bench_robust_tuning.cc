// E11 — Robust tuning under workload uncertainty (tutorial III-2;
// Endure [35]).
//
// Claim: the nominally optimal design can degrade badly when the observed
// workload drifts from the expected one; the robust design concedes a
// little at the expected workload and bounds the loss in a neighborhood.
// Model-driven experiment (Endure's own evaluation is cost-model based,
// validated by spot measurements — here E1-E4 provide that validation).

#include "bench_common.h"
#include "tuning/endure.h"

namespace lsmlab {
namespace bench {
namespace {

void Run() {
  PrintHeader("E11 nominal vs robust tuning (Endure)",
              "rho,nominal_design,robust_design,cost_at_expected_nominal,"
              "cost_at_expected_robust,worst_cost_nominal,worst_cost_robust");

  // Expected workload: write-heavy with few reads (a typical ingest tier).
  WorkloadMix expected;
  expected.writes = 0.85;
  expected.zero_result_lookups = 0.07;
  expected.existing_lookups = 0.05;
  expected.short_scans = 0.03;

  for (double rho : {0.0, 0.1, 0.25, 0.5, 1.0, 2.0}) {
    auto result =
        RobustTune(50'000'000, 64, 256 << 20, expected, rho,
                   /*neighborhood_samples=*/512);
    std::printf("%.2f,\"%s\",\"%s\",%.4f,%.4f,%.4f,%.4f\n", rho,
                result.nominal.Describe().c_str(),
                result.robust.Describe().c_str(),
                WorkloadCost(result.nominal.spec, expected),
                WorkloadCost(result.robust.spec, expected),
                result.nominal_worst_cost, result.robust_worst_cost);
  }
  std::printf(
      "# expect: at rho=0 both designs coincide; as rho grows the robust\n"
      "# design shifts toward read-safer shapes, its worst-case cost stays\n"
      "# below the nominal design's worst case, at a small premium at the\n"
      "# expected workload.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() { lsmlab::bench::Run(); }
