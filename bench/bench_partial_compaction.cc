// E10 — Partial-compaction file-picking policies (tutorial I-2;
// Sarkar et al. [74, 76]).
//
// Claims: partial compaction bounds the work per compaction (the
// tail-latency motivation), and WHICH file is picked changes total write
// amplification — picking the file with least next-level overlap writes
// the least.

#include "bench_common.h"
#include "cache/block_cache.h"

namespace lsmlab {
namespace bench {
namespace {

const char* PickerName(CompactionFilePicker p) {
  switch (p) {
    case CompactionFilePicker::kWholeLevel:
      return "whole_level";
    case CompactionFilePicker::kRoundRobin:
      return "round_robin";
    case CompactionFilePicker::kMinOverlap:
      return "min_overlap";
    case CompactionFilePicker::kCold:
      return "cold";
    case CompactionFilePicker::kOldest:
      return "oldest";
  }
  return "?";
}

void Run() {
  PrintHeader("E10 partial compaction file pickers",
              "picker,write_amp,compactions,avg_bytes_per_compaction,"
              "max_level_bytes");
  const size_t kN = 80000;
  for (CompactionFilePicker picker :
       {CompactionFilePicker::kWholeLevel, CompactionFilePicker::kRoundRobin,
        CompactionFilePicker::kMinOverlap, CompactionFilePicker::kCold,
        CompactionFilePicker::kOldest}) {
    BlockCache cache(1 << 20);  // hotness source for the kCold picker
    Options options;
    options.merge_policy = MergePolicy::kLeveling;
    options.size_ratio = 4;
    options.write_buffer_size = 32 << 10;
    options.max_file_size = 16 << 10;
    options.level0_compaction_trigger = 2;
    options.file_picker = picker;
    options.block_cache = &cache;
    options.filter_allocation = FilterAllocation::kNone;

    // Interleave writes with skewed reads so "cold" has signal.
    TestDb db;
    db.env.reset(NewMemEnv());
    options.env = db.env.get();
    if (!DB::Open(options, "/bench", &db.db).ok()) {
      std::abort();
    }
    auto gen = NewUniformGenerator(kKeyDomain, 42);
    auto hot = NewZipfianGenerator(kKeyDomain, 0.99, 5);
    std::string value;
    for (size_t i = 0; i < kN; i++) {
      const std::string key = EncodeKey(gen->Next());
      db.db->Put({}, key, ValueForKey(key, 64)).IgnoreError();
      if (i % 4 == 0) {
        db.db->Get({}, EncodeKey(hot->Next()), &value).IgnoreError();
      }
    }

    DBStats stats = db.db->GetStats();
    uint64_t max_level = 0;
    for (uint64_t b : stats.bytes_per_level) {
      max_level = std::max(max_level, b);
    }
    std::printf("%s,%.2f,%llu,%.0f,%llu\n", PickerName(picker),
                stats.WriteAmplification(),
                static_cast<unsigned long long>(stats.compactions),
                stats.compactions == 0
                    ? 0.0
                    : static_cast<double>(stats.bytes_compacted) /
                          stats.compactions,
                static_cast<unsigned long long>(max_level));
  }
  std::printf(
      "# expect: partial pickers move far fewer bytes per compaction than\n"
      "# whole_level (smoother work); min_overlap has the lowest\n"
      "# write_amp among the partial pickers.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() { lsmlab::bench::Run(); }
