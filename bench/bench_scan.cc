// E14 — Range scan cost vs tree shape (tutorial I-1 scan access pattern,
// §II-3; REMIX [93] motivation).
//
// Claims: a scan opens one iterator per sorted run and pays ~1 seek I/O
// per run plus the data it returns, so tiering scans cost ~T-1 times
// leveling's for short ranges; long scans amortize the per-run seeks.

#include <set>

#include "bench_common.h"
#include "core/dbformat.h"
#include "core/merging_iterator.h"
#include "index/remix.h"

namespace lsmlab {
namespace bench {
namespace {

void Run() {
  PrintHeader("E14 scan cost vs shape",
              "policy,T,scan_width_keys,ios_per_scan,ns_per_scan,runs");
  const size_t kN = 60000;
  struct Shape {
    MergePolicy policy;
    int t;
  } shapes[] = {
      {MergePolicy::kLeveling, 4},
      {MergePolicy::kLazyLeveling, 4},
      {MergePolicy::kTiering, 4},
      {MergePolicy::kTiering, 8},
  };
  for (const Shape& shape : shapes) {
    Options options;
    options.merge_policy = shape.policy;
    options.size_ratio = shape.t;
    options.write_buffer_size = 32 << 10;
    options.max_file_size = 32 << 10;
    options.level0_compaction_trigger = 2;
    options.filter_allocation = FilterAllocation::kNone;
    TestDb db = LoadDb(options, kN, 64);
    DBStats stats = db.db->GetStats();

    const uint64_t gap = kKeyDomain / kN;  // avg key spacing
    for (uint64_t width : {1u, 16u, 256u, 4096u}) {
      Random rng(13);
      const int kScans = width >= 4096 ? 40 : 200;
      const uint64_t io_before = db.io()->block_reads.load();
      const double ms = TimeMs([&] {
        for (int i = 0; i < kScans; i++) {
          const uint64_t start = rng.Uniform(kKeyDomain);
          std::vector<std::pair<std::string, std::string>> results;
          db.db->Scan({}, EncodeKey(start), EncodeKey(start + gap * width),
                      width, &results).IgnoreError();
        }
      });
      const double ios =
          static_cast<double>(db.io()->block_reads.load() - io_before) /
          kScans;
      const char* name =
          shape.policy == MergePolicy::kLeveling
              ? "leveling"
              : (shape.policy == MergePolicy::kTiering ? "tiering"
                                                       : "lazy-leveling");
      std::printf("%s,%d,%llu,%.2f,%.0f,%d\n", name, shape.t,
                  static_cast<unsigned long long>(width), ios,
                  ms * 1e6 / kScans, stats.total_runs);
    }
  }
  std::printf(
      "# expect: short scans cost ~1 I/O per run (tiering >> leveling);\n"
      "# as width grows the returned data dominates and the shapes\n"
      "# converge (tiering retains a constant-factor penalty).\n");
}

/// In-memory iterator over a sorted key vector (CPU-only comparison).
class VecIter : public Iterator {
 public:
  explicit VecIter(const std::vector<std::string>* data)
      : data_(data), pos_(data->size()) {}
  bool Valid() const override { return pos_ < data_->size(); }
  void SeekToFirst() override { pos_ = 0; }
  void SeekToLast() override { pos_ = data_->empty() ? 0 : data_->size() - 1; }
  void Seek(const Slice& t) override {
    pos_ = std::lower_bound(data_->begin(), data_->end(), t.ToString()) -
           data_->begin();
  }
  void Next() override { pos_++; }
  void Prev() override { pos_ = pos_ == 0 ? data_->size() : pos_ - 1; }
  Slice key() const override { return Slice((*data_)[pos_]); }
  Slice value() const override { return Slice(); }
  Status status() const override { return Status::OK(); }

 private:
  const std::vector<std::string>* data_;
  size_t pos_;
};

void RemixPart() {
  PrintHeader("E14b REMIX vs K-way merge (scan CPU over in-memory runs)",
              "runs,method,seek_plus_scan64_ns,index_bytes_per_entry");
  Random rng(3);
  for (int num_runs : {2, 4, 8, 16}) {
    // Build disjoint random runs.
    std::vector<std::vector<std::string>> runs(num_runs);
    std::set<uint64_t> used;
    for (auto& run : runs) {
      std::set<uint64_t> keys;
      while (keys.size() < 20000u / num_runs) {
        uint64_t v = rng.Next64() >> 24;
        if (used.insert(v).second) keys.insert(v);
      }
      for (uint64_t v : keys) run.push_back(EncodeKey(v));
    }
    std::vector<const std::vector<std::string>*> ptrs;
    for (auto& run : runs) ptrs.push_back(&run);

    std::vector<std::string> probes;
    for (int i = 0; i < 3000; i++) {
      probes.push_back(EncodeKey(rng.Next64() >> 24));
    }

    // K-way merging iterator.
    volatile size_t sink = 0;
    const double merge_ms = TimeMs([&] {
      for (const auto& p : probes) {
        std::vector<Iterator*> children;
        for (auto& run : runs) children.push_back(new VecIter(&run));
        std::unique_ptr<Iterator> merged(NewMergingIterator(
            BytewiseComparator(), children.data(), (int)children.size()));
        merged->Seek(p);
        for (int j = 0; j < 64 && merged->Valid(); j++) {
          sink = sink + merged->key().size();
          merged->Next();
        }
      }
    });

    // REMIX cursor.
    RemixView view(ptrs);
    const double remix_ms = TimeMs([&] {
      for (const auto& p : probes) {
        auto cursor = view.NewCursor();
        cursor.Seek(p);
        for (int j = 0; j < 64 && cursor.Valid(); j++) {
          sink = sink + cursor.key().size();
          cursor.Next();
        }
      }
    });

    const double bytes_per_entry =
        static_cast<double>(view.MemoryUsage()) / view.num_entries();
    std::printf("%d,merge,%.0f,-\n", num_runs,
                merge_ms * 1e6 / probes.size());
    std::printf("%d,remix,%.0f,%.2f\n", num_runs,
                remix_ms * 1e6 / probes.size(), bytes_per_entry);
  }
  std::printf(
      "# expect: merge cost grows with the run count (per-entry winner\n"
      "# selection); REMIX iteration is comparison-free so its scan cost\n"
      "# stays ~flat, at ~1-2 index bytes per entry (the paper's claim).\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() {
  lsmlab::bench::Run();
  lsmlab::bench::RemixPart();
}
