// E4 — Monkey's optimal filter-memory allocation (tutorial §II-5 [18,19]).
//
// Claim: at equal total filter memory, allocating exponentially more
// bits/key to shallow levels (FPR proportional to level size) yields fewer
// zero-result lookup I/Os than the uniform production default.

#include "bench_common.h"
#include "tuning/monkey.h"

namespace lsmlab {
namespace bench {
namespace {

void Run() {
  PrintHeader("E4 monkey vs uniform filter allocation",
              "avg_bits_per_key,allocation,zero_get_ios,model_expected_ios,"
              "filter_mem_bytes");
  const size_t kN = 60000;
  for (double bits : {2.0, 5.0, 8.0, 10.0}) {
    for (bool monkey : {false, true}) {
      Options options;
      options.merge_policy = MergePolicy::kLeveling;
      options.size_ratio = 4;
      options.write_buffer_size = 32 << 10;
      options.max_file_size = 32 << 10;
      options.level0_compaction_trigger = 2;
      options.filter_allocation = monkey ? FilterAllocation::kMonkey
                                         : FilterAllocation::kUniform;
      options.filter_bits_per_key = bits;
      TestDb db = LoadDb(options, kN, 64);

      const GetCost zero = MeasureGets(&db, kN, 4000, /*existing=*/false);
      DBStats stats = db.db->GetStats();

      // Model expectation for the realized number of levels.
      int levels = 0;
      for (size_t l = 0; l < stats.runs_per_level.size(); l++) {
        if (stats.runs_per_level[l] > 0) {
          levels = static_cast<int>(l) + 1;
        }
      }
      std::vector<double> per_level =
          monkey ? MonkeyBitsPerLevel(bits, levels, options.size_ratio)
                 : std::vector<double>(levels, bits);
      const double model = ExpectedZeroResultLookupIos(per_level, 1);

      std::printf("%.0f,%s,%.3f,%.3f,%zu\n", bits,
                  monkey ? "monkey" : "uniform", zero.ios_per_op, model,
                  stats.index_filter_memory);
    }
  }
  std::printf(
      "# expect: at every budget, monkey zero_get_ios <= uniform's at\n"
      "# comparable filter memory; the gap is widest at small budgets.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() { lsmlab::bench::Run(); }
