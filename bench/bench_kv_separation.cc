// E15 — Key-value separation (tutorial I-2; WiscKey [53], HashKV [12],
// DiffKV [49]).
//
// Claims: storing large values in a value log collapses compaction write
// amplification (pointers move, payloads don't) — the bigger the value,
// the bigger the win — while point reads pay one extra access and range
// scans lose locality (one random log read per result).

#include "bench_common.h"

namespace lsmlab {
namespace bench {
namespace {

void Run() {
  PrintHeader("E15 key-value separation (WiscKey)",
              "value_bytes,separation,write_amp,tree_bytes,vlog_bytes,"
              "existing_get_ios,scan100_ios");
  const size_t kTotalPayload = 24 << 20;  // equal payload per row
  for (size_t value_bytes : {64u, 256u, 1024u, 4096u}) {
    const size_t n = kTotalPayload / value_bytes;
    for (bool separate : {false, true}) {
      Options options;
      options.merge_policy = MergePolicy::kLeveling;
      options.size_ratio = 4;
      options.write_buffer_size = 256 << 10;
      options.max_file_size = 256 << 10;
      options.level0_compaction_trigger = 2;
      options.value_separation_threshold = separate ? 128 : 0;
      options.max_vlog_file_bytes = 4 << 20;
      TestDb db = LoadDb(options, n, value_bytes);

      DBStats stats = db.db->GetStats();
      const GetCost hit =
          MeasureGets(&db, n, 1000, /*existing=*/true);

      // 100-key range scans.
      Random rng(3);
      auto keys = LoadedKeys(n);
      const uint64_t io_before = db.io()->block_reads.load();
      const int kScans = 100;
      for (int i = 0; i < kScans; i++) {
        const uint64_t start = DecodeKey(keys[rng.Uniform(keys.size())]);
        std::vector<std::pair<std::string, std::string>> results;
        db.db->Scan({}, EncodeKey(start),
                    EncodeKey(start + (kKeyDomain / n) * 120), 100,
                    &results).IgnoreError();
      }
      const double scan_ios =
          static_cast<double>(db.io()->block_reads.load() - io_before) /
          kScans;

      std::printf("%zu,%s,%.2f,%llu,%llu,%.2f,%.1f\n", value_bytes,
                  separate ? "on" : "off", stats.WriteAmplification(),
                  static_cast<unsigned long long>(stats.total_bytes),
                  static_cast<unsigned long long>(stats.value_log_bytes),
                  hit.ios_per_op, scan_ios);
    }
  }
  std::printf(
      "# expect: separation cuts write_amp toward ~1 as values grow (only\n"
      "# pointers are re-merged); point reads pay ~1 extra I/O; scans pay\n"
      "# ~1 random vlog I/O per returned entry — the WiscKey tradeoff.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() { lsmlab::bench::Run(); }
