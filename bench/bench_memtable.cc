// E13 — Memtable representation tradeoffs (tutorial I-2, §II-4, §II-5;
// FloDB [9], RUM conjecture [7]).
//
// Claims: the skiplist balances insert and search; a sorted dense vector
// searches faster (cache locality) but pays O(n) inserts; an auxiliary
// hash index gives O(1) latest-version gets on either representation for
// extra memory.
//
// E23 (--threads=1,2,4,8) — Concurrent memtable inserts.
//
// Claims: `InsertConcurrently`'s per-level CAS splice lets N writers
// insert into one skiplist memtable with near-linear scaling (the list is
// insert-only, so a failed CAS only re-walks one splice level), while the
// serial `Add` path caps throughput at one writer no matter how many
// threads the write path runs. CAS retries stay rare relative to inserts
// — contention is per-splice-neighborhood, not global.

#include <atomic>
#include <cstring>
#include <thread>

#include "bench_common.h"
#include "memtable/memtable.h"

namespace lsmlab {
namespace bench {
namespace {

void Run() {
  PrintHeader("E13 memtable designs",
              "rep,hash_index,entries,insert_ns,get_ns,memory_bytes");
  InternalKeyComparator icmp(BytewiseComparator());

  for (size_t n : {10'000u, 50'000u}) {
    for (MemTable::Rep rep :
         {MemTable::Rep::kSkipList, MemTable::Rep::kSortedVector}) {
      for (bool hash : {false, true}) {
        MemTable* mem = new MemTable(icmp, rep, hash);
        mem->Ref();

        auto gen = NewUniformGenerator(kKeyDomain, 42);
        std::vector<std::string> keys;
        keys.reserve(n);
        for (size_t i = 0; i < n; i++) {
          keys.push_back(EncodeKey(gen->Next()));
        }
        const double insert_ms = TimeMs([&] {
          for (size_t i = 0; i < n; i++) {
            mem->Add(i + 1, ValueType::kTypeValue, keys[i], "value");
          }
        });

        Random rng(7);
        std::string value;
        Status st;
        volatile bool sink = false;
        const size_t kGets = 100000;
        const double get_ms = TimeMs([&] {
          for (size_t i = 0; i < kGets; i++) {
            LookupKey lkey(keys[rng.Uniform(keys.size())],
                           kMaxSequenceNumber);
            sink = sink ^ mem->Get(lkey, &value, &st);
          }
        });

        std::printf("%s,%s,%zu,%.0f,%.0f,%zu\n",
                    rep == MemTable::Rep::kSkipList ? "skiplist" : "vector",
                    hash ? "on" : "off", n, insert_ms * 1e6 / n,
                    get_ms * 1e6 / kGets, mem->ApproximateMemoryUsage());
        mem->Unref();
      }
    }
  }
  std::printf(
      "# expect: vector insert_ns grows ~linearly with entries while\n"
      "# skiplist stays ~log; vector get_ns < skiplist get_ns; the hash\n"
      "# index makes get_ns flat and small on both, for extra memory.\n");
}

void RunE23Threads(const std::vector<int>& thread_counts) {
  PrintHeader("E23a concurrent memtable inserts vs writer threads",
              "mode,threads,entries,kinserts_per_s,speedup,cas_retries");
  InternalKeyComparator icmp(BytewiseComparator());
  constexpr size_t kN = 400'000;  // fixed total keys across every row

  auto gen = NewUniformGenerator(kKeyDomain, 42);
  std::vector<std::string> keys;
  keys.reserve(kN);
  for (size_t i = 0; i < kN; i++) {
    keys.push_back(EncodeKey(gen->Next()));
  }

  // Serial baseline: the pre-change single-writer Add path.
  double serial_wps = 0;
  {
    MemTable* mem = new MemTable(icmp, MemTable::Rep::kSkipList, false);
    mem->Ref();
    const double ms = TimeMs([&] {
      for (size_t i = 0; i < kN; i++) {
        mem->Add(i + 1, ValueType::kTypeValue, keys[i], "value");
      }
    });
    serial_wps = kN / (ms / 1000.0);
    std::printf("serial_add,1,%zu,%.1f,1.00x,0\n", kN, serial_wps / 1000.0);
    mem->Unref();
  }

  for (int threads : thread_counts) {
    MemTable* mem = new MemTable(icmp, MemTable::Rep::kSkipList, false);
    mem->Ref();
    const size_t per_thread = kN / threads;
    std::atomic<uint64_t> cas_retries{0};
    std::vector<std::thread> workers;
    const double ms = TimeMs([&] {
      for (int t = 0; t < threads; t++) {
        workers.emplace_back([&, t] {
          // Pre-assigned disjoint sequence ranges, exactly as the parallel
          // group apply hands them out to followers.
          const size_t begin = static_cast<size_t>(t) * per_thread;
          uint64_t retries = 0;
          for (size_t i = begin; i < begin + per_thread; i++) {
            retries += mem->AddConcurrent(i + 1, ValueType::kTypeValue,
                                          keys[i], "value");
          }
          cas_retries.fetch_add(retries, std::memory_order_relaxed);
        });
      }
      for (auto& w : workers) {
        w.join();
      }
    });
    const double wps = per_thread * threads / (ms / 1000.0);
    std::printf("concurrent,%d,%zu,%.1f,%.2fx,%llu\n", threads,
                per_thread * static_cast<size_t>(threads), wps / 1000.0,
                wps / serial_wps,
                static_cast<unsigned long long>(cas_retries.load()));
    mem->Unref();
  }
  std::printf(
      "# expect: concurrent@1 lands within ~10%% of serial_add (the CAS\n"
      "# splice costs one uncontended compare_exchange per level). On a\n"
      "# multi-core host 4-8 writers scale to several times the serial\n"
      "# rate, bounded by memory bandwidth rather than the list; on a\n"
      "# 1-core testbed the rows stay flat at the serial rate — the\n"
      "# signal there is the flat overhead plus cas_retries staying a\n"
      "# tiny fraction of entries even with 8 interleaved writers (the\n"
      "# end-to-end parallel win is measured by E23b, which charges\n"
      "# insert cost in overlappable wall clock). \n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main(int argc, char** argv) {
  // `--threads=1,2,4,8` runs the E23a concurrent-insert sweep with the
  // given writer counts; with no arguments the E13 representation
  // comparison runs.
  std::vector<int> thread_counts;
  for (int i = 1; i < argc; i++) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      int value = 0;
      for (const char* p = arg + 10; *p != '\0'; p++) {
        if (*p >= '0' && *p <= '9') {
          value = value * 10 + (*p - '0');
        } else if (*p == ',' && value > 0) {
          thread_counts.push_back(value);
          value = 0;
        } else {
          std::fprintf(stderr, "bad --threads list: %s\n", arg);
          return 1;
        }
      }
      if (value > 0) {
        thread_counts.push_back(value);
      }
    } else {
      std::fprintf(stderr, "usage: %s [--threads=1,2,4,8]\n", argv[0]);
      return 1;
    }
  }
  if (!thread_counts.empty()) {
    lsmlab::bench::RunE23Threads(thread_counts);
    return 0;
  }
  lsmlab::bench::Run();
}
