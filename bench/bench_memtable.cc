// E13 — Memtable representation tradeoffs (tutorial I-2, §II-4, §II-5;
// FloDB [9], RUM conjecture [7]).
//
// Claims: the skiplist balances insert and search; a sorted dense vector
// searches faster (cache locality) but pays O(n) inserts; an auxiliary
// hash index gives O(1) latest-version gets on either representation for
// extra memory.

#include "bench_common.h"
#include "memtable/memtable.h"

namespace lsmlab {
namespace bench {
namespace {

void Run() {
  PrintHeader("E13 memtable designs",
              "rep,hash_index,entries,insert_ns,get_ns,memory_bytes");
  InternalKeyComparator icmp(BytewiseComparator());

  for (size_t n : {10'000u, 50'000u}) {
    for (MemTable::Rep rep :
         {MemTable::Rep::kSkipList, MemTable::Rep::kSortedVector}) {
      for (bool hash : {false, true}) {
        MemTable* mem = new MemTable(icmp, rep, hash);
        mem->Ref();

        auto gen = NewUniformGenerator(kKeyDomain, 42);
        std::vector<std::string> keys;
        keys.reserve(n);
        for (size_t i = 0; i < n; i++) {
          keys.push_back(EncodeKey(gen->Next()));
        }
        const double insert_ms = TimeMs([&] {
          for (size_t i = 0; i < n; i++) {
            mem->Add(i + 1, ValueType::kTypeValue, keys[i], "value");
          }
        });

        Random rng(7);
        std::string value;
        Status st;
        volatile bool sink = false;
        const size_t kGets = 100000;
        const double get_ms = TimeMs([&] {
          for (size_t i = 0; i < kGets; i++) {
            LookupKey lkey(keys[rng.Uniform(keys.size())],
                           kMaxSequenceNumber);
            sink = sink ^ mem->Get(lkey, &value, &st);
          }
        });

        std::printf("%s,%s,%zu,%.0f,%.0f,%zu\n",
                    rep == MemTable::Rep::kSkipList ? "skiplist" : "vector",
                    hash ? "on" : "off", n, insert_ms * 1e6 / n,
                    get_ms * 1e6 / kGets, mem->ApproximateMemoryUsage());
        mem->Unref();
      }
    }
  }
  std::printf(
      "# expect: vector insert_ns grows ~linearly with entries while\n"
      "# skiplist stays ~log; vector get_ns < skiplist get_ns; the hash\n"
      "# index makes get_ns flat and small on both, for extra memory.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() { lsmlab::bench::Run(); }
