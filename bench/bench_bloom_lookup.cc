// E3 — Bloom filters bound point-lookup cost (tutorial §II-2).
//
// Claim: zero-result lookups cost ~sum of per-run FPRs in I/Os, falling
// exponentially with bits/key; existing-key lookups approach 1 I/O.

#include <cmath>

#include "bench_common.h"

namespace lsmlab {
namespace bench {
namespace {

void Run() {
  PrintHeader("E3 bloom filters vs lookup cost",
              "bits_per_key,zero_get_ios,model_fpr_sum,existing_get_ios,"
              "filter_skips_per_zero_get,filter_mem_bytes");
  const size_t kN = 60000;
  for (double bits : {0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0}) {
    Options options;
    options.merge_policy = MergePolicy::kLeveling;
    options.size_ratio = 4;
    options.write_buffer_size = 32 << 10;
    options.max_file_size = 32 << 10;
    options.level0_compaction_trigger = 2;
    options.filter_allocation =
        bits == 0 ? FilterAllocation::kNone : FilterAllocation::kUniform;
    options.filter_bits_per_key = bits;
    TestDb db = LoadDb(options, kN, 64);

    DBStats before = db.db->GetStats();
    const GetCost zero = MeasureGets(&db, kN, 3000, /*existing=*/false);
    DBStats mid = db.db->GetStats();
    const GetCost hit = MeasureGets(&db, kN, 3000, /*existing=*/true);

    const double skips_per_get =
        static_cast<double>(mid.filter_skips - before.filter_skips) / 3000;
    const double fpr = bits == 0 ? 1.0 : std::exp(-bits * 0.4804530139);
    std::printf("%.0f,%.3f,%.3f,%.3f,%.2f,%zu\n", bits, zero.ios_per_op,
                fpr * mid.total_runs, hit.ios_per_op, skips_per_get,
                mid.index_filter_memory);
  }
  std::printf(
      "# expect: zero_get_ios falls ~exponentially with bits_per_key and\n"
      "# existing_get_ios approaches the cost of one run probe;\n"
      "# filter memory grows linearly with bits_per_key.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() { lsmlab::bench::Run(); }
