// E19 — Read-triggered compaction (tutorial I-2/III: the compaction
// *trigger* primitive [74, 76]; LevelDB's allowed_seeks).
//
// Claim: size-based triggers leave read-hostile shapes in place when
// writes stop. A data-driven trigger — "this file keeps wasting probes" —
// lets the read workload itself pay a one-time merge to repair the shape.
// Measured: lookup I/Os over successive windows of a read-only phase,
// with the trigger off vs on.

#include "bench_common.h"

namespace lsmlab {
namespace bench {
namespace {

void Run() {
  PrintHeader("E19 read-triggered compaction",
              "seek_trigger,window,zero_get_ios,runs,compactions");
  for (bool trigger : {false, true}) {
    Options options;
    options.merge_policy = MergePolicy::kLeveling;
    options.size_ratio = 4;
    options.write_buffer_size = 32 << 10;
    options.max_file_size = 32 << 10;
    // High L0 trigger: flush runs pile up and writes stop before the
    // size-based trigger ever fires — the read-hostile residue.
    options.level0_compaction_trigger = 16;
    options.filter_allocation = FilterAllocation::kNone;
    options.seek_compaction_threshold = trigger ? 64 : 0;

    TestDb db;
    db.env.reset(NewMemEnv());
    options.env = db.env.get();
    if (!DB::Open(options, "/bench", &db.db).ok()) {
      std::abort();
    }
    auto gen = NewUniformGenerator(kKeyDomain, 42);
    for (int i = 0; i < 12000; i++) {
      const std::string key = EncodeKey(gen->Next());
      db.db->Put({}, key, ValueForKey(key, 64)).IgnoreError();
    }

    // Read-only phase in windows, with a trickle of writes (1 per 50
    // reads) that lets the engine service pending triggers.
    auto absent = NewUniformGenerator(kKeyDomain, 9);
    std::string value;
    for (int window = 0; window < 5; window++) {
      const uint64_t io_before = db.io()->block_reads.load();
      const int kOps = 2000;
      for (int i = 0; i < kOps; i++) {
        db.db->Get({}, EncodeKey(absent->Next()), &value).IgnoreError();
        if (i % 50 == 0) {
          const std::string key = EncodeKey(gen->Next());
          db.db->Put({}, key, ValueForKey(key, 64)).IgnoreError();
        }
      }
      DBStats stats = db.db->GetStats();
      std::printf("%s,%d,%.2f,%d,%llu\n", trigger ? "on" : "off", window,
                  static_cast<double>(db.io()->block_reads.load() -
                                      io_before) /
                      kOps,
                  stats.total_runs,
                  static_cast<unsigned long long>(stats.compactions));
    }
  }
  std::printf(
      "# expect: with the trigger off, every window pays the full pile of\n"
      "# level-0 runs; with it on, the first window's wasted probes fire\n"
      "# compactions and later windows read a collapsed shape.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() { lsmlab::bench::Run(); }
