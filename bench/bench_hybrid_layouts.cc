// E2 — Hybrid data layouts (tutorial I-2; Dostoevsky [20]).
//
// Claim: lazy leveling achieves close to tiering's write cost while
// keeping point-lookup and short-scan cost close to leveling, because the
// largest level (which dominates reads) stays a single run.

#include "bench_common.h"

namespace lsmlab {
namespace bench {
namespace {

const char* PolicyName(MergePolicy p) {
  switch (p) {
    case MergePolicy::kLeveling:
      return "leveling";
    case MergePolicy::kTiering:
      return "tiering";
    case MergePolicy::kLazyLeveling:
      return "lazy-leveling";
    default:
      return "fifo";
  }
}

void Run() {
  PrintHeader("E2 hybrid layouts",
              "policy,T,write_amp,zero_get_ios,existing_get_ios,"
              "short_scan_ios,runs");
  const size_t kN = 60000;
  for (int t : {4, 8}) {
    for (MergePolicy policy :
         {MergePolicy::kLeveling, MergePolicy::kTiering,
          MergePolicy::kLazyLeveling}) {
      Options options;
      options.merge_policy = policy;
      options.size_ratio = t;
      options.write_buffer_size = 32 << 10;
      options.max_file_size = 32 << 10;
      options.level0_compaction_trigger = 2;
      options.filter_allocation = FilterAllocation::kNone;
      TestDb db = LoadDb(options, kN, 64);

      DBStats stats = db.db->GetStats();
      const GetCost zero = MeasureGets(&db, kN, 1500, /*existing=*/false);
      const GetCost hit = MeasureGets(&db, kN, 1500, /*existing=*/true);

      // Short scans: 16 consecutive keys from a random start.
      Random rng(3);
      const uint64_t io_before = db.io()->block_reads.load();
      const int kScans = 400;
      for (int i = 0; i < kScans; i++) {
        const uint64_t start = rng.Uniform(kKeyDomain);
        std::vector<std::pair<std::string, std::string>> results;
        db.db->Scan({}, EncodeKey(start),
                    EncodeKey(start + (kKeyDomain / kN) * 16), 16, &results).IgnoreError();
      }
      const double scan_ios =
          static_cast<double>(db.io()->block_reads.load() - io_before) /
          kScans;

      std::printf("%s,%d,%.2f,%.2f,%.2f,%.2f,%d\n", PolicyName(policy), t,
                  stats.WriteAmplification(), zero.ios_per_op,
                  hit.ios_per_op, scan_ios, stats.total_runs);
    }
  }
  std::printf(
      "# expect: lazy-leveling write_amp ~ tiering's, but zero/existing\n"
      "# lookup and short-scan I/Os closer to leveling's.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() { lsmlab::bench::Run(); }
