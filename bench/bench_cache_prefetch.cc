// E8 — Block caching and compaction-aware prefetch (tutorial §II-1;
// RocksDB block cache [71], LSbM [82], Leaper [90]).
//
// Claims: (i) hit rate grows with cache size under skewed reads;
// (ii) a compaction invalidates the cached hot blocks (they belong to
// deleted files), causing a miss burst; (iii) Leaper-style prefetch of the
// compaction output restores the hit rate immediately.

#include "bench_common.h"
#include "cache/block_cache.h"

namespace lsmlab {
namespace bench {
namespace {

void CacheSizeSweep() {
  PrintHeader("E8a cache size vs hit rate (zipfian reads)",
              "cache_bytes,hit_rate,get_ios");
  const size_t kN = 60000;
  for (size_t cache_kb : {64u, 256u, 1024u, 4096u, 16384u}) {
    BlockCache cache(cache_kb << 10);
    Options options;
    options.merge_policy = MergePolicy::kLeveling;
    options.size_ratio = 6;
    options.write_buffer_size = 64 << 10;
    options.max_file_size = 64 << 10;
    options.level0_compaction_trigger = 2;
    options.block_cache = &cache;
    TestDb db = LoadDb(options, kN, 64);

    auto keys = LoadedKeys(kN);
    auto zipf = NewZipfianGenerator(keys.size(), 0.99, 17);
    std::string value;
    // Warm up, then measure.
    for (int i = 0; i < 20000; i++) {
      db.db->Get({}, keys[zipf->Next()], &value).IgnoreError();
    }
    cache.ResetStats();
    const uint64_t io_before = db.io()->block_reads.load();
    const int kOps = 30000;
    for (int i = 0; i < kOps; i++) {
      db.db->Get({}, keys[zipf->Next()], &value).IgnoreError();
    }
    const auto stats = cache.GetStats();
    const double hit_rate =
        static_cast<double>(stats.hits) /
        std::max<uint64_t>(1, stats.hits + stats.misses);
    std::printf("%zu,%.3f,%.3f\n", cache_kb << 10, hit_rate,
                static_cast<double>(db.io()->block_reads.load() - io_before) /
                    kOps);
  }
}

/// Hit rate over a window of zipfian gets.
double WindowHitRate(TestDb* db, BlockCache* cache,
                     const std::vector<std::string>& keys, int ops,
                     uint64_t seed) {
  auto zipf = NewZipfianGenerator(keys.size(), 0.99, seed);
  cache->ResetStats();
  std::string value;
  for (int i = 0; i < ops; i++) {
    db->db->Get({}, keys[zipf->Next()], &value).IgnoreError();
  }
  const auto stats = cache->GetStats();
  return static_cast<double>(stats.hits) /
         std::max<uint64_t>(1, stats.hits + stats.misses);
}

void PrefetchPart() {
  PrintHeader("E8b compaction invalidation and Leaper-style prefetch",
              "prefetch,hit_rate_before,hit_rate_after_compaction,"
              "hit_rate_recovered");
  const size_t kN = 40000;
  for (bool prefetch : {false, true}) {
    BlockCache cache(8 << 20);
    Options options;
    options.merge_policy = MergePolicy::kLeveling;
    options.size_ratio = 6;
    options.write_buffer_size = 64 << 10;
    options.max_file_size = 64 << 10;
    options.level0_compaction_trigger = 2;
    options.block_cache = &cache;
    options.prefetch_after_compaction = prefetch;
    options.prefetch_hotness_threshold = 8;
    options.prefetch_budget_bytes = 8 << 20;
    TestDb db = LoadDb(options, kN, 64);

    auto keys = LoadedKeys(kN);
    // Warm the cache with skewed reads.
    WindowHitRate(&db, &cache, keys, 20000, 29);
    const double before = WindowHitRate(&db, &cache, keys, 10000, 31);

    // Force a full compaction: every cached block belongs to dead files.
    db.db->CompactAll().IgnoreError();
    const double after = WindowHitRate(&db, &cache, keys, 10000, 37);
    const double recovered = WindowHitRate(&db, &cache, keys, 10000, 41);

    std::printf("%s,%.3f,%.3f,%.3f\n", prefetch ? "on" : "off", before,
                after, recovered);
  }
  std::printf(
      "# expect: without prefetch the first window after compaction has a\n"
      "# much lower hit rate (cold misses on the rewritten files); with\n"
      "# prefetch the post-compaction hit rate stays near the warmed one.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() {
  lsmlab::bench::CacheSizeSweep();
  lsmlab::bench::PrefetchPart();
}
