// E16 — Partitioned filters (tutorial §II-2; RocksDB partitioned
// index/filters [89]).
//
// Claim: partitioning the filter per data block lets the engine keep only
// the hot partitions cached instead of one resident monolithic filter per
// table — a large cut in resident filter memory at ~the same skip rate,
// paying an occasional extra I/O to fetch a cold partition.

#include "bench_common.h"
#include "cache/block_cache.h"

namespace lsmlab {
namespace bench {
namespace {

void Run() {
  PrintHeader("E16 monolithic vs partitioned filters",
              "filters,resident_filter_index_bytes,zero_get_ios_cold,"
              "zero_get_ios_warm,filter_skips_per_get");
  const size_t kN = 80000;
  for (bool partitioned : {false, true}) {
    BlockCache cache(2 << 20);
    Options options;
    options.merge_policy = MergePolicy::kLeveling;
    options.size_ratio = 6;
    options.write_buffer_size = 64 << 10;
    options.max_file_size = 64 << 10;
    options.level0_compaction_trigger = 2;
    options.filter_bits_per_key = 10;
    options.partition_filters = partitioned;
    options.block_cache = &cache;
    TestDb db = LoadDb(options, kN, 64);
    db.db->CompactAll().IgnoreError();

    DBStats s0 = db.db->GetStats();
    const GetCost cold = MeasureGets(&db, kN, 3000, /*existing=*/false, 5);
    // Warm: repeat over the same absent-key stream so partitions are hot.
    MeasureGets(&db, kN, 10000, /*existing=*/false, 9);
    DBStats s1 = db.db->GetStats();
    const GetCost warm = MeasureGets(&db, kN, 10000, /*existing=*/false, 9);
    DBStats s2 = db.db->GetStats();

    // Touch every table so IndexMemoryUsage reflects all of them.
    MeasureGets(&db, kN, 2000, /*existing=*/true, 11);
    DBStats resident = db.db->GetStats();

    std::printf("%s,%zu,%.3f,%.3f,%.2f\n",
                partitioned ? "partitioned" : "monolithic",
                resident.index_filter_memory, cold.ios_per_op,
                warm.ios_per_op,
                static_cast<double>(s2.filter_skips - s1.filter_skips) /
                    10000);
    (void)s0;
  }
  std::printf(
      "# expect: partitioned cuts resident filter+index memory (filters\n"
      "# live in the block cache, not the table reader); warm skip rates\n"
      "# match monolithic; cold probes pay ~1 extra I/O per partition\n"
      "# fetch, amortized away by the cache.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() { lsmlab::bench::Run(); }
