// E5 — Point-filter implementation tradeoffs (tutorial §II-2).
//
// Claims: blocked Bloom trades a little FPR for one-cache-line probes;
// cuckoo and ribbon filters undercut Bloom's space at low FPR (ribbon
// paying CPU at build time); elastic filters trade FPR for probe cost by
// consulting fewer units.

#include <chrono>
#include <functional>
#include <memory>

#include "bench_common.h"
#include "filter/filter_policy.h"
#include "util/hash.h"

namespace lsmlab {
namespace bench {
namespace {

struct Entry {
  const char* name;
  std::function<const FilterPolicy*()> make;
};

void Run() {
  PrintHeader("E5 filter zoo",
              "filter,bits_per_key_actual,fpr,build_ns_per_key,"
              "query_ns_negative,query_ns_positive");
  const size_t kN = 200000;
  std::vector<std::string> keys;
  std::vector<Slice> slices;
  keys.reserve(kN);
  for (size_t i = 0; i < kN; i++) {
    keys.push_back(EncodeKey(i * 2));
  }
  for (const auto& k : keys) {
    slices.emplace_back(k);
  }
  std::vector<std::string> absent;
  for (size_t i = 0; i < kN; i++) {
    absent.push_back(EncodeKey(i * 2 + 1));
  }

  const Entry entries[] = {
      {"bloom10", [] { return NewBloomFilterPolicy(10); }},
      {"bloom14", [] { return NewBloomFilterPolicy(14); }},
      {"blocked_bloom10", [] { return NewBlockedBloomFilterPolicy(10); }},
      {"cuckoo12", [] { return NewCuckooFilterPolicy(12); }},
      {"ribbon10", [] { return NewRibbonFilterPolicy(10); }},
      {"elastic12_4of4",
       [] { return NewElasticBloomFilterPolicy(12, 4, 4); }},
      {"elastic12_2of4",
       [] { return NewElasticBloomFilterPolicy(12, 4, 2); }},
  };

  for (const Entry& e : entries) {
    std::unique_ptr<const FilterPolicy> policy(e.make());
    std::string filter;
    const double build_ms = TimeMs([&] {
      policy->CreateFilter(slices.data(), slices.size(), &filter);
    });

    size_t fp = 0;
    volatile bool sink = false;
    const double neg_ms = TimeMs([&] {
      for (const auto& k : absent) {
        const bool r = policy->KeyMayMatch(k, filter);
        sink = sink ^ r;
        if (r) {
          fp++;
        }
      }
    });
    const double pos_ms = TimeMs([&] {
      for (const auto& k : keys) {
        sink = sink ^ policy->KeyMayMatch(k, filter);
      }
    });

    std::printf("%s,%.2f,%.5f,%.0f,%.0f,%.0f\n", e.name,
                filter.size() * 8.0 / kN,
                static_cast<double>(fp) / absent.size(),
                build_ms * 1e6 / kN, neg_ms * 1e6 / kN, pos_ms * 1e6 / kN);
  }
  std::printf(
      "# expect: blocked bloom fastest negative probes, slightly higher\n"
      "# fpr than bloom10; ribbon smaller than bloom at similar fpr with\n"
      "# higher build cost; cuckoo low fpr at ~15-16 effective bits;\n"
      "# elastic 2of4 cheaper probes but higher fpr than 4of4.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() { lsmlab::bench::Run(); }
