// E12 — In-block hash index for point lookups (tutorial §II-4;
// RocksDB data-block hash index [86]).
//
// Claim: once a block is in memory, binary search inside it costs several
// cache-missing key comparisons; a per-block hash index resolves the
// restart group in O(1) and proves absence without any comparison.
// A large block cache keeps all blocks resident so the difference is
// CPU-only, as in the original study.

#include "bench_common.h"
#include "cache/block_cache.h"

namespace lsmlab {
namespace bench {
namespace {

void Run() {
  PrintHeader("E12 data-block hash index",
              "hash_index,existing_get_ns,missing_get_ns,hash_hits,"
              "hash_proven_absent,space_overhead_ratio");
  const size_t kN = 80000;
  uint64_t baseline_bytes = 0;
  for (bool hash_index : {false, true}) {
    BlockCache cache(256 << 20);  // everything stays cached: CPU-bound
    Options options;
    options.merge_policy = MergePolicy::kLeveling;
    options.size_ratio = 6;
    options.write_buffer_size = 64 << 10;
    options.max_file_size = 64 << 10;
    options.level0_compaction_trigger = 2;
    options.block_cache = &cache;
    options.block_hash_index = hash_index;
    options.filter_allocation = FilterAllocation::kNone;
    TestDb db = LoadDb(options, kN, 64);
    db.db->CompactAll().IgnoreError();

    // Warm every block.
    MeasureGets(&db, kN, 20000, /*existing=*/true, 3);
    const GetCost hit = MeasureGets(&db, kN, 40000, /*existing=*/true, 7);
    const GetCost miss = MeasureGets(&db, kN, 40000, /*existing=*/false, 9);

    DBStats stats = db.db->GetStats();
    if (!hash_index) {
      baseline_bytes = stats.total_bytes;
    }
    std::printf("%s,%.0f,%.0f,%llu,%llu,%.3f\n", hash_index ? "on" : "off",
                hit.ns_per_op, miss.ns_per_op,
                static_cast<unsigned long long>(stats.hash_index_hits),
                static_cast<unsigned long long>(stats.hash_index_absent),
                baseline_bytes == 0
                    ? 1.0
                    : static_cast<double>(stats.total_bytes) /
                          baseline_bytes);
  }
  std::printf(
      "# expect: with the hash index on, get latency drops (fewer key\n"
      "# comparisons) for a few percent of extra table space; missing-key\n"
      "# gets benefit most via proven-absent short-circuits.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() { lsmlab::bench::Run(); }
