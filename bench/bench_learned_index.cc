// E7 — Fence pointers vs learned indexes (tutorial §II-1, §II-4;
// Bourbon [17], RadixSpline [46], Google production study [1]).
//
// Claims: fence pointers cost one binary search over one entry per block;
// learned models shrink the in-memory index by 1-2 orders of magnitude on
// smooth key distributions and answer lookups with fewer cache-missing
// comparisons. Part 2 measures the same effect end-to-end in the engine.

#include <chrono>

#include "bench_common.h"
#include "index/fence_pointers.h"
#include "index/plr.h"
#include "index/radix_spline.h"

namespace lsmlab {
namespace bench {
namespace {

void StandalonePart() {
  PrintHeader("E7a standalone index structures (1M keys, 256 keys/block)",
              "index,memory_bytes,lookup_ns,avg_candidate_window");
  const size_t kN = 1'000'000;
  const size_t kKeysPerBlock = 256;
  auto keys = SortedUniqueKeys(kN, kKeyDomain, 5);

  // Block fences: last key of each 256-key block.
  std::vector<uint64_t> fences;
  for (size_t i = kKeysPerBlock - 1; i < keys.size(); i += kKeysPerBlock) {
    fences.push_back(keys[i]);
  }
  if (fences.empty() || fences.back() != keys.back()) {
    fences.push_back(keys.back());
  }

  std::vector<uint64_t> probes;
  Random rng(6);
  for (int i = 0; i < 200000; i++) {
    probes.push_back(keys[rng.Uniform(keys.size())]);
  }

  {
    FencePointers fp;
    for (uint64_t f : fences) {
      fp.Add(EncodeKey(f));
    }
    volatile size_t sink = 0;
    std::vector<std::string> encoded;
    encoded.reserve(probes.size());
    for (uint64_t p : probes) {
      encoded.push_back(EncodeKey(p));
    }
    const double ms = TimeMs([&] {
      for (const auto& p : encoded) {
        sink = sink + fp.FindBlock(p);
      }
    });
    std::printf("fence_pointers,%zu,%.0f,1\n", fp.MemoryUsage(),
                ms * 1e6 / probes.size());
  }

  for (uint32_t epsilon : {8u, 64u}) {
    PiecewiseLinearModel plr(epsilon);
    for (uint64_t f : fences) {
      plr.Add(f);
    }
    plr.Finish();
    volatile size_t sink = 0;
    double window = 0;
    const double ms = TimeMs([&] {
      for (uint64_t p : probes) {
        size_t lo, hi;
        plr.Lookup(p, &lo, &hi);
        sink = sink + lo;
        window += hi - lo + 1;
      }
    });
    std::printf("plr_eps%u,%zu,%.0f,%.1f\n", epsilon, plr.MemoryUsage(),
                ms * 1e6 / probes.size(), window / probes.size());
  }

  {
    RadixSpline rs(8, 14);
    for (uint64_t f : fences) {
      rs.Add(f);
    }
    rs.Finish();
    volatile size_t sink = 0;
    double window = 0;
    const double ms = TimeMs([&] {
      for (uint64_t p : probes) {
        size_t lo, hi;
        rs.Lookup(p, &lo, &hi);
        sink = sink + lo;
        window += hi - lo + 1;
      }
    });
    std::printf("radix_spline_eps8,%zu,%.0f,%.1f\n", rs.MemoryUsage(),
                ms * 1e6 / probes.size(), window / probes.size());
  }
}

void EnginePart() {
  PrintHeader("E7b engine point lookups by index type",
              "index_type,get_ns,get_ios,index_filter_mem_bytes,"
              "learned_seeks");
  const size_t kN = 80000;
  struct Cfg {
    const char* name;
    TableOptions::IndexType type;
  } cfgs[] = {
      {"binary_search", TableOptions::IndexType::kBinarySearch},
      {"learned_plr", TableOptions::IndexType::kLearnedPlr},
      {"radix_spline", TableOptions::IndexType::kRadixSpline},
  };
  for (const Cfg& cfg : cfgs) {
    Options options;
    options.merge_policy = MergePolicy::kLeveling;
    options.size_ratio = 6;
    options.write_buffer_size = 64 << 10;
    options.max_file_size = 256 << 10;  // big tables: many fences each
    options.level0_compaction_trigger = 2;
    options.index_type = cfg.type;
    options.learned_index_epsilon = 8;
    TestDb db = LoadDb(options, kN, 64);
    const GetCost hit = MeasureGets(&db, kN, 20000, /*existing=*/true);
    DBStats stats = db.db->GetStats();
    std::printf("%s,%.0f,%.2f,%zu,%llu\n", cfg.name, hit.ns_per_op,
                hit.ios_per_op, stats.index_filter_memory,
                static_cast<unsigned long long>(stats.learned_index_seeks));
  }
  std::printf(
      "# expect: learned models are 10-100x smaller than fences at equal\n"
      "# lookup I/O; engine lookups use learned seeks with unchanged I/O.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lsmlab

int main() {
  lsmlab::bench::StandalonePart();
  lsmlab::bench::EnginePart();
}
