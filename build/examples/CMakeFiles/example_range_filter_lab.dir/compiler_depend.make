# Empty compiler generated dependencies file for example_range_filter_lab.
# This may be replaced when dependencies are built.
