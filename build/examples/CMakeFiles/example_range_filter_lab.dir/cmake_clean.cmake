file(REMOVE_RECURSE
  "CMakeFiles/example_range_filter_lab.dir/range_filter_lab.cc.o"
  "CMakeFiles/example_range_filter_lab.dir/range_filter_lab.cc.o.d"
  "example_range_filter_lab"
  "example_range_filter_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_range_filter_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
