file(REMOVE_RECURSE
  "CMakeFiles/example_compaction_shapes.dir/compaction_shapes.cc.o"
  "CMakeFiles/example_compaction_shapes.dir/compaction_shapes.cc.o.d"
  "example_compaction_shapes"
  "example_compaction_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_compaction_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
