# Empty dependencies file for example_compaction_shapes.
# This may be replaced when dependencies are built.
