file(REMOVE_RECURSE
  "CMakeFiles/example_robust_tuning_demo.dir/robust_tuning_demo.cc.o"
  "CMakeFiles/example_robust_tuning_demo.dir/robust_tuning_demo.cc.o.d"
  "example_robust_tuning_demo"
  "example_robust_tuning_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_robust_tuning_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
