# Empty compiler generated dependencies file for example_robust_tuning_demo.
# This may be replaced when dependencies are built.
