file(REMOVE_RECURSE
  "CMakeFiles/example_design_space_explorer.dir/design_space_explorer.cc.o"
  "CMakeFiles/example_design_space_explorer.dir/design_space_explorer.cc.o.d"
  "example_design_space_explorer"
  "example_design_space_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_design_space_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
