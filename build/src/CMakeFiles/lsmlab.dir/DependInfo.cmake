
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/block_cache.cc" "src/CMakeFiles/lsmlab.dir/cache/block_cache.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/cache/block_cache.cc.o.d"
  "/root/repo/src/cache/lru_cache.cc" "src/CMakeFiles/lsmlab.dir/cache/lru_cache.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/cache/lru_cache.cc.o.d"
  "/root/repo/src/core/compaction/compaction_policy.cc" "src/CMakeFiles/lsmlab.dir/core/compaction/compaction_policy.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/core/compaction/compaction_policy.cc.o.d"
  "/root/repo/src/core/db_impl.cc" "src/CMakeFiles/lsmlab.dir/core/db_impl.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/core/db_impl.cc.o.d"
  "/root/repo/src/core/db_iter.cc" "src/CMakeFiles/lsmlab.dir/core/db_iter.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/core/db_iter.cc.o.d"
  "/root/repo/src/core/dbformat.cc" "src/CMakeFiles/lsmlab.dir/core/dbformat.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/core/dbformat.cc.o.d"
  "/root/repo/src/core/filename.cc" "src/CMakeFiles/lsmlab.dir/core/filename.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/core/filename.cc.o.d"
  "/root/repo/src/core/merging_iterator.cc" "src/CMakeFiles/lsmlab.dir/core/merging_iterator.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/core/merging_iterator.cc.o.d"
  "/root/repo/src/core/table_cache.cc" "src/CMakeFiles/lsmlab.dir/core/table_cache.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/core/table_cache.cc.o.d"
  "/root/repo/src/core/version.cc" "src/CMakeFiles/lsmlab.dir/core/version.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/core/version.cc.o.d"
  "/root/repo/src/core/write_batch.cc" "src/CMakeFiles/lsmlab.dir/core/write_batch.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/core/write_batch.cc.o.d"
  "/root/repo/src/filter/blocked_bloom.cc" "src/CMakeFiles/lsmlab.dir/filter/blocked_bloom.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/filter/blocked_bloom.cc.o.d"
  "/root/repo/src/filter/bloom.cc" "src/CMakeFiles/lsmlab.dir/filter/bloom.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/filter/bloom.cc.o.d"
  "/root/repo/src/filter/cuckoo.cc" "src/CMakeFiles/lsmlab.dir/filter/cuckoo.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/filter/cuckoo.cc.o.d"
  "/root/repo/src/filter/elastic.cc" "src/CMakeFiles/lsmlab.dir/filter/elastic.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/filter/elastic.cc.o.d"
  "/root/repo/src/filter/ribbon.cc" "src/CMakeFiles/lsmlab.dir/filter/ribbon.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/filter/ribbon.cc.o.d"
  "/root/repo/src/format/block.cc" "src/CMakeFiles/lsmlab.dir/format/block.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/format/block.cc.o.d"
  "/root/repo/src/format/block_builder.cc" "src/CMakeFiles/lsmlab.dir/format/block_builder.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/format/block_builder.cc.o.d"
  "/root/repo/src/format/format.cc" "src/CMakeFiles/lsmlab.dir/format/format.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/format/format.cc.o.d"
  "/root/repo/src/format/sstable_builder.cc" "src/CMakeFiles/lsmlab.dir/format/sstable_builder.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/format/sstable_builder.cc.o.d"
  "/root/repo/src/format/sstable_reader.cc" "src/CMakeFiles/lsmlab.dir/format/sstable_reader.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/format/sstable_reader.cc.o.d"
  "/root/repo/src/format/two_level_iterator.cc" "src/CMakeFiles/lsmlab.dir/format/two_level_iterator.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/format/two_level_iterator.cc.o.d"
  "/root/repo/src/index/fence_pointers.cc" "src/CMakeFiles/lsmlab.dir/index/fence_pointers.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/index/fence_pointers.cc.o.d"
  "/root/repo/src/index/plr.cc" "src/CMakeFiles/lsmlab.dir/index/plr.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/index/plr.cc.o.d"
  "/root/repo/src/index/radix_spline.cc" "src/CMakeFiles/lsmlab.dir/index/radix_spline.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/index/radix_spline.cc.o.d"
  "/root/repo/src/index/remix.cc" "src/CMakeFiles/lsmlab.dir/index/remix.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/index/remix.cc.o.d"
  "/root/repo/src/memtable/memtable.cc" "src/CMakeFiles/lsmlab.dir/memtable/memtable.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/memtable/memtable.cc.o.d"
  "/root/repo/src/rangefilter/prefix_bloom.cc" "src/CMakeFiles/lsmlab.dir/rangefilter/prefix_bloom.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/rangefilter/prefix_bloom.cc.o.d"
  "/root/repo/src/rangefilter/rosetta.cc" "src/CMakeFiles/lsmlab.dir/rangefilter/rosetta.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/rangefilter/rosetta.cc.o.d"
  "/root/repo/src/rangefilter/snarf.cc" "src/CMakeFiles/lsmlab.dir/rangefilter/snarf.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/rangefilter/snarf.cc.o.d"
  "/root/repo/src/rangefilter/surf.cc" "src/CMakeFiles/lsmlab.dir/rangefilter/surf.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/rangefilter/surf.cc.o.d"
  "/root/repo/src/storage/fault_env.cc" "src/CMakeFiles/lsmlab.dir/storage/fault_env.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/storage/fault_env.cc.o.d"
  "/root/repo/src/storage/io_stats.cc" "src/CMakeFiles/lsmlab.dir/storage/io_stats.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/storage/io_stats.cc.o.d"
  "/root/repo/src/storage/mem_env.cc" "src/CMakeFiles/lsmlab.dir/storage/mem_env.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/storage/mem_env.cc.o.d"
  "/root/repo/src/storage/posix_env.cc" "src/CMakeFiles/lsmlab.dir/storage/posix_env.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/storage/posix_env.cc.o.d"
  "/root/repo/src/tuning/cost_model.cc" "src/CMakeFiles/lsmlab.dir/tuning/cost_model.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/tuning/cost_model.cc.o.d"
  "/root/repo/src/tuning/endure.cc" "src/CMakeFiles/lsmlab.dir/tuning/endure.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/tuning/endure.cc.o.d"
  "/root/repo/src/tuning/monkey.cc" "src/CMakeFiles/lsmlab.dir/tuning/monkey.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/tuning/monkey.cc.o.d"
  "/root/repo/src/tuning/navigator.cc" "src/CMakeFiles/lsmlab.dir/tuning/navigator.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/tuning/navigator.cc.o.d"
  "/root/repo/src/util/arena.cc" "src/CMakeFiles/lsmlab.dir/util/arena.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/util/arena.cc.o.d"
  "/root/repo/src/util/bitvector.cc" "src/CMakeFiles/lsmlab.dir/util/bitvector.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/util/bitvector.cc.o.d"
  "/root/repo/src/util/coding.cc" "src/CMakeFiles/lsmlab.dir/util/coding.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/util/coding.cc.o.d"
  "/root/repo/src/util/comparator.cc" "src/CMakeFiles/lsmlab.dir/util/comparator.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/util/comparator.cc.o.d"
  "/root/repo/src/util/crc32c.cc" "src/CMakeFiles/lsmlab.dir/util/crc32c.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/util/crc32c.cc.o.d"
  "/root/repo/src/util/hash.cc" "src/CMakeFiles/lsmlab.dir/util/hash.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/util/hash.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/lsmlab.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/iterator.cc" "src/CMakeFiles/lsmlab.dir/util/iterator.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/util/iterator.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/lsmlab.dir/util/status.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/util/status.cc.o.d"
  "/root/repo/src/vlog/value_log.cc" "src/CMakeFiles/lsmlab.dir/vlog/value_log.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/vlog/value_log.cc.o.d"
  "/root/repo/src/wal/log_reader.cc" "src/CMakeFiles/lsmlab.dir/wal/log_reader.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/wal/log_reader.cc.o.d"
  "/root/repo/src/wal/log_writer.cc" "src/CMakeFiles/lsmlab.dir/wal/log_writer.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/wal/log_writer.cc.o.d"
  "/root/repo/src/workload/keygen.cc" "src/CMakeFiles/lsmlab.dir/workload/keygen.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/workload/keygen.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/lsmlab.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/lsmlab.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
