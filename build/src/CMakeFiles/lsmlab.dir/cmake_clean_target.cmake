file(REMOVE_RECURSE
  "liblsmlab.a"
)
