file(REMOVE_RECURSE
  "CMakeFiles/rangefilter_test.dir/rangefilter_test.cc.o"
  "CMakeFiles/rangefilter_test.dir/rangefilter_test.cc.o.d"
  "rangefilter_test"
  "rangefilter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rangefilter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
