# Empty compiler generated dependencies file for rangefilter_test.
# This may be replaced when dependencies are built.
