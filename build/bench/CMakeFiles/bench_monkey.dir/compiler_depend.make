# Empty compiler generated dependencies file for bench_monkey.
# This may be replaced when dependencies are built.
