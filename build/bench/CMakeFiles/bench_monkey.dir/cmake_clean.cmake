file(REMOVE_RECURSE
  "CMakeFiles/bench_monkey.dir/bench_monkey.cc.o"
  "CMakeFiles/bench_monkey.dir/bench_monkey.cc.o.d"
  "bench_monkey"
  "bench_monkey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_monkey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
