file(REMOVE_RECURSE
  "CMakeFiles/bench_partial_compaction.dir/bench_partial_compaction.cc.o"
  "CMakeFiles/bench_partial_compaction.dir/bench_partial_compaction.cc.o.d"
  "bench_partial_compaction"
  "bench_partial_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partial_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
