# Empty dependencies file for bench_partial_compaction.
# This may be replaced when dependencies are built.
