file(REMOVE_RECURSE
  "CMakeFiles/bench_range_filters.dir/bench_range_filters.cc.o"
  "CMakeFiles/bench_range_filters.dir/bench_range_filters.cc.o.d"
  "bench_range_filters"
  "bench_range_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_range_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
