# Empty dependencies file for bench_range_filters.
# This may be replaced when dependencies are built.
