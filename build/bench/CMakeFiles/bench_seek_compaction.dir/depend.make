# Empty dependencies file for bench_seek_compaction.
# This may be replaced when dependencies are built.
