file(REMOVE_RECURSE
  "CMakeFiles/bench_seek_compaction.dir/bench_seek_compaction.cc.o"
  "CMakeFiles/bench_seek_compaction.dir/bench_seek_compaction.cc.o.d"
  "bench_seek_compaction"
  "bench_seek_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seek_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
