# Empty dependencies file for bench_rw_tradeoff.
# This may be replaced when dependencies are built.
