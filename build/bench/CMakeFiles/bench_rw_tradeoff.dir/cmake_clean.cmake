file(REMOVE_RECURSE
  "CMakeFiles/bench_rw_tradeoff.dir/bench_rw_tradeoff.cc.o"
  "CMakeFiles/bench_rw_tradeoff.dir/bench_rw_tradeoff.cc.o.d"
  "bench_rw_tradeoff"
  "bench_rw_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rw_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
