# Empty compiler generated dependencies file for bench_cache_prefetch.
# This may be replaced when dependencies are built.
