file(REMOVE_RECURSE
  "CMakeFiles/bench_cache_prefetch.dir/bench_cache_prefetch.cc.o"
  "CMakeFiles/bench_cache_prefetch.dir/bench_cache_prefetch.cc.o.d"
  "bench_cache_prefetch"
  "bench_cache_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cache_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
