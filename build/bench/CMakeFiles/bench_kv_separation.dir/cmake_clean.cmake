file(REMOVE_RECURSE
  "CMakeFiles/bench_kv_separation.dir/bench_kv_separation.cc.o"
  "CMakeFiles/bench_kv_separation.dir/bench_kv_separation.cc.o.d"
  "bench_kv_separation"
  "bench_kv_separation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kv_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
