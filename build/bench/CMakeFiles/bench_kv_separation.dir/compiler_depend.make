# Empty compiler generated dependencies file for bench_kv_separation.
# This may be replaced when dependencies are built.
