# Empty dependencies file for bench_partitioned_filters.
# This may be replaced when dependencies are built.
