file(REMOVE_RECURSE
  "CMakeFiles/bench_partitioned_filters.dir/bench_partitioned_filters.cc.o"
  "CMakeFiles/bench_partitioned_filters.dir/bench_partitioned_filters.cc.o.d"
  "bench_partitioned_filters"
  "bench_partitioned_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partitioned_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
