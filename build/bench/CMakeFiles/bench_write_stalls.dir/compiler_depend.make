# Empty compiler generated dependencies file for bench_write_stalls.
# This may be replaced when dependencies are built.
