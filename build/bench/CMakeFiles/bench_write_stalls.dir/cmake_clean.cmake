file(REMOVE_RECURSE
  "CMakeFiles/bench_write_stalls.dir/bench_write_stalls.cc.o"
  "CMakeFiles/bench_write_stalls.dir/bench_write_stalls.cc.o.d"
  "bench_write_stalls"
  "bench_write_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_write_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
