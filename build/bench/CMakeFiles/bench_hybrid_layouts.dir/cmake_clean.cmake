file(REMOVE_RECURSE
  "CMakeFiles/bench_hybrid_layouts.dir/bench_hybrid_layouts.cc.o"
  "CMakeFiles/bench_hybrid_layouts.dir/bench_hybrid_layouts.cc.o.d"
  "bench_hybrid_layouts"
  "bench_hybrid_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
