# Empty dependencies file for bench_block_hash_index.
# This may be replaced when dependencies are built.
