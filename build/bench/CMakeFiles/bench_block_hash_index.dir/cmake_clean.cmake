file(REMOVE_RECURSE
  "CMakeFiles/bench_block_hash_index.dir/bench_block_hash_index.cc.o"
  "CMakeFiles/bench_block_hash_index.dir/bench_block_hash_index.cc.o.d"
  "bench_block_hash_index"
  "bench_block_hash_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_block_hash_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
