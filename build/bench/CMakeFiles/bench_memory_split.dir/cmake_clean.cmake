file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_split.dir/bench_memory_split.cc.o"
  "CMakeFiles/bench_memory_split.dir/bench_memory_split.cc.o.d"
  "bench_memory_split"
  "bench_memory_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
