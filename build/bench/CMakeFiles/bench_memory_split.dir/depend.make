# Empty dependencies file for bench_memory_split.
# This may be replaced when dependencies are built.
