# Empty dependencies file for bench_bloom_lookup.
# This may be replaced when dependencies are built.
