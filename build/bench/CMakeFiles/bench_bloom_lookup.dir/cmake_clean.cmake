file(REMOVE_RECURSE
  "CMakeFiles/bench_bloom_lookup.dir/bench_bloom_lookup.cc.o"
  "CMakeFiles/bench_bloom_lookup.dir/bench_bloom_lookup.cc.o.d"
  "bench_bloom_lookup"
  "bench_bloom_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bloom_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
