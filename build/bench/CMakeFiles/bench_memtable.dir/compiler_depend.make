# Empty compiler generated dependencies file for bench_memtable.
# This may be replaced when dependencies are built.
