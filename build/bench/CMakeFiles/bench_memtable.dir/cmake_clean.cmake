file(REMOVE_RECURSE
  "CMakeFiles/bench_memtable.dir/bench_memtable.cc.o"
  "CMakeFiles/bench_memtable.dir/bench_memtable.cc.o.d"
  "bench_memtable"
  "bench_memtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
