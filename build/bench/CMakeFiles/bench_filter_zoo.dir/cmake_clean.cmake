file(REMOVE_RECURSE
  "CMakeFiles/bench_filter_zoo.dir/bench_filter_zoo.cc.o"
  "CMakeFiles/bench_filter_zoo.dir/bench_filter_zoo.cc.o.d"
  "bench_filter_zoo"
  "bench_filter_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_filter_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
