# Empty compiler generated dependencies file for bench_filter_zoo.
# This may be replaced when dependencies are built.
