# Empty compiler generated dependencies file for bench_robust_tuning.
# This may be replaced when dependencies are built.
