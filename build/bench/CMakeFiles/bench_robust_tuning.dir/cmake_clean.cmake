file(REMOVE_RECURSE
  "CMakeFiles/bench_robust_tuning.dir/bench_robust_tuning.cc.o"
  "CMakeFiles/bench_robust_tuning.dir/bench_robust_tuning.cc.o.d"
  "bench_robust_tuning"
  "bench_robust_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_robust_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
