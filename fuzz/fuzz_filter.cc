// libFuzzer harness for every point- and range-filter deserializer. The
// first input byte selects the policy; the rest is the untrusted filter
// image. Filters must treat garbage as "maybe" (never a crash and never an
// incorrect reject is checked by the deterministic tests; here any
// non-crashing answer is acceptable).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "filter/filter_policy.h"
#include "rangefilter/range_filter.h"
#include "workload/keygen.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace lsmlab;
  static const std::vector<const FilterPolicy*>* point_policies = [] {
    auto* v = new std::vector<const FilterPolicy*>();
    v->push_back(NewBloomFilterPolicy(10));
    v->push_back(NewBlockedBloomFilterPolicy(10));
    v->push_back(NewCuckooFilterPolicy(12));
    v->push_back(NewRibbonFilterPolicy(10));
    v->push_back(NewElasticBloomFilterPolicy(12, 4, 2));
    return v;
  }();
  static const std::vector<const RangeFilterPolicy*>* range_policies = [] {
    auto* v = new std::vector<const RangeFilterPolicy*>();
    v->push_back(NewPrefixBloomRangeFilter(6, 10));
    v->push_back(NewSurfRangeFilter(8));
    v->push_back(NewRosettaRangeFilter(20, 24));
    v->push_back(NewSnarfRangeFilter(10));
    return v;
  }();

  if (size == 0) return 0;
  const size_t total =
      point_policies->size() + range_policies->size();
  const size_t pick = data[0] % total;
  const Slice filter(reinterpret_cast<const char*>(data) + 1, size - 1);

  if (pick < point_policies->size()) {
    const FilterPolicy* policy = (*point_policies)[pick];
    policy->KeyMayMatch("some key", filter);
    policy->HashMayMatch(0xdeadbeef12345678ull, filter);
  } else {
    const RangeFilterPolicy* policy =
        (*range_policies)[pick - point_policies->size()];
    policy->KeyMayMatch(EncodeKey(42), filter);
    policy->RangeMayMatch(EncodeKey(10), EncodeKey(99), filter);
  }
  return 0;
}
