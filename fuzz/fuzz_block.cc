// libFuzzer harness for the block parser: arbitrary bytes are handed to
// Block as a full block image and exhaustively iterated and probed. The
// corruption contract (DESIGN.md "Corruption safety contract") requires
// every outcome to be a latched Corruption status or an empty iterator —
// never a crash, sanitizer report, or unbounded loop.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "format/block.h"
#include "util/comparator.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace lsmlab;
  BlockContents contents;
  contents.owned.assign(reinterpret_cast<const char*>(data), size);
  contents.data = Slice(contents.owned);
  contents.heap_allocated = true;
  Block block(std::move(contents));

  std::unique_ptr<Iterator> it(block.NewIterator(BytewiseComparator()));
  int steps = 0;
  for (it->SeekToFirst(); it->Valid() && steps < 10000; it->Next()) {
    it->key();
    it->value();
    steps++;
  }
  it->Seek("probe-key");
  if (it->Valid()) {
    it->Next();
    if (it->Valid()) it->Prev();
  }
  it->SeekToLast();
  steps = 0;
  while (it->Valid() && steps++ < 1000) {
    it->Prev();
  }
  it->status().IgnoreError();

  uint32_t restart;
  block.HashLookup(0x12345678u, &restart);
  return 0;
}
