// libFuzzer harness for WAL record framing: the input is a log file image
// read back record by record. The reader must terminate (no unbounded
// resync loops), never crash, and report drops through the Reporter only.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "storage/env.h"
#include "wal/log_reader.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace lsmlab;
  static Env* env = NewMemEnv();

  const std::string input(reinterpret_cast<const char*>(data), size);
  const std::string fname = "/fuzz_wal";
  if (!WriteStringToFile(env, input, fname).ok()) return 0;
  std::unique_ptr<SequentialFile> file;
  if (!env->NewSequentialFile(fname, &file).ok()) return 0;

  struct CountingReporter : public wal::Reader::Reporter {
    size_t drops = 0;
    void Corruption(size_t, const Status&) override { drops++; }
  } reporter;

  wal::Reader reader(file.get(), &reporter);
  Slice record;
  std::string scratch;
  int records = 0;
  while (reader.ReadRecord(&record, &scratch) && records++ < 100000) {
  }
  return 0;
}
