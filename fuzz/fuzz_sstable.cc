// libFuzzer harness for the whole SSTable read path: the input is treated
// as a complete table file (footer -> index -> data/filter blocks) and
// opened, iterated, and point-probed. Open must reject garbage with a
// Status; anything that opens must iterate and seek without crashing, with
// errors latched in iterator status.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "format/sstable_reader.h"
#include "storage/env.h"
#include "util/hash.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace lsmlab;
  static Env* env = NewMemEnv();

  const std::string input(reinterpret_cast<const char*>(data), size);
  const std::string fname = "/fuzz_table";
  if (!WriteStringToFile(env, input, fname).ok()) return 0;
  std::unique_ptr<RandomAccessFile> file;
  if (!env->NewRandomAccessFile(fname, &file).ok()) return 0;

  TableOptions opts;
  std::unique_ptr<SSTable> table;
  Status s = SSTable::Open(opts, std::move(file), input.size(), 0, nullptr,
                           &table);
  if (!s.ok()) return 0;

  std::unique_ptr<Iterator> it(table->NewIterator());
  int steps = 0;
  for (it->SeekToFirst(); it->Valid() && steps < 10000; it->Next()) {
    it->key();
    it->value();
    steps++;
  }
  it->Seek("k000123");
  it->status().IgnoreError();

  table->KeyMayMatch("k000123", Hash64("k000123", 7));
  table->RangeMayMatch("k000100", "k000200");
  table->InternalGet("k000123", "k000123", [](const Slice&, const Slice&) {})
      .IgnoreError();
  return 0;
}
