// libFuzzer harness for manifest records: arbitrary bytes decoded as a
// VersionEdit, then re-encoded if accepted. Decode must return Corruption
// on malformed or truncated input, never crash.

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/version.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace lsmlab;
  VersionEdit edit;
  Status s = edit.DecodeFrom(Slice(reinterpret_cast<const char*>(data), size));
  if (s.ok()) {
    std::string reencoded;
    edit.EncodeTo(&reencoded);
  }
  return 0;
}
