// libFuzzer harness for the write-batch wire format: arbitrary bytes are
// installed as batch contents and iterated. Iterate must return Corruption
// on malformed tags or counts, never crash or read out of bounds.

#include <cstddef>
#include <cstdint>

#include "core/write_batch.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace lsmlab;
  struct Nop : public WriteBatch::Handler {
    void Put(const Slice&, const Slice&) override {}
    void Delete(const Slice&) override {}
  } nop;

  WriteBatch batch;
  batch.SetContentsFrom(Slice(reinterpret_cast<const char*>(data), size));
  batch.Count();
  batch.sequence();
  batch.Iterate(&nop).IgnoreError();
  return 0;
}
