#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "index/fence_pointers.h"
#include "index/plr.h"
#include "index/radix_spline.h"
#include "index/remix.h"
#include "util/random.h"
#include "workload/keygen.h"

namespace lsmlab {
namespace {

// ------------------------------------------------------- Fence pointers --

TEST(FencePointersTest, FindBlockSemantics) {
  FencePointers fences;
  // Blocks end at keys 10, 20, 30 (encoded to keep bytewise order).
  fences.Add(EncodeKey(10));
  fences.Add(EncodeKey(20));
  fences.Add(EncodeKey(30));

  EXPECT_EQ(fences.FindBlock(EncodeKey(0)), 0u);
  EXPECT_EQ(fences.FindBlock(EncodeKey(10)), 0u);  // inclusive upper bound
  EXPECT_EQ(fences.FindBlock(EncodeKey(11)), 1u);
  EXPECT_EQ(fences.FindBlock(EncodeKey(20)), 1u);
  EXPECT_EQ(fences.FindBlock(EncodeKey(30)), 2u);
  EXPECT_EQ(fences.FindBlock(EncodeKey(31)), FencePointers::npos);
}

TEST(FencePointersTest, EmptyRun) {
  FencePointers fences;
  EXPECT_EQ(fences.FindBlock("anything"), FencePointers::npos);
}

TEST(FencePointersTest, MemoryGrowsWithBlocks) {
  FencePointers fences;
  for (int i = 0; i < 1000; i++) {
    fences.Add(EncodeKey(i * 100));
  }
  EXPECT_EQ(fences.num_blocks(), 1000u);
  EXPECT_GT(fences.MemoryUsage(), 8000u);
}

// ------------------------------------------------- Learned index models --

/// Shared property: for every fed key, the true position must be inside the
/// returned [lo, hi] window. Checked over several distributions.
template <typename Model>
void CheckErrorBound(Model* model, const std::vector<uint64_t>& keys) {
  for (uint64_t k : keys) {
    model->Add(k);
  }
  model->Finish();
  for (size_t i = 0; i < keys.size(); i++) {
    size_t lo, hi;
    model->Lookup(keys[i], &lo, &hi);
    EXPECT_LE(lo, i) << "key " << keys[i];
    EXPECT_GE(hi, i) << "key " << keys[i];
  }
}

std::vector<uint64_t> MakeKeys(int distribution, size_t n, uint64_t seed) {
  std::vector<uint64_t> keys;
  Random rng(seed);
  switch (distribution) {
    case 0:  // uniform random
      keys = SortedUniqueKeys(n, uint64_t{1} << 50, seed);
      break;
    case 1:  // sequential
      for (size_t i = 0; i < n; i++) {
        keys.push_back(i);
      }
      break;
    case 2:  // piecewise: two dense clusters with a gap
      for (size_t i = 0; i < n / 2; i++) {
        keys.push_back(i * 3);
      }
      for (size_t i = 0; i < n - n / 2; i++) {
        keys.push_back((uint64_t{1} << 40) + i * 7);
      }
      break;
    case 3: {  // exponentially spaced
      uint64_t v = 1;
      for (size_t i = 0; i < n; i++) {
        keys.push_back(v);
        v += 1 + (v >> 4) + rng.Uniform(16);
      }
      break;
    }
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

class LearnedIndexTest : public ::testing::TestWithParam<int> {};

TEST_P(LearnedIndexTest, PlrHonorsEpsilon) {
  for (uint32_t epsilon : {0u, 4u, 16u, 64u}) {
    PiecewiseLinearModel plr(epsilon);
    CheckErrorBound(&plr, MakeKeys(GetParam(), 20000, 17));
  }
}

TEST_P(LearnedIndexTest, RadixSplineHonorsEpsilon) {
  for (uint32_t epsilon : {1u, 8u, 32u}) {
    RadixSpline rs(epsilon, 10);
    CheckErrorBound(&rs, MakeKeys(GetParam(), 20000, 23));
  }
}

std::string DistributionName(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0:
      return "Uniform";
    case 1:
      return "Sequential";
    case 2:
      return "Clustered";
    default:
      return "Exponential";
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, LearnedIndexTest,
                         ::testing::Values(0, 1, 2, 3), DistributionName);

TEST(PlrTest, WindowWidthMatchesEpsilon) {
  PiecewiseLinearModel plr(16);
  auto keys = MakeKeys(0, 50000, 99);
  for (uint64_t k : keys) {
    plr.Add(k);
  }
  plr.Finish();
  for (size_t i = 0; i < keys.size(); i += 571) {
    size_t lo, hi;
    plr.Lookup(keys[i], &lo, &hi);
    EXPECT_LE(hi - lo, 2u * 16 + 2);
  }
}

TEST(PlrTest, SequentialDataNeedsOneSegment) {
  PiecewiseLinearModel plr(4);
  for (uint64_t i = 0; i < 10000; i++) {
    plr.Add(i * 8);  // perfectly linear
  }
  plr.Finish();
  EXPECT_EQ(plr.num_segments(), 1u);
}

TEST(PlrTest, MemorySmallerThanFences) {
  // The E7 claim: learned models use far less memory than one fence per
  // block on smooth data.
  auto keys = MakeKeys(0, 100000, 7);
  PiecewiseLinearModel plr(16);
  FencePointers fences;
  for (uint64_t k : keys) {
    plr.Add(k);
    fences.Add(EncodeKey(k));
  }
  plr.Finish();
  EXPECT_LT(plr.MemoryUsage(), fences.MemoryUsage() / 10);
}

TEST(PlrTest, EmptyAndSingleKey) {
  PiecewiseLinearModel empty(8);
  empty.Finish();
  size_t lo, hi;
  empty.Lookup(42, &lo, &hi);
  EXPECT_EQ(lo, 0u);

  PiecewiseLinearModel one(8);
  one.Add(100);
  one.Finish();
  one.Lookup(100, &lo, &hi);
  EXPECT_EQ(lo, 0u);
  EXPECT_GE(hi, 0u);
}

TEST(RadixSplineTest, LookupOutsideDomainClamps) {
  RadixSpline rs(8, 8);
  for (uint64_t i = 100; i < 1100; i++) {
    rs.Add(i * 10);
  }
  rs.Finish();
  size_t lo, hi;
  rs.Lookup(0, &lo, &hi);  // below min
  EXPECT_EQ(lo, 0u);
  rs.Lookup(~uint64_t{0}, &lo, &hi);  // above max
  EXPECT_EQ(hi, 999u);
}

TEST(RadixSplineTest, SplineSmallerThanData) {
  RadixSpline rs(32, 12);
  auto keys = MakeKeys(0, 100000, 3);
  for (uint64_t k : keys) {
    rs.Add(k);
  }
  rs.Finish();
  EXPECT_LT(rs.num_spline_points(), keys.size() / 10);
}

// ------------------------------------------------------------- RemixView --

std::vector<std::vector<std::string>> MakeRuns(int num_runs, int per_run,
                                               uint64_t seed) {
  Random rng(seed);
  std::vector<std::vector<std::string>> runs(num_runs);
  std::set<uint64_t> used;
  for (auto& run : runs) {
    std::set<uint64_t> keys;
    while (static_cast<int>(keys.size()) < per_run) {
      uint64_t v = rng.Uniform(1 << 24);
      if (used.insert(v).second) {
        keys.insert(v);
      }
    }
    for (uint64_t v : keys) {
      run.push_back(EncodeKey(v));
    }
  }
  return runs;
}

TEST(RemixTest, GlobalOrderMatchesMerge) {
  auto runs = MakeRuns(5, 400, 31);
  std::vector<const std::vector<std::string>*> ptrs;
  std::vector<std::string> expected;
  for (auto& run : runs) {
    ptrs.push_back(&run);
    expected.insert(expected.end(), run.begin(), run.end());
  }
  std::sort(expected.begin(), expected.end());

  RemixView view(ptrs);
  EXPECT_EQ(view.num_entries(), expected.size());
  auto cursor = view.NewCursor();
  size_t i = 0;
  for (cursor.SeekToFirst(); cursor.Valid(); cursor.Next(), i++) {
    ASSERT_LT(i, expected.size());
    EXPECT_EQ(cursor.key(), expected[i]);
  }
  EXPECT_EQ(i, expected.size());
}

TEST(RemixTest, SeekLandsOnLowerBound) {
  auto runs = MakeRuns(4, 300, 33);
  std::vector<const std::vector<std::string>*> ptrs;
  std::vector<std::string> all;
  for (auto& run : runs) {
    ptrs.push_back(&run);
    all.insert(all.end(), run.begin(), run.end());
  }
  std::sort(all.begin(), all.end());
  RemixView view(ptrs);

  Random rng(35);
  for (int t = 0; t < 500; t++) {
    const std::string target = EncodeKey(rng.Uniform(1 << 24));
    auto cursor = view.NewCursor();
    cursor.Seek(target);
    auto it = std::lower_bound(all.begin(), all.end(), target);
    if (it == all.end()) {
      EXPECT_FALSE(cursor.Valid());
    } else {
      ASSERT_TRUE(cursor.Valid());
      EXPECT_EQ(cursor.key(), *it);
    }
  }
}

TEST(RemixTest, RunAttributionCorrect) {
  auto runs = MakeRuns(3, 100, 37);
  std::vector<const std::vector<std::string>*> ptrs;
  for (auto& run : runs) {
    ptrs.push_back(&run);
  }
  RemixView view(ptrs);
  auto cursor = view.NewCursor();
  for (cursor.SeekToFirst(); cursor.Valid(); cursor.Next()) {
    const auto& run = runs[cursor.run()];
    EXPECT_NE(std::find(run.begin(), run.end(), cursor.key()), run.end());
  }
}

TEST(RemixTest, EmptyAndSingleRun) {
  std::vector<std::string> one = {EncodeKey(1), EncodeKey(2)};
  std::vector<const std::vector<std::string>*> ptrs = {&one};
  RemixView view(ptrs);
  EXPECT_EQ(view.num_entries(), 2u);
  auto cursor = view.NewCursor();
  cursor.Seek(EncodeKey(3));
  EXPECT_FALSE(cursor.Valid());

  std::vector<const std::vector<std::string>*> none;
  RemixView empty(none);
  EXPECT_EQ(empty.num_entries(), 0u);
  auto c2 = empty.NewCursor();
  c2.SeekToFirst();
  EXPECT_FALSE(c2.Valid());
}

TEST(RemixTest, MemoryIsAboutOneBytePerEntry) {
  auto runs = MakeRuns(8, 2000, 39);
  std::vector<const std::vector<std::string>*> ptrs;
  for (auto& run : runs) {
    ptrs.push_back(&run);
  }
  RemixView view(ptrs);
  // ~1 byte/entry for run ids + anchors (key + 8*4B cursors per 64).
  EXPECT_LT(view.MemoryUsage(), view.num_entries() * 3);
}

}  // namespace
}  // namespace lsmlab
