#include "filter/filter_policy.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/hash.h"
#include "workload/keygen.h"

namespace lsmlab {
namespace {

struct FilterCase {
  std::string name;
  std::function<const FilterPolicy*()> make;
  double max_fpr;  // tolerated FPR at the configured budget
};

class FilterPolicyTest : public ::testing::TestWithParam<FilterCase> {
 protected:
  void SetUp() override { policy_.reset(GetParam().make()); }

  /// Builds a filter over n keys derived from index -> EncodeKey(i * 2).
  std::string BuildFilter(size_t n) {
    keys_.clear();
    key_slices_.clear();
    for (size_t i = 0; i < n; i++) {
      keys_.push_back(EncodeKey(i * 2));  // even keys present
    }
    for (const auto& k : keys_) {
      key_slices_.emplace_back(k);
    }
    std::string filter;
    policy_->CreateFilter(key_slices_.data(), key_slices_.size(), &filter);
    return filter;
  }

  std::unique_ptr<const FilterPolicy> policy_;
  std::vector<std::string> keys_;
  std::vector<Slice> key_slices_;
};

TEST_P(FilterPolicyTest, NoFalseNegatives) {
  const std::string filter = BuildFilter(10000);
  for (const auto& k : keys_) {
    EXPECT_TRUE(policy_->KeyMayMatch(k, filter)) << GetParam().name;
  }
}

TEST_P(FilterPolicyTest, FalsePositiveRateWithinBound) {
  const std::string filter = BuildFilter(10000);
  size_t false_positives = 0;
  const size_t probes = 10000;
  for (size_t i = 0; i < probes; i++) {
    const std::string absent = EncodeKey(i * 2 + 1);  // odd keys absent
    if (policy_->KeyMayMatch(absent, filter)) {
      false_positives++;
    }
  }
  const double fpr = static_cast<double>(false_positives) / probes;
  EXPECT_LE(fpr, GetParam().max_fpr) << GetParam().name;
}

TEST_P(FilterPolicyTest, HashProbeAgreesWithKeyProbe) {
  if (!policy_->SupportsHashProbe()) {
    GTEST_SKIP();
  }
  const std::string filter = BuildFilter(5000);
  for (size_t i = 0; i < 2000; i++) {
    const std::string key = EncodeKey(i * 3);
    EXPECT_EQ(policy_->KeyMayMatch(key, filter),
              policy_->HashMayMatch(Hash64(Slice(key)), filter))
        << GetParam().name << " key " << i;
  }
}

TEST_P(FilterPolicyTest, EmptyFilterNeverRejects) {
  std::string empty;
  policy_->CreateFilter(nullptr, 0, &empty);
  EXPECT_TRUE(policy_->KeyMayMatch("anything", empty));
}

TEST_P(FilterPolicyTest, GarbageFilterNeverRejects) {
  // Malformed filter data must degrade to always-maybe, never crash or
  // reject.
  const std::string garbage = "\x01\x02\x03";
  EXPECT_TRUE(policy_->KeyMayMatch("key", garbage));
  EXPECT_TRUE(policy_->KeyMayMatch("key", ""));
}

TEST_P(FilterPolicyTest, SingleKeyFilter) {
  Slice one("only");
  std::string filter;
  policy_->CreateFilter(&one, 1, &filter);
  EXPECT_TRUE(policy_->KeyMayMatch("only", filter));
}

INSTANTIATE_TEST_SUITE_P(
    AllFilters, FilterPolicyTest,
    ::testing::Values(
        FilterCase{"Bloom10", [] { return NewBloomFilterPolicy(10); }, 0.03},
        FilterCase{"Bloom16", [] { return NewBloomFilterPolicy(16); }, 0.002},
        FilterCase{"Blocked10",
                   [] { return NewBlockedBloomFilterPolicy(10); }, 0.05},
        FilterCase{"Cuckoo12", [] { return NewCuckooFilterPolicy(12); },
                   0.01},
        FilterCase{"Ribbon10", [] { return NewRibbonFilterPolicy(10); },
                   0.01},
        FilterCase{"Elastic4of4",
                   [] { return NewElasticBloomFilterPolicy(12, 4, 4); },
                   0.05}),
    [](const ::testing::TestParamInfo<FilterCase>& info) {
      return info.param.name;
    });

// --- Implementation-specific behaviours -----------------------------------

TEST(BloomFilterTest, FprFallsWithBits) {
  // The core E3 relationship: each added bit/key cuts FPR ~x0.6.
  double last_fpr = 1.0;
  for (double bits : {2.0, 4.0, 8.0, 12.0}) {
    std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(bits));
    std::vector<std::string> keys;
    std::vector<Slice> slices;
    for (int i = 0; i < 20000; i++) {
      keys.push_back(EncodeKey(i * 2));
    }
    for (const auto& k : keys) {
      slices.emplace_back(k);
    }
    std::string filter;
    policy->CreateFilter(slices.data(), slices.size(), &filter);
    int fp = 0;
    for (int i = 0; i < 20000; i++) {
      if (policy->KeyMayMatch(EncodeKey(i * 2 + 1), filter)) {
        fp++;
      }
    }
    const double fpr = fp / 20000.0;
    EXPECT_LT(fpr, last_fpr);
    last_fpr = fpr;
  }
  EXPECT_LT(last_fpr, 0.01);
}

TEST(BloomFilterTest, ZeroBitsMeansNoFilter) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(0));
  Slice key("k");
  std::string filter;
  policy->CreateFilter(&key, 1, &filter);
  EXPECT_TRUE(filter.empty());
  EXPECT_TRUE(policy->KeyMayMatch("anything", filter));
}

TEST(BloomFilterTest, SizeMatchesBudget) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  std::vector<std::string> keys;
  std::vector<Slice> slices;
  for (int i = 0; i < 10000; i++) {
    keys.push_back(EncodeKey(i));
  }
  for (const auto& k : keys) {
    slices.emplace_back(k);
  }
  std::string filter;
  policy->CreateFilter(slices.data(), slices.size(), &filter);
  // ~10 bits/key plus the 5-byte trailer.
  EXPECT_NEAR(filter.size(), 10000 * 10 / 8 + 5, 16);
}

TEST(RibbonFilterTest, SmallerThanBloomAtEqualFpr) {
  // The headline ribbon claim (tutorial §II-2): ~30% space saving.
  std::vector<std::string> keys;
  std::vector<Slice> slices;
  for (int i = 0; i < 50000; i++) {
    keys.push_back(EncodeKey(i * 2));
  }
  for (const auto& k : keys) {
    slices.emplace_back(k);
  }

  auto measure = [&](const FilterPolicy* p, std::string* filter) {
    filter->clear();
    p->CreateFilter(slices.data(), slices.size(), filter);
    int fp = 0;
    for (int i = 0; i < 20000; i++) {
      if (p->KeyMayMatch(EncodeKey(i * 2 + 1), *filter)) {
        fp++;
      }
    }
    return fp / 20000.0;
  };

  std::unique_ptr<const FilterPolicy> bloom(NewBloomFilterPolicy(10));
  std::unique_ptr<const FilterPolicy> ribbon(NewRibbonFilterPolicy(8));
  std::string bloom_data, ribbon_data;
  const double bloom_fpr = measure(bloom.get(), &bloom_data);
  const double ribbon_fpr = measure(ribbon.get(), &ribbon_data);
  // Ribbon at 8 bits/key should be at most as large as Bloom at 10 while
  // keeping a comparable FPR.
  EXPECT_LT(ribbon_data.size(), bloom_data.size());
  EXPECT_LT(ribbon_fpr, bloom_fpr * 4 + 0.02);
}

TEST(CuckooFilterTest, HandlesManyKeysWithoutSaturation) {
  std::unique_ptr<const FilterPolicy> policy(NewCuckooFilterPolicy(12));
  std::vector<std::string> keys;
  std::vector<Slice> slices;
  for (int i = 0; i < 100000; i++) {
    keys.push_back(EncodeKey(i));
  }
  for (const auto& k : keys) {
    slices.emplace_back(k);
  }
  std::string filter;
  policy->CreateFilter(slices.data(), slices.size(), &filter);
  // All keys present => not saturated (saturation would make this trivially
  // true, so also check an absent key gets rejected).
  for (int i = 0; i < 100000; i += 997) {
    EXPECT_TRUE(policy->KeyMayMatch(EncodeKey(i), filter));
  }
  int rejected = 0;
  for (int i = 0; i < 1000; i++) {
    if (!policy->KeyMayMatch(EncodeKey(1'000'000 + i), filter)) {
      rejected++;
    }
  }
  EXPECT_GT(rejected, 950);
}

TEST(ElasticFilterTest, FewerUnitsMeansHigherFprLowerProbeCost) {
  // ElasticBF's tradeoff: probing fewer units raises FPR.
  std::vector<std::string> keys;
  std::vector<Slice> slices;
  for (int i = 0; i < 20000; i++) {
    keys.push_back(EncodeKey(i * 2));
  }
  for (const auto& k : keys) {
    slices.emplace_back(k);
  }
  std::unique_ptr<const FilterPolicy> builder(
      NewElasticBloomFilterPolicy(16, 4, 4));
  std::string filter;
  builder->CreateFilter(slices.data(), slices.size(), &filter);

  double fpr_by_units[5] = {1.0};
  for (int units = 1; units <= 4; units++) {
    std::unique_ptr<const FilterPolicy> prober(
        NewElasticBloomFilterPolicy(16, 4, units));
    int fp = 0;
    for (int i = 0; i < 10000; i++) {
      if (prober->KeyMayMatch(EncodeKey(i * 2 + 1), filter)) {
        fp++;
      }
    }
    fpr_by_units[units] = fp / 10000.0;
    // Never a false negative regardless of enabled units.
    for (int i = 0; i < 1000; i++) {
      EXPECT_TRUE(prober->KeyMayMatch(EncodeKey(i * 2), filter));
    }
  }
  EXPECT_GT(fpr_by_units[1], fpr_by_units[4]);
}

}  // namespace
}  // namespace lsmlab
