#include "obs/event_listener.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "core/db_impl.h"
#include "storage/env.h"

namespace lsmlab {
namespace {

/// Records every callback (name + captured metadata) in arrival order and
/// verifies the delivery contract: no callback ever runs while the caller
/// holds the DB mutex.
class RecordingListener : public EventListener {
 public:
  struct Event {
    std::string name;
    FlushJobInfo flush;
    CompactionJobInfo compaction;
    WriteStallInfo stall;
    TableFileInfo file;
    TableFileDeletionInfo deletion;
  };

  void Attach(DBImpl* db) { db_ = db; }

  /// Sleep this long inside OnFlushEnd (first `n` times) to hold the
  /// background worker in a callback while the foreground keeps writing.
  void DelayFlushEnd(int millis, int n) {
    flush_end_delay_ms_ = millis;
    delayed_flush_ends_ = n;
  }

  void OnFlushBegin(const FlushJobInfo& info) override {
    Event e;
    e.name = "flush.begin";
    e.flush = info;
    Record(std::move(e));
  }
  void OnFlushEnd(const FlushJobInfo& info) override {
    int delay = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (delayed_flush_ends_ > 0) {
        delayed_flush_ends_--;
        delay = flush_end_delay_ms_;
      }
    }
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    Event e;
    e.name = "flush.end";
    e.flush = info;
    Record(std::move(e));
  }
  void OnCompactionBegin(const CompactionJobInfo& info) override {
    Event e;
    e.name = "compaction.begin";
    e.compaction = info;
    Record(std::move(e));
  }
  void OnCompactionEnd(const CompactionJobInfo& info) override {
    Event e;
    e.name = "compaction.end";
    e.compaction = info;
    Record(std::move(e));
  }
  void OnWriteStall(const WriteStallInfo& info) override {
    Event e;
    e.name = "stall";
    e.stall = info;
    Record(std::move(e));
  }
  void OnTableFileCreated(const TableFileInfo& info) override {
    Event e;
    e.name = "file.created";
    e.file = info;
    Record(std::move(e));
  }
  void OnTableFileDeleted(const TableFileDeletionInfo& info) override {
    Event e;
    e.name = "file.deleted";
    e.deletion = info;
    Record(std::move(e));
  }

  std::vector<Event> events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

  int mutex_violations() const {
    std::lock_guard<std::mutex> lock(mu_);
    return mutex_violations_;
  }

  size_t CountNamed(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (const Event& e : events_) {
      if (e.name == name) {
        n++;
      }
    }
    return n;
  }

  /// Blocks until at least `count` events named `name` have arrived, or the
  /// timeout expires (background delivery may lag the operation).
  bool WaitForNamed(const std::string& name, size_t count,
                    int timeout_ms = 5000) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                        [&] {
                          size_t n = 0;
                          for (const Event& e : events_) {
                            if (e.name == name) {
                              n++;
                            }
                          }
                          return n >= count;
                        });
  }

 private:
  void Record(Event e) {
    // The whole point of the staging queue in DBImpl: by the time any
    // callback runs, the operating thread must have released mu_.
    const bool held =
        db_ != nullptr && db_->TEST_MutexHeldByCurrentThread();
    std::lock_guard<std::mutex> lock(mu_);
    if (held) {
      mutex_violations_++;
    }
    events_.push_back(std::move(e));
    cv_.notify_all();
  }

  DBImpl* db_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Event> events_;
  int mutex_violations_ = 0;
  int flush_end_delay_ms_ = 0;
  int delayed_flush_ends_ = 0;
};

class ListenerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_.reset(NewMemEnv());
    options_.env = env_.get();
    options_.write_buffer_size = 64 << 10;
    options_.max_file_size = 1 << 20;
    listener_ = std::make_shared<RecordingListener>();
    options_.listeners.push_back(listener_);
  }

  void Open() {
    ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
    listener_->Attach(static_cast<DBImpl*>(db_.get()));
  }

  std::vector<size_t> IndicesOf(const std::vector<RecordingListener::Event>& v,
                                const std::string& name) {
    std::vector<size_t> out;
    for (size_t i = 0; i < v.size(); i++) {
      if (v[i].name == name) {
        out.push_back(i);
      }
    }
    return out;
  }

  std::unique_ptr<Env> env_;
  Options options_;
  std::shared_ptr<RecordingListener> listener_;
  std::unique_ptr<DB> db_;
};

TEST_F(ListenerTest, FlushEventsFireInOrderWithMetadata) {
  Open();
  ASSERT_TRUE(db_->Put({}, "a", "1").ok());
  ASSERT_TRUE(db_->Put({}, "z", "2").ok());
  ASSERT_TRUE(db_->Flush().ok());

  const auto events = listener_->events();
  const auto begins = IndicesOf(events, "flush.begin");
  const auto creates = IndicesOf(events, "file.created");
  const auto ends = IndicesOf(events, "flush.end");
  ASSERT_EQ(begins.size(), 1u);
  ASSERT_EQ(ends.size(), 1u);
  ASSERT_EQ(creates.size(), 1u);
  // begin < created < end, in staging order.
  EXPECT_LT(begins[0], creates[0]);
  EXPECT_LT(creates[0], ends[0]);

  const auto& end = events[ends[0]].flush;
  EXPECT_EQ(end.db_name, "/db");
  EXPECT_FALSE(end.background);  // inline flush on the calling thread
  EXPECT_TRUE(end.status.ok());
  EXPECT_GT(end.bytes_written, 0u);
  ASSERT_EQ(end.outputs.size(), 1u);
  EXPECT_EQ(end.outputs[0].level, 0);
  EXPECT_EQ(end.outputs[0].smallest_user_key, "a");
  EXPECT_EQ(end.outputs[0].largest_user_key, "z");
  EXPECT_GT(end.outputs[0].file_number, 0u);
  EXPECT_GT(end.outputs[0].file_size, 0u);

  const auto& created = events[creates[0]].file;
  EXPECT_EQ(created.file_number, end.outputs[0].file_number);

  EXPECT_EQ(listener_->mutex_violations(), 0);
}

TEST_F(ListenerTest, CompactionEventsCarryInputsOutputsAndDeletions) {
  Open();
  for (int run = 0; run < 3; run++) {
    char lo[16], hi[16];
    std::snprintf(lo, sizeof(lo), "a%02d", run);
    std::snprintf(hi, sizeof(hi), "z%02d", run);
    ASSERT_TRUE(db_->Put({}, lo, "v").ok());
    ASSERT_TRUE(db_->Put({}, hi, "v").ok());
    ASSERT_TRUE(db_->Flush().ok());
  }

  // The three flush outputs are this compaction's victims.
  std::set<uint64_t> flushed_files;
  for (const auto& e : listener_->events()) {
    if (e.name == "file.created") {
      flushed_files.insert(e.file.file_number);
    }
  }
  ASSERT_EQ(flushed_files.size(), 3u);

  ASSERT_TRUE(db_->CompactAll().ok());

  const auto events = listener_->events();
  const auto begins = IndicesOf(events, "compaction.begin");
  const auto ends = IndicesOf(events, "compaction.end");
  ASSERT_GE(begins.size(), 1u);
  ASSERT_EQ(begins.size(), ends.size());
  EXPECT_LT(begins[0], ends[0]);

  const auto& begin = events[begins[0]].compaction;
  EXPECT_EQ(begin.db_name, "/db");
  EXPECT_EQ(begin.input_level, 0);
  // An L0-only tree collapses its runs in place (output level 0); deeper
  // shapes push down. Either way the output never sits above the input.
  EXPECT_GE(begin.output_level, begin.input_level);
  EXPECT_GE(begin.inputs.size(), 3u);  // all three overlapping L0 runs

  const auto& end = events[ends[0]].compaction;
  EXPECT_TRUE(end.status.ok());
  EXPECT_GT(end.bytes_written, 0u);
  ASSERT_GE(end.outputs.size(), 1u);
  EXPECT_EQ(end.outputs[0].level, end.output_level);
  // Output events follow their compaction's begin.
  const auto creates = IndicesOf(events, "file.created");
  bool saw_compaction_output = false;
  for (size_t idx : creates) {
    if (idx > begins[0] && idx < ends[0] + 1 &&
        events[idx].file.level == end.output_level) {
      saw_compaction_output = true;
    }
  }
  EXPECT_TRUE(saw_compaction_output);

  // Every flushed input file must be reported deleted once it leaves the
  // version set (deletions are queued under the DB mutex and drained by
  // the same CompactAll before it returns).
  std::set<uint64_t> deleted;
  for (const auto& e : events) {
    if (e.name == "file.deleted") {
      EXPECT_EQ(e.deletion.db_name, "/db");
      deleted.insert(e.deletion.file_number);
    }
  }
  for (uint64_t f : flushed_files) {
    EXPECT_TRUE(deleted.count(f)) << "file " << f << " never deleted";
  }

  EXPECT_EQ(listener_->mutex_violations(), 0);
}

TEST_F(ListenerTest, BackgroundFlushReportsBackgroundFlag) {
  options_.background_compaction = true;
  // Must stay above the arena's 4 KiB block floor or an empty memtable
  // already looks full.
  options_.write_buffer_size = 8 << 10;
  Open();

  // Overflow the memtable so the write path freezes it and hands it to the
  // background worker.
  const std::string pad(3000, 'p');
  for (int i = 0; i < 8; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE(db_->Put({}, key, pad).ok());
  }
  ASSERT_TRUE(listener_->WaitForNamed("flush.end", 1));

  bool saw_background = false;
  for (const auto& e : listener_->events()) {
    if (e.name == "flush.end" && e.flush.background) {
      EXPECT_TRUE(e.flush.status.ok());
      EXPECT_GT(e.flush.bytes_written, 0u);
      saw_background = true;
    }
  }
  EXPECT_TRUE(saw_background);
  EXPECT_EQ(listener_->mutex_violations(), 0);
}

TEST_F(ListenerTest, WriteStallEventsFireOffMutex) {
  options_.background_compaction = true;
  options_.write_buffer_size = 8 << 10;
  Open();

  // Hold the background worker inside a callback for 150ms: the foreground
  // fills the next memtable, freezes it, fills another, and must then stall
  // on the still-pending immutable memtable.
  listener_->DelayFlushEnd(150, 2);
  const std::string pad(3000, 'p');
  for (int i = 0; i < 40; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE(db_->Put({}, key, pad).ok());
  }

  EXPECT_GE(listener_->CountNamed("stall"), 1u);
  bool saw_memtable_full = false;
  for (const auto& e : listener_->events()) {
    if (e.name == "stall") {
      EXPECT_EQ(e.stall.db_name, "/db");
      if (e.stall.cause == WriteStallInfo::Cause::kMemtableFull) {
        saw_memtable_full = true;
      }
    }
  }
  EXPECT_TRUE(saw_memtable_full);
  EXPECT_EQ(listener_->mutex_violations(), 0);
}

TEST_F(ListenerTest, MultipleListenersAllSeeEvents) {
  auto second = std::make_shared<RecordingListener>();
  options_.listeners.push_back(second);
  Open();
  second->Attach(static_cast<DBImpl*>(db_.get()));

  ASSERT_TRUE(db_->Put({}, "k", "v").ok());
  ASSERT_TRUE(db_->Flush().ok());

  EXPECT_EQ(listener_->CountNamed("flush.end"), 1u);
  EXPECT_EQ(second->CountNamed("flush.end"), 1u);
  EXPECT_EQ(second->mutex_violations(), 0);
}

}  // namespace
}  // namespace lsmlab
