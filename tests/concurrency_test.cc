// Concurrency: writers, readers, and snapshot reads racing against the
// background flush/compaction pipeline. Run under -DLSMLAB_SANITIZE=thread
// to prove the pipeline is data-race free (see README).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/db.h"
#include "core/sharded_db.h"
#include "storage/env.h"

namespace lsmlab {
namespace {

std::string TestKey(int writer, int n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "w%d_%06d", writer, n);
  return buf;
}

// Self-describing value: "<key>#<version>#<64 copies of a version-derived
// byte>". A reader can verify any observed value is internally consistent,
// i.e. never a torn mix of two versions.
std::string TestValue(const std::string& key, int version) {
  std::string v = key;
  v.push_back('#');
  v.append(std::to_string(version));
  v.push_back('#');
  v.append(64, static_cast<char>('a' + version % 26));
  return v;
}

bool ValueConsistent(const std::string& key, const std::string& value,
                     int* version_out) {
  if (value.size() < key.size() + 2 ||
      value.compare(0, key.size(), key) != 0 || value[key.size()] != '#') {
    return false;
  }
  const size_t ver_begin = key.size() + 1;
  const size_t ver_end = value.find('#', ver_begin);
  if (ver_end == std::string::npos || ver_end == ver_begin) {
    return false;
  }
  const int version = std::stoi(value.substr(ver_begin, ver_end - ver_begin));
  if (value.size() != ver_end + 1 + 64) {
    return false;
  }
  const char expect = static_cast<char>('a' + version % 26);
  for (size_t i = ver_end + 1; i < value.size(); i++) {
    if (value[i] != expect) {
      return false;
    }
  }
  *version_out = version;
  return true;
}

Options BackgroundOptions(Env* env) {
  Options options;
  options.env = env;
  options.background_compaction = true;
  options.write_buffer_size = 32 << 10;
  options.max_file_size = 16 << 10;
  options.level0_compaction_trigger = 2;
  options.size_ratio = 4;
  return options;
}

TEST(ConcurrencyTest, WritersReadersSnapshotsRaceBackgroundCompaction) {
  std::unique_ptr<Env> env(NewMemEnv());
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(BackgroundOptions(env.get()), "/conc", &db).ok());

  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kKeysPerWriter = 2000;
  constexpr int kVersions = 3;

  std::atomic<int> write_errors{0};
  std::atomic<int> torn_values{0};
  std::atomic<int> stale_versions{0};
  std::atomic<int> snapshot_violations{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; w++) {
    writers.emplace_back([&, w] {
      for (int ver = 0; ver < kVersions; ver++) {
        for (int i = 0; i < kKeysPerWriter; i++) {
          const std::string key = TestKey(w, i);
          if (!db->Put({}, key, TestValue(key, ver)).ok()) {
            write_errors.fetch_add(1);
            return;
          }
        }
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; r++) {
    readers.emplace_back([&, r] {
      uint64_t x = 88172645463325252ull + static_cast<uint64_t>(r);
      std::string value;
      while (!done.load(std::memory_order_relaxed)) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const std::string key =
            TestKey(static_cast<int>(x % kWriters),
                    static_cast<int>((x >> 8) % kKeysPerWriter));
        if (db->Get({}, key, &value).ok()) {
          int version = -1;
          if (!ValueConsistent(key, value, &version)) {
            torn_values.fetch_add(1);
          } else if (version < 0 || version >= kVersions) {
            stale_versions.fetch_add(1);
          }
        }
      }
    });
  }

  // Snapshot reader: two reads of the same key at one snapshot must agree
  // even while flushes and compactions churn underneath.
  std::thread snapshotter([&] {
    std::string first;
    std::string again;
    while (!done.load(std::memory_order_relaxed)) {
      const Snapshot* snap = db->GetSnapshot();
      ReadOptions ro;
      ro.snapshot = snap;
      const std::string key = TestKey(0, 7);
      const bool found1 = db->Get(ro, key, &first).ok();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      const bool found2 = db->Get(ro, key, &again).ok();
      if (found1 != found2 || (found1 && first != again)) {
        snapshot_violations.fetch_add(1);
      }
      db->ReleaseSnapshot(snap);
    }
  });

  for (std::thread& t : writers) {
    t.join();
  }
  done.store(true);
  for (std::thread& t : readers) {
    t.join();
  }
  snapshotter.join();

  EXPECT_EQ(write_errors.load(), 0);
  EXPECT_EQ(torn_values.load(), 0);
  EXPECT_EQ(stale_versions.load(), 0);
  EXPECT_EQ(snapshot_violations.load(), 0);

  // Quiesce and verify every key holds its final version.
  ASSERT_TRUE(db->CompactAll().ok());
  std::string value;
  for (int w = 0; w < kWriters; w++) {
    for (int i = 0; i < kKeysPerWriter; i++) {
      const std::string key = TestKey(w, i);
      ASSERT_TRUE(db->Get({}, key, &value).ok()) << key;
      int version = -1;
      ASSERT_TRUE(ValueConsistent(key, value, &version)) << key;
      EXPECT_EQ(version, kVersions - 1) << key;
    }
  }
}

TEST(ConcurrencyTest, IteratorsStayConsistentDuringBackgroundChurn) {
  std::unique_ptr<Env> env(NewMemEnv());
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(BackgroundOptions(env.get()), "/iter", &db).ok());

  constexpr int kKeys = 3000;
  std::atomic<bool> done{false};
  std::atomic<int> scan_errors{0};

  std::thread writer([&] {
    for (int ver = 0; ver < 3; ver++) {
      for (int i = 0; i < kKeys; i++) {
        const std::string key = TestKey(0, i);
        ASSERT_TRUE(db->Put({}, key, TestValue(key, ver)).ok());
      }
    }
  });

  std::thread scanner([&] {
    while (!done.load(std::memory_order_relaxed)) {
      std::unique_ptr<Iterator> it(db->NewIterator({}));
      std::string prev;
      int n = 0;
      for (it->SeekToFirst(); it->Valid() && n < 500; it->Next(), n++) {
        const std::string key = it->key().ToString();
        if (!prev.empty() && key <= prev) {
          scan_errors.fetch_add(1);  // ordering violated
        }
        int version = -1;
        std::string value = it->value().ToString();
        if (!ValueConsistent(key, value, &version)) {
          scan_errors.fetch_add(1);
        }
        prev = key;
      }
      if (!it->status().ok()) {
        scan_errors.fetch_add(1);
      }
    }
  });

  writer.join();
  done.store(true);
  scanner.join();
  EXPECT_EQ(scan_errors.load(), 0);
}

TEST(ConcurrencyTest, StallAndSlowdownCountersFire) {
  std::unique_ptr<Env> env(NewMemEnv());
  Options options;
  options.env = env.get();
  options.background_compaction = true;
  options.write_buffer_size = 8 << 10;
  options.max_file_size = 8 << 10;
  options.level0_compaction_trigger = 2;
  options.l0_slowdown_trigger = 1;  // any L0 run delays the writer
  options.l0_stop_trigger = 2;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/stall", &db).ok());

  const std::string value(128, 'v');
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db->Put({}, TestKey(0, i), value).ok());
  }
  const DBStats stats = db->GetStats();
  EXPECT_GT(stats.write_slowdowns + stats.write_stalls, 0u);
  EXPECT_GT(stats.write_slowdown_micros + stats.write_stall_micros, 0u);

  std::string got;
  ASSERT_TRUE(db->Get({}, TestKey(0, 0), &got).ok());
  EXPECT_EQ(got, value);
  ASSERT_TRUE(db->Get({}, TestKey(0, 1999), &got).ok());
  EXPECT_EQ(got, value);
}

TEST(ConcurrencyTest, FlushWaitsForBackgroundInstall) {
  std::unique_ptr<Env> env(NewMemEnv());
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(BackgroundOptions(env.get()), "/flush", &db).ok());

  const std::string value(64, 'v');
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db->Put({}, TestKey(0, i), value).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  // After Flush returns, all data is in level-0 runs (memtable drained).
  const DBStats stats = db->GetStats();
  EXPECT_GT(stats.flushes, 0u);
  std::string got;
  ASSERT_TRUE(db->Get({}, TestKey(0, 499), &got).ok());
  EXPECT_EQ(got, value);
}

TEST(ConcurrencyTest, RecoversDataPendingInBackgroundPipeline) {
  std::unique_ptr<Env> env(NewMemEnv());
  const std::string value(64, 'r');
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(BackgroundOptions(env.get()), "/recover", &db).ok());
    for (int i = 0; i < 1500; i++) {
      ASSERT_TRUE(db->Put({}, TestKey(0, i), value).ok());
    }
    // Close without Flush: whatever sits in mem_/imm_ must survive via WAL.
  }
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(BackgroundOptions(env.get()), "/recover", &db).ok());
    std::string got;
    for (int i = 0; i < 1500; i++) {
      ASSERT_TRUE(db->Get({}, TestKey(0, i), &got).ok()) << i;
      EXPECT_EQ(got, value);
    }
  }
}

TEST(ConcurrencyTest, ShardedBackgroundJobsOverlapAcrossShards) {
  // 8 writer threads × 4 shards with flushes and compactions continuously
  // in flight. The point under test: the shared background pool really
  // runs jobs from different shards concurrently (the old engine had one
  // serialized worker). The assertion is the pool's concurrency
  // high-water counter — a monotonic ticker maintained at task start —
  // not a timing measurement: each shard admits at most one background
  // job at a time, so a high-water mark of >= 2 can only mean two
  // different shards' jobs overlapped.
  constexpr int kWriters = 8;
  constexpr int kShards = 4;
  constexpr int kOpsPerRound = 400;
  constexpr int kMaxRounds = 40;
  std::unique_ptr<Env> env(NewMemEnv());
  Options options = BackgroundOptions(env.get());
  options.num_shards = kShards;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/sharded_conc", &db).ok());
  auto* sharded = static_cast<ShardedDB*>(db.get());

  int rounds = 0;
  for (; rounds < kMaxRounds && sharded->TEST_BgJobsHighWater() < 2;
       rounds++) {
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; w++) {
      writers.emplace_back([&, w] {
        for (int j = 0; j < kOpsPerRound; j++) {
          const std::string key = TestKey(w, rounds * kOpsPerRound + j);
          ASSERT_TRUE(db->Put({}, key, TestValue(key, rounds)).ok());
        }
      });
    }
    for (auto& t : writers) {
      t.join();
    }
  }
  EXPECT_GE(sharded->TEST_BgJobsHighWater(), 2)
      << "no two shards' background jobs ever overlapped after " << rounds
      << " rounds";

  // The load really exercised the background pipeline on every shard.
  uint64_t min_flushes = ~0ull;
  for (int s = 0; s < kShards; s++) {
    min_flushes =
        std::min(min_flushes, sharded->TEST_Shard(s)->GetStats().flushes);
  }
  EXPECT_GT(min_flushes, 0u) << "some shard never flushed";

  // And the data is intact: every thread's writes read back consistent.
  std::string value;
  for (int w = 0; w < kWriters; w++) {
    for (int j = 0; j < rounds * kOpsPerRound; j += 97) {
      const std::string key = TestKey(w, j);
      ASSERT_TRUE(db->Get({}, key, &value).ok()) << key;
      int version = -1;
      ASSERT_TRUE(ValueConsistent(key, value, &version)) << key;
    }
  }
}

}  // namespace
}  // namespace lsmlab
