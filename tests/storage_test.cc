#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "storage/env.h"
#include "storage/fault_env.h"

namespace lsmlab {
namespace {

class EnvTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      env_.reset(NewMemEnv());
      dir_ = "/envtest";
    } else {
      env_.reset(NewPosixEnv());
      char tmpl[] = "/tmp/lsmlab_env_XXXXXX";
      dir_ = mkdtemp(tmpl);
    }
    ASSERT_TRUE(env_->CreateDir(dir_).ok());
  }

  void TearDown() override {
    std::vector<std::string> children;
    if (env_->GetChildren(dir_, &children).ok()) {
      for (const auto& c : children) {
        env_->RemoveFile(dir_ + "/" + c).IgnoreError();
      }
    }
  }

  std::unique_ptr<Env> env_;
  std::string dir_;
};

TEST_P(EnvTest, WriteReadRoundtrip) {
  const std::string fname = dir_ + "/f1";
  ASSERT_TRUE(WriteStringToFile(env_.get(), "hello world", fname).ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_.get(), fname, &data).ok());
  EXPECT_EQ(data, "hello world");
}

TEST_P(EnvTest, RandomAccessRead) {
  const std::string fname = dir_ + "/f2";
  ASSERT_TRUE(WriteStringToFile(env_.get(), "0123456789", fname).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_->NewRandomAccessFile(fname, &file).ok());
  EXPECT_EQ(file->Size(), 10u);
  char scratch[16];
  Slice result;
  ASSERT_TRUE(file->Read(3, 4, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "3456");
  // Read past end returns what's available.
  ASSERT_TRUE(file->Read(8, 10, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "89");
}

TEST_P(EnvTest, FileExistsAndRemove) {
  const std::string fname = dir_ + "/f3";
  EXPECT_FALSE(env_->FileExists(fname));
  ASSERT_TRUE(WriteStringToFile(env_.get(), "x", fname).ok());
  EXPECT_TRUE(env_->FileExists(fname));
  ASSERT_TRUE(env_->RemoveFile(fname).ok());
  EXPECT_FALSE(env_->FileExists(fname));
  EXPECT_FALSE(env_->RemoveFile(fname).ok());
}

TEST_P(EnvTest, GetChildren) {
  ASSERT_TRUE(WriteStringToFile(env_.get(), "1", dir_ + "/a").ok());
  ASSERT_TRUE(WriteStringToFile(env_.get(), "2", dir_ + "/b").ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dir_, &children).ok());
  std::sort(children.begin(), children.end());
  // POSIX may include . and ..; filter non-plain names.
  std::vector<std::string> plain;
  for (const auto& c : children) {
    if (c == "a" || c == "b") plain.push_back(c);
  }
  EXPECT_EQ(plain.size(), 2u);
}

TEST_P(EnvTest, Rename) {
  ASSERT_TRUE(WriteStringToFile(env_.get(), "data", dir_ + "/src").ok());
  ASSERT_TRUE(env_->RenameFile(dir_ + "/src", dir_ + "/dst").ok());
  EXPECT_FALSE(env_->FileExists(dir_ + "/src"));
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_.get(), dir_ + "/dst", &data).ok());
  EXPECT_EQ(data, "data");
}

TEST_P(EnvTest, GetFileSize) {
  ASSERT_TRUE(WriteStringToFile(env_.get(), std::string(1234, 'x'),
                                dir_ + "/sized").ok());
  uint64_t size = 0;
  ASSERT_TRUE(env_->GetFileSize(dir_ + "/sized", &size).ok());
  EXPECT_EQ(size, 1234u);
}

TEST_P(EnvTest, SequentialReadAndSkip) {
  ASSERT_TRUE(
      WriteStringToFile(env_.get(), "abcdefghij", dir_ + "/seq").ok());
  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(env_->NewSequentialFile(dir_ + "/seq", &file).ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(file->Read(3, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "abc");
  ASSERT_TRUE(file->Skip(2).ok());
  ASSERT_TRUE(file->Read(3, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "fgh");
}

TEST_P(EnvTest, MissingFileErrors) {
  std::unique_ptr<RandomAccessFile> f;
  EXPECT_TRUE(env_->NewRandomAccessFile(dir_ + "/nope", &f).IsIOError());
  std::unique_ptr<SequentialFile> sf;
  EXPECT_TRUE(env_->NewSequentialFile(dir_ + "/nope", &sf).IsIOError());
}

INSTANTIATE_TEST_SUITE_P(MemAndPosix, EnvTest, ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Mem" : "Posix";
                         });

TEST(IoStatsTest, CountsBlockGranularity) {
  std::unique_ptr<Env> env(NewMemEnv());
  ASSERT_TRUE(
      WriteStringToFile(env.get(), std::string(20000, 'x'), "/f").ok());
  env->io_stats()->Reset();

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env->NewRandomAccessFile("/f", &file).ok());
  char scratch[8192];
  Slice result;

  // A 100-byte read within one 4K block counts as 1 block read.
  ASSERT_TRUE(file->Read(0, 100, &result, scratch).ok());
  EXPECT_EQ(env->io_stats()->block_reads.load(), 1u);

  // A read spanning a block boundary counts as 2.
  ASSERT_TRUE(file->Read(4000, 200, &result, scratch).ok());
  EXPECT_EQ(env->io_stats()->block_reads.load(), 3u);

  EXPECT_EQ(env->io_stats()->bytes_read.load(), 300u);
}

TEST(IoStatsTest, WritesChargedInBlocks) {
  std::unique_ptr<Env> env(NewMemEnv());
  env->io_stats()->Reset();
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env->NewWritableFile("/w", &file).ok());
  ASSERT_TRUE(file->Append(std::string(10000, 'y')).ok());
  EXPECT_EQ(env->io_stats()->block_writes.load(), 3u);  // ceil(10000/4096)
  EXPECT_EQ(env->io_stats()->bytes_written.load(), 10000u);
}

TEST(MemEnvTest, UnlinkedFileStaysReadable) {
  // POSIX semantics: an open reader survives file removal.
  std::unique_ptr<Env> env(NewMemEnv());
  ASSERT_TRUE(WriteStringToFile(env.get(), "still here", "/ghost").ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env->NewRandomAccessFile("/ghost", &file).ok());
  ASSERT_TRUE(env->RemoveFile("/ghost").ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(file->Read(0, 10, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "still here");
}

TEST(MemEnvTest, TruncateOnReopen) {
  std::unique_ptr<Env> env(NewMemEnv());
  ASSERT_TRUE(WriteStringToFile(env.get(), "long content", "/t").ok());
  ASSERT_TRUE(WriteStringToFile(env.get(), "short", "/t").ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env.get(), "/t", &data).ok());
  EXPECT_EQ(data, "short");
}

// ------------------------------------------------- FaultInjectionEnv --

class FaultEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_.reset(NewMemEnv());
    env_ = std::make_unique<FaultInjectionEnv>(base_.get());
  }

  std::unique_ptr<Env> base_;
  std::unique_ptr<FaultInjectionEnv> env_;
};

TEST_F(FaultEnvTest, UnsyncedFileVanishesOnCrash) {
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_->NewWritableFile("/a", &f).ok());
  ASSERT_TRUE(f->Append("data").ok());
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(env_->Crash().ok());
  EXPECT_FALSE(env_->FileExists("/a"));
}

TEST_F(FaultEnvTest, SyncedPrefixSurvivesCrash) {
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_->NewWritableFile("/a", &f).ok());
  ASSERT_TRUE(f->Append("durable").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("-volatile").ok());
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(env_->Crash().ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/a", &data).ok());
  EXPECT_EQ(data, "durable");
}

TEST_F(FaultEnvTest, UntrackedFilesAreDurable) {
  // Files created before the fault env (or via the base env) are presumed
  // already on stable storage.
  ASSERT_TRUE(WriteStringToFile(base_.get(), "old", "/pre").ok());
  ASSERT_TRUE(env_->Crash().ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/pre", &data).ok());
  EXPECT_EQ(data, "old");
}

TEST_F(FaultEnvTest, RenameCarriesDurabilityState) {
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_->NewWritableFile("/src", &f).ok());
  ASSERT_TRUE(f->Append("x").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("tail").ok());
  ASSERT_TRUE(f->Close().ok());
  ASSERT_TRUE(env_->RenameFile("/src", "/dst").ok());
  ASSERT_TRUE(env_->Crash().ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/dst", &data).ok());
  EXPECT_EQ(data, "x");
}

TEST_F(FaultEnvTest, MarkSyncedCheckpointsEverything) {
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_->NewWritableFile("/a", &f).ok());
  ASSERT_TRUE(f->Append("never-synced-but-checkpointed").ok());
  ASSERT_TRUE(f->Close().ok());
  env_->MarkSynced();
  ASSERT_TRUE(env_->Crash().ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/a", &data).ok());
  EXPECT_EQ(data, "never-synced-but-checkpointed");
}

}  // namespace
}  // namespace lsmlab
