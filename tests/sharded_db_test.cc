// Sharded keyspace correctness: routing stability, cross-shard iterator
// ordering and snapshot consistency under concurrent writes, per-shard
// WriteBatch atomicity, property aggregation, and clean shutdown with
// background work queued on every shard. Run under -DLSMLAB_SANITIZE=thread
// (the tsan-obs CI leg) to prove the router adds no races.

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/db.h"
#include "core/sharded_db.h"
#include "storage/env.h"

namespace lsmlab {
namespace {

std::string Key(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

class ShardedDBTest : public ::testing::Test {
 protected:
  void SetUp() override { env_.reset(NewMemEnv()); }

  Options ShardedOptions(int num_shards) {
    Options options;
    options.env = env_.get();
    options.num_shards = num_shards;
    return options;
  }

  void Open(const Options& options) {
    ASSERT_TRUE(DB::Open(options, "/db", &db_).ok());
  }

  /// First `count` keys of the form key<i> that route to `shard`.
  std::vector<std::string> KeysOnShard(int num_shards, int shard,
                                       int count) {
    std::vector<std::string> keys;
    for (int i = 0; static_cast<int>(keys.size()) < count; i++) {
      std::string k = Key(i);
      if (static_cast<int>(ShardOfKey(Slice(k),
                                      static_cast<uint32_t>(num_shards))) ==
          shard) {
        keys.push_back(std::move(k));
      }
    }
    return keys;
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<DB> db_;
};

TEST_F(ShardedDBTest, RoutingIsDeterministicAndCoversEveryShard) {
  constexpr uint32_t kShards = 8;
  std::vector<int> hits(kShards, 0);
  for (int i = 0; i < 4000; i++) {
    const std::string k = Key(i);
    const uint32_t shard = ShardOfKey(Slice(k), kShards);
    ASSERT_LT(shard, kShards);
    // Pure function of the key bytes: recomputing must agree.
    ASSERT_EQ(shard, ShardOfKey(Slice(k), kShards));
    hits[shard]++;
  }
  // A uniform hash over 4000 keys puts roughly 500 on each of 8 shards;
  // an empty (or wildly skewed) shard means the routing is broken.
  for (uint32_t s = 0; s < kShards; s++) {
    EXPECT_GT(hits[s], 200) << "shard " << s << " underloaded";
  }
}

TEST_F(ShardedDBTest, SameKeyLandsOnSameShardAcrossReopen) {
  constexpr int kShards = 4;
  constexpr int kKeys = 400;
  Open(ShardedOptions(kShards));
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  db_.reset();

  Open(ShardedOptions(kShards));
  auto* sharded = static_cast<ShardedDB*>(db_.get());
  std::string value;
  for (int i = 0; i < kKeys; i++) {
    const std::string k = Key(i);
    // Through the router...
    ASSERT_TRUE(db_->Get({}, k, &value).ok()) << k;
    EXPECT_EQ(value, "v" + std::to_string(i));
    // ...and pinned to the very shard the routing hash names: the key's
    // data must live there (not merely be findable somewhere).
    const int shard = static_cast<int>(ShardOfKey(Slice(k), kShards));
    ASSERT_TRUE(sharded->TEST_Shard(shard)->Get({}, k, &value).ok())
        << k << " not on shard " << shard << " after reopen";
    for (int other = 0; other < kShards; other++) {
      if (other != shard) {
        EXPECT_TRUE(
            sharded->TEST_Shard(other)->Get({}, k, &value).IsNotFound())
            << k << " leaked onto shard " << other;
      }
    }
  }
}

TEST_F(ShardedDBTest, ReopenWithDifferentShardCountIsRefused) {
  Open(ShardedOptions(4));
  ASSERT_TRUE(db_->Put({}, Key(1), "v").ok());
  db_.reset();

  std::unique_ptr<DB> db;
  Status s = DB::Open(ShardedOptions(2), "/db", &db);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  // Opening the sharded root as a plain single-instance DB must also be
  // refused — it would present an empty database.
  s = DB::Open(ShardedOptions(1), "/db", &db);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  // The recorded count still opens.
  ASSERT_TRUE(DB::Open(ShardedOptions(4), "/db", &db).ok());
  std::string value;
  ASSERT_TRUE(db->Get({}, Key(1), &value).ok());
  EXPECT_EQ(value, "v");
}

TEST_F(ShardedDBTest, IteratorMergesShardsInTotalOrder) {
  constexpr int kShards = 4;
  constexpr int kKeys = 500;
  Open(ShardedOptions(kShards));
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), "v" + std::to_string(i)).ok());
  }
  std::unique_ptr<Iterator> iter(db_->NewIterator({}));
  int n = 0;
  std::string prev;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    if (n > 0) {
      ASSERT_LT(prev, iter->key().ToString()) << "order violated at " << n;
    }
    prev = iter->key().ToString();
    ASSERT_EQ(prev, Key(n));
    ASSERT_EQ(iter->value().ToString(), "v" + std::to_string(n));
    n++;
  }
  ASSERT_TRUE(iter->status().ok());
  EXPECT_EQ(n, kKeys);
  // Seek lands on the routed shard's entry within the merged order.
  iter->Seek(Key(123));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), Key(123));
}

TEST_F(ShardedDBTest, IteratorHoldsConsistentSnapshotVectorUnderWrites) {
  constexpr int kShards = 4;
  constexpr int kKeys = 300;
  Open(ShardedOptions(kShards));
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), "old" + std::to_string(i)).ok());
  }

  // The iterator pins one snapshot per shard at creation; writes that race
  // with the scan — overwrites, deletes, new keys — must stay invisible.
  std::unique_ptr<Iterator> iter(db_->NewIterator({}));
  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    int round = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const int i = (round * 13) % kKeys;
      db_->Put({}, Key(i), "new" + std::to_string(round)).IgnoreError();
      db_->Delete({}, Key((i + 7) % kKeys)).IgnoreError();
      db_->Put({}, Key(kKeys + round), "late").IgnoreError();
      round++;
    }
  });

  for (int pass = 0; pass < 2; pass++) {
    int n = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      ASSERT_EQ(iter->key().ToString(), Key(n)) << "pass " << pass;
      ASSERT_EQ(iter->value().ToString(), "old" + std::to_string(n));
      n++;
    }
    ASSERT_TRUE(iter->status().ok());
    ASSERT_EQ(n, kKeys) << "pass " << pass;
  }
  stop.store(true, std::memory_order_release);
  mutator.join();
}

TEST_F(ShardedDBTest, ExplicitSnapshotReadsAreStablePerShard) {
  constexpr int kShards = 4;
  Open(ShardedOptions(kShards));
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), "before").ok());
  }
  const Snapshot* snap = db_->GetSnapshot();
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), "after").ok());
  }
  ReadOptions at_snap;
  at_snap.snapshot = snap;
  std::string value;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db_->Get(at_snap, Key(i), &value).ok()) << i;
    EXPECT_EQ(value, "before") << i;
    ASSERT_TRUE(db_->Get({}, Key(i), &value).ok());
    EXPECT_EQ(value, "after") << i;
  }
  // Scan at the snapshot agrees with point reads at the snapshot.
  std::vector<std::pair<std::string, std::string>> results;
  ASSERT_TRUE(db_->Scan(at_snap, Key(0), Key(99), 1000, &results).ok());
  ASSERT_EQ(results.size(), 100u);
  for (const auto& [k, v] : results) {
    EXPECT_EQ(v, "before") << k;
  }
  db_->ReleaseSnapshot(snap);
}

TEST_F(ShardedDBTest, WriteBatchSplitsAcrossShardsAndAppliesFully) {
  constexpr int kShards = 4;
  Open(ShardedOptions(kShards));
  WriteBatch batch;
  for (int i = 0; i < 200; i++) {
    batch.Put(Key(i), "b" + std::to_string(i));
  }
  ASSERT_TRUE(db_->Put({}, Key(500), "doomed").ok());
  batch.Delete(Key(500));
  ASSERT_TRUE(db_->Write({}, &batch).ok());
  std::string value;
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db_->Get({}, Key(i), &value).ok()) << i;
    EXPECT_EQ(value, "b" + std::to_string(i));
  }
  EXPECT_TRUE(db_->Get({}, Key(500), &value).IsNotFound());
  // The split really fanned out: every shard that owns one of the batch's
  // keys saw at least one write.
  auto* sharded = static_cast<ShardedDB*>(db_.get());
  for (int s = 0; s < kShards; s++) {
    EXPECT_GT(sharded->TEST_Shard(s)->GetStats().writes, 0u)
        << "shard " << s << " never written";
  }
}

TEST_F(ShardedDBTest, WriteBatchIsAtomicPerShardUnderConcurrentReads) {
  constexpr int kShards = 4;
  constexpr int kTargetShard = 1;
  constexpr int kKeysPerBatch = 8;
  constexpr int kRounds = 300;
  Open(ShardedOptions(kShards));
  // All probe keys live on one shard, so each round's batch becomes a
  // single sub-batch committed as one group there. A MultiGet of those
  // keys resolves against one shard snapshot and must therefore observe a
  // whole batch or none of it — never a torn mix of two rounds.
  const std::vector<std::string> keys =
      KeysOnShard(kShards, kTargetShard, kKeysPerBatch);
  auto write_round = [&](int round) {
    WriteBatch batch;
    for (const std::string& k : keys) {
      batch.Put(k, "r" + std::to_string(round));
    }
    ASSERT_TRUE(db_->Write({}, &batch).ok());
  };
  write_round(0);

  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::thread reader([&] {
    std::vector<Slice> key_slices;
    key_slices.reserve(keys.size());
    for (const std::string& k : keys) {
      key_slices.emplace_back(k);
    }
    std::vector<std::string> values;
    std::vector<Status> statuses;
    while (!stop.load(std::memory_order_acquire)) {
      db_->MultiGet({}, key_slices, &values, &statuses);
      for (size_t i = 0; i < keys.size(); i++) {
        if (!statuses[i].ok() || values[i] != values[0]) {
          torn.store(true, std::memory_order_release);
          return;
        }
      }
    }
  });
  for (int round = 1; round <= kRounds; round++) {
    write_round(round);
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_FALSE(torn.load()) << "reader observed a torn per-shard batch";
}

TEST_F(ShardedDBTest, MultiGetScattersAndGathersInCallerOrder) {
  constexpr int kShards = 4;
  Open(ShardedOptions(kShards));
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), "v" + std::to_string(i)).ok());
  }
  std::vector<std::string> key_storage;
  for (int i = 99; i >= 0; i--) {
    key_storage.push_back(Key(i));            // present, reverse order
    key_storage.push_back("missing" + Key(i));  // absent
  }
  std::vector<Slice> keys(key_storage.begin(), key_storage.end());
  std::vector<std::string> values;
  std::vector<Status> statuses;
  db_->MultiGet({}, keys, &values, &statuses);
  ASSERT_EQ(values.size(), keys.size());
  ASSERT_EQ(statuses.size(), keys.size());
  for (size_t i = 0; i < keys.size(); i++) {
    if (i % 2 == 0) {
      const int id = 99 - static_cast<int>(i) / 2;
      ASSERT_TRUE(statuses[i].ok()) << i;
      EXPECT_EQ(values[i], "v" + std::to_string(id));
    } else {
      EXPECT_TRUE(statuses[i].IsNotFound()) << i;
    }
  }
}

TEST_F(ShardedDBTest, ScanMergesShardsAndHonorsLimit) {
  constexpr int kShards = 4;
  Open(ShardedOptions(kShards));
  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), "v" + std::to_string(i)).ok());
  }
  std::vector<std::pair<std::string, std::string>> results;
  ASSERT_TRUE(db_->Scan({}, Key(50), Key(249), 120, &results).ok());
  ASSERT_EQ(results.size(), 120u);
  for (int i = 0; i < 120; i++) {
    EXPECT_EQ(results[i].first, Key(50 + i));
    EXPECT_EQ(results[i].second, "v" + std::to_string(50 + i));
  }
}

TEST_F(ShardedDBTest, PropertiesAggregateAcrossShards) {
  constexpr int kShards = 4;
  constexpr int kKeys = 400;
  Open(ShardedOptions(kShards));
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), "v").ok());
  }
  std::string value;
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(db_->Get({}, Key(i), &value).ok());
  }

  ASSERT_TRUE(db_->GetProperty("lsmlab.num-shards", &value));
  EXPECT_EQ(value, std::to_string(kShards));

  // Aggregated stats equal the sum of the per-shard counters, and every
  // write/get is accounted for exactly once.
  auto ticker_of = [](const std::string& dump,
                      const std::string& name) -> uint64_t {
    const std::string needle = "ticker." + name + "=";
    const size_t pos = dump.find(needle);
    EXPECT_NE(pos, std::string::npos) << name;
    return pos == std::string::npos
               ? 0
               : std::stoull(dump.substr(pos + needle.size()));
  };
  std::string aggregated;
  ASSERT_TRUE(db_->GetProperty("lsmlab.stats", &aggregated));
  uint64_t writes_sum = 0;
  uint64_t gets_sum = 0;
  for (int s = 0; s < kShards; s++) {
    std::string shard_dump;
    ASSERT_TRUE(db_->GetProperty(
        "lsmlab.shard." + std::to_string(s) + ".stats", &shard_dump));
    writes_sum += ticker_of(shard_dump, "writes");
    gets_sum += ticker_of(shard_dump, "gets");
  }
  EXPECT_EQ(ticker_of(aggregated, "writes"), writes_sum);
  EXPECT_EQ(ticker_of(aggregated, "gets"), gets_sum);
  EXPECT_EQ(writes_sum, static_cast<uint64_t>(kKeys));
  EXPECT_EQ(gets_sum, static_cast<uint64_t>(kKeys));
  EXPECT_EQ(db_->GetStats().writes, static_cast<uint64_t>(kKeys));

  // Out-of-range / malformed shard properties answer false, not garbage.
  EXPECT_FALSE(db_->GetProperty("lsmlab.shard.9.stats", &value));
  EXPECT_FALSE(db_->GetProperty("lsmlab.shard.x.stats", &value));
  EXPECT_FALSE(db_->GetProperty("lsmlab.shard.", &value));
}

TEST_F(ShardedDBTest, CloseWithBackgroundWorkQueuedOnEveryShardIsClean) {
  // Regression for the kDraining contract: destroying a ShardedDB shuts
  // the shared pool down first, so a shard racing its
  // MaybeScheduleBackgroundWork against the drain has Schedule() return
  // false and must unwind cleanly (no hang, no lost flag, no use of a
  // task that will never run). Tiny buffers + a burst of writes right up
  // to destruction keep background work queued on every shard at close.
  constexpr int kShards = 4;
  for (int cycle = 0; cycle < 3; cycle++) {
    Options options = ShardedOptions(kShards);
    options.background_compaction = true;
    options.write_buffer_size = 8 << 10;
    options.max_file_size = 8 << 10;
    options.level0_compaction_trigger = 2;
    options.size_ratio = 3;
    Open(options);
    const std::string pad(256, 'p');
    for (int i = 0; i < 400; i++) {
      ASSERT_TRUE(db_->Put({}, Key(i), pad + std::to_string(i)).ok());
    }
    db_.reset();  // destructor drains; queued flushes finish or recover

    // Nothing acked may be lost: unflushed tails replay from each
    // shard's WAL on reopen.
    Open(options);
    std::string value;
    for (int i = 0; i < 400; i++) {
      ASSERT_TRUE(db_->Get({}, Key(i), &value).ok())
          << "cycle " << cycle << " key " << i;
      EXPECT_EQ(value, pad + std::to_string(i));
    }
    db_.reset();
    ASSERT_TRUE(DestroyDB(options, "/db").ok());
  }
}

TEST_F(ShardedDBTest, DestroyDBRemovesShardSubdirectories) {
  constexpr int kShards = 4;
  Open(ShardedOptions(kShards));
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), "v").ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  db_.reset();
  ASSERT_TRUE(DestroyDB(ShardedOptions(kShards), "/db").ok());
  for (int s = 0; s < kShards; s++) {
    std::vector<std::string> children;
    env_->GetChildren(ShardPath("/db", s), &children).IgnoreError();
    EXPECT_TRUE(children.empty()) << "shard " << s << " not emptied";
  }
  // The marker is gone too, so the name is reusable at any shard count.
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(ShardedOptions(2), "/db", &db).ok());
}

}  // namespace
}  // namespace lsmlab
