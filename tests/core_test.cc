// Unit tests for the core internals: internal-key format, write batches,
// version edits, file naming, and the iterator stack.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/db_iter.h"
#include "core/dbformat.h"
#include "core/filename.h"
#include "core/merging_iterator.h"
#include "core/version.h"
#include "core/write_batch.h"

namespace lsmlab {
namespace {

std::string IKey(const std::string& user_key, SequenceNumber seq,
                 ValueType type = ValueType::kTypeValue) {
  std::string result;
  AppendInternalKey(&result, user_key, seq, type);
  return result;
}

// ------------------------------------------------------------- dbformat --

TEST(DbFormatTest, EncodeDecodeRoundtrip) {
  const std::string ikey = IKey("hello", 42, ValueType::kTypeDeletion);
  EXPECT_EQ(ExtractUserKey(ikey).ToString(), "hello");
  EXPECT_EQ(ExtractSequence(ikey), 42u);
  EXPECT_EQ(ExtractValueType(ikey), ValueType::kTypeDeletion);
}

TEST(DbFormatTest, InternalOrderNewestFirst) {
  InternalKeyComparator icmp(BytewiseComparator());
  // Same user key: larger sequence sorts FIRST.
  EXPECT_LT(icmp.Compare(IKey("a", 5), IKey("a", 3)), 0);
  // Type breaks ties: value sorts before deletion at equal seq.
  EXPECT_LT(icmp.Compare(IKey("a", 5, ValueType::kTypeValue),
                         IKey("a", 5, ValueType::kTypeDeletion)),
            0);
  // Different user keys: user order dominates.
  EXPECT_LT(icmp.Compare(IKey("a", 1), IKey("b", 100)), 0);
}

TEST(DbFormatTest, LookupKeySortsBeforeVisibleVersions) {
  InternalKeyComparator icmp(BytewiseComparator());
  LookupKey lkey("k", 10);
  // Versions visible at snapshot 10 (seq <= 10) sort at-or-after the
  // lookup key, so a forward seek lands on the newest visible one.
  EXPECT_LE(icmp.Compare(lkey.internal_key(), IKey("k", 10)), 0);
  EXPECT_LT(icmp.Compare(lkey.internal_key(), IKey("k", 9)), 0);
  EXPECT_LT(icmp.Compare(lkey.internal_key(), IKey("k", 1)), 0);
  // Newer versions sort before it (skipped by a forward seek).
  EXPECT_GT(icmp.Compare(lkey.internal_key(), IKey("k", 11)), 0);
}

TEST(DbFormatTest, SeparatorStaysBetweenAndKeepsUserKeyShort) {
  InternalKeyComparator icmp(BytewiseComparator());
  std::string start = IKey("abcdefgh", 7);
  const std::string limit = IKey("abzz", 3);
  std::string sep = start;
  icmp.FindShortestSeparator(&sep, limit);
  EXPECT_LE(icmp.Compare(start, sep), 0);
  EXPECT_LT(icmp.Compare(sep, limit), 0);
  EXPECT_LE(sep.size(), start.size());
}

TEST(DbFormatTest, SeparatorUnchangedForSameUserKey) {
  // Versions of one user key cannot be separated; the key must remain
  // exactly (or the fence would corrupt version visibility).
  InternalKeyComparator icmp(BytewiseComparator());
  std::string start = IKey("samekey", 9);
  const std::string orig = start;
  icmp.FindShortestSeparator(&start, IKey("samekey", 2));
  EXPECT_EQ(start, orig);
}

// ----------------------------------------------------------- WriteBatch --

TEST(WriteBatchTest, CountAndSequence) {
  WriteBatch batch;
  EXPECT_EQ(batch.Count(), 0u);
  batch.Put("a", "1");
  batch.Delete("b");
  batch.Put("c", "3");
  EXPECT_EQ(batch.Count(), 3u);
  batch.set_sequence(100);
  EXPECT_EQ(batch.sequence(), 100u);
}

TEST(WriteBatchTest, IterateReplaysInOrder) {
  WriteBatch batch;
  batch.Put("k1", "v1");
  batch.Delete("k2");
  batch.Put("k3", "v3");

  struct Collector : public WriteBatch::Handler {
    std::vector<std::string> ops;
    void Put(const Slice& k, const Slice& v) override {
      ops.push_back("put:" + k.ToString() + "=" + v.ToString());
    }
    void Delete(const Slice& k) override {
      ops.push_back("del:" + k.ToString());
    }
  } collector;
  ASSERT_TRUE(batch.Iterate(&collector).ok());
  ASSERT_EQ(collector.ops.size(), 3u);
  EXPECT_EQ(collector.ops[0], "put:k1=v1");
  EXPECT_EQ(collector.ops[1], "del:k2");
  EXPECT_EQ(collector.ops[2], "put:k3=v3");
}

TEST(WriteBatchTest, ContentsRoundtripThroughWalRecord) {
  WriteBatch a;
  a.Put("key", std::string(1000, 'v'));
  a.set_sequence(7);
  WriteBatch b;
  b.SetContentsFrom(a.Contents());
  EXPECT_EQ(b.Count(), 1u);
  EXPECT_EQ(b.sequence(), 7u);
}

TEST(WriteBatchTest, CorruptContentsRejected) {
  WriteBatch batch;
  batch.SetContentsFrom(Slice("\x01\x02\x03"));  // too short: reset
  EXPECT_EQ(batch.Count(), 0u);

  // Valid header, garbage body.
  std::string bad(12, '\0');
  bad[8] = 2;  // count = 2 but no ops follow
  batch.SetContentsFrom(bad);
  struct Nop : public WriteBatch::Handler {
    void Put(const Slice&, const Slice&) override {}
    void Delete(const Slice&) override {}
  } nop;
  EXPECT_TRUE(batch.Iterate(&nop).IsCorruption());
}

// ---------------------------------------------------------- VersionEdit --

TEST(VersionEditTest, EncodeDecodeRoundtrip) {
  VersionEdit edit;
  edit.SetComparatorName("lsmlab.BytewiseComparator");
  edit.SetLogNumber(12);
  edit.SetNextFileNumber(34);
  edit.SetLastSequence(56);
  edit.SetNextRunSeq(78);
  FileMetaData meta;
  meta.number = 9;
  meta.file_size = 1024;
  meta.run_seq = 3;
  meta.smallest = IKey("aaa", 5);
  meta.largest = IKey("zzz", 2);
  edit.AddFile(2, meta);
  edit.RemoveFile(1, 4);

  std::string encoded;
  edit.EncodeTo(&encoded);
  VersionEdit decoded;
  ASSERT_TRUE(decoded.DecodeFrom(Slice(encoded)).ok());

  std::string re_encoded;
  decoded.EncodeTo(&re_encoded);
  EXPECT_EQ(encoded, re_encoded);
}

TEST(VersionEditTest, RejectsGarbage) {
  VersionEdit edit;
  EXPECT_FALSE(edit.DecodeFrom(Slice("\xff\xff\xff garbage")).ok());
}

// ------------------------------------------------------------ Filenames --

TEST(FilenameTest, RoundtripAllTypes) {
  struct Case {
    std::string name;
    uint64_t number;
    FileType type;
  } cases[] = {
      {"000007.sst", 7, FileType::kTableFile},
      {"000042.wal", 42, FileType::kWalFile},
      {"MANIFEST-000003", 3, FileType::kManifestFile},
      {"CURRENT", 0, FileType::kCurrentFile},
  };
  for (const auto& c : cases) {
    uint64_t number;
    FileType type;
    ASSERT_TRUE(ParseFileName(c.name, &number, &type)) << c.name;
    EXPECT_EQ(number, c.number);
    EXPECT_EQ(static_cast<int>(type), static_cast<int>(c.type));
  }
  EXPECT_EQ(TableFileName("/db", 7), "/db/000007.sst");
  EXPECT_EQ(WalFileName("/db", 42), "/db/000042.wal");
}

TEST(FilenameTest, RejectsForeignNames) {
  uint64_t number;
  FileType type;
  EXPECT_FALSE(ParseFileName("LOCK", &number, &type));
  EXPECT_FALSE(ParseFileName("123.tmp", &number, &type));
  EXPECT_FALSE(ParseFileName("abc.sst", &number, &type));
  EXPECT_FALSE(ParseFileName("", &number, &type));
}

// ---------------------------------------------- Merging iterator + DBIter --

/// In-memory iterator over a sorted vector of (internal key, value).
class VectorIterator : public Iterator {
 public:
  explicit VectorIterator(
      std::vector<std::pair<std::string, std::string>> data)
      : data_(std::move(data)), pos_(data_.size()) {}

  bool Valid() const override { return pos_ < data_.size(); }
  void SeekToFirst() override { pos_ = 0; }
  void SeekToLast() override {
    pos_ = data_.empty() ? 0 : data_.size() - 1;
    if (data_.empty()) pos_ = data_.size();
  }
  void Seek(const Slice& target) override {
    InternalKeyComparator icmp(BytewiseComparator());
    pos_ = 0;
    while (pos_ < data_.size() &&
           icmp.Compare(Slice(data_[pos_].first), target) < 0) {
      pos_++;
    }
  }
  void Next() override { pos_++; }
  void Prev() override { pos_ = pos_ == 0 ? data_.size() : pos_ - 1; }
  Slice key() const override { return Slice(data_[pos_].first); }
  Slice value() const override { return Slice(data_[pos_].second); }
  Status status() const override { return Status::OK(); }

 private:
  std::vector<std::pair<std::string, std::string>> data_;
  size_t pos_;
};

TEST(MergingIteratorTest, InterleavesRuns) {
  InternalKeyComparator icmp(BytewiseComparator());
  auto* a = new VectorIterator({{IKey("a", 1), "1"}, {IKey("c", 1), "3"}});
  auto* b = new VectorIterator({{IKey("b", 1), "2"}, {IKey("d", 1), "4"}});
  Iterator* children[] = {a, b};
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(&icmp, children, 2));
  std::string order;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    order += merged->value().ToString();
  }
  EXPECT_EQ(order, "1234");
  // Backward.
  order.clear();
  for (merged->SeekToLast(); merged->Valid(); merged->Prev()) {
    order += merged->value().ToString();
  }
  EXPECT_EQ(order, "4321");
}

TEST(DBIterTest, NewestVisibleVersionWins) {
  auto* data = new VectorIterator({
      {IKey("k", 3), "newest"},
      {IKey("k", 2), "middle"},
      {IKey("k", 1), "oldest"},
  });
  std::unique_ptr<Iterator> it(
      NewDBIterator(BytewiseComparator(), data, /*sequence=*/2));
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "k");
  EXPECT_EQ(it->value().ToString(), "middle");  // seq 3 invisible at snap 2
  it->Next();
  EXPECT_FALSE(it->Valid());
}

TEST(DBIterTest, TombstoneHidesOlderVersions) {
  auto* data = new VectorIterator({
      {IKey("a", 5), "live"},
      {IKey("b", 4, ValueType::kTypeDeletion), ""},
      {IKey("b", 3), "dead"},
      {IKey("c", 2), "live2"},
  });
  std::unique_ptr<Iterator> it(
      NewDBIterator(BytewiseComparator(), data, kMaxSequenceNumber));
  std::string seen;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    seen += it->key().ToString();
  }
  EXPECT_EQ(seen, "ac");
}

TEST(DBIterTest, SeekSkipsInvisibleAndDeleted) {
  auto* data = new VectorIterator({
      {IKey("a", 9), "too-new"},
      {IKey("b", 2, ValueType::kTypeDeletion), ""},
      {IKey("b", 1), "dead"},
      {IKey("c", 2), "target"},
  });
  std::unique_ptr<Iterator> it(
      NewDBIterator(BytewiseComparator(), data, /*sequence=*/5));
  it->Seek("a");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "c");  // a invisible, b deleted
  EXPECT_EQ(it->value().ToString(), "target");
}

TEST(DBIterTest, PrevFromForwardPosition) {
  auto* data = new VectorIterator({
      {IKey("a", 1), "1"},
      {IKey("b", 2), "2-new"},
      {IKey("b", 1), "2-old"},
      {IKey("c", 1), "3"},
  });
  std::unique_ptr<Iterator> it(
      NewDBIterator(BytewiseComparator(), data, kMaxSequenceNumber));
  it->Seek("c");
  ASSERT_TRUE(it->Valid());
  it->Prev();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "b");
  EXPECT_EQ(it->value().ToString(), "2-new");  // newest version, not oldest
  it->Prev();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "a");
  it->Prev();
  EXPECT_FALSE(it->Valid());
}

}  // namespace
}  // namespace lsmlab
