#include "memtable/memtable.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "memtable/skiplist.h"
#include "util/random.h"

namespace lsmlab {
namespace {

// ------------------------------------------------------------- SkipList --

struct IntComparator {
  int operator()(uint64_t a, uint64_t b) const {
    return a < b ? -1 : (a > b ? 1 : 0);
  }
};

TEST(SkipListTest, InsertAndContains) {
  Arena arena;
  SkipList<uint64_t, IntComparator> list(IntComparator(), &arena);
  Random rng(301);
  std::set<uint64_t> model;
  for (int i = 0; i < 2000; i++) {
    const uint64_t v = rng.Uniform(10000);
    if (model.insert(v).second) {
      list.Insert(v);
    }
  }
  for (uint64_t v = 0; v < 10000; v += 7) {
    EXPECT_EQ(list.Contains(v), model.count(v) > 0) << v;
  }
}

TEST(SkipListTest, IterationInOrder) {
  Arena arena;
  SkipList<uint64_t, IntComparator> list(IntComparator(), &arena);
  std::set<uint64_t> model;
  Random rng(302);
  for (int i = 0; i < 1000; i++) {
    const uint64_t v = rng.Next64() % 100000;
    if (model.insert(v).second) {
      list.Insert(v);
    }
  }
  SkipList<uint64_t, IntComparator>::Iterator it(&list);
  auto expect = model.begin();
  for (it.SeekToFirst(); it.Valid(); it.Next(), ++expect) {
    ASSERT_NE(expect, model.end());
    EXPECT_EQ(it.key(), *expect);
  }
  EXPECT_EQ(expect, model.end());
}

TEST(SkipListTest, SeekAndPrev) {
  Arena arena;
  SkipList<uint64_t, IntComparator> list(IntComparator(), &arena);
  for (uint64_t v = 0; v < 100; v += 10) {
    list.Insert(v);
  }
  SkipList<uint64_t, IntComparator>::Iterator it(&list);
  it.Seek(35);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 40u);
  it.Prev();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 30u);
  it.SeekToLast();
  EXPECT_EQ(it.key(), 90u);
  it.Seek(1000);
  EXPECT_FALSE(it.Valid());
}

// Interleaved key ranges maximize CAS contention: every thread splices into
// every neighborhood of the list instead of appending to a private region.
TEST(SkipListTest, ConcurrentInsertInterleavedThreads) {
  Arena arena;
  SkipList<uint64_t, IntComparator> list(IntComparator(), &arena);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 2000;
  std::atomic<uint64_t> total_retries{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      uint64_t retries = 0;
      for (uint64_t i = 0; i < kPerThread; i++) {
        retries += list.InsertConcurrently(i * kThreads + t);
      }
      total_retries.fetch_add(retries, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();

  SkipList<uint64_t, IntComparator>::Iterator it(&list);
  uint64_t expected = 0;
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    ASSERT_EQ(it.key(), expected);
    expected++;
  }
  EXPECT_EQ(expected, kPerThread * kThreads);
  // Retries are contention-dependent; the counter only has to be coherent.
  EXPECT_LT(total_retries.load(), kPerThread * kThreads * 100);
}

TEST(SkipListTest, ConcurrentInsertsVsConcurrentReaders) {
  Arena arena;
  SkipList<uint64_t, IntComparator> list(IntComparator(), &arena);
  constexpr int kWriters = 4;
  constexpr int kReaders = 3;
  constexpr uint64_t kPerWriter = 4000;
  // watermarks[t] = writer t has finished inserting keys [0, watermark).
  std::atomic<uint64_t> watermarks[kWriters];
  for (auto& w : watermarks) w.store(0);
  std::atomic<bool> done{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; t++) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerWriter; i++) {
        list.InsertConcurrently(i * kWriters + t);
        watermarks[t].store(i + 1, std::memory_order_release);
      }
    });
  }
  for (int r = 0; r < kReaders; r++) {
    threads.emplace_back([&, r] {
      Random rng(0x9e3779b9u + r);
      while (!done.load(std::memory_order_acquire)) {
        // Scan: keys must be strictly increasing even mid-insert.
        SkipList<uint64_t, IntComparator>::Iterator it(&list);
        uint64_t prev = 0;
        bool first = true;
        for (it.SeekToFirst(); it.Valid(); it.Next()) {
          if (!first) {
            ASSERT_GT(it.key(), prev);
          }
          prev = it.key();
          first = false;
        }
        // Point reads: everything below a writer's published watermark
        // must already be visible to Contains and Seek.
        const int t = static_cast<int>(rng.Uniform(kWriters));
        const uint64_t mark = watermarks[t].load(std::memory_order_acquire);
        if (mark > 0) {
          const uint64_t key = rng.Uniform(mark) * kWriters + t;
          ASSERT_TRUE(list.Contains(key));
          SkipList<uint64_t, IntComparator>::Iterator seek_it(&list);
          seek_it.Seek(key);
          ASSERT_TRUE(seek_it.Valid());
          ASSERT_EQ(seek_it.key(), key);
        }
      }
    });
  }
  for (int t = 0; t < kWriters; t++) threads[t].join();
  done.store(true, std::memory_order_release);
  for (int r = 0; r < kReaders; r++) threads[kWriters + r].join();

  SkipList<uint64_t, IntComparator>::Iterator it(&list);
  uint64_t count = 0;
  for (it.SeekToFirst(); it.Valid(); it.Next()) count++;
  EXPECT_EQ(count, kPerWriter * kWriters);
}

// ------------------------------------------------------------- MemTable --

class MemTableTest : public ::testing::TestWithParam<MemTable::Rep> {
 protected:
  MemTableTest() : icmp_(BytewiseComparator()) {}

  MemTable* NewTable(bool hash_index = false) {
    MemTable* mem = new MemTable(icmp_, GetParam(), hash_index);
    mem->Ref();
    return mem;
  }

  InternalKeyComparator icmp_;
};

TEST_P(MemTableTest, AddAndGetLatest) {
  MemTable* mem = NewTable();
  mem->Add(1, ValueType::kTypeValue, "key", "v1");
  mem->Add(2, ValueType::kTypeValue, "key", "v2");

  std::string value;
  Status s;
  ASSERT_TRUE(mem->Get(LookupKey("key", kMaxSequenceNumber), &value, &s));
  EXPECT_EQ(value, "v2");
  mem->Unref();
}

TEST_P(MemTableTest, SnapshotVisibility) {
  MemTable* mem = NewTable();
  mem->Add(10, ValueType::kTypeValue, "key", "old");
  mem->Add(20, ValueType::kTypeValue, "key", "new");

  std::string value;
  Status s;
  ASSERT_TRUE(mem->Get(LookupKey("key", 15), &value, &s));
  EXPECT_EQ(value, "old");
  ASSERT_TRUE(mem->Get(LookupKey("key", 25), &value, &s));
  EXPECT_EQ(value, "new");
  // Sequence before the first version: invisible.
  EXPECT_FALSE(mem->Get(LookupKey("key", 5), &value, &s));
  mem->Unref();
}

TEST_P(MemTableTest, TombstoneReportsNotFound) {
  MemTable* mem = NewTable();
  mem->Add(1, ValueType::kTypeValue, "key", "v");
  mem->Add(2, ValueType::kTypeDeletion, "key", "");
  std::string value;
  Status s;
  ASSERT_TRUE(mem->Get(LookupKey("key", kMaxSequenceNumber), &value, &s));
  EXPECT_TRUE(s.IsNotFound());
  mem->Unref();
}

TEST_P(MemTableTest, MissingKey) {
  MemTable* mem = NewTable();
  mem->Add(1, ValueType::kTypeValue, "a", "v");
  std::string value;
  Status s;
  EXPECT_FALSE(mem->Get(LookupKey("b", kMaxSequenceNumber), &value, &s));
  mem->Unref();
}

TEST_P(MemTableTest, IteratorOrder) {
  MemTable* mem = NewTable();
  Random rng(303);
  std::map<std::string, std::string> model;
  SequenceNumber seq = 1;
  for (int i = 0; i < 500; i++) {
    const std::string k = "key" + std::to_string(rng.Uniform(200));
    const std::string v = "v" + std::to_string(i);
    mem->Add(seq++, ValueType::kTypeValue, k, v);
    model[k] = v;
  }
  std::unique_ptr<Iterator> it(mem->NewIterator());
  std::string last_user_key;
  std::map<std::string, std::string> seen;
  std::string prev_internal;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    const Slice ikey = it->key();
    if (!prev_internal.empty()) {
      EXPECT_LT(icmp_.Compare(Slice(prev_internal), ikey), 0);
    }
    prev_internal = ikey.ToString();
    const std::string user = ExtractUserKey(ikey).ToString();
    if (user != last_user_key) {
      seen[user] = it->value().ToString();  // first = newest version
      last_user_key = user;
    }
  }
  EXPECT_EQ(seen, model);
  mem->Unref();
}

TEST_P(MemTableTest, HashIndexFastPathMatchesOrderedPath) {
  MemTable* with = NewTable(/*hash_index=*/true);
  MemTable* without = NewTable(/*hash_index=*/false);
  Random rng(304);
  SequenceNumber seq = 1;
  for (int i = 0; i < 1000; i++) {
    const std::string k = "k" + std::to_string(rng.Uniform(300));
    const std::string v = "v" + std::to_string(i);
    with->Add(seq, ValueType::kTypeValue, k, v);
    without->Add(seq, ValueType::kTypeValue, k, v);
    seq++;
  }
  for (int i = 0; i < 300; i++) {
    const std::string k = "k" + std::to_string(i);
    std::string v1, v2;
    Status s1, s2;
    const bool f1 = with->Get(LookupKey(k, kMaxSequenceNumber), &v1, &s1);
    const bool f2 = without->Get(LookupKey(k, kMaxSequenceNumber), &v2, &s2);
    EXPECT_EQ(f1, f2) << k;
    if (f1 && f2) {
      EXPECT_EQ(v1, v2);
    }
  }
  with->Unref();
  without->Unref();
}

TEST_P(MemTableTest, MemoryUsageGrows) {
  MemTable* mem = NewTable();
  const size_t before = mem->ApproximateMemoryUsage();
  for (int i = 0; i < 1000; i++) {
    mem->Add(i + 1, ValueType::kTypeValue, "key" + std::to_string(i),
             std::string(100, 'v'));
  }
  EXPECT_GT(mem->ApproximateMemoryUsage(), before + 100 * 1000);
  EXPECT_EQ(mem->num_entries(), 1000u);
  mem->Unref();
}

TEST_P(MemTableTest, IteratorKeepsTableAliveViaRef) {
  MemTable* mem = NewTable();
  mem->Add(1, ValueType::kTypeValue, "k", "v");
  Iterator* it = mem->NewIterator();
  mem->Unref();  // iterator still holds a reference
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "k");
  delete it;  // releases the final reference
}

// Concurrent Add is only supported by the skiplist rep without the hash
// index, so this test is not parameterized like the ones above.
TEST(MemTableConcurrentTest, AddConcurrentFromManyThreads) {
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable* mem = new MemTable(icmp, MemTable::Rep::kSkipList,
                               /*use_hash_index=*/false);
  mem->Ref();
  ASSERT_TRUE(mem->SupportsConcurrentInsert());
  for (const auto& [rep, hash_index] :
       {std::pair{MemTable::Rep::kSortedVector, false},
        std::pair{MemTable::Rep::kSkipList, true}}) {
    MemTable* other = new MemTable(icmp, rep, hash_index);
    other->Ref();
    EXPECT_FALSE(other->SupportsConcurrentInsert());
    other->Unref();
  }

  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      // Pre-assigned disjoint sequence ranges, as the parallel group apply
      // hands out: thread t owns sequences [t*kPerThread+1, (t+1)*kPerThread].
      SequenceNumber seq = static_cast<SequenceNumber>(t) * kPerThread + 1;
      for (int i = 0; i < kPerThread; i++) {
        const std::string k =
            "w" + std::to_string(t) + "_" + std::to_string(i);
        mem->AddConcurrent(seq++, ValueType::kTypeValue, k,
                           "v" + std::to_string(i));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(mem->num_entries(), uint64_t{kThreads} * kPerThread);
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPerThread; i++) {
      const std::string k = "w" + std::to_string(t) + "_" + std::to_string(i);
      std::string value;
      Status s;
      ASSERT_TRUE(mem->Get(LookupKey(k, kMaxSequenceNumber), &value, &s)) << k;
      EXPECT_EQ(value, "v" + std::to_string(i));
    }
  }
  mem->Unref();
}

INSTANTIATE_TEST_SUITE_P(Reps, MemTableTest,
                         ::testing::Values(MemTable::Rep::kSkipList,
                                           MemTable::Rep::kSortedVector),
                         [](const auto& info) {
                           return info.param == MemTable::Rep::kSkipList
                                      ? "SkipList"
                                      : "SortedVector";
                         });

}  // namespace
}  // namespace lsmlab
