#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cache/block_cache.h"
#include "cache/lru_cache.h"
#include "core/dbformat.h"
#include "core/filename.h"
#include "core/table_cache.h"
#include "format/block.h"
#include "format/block_builder.h"
#include "format/sstable_builder.h"
#include "storage/env.h"

namespace lsmlab {
namespace {

// ------------------------------------------------------------ LruCache --

class LruCacheTest : public ::testing::Test {
 protected:
  LruCacheTest() : cache_(1000, /*num_shards=*/1) {}

  /// Inserts key -> heap int; tracks deletions in deleted_.
  LruCache::Handle* Insert(const std::string& key, int value,
                           size_t charge = 100) {
    int* v = new int(value);
    return cache_.Insert(
        key, v, charge, [this](const Slice& k, void* p) {
          deleted_.push_back(k.ToString());
          delete static_cast<int*>(p);
        });
  }

  int Get(const std::string& key) {
    LruCache::Handle* h = cache_.Lookup(key);
    if (h == nullptr) {
      return -1;
    }
    const int v = *static_cast<int*>(cache_.Value(h));
    cache_.Release(h);
    return v;
  }

  // Declared before cache_ so it outlives the deleters cache_'s destructor
  // runs.
  std::vector<std::string> deleted_;
  LruCache cache_;
};

TEST_F(LruCacheTest, InsertLookup) {
  cache_.Release(Insert("a", 1));
  cache_.Release(Insert("b", 2));
  EXPECT_EQ(Get("a"), 1);
  EXPECT_EQ(Get("b"), 2);
  EXPECT_EQ(Get("c"), -1);
}

TEST_F(LruCacheTest, EvictsLeastRecentlyUsed) {
  // Capacity 1000, charge 100 -> 10 entries fit.
  for (int i = 0; i < 10; i++) {
    cache_.Release(Insert("k" + std::to_string(i), i));
  }
  // Touch k0 so it is hot; k1 becomes the coldest.
  EXPECT_EQ(Get("k0"), 0);
  cache_.Release(Insert("new", 99));
  EXPECT_EQ(Get("k1"), -1);  // evicted
  EXPECT_EQ(Get("k0"), 0);   // survived
  EXPECT_EQ(Get("new"), 99);
}

TEST_F(LruCacheTest, PinnedEntriesSurviveEviction) {
  LruCache::Handle* pinned = Insert("pinned", 7);
  for (int i = 0; i < 20; i++) {
    cache_.Release(Insert("filler" + std::to_string(i), i));
  }
  // Entry left the table but the value is still alive via our pin.
  EXPECT_EQ(*static_cast<int*>(cache_.Value(pinned)), 7);
  EXPECT_TRUE(deleted_.empty() ||
              std::find(deleted_.begin(), deleted_.end(), "pinned") ==
                  deleted_.end());
  cache_.Release(pinned);
}

TEST_F(LruCacheTest, EraseRemovesEntry) {
  cache_.Release(Insert("gone", 1));
  cache_.Erase("gone");
  EXPECT_EQ(Get("gone"), -1);
  EXPECT_EQ(deleted_.size(), 1u);
}

TEST_F(LruCacheTest, DuplicateInsertDisplacesOld) {
  cache_.Release(Insert("dup", 1));
  cache_.Release(Insert("dup", 2));
  EXPECT_EQ(Get("dup"), 2);
  ASSERT_EQ(deleted_.size(), 1u);
}

TEST_F(LruCacheTest, PruneDropsEverythingUnpinned) {
  for (int i = 0; i < 5; i++) {
    cache_.Release(Insert("p" + std::to_string(i), i));
  }
  cache_.Prune();
  EXPECT_EQ(cache_.TotalCharge(), 0u);
  EXPECT_EQ(Get("p0"), -1);
}

TEST_F(LruCacheTest, StatsCountHitsAndMisses) {
  cache_.Release(Insert("x", 1));
  Get("x");
  Get("x");
  Get("missing");
  const auto stats = cache_.GetStats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
}

TEST_F(LruCacheTest, TotalChargeTracksUsage) {
  cache_.Release(Insert("a", 1, 300));
  cache_.Release(Insert("b", 2, 400));
  EXPECT_EQ(cache_.TotalCharge(), 700u);
  cache_.Erase("a");
  EXPECT_EQ(cache_.TotalCharge(), 400u);
}

TEST(LruCacheShardedTest, KeysSpreadAcrossShards) {
  LruCache cache(4000, /*num_shards=*/4);
  for (int i = 0; i < 100; i++) {
    auto* h = cache.Insert(
        "key" + std::to_string(i), new int(i), 10,
        [](const Slice&, void* p) { delete static_cast<int*>(p); });
    cache.Release(h);
  }
  int found = 0;
  for (int i = 0; i < 100; i++) {
    auto* h = cache.Lookup("key" + std::to_string(i));
    if (h != nullptr) {
      found++;
      cache.Release(h);
    }
  }
  EXPECT_EQ(found, 100);
}

// ---------------------------------------------------------- BlockCache --

std::unique_ptr<const Block> MakeBlock(int tag) {
  TableOptions opts;
  BlockBuilder builder(&opts);
  builder.Add("key" + std::to_string(tag), "value");
  Slice raw = builder.Finish();
  BlockContents contents;
  contents.owned = raw.ToString();
  contents.data = Slice(contents.owned);
  contents.heap_allocated = true;
  return std::make_unique<const Block>(std::move(contents));
}

TEST(BlockCacheTest, InsertLookupByFileAndOffset) {
  BlockCache cache(1 << 20);
  {
    auto ref = cache.Insert(5, 4096, MakeBlock(1));
    EXPECT_TRUE(static_cast<bool>(ref));
  }
  auto hit = cache.Lookup(5, 4096);
  EXPECT_TRUE(static_cast<bool>(hit));
  auto miss_offset = cache.Lookup(5, 8192);
  EXPECT_FALSE(static_cast<bool>(miss_offset));
  auto miss_file = cache.Lookup(6, 4096);
  EXPECT_FALSE(static_cast<bool>(miss_file));
}

TEST(BlockCacheTest, TracksPerFileHotness) {
  BlockCache cache(1 << 20);
  cache.Insert(1, 0, MakeBlock(1));
  cache.Insert(2, 0, MakeBlock(2));
  for (int i = 0; i < 5; i++) {
    cache.Lookup(1, 0);
  }
  cache.Lookup(2, 0);
  EXPECT_EQ(cache.FileAccesses(1), 5u);
  EXPECT_EQ(cache.FileAccesses(2), 1u);
  EXPECT_EQ(cache.FileAccesses(3), 0u);
  cache.ResetStats();
  EXPECT_EQ(cache.FileAccesses(1), 0u);
}

TEST(BlockCacheTest, RefKeepsBlockAliveAcrossEviction) {
  BlockCache cache(1000);  // tiny: every insert evicts the previous
  auto ref = cache.Insert(1, 0, MakeBlock(1));
  for (uint64_t i = 1; i < 20; i++) {
    cache.Insert(1, i * 4096, MakeBlock(static_cast<int>(i)));
  }
  // Our pinned block is still valid.
  ASSERT_TRUE(static_cast<bool>(ref));
  std::unique_ptr<Iterator> it(
      ref.block()->NewIterator(BytewiseComparator()));
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "key1");
}

// ---------------------------------------------------------- TableCache --

/// Regression: FindTable's error paths must clear the out-param. The batch
/// read path reuses one shared_ptr across a per-file loop; before the fix,
/// a failed open left the previous table's reader pinned in it, keeping
/// the handle (and its open file) alive past Evict.
TEST(TableCacheTest, ErrorPathsDoNotRetainPriorHandle) {
  std::unique_ptr<Env> env(NewMemEnv());
  Options options;
  options.env = env.get();
  options.filter_allocation = FilterAllocation::kNone;
  InternalKeyComparator icmp(BytewiseComparator());
  TableCache cache("/db", &options, &icmp);

  ASSERT_TRUE(env->CreateDir("/db").ok());
  const std::string good_name = TableFileName("/db", 7);
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile(good_name, &file).ok());
    SSTableBuilder builder(cache.TableOptionsForLevel(0), file.get());
    std::string ikey;
    AppendInternalKey(&ikey, "key", 1, ValueType::kTypeValue);
    builder.Add(ikey, "value");
    ASSERT_TRUE(builder.Finish().ok());
  }
  FileMetaData good;
  good.number = 7;
  ASSERT_TRUE(env->GetFileSize(good_name, &good.file_size).ok());

  // A table whose bytes cannot possibly parse, and one that does not exist.
  FileMetaData corrupt;
  corrupt.number = 8;
  corrupt.file_size = 64;
  ASSERT_TRUE(WriteStringToFile(env.get(), std::string(64, 'z'),
                                TableFileName("/db", 8))
                  .ok());
  FileMetaData missing;
  missing.number = 9;
  missing.file_size = 64;

  std::shared_ptr<SSTable> table;
  ASSERT_TRUE(cache.FindTable(good, &table).ok());
  ASSERT_NE(table, nullptr);
  std::weak_ptr<const SSTable> alive = table;

  EXPECT_FALSE(cache.FindTable(corrupt, &table).ok());
  EXPECT_EQ(table, nullptr) << "failed open retained the previous handle";

  ASSERT_TRUE(cache.FindTable(good, &table).ok());
  EXPECT_FALSE(cache.FindTable(missing, &table).ok());
  EXPECT_EQ(table, nullptr) << "failed open retained the previous handle";

  // With no stray pin left behind, evicting the good table drops the last
  // reference to its reader.
  cache.Evict(7);
  EXPECT_TRUE(alive.expired());
}

}  // namespace
}  // namespace lsmlab
