// Randomized model-based testing: the DB must behave exactly like a
// std::map under arbitrary interleavings of puts, deletes, gets, scans,
// flushes, compactions, snapshots, and reopens — across the whole design
// space (merge policies x filters x indexes x caches).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "cache/block_cache.h"
#include "core/db.h"
#include "filter/filter_policy.h"
#include "rangefilter/range_filter.h"
#include "storage/env.h"
#include "util/random.h"
#include "workload/keygen.h"

namespace lsmlab {
namespace {

struct Config {
  std::string name;
  MergePolicy policy = MergePolicy::kLeveling;
  FilterAllocation filters = FilterAllocation::kUniform;
  bool block_cache = false;
  bool hash_index = false;
  TableOptions::IndexType index_type =
      TableOptions::IndexType::kBinarySearch;
  bool range_filter = false;
  MemTable::Rep memtable = MemTable::Rep::kSkipList;
  bool memtable_hash = false;
  bool kv_separation = false;
};

class ModelCheckTest : public ::testing::TestWithParam<Config> {
 protected:
  void SetUp() override {
    env_.reset(NewMemEnv());
    const Config& cfg = GetParam();
    options_.env = env_.get();
    options_.merge_policy = cfg.policy;
    options_.size_ratio = 3;
    options_.write_buffer_size = 4 << 10;  // tiny: constant flushing
    options_.max_file_size = 4 << 10;
    options_.level0_compaction_trigger = 2;
    options_.filter_allocation = cfg.filters;
    options_.block_hash_index = cfg.hash_index;
    options_.index_type = cfg.index_type;
    options_.memtable_rep = cfg.memtable;
    options_.memtable_hash_index = cfg.memtable_hash;
    if (cfg.block_cache) {
      cache_ = std::make_unique<BlockCache>(64 << 10);  // tiny: evictions
      options_.block_cache = cache_.get();
      options_.prefetch_after_compaction = true;
      options_.prefetch_hotness_threshold = 1;
    }
    if (cfg.kv_separation) {
      options_.value_separation_threshold = 8;  // separate most values
      options_.max_vlog_file_bytes = 16 << 10;
    }
    if (cfg.range_filter) {
      range_filter_.reset(NewRosettaRangeFilter(18, 20));
      options_.range_filter_policy = range_filter_.get();
    }
    ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  }

  std::string RandomKey(Random* rng) {
    // Narrow domain so overwrites and deletes hit often.
    return EncodeKey(rng->Uniform(400));
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<BlockCache> cache_;
  std::unique_ptr<const RangeFilterPolicy> range_filter_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_P(ModelCheckTest, MatchesMapModel) {
  Random rng(0xfeed + std::hash<std::string>{}(GetParam().name));
  std::map<std::string, std::string> model;
  // One saved snapshot with its frozen model copy.
  const Snapshot* snapshot = nullptr;
  std::map<std::string, std::string> snapshot_model;

  const int kOps = 6000;
  for (int i = 0; i < kOps; i++) {
    const int action = static_cast<int>(rng.Uniform(100));
    if (action < 45) {  // put
      const std::string k = RandomKey(&rng);
      const std::string v = "v" + std::to_string(i);
      ASSERT_TRUE(db_->Put({}, k, v).ok());
      model[k] = v;
    } else if (action < 60) {  // delete
      const std::string k = RandomKey(&rng);
      ASSERT_TRUE(db_->Delete({}, k).ok());
      model.erase(k);
    } else if (action < 80) {  // get
      const std::string k = RandomKey(&rng);
      std::string value;
      Status s = db_->Get({}, k, &value);
      auto it = model.find(k);
      if (it == model.end()) {
        EXPECT_TRUE(s.IsNotFound()) << "key " << DecodeKey(k);
      } else {
        ASSERT_TRUE(s.ok()) << "key " << DecodeKey(k) << ": " << s.ToString();
        EXPECT_EQ(value, it->second);
      }
    } else if (action < 88) {  // scan
      uint64_t lo = rng.Uniform(400);
      uint64_t hi = lo + rng.Uniform(50);
      std::vector<std::pair<std::string, std::string>> results;
      ASSERT_TRUE(
          db_->Scan({}, EncodeKey(lo), EncodeKey(hi), 1000, &results).ok());
      auto it = model.lower_bound(EncodeKey(lo));
      size_t idx = 0;
      for (; it != model.end() && it->first <= EncodeKey(hi); ++it, ++idx) {
        ASSERT_LT(idx, results.size())
            << "scan missing key " << DecodeKey(it->first);
        EXPECT_EQ(results[idx].first, it->first);
        EXPECT_EQ(results[idx].second, it->second);
      }
      EXPECT_EQ(idx, results.size());
    } else if (action < 92) {  // flush or full compaction
      if (rng.OneIn(2)) {
        ASSERT_TRUE(db_->Flush().ok());
      } else {
        ASSERT_TRUE(db_->CompactAll().ok());
      }
    } else if (action < 95) {  // snapshot management
      if (snapshot == nullptr) {
        snapshot = db_->GetSnapshot();
        snapshot_model = model;
      } else {
        // Verify a random key at the snapshot, then release it.
        const std::string k = RandomKey(&rng);
        ReadOptions ropts;
        ropts.snapshot = snapshot;
        std::string value;
        Status s = db_->Get(ropts, k, &value);
        auto it = snapshot_model.find(k);
        if (it == snapshot_model.end()) {
          EXPECT_TRUE(s.IsNotFound());
        } else {
          ASSERT_TRUE(s.ok());
          EXPECT_EQ(value, it->second);
        }
        db_->ReleaseSnapshot(snapshot);
        snapshot = nullptr;
      }
    } else {  // reopen (crash-free restart)
      if (snapshot != nullptr) {
        db_->ReleaseSnapshot(snapshot);
        snapshot = nullptr;
      }
      db_.reset();
      ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
    }
  }
  if (snapshot != nullptr) {
    db_->ReleaseSnapshot(snapshot);
  }

  // Final full iteration must equal the model exactly.
  std::unique_ptr<Iterator> it(db_->NewIterator({}));
  auto mit = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++mit) {
    ASSERT_NE(mit, model.end()) << "extra key " << DecodeKey(it->key().ToString());
    EXPECT_EQ(it->key().ToString(), mit->first);
    EXPECT_EQ(it->value().ToString(), mit->second);
  }
  EXPECT_EQ(mit, model.end());
  EXPECT_TRUE(it->status().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ModelCheckTest,
    ::testing::Values(
        Config{.name = "leveling_default",
               .policy = MergePolicy::kLeveling},
        Config{.name = "tiering", .policy = MergePolicy::kTiering},
        Config{.name = "lazy", .policy = MergePolicy::kLazyLeveling},
        Config{.name = "monkey_cache",
               .policy = MergePolicy::kLeveling,
               .filters = FilterAllocation::kMonkey,
               .block_cache = true},
        Config{.name = "no_filters",
               .policy = MergePolicy::kTiering,
               .filters = FilterAllocation::kNone},
        Config{.name = "hash_index",
               .policy = MergePolicy::kLeveling,
               .hash_index = true},
        Config{.name = "learned_plr",
               .policy = MergePolicy::kLeveling,
               .index_type = TableOptions::IndexType::kLearnedPlr},
        Config{.name = "radix_spline",
               .policy = MergePolicy::kTiering,
               .index_type = TableOptions::IndexType::kRadixSpline},
        Config{.name = "range_filtered",
               .policy = MergePolicy::kLeveling,
               .range_filter = true},
        Config{.name = "vector_memtable",
               .policy = MergePolicy::kLeveling,
               .memtable = MemTable::Rep::kSortedVector,
               .memtable_hash = true},
        Config{.name = "kv_separation",
               .policy = MergePolicy::kLeveling,
               .kv_separation = true},
        Config{.name = "kitchen_sink",
               .policy = MergePolicy::kLazyLeveling,
               .filters = FilterAllocation::kMonkey,
               .block_cache = true,
               .hash_index = true,
               .range_filter = true,
               .memtable_hash = true,
               .kv_separation = true}),
    [](const ::testing::TestParamInfo<Config>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace lsmlab
