// Exhaustive single-byte corruption and truncation sweeps over every
// persistent artifact: SSTable, WAL, and MANIFEST. This is the
// deterministic, gcc-runnable half of the corruption contract (the
// libFuzzer harnesses in fuzz/ are the coverage-guided half): every
// possible single-byte flip and every truncation must surface as a clean
// Status — ok, NotFound, or Corruption — never a crash, hang, or
// out-of-bounds access.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/db.h"
#include "core/filename.h"
#include "format/sstable_builder.h"
#include "format/sstable_reader.h"
#include "storage/env.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace lsmlab {
namespace {

/// Statuses a reader of corrupt bytes is allowed to return. NotSupported
/// covers a flipped footer-version byte, which is indistinguishable from a
/// file written by a newer format revision.
::testing::AssertionResult CleanStatus(const Status& s) {
  if (s.ok() || s.IsNotFound() || s.IsCorruption() || s.IsNotSupported()) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "unexpected status class: " << s.ToString();
}

std::string TestKey(int i) {
  char key[16];
  std::snprintf(key, sizeof(key), "k%06d", i);
  return key;
}

// ---------------------------------------------------------------------------
// SSTable sweep
// ---------------------------------------------------------------------------

std::string BuildTableImage(Env* env, const TableOptions& opts, int entries) {
  std::unique_ptr<WritableFile> file;
  EXPECT_TRUE(env->NewWritableFile("/good", &file).ok());
  SSTableBuilder builder(opts, file.get());
  for (int i = 0; i < entries; i++) {
    builder.Add(TestKey(i), "value");
  }
  EXPECT_TRUE(builder.Finish().ok());
  std::string image;
  EXPECT_TRUE(ReadFileToString(env, "/good", &image).ok());
  return image;
}

/// Opens `image` as a table and exercises open/iterate/seek/get; every
/// status surfaced must be a clean one.
void ExerciseTable(Env* env, const TableOptions& opts,
                   const std::string& image, const std::string& context) {
  ASSERT_TRUE(WriteStringToFile(env, image, "/probe").ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env->NewRandomAccessFile("/probe", &file).ok());
  std::unique_ptr<SSTable> table;
  Status s =
      SSTable::Open(opts, std::move(file), image.size(), 1, nullptr, &table);
  EXPECT_TRUE(CleanStatus(s)) << context;
  if (!s.ok()) {
    return;
  }
  std::unique_ptr<Iterator> it(table->NewIterator());
  int steps = 0;
  for (it->SeekToFirst(); it->Valid() && steps < 5000; it->Next()) {
    it->key();
    it->value();
    steps++;
  }
  EXPECT_TRUE(CleanStatus(it->status())) << context;
  it->Seek(TestKey(17));
  EXPECT_TRUE(CleanStatus(it->status())) << context;
  EXPECT_TRUE(CleanStatus(table->InternalGet(
                  TestKey(17), TestKey(17), [](const Slice&, const Slice&) {})))
      << context;
}

TEST(CorruptionTest, SSTableEveryByteFlip) {
  std::unique_ptr<Env> env(NewMemEnv());
  TableOptions opts;
  opts.block_size = 256;
  const std::string good = BuildTableImage(env.get(), opts, 60);
  ASSERT_GT(good.size(), 0u);

  for (size_t pos = 0; pos < good.size(); pos++) {
    for (const unsigned char pattern : {0x01, 0x80, 0xff}) {
      std::string bad = good;
      bad[pos] = static_cast<char>(bad[pos] ^ pattern);
      ExerciseTable(env.get(), opts, bad,
                    "flip at offset " + std::to_string(pos));
    }
  }
}

TEST(CorruptionTest, SSTableEveryTruncation) {
  std::unique_ptr<Env> env(NewMemEnv());
  TableOptions opts;
  opts.block_size = 256;
  const std::string good = BuildTableImage(env.get(), opts, 60);

  for (size_t len = 0; len < good.size(); len++) {
    ExerciseTable(env.get(), opts, good.substr(0, len),
                  "truncation to " + std::to_string(len));
  }
}

// ---------------------------------------------------------------------------
// WAL sweep
// ---------------------------------------------------------------------------

std::string BuildWalImage(Env* env) {
  std::unique_ptr<WritableFile> file;
  EXPECT_TRUE(env->NewWritableFile("/goodwal", &file).ok());
  wal::Writer writer(file.get());
  EXPECT_TRUE(writer.AddRecord("first record").ok());
  EXPECT_TRUE(writer.AddRecord(std::string(500, 'x')).ok());
  EXPECT_TRUE(writer.AddRecord("last record").ok());
  std::string image;
  EXPECT_TRUE(ReadFileToString(env, "/goodwal", &image).ok());
  return image;
}

/// Reads every record out of `image`; corrupt bytes may drop records (the
/// reporter counts them) but must never crash or loop forever.
void ExerciseWal(Env* env, const std::string& image,
                 const std::string& context) {
  ASSERT_TRUE(WriteStringToFile(env, image, "/probewal").ok());
  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(env->NewSequentialFile("/probewal", &file).ok());
  struct CountingReporter : public wal::Reader::Reporter {
    int drops = 0;
    void Corruption(size_t, const Status&) override { drops++; }
  } reporter;
  wal::Reader reader(file.get(), &reporter);
  Slice record;
  std::string scratch;
  int records = 0;
  while (reader.ReadRecord(&record, &scratch)) {
    ASSERT_LT(records++, 1000) << "reader failed to terminate: " << context;
  }
  EXPECT_LE(records, 3) << context;
}

TEST(CorruptionTest, WalEveryByteFlip) {
  std::unique_ptr<Env> env(NewMemEnv());
  const std::string good = BuildWalImage(env.get());
  ASSERT_GT(good.size(), 0u);

  for (size_t pos = 0; pos < good.size(); pos++) {
    for (const unsigned char pattern : {0x01, 0x80, 0xff}) {
      std::string bad = good;
      bad[pos] = static_cast<char>(bad[pos] ^ pattern);
      ExerciseWal(env.get(), bad, "flip at offset " + std::to_string(pos));
    }
  }
}

TEST(CorruptionTest, WalEveryTruncation) {
  std::unique_ptr<Env> env(NewMemEnv());
  const std::string good = BuildWalImage(env.get());

  for (size_t len = 0; len < good.size(); len++) {
    ExerciseWal(env.get(), good.substr(0, len),
                "truncation to " + std::to_string(len));
  }
}

// ---------------------------------------------------------------------------
// MANIFEST sweep
// ---------------------------------------------------------------------------

/// Builds a small DB, then returns a snapshot of all its files plus the
/// manifest's name.
std::map<std::string, std::string> BuildDbSnapshot(Env* env,
                                                   const std::string& dbname,
                                                   std::string* manifest) {
  Options options;
  options.env = env;
  {
    std::unique_ptr<DB> db;
    EXPECT_TRUE(DB::Open(options, dbname, &db).ok());
    for (int i = 0; i < 20; i++) {
      EXPECT_TRUE(db->Put(WriteOptions(), TestKey(i), "value").ok());
    }
    EXPECT_TRUE(db->Flush().ok());
  }
  std::map<std::string, std::string> files;
  std::vector<std::string> children;
  EXPECT_TRUE(env->GetChildren(dbname, &children).ok());
  for (const std::string& child : children) {
    std::string contents;
    EXPECT_TRUE(
        ReadFileToString(env, dbname + "/" + child, &contents).ok());
    files[child] = contents;
    if (child.rfind("MANIFEST", 0) == 0) {
      *manifest = child;
    }
  }
  return files;
}

/// Restores `files` (with `manifest` replaced by `image`) into a fresh
/// directory and opens the DB there; recovery must return a clean status
/// and, when it succeeds, reads must return clean statuses too.
void ExerciseRecovery(const std::map<std::string, std::string>& files,
                      const std::string& manifest, const std::string& image,
                      int trial, const std::string& context) {
  std::unique_ptr<Env> env(NewMemEnv());
  const std::string dbname = "/sweep" + std::to_string(trial);
  ASSERT_TRUE(env->CreateDir(dbname).ok());
  for (const auto& [name, contents] : files) {
    const std::string& data = (name == manifest) ? image : contents;
    ASSERT_TRUE(WriteStringToFile(env.get(), data, dbname + "/" + name).ok());
  }
  Options options;
  options.env = env.get();
  options.create_if_missing = false;
  std::unique_ptr<DB> db;
  Status s = DB::Open(options, dbname, &db);
  EXPECT_TRUE(CleanStatus(s)) << context;
  if (!s.ok()) {
    return;
  }
  std::string value;
  EXPECT_TRUE(CleanStatus(db->Get(ReadOptions(), TestKey(7), &value)))
      << context;
  std::vector<std::pair<std::string, std::string>> results;
  EXPECT_TRUE(CleanStatus(
      db->Scan(ReadOptions(), TestKey(0), TestKey(19), 50, &results)))
      << context;
}

TEST(CorruptionTest, ManifestEveryByteFlip) {
  std::unique_ptr<Env> env(NewMemEnv());
  std::string manifest;
  const auto files = BuildDbSnapshot(env.get(), "/golden", &manifest);
  ASSERT_FALSE(manifest.empty());
  const std::string good = files.at(manifest);
  ASSERT_GT(good.size(), 0u);

  int trial = 0;
  for (size_t pos = 0; pos < good.size(); pos++) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0xff);
    ExerciseRecovery(files, manifest, bad, trial++,
                     "flip at offset " + std::to_string(pos));
  }
}

TEST(CorruptionTest, ManifestEveryTruncation) {
  std::unique_ptr<Env> env(NewMemEnv());
  std::string manifest;
  const auto files = BuildDbSnapshot(env.get(), "/golden", &manifest);
  ASSERT_FALSE(manifest.empty());
  const std::string good = files.at(manifest);

  int trial = 0;
  for (size_t len = 0; len < good.size(); len++) {
    ExerciseRecovery(files, manifest, good.substr(0, len), trial++,
                     "truncation to " + std::to_string(len));
  }
}

}  // namespace
}  // namespace lsmlab
