// Deterministic fuzzing of every parser that consumes untrusted bytes:
// corrupt storage must surface as Status::Corruption (or a safe
// always-maybe for filters) — never a crash, hang, or out-of-bounds read.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/version.h"
#include "core/write_batch.h"
#include "filter/filter_policy.h"
#include "format/block.h"
#include "format/format.h"
#include "format/sstable_reader.h"
#include "rangefilter/range_filter.h"
#include "storage/env.h"
#include "tests/fuzz_inputs.h"
#include "util/random.h"
#include "wal/log_reader.h"
#include "workload/keygen.h"

namespace lsmlab {
namespace {

TEST(FuzzTest, BlockParserNeverCrashes) {
  for (const std::string& input : FuzzInputs(1, 300)) {
    BlockContents contents;
    contents.owned = input;
    contents.data = Slice(contents.owned);
    contents.heap_allocated = true;
    Block block(std::move(contents));
    std::unique_ptr<Iterator> it(block.NewIterator(BytewiseComparator()));
    it->SeekToFirst();
    int steps = 0;
    while (it->Valid() && steps++ < 10000) {
      it->key();
      it->value();
      it->Next();
    }
    it->Seek("probe");
    uint32_t restart;
    block.HashLookup(0x12345678, &restart);
  }
}

TEST(FuzzTest, FooterParserNeverCrashes) {
  for (const std::string& input : FuzzInputs(2, 300)) {
    Footer footer;
    Slice in(input);
    footer.DecodeFrom(&in).IgnoreError();  // status only; must not crash
  }
}

TEST(FuzzTest, VersionEditParserNeverCrashes) {
  for (const std::string& input : FuzzInputs(3, 300)) {
    VersionEdit edit;
    edit.DecodeFrom(Slice(input)).IgnoreError();
  }
}

TEST(FuzzTest, WriteBatchIterateNeverCrashes) {
  struct Nop : public WriteBatch::Handler {
    void Put(const Slice&, const Slice&) override {}
    void Delete(const Slice&) override {}
  } nop;
  for (const std::string& input : FuzzInputs(4, 300)) {
    WriteBatch batch;
    batch.SetContentsFrom(Slice(input));
    batch.Iterate(&nop).IgnoreError();
  }
}

TEST(FuzzTest, WalReaderNeverCrashes) {
  std::unique_ptr<Env> env(NewMemEnv());
  int index = 0;
  for (const std::string& input : FuzzInputs(5, 100)) {
    const std::string fname = "/wal" + std::to_string(index++);
    ASSERT_TRUE(WriteStringToFile(env.get(), input, fname).ok());
    std::unique_ptr<SequentialFile> file;
    ASSERT_TRUE(env->NewSequentialFile(fname, &file).ok());
    wal::Reader reader(file.get(), nullptr);
    Slice record;
    std::string scratch;
    int records = 0;
    while (reader.ReadRecord(&record, &scratch) && records++ < 10000) {
    }
  }
}

TEST(FuzzTest, PointFiltersNeverRejectOnGarbage) {
  std::vector<std::unique_ptr<const FilterPolicy>> policies;
  policies.emplace_back(NewBloomFilterPolicy(10));
  policies.emplace_back(NewBlockedBloomFilterPolicy(10));
  policies.emplace_back(NewCuckooFilterPolicy(12));
  policies.emplace_back(NewRibbonFilterPolicy(10));
  policies.emplace_back(NewElasticBloomFilterPolicy(12, 4, 2));
  for (const auto& policy : policies) {
    for (const std::string& garbage : FuzzInputs(6, 60)) {
      // Garbage filters must never *incorrectly* reject: a structurally
      // invalid filter has to answer maybe. (A structurally valid-looking
      // one may legitimately reject, so only require no crash there; the
      // size checks make accidental validity astronomically rare.)
      policy->KeyMayMatch("some key", garbage);
      policy->HashMayMatch(0xdeadbeef12345678ull, garbage);
    }
  }
}

TEST(FuzzTest, RangeFiltersNeverCrashOnGarbage) {
  std::vector<std::unique_ptr<const RangeFilterPolicy>> policies;
  policies.emplace_back(NewPrefixBloomRangeFilter(6, 10));
  policies.emplace_back(NewSurfRangeFilter(8));
  policies.emplace_back(NewRosettaRangeFilter(20, 24));
  policies.emplace_back(NewSnarfRangeFilter(10));
  for (const auto& policy : policies) {
    for (const std::string& garbage : FuzzInputs(7, 60)) {
      policy->KeyMayMatch(EncodeKey(42), garbage);
      policy->RangeMayMatch(EncodeKey(10), EncodeKey(99), garbage);
    }
  }
}

TEST(FuzzTest, TableOpenRejectsGarbageFiles) {
  std::unique_ptr<Env> env(NewMemEnv());
  TableOptions opts;
  int index = 0;
  for (const std::string& input : FuzzInputs(8, 150)) {
    const std::string fname = "/t" + std::to_string(index++);
    ASSERT_TRUE(WriteStringToFile(env.get(), input, fname).ok());
    std::unique_ptr<RandomAccessFile> file;
    ASSERT_TRUE(env->NewRandomAccessFile(fname, &file).ok());
    std::unique_ptr<SSTable> table;
    Status s = SSTable::Open(opts, std::move(file), input.size(), 1,
                             nullptr, &table);
    // Random bytes are never a valid table (the footer magic + CRCs see
    // to that); opening must fail cleanly.
    EXPECT_FALSE(s.ok());
  }
}

TEST(FuzzTest, TableWithCorruptedTailFailsCleanly) {
  // Build one valid table, then corrupt every region of it byte by byte
  // (sampled) and verify opens/reads never crash.
  std::unique_ptr<Env> env(NewMemEnv());
  TableOptions opts;
  opts.block_size = 512;
  std::unique_ptr<WritableFile> wfile;
  ASSERT_TRUE(env->NewWritableFile("/good", &wfile).ok());
  uint64_t file_size;
  {
    SSTableBuilder builder(opts, wfile.get());
    for (int i = 0; i < 500; i++) {
      char key[16];
      std::snprintf(key, sizeof(key), "k%06d", i);
      builder.Add(key, "value");
    }
    ASSERT_TRUE(builder.Finish().ok());
    file_size = builder.FileSize();
  }
  std::string good;
  ASSERT_TRUE(ReadFileToString(env.get(), "/good", &good).ok());

  Random rng(9);
  for (int trial = 0; trial < 200; trial++) {
    std::string bad = good;
    const size_t pos = rng.Uniform(bad.size());
    bad[pos] ^= static_cast<char>(1 + rng.Uniform(255));
    ASSERT_TRUE(WriteStringToFile(env.get(), bad, "/bad").ok());
    std::unique_ptr<RandomAccessFile> file;
    ASSERT_TRUE(env->NewRandomAccessFile("/bad", &file).ok());
    std::unique_ptr<SSTable> table;
    Status s =
        SSTable::Open(opts, std::move(file), file_size, 1, nullptr, &table);
    if (!s.ok()) {
      continue;  // rejected at open: fine
    }
    // Openable: iterate and probe; errors must flow through status().
    std::unique_ptr<Iterator> it(table->NewIterator());
    int steps = 0;
    for (it->SeekToFirst(); it->Valid() && steps < 2000; it->Next()) {
      steps++;
    }
    std::string value;
    table->InternalGet("k000123", "k000123",
                       [](const Slice&, const Slice&) {}).IgnoreError();
  }
}

}  // namespace
}  // namespace lsmlab
