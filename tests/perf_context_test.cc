#include "obs/perf_context.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/db.h"
#include "storage/env.h"

namespace lsmlab {
namespace {

// Counter-verified read-path tests: every assertion below is an *exact*
// count derived from the tree shape (N overlapping runs, no block cache),
// so a regression that adds or drops an I/O shows up as an off-by-one here
// rather than as a silent perf change.
class PerfContextTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_.reset(NewMemEnv());
    options_.env = env_.get();
    options_.write_buffer_size = 64 << 10;
    options_.max_file_size = 1 << 20;
    // Keep every flush as its own level-0 run: probe cost per lookup is
    // then exactly (runs whose key range covers the key).
    options_.level0_compaction_trigger = 100;
    options_.filter_allocation = FilterAllocation::kNone;
  }

  void Open() { ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok()); }

  // Three overlapping level-0 runs, newest first at read time:
  //   run 3 (newest): a, q, z       -- "q" only here
  //   run 2        : a, z
  //   run 1 (oldest): a, m, z       -- "m" only here
  // Every run spans [a, z], so a probe for any key in that range must
  // consult each run until it finds a hit.
  void BuildThreeRuns() {
    ASSERT_TRUE(db_->Put({}, "a", "pad1").ok());
    ASSERT_TRUE(db_->Put({}, "m", "from_old").ok());
    ASSERT_TRUE(db_->Put({}, "z", "pad1").ok());
    ASSERT_TRUE(db_->Flush().ok());
    ASSERT_TRUE(db_->Put({}, "a", "pad2").ok());
    ASSERT_TRUE(db_->Put({}, "z", "pad2").ok());
    ASSERT_TRUE(db_->Flush().ok());
    ASSERT_TRUE(db_->Put({}, "a", "pad3").ok());
    ASSERT_TRUE(db_->Put({}, "q", "from_new").ok());
    ASSERT_TRUE(db_->Put({}, "z", "pad3").ok());
    ASSERT_TRUE(db_->Flush().ok());
  }

  // Opens every table (footer/index/filter loads happen once, at open) so
  // subsequent lookups cost exactly their data-block reads.
  void WarmUp() {
    std::string value;
    ASSERT_TRUE(db_->Get({}, "m", &value).ok());
  }

  PerfContext GetDelta(const std::string& key, std::string* value,
                       Status* status) {
    const PerfContext before = *GetPerfContext();
    *status = db_->Get({}, key, value);
    return GetPerfContext()->Delta(before);
  }

  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(PerfContextTest, MemtableHitCostsNoBlockReads) {
  Open();
  ASSERT_TRUE(db_->Put({}, "k", "v").ok());
  std::string value;
  Status s;
  const PerfContext d = GetDelta("k", &value, &s);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(value, "v");
  EXPECT_EQ(d.memtable_hit_count, 1u);
  EXPECT_EQ(d.block_read_count, 0u);
  EXPECT_EQ(d.index_seek_count, 0u);
  EXPECT_EQ(d.filter_probe_count, 0u);
}

TEST_F(PerfContextTest, PointLookupCostIsExactPerRun) {
  Open();
  BuildThreeRuns();
  WarmUp();

  std::string value;
  Status s;

  // "m" lives only in the oldest of three overlapping runs: the lookup
  // must pay one index seek and one data-block read in each run.
  PerfContext d = GetDelta("m", &value, &s);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(value, "from_old");
  EXPECT_EQ(d.index_seek_count, 3u);
  EXPECT_EQ(d.block_read_count, 3u);
  EXPECT_EQ(d.filter_probe_count, 0u);  // filters disabled
  EXPECT_EQ(d.memtable_hit_count, 0u);
  EXPECT_GT(d.block_read_bytes, 0u);

  // "q" lives in the newest run: found on the first probe, so exactly one
  // seek + one block read.
  d = GetDelta("q", &value, &s);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(value, "from_new");
  EXPECT_EQ(d.index_seek_count, 1u);
  EXPECT_EQ(d.block_read_count, 1u);

  // Absent key inside every run's range: all three runs pay, then miss.
  d = GetDelta("mm", &value, &s);
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(d.index_seek_count, 3u);
  EXPECT_EQ(d.block_read_count, 3u);

  // Key outside every file's [smallest, largest]: fence pointers reject
  // all runs without a single I/O.
  d = GetDelta("zz", &value, &s);
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(d.index_seek_count, 0u);
  EXPECT_EQ(d.block_read_count, 0u);
}

TEST_F(PerfContextTest, MultiGetCoalescesSameBlockKeysExactly) {
  Open();
  BuildThreeRuns();
  WarmUp();

  // "a" and "z" both live in the newest run, whose few entries fit one
  // data block. Two looped Gets each pay one block read there; the batch
  // must pay the index seek per key but fetch the shared block once.
  std::vector<std::string> values;
  std::vector<Status> statuses;
  const std::vector<Slice> batch = {Slice("a"), Slice("z")};

  const PerfContext before = *GetPerfContext();
  db_->MultiGet({}, std::span<const Slice>(batch), &values, &statuses);
  const PerfContext d = GetPerfContext()->Delta(before);

  ASSERT_TRUE(statuses[0].ok());
  ASSERT_TRUE(statuses[1].ok());
  EXPECT_EQ(values[0], "pad3");
  EXPECT_EQ(values[1], "pad3");
  EXPECT_EQ(d.multiget_keys, 2u);
  EXPECT_EQ(d.index_seek_count, 2u);       // one fence lookup per key
  EXPECT_EQ(d.block_read_count, 1u);       // the shared block, fetched once
  EXPECT_EQ(d.multiget_coalesced_block_hits, 1u);  // second key rode along
  EXPECT_EQ(d.memtable_hit_count, 0u);

  // The same two keys as looped Gets pay the block read twice: the saving
  // asserted above is exactly the coalesced hit.
  std::string value;
  Status s;
  const PerfContext d_a = GetDelta("a", &value, &s);
  ASSERT_TRUE(s.ok());
  const PerfContext d_z = GetDelta("z", &value, &s);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(d_a.block_read_count + d_z.block_read_count, 2u);
  EXPECT_EQ(d.block_read_count + d.multiget_coalesced_block_hits,
            d_a.block_read_count + d_z.block_read_count);
}

TEST_F(PerfContextTest, CompactedTreeLookupIsSingleProbe) {
  Open();
  BuildThreeRuns();
  ASSERT_TRUE(db_->CompactAll().ok());
  WarmUp();

  std::string value;
  Status s;
  const PerfContext d = GetDelta("m", &value, &s);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(value, "from_old");
  EXPECT_EQ(d.index_seek_count, 1u);
  EXPECT_EQ(d.block_read_count, 1u);
}

TEST_F(PerfContextTest, BloomProbesReconcileWithBlockReads) {
  options_.filter_allocation = FilterAllocation::kUniform;
  options_.filter_bits_per_key = 10.0;
  Open();
  BuildThreeRuns();
  WarmUp();

  std::string value;
  Status s;

  // Every covering run is probed through its filter. The hit run always
  // passes (no false negatives); a miss run passes only on a false
  // positive. So regardless of the filter's luck:
  //   block reads == index seeks == probes - negatives.
  PerfContext d = GetDelta("m", &value, &s);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(d.filter_probe_count, 3u);
  EXPECT_LE(d.filter_negative_count, 2u);
  EXPECT_EQ(d.block_read_count, 3u - d.filter_negative_count);
  EXPECT_EQ(d.index_seek_count, 3u - d.filter_negative_count);

  // Absent key: every probe may reject; the same reconciliation holds.
  d = GetDelta("mm", &value, &s);
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(d.filter_probe_count, 3u);
  EXPECT_EQ(d.block_read_count, 3u - d.filter_negative_count);
  EXPECT_EQ(d.index_seek_count, 3u - d.filter_negative_count);
}

TEST_F(PerfContextTest, WalCountersFollowWriteOptions) {
  Open();
  const PerfContext before = *GetPerfContext();
  ASSERT_TRUE(db_->Put({}, "k1", "v").ok());
  PerfContext d = GetPerfContext()->Delta(before);
  EXPECT_EQ(d.wal_append_count, 1u);
  EXPECT_EQ(d.wal_sync_count, 0u);

  WriteOptions sync_opts;
  sync_opts.sync = true;
  const PerfContext before2 = *GetPerfContext();
  ASSERT_TRUE(db_->Put(sync_opts, "k2", "v").ok());
  d = GetPerfContext()->Delta(before2);
  EXPECT_EQ(d.wal_append_count, 1u);
  EXPECT_EQ(d.wal_sync_count, 1u);
}

TEST_F(PerfContextTest, ScanDrivesMergeIterator) {
  Open();
  BuildThreeRuns();
  // A live memtable entry forces the merging iterator even if the runs
  // alone could degenerate.
  ASSERT_TRUE(db_->Put({}, "b", "live").ok());

  const PerfContext before = *GetPerfContext();
  std::vector<std::pair<std::string, std::string>> results;
  ASSERT_TRUE(db_->Scan({}, "a", "zz", 100, &results).ok());
  const PerfContext d = GetPerfContext()->Delta(before);

  ASSERT_EQ(results.size(), 5u);  // a, b, m, q, z
  EXPECT_GE(d.merge_iter_seek_count, 1u);
  // One heap advance per emitted key at minimum (shadowed versions cost
  // extra steps, never fewer).
  EXPECT_GE(d.merge_iter_step_count, results.size());
}

TEST_F(PerfContextTest, BlockReadsReconcileWithEnvIoStats) {
  Open();
  // Bulkier tree: three runs of 120 keys each with ~100-byte values, so
  // files span multiple 4 KiB blocks and lookups land in different blocks.
  const std::string pad(100, 'x');
  for (int run = 0; run < 3; run++) {
    for (int i = run; i < 360; i += 3) {
      char key[32];
      std::snprintf(key, sizeof(key), "key%06d", i);
      ASSERT_TRUE(db_->Put({}, key, pad).ok());
    }
    ASSERT_TRUE(db_->Flush().ok());
  }

  // Open every table and fault in footers/indexes before measuring.
  std::string value;
  for (int i = 0; i < 360; i++) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(db_->Get({}, key, &value).ok());
  }

  // From here on, the only Env reads a lookup performs are data-block
  // fetches, charged inside ReadBlock at exactly Read-call granularity:
  // the PerfContext deltas must equal the Env's own accounting.
  env_->io_stats()->Reset();
  const PerfContext before = *GetPerfContext();
  Status s;
  for (int i = 0; i < 360; i += 7) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(db_->Get({}, key, &value).ok());
    // Sprinkle in misses (in-range, so they really probe).
    std::string miss = std::string(key) + "!";
    s = db_->Get({}, miss, &value);
    EXPECT_TRUE(s.IsNotFound());
  }
  const PerfContext d = GetPerfContext()->Delta(before);

  const IoStats* io = env_->io_stats();
  EXPECT_GT(d.block_read_count, 0u);
  EXPECT_EQ(d.block_read_count, io->random_reads.load());
  EXPECT_EQ(d.block_read_bytes, io->bytes_read.load());
}

TEST_F(PerfContextTest, StatsPropertyReflectsTickers) {
  Open();
  ASSERT_TRUE(db_->Put({}, "k1", "v1").ok());
  ASSERT_TRUE(db_->Put({}, "k2", "v2").ok());
  std::string value;
  ASSERT_TRUE(db_->Get({}, "k1", &value).ok());
  EXPECT_TRUE(db_->Get({}, "nope", &value).IsNotFound());

  std::string stats;
  ASSERT_TRUE(db_->GetProperty("lsmlab.stats", &stats));
  EXPECT_NE(stats.find("ticker.gets=2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("ticker.gets.found=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("ticker.memtable.hits=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("ticker.writes=2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("ticker.wal.appends=2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("histogram.get_micros"), std::string::npos) << stats;

  std::string perf;
  ASSERT_TRUE(db_->GetProperty("lsmlab.perf-context", &perf));
  EXPECT_NE(perf.find("block_read_count="), std::string::npos) << perf;

  std::string io;
  ASSERT_TRUE(db_->GetProperty("lsmlab.io-stats", &io));
  EXPECT_FALSE(io.empty());

  EXPECT_FALSE(db_->GetProperty("lsmlab.unknown", &value));
}

TEST_F(PerfContextTest, DeltaAndResetAreFieldwise) {
  PerfContext before = *GetPerfContext();
  GetPerfContext()->block_read_count += 5;
  GetPerfContext()->filter_probe_count += 2;
  const PerfContext d = GetPerfContext()->Delta(before);
  EXPECT_EQ(d.block_read_count, 5u);
  EXPECT_EQ(d.filter_probe_count, 2u);
  EXPECT_EQ(d.index_seek_count, 0u);
  GetPerfContext()->Reset();
  EXPECT_EQ(GetPerfContext()->block_read_count, 0u);
  const std::string s = GetPerfContext()->ToString(true);
  EXPECT_NE(s.find("block_read_count=0"), std::string::npos);
}

}  // namespace
}  // namespace lsmlab
