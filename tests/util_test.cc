#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <string>
#include <vector>

#include "util/arena.h"
#include "util/bitvector.h"
#include "util/coding.h"
#include "util/comparator.h"
#include "util/crc32c.h"
#include "util/hash.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/slice.h"
#include "util/status.h"

namespace lsmlab {
namespace {

// ---------------------------------------------------------------- Slice --

TEST(SliceTest, Basics) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[1], 'e');
  EXPECT_FALSE(s.empty());
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "llo");
  s.remove_suffix(1);
  EXPECT_EQ(s.ToString(), "ll");
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(SliceTest, Compare) {
  EXPECT_LT(Slice("a").compare(Slice("b")), 0);
  EXPECT_GT(Slice("b").compare(Slice("a")), 0);
  EXPECT_EQ(Slice("ab").compare(Slice("ab")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);  // prefix sorts first
  EXPECT_TRUE(Slice("abc").starts_with(Slice("ab")));
  EXPECT_FALSE(Slice("ab").starts_with(Slice("abc")));
}

TEST(SliceTest, BinaryDataSafe) {
  const char raw[] = {'\0', '\xff', '\x01'};
  Slice s(raw, 3);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.ToString().size(), 3u);
}

// --------------------------------------------------------------- Status --

TEST(StatusTest, Classification) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
}

TEST(StatusTest, MessageFormatting) {
  EXPECT_EQ(Status::OK().ToString(), "OK");
  EXPECT_EQ(Status::NotFound("a", "b").ToString(), "NotFound: a: b");
}

// --------------------------------------------------------------- Coding --

TEST(CodingTest, Fixed) {
  std::string s;
  PutFixed32(&s, 0xdeadbeef);
  PutFixed64(&s, 0x0123456789abcdefull);
  EXPECT_EQ(DecodeFixed32(s.data()), 0xdeadbeefu);
  EXPECT_EQ(DecodeFixed64(s.data() + 4), 0x0123456789abcdefull);
}

TEST(CodingTest, Varint32Roundtrip) {
  std::string s;
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 32; i++) {
    values.push_back(1u << i);
    values.push_back((1u << i) - 1);
  }
  for (uint32_t v : values) {
    PutVarint32(&s, v);
  }
  Slice input(s);
  for (uint32_t expected : values) {
    uint32_t v;
    ASSERT_TRUE(GetVarint32(&input, &v));
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, Varint64Roundtrip) {
  std::string s;
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                  ~uint64_t{0}, uint64_t{1} << 63};
  for (uint64_t v : values) {
    PutVarint64(&s, v);
  }
  Slice input(s);
  for (uint64_t expected : values) {
    uint64_t v;
    ASSERT_TRUE(GetVarint64(&input, &v));
    EXPECT_EQ(v, expected);
  }
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : {uint64_t{0}, uint64_t{127}, uint64_t{128},
                     uint64_t{1} << 40, ~uint64_t{0}}) {
    std::string s;
    PutVarint64(&s, v);
    EXPECT_EQ(static_cast<int>(s.size()), VarintLength(v));
  }
}

TEST(CodingTest, TruncatedVarintFails) {
  std::string s;
  PutVarint32(&s, 1u << 28);
  s.resize(s.size() - 1);
  Slice input(s);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&input, &v));
}

TEST(CodingTest, OverlongVarintRejected) {
  // A varint32 is at most 5 bytes and a varint64 at most 10; an attacker
  // can pad with 0x80 continuation bytes forever, and the decoders must
  // stop at the width limit instead of running off into adjacent memory.
  const std::string overlong32(6, '\x80');
  uint32_t v32;
  EXPECT_EQ(GetVarint32Ptr(overlong32.data(),
                           overlong32.data() + overlong32.size(), &v32),
            nullptr);

  const std::string overlong64(11, '\x80');
  uint64_t v64;
  EXPECT_EQ(GetVarint64Ptr(overlong64.data(),
                           overlong64.data() + overlong64.size(), &v64),
            nullptr);

  // Slice-level wrappers reject the same encodings without consuming input.
  Slice in32(overlong32);
  EXPECT_FALSE(GetVarint32(&in32, &v32));
  Slice in64(overlong64);
  EXPECT_FALSE(GetVarint64(&in64, &v64));
}

TEST(CodingTest, VarintStraddlingLimitRejected) {
  // All continuation bytes up to `limit`: the decoder must notice the
  // encoding runs past the end of the buffer and return nullptr rather
  // than reading beyond limit.
  const std::string buf(16, '\x80');
  for (size_t limit = 1; limit <= 5; limit++) {
    uint32_t v32;
    EXPECT_EQ(GetVarint32Ptr(buf.data(), buf.data() + limit, &v32), nullptr)
        << "limit " << limit;
  }
  for (size_t limit = 1; limit <= 10; limit++) {
    uint64_t v64;
    EXPECT_EQ(GetVarint64Ptr(buf.data(), buf.data() + limit, &v64), nullptr)
        << "limit " << limit;
  }
  // Zero-length input: nothing to decode.
  uint32_t v32;
  EXPECT_EQ(GetVarint32Ptr(buf.data(), buf.data(), &v32), nullptr);
}

TEST(CodingTest, CheckedFixedDecoders) {
  std::string s;
  PutFixed32(&s, 0xdeadbeefu);
  PutFixed64(&s, 0x0123456789abcdefull);

  Slice input(s);
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetFixed32(&input, &v32));
  EXPECT_EQ(v32, 0xdeadbeefu);
  ASSERT_TRUE(GetFixed64(&input, &v64));
  EXPECT_EQ(v64, 0x0123456789abcdefull);
  EXPECT_TRUE(input.empty());

  // Too-short inputs fail without consuming anything.
  Slice short32("abc", 3);
  EXPECT_FALSE(GetFixed32(&short32, &v32));
  EXPECT_EQ(short32.size(), 3u);
  Slice short64("abcdefg", 7);
  EXPECT_FALSE(GetFixed64(&short64, &v64));
  EXPECT_EQ(short64.size(), 7u);
}

TEST(CodingTest, LengthPrefixedSlice) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice("hello"));
  PutLengthPrefixedSlice(&s, Slice(""));
  Slice input(s);
  Slice a, b;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &b));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
}

// --------------------------------------------------------------- CRC32C --

TEST(Crc32cTest, KnownValues) {
  // Standard test vector: 32 zero bytes.
  char zeros[32] = {0};
  EXPECT_EQ(crc32c::Value(zeros, sizeof(zeros)), 0x8a9136aau);
  // "123456789" -> 0xe3069283 (Castagnoli check value).
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xe3069283u);
}

TEST(Crc32cTest, ExtendEqualsWhole) {
  const std::string data = "hello world, this is lsmlab";
  const uint32_t whole = crc32c::Value(data.data(), data.size());
  uint32_t split = crc32c::Value(data.data(), 5);
  split = crc32c::Extend(split, data.data() + 5, data.size() - 5);
  EXPECT_EQ(whole, split);
}

TEST(Crc32cTest, MaskRoundtrip) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, ~0u}) {
    EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
    EXPECT_NE(crc32c::Mask(crc), crc);
  }
}

// --------------------------------------------------------------- Random --

TEST(RandomTest, DeterministicPerSeed) {
  Random a(42), b(42), c(43);
  EXPECT_EQ(a.Next64(), b.Next64());
  EXPECT_NE(a.Next64(), c.Next64());
}

TEST(RandomTest, UniformInRange) {
  Random rng(1);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random rng(2);
  for (int i = 0; i < 10000; i++) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// ----------------------------------------------------------------- Hash --

TEST(HashTest, DeterministicAndSeedSensitive) {
  EXPECT_EQ(Hash64("abc", 3), Hash64("abc", 3));
  EXPECT_NE(Hash64("abc", 3, 1), Hash64("abc", 3, 2));
  EXPECT_NE(Hash64("abc", 3), Hash64("abd", 3));
}

TEST(HashTest, AllLengthsCovered) {
  // Exercise every tail-handling branch.
  std::string data(100, 'x');
  std::set<uint64_t> hashes;
  for (size_t len = 0; len <= 64; len++) {
    hashes.insert(Hash64(data.data(), len));
  }
  EXPECT_EQ(hashes.size(), 65u);  // no collisions among lengths
}

// ---------------------------------------------------------------- Arena --

TEST(ArenaTest, AllocatesUsableMemory) {
  Arena arena;
  std::vector<std::pair<char*, size_t>> allocs;
  Random rng(3);
  for (int i = 0; i < 1000; i++) {
    const size_t n = 1 + rng.Uniform(300);
    char* p = arena.Allocate(n);
    memset(p, static_cast<int>(i & 0xff), n);
    allocs.emplace_back(p, n);
  }
  // All blocks retain their bytes (no overlap).
  for (size_t i = 0; i < allocs.size(); i++) {
    for (size_t j = 0; j < allocs[i].second; j++) {
      EXPECT_EQ(static_cast<unsigned char>(allocs[i].first[j]), i & 0xff);
    }
  }
  EXPECT_GT(arena.MemoryUsage(), 0u);
}

TEST(ArenaTest, AlignedAllocation) {
  Arena arena;
  for (int i = 0; i < 100; i++) {
    arena.Allocate(1);  // misalign the bump pointer
    char* p = arena.AllocateAligned(16);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
  }
}

// ------------------------------------------------------------ BitVector --

TEST(BitVectorTest, RankMatchesNaive) {
  Random rng(11);
  BitVector bv;
  std::vector<bool> naive;
  for (int i = 0; i < 5000; i++) {
    const bool bit = rng.OneIn(3);
    bv.PushBack(bit);
    naive.push_back(bit);
  }
  bv.BuildRank();
  size_t ones = 0;
  for (size_t i = 0; i <= naive.size(); i++) {
    EXPECT_EQ(bv.Rank1(i), ones) << "at " << i;
    EXPECT_EQ(bv.Rank0(i), i - ones);
    if (i < naive.size() && naive[i]) {
      ones++;
    }
  }
}

TEST(BitVectorTest, SelectInvertsRank) {
  Random rng(12);
  BitVector bv;
  for (int i = 0; i < 3000; i++) {
    bv.PushBack(rng.OneIn(5));
  }
  bv.BuildRank();
  for (size_t k = 0; k < bv.OneCount(); k++) {
    const size_t pos = bv.Select1(k);
    EXPECT_TRUE(bv.Get(pos));
    EXPECT_EQ(bv.Rank1(pos), k);
  }
  EXPECT_EQ(bv.Select1(bv.OneCount()), bv.size());
}

// ------------------------------------------------------------ Histogram --

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; i++) {
    h.Add(i);
  }
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_DOUBLE_EQ(h.Min(), 1);
  EXPECT_DOUBLE_EQ(h.Max(), 100);
  EXPECT_NEAR(h.Average(), 50.5, 0.01);
  EXPECT_NEAR(h.Median(), 50, 10);
  EXPECT_GE(h.Percentile(99), h.Percentile(50));
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  a.Add(1);
  b.Add(100);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_DOUBLE_EQ(a.Min(), 1);
  EXPECT_DOUBLE_EQ(a.Max(), 100);
}

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Min(), 0);
  EXPECT_DOUBLE_EQ(h.Max(), 0);
  EXPECT_DOUBLE_EQ(h.Average(), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 0);
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram a, empty;
  a.Add(3);
  a.Add(7);

  // Merging an empty histogram in must not disturb any statistic...
  a.Merge(empty);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_DOUBLE_EQ(a.Min(), 3);
  EXPECT_DOUBLE_EQ(a.Max(), 7);
  EXPECT_DOUBLE_EQ(a.Sum(), 10);

  // ...and merging into an empty one must adopt them wholesale.
  Histogram b;
  b.Merge(a);
  EXPECT_EQ(b.Count(), 2u);
  EXPECT_DOUBLE_EQ(b.Min(), 3);
  EXPECT_DOUBLE_EQ(b.Max(), 7);
  EXPECT_DOUBLE_EQ(b.Sum(), 10);
}

TEST(HistogramTest, SingleSamplePercentilesCollapse) {
  Histogram h;
  h.Add(42);
  // Every percentile of a one-sample distribution is that sample.
  EXPECT_DOUBLE_EQ(h.Percentile(0), 42);
  EXPECT_DOUBLE_EQ(h.Median(), 42);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 42);
  EXPECT_DOUBLE_EQ(h.Min(), 42);
  EXPECT_DOUBLE_EQ(h.Max(), 42);
  EXPECT_DOUBLE_EQ(h.Average(), 42);
}

TEST(HistogramTest, NegativeSamples) {
  Histogram h;
  h.Add(-10);
  h.Add(-5);
  EXPECT_DOUBLE_EQ(h.Min(), -10);
  EXPECT_DOUBLE_EQ(h.Max(), -5);
  EXPECT_DOUBLE_EQ(h.Average(), -7.5);
  // Percentiles stay within the observed range (both samples land in the
  // lowest bucket, so interpolation must not escape above max_ or below
  // min_).
  EXPECT_GE(h.Percentile(0), -10);
  EXPECT_LE(h.Percentile(100), -5);
  EXPECT_GE(h.Median(), h.Min());
  EXPECT_LE(h.Median(), h.Max());
}

TEST(HistogramTest, OverflowBucketPercentiles) {
  Histogram h;
  // Beyond the last finite bucket limit (~1e12): lands in the overflow
  // bucket, whose right edge is the observed max.
  h.Add(5e12);
  h.Add(8e12);
  EXPECT_DOUBLE_EQ(h.Max(), 8e12);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 8e12);
  const double p50 = h.Median();
  EXPECT_GE(p50, h.Min());
  EXPECT_LE(p50, h.Max());
  // Must be finite even though the bucket's nominal limit is +inf.
  EXPECT_LT(h.Percentile(99), std::numeric_limits<double>::infinity());
}

TEST(HistogramTest, MergedPercentilesCoverBothSources) {
  Histogram lo, hi;
  for (int i = 0; i < 100; i++) {
    lo.Add(1);
    hi.Add(1000);
  }
  lo.Merge(hi);
  EXPECT_EQ(lo.Count(), 200u);
  EXPECT_LE(lo.Percentile(25), 2.0);
  EXPECT_GE(lo.Percentile(75), 800.0);
}

// ----------------------------------------------------------- Comparator --

TEST(ComparatorTest, ShortestSeparator) {
  const Comparator* cmp = BytewiseComparator();
  std::string start = "abcdef";
  cmp->FindShortestSeparator(&start, Slice("abzzzz"));
  EXPECT_LT(Slice("abcdef").compare(Slice(start)), 0);
  EXPECT_LT(Slice(start).compare(Slice("abzzzz")), 0);
  EXPECT_LE(start.size(), 6u);
}

TEST(ComparatorTest, SeparatorNoopWhenPrefix) {
  const Comparator* cmp = BytewiseComparator();
  std::string start = "ab";
  cmp->FindShortestSeparator(&start, Slice("abc"));
  EXPECT_EQ(start, "ab");
}

TEST(ComparatorTest, ShortSuccessor) {
  const Comparator* cmp = BytewiseComparator();
  std::string key = "abc";
  cmp->FindShortSuccessor(&key);
  EXPECT_GT(Slice(key).compare(Slice("abc")), 0);
  std::string all_ff = "\xff\xff";
  cmp->FindShortSuccessor(&all_ff);
  EXPECT_EQ(all_ff, "\xff\xff");  // unchanged
}

}  // namespace
}  // namespace lsmlab
