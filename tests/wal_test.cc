#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "storage/env.h"
#include "util/random.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace lsmlab {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override { env_.reset(NewMemEnv()); }

  void WriteRecords(const std::vector<std::string>& records) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile("/wal", &file).ok());
    wal::Writer writer(file.get());
    for (const auto& r : records) {
      ASSERT_TRUE(writer.AddRecord(r).ok());
    }
    ASSERT_TRUE(file->Close().ok());
  }

  std::vector<std::string> ReadRecords(size_t* corruption_reports = nullptr) {
    struct Reporter : public wal::Reader::Reporter {
      size_t count = 0;
      void Corruption(size_t, const Status&) override { count++; }
    } reporter;
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(env_->NewSequentialFile("/wal", &file).ok());
    wal::Reader reader(file.get(), &reporter);
    std::vector<std::string> result;
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch)) {
      result.push_back(record.ToString());
    }
    if (corruption_reports != nullptr) {
      *corruption_reports = reporter.count;
    }
    return result;
  }

  void CorruptByte(size_t offset, char xor_mask) {
    std::string data;
    ASSERT_TRUE(ReadFileToString(env_.get(), "/wal", &data).ok());
    ASSERT_LT(offset, data.size());
    data[offset] ^= xor_mask;
    ASSERT_TRUE(WriteStringToFile(env_.get(), data, "/wal").ok());
  }

  void Truncate(size_t new_size) {
    std::string data;
    ASSERT_TRUE(ReadFileToString(env_.get(), "/wal", &data).ok());
    data.resize(new_size);
    ASSERT_TRUE(WriteStringToFile(env_.get(), data, "/wal").ok());
  }

  std::unique_ptr<Env> env_;
};

TEST_F(WalTest, Roundtrip) {
  WriteRecords({"one", "two", "three"});
  EXPECT_EQ(ReadRecords(), (std::vector<std::string>{"one", "two", "three"}));
}

TEST_F(WalTest, EmptyLog) {
  WriteRecords({});
  EXPECT_TRUE(ReadRecords().empty());
}

TEST_F(WalTest, EmptyRecordAllowed) {
  WriteRecords({"", "x", ""});
  EXPECT_EQ(ReadRecords(), (std::vector<std::string>{"", "x", ""}));
}

TEST_F(WalTest, LargeRecordsFragmentAcrossBlocks) {
  // Records larger than the 32 KiB block must be split and reassembled.
  Random rng(1);
  std::vector<std::string> records;
  for (size_t size : {100u, 40000u, 100000u, 32768u, 32761u}) {
    std::string r;
    r.reserve(size);
    while (r.size() < size) {
      r.push_back(static_cast<char>(rng.Next() & 0xff));
    }
    records.push_back(std::move(r));
  }
  WriteRecords(records);
  EXPECT_EQ(ReadRecords(), records);
}

TEST_F(WalTest, ManySmallRecordsCrossBlockBoundaries) {
  std::vector<std::string> records;
  for (int i = 0; i < 10000; i++) {
    records.push_back("record-" + std::to_string(i));
  }
  WriteRecords(records);
  EXPECT_EQ(ReadRecords(), records);
}

TEST_F(WalTest, TornTailIsDroppedSilently) {
  WriteRecords({"complete", std::string(50000, 'x')});
  // Chop the file mid-way through the second (fragmented) record.
  Truncate(40000);
  size_t corruption = 0;
  const auto records = ReadRecords(&corruption);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "complete");
}

TEST_F(WalTest, CorruptRecordSkippedAndReported) {
  WriteRecords({"first", "second", "third"});
  // Corrupt the payload of the second record: header(7)+5 for "first",
  // then the second header starts; flip a payload byte of record 2.
  CorruptByte(7 + 5 + 7 + 2, 0x40);
  size_t corruption = 0;
  const auto records = ReadRecords(&corruption);
  EXPECT_GE(corruption, 1u);
  // First record always survives; third may or may not be recovered
  // depending on resynchronization, but "second" must not appear corrupted.
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records[0], "first");
  for (const auto& r : records) {
    EXPECT_NE(r, std::string("seVond"));
  }
}

TEST_F(WalTest, BinaryPayloadSafe) {
  std::string payload;
  for (int i = 0; i < 256; i++) {
    payload.push_back(static_cast<char>(i));
  }
  WriteRecords({payload});
  const auto records = ReadRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], payload);
}

TEST_F(WalTest, ExactBlockBoundaryPadding) {
  // A record sized so the next header would not fit in the block tail.
  const size_t first = wal::kBlockSize - wal::kHeaderSize - 3;
  WriteRecords({std::string(first, 'a'), "next"});
  const auto records = ReadRecords();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].size(), first);
  EXPECT_EQ(records[1], "next");
}

}  // namespace
}  // namespace lsmlab
