// Shared corpus generator for the deterministic fuzz tests, the corruption
// sweep, and the libFuzzer seed-corpus tool (tools/make_corpus.cc). Keeping
// one definition guarantees the checked-in fuzz/corpora seeds exercise the
// same byte shapes the in-tree tests do.

#ifndef LSMLAB_TESTS_FUZZ_INPUTS_H_
#define LSMLAB_TESTS_FUZZ_INPUTS_H_

#include <string>
#include <vector>

#include "util/random.h"

namespace lsmlab {

/// Random byte strings: empty, short, block-sized, with long runs and
/// varint-looking patterns.
inline std::vector<std::string> FuzzInputs(uint64_t seed, int count) {
  Random rng(seed);
  std::vector<std::string> inputs;
  inputs.push_back("");
  inputs.push_back(std::string(1, '\x00'));
  inputs.push_back(std::string(1, '\xff'));
  inputs.push_back(std::string(4096, '\x00'));
  inputs.push_back(std::string(4096, '\xff'));
  for (int i = 0; i < count; i++) {
    const size_t len = rng.Uniform(2048) + 1;
    std::string s;
    s.reserve(len);
    for (size_t j = 0; j < len; j++) {
      // Mix uniform bytes with varint-continuation-heavy bytes.
      s.push_back(rng.OneIn(3)
                      ? static_cast<char>(0x80 | rng.Uniform(128))
                      : static_cast<char>(rng.Uniform(256)));
    }
    inputs.push_back(std::move(s));
  }
  return inputs;
}

}  // namespace lsmlab

#endif  // LSMLAB_TESTS_FUZZ_INPUTS_H_
