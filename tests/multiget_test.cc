// DB::MultiGet: the batched read path. Covers layering (memtable, frozen
// memtable, L0 runs, deeper levels), duplicate keys, deletes/overwrites,
// key-value separated values, snapshot consistency against a concurrent
// flusher (run under TSan in CI), per-key corruption confinement, and the
// batch's core I/O promise: strictly fewer logical block reads than the
// equivalent looped Gets when keys share blocks.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/block_cache.h"
#include "core/db.h"
#include "core/write_batch.h"
#include "obs/perf_context.h"
#include "storage/env.h"

namespace lsmlab {
namespace {

std::string TestKey(int i) {
  char key[16];
  std::snprintf(key, sizeof(key), "k%06d", i);
  return key;
}

class MultiGetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_.reset(NewMemEnv());
    options_.env = env_.get();
    options_.write_buffer_size = 64 << 10;
    options_.level0_compaction_trigger = 100;  // flushes stay distinct runs
    options_.filter_allocation = FilterAllocation::kNone;
  }

  void Open() { ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok()); }

  std::vector<Slice> MakeSlices(const std::vector<std::string>& keys) {
    std::vector<Slice> slices;
    slices.reserve(keys.size());
    for (const std::string& k : keys) {
      slices.emplace_back(k);
    }
    return slices;
  }

  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

// One batch spanning every storage layer at once: a deep compacted level,
// two distinct L0 runs, and the live memtable — plus absent keys in and out
// of range. Every slot must match what looped Get returns.
TEST_F(MultiGetTest, SpansMemtableL0AndDeepLevels) {
  Open();
  ASSERT_TRUE(db_->Put({}, "deep", "v_deep").ok());
  ASSERT_TRUE(db_->Put({}, "zz_pad", "pad").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  ASSERT_TRUE(db_->Put({}, "l0_a", "v_l0_a").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Put({}, "l0_b", "v_l0_b").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Put({}, "mem", "v_mem").ok());

  const std::vector<std::string> keys = {"deep",   "l0_a", "l0_b",
                                         "mem",    "gone", "zzzz_out_of_range"};
  std::vector<std::string> values;
  std::vector<Status> statuses;
  db_->MultiGet({}, MakeSlices(keys), &values, &statuses);
  ASSERT_EQ(values.size(), keys.size());
  ASSERT_EQ(statuses.size(), keys.size());

  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ(values[0], "v_deep");
  EXPECT_TRUE(statuses[1].ok());
  EXPECT_EQ(values[1], "v_l0_a");
  EXPECT_TRUE(statuses[2].ok());
  EXPECT_EQ(values[2], "v_l0_b");
  EXPECT_TRUE(statuses[3].ok());
  EXPECT_EQ(values[3], "v_mem");
  EXPECT_TRUE(statuses[4].IsNotFound());
  EXPECT_TRUE(statuses[5].IsNotFound());

  // Equivalence with the single-key path for every slot.
  for (size_t i = 0; i < keys.size(); i++) {
    std::string value;
    const Status s = db_->Get({}, keys[i], &value);
    EXPECT_EQ(s.ok(), statuses[i].ok()) << keys[i];
    EXPECT_EQ(s.IsNotFound(), statuses[i].IsNotFound()) << keys[i];
    if (s.ok()) {
      EXPECT_EQ(value, values[i]) << keys[i];
    }
  }
}

TEST_F(MultiGetTest, EmptyBatchIsANoOp) {
  Open();
  std::vector<std::string> values = {"stale"};
  std::vector<Status> statuses = {Status::Corruption("stale")};
  db_->MultiGet({}, std::span<const Slice>(), &values, &statuses);
  EXPECT_TRUE(values.empty());
  EXPECT_TRUE(statuses.empty());
}

// Duplicate keys are independent slots: each gets its own value/status.
TEST_F(MultiGetTest, DuplicateKeysResolvePerSlot) {
  Open();
  ASSERT_TRUE(db_->Put({}, "dup", "v1").ok());
  ASSERT_TRUE(db_->Flush().ok());

  const std::vector<std::string> keys = {"dup", "miss", "dup", "dup"};
  std::vector<std::string> values;
  std::vector<Status> statuses;
  db_->MultiGet({}, MakeSlices(keys), &values, &statuses);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_TRUE(statuses[1].IsNotFound());
  EXPECT_TRUE(statuses[2].ok());
  EXPECT_TRUE(statuses[3].ok());
  EXPECT_EQ(values[0], "v1");
  EXPECT_EQ(values[2], "v1");
  EXPECT_EQ(values[3], "v1");
}

// Tombstones and overwrites must resolve by recency across layers: a delete
// in a newer run shadows the value below it; a newer overwrite wins.
TEST_F(MultiGetTest, DeletesAndOverwritesAcrossRuns) {
  Open();
  ASSERT_TRUE(db_->Put({}, "kill_me", "old").ok());
  ASSERT_TRUE(db_->Put({}, "update_me", "old").ok());
  ASSERT_TRUE(db_->Put({}, "keep_me", "kept").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Delete({}, "kill_me").ok());
  ASSERT_TRUE(db_->Put({}, "update_me", "new").ok());
  ASSERT_TRUE(db_->Flush().ok());

  const std::vector<std::string> keys = {"kill_me", "update_me", "keep_me"};
  std::vector<std::string> values;
  std::vector<Status> statuses;
  db_->MultiGet({}, MakeSlices(keys), &values, &statuses);
  EXPECT_TRUE(statuses[0].IsNotFound());
  EXPECT_TRUE(statuses[1].ok());
  EXPECT_EQ(values[1], "new");
  EXPECT_TRUE(statuses[2].ok());
  EXPECT_EQ(values[2], "kept");
}

// An explicit snapshot pins the whole batch to one sequence: writes after
// the snapshot are invisible to every slot.
TEST_F(MultiGetTest, SnapshotPinsTheWholeBatch) {
  Open();
  ASSERT_TRUE(db_->Put({}, "a", "a1").ok());
  ASSERT_TRUE(db_->Put({}, "b", "b1").ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Put({}, "a", "a2").ok());
  ASSERT_TRUE(db_->Delete({}, "b").ok());
  ASSERT_TRUE(db_->Flush().ok());

  ReadOptions at_snap;
  at_snap.snapshot = snap;
  const std::vector<std::string> keys = {"a", "b"};
  std::vector<std::string> values;
  std::vector<Status> statuses;
  db_->MultiGet(at_snap, MakeSlices(keys), &values, &statuses);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ(values[0], "a1");
  EXPECT_TRUE(statuses[1].ok());
  EXPECT_EQ(values[1], "b1");

  db_->MultiGet({}, MakeSlices(keys), &values, &statuses);
  EXPECT_EQ(values[0], "a2");
  EXPECT_TRUE(statuses[1].IsNotFound());
  db_->ReleaseSnapshot(snap);
}

// Key-value separation: a batch mixing inline and separated values resolves
// both, and the separated ones go through the value log's batched reader.
TEST_F(MultiGetTest, ResolvesSeparatedValues) {
  options_.value_separation_threshold = 64;
  Open();
  const std::string big_a(200, 'A');
  const std::string big_b(300, 'B');
  ASSERT_TRUE(db_->Put({}, "big_a", big_a).ok());
  ASSERT_TRUE(db_->Put({}, "small", "tiny").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Put({}, "big_b", big_b).ok());
  ASSERT_TRUE(db_->Flush().ok());

  const std::vector<std::string> keys = {"big_a", "small", "big_b", "none"};
  std::vector<std::string> values;
  std::vector<Status> statuses;
  db_->MultiGet({}, MakeSlices(keys), &values, &statuses);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ(values[0], big_a);
  EXPECT_TRUE(statuses[1].ok());
  EXPECT_EQ(values[1], "tiny");
  EXPECT_TRUE(statuses[2].ok());
  EXPECT_EQ(values[2], big_b);
  EXPECT_TRUE(statuses[3].IsNotFound());

  const DBStats stats = db_->GetStats();
  EXPECT_EQ(stats.separated_reads, 2u);
  EXPECT_EQ(stats.multiget_keys, 4u);
  EXPECT_EQ(stats.multigets, 1u);
}

// The acceptance bar of the batch path: 64 cache-cold lookups with key
// locality must cost strictly fewer logical block reads through MultiGet
// than through looped Get, and the counters must reconcile exactly —
// every key either pays a block read or rides one another key paid for.
TEST_F(MultiGetTest, FewerBlockReadsThanLoopedGets) {
  Open();
  const std::string pad(100, 'x');
  for (int i = 0; i < 512; i++) {
    ASSERT_TRUE(db_->Put({}, TestKey(i), pad + TestKey(i)).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  // Fault in footers/indexes so both measurements pay data blocks only.
  std::string value;
  ASSERT_TRUE(db_->Get({}, TestKey(0), &value).ok());

  std::vector<std::string> keys;
  for (int i = 128; i < 192; i++) {
    keys.push_back(TestKey(i));  // 64 contiguous keys: strong block locality
  }

  // Looped Gets, cache-cold (no block cache configured): one data-block
  // read per key.
  const PerfContext before_loop = *GetPerfContext();
  for (const std::string& k : keys) {
    ASSERT_TRUE(db_->Get({}, k, &value).ok());
  }
  const PerfContext d_loop = GetPerfContext()->Delta(before_loop);
  EXPECT_EQ(d_loop.block_read_count, 64u);

  // One MultiGet over the same keys: each distinct block read exactly once.
  const PerfContext before_batch = *GetPerfContext();
  std::vector<std::string> values;
  std::vector<Status> statuses;
  db_->MultiGet({}, MakeSlices(keys), &values, &statuses);
  const PerfContext d_batch = GetPerfContext()->Delta(before_batch);

  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(statuses[i].ok()) << keys[i];
    EXPECT_EQ(values[i], pad + keys[i]);
  }
  EXPECT_LT(d_batch.block_read_count, d_loop.block_read_count);
  EXPECT_EQ(d_batch.multiget_keys, 64u);
  // Exact reconciliation: every key either paid a distinct block read or
  // coalesced onto one.
  EXPECT_EQ(d_batch.block_read_count + d_batch.multiget_coalesced_block_hits,
            64u);
}

// Cache-warm: a batch whose keys share blocks performs one block-cache
// lookup per distinct block, not one per key.
TEST_F(MultiGetTest, OneCacheLookupPerDistinctBlock) {
  BlockCache cache(8 << 20);
  options_.block_cache = &cache;
  Open();
  const std::string pad(100, 'x');
  for (int i = 0; i < 512; i++) {
    ASSERT_TRUE(db_->Put({}, TestKey(i), pad).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->CompactAll().ok());

  std::vector<std::string> keys;
  for (int i = 128; i < 192; i++) {
    keys.push_back(TestKey(i));
  }
  std::vector<std::string> values;
  std::vector<Status> statuses;
  db_->MultiGet({}, MakeSlices(keys), &values, &statuses);  // warm the cache

  const PerfContext before = *GetPerfContext();
  db_->MultiGet({}, MakeSlices(keys), &values, &statuses);
  const PerfContext d = GetPerfContext()->Delta(before);
  for (const Status& s : statuses) {
    ASSERT_TRUE(s.ok());
  }
  EXPECT_EQ(d.block_read_count, 0u);  // fully warm
  const uint64_t distinct_blocks = d.block_cache_hit_count;
  EXPECT_GT(distinct_blocks, 0u);
  EXPECT_LT(distinct_blocks, 64u);  // lookups coalesced, not per key
  EXPECT_EQ(distinct_blocks + d.multiget_coalesced_block_hits, 64u);
}

// Gate Env: blocks SSTable creation while closed, so a frozen memtable
// (imm_) stays frozen and a batch must read through it.
class GateEnv : public Env {
 public:
  explicit GateEnv(Env* base) : base_(base) {}

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    if (fname.size() > 4 && fname.compare(fname.size() - 4, 4, ".sst") == 0) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !closed_; });
    }
    return base_->NewWritableFile(fname, result);
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    return base_->NewRandomAccessFile(fname, result);
  }
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }

  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = false;
    }
    cv_.notify_all();
  }

 private:
  Env* const base_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
};

// A batch that must read from the frozen memtable: freeze mem_ behind a
// gated background flush, then MultiGet keys living only in imm_.
TEST_F(MultiGetTest, ReadsFromFrozenMemtable) {
  GateEnv gate(env_.get());
  options_.env = &gate;
  options_.background_compaction = true;
  // Must sit well above the arena's initial block (4 KiB), or an empty
  // memtable already looks full and the write path freezes forever.
  options_.write_buffer_size = 16 << 10;
  Open();

  ASSERT_TRUE(db_->Put({}, "old", "v_old").ok());
  ASSERT_TRUE(db_->Flush().ok());  // on disk while the gate is still open

  gate.CloseGate();
  // Overflow the write buffer: mem_ freezes into imm_, and the background
  // flush parks on the gate before it can write the table out.
  const std::string big(32 << 10, 'f');
  ASSERT_TRUE(db_->Put({}, "frozen", big).ok());
  ASSERT_TRUE(db_->Put({}, "trigger", "x").ok());  // lands in the fresh mem
  ASSERT_TRUE(db_->Put({}, "live", "v_live").ok());

  const int files_while_gated = db_->GetStats().total_files;

  const std::vector<std::string> keys = {"frozen", "live", "old", "none"};
  std::vector<std::string> values;
  std::vector<Status> statuses;
  db_->MultiGet({}, MakeSlices(keys), &values, &statuses);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ(values[0], big);
  EXPECT_TRUE(statuses[1].ok());
  EXPECT_EQ(values[1], "v_live");
  EXPECT_TRUE(statuses[2].ok());
  EXPECT_EQ(values[2], "v_old");
  EXPECT_TRUE(statuses[3].IsNotFound());

  gate.OpenGate();
  ASSERT_TRUE(db_->Flush().ok());
  // The gated answer really came from memory: no table file landed between
  // the freeze and the gate opening.
  EXPECT_GE(db_->GetStats().total_files, files_while_gated);
  db_->MultiGet({}, MakeSlices(keys), &values, &statuses);
  EXPECT_EQ(values[0], big);
  EXPECT_EQ(values[1], "v_live");
  db_.reset();
}

// Snapshot consistency against a concurrent flusher (TSan leg): a writer
// commits {a=i, b=i} atomically per round and flushes periodically; every
// batch must observe a == b, since the whole batch pins one sequence.
TEST_F(MultiGetTest, ConsistentUnderConcurrentFlush) {
  options_.write_buffer_size = 16 << 10;
  options_.level0_compaction_trigger = 4;
  Open();
  ASSERT_TRUE(db_->Put({}, "a", "0").ok());
  ASSERT_TRUE(db_->Put({}, "b", "0").ok());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    const std::string pad(512, 'p');  // forces real flush pressure
    for (int i = 1; i <= 200; i++) {
      WriteBatch batch;
      const std::string v = std::to_string(i);
      batch.Put("a", v);
      batch.Put("b", v);
      batch.Put("pad" + v, pad);
      ASSERT_TRUE(db_->Write({}, &batch).ok());
      if (i % 20 == 0) {
        ASSERT_TRUE(db_->Flush().ok());
      }
    }
    stop.store(true);
  });

  const std::vector<std::string> keys = {"a", "b"};
  std::vector<std::string> values;
  std::vector<Status> statuses;
  int batches = 0;
  // do-while: a fast writer can finish all 200 rounds before this thread
  // first checks stop, so guarantee at least one batch runs.
  do {
    db_->MultiGet({}, MakeSlices(keys), &values, &statuses);
    ASSERT_TRUE(statuses[0].ok());
    ASSERT_TRUE(statuses[1].ok());
    ASSERT_EQ(values[0], values[1]) << "batch saw a torn write";
    batches++;
  } while (!stop.load());
  writer.join();
  EXPECT_GT(batches, 0);
  db_->MultiGet({}, MakeSlices(keys), &values, &statuses);
  EXPECT_EQ(values[0], "200");
  EXPECT_EQ(values[1], "200");
}

// Corruption confinement: flip a byte inside the data block holding one
// key's value. In the same batch, that key (and only keys sharing its
// block) must fail with Corruption while keys in other blocks resolve.
TEST_F(MultiGetTest, CorruptBlockFailsOnlyItsOwnKeys) {
  Open();
  const std::string pad(100, 'x');
  // Unique, searchable payload for the victim key, far from the others.
  const std::string victim_value(120, 'V');
  for (int i = 0; i < 512; i++) {
    ASSERT_TRUE(db_->Put({}, TestKey(i), i == 256 ? victim_value : pad).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  db_.reset();  // close so the corrupted image is re-read from scratch

  // Find the table file and flip one byte inside the victim's value.
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren("/db", &children).ok());
  std::string table_name;
  for (const std::string& child : children) {
    if (child.size() > 4 &&
        child.compare(child.size() - 4, 4, ".sst") == 0) {
      std::string image;
      ASSERT_TRUE(ReadFileToString(env_.get(), "/db/" + child, &image).ok());
      const size_t pos = image.find(victim_value);
      if (pos == std::string::npos) {
        continue;
      }
      image[pos + 10] ^= 0x01;
      ASSERT_TRUE(WriteStringToFile(env_.get(), image, "/db/" + child).ok());
      table_name = child;
      break;
    }
  }
  ASSERT_FALSE(table_name.empty()) << "victim value not found in any table";

  Open();
  // First and last key live far from the corrupt block; the victim and its
  // immediate neighbor share it.
  const std::vector<std::string> keys = {TestKey(0), TestKey(256),
                                         TestKey(511)};
  std::vector<std::string> values;
  std::vector<Status> statuses;
  db_->MultiGet({}, MakeSlices(keys), &values, &statuses);
  EXPECT_TRUE(statuses[0].ok()) << statuses[0].ToString();
  EXPECT_EQ(values[0], pad);
  EXPECT_TRUE(statuses[1].IsCorruption()) << statuses[1].ToString();
  EXPECT_TRUE(statuses[2].ok()) << statuses[2].ToString();
  EXPECT_EQ(values[2], pad);
}

// Ticker-level reconciliation across a mixed batch: multiget.keys counts
// submissions, memtable hits and runs probed split the rest, and the gets
// tickers stay untouched (MultiGet is not N Gets).
TEST_F(MultiGetTest, TickersReconcile) {
  Open();
  ASSERT_TRUE(db_->Put({}, "table_key", "tv").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Put({}, "mem_key", "mv").ok());

  const std::vector<std::string> keys = {"mem_key", "table_key", "absent"};
  std::vector<std::string> values;
  std::vector<Status> statuses;
  db_->MultiGet({}, MakeSlices(keys), &values, &statuses);

  const DBStats stats = db_->GetStats();
  EXPECT_EQ(stats.multigets, 1u);
  EXPECT_EQ(stats.multiget_keys, 3u);
  EXPECT_EQ(stats.memtable_hits, 1u);  // "mem_key"
  // "table_key" probed the run and hit; "absent" is out of the run's range
  // ("absent" < "table_key"): fence pointers reject it without a probe.
  EXPECT_EQ(stats.runs_probed, 1u);
  EXPECT_EQ(stats.gets, 0u);
  EXPECT_EQ(stats.gets_found, 0u);

  std::string dump;
  ASSERT_TRUE(db_->GetProperty("lsmlab.stats", &dump));
  EXPECT_NE(dump.find("ticker.multiget.batches=1"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("ticker.multiget.keys=3"), std::string::npos) << dump;
  EXPECT_NE(dump.find("histogram.multiget_micros"), std::string::npos)
      << dump;
}

// With Bloom filters on, a batch of absent keys is pruned before any block
// I/O: multiget.filter_pruned reconciles exactly with filter negatives.
TEST_F(MultiGetTest, FilterFirstPruning) {
  options_.filter_allocation = FilterAllocation::kUniform;
  options_.filter_bits_per_key = 10.0;
  Open();
  for (int i = 0; i < 128; i++) {
    ASSERT_TRUE(db_->Put({}, TestKey(i), "v").ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  // Warm: open the table outside the measured window.
  std::string value;
  ASSERT_TRUE(db_->Get({}, TestKey(0), &value).ok());

  std::vector<std::string> keys;
  for (int i = 0; i < 32; i++) {
    keys.push_back(TestKey(i) + "!");  // in-range, absent
  }
  const PerfContext before = *GetPerfContext();
  std::vector<std::string> values;
  std::vector<Status> statuses;
  db_->MultiGet({}, MakeSlices(keys), &values, &statuses);
  const PerfContext d = GetPerfContext()->Delta(before);

  for (const Status& s : statuses) {
    EXPECT_TRUE(s.IsNotFound());
  }
  // Every filter rejection was recorded as a pruned batch probe, and only
  // false positives (probes - negatives) can have cost block reads.
  EXPECT_EQ(d.multiget_filter_pruned, d.filter_negative_count);
  EXPECT_GT(d.multiget_filter_pruned, 0u);
  EXPECT_LE(d.block_read_count, d.filter_probe_count - d.filter_negative_count);
}

}  // namespace
}  // namespace lsmlab
