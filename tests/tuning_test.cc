#include <gtest/gtest.h>

#include <cmath>

#include "tuning/cost_model.h"
#include "tuning/endure.h"
#include "tuning/monkey.h"
#include "tuning/navigator.h"

namespace lsmlab {
namespace {

constexpr double kLn2Sq = 0.4804530139182014;

// ----------------------------------------------------------------- Monkey --

TEST(MonkeyTest, ShallowLevelsGetMoreBits) {
  auto bits = MonkeyBitsPerLevel(10, 5, 10);
  ASSERT_EQ(bits.size(), 5u);
  for (size_t i = 1; i < bits.size(); i++) {
    EXPECT_GE(bits[i - 1], bits[i]) << "level " << i;
  }
  EXPECT_GT(bits[0], 10);  // shallow levels exceed the average
}

TEST(MonkeyTest, PreservesTotalMemoryBudget) {
  const double avg = 8;
  const int levels = 6;
  const int t = 4;
  auto bits = MonkeyBitsPerLevel(avg, levels, t);
  double total_keys = 0, total_bits = 0;
  for (int i = 0; i < levels; i++) {
    const double n = std::pow(t, i);
    total_keys += n;
    total_bits += n * bits[i];
  }
  EXPECT_NEAR(total_bits / total_keys, avg, 0.05);
}

TEST(MonkeyTest, BeatsUniformInExpectedLookupCost) {
  // The Monkey headline claim (E4): at equal memory, the optimal
  // allocation has a lower sum of false-positive rates.
  for (int t : {4, 10}) {
    for (double avg : {5.0, 10.0}) {
      const int levels = 5;
      auto monkey_bits = MonkeyBitsPerLevel(avg, levels, t);
      std::vector<double> uniform_bits(levels, avg);
      const double monkey_cost =
          ExpectedZeroResultLookupIos(monkey_bits, 1);
      const double uniform_cost =
          ExpectedZeroResultLookupIos(uniform_bits, 1);
      EXPECT_LT(monkey_cost, uniform_cost)
          << "T=" << t << " avg=" << avg;
    }
  }
}

TEST(MonkeyTest, ZeroBudgetMeansNoFilters) {
  auto bits = MonkeyBitsPerLevel(0, 4, 10);
  for (double b : bits) {
    EXPECT_EQ(b, 0);
  }
}

TEST(MonkeyTest, DeepestLevelMayDropFilterUnderTightBudget) {
  // A very tight budget (~0.25 bits/key average) makes filtering the huge
  // bottom level not worth it; Monkey turns it off entirely.
  auto bits = MonkeyBitsPerLevel(0.25, 6, 10);
  EXPECT_EQ(bits.back(), 0);   // FPR 1 at the huge bottom level
  EXPECT_GT(bits.front(), 0);  // but the small levels stay filtered
}

// ------------------------------------------------------------- Cost model --

LsmDesignSpec BaseSpec(LsmDesignSpec::Policy policy, int t = 10) {
  LsmDesignSpec spec;
  spec.policy = policy;
  spec.size_ratio = t;
  spec.num_entries = 100'000'000;
  spec.entry_bytes = 64;
  spec.buffer_bytes = 8 << 20;
  spec.filter_bits_per_key = 10;
  return spec;
}

TEST(CostModelTest, TieringWritesCheaperLeveling) {
  LsmCostModel level(BaseSpec(LsmDesignSpec::Policy::kLeveling));
  LsmCostModel tier(BaseSpec(LsmDesignSpec::Policy::kTiering));
  EXPECT_LT(tier.WriteCost(), level.WriteCost());
}

TEST(CostModelTest, TieringReadsCostlier) {
  LsmCostModel level(BaseSpec(LsmDesignSpec::Policy::kLeveling));
  LsmCostModel tier(BaseSpec(LsmDesignSpec::Policy::kTiering));
  EXPECT_GT(tier.ZeroResultPointLookup(), level.ZeroResultPointLookup());
  EXPECT_GT(tier.ShortScanCost(), level.ShortScanCost());
}

TEST(CostModelTest, LazyLevelingSitsBetween) {
  LsmCostModel level(BaseSpec(LsmDesignSpec::Policy::kLeveling));
  LsmCostModel tier(BaseSpec(LsmDesignSpec::Policy::kTiering));
  LsmCostModel lazy(BaseSpec(LsmDesignSpec::Policy::kLazyLeveling));
  EXPECT_LT(lazy.WriteCost(), level.WriteCost());
  EXPECT_LE(lazy.ZeroResultPointLookup() * 0.99,
            tier.ZeroResultPointLookup());
  // Lazy leveling's point reads are close to leveling (dominated by the
  // single-run largest level), far below tiering.
  EXPECT_LT(lazy.ZeroResultPointLookup(),
            tier.ZeroResultPointLookup());
}

TEST(CostModelTest, GrowingTLowersLookupRaisesWritesUnderLeveling) {
  double last_read = 1e9;
  double last_write = 0;
  for (int t : {2, 4, 8, 16}) {
    LsmCostModel m(BaseSpec(LsmDesignSpec::Policy::kLeveling, t));
    EXPECT_LE(m.levels(), last_read);  // fewer levels as T grows
    last_read = m.levels();
    (void)last_write;
  }
}

TEST(CostModelTest, SpaceAmpDirections) {
  LsmCostModel level(BaseSpec(LsmDesignSpec::Policy::kLeveling));
  LsmCostModel tier(BaseSpec(LsmDesignSpec::Policy::kTiering));
  EXPECT_LT(level.SpaceAmplification(), 1.0);
  EXPECT_GT(tier.SpaceAmplification(), 1.0);
}

TEST(CostModelTest, MoreFilterBitsCutLookupCost) {
  auto spec = BaseSpec(LsmDesignSpec::Policy::kLeveling);
  spec.filter_bits_per_key = 5;
  LsmCostModel few(spec);
  spec.filter_bits_per_key = 15;
  LsmCostModel many(spec);
  EXPECT_GT(few.ZeroResultPointLookup(), many.ZeroResultPointLookup());
  EXPECT_NEAR(many.ZeroResultPointLookup(),
              std::exp(-15 * kLn2Sq) * many.levels(), 1e-9);
}

// -------------------------------------------------------------- Navigator --

TEST(NavigatorTest, WriteHeavyWorkloadPicksTiering) {
  // Scans are kept at zero: even 1% short scans pay O(T*L) runs under
  // tiering and flip the optimum back to leveling.
  WorkloadMix mix;
  mix.writes = 0.95;
  mix.zero_result_lookups = 0.03;
  mix.existing_lookups = 0.02;
  mix.short_scans = 0.0;
  auto candidates = NavigateDesignSpace(10'000'000, 64, 64 << 20, mix);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates.front().spec.policy,
            LsmDesignSpec::Policy::kTiering)
      << candidates.front().Describe();
}

TEST(NavigatorTest, ReadHeavyWorkloadAvoidsTiering) {
  WorkloadMix mix;
  mix.writes = 0.02;
  mix.zero_result_lookups = 0.3;
  mix.existing_lookups = 0.38;
  mix.short_scans = 0.3;
  auto candidates = NavigateDesignSpace(10'000'000, 64, 64 << 20, mix);
  ASSERT_FALSE(candidates.empty());
  EXPECT_NE(candidates.front().spec.policy, LsmDesignSpec::Policy::kTiering)
      << candidates.front().Describe();
}

TEST(NavigatorTest, CandidatesSortedByCost) {
  WorkloadMix mix;
  auto candidates = NavigateDesignSpace(1'000'000, 64, 16 << 20, mix);
  for (size_t i = 1; i < candidates.size(); i++) {
    EXPECT_LE(candidates[i - 1].cost, candidates[i].cost);
  }
}

TEST(NavigatorTest, MemorySplitHasInteriorOptimum) {
  // E9: neither "all memory to buffer" nor "all to filters" is optimal for
  // a mixed workload.
  WorkloadMix mix;  // balanced default
  auto candidates = NavigateDesignSpace(10'000'000, 64, 32 << 20, mix);
  const auto& best = candidates.front().spec;
  const double frac = static_cast<double>(best.buffer_bytes) / (32 << 20);
  EXPECT_GT(frac, 0.01);
  EXPECT_LT(frac, 0.99);
}

// ----------------------------------------------------------------- Endure --

TEST(EndureTest, KlDivergenceBasics) {
  WorkloadMix w;
  EXPECT_NEAR(WorkloadKlDivergence(w, w), 0.0, 1e-12);
  WorkloadMix skewed;
  skewed.writes = 0.97;
  skewed.zero_result_lookups = 0.01;
  skewed.existing_lookups = 0.01;
  skewed.short_scans = 0.01;
  EXPECT_GT(WorkloadKlDivergence(skewed, w), 0.5);
}

TEST(EndureTest, NeighborhoodSamplesRespectRho) {
  WorkloadMix w;
  const double rho = 0.2;
  auto samples = SampleWorkloadNeighborhood(w, rho, 200);
  EXPECT_GT(samples.size(), 50u);
  for (const auto& s : samples) {
    EXPECT_LE(WorkloadKlDivergence(s, w), rho + 1e-9);
  }
}

TEST(EndureTest, RobustTuningBoundsWorstCase) {
  WorkloadMix expected;
  expected.writes = 0.9;  // expect write-heavy...
  expected.zero_result_lookups = 0.04;
  expected.existing_lookups = 0.03;
  expected.short_scans = 0.03;
  auto result = RobustTune(10'000'000, 64, 64 << 20, expected, /*rho=*/0.6);
  // The robust design can never have a worse worst-case than the nominal
  // one (it minimizes exactly that objective over the same candidates).
  EXPECT_LE(result.robust_worst_cost, result.nominal_worst_cost + 1e-9);
}

TEST(EndureTest, RobustCostsMoreAtExpectedWorkload) {
  // Robustness is not free: at the expected workload the robust design is
  // at best as good as the nominal optimum.
  WorkloadMix expected;
  expected.writes = 0.9;
  expected.zero_result_lookups = 0.04;
  expected.existing_lookups = 0.03;
  expected.short_scans = 0.03;
  auto result = RobustTune(10'000'000, 64, 64 << 20, expected, /*rho=*/0.6);
  const double nominal_at_expected =
      WorkloadCost(result.nominal.spec, expected);
  const double robust_at_expected =
      WorkloadCost(result.robust.spec, expected);
  EXPECT_GE(robust_at_expected, nominal_at_expected - 1e-9);
}

}  // namespace
}  // namespace lsmlab
