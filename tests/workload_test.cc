#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "workload/keygen.h"
#include "workload/workload.h"

namespace lsmlab {
namespace {

TEST(KeygenTest, EncodePreservesOrder) {
  uint64_t values[] = {0, 1, 255, 256, 1 << 20, uint64_t{1} << 40,
                       ~uint64_t{0}};
  for (size_t i = 1; i < std::size(values); i++) {
    EXPECT_LT(EncodeKey(values[i - 1]), EncodeKey(values[i]));
  }
}

TEST(KeygenTest, EncodeDecodeRoundtrip) {
  for (uint64_t v : {uint64_t{0}, uint64_t{42}, uint64_t{1} << 33,
                     ~uint64_t{0}}) {
    EXPECT_EQ(DecodeKey(EncodeKey(v)), v);
  }
}

TEST(KeygenTest, UniformCoversDomain) {
  auto gen = NewUniformGenerator(100, 1);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; i++) {
    const uint64_t k = gen->Next();
    ASSERT_LT(k, 100u);
    counts[k]++;
  }
  EXPECT_EQ(counts.size(), 100u);
  // Rough uniformity: all counts within 3x of expectation.
  for (const auto& [k, c] : counts) {
    EXPECT_GT(c, 1000 / 3);
    EXPECT_LT(c, 3000);
  }
}

TEST(KeygenTest, SequentialIsMonotonic) {
  auto gen = NewSequentialGenerator(10);
  for (uint64_t i = 10; i < 100; i++) {
    EXPECT_EQ(gen->Next(), i);
  }
}

TEST(KeygenTest, ZipfianIsSkewed) {
  auto gen = NewZipfianGenerator(100000, 0.99, 1, /*scramble=*/false);
  std::map<uint64_t, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; i++) {
    counts[gen->Next()]++;
  }
  // Rank 0 should receive a few percent of all accesses; the hottest 10
  // ranks a large share.
  int hot10 = 0;
  for (uint64_t r = 0; r < 10; r++) {
    hot10 += counts.count(r) ? counts[r] : 0;
  }
  EXPECT_GT(static_cast<double>(counts[0]) / n, 0.02);
  EXPECT_GT(static_cast<double>(hot10) / n, 0.1);
  // But the tail is still touched.
  EXPECT_GT(counts.size(), 10000u);
}

TEST(KeygenTest, ZipfianScrambleSpreadsHotKeys) {
  auto gen = NewZipfianGenerator(100000, 0.99, 1, /*scramble=*/true);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; i++) {
    counts[gen->Next()]++;
  }
  // The hottest key should NOT be key 0 with overwhelming probability.
  auto hottest = std::max_element(
      counts.begin(), counts.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  EXPECT_GT(hottest->second, 1000);
}

TEST(KeygenTest, SortedUniqueKeysProperties) {
  auto keys = SortedUniqueKeys(10000, uint64_t{1} << 40, 9);
  EXPECT_EQ(keys.size(), 10000u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

TEST(WorkloadTest, MixFractionsRespected) {
  WorkloadSpec spec;
  spec.put_fraction = 0.6;
  spec.get_fraction = 0.3;
  spec.scan_fraction = 0.1;
  spec.delete_fraction = 0;
  auto ops = GenerateWorkload(spec, 50000);
  int puts = 0, gets = 0, scans = 0;
  for (const auto& op : ops) {
    switch (op.kind) {
      case Op::Kind::kPut:
        puts++;
        break;
      case Op::Kind::kGet:
        gets++;
        break;
      case Op::Kind::kScan:
        scans++;
        break;
      default:
        break;
    }
  }
  EXPECT_NEAR(puts / 50000.0, 0.6, 0.02);
  EXPECT_NEAR(gets / 50000.0, 0.3, 0.02);
  EXPECT_NEAR(scans / 50000.0, 0.1, 0.02);
}

TEST(WorkloadTest, ValuesAreDeterministicPerKey) {
  const std::string key = EncodeKey(123);
  EXPECT_EQ(ValueForKey(key, 64), ValueForKey(key, 64));
  EXPECT_NE(ValueForKey(key, 64), ValueForKey(EncodeKey(124), 64));
  EXPECT_EQ(ValueForKey(key, 100).size(), 100u);
}

TEST(WorkloadTest, ScansCarryEndKeys) {
  WorkloadSpec spec;
  spec.put_fraction = 0;
  spec.get_fraction = 0;
  spec.scan_fraction = 1;
  spec.scan_width = 50;
  auto ops = GenerateWorkload(spec, 100);
  for (const auto& op : ops) {
    ASSERT_EQ(op.kind, Op::Kind::kScan);
    EXPECT_LE(op.key, op.end_key);
  }
}

TEST(WorkloadTest, DeterministicPerSeed) {
  WorkloadSpec spec;
  spec.seed = 7;
  auto a = GenerateWorkload(spec, 100);
  auto b = GenerateWorkload(spec, 100);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i++) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(static_cast<int>(a[i].kind), static_cast<int>(b[i].kind));
  }
}

}  // namespace
}  // namespace lsmlab
