#include "core/db.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "cache/block_cache.h"
#include "filter/filter_policy.h"
#include "rangefilter/range_filter.h"
#include "storage/env.h"
#include "util/random.h"

namespace lsmlab {
namespace {

std::string Key(uint64_t i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%012llu",
                static_cast<unsigned long long>(i));
  return buf;
}

class DBTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_.reset(NewMemEnv());
    options_.env = env_.get();
    options_.write_buffer_size = 16 << 10;
    options_.max_file_size = 16 << 10;
  }

  void Open() {
    ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  }

  void Reopen() {
    db_.reset();
    Open();
  }

  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(DBTest, PutGet) {
  Open();
  ASSERT_TRUE(db_->Put({}, "hello", "world").ok());
  std::string value;
  ASSERT_TRUE(db_->Get({}, "hello", &value).ok());
  EXPECT_EQ(value, "world");
  EXPECT_TRUE(db_->Get({}, "missing", &value).IsNotFound());
}

TEST_F(DBTest, OverwriteReturnsLatest) {
  Open();
  ASSERT_TRUE(db_->Put({}, "k", "v1").ok());
  ASSERT_TRUE(db_->Put({}, "k", "v2").ok());
  std::string value;
  ASSERT_TRUE(db_->Get({}, "k", &value).ok());
  EXPECT_EQ(value, "v2");
}

TEST_F(DBTest, DeleteHidesKey) {
  Open();
  ASSERT_TRUE(db_->Put({}, "k", "v").ok());
  ASSERT_TRUE(db_->Delete({}, "k").ok());
  std::string value;
  EXPECT_TRUE(db_->Get({}, "k", &value).IsNotFound());
}

TEST_F(DBTest, GetAcrossFlush) {
  Open();
  ASSERT_TRUE(db_->Put({}, "a", "1").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Put({}, "b", "2").ok());
  std::string value;
  ASSERT_TRUE(db_->Get({}, "a", &value).ok());
  EXPECT_EQ(value, "1");
  ASSERT_TRUE(db_->Get({}, "b", &value).ok());
  EXPECT_EQ(value, "2");
}

TEST_F(DBTest, OverwriteAcrossFlushes) {
  Open();
  ASSERT_TRUE(db_->Put({}, "k", "old").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Put({}, "k", "new").ok());
  ASSERT_TRUE(db_->Flush().ok());
  std::string value;
  ASSERT_TRUE(db_->Get({}, "k", &value).ok());
  EXPECT_EQ(value, "new");
}

TEST_F(DBTest, DeleteAcrossFlush) {
  Open();
  ASSERT_TRUE(db_->Put({}, "k", "v").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Delete({}, "k").ok());
  ASSERT_TRUE(db_->Flush().ok());
  std::string value;
  EXPECT_TRUE(db_->Get({}, "k", &value).IsNotFound());
}

TEST_F(DBTest, ManyKeysThroughCompactions) {
  Open();
  const int n = 5000;
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), "value" + std::to_string(i)).ok());
  }
  std::string value;
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(db_->Get({}, Key(i), &value).ok()) << "missing " << Key(i);
    EXPECT_EQ(value, "value" + std::to_string(i));
  }
  DBStats stats = db_->GetStats();
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_GT(stats.flushes, 0u);
}

TEST_F(DBTest, IteratorSeesAllLiveKeys) {
  Open();
  const int n = 1000;
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), std::to_string(i)).ok());
  }
  // Delete every third key.
  for (int i = 0; i < n; i += 3) {
    ASSERT_TRUE(db_->Delete({}, Key(i)).ok());
  }
  std::unique_ptr<Iterator> it(db_->NewIterator({}));
  int count = 0;
  int expect = 1;  // first non-deleted
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    EXPECT_EQ(it->key().ToString(), Key(expect));
    EXPECT_EQ(it->value().ToString(), std::to_string(expect));
    count++;
    expect += (expect % 3 == 2) ? 2 : 1;  // skip multiples of 3
  }
  EXPECT_TRUE(it->status().ok());
  EXPECT_EQ(count, n - (n + 2) / 3);
}

TEST_F(DBTest, IteratorBackward) {
  Open();
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), std::to_string(i)).ok());
  }
  std::unique_ptr<Iterator> it(db_->NewIterator({}));
  int expect = 99;
  for (it->SeekToLast(); it->Valid(); it->Prev()) {
    EXPECT_EQ(it->key().ToString(), Key(expect));
    expect--;
  }
  EXPECT_EQ(expect, -1);
}

TEST_F(DBTest, IteratorMixedDirections) {
  Open();
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), std::to_string(i)).ok());
  }
  std::unique_ptr<Iterator> it(db_->NewIterator({}));
  it->Seek(Key(5));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), Key(5));
  it->Prev();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), Key(4));
  it->Next();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), Key(5));
}

TEST_F(DBTest, ScanRange) {
  Open();
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), std::to_string(i)).ok());
  }
  std::vector<std::pair<std::string, std::string>> results;
  ASSERT_TRUE(db_->Scan({}, Key(100), Key(109), 1000, &results).ok());
  ASSERT_EQ(results.size(), 10u);
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(results[i].first, Key(100 + i));
  }
}

TEST_F(DBTest, ScanHonorsLimit) {
  Open();
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), "v").ok());
  }
  std::vector<std::pair<std::string, std::string>> results;
  ASSERT_TRUE(db_->Scan({}, Key(0), Key(99), 7, &results).ok());
  EXPECT_EQ(results.size(), 7u);
}

TEST_F(DBTest, SnapshotIsolation) {
  Open();
  ASSERT_TRUE(db_->Put({}, "k", "v1").ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Put({}, "k", "v2").ok());
  ASSERT_TRUE(db_->Delete({}, "other").ok());

  ReadOptions ropts;
  ropts.snapshot = snap;
  std::string value;
  ASSERT_TRUE(db_->Get(ropts, "k", &value).ok());
  EXPECT_EQ(value, "v1");
  ASSERT_TRUE(db_->Get({}, "k", &value).ok());
  EXPECT_EQ(value, "v2");
  db_->ReleaseSnapshot(snap);
}

TEST_F(DBTest, SnapshotSurvivesFlushAndCompaction) {
  Open();
  ASSERT_TRUE(db_->Put({}, "k", "v1").ok());
  const Snapshot* snap = db_->GetSnapshot();
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), "x").ok());
  }
  ASSERT_TRUE(db_->Put({}, "k", "v2").ok());
  ASSERT_TRUE(db_->CompactAll().ok());

  ReadOptions ropts;
  ropts.snapshot = snap;
  std::string value;
  ASSERT_TRUE(db_->Get(ropts, "k", &value).ok());
  EXPECT_EQ(value, "v1");
  db_->ReleaseSnapshot(snap);
}

TEST_F(DBTest, RecoverFromWal) {
  Open();
  ASSERT_TRUE(db_->Put({}, "persist", "me").ok());
  Reopen();
  std::string value;
  ASSERT_TRUE(db_->Get({}, "persist", &value).ok());
  EXPECT_EQ(value, "me");
}

TEST_F(DBTest, RecoverAfterFlushesAndCompactions) {
  Open();
  const int n = 3000;
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), std::to_string(i * 7)).ok());
  }
  Reopen();
  std::string value;
  for (int i = 0; i < n; i += 37) {
    ASSERT_TRUE(db_->Get({}, Key(i), &value).ok()) << Key(i);
    EXPECT_EQ(value, std::to_string(i * 7));
  }
}

TEST_F(DBTest, WriteBatchAtomicity) {
  Open();
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  ASSERT_TRUE(db_->Write({}, &batch).ok());
  std::string value;
  EXPECT_TRUE(db_->Get({}, "a", &value).IsNotFound());
  ASSERT_TRUE(db_->Get({}, "b", &value).ok());
  EXPECT_EQ(value, "2");
}

TEST_F(DBTest, EmptyDBIterator) {
  Open();
  std::unique_ptr<Iterator> it(db_->NewIterator({}));
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  it->SeekToLast();
  EXPECT_FALSE(it->Valid());
}

TEST_F(DBTest, StatsTrackReads) {
  Open();
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), "v").ok());
  }
  std::string value;
  for (int i = 0; i < 100; i++) {
    db_->Get({}, Key(i), &value).IgnoreError();
  }
  DBStats stats = db_->GetStats();
  EXPECT_EQ(stats.gets, 100u);
  EXPECT_EQ(stats.gets_found, 100u);
}

TEST_F(DBTest, ZeroResultLookupsUseFilters) {
  options_.filter_bits_per_key = 10;
  Open();
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), "v").ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  std::string value;
  for (int i = 0; i < 500; i++) {
    // In-range but absent keys: fence pruning cannot reject them, so the
    // skip must come from the Bloom filter.
    EXPECT_TRUE(db_->Get({}, Key(i) + "x", &value).IsNotFound());
  }
  DBStats stats = db_->GetStats();
  // With 10 bits/key nearly every run probe should be filtered.
  EXPECT_GT(stats.filter_skips, 0u);
}

// --- Design-space configurations exercised through the same API ----------

class DBShapeTest : public DBTest,
                    public ::testing::WithParamInterface<MergePolicy> {};

TEST_P(DBShapeTest, ReadYourWrites) {
  options_.merge_policy = GetParam();
  options_.size_ratio = 3;
  Open();
  const int n = 4000;
  Random rng(7);
  std::map<std::string, std::string> model;
  for (int i = 0; i < n; i++) {
    const std::string k = Key(rng.Uniform(700));
    if (rng.OneIn(10)) {
      model.erase(k);
      ASSERT_TRUE(db_->Delete({}, k).ok());
    } else {
      const std::string v = "v" + std::to_string(i);
      model[k] = v;
      ASSERT_TRUE(db_->Put({}, k, v).ok());
    }
  }
  // Validate against the model both by Get and by full iteration.
  std::string value;
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(db_->Get({}, k, &value).ok()) << k;
    EXPECT_EQ(value, v);
  }
  std::unique_ptr<Iterator> it(db_->NewIterator({}));
  auto mit = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(it->key().ToString(), mit->first);
    EXPECT_EQ(it->value().ToString(), mit->second);
  }
  EXPECT_EQ(mit, model.end());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, DBShapeTest,
                         ::testing::Values(MergePolicy::kLeveling,
                                           MergePolicy::kTiering,
                                           MergePolicy::kLazyLeveling));

TEST_F(DBTest, FifoDropsOldData) {
  options_.merge_policy = MergePolicy::kFifo;
  options_.fifo_size_budget = 64 << 10;
  Open();
  for (int i = 0; i < 20000; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), "0123456789abcdef").ok());
  }
  DBStats stats = db_->GetStats();
  EXPECT_LE(stats.total_bytes, (64u << 10) + (32u << 10));
  // Newest keys survive, oldest are gone.
  std::string value;
  EXPECT_TRUE(db_->Get({}, Key(19999), &value).ok());
  EXPECT_TRUE(db_->Get({}, Key(0), &value).IsNotFound());
}

TEST_F(DBTest, BlockCacheServesRepeatReads) {
  BlockCache cache(1 << 20);
  options_.block_cache = &cache;
  Open();
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), "v").ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  std::string value;
  ASSERT_TRUE(db_->Get({}, Key(42), &value).ok());
  const auto before = cache.GetStats();
  ASSERT_TRUE(db_->Get({}, Key(42), &value).ok());
  const auto after = cache.GetStats();
  EXPECT_GT(after.hits, before.hits);
}

TEST_F(DBTest, MonkeyAllocationWorks) {
  options_.filter_allocation = FilterAllocation::kMonkey;
  Open();
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), "v").ok());
  }
  std::string value;
  for (int i = 0; i < 3000; i += 17) {
    ASSERT_TRUE(db_->Get({}, Key(i), &value).ok());
  }
}

TEST_F(DBTest, RangeFilterSkipsEmptyRanges) {
  std::unique_ptr<const RangeFilterPolicy> rf(NewSurfRangeFilter(8));
  options_.range_filter_policy = rf.get();
  Open();
  // Two key clusters with a wide gap.
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(db_->Put({}, "a" + Key(i), "v").ok());
    ASSERT_TRUE(db_->Put({}, "z" + Key(i), "v").ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  std::vector<std::pair<std::string, std::string>> results;
  ASSERT_TRUE(db_->Scan({}, "m0", "m9", 100, &results).ok());
  EXPECT_TRUE(results.empty());
  DBStats stats = db_->GetStats();
  EXPECT_GT(stats.range_filter_skips, 0u);
  // And a real range still returns data.
  ASSERT_TRUE(db_->Scan({}, "a" + Key(0), "a" + Key(9), 100, &results).ok());
  EXPECT_EQ(results.size(), 10u);
}

TEST_F(DBTest, PartitionedFiltersSkipRuns) {
  options_.partition_filters = true;
  options_.filter_bits_per_key = 10;
  BlockCache cache(1 << 20);
  options_.block_cache = &cache;
  Open();
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  std::string value;
  for (int i = 0; i < 3000; i += 11) {
    ASSERT_TRUE(db_->Get({}, Key(i), &value).ok()) << Key(i);
    EXPECT_EQ(value, std::to_string(i));
  }
  for (int i = 0; i < 500; i++) {
    EXPECT_TRUE(db_->Get({}, Key(i) + "x", &value).IsNotFound());
  }
  DBStats stats = db_->GetStats();
  EXPECT_GT(stats.filter_skips, 300u);
}

TEST_F(DBTest, HashIndexGetPath) {
  options_.block_hash_index = true;
  Open();
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  std::string value;
  for (int i = 0; i < 2000; i += 13) {
    ASSERT_TRUE(db_->Get({}, Key(i), &value).ok());
    EXPECT_EQ(value, std::to_string(i));
  }
  DBStats stats = db_->GetStats();
  EXPECT_GT(stats.hash_index_hits + stats.hash_index_absent, 0u);
}

TEST_F(DBTest, LearnedIndexGetPath) {
  options_.index_type = TableOptions::IndexType::kLearnedPlr;
  Open();
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  std::string value;
  for (int i = 0; i < 3000; i += 7) {
    ASSERT_TRUE(db_->Get({}, Key(i), &value).ok()) << Key(i);
    EXPECT_EQ(value, std::to_string(i));
  }
}

TEST_F(DBTest, PacedCompactionStaysCorrect) {
  options_.max_compactions_per_write = 1;
  options_.file_picker = CompactionFilePicker::kMinOverlap;
  Open();
  const int n = 4000;
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i % 800), std::to_string(i)).ok());
  }
  std::string value;
  for (int i = n - 800; i < n; i++) {
    ASSERT_TRUE(db_->Get({}, Key(i % 800), &value).ok());
    EXPECT_EQ(value, std::to_string(i));
  }
  // Draining compactions afterwards restores the tight shape.
  ASSERT_TRUE(db_->CompactAll().ok());
  EXPECT_EQ(db_->GetStats().total_runs, 1);
}

TEST_F(DBTest, GetWithoutFiltersStillCorrect) {
  options_.filter_bits_per_key = 10;
  Open();
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i), std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  ReadOptions no_filter;
  no_filter.use_filter = false;
  std::string value;
  for (int i = 0; i < 2000; i += 31) {
    ASSERT_TRUE(db_->Get(no_filter, Key(i), &value).ok());
    EXPECT_EQ(value, std::to_string(i));
  }
  EXPECT_TRUE(db_->Get(no_filter, Key(1) + "x", &value).IsNotFound());
  DBStats stats = db_->GetStats();
  EXPECT_EQ(stats.filter_skips, 0u);
}

TEST_F(DBTest, SeekCompactionMergesHotlyMissedFiles) {
  options_.filter_allocation = FilterAllocation::kNone;
  options_.seek_compaction_threshold = 50;
  options_.level0_compaction_trigger = 100;  // size triggers out of the way
  Open();
  // Two overlapping level-0 runs: every absent-key probe pays for both.
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i * 2), "a").ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db_->Put({}, Key(i * 2 + 1), "b").ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_EQ(db_->GetStats().runs_per_level[0], 2);

  // A storm of zero-result lookups inside the key range.
  std::string value;
  for (int i = 0; i < 100; i++) {
    EXPECT_TRUE(db_->Get({}, Key(i * 4) + "x", &value).IsNotFound());
  }
  // The next write gives the policy a chance to act on the signal.
  ASSERT_TRUE(db_->Put({}, "trigger", "t").ok());

  DBStats stats = db_->GetStats();
  EXPECT_EQ(stats.runs_per_level[0], 0) << db_->DebugShape();
  // And the same lookups now cost half the probes.
  DBStats before = db_->GetStats();
  for (int i = 0; i < 100; i++) {
    EXPECT_TRUE(db_->Get({}, Key(i * 4) + "x", &value).IsNotFound());
  }
  DBStats after = db_->GetStats();
  EXPECT_LE(after.runs_probed - before.runs_probed, 100u);
}

TEST_F(DBTest, SeekCompactionDisabledByDefault) {
  options_.filter_allocation = FilterAllocation::kNone;
  options_.level0_compaction_trigger = 100;
  Open();
  for (int round = 0; round < 2; round++) {
    for (int i = 0; i < 100; i++) {
      ASSERT_TRUE(db_->Put({}, Key(i * 2 + round), "v").ok());
    }
    ASSERT_TRUE(db_->Flush().ok());
  }
  std::string value;
  for (int i = 0; i < 500; i++) {
    db_->Get({}, Key(i * 4) + "x", &value).IgnoreError();
  }
  ASSERT_TRUE(db_->Put({}, "trigger", "t").ok());
  EXPECT_EQ(db_->GetStats().runs_per_level[0], 2);  // shape untouched
}

TEST_F(DBTest, DestroyRemovesEverything) {
  Open();
  ASSERT_TRUE(db_->Put({}, "k", "v").ok());
  db_.reset();
  ASSERT_TRUE(DestroyDB(options_, "/db").ok());
  options_.create_if_missing = false;
  std::unique_ptr<DB> db2;
  EXPECT_FALSE(DB::Open(options_, "/db", &db2).ok());
}

}  // namespace
}  // namespace lsmlab
