// Runtime half of the no-blocking-I/O-under-engine-lock invariant
// (tools/check_lock_io.py is the static half): every Env implementation
// reports blocking operations through the IoStats chokepoints, which
// abort in debug builds when a ranked no-io mutex is held. These tests
// pin down that the guard (a) fires, (b) honours the audited-exception
// escape hatch, and (c) ignores locks that are allowed to serialize I/O.

#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "storage/env.h"
#include "util/mutex.h"

namespace lsmlab {
namespace {

class LockIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_.reset(NewMemEnv());
    ASSERT_TRUE(env_->NewWritableFile("f", &file_).ok());
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<WritableFile> file_;
};

#ifndef NDEBUG

TEST_F(LockIoTest, GuardFiresOnAppendUnderEngineMutex) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu(LockRank::kDbMu);
  EXPECT_DEATH(
      {
        MutexLock lock(&mu);
        file_->Append(Slice("payload")).IgnoreError();
      },
      "blocking I/O \\(append\\) while holding engine mutex DBImpl::mu_");
}

TEST_F(LockIoTest, GuardFiresOnSyncUnderEngineMutex) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu(LockRank::kDbMu);
  EXPECT_DEATH(
      {
        MutexLock lock(&mu);
        file_->Sync().IgnoreError();
      },
      "blocking I/O \\(sync\\) while holding engine mutex DBImpl::mu_");
}

TEST_F(LockIoTest, GuardFiresOnReadUnderEngineMutex) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_TRUE(file_->Append(Slice("payload")).ok());
  std::unique_ptr<RandomAccessFile> reader;
  ASSERT_TRUE(env_->NewRandomAccessFile("f", &reader).ok());
  Mutex mu(LockRank::kTableCacheMu);
  EXPECT_DEATH(
      {
        MutexLock lock(&mu);
        Slice result;
        char scratch[16];
        reader->Read(0, 7, &result, scratch).IgnoreError();
      },
      "blocking I/O \\(read\\) while holding engine mutex TableCache::mu_");
}

TEST_F(LockIoTest, ScopedAllowanceExemptsAuditedSites) {
  Mutex mu(LockRank::kDbMu);
  MutexLock lock(&mu);
  ScopedBlockingIoAllowed allow_io("test: audited exception");
  EXPECT_TRUE(file_->Append(Slice("payload")).ok());
  EXPECT_TRUE(file_->Sync().ok());
}

TEST_F(LockIoTest, AllowanceEndsWithTheScope) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu(LockRank::kDbMu);
  EXPECT_DEATH(
      {
        MutexLock lock(&mu);
        {
          ScopedBlockingIoAllowed allow_io("test: expires");
          file_->Append(Slice("ok")).IgnoreError();
        }
        file_->Append(Slice("boom")).IgnoreError();
      },
      "blocking I/O \\(append\\) while holding engine mutex DBImpl::mu_");
}

#endif  // !NDEBUG

TEST_F(LockIoTest, IoOkLocksMaySerializeIo) {
  // The value-log writer lock intentionally serializes log appends; the
  // guard must not fire for io-ok ranks (in any build type).
  Mutex mu(LockRank::kValueLogMu);
  MutexLock lock(&mu);
  EXPECT_TRUE(file_->Append(Slice("payload")).ok());
  EXPECT_TRUE(file_->Sync().ok());
}

TEST_F(LockIoTest, UnrankedLocksAreExempt) {
  Mutex mu;
  MutexLock lock(&mu);
  EXPECT_TRUE(file_->Append(Slice("payload")).ok());
}

TEST_F(LockIoTest, IoIsCleanWithNoLockHeld) {
  EXPECT_TRUE(file_->Append(Slice("payload")).ok());
  EXPECT_TRUE(file_->Sync().ok());
  EXPECT_EQ(env_->io_stats()->syncs.load(), 1u);
}

}  // namespace
}  // namespace lsmlab
