// Runtime half of the resource-pinning contract
// (tools/check_resource_flow.py is the static half): caches that hand out
// pinned handles track every acquisition site in debug builds
// (util/pin_tracker.h) and abort with a per-site report when destroyed
// with pins still live. These tests pin down that the tracker (a) fires
// and names the leaking call site, (b) catches pinned-but-erased entries
// the destructor assert cannot see, (c) stays silent across a clean
// shutdown, and (d) follows ownership as it transfers between owners.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "cache/block_cache.h"
#include "cache/lru_cache.h"
#include "core/dbformat.h"
#include "core/filename.h"
#include "core/table_cache.h"
#include "format/block.h"
#include "format/block_builder.h"
#include "format/sstable_builder.h"
#include "storage/env.h"

namespace lsmlab {
namespace {

LruCache::Deleter NoopDeleter() {
  return [](const Slice&, void*) {};
}

static int dummy_value = 0;

std::unique_ptr<const Block> OneEntryBlock() {
  TableOptions opts;
  BlockBuilder builder(&opts);
  builder.Add("key", "value");
  Slice raw = builder.Finish();
  BlockContents contents;
  contents.owned = raw.ToString();
  contents.data = Slice(contents.owned);
  contents.heap_allocated = true;
  return std::make_unique<const Block>(std::move(contents));
}

#ifndef NDEBUG

TEST(ResourceFlowTest, LeakedHandleAbortsNamingTheAcquisitionSite) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        LruCache cache(1024, /*num_shards=*/1);
        LruCache::Handle* h =
            cache.Insert("k", &dummy_value, 8, NoopDeleter());
        (void)h;  // deliberately never released
      },
      "acquired at .*resource_flow_test");
}

TEST(ResourceFlowTest, ErasedButPinnedEntryStillCountsAsLeak) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Erase() detaches the entry from the LRU list while the caller's pin
  // keeps it alive; the destructor's per-entry refcount assert never sees
  // it. Only the pin tracker catches this shutdown leak.
  EXPECT_DEATH(
      {
        LruCache cache(1024, /*num_shards=*/1);
        LruCache::Handle* h =
            cache.Insert("k", &dummy_value, 8, NoopDeleter());
        cache.Erase("k");
        (void)h;  // still pinned at destruction
      },
      "LruCache handle: 1 pin\\(s\\) still live");
}

TEST(ResourceFlowTest, EachLookupIsItsOwnPin) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Two lookups of the same entry return the same Handle* but take two
  // pins; releasing only one must still report the other at shutdown.
  EXPECT_DEATH(
      {
        LruCache cache(1024, /*num_shards=*/1);
        cache.Release(cache.Insert("k", &dummy_value, 8, NoopDeleter()));
        LruCache::Handle* a = cache.Lookup("k");
        LruCache::Handle* b = cache.Lookup("k");
        ASSERT_EQ(a, b);
        cache.Release(a);
      },
      "LruCache handle: 1 pin\\(s\\) still live");
}

TEST(ResourceFlowTest, LeakedTableCachePinAbortsNamingTheSite) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::unique_ptr<Env> env(NewMemEnv());
  Options options;
  options.env = env.get();
  options.filter_allocation = FilterAllocation::kNone;
  InternalKeyComparator icmp(BytewiseComparator());

  ASSERT_TRUE(env->CreateDir("/db").ok());
  FileMetaData meta;
  meta.number = 3;
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile(TableFileName("/db", 3), &file).ok());
    TableCache scratch("/db", &options, &icmp);
    SSTableBuilder builder(scratch.TableOptionsForLevel(0), file.get());
    std::string ikey;
    AppendInternalKey(&ikey, "key", 1, ValueType::kTypeValue);
    builder.Add(ikey, "value");
    ASSERT_TRUE(builder.Finish().ok());
  }
  ASSERT_TRUE(env->GetFileSize(TableFileName("/db", 3), &meta.file_size).ok());

  EXPECT_DEATH(
      {
        std::shared_ptr<SSTable> pinned;  // outlives the cache below
        auto cache = std::make_unique<TableCache>("/db", &options, &icmp);
        ASSERT_TRUE(cache->FindTable(meta, &pinned).ok());
        cache.reset();  // reader pin still live
      },
      "TableCache reader pin: 1 pin\\(s\\) still live");
}

#endif  // !NDEBUG

TEST(ResourceFlowTest, CleanShutdownAfterBalancedAcquireRelease) {
  LruCache cache(1024, /*num_shards=*/1);
  cache.Release(cache.Insert("k", &dummy_value, 8, NoopDeleter()));
  LruCache::Handle* a = cache.Lookup("k");
  LruCache::Handle* b = cache.Lookup("k");
  ASSERT_NE(a, nullptr);
  cache.Release(a);
  cache.Release(b);
  // Destructor runs with no live pins: no abort in any build type.
}

namespace transfer {
// The new owner releases a handle it did not acquire — the documented
// ownership-transfer shape the tracker must accept (pins are keyed by
// handle, not by acquiring function).
void ReleaseTransferred(LruCache* cache, LruCache::Handle* h) {
  cache->Release(h);
}
}  // namespace transfer

TEST(ResourceFlowTest, OwnershipTransferReleasesAtTheNewOwner) {
  LruCache cache(1024, /*num_shards=*/1);
  LruCache::Handle* h = cache.Insert("k", &dummy_value, 8, NoopDeleter());
  transfer::ReleaseTransferred(&cache, h);
}

TEST(ResourceFlowTest, BlockCacheRefMoveTransfersThePin) {
  BlockCache cache(1 << 20);
  BlockCache::Ref outer;
  {
    BlockCache::Ref inner = cache.Insert(1, 0, OneEntryBlock());
    ASSERT_TRUE(static_cast<bool>(inner));
    outer = std::move(inner);  // pin moves with the Ref
    EXPECT_FALSE(static_cast<bool>(inner));
  }
  ASSERT_TRUE(static_cast<bool>(outer));
  outer.Reset();  // single release for the single pin
  BlockCache::Ref hit = cache.Lookup(1, 0);
  EXPECT_TRUE(static_cast<bool>(hit));
  // hit released by its destructor; cache destruction is clean.
}

}  // namespace
}  // namespace lsmlab
