#include "rangefilter/range_filter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "util/random.h"
#include "workload/keygen.h"

namespace lsmlab {
namespace {

struct RangeFilterCase {
  std::string name;
  std::function<const RangeFilterPolicy*()> make;
  bool supports_wide_ranges;  // prefix bloom answers only narrow ranges
};

class RangeFilterTest : public ::testing::TestWithParam<RangeFilterCase> {
 protected:
  void SetUp() override { policy_.reset(GetParam().make()); }

  /// Builds a filter over sorted numeric keys.
  std::string Build(const std::vector<uint64_t>& values) {
    keys_.clear();
    for (uint64_t v : values) {
      keys_.push_back(EncodeKey(v));
    }
    std::vector<Slice> slices;
    for (const auto& k : keys_) {
      slices.emplace_back(k);
    }
    std::string filter;
    policy_->CreateFilter(slices, &filter);
    return filter;
  }

  std::unique_ptr<const RangeFilterPolicy> policy_;
  std::vector<std::string> keys_;
};

TEST_P(RangeFilterTest, NoFalseNegativesOnPoints) {
  std::vector<uint64_t> values;
  for (uint64_t i = 0; i < 5000; i++) {
    values.push_back(i * 97 + 13);
  }
  const std::string filter = Build(values);
  for (uint64_t v : values) {
    EXPECT_TRUE(policy_->KeyMayMatch(EncodeKey(v), filter))
        << GetParam().name << " value " << v;
  }
}

TEST_P(RangeFilterTest, NoFalseNegativesOnRanges) {
  std::vector<uint64_t> values;
  for (uint64_t i = 0; i < 2000; i++) {
    values.push_back(i * 1000);
  }
  const std::string filter = Build(values);
  Random rng(5);
  for (int trial = 0; trial < 2000; trial++) {
    // Random range guaranteed to contain at least one key.
    const uint64_t target = values[rng.Uniform(values.size())];
    const uint64_t lo = target - rng.Uniform(500);
    const uint64_t hi = target + rng.Uniform(500);
    EXPECT_TRUE(
        policy_->RangeMayMatch(EncodeKey(lo), EncodeKey(hi), filter))
        << GetParam().name << " range [" << lo << "," << hi << "] contains "
        << target;
  }
}

TEST_P(RangeFilterTest, RejectsSomeEmptyRanges) {
  if (!GetParam().supports_wide_ranges) {
    GTEST_SKIP() << "prefix bloom only answers intra-bucket ranges";
  }
  // Keys spaced 2^20 apart leave huge empty gaps.
  std::vector<uint64_t> values;
  for (uint64_t i = 1; i <= 2000; i++) {
    values.push_back(i << 20);
  }
  const std::string filter = Build(values);
  int rejected = 0;
  Random rng(6);
  const int trials = 1000;
  for (int t = 0; t < trials; t++) {
    // Empty ranges around the middle of a gap — far from any stored key,
    // where every range filter design has the information to reject.
    const uint64_t base = (1 + rng.Uniform(1999)) << 20;
    const uint64_t lo = base + (1 << 19) + rng.Uniform(1 << 18);
    const uint64_t hi = lo + rng.Uniform(64);
    if (!policy_->RangeMayMatch(EncodeKey(lo), EncodeKey(hi), filter)) {
      rejected++;
    }
  }
  // A useful range filter rejects the clear majority of empty short ranges.
  EXPECT_GT(rejected, trials / 2) << GetParam().name;
}

TEST_P(RangeFilterTest, EmptyAndGarbageFiltersNeverReject) {
  EXPECT_TRUE(policy_->RangeMayMatch(EncodeKey(1), EncodeKey(2), ""));
  EXPECT_TRUE(policy_->RangeMayMatch(EncodeKey(1), EncodeKey(2), "xyz"));
}

INSTANTIATE_TEST_SUITE_P(
    AllRangeFilters, RangeFilterTest,
    ::testing::Values(
        RangeFilterCase{"SuRF8", [] { return NewSurfRangeFilter(8); }, true},
        RangeFilterCase{"Rosetta22",
                        [] { return NewRosettaRangeFilter(22, 24); }, true},
        RangeFilterCase{"SNARF10", [] { return NewSnarfRangeFilter(10); },
                        true},
        RangeFilterCase{"PrefixBloom",
                        [] { return NewPrefixBloomRangeFilter(7, 10); },
                        false}),
    [](const ::testing::TestParamInfo<RangeFilterCase>& info) {
      return info.param.name;
    });

// --- SuRF-specific: lower-bound correctness against brute force ----------

TEST(SurfTest, RangeQueriesMatchBruteForceUpToFalsePositives) {
  std::unique_ptr<const RangeFilterPolicy> surf(NewSurfRangeFilter(16));
  Random rng(7);
  std::set<uint64_t> key_set;
  while (key_set.size() < 3000) {
    key_set.insert(rng.Next64() >> 20);  // clustered domain
  }
  std::vector<uint64_t> values(key_set.begin(), key_set.end());
  std::vector<std::string> keys;
  for (uint64_t v : values) {
    keys.push_back(EncodeKey(v));
  }
  std::vector<Slice> slices;
  for (const auto& k : keys) {
    slices.emplace_back(k);
  }
  std::string filter;
  surf->CreateFilter(slices, &filter);

  int false_positives = 0;
  int checked_empty = 0;
  for (int t = 0; t < 5000; t++) {
    const uint64_t lo = rng.Next64() >> 20;
    const uint64_t hi = lo + rng.Uniform(1 << 12);
    const bool truth =
        key_set.lower_bound(lo) != key_set.end() &&
        *key_set.lower_bound(lo) <= hi;
    const bool answer =
        surf->RangeMayMatch(EncodeKey(lo), EncodeKey(hi), filter);
    if (truth) {
      ASSERT_TRUE(answer) << "false negative on [" << lo << "," << hi << "]";
    } else {
      checked_empty++;
      if (answer) {
        false_positives++;
      }
    }
  }
  ASSERT_GT(checked_empty, 1000);
  EXPECT_LT(static_cast<double>(false_positives) / checked_empty, 0.5);
}

TEST(SurfTest, VariableLengthStringKeys) {
  std::unique_ptr<const RangeFilterPolicy> surf(NewSurfRangeFilter(8));
  std::vector<std::string> raw = {"app", "apple", "applesauce", "banana",
                                  "band", "bandana", "zebra"};
  std::vector<Slice> slices;
  for (const auto& k : raw) {
    slices.emplace_back(k);
  }
  std::string filter;
  surf->CreateFilter(slices, &filter);
  for (const auto& k : raw) {
    EXPECT_TRUE(surf->KeyMayMatch(k, filter)) << k;
  }
  // A range covering a stored key.
  EXPECT_TRUE(surf->RangeMayMatch("ba", "bb", filter));
  // A clearly empty range far from all keys.
  EXPECT_FALSE(surf->RangeMayMatch("cc", "cz", filter));
}

// --- Rosetta-specific: short ranges are its sweet spot --------------------

TEST(RosettaTest, ShortRangesBeatLongRanges) {
  std::unique_ptr<const RangeFilterPolicy> rosetta(
      NewRosettaRangeFilter(20, 24));
  Random rng(8);
  std::set<uint64_t> key_set;
  while (key_set.size() < 5000) {
    key_set.insert(rng.Next64() >> 16);
  }
  std::vector<std::string> keys;
  for (uint64_t v : key_set) {
    keys.push_back(EncodeKey(v));
  }
  std::vector<Slice> slices;
  for (const auto& k : keys) {
    slices.emplace_back(k);
  }
  std::string filter;
  rosetta->CreateFilter(slices, &filter);

  auto empty_range_fpr = [&](uint64_t width) {
    int fp = 0, total = 0;
    Random r2(9);
    for (int t = 0; t < 500; t++) {
      const uint64_t lo = r2.Next64() >> 16;
      const uint64_t hi = lo + width;
      auto it = key_set.lower_bound(lo);
      if (it != key_set.end() && *it <= hi) {
        continue;  // non-empty; skip
      }
      total++;
      if (rosetta->RangeMayMatch(EncodeKey(lo), EncodeKey(hi), filter)) {
        fp++;
      }
    }
    return total == 0 ? 1.0 : static_cast<double>(fp) / total;
  };

  EXPECT_LT(empty_range_fpr(4), 0.2);
}

// --- SNARF-specific: distribution awareness --------------------------------

TEST(SnarfTest, SkewedDistributionStillFilters) {
  std::unique_ptr<const RangeFilterPolicy> snarf(NewSnarfRangeFilter(12));
  // Heavily clustered keys: 99% in a narrow band, 1% spread wide.
  std::vector<uint64_t> values;
  for (uint64_t i = 0; i < 5000; i++) {
    values.push_back((1ull << 40) + i * 3);
  }
  for (uint64_t i = 0; i < 50; i++) {
    values.push_back(i * (1ull << 50));
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  std::vector<std::string> keys;
  for (uint64_t v : values) {
    keys.push_back(EncodeKey(v));
  }
  std::vector<Slice> slices;
  for (const auto& k : keys) {
    slices.emplace_back(k);
  }
  std::string filter;
  snarf->CreateFilter(slices, &filter);

  // Points in the dense cluster must all be found.
  for (uint64_t i = 0; i < 5000; i += 111) {
    EXPECT_TRUE(
        snarf->KeyMayMatch(EncodeKey((1ull << 40) + i * 3), filter));
  }
  // Ranges inside the dense cluster but between keys: mostly rejected,
  // because the model allocates most bit-space to the cluster.
  int rejected = 0;
  for (uint64_t i = 0; i < 1000; i++) {
    const uint64_t lo = (1ull << 40) + i * 3 + 1;
    if (!snarf->RangeMayMatch(EncodeKey(lo), EncodeKey(lo + 1), filter)) {
      rejected++;
    }
  }
  EXPECT_GT(rejected, 500);
}

// --- Prefix bloom specifics ------------------------------------------------

TEST(PrefixBloomTest, IntraPrefixRangesAreFiltered) {
  std::unique_ptr<const RangeFilterPolicy> pb(
      NewPrefixBloomRangeFilter(4, 12));
  std::vector<std::string> raw;
  for (int i = 0; i < 1000; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%04d-suffix", i * 2);
    raw.push_back(buf);
  }
  std::vector<Slice> slices;
  for (const auto& k : raw) {
    slices.emplace_back(k);
  }
  std::string filter;
  pb->CreateFilter(slices, &filter);

  // Query inside a present prefix: maybe.
  EXPECT_TRUE(pb->RangeMayMatch("0002-a", "0002-z", filter));
  // Query inside an absent prefix bucket: rejected (odd prefixes absent).
  int rejected = 0;
  for (int i = 0; i < 500; i++) {
    char lo[16], hi[16];
    std::snprintf(lo, sizeof(lo), "%04d-a", i * 2 + 1);
    std::snprintf(hi, sizeof(hi), "%04d-z", i * 2 + 1);
    if (!pb->RangeMayMatch(lo, hi, filter)) {
      rejected++;
    }
  }
  EXPECT_GT(rejected, 480);
  // Cross-prefix query: cannot answer, must say maybe.
  EXPECT_TRUE(pb->RangeMayMatch("0001", "0999", filter));
}

}  // namespace
}  // namespace lsmlab
