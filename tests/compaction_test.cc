// Shape-level tests: each merge policy must produce its characteristic
// tree shape (tutorial I-2, II-iv), and partial-compaction pickers must
// behave per their definitions.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cache/block_cache.h"
#include "core/db.h"
#include "storage/env.h"
#include "workload/keygen.h"
#include "workload/workload.h"

namespace lsmlab {
namespace {

class CompactionShapeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_.reset(NewMemEnv());
    options_.env = env_.get();
    options_.write_buffer_size = 8 << 10;
    options_.max_file_size = 8 << 10;
    options_.size_ratio = 3;
    options_.level0_compaction_trigger = 3;
  }

  void LoadUniform(int n) {
    ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
    auto gen = NewUniformGenerator(1 << 24, 42);
    for (int i = 0; i < n; i++) {
      const std::string key = EncodeKey(gen->Next());
      ASSERT_TRUE(db_->Put({}, key, ValueForKey(key, 32)).ok());
    }
  }

  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(CompactionShapeTest, LevelingKeepsOneRunPerLevel) {
  options_.merge_policy = MergePolicy::kLeveling;
  LoadUniform(20000);
  DBStats stats = db_->GetStats();
  for (size_t level = 1; level < stats.runs_per_level.size(); level++) {
    EXPECT_LE(stats.runs_per_level[level], 1)
        << "level " << level << "\n"
        << db_->DebugShape();
  }
  EXPECT_LT(stats.runs_per_level[0], options_.level0_compaction_trigger + 1);
}

TEST_F(CompactionShapeTest, TieringAllowsTRunsPerLevel) {
  options_.merge_policy = MergePolicy::kTiering;
  LoadUniform(20000);
  DBStats stats = db_->GetStats();
  bool some_level_has_multiple_runs = false;
  for (size_t level = 1; level < stats.runs_per_level.size(); level++) {
    EXPECT_LE(stats.runs_per_level[level], options_.size_ratio)
        << db_->DebugShape();
    if (stats.runs_per_level[level] > 1) {
      some_level_has_multiple_runs = true;
    }
  }
  EXPECT_TRUE(some_level_has_multiple_runs) << db_->DebugShape();
}

TEST_F(CompactionShapeTest, LazyLevelingKeepsLargestLevelAsOneRun) {
  options_.merge_policy = MergePolicy::kLazyLeveling;
  LoadUniform(30000);
  DBStats stats = db_->GetStats();
  int largest = -1;
  for (size_t level = 0; level < stats.runs_per_level.size(); level++) {
    if (stats.runs_per_level[level] > 0) {
      largest = static_cast<int>(level);
    }
  }
  ASSERT_GE(largest, 1) << db_->DebugShape();
  EXPECT_EQ(stats.runs_per_level[largest], 1) << db_->DebugShape();
}

TEST_F(CompactionShapeTest, TieringWritesLessThanLeveling) {
  // The core read/write tradeoff (E1): at equal data, tiering's write
  // amplification is lower.
  options_.merge_policy = MergePolicy::kLeveling;
  LoadUniform(30000);
  const double leveled_wa = db_->GetStats().WriteAmplification();
  db_.reset();
  ASSERT_TRUE(DestroyDB(options_, "/db").ok());

  options_.merge_policy = MergePolicy::kTiering;
  LoadUniform(30000);
  const double tiered_wa = db_->GetStats().WriteAmplification();

  EXPECT_LT(tiered_wa, leveled_wa);
}

TEST_F(CompactionShapeTest, TieringReadsMoreRunsThanLeveling) {
  options_.merge_policy = MergePolicy::kLeveling;
  LoadUniform(30000);
  const int leveled_runs = db_->GetStats().total_runs;
  db_.reset();
  ASSERT_TRUE(DestroyDB(options_, "/db").ok());

  options_.merge_policy = MergePolicy::kTiering;
  LoadUniform(30000);
  const int tiered_runs = db_->GetStats().total_runs;

  EXPECT_GT(tiered_runs, leveled_runs);
}

TEST_F(CompactionShapeTest, CompactionsGarbageCollectOverwrites) {
  options_.merge_policy = MergePolicy::kLeveling;
  ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  // Write the same small key set many times over.
  for (int round = 0; round < 50; round++) {
    for (int i = 0; i < 500; i++) {
      ASSERT_TRUE(
          db_->Put({}, EncodeKey(i), "round" + std::to_string(round)).ok());
    }
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  DBStats stats = db_->GetStats();
  // 500 live keys of ~30 bytes each; without GC this would be 25000 entries.
  EXPECT_LT(stats.total_bytes, 500u * 200);
  std::string value;
  ASSERT_TRUE(db_->Get({}, EncodeKey(3), &value).ok());
  EXPECT_EQ(value, "round49");
}

TEST_F(CompactionShapeTest, TombstonesPurgedAtBottomLevel) {
  options_.merge_policy = MergePolicy::kLeveling;
  ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put({}, EncodeKey(i), std::string(64, 'v')).ok());
  }
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Delete({}, EncodeKey(i)).ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  DBStats stats = db_->GetStats();
  // Everything deleted and fully merged: almost no bytes should remain.
  EXPECT_LT(stats.total_bytes, 16u << 10) << db_->DebugShape();
}

TEST_F(CompactionShapeTest, FileCountRespectsMaxFileSize) {
  options_.merge_policy = MergePolicy::kLeveling;
  options_.max_file_size = 4 << 10;
  LoadUniform(10000);
  DBStats stats = db_->GetStats();
  // Files split at ~4 KiB; with ~40-byte entries we expect many files.
  EXPECT_GT(stats.total_files, 10);
}

class FilePickerTest : public CompactionShapeTest,
                       public ::testing::WithParamInterface<
                           CompactionFilePicker> {
 protected:
  std::unique_ptr<BlockCache> cache_;
};

TEST_P(FilePickerTest, PartialCompactionKeepsDBCorrect) {
  options_.merge_policy = MergePolicy::kLeveling;
  options_.file_picker = GetParam();
  if (GetParam() == CompactionFilePicker::kCold) {
    cache_ = std::make_unique<BlockCache>(256 << 10);
    options_.block_cache = cache_.get();
  }
  LoadUniform(20000);
  // Correctness: spot-check lookups.
  auto gen = NewUniformGenerator(1 << 24, 42);
  for (int i = 0; i < 20000; i++) {
    const std::string key = EncodeKey(gen->Next());
    if (i % 97 == 0) {
      std::string value;
      ASSERT_TRUE(db_->Get({}, key, &value).ok()) << i;
      EXPECT_EQ(value, ValueForKey(key, 32));
    }
  }
  // Partial pickers must keep each level a single sorted run.
  DBStats stats = db_->GetStats();
  for (size_t level = 1; level < stats.runs_per_level.size(); level++) {
    EXPECT_LE(stats.runs_per_level[level], 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pickers, FilePickerTest,
    ::testing::Values(CompactionFilePicker::kRoundRobin,
                      CompactionFilePicker::kMinOverlap,
                      CompactionFilePicker::kCold,
                      CompactionFilePicker::kOldest),
    [](const ::testing::TestParamInfo<CompactionFilePicker>& info) {
      switch (info.param) {
        case CompactionFilePicker::kRoundRobin:
          return "RoundRobin";
        case CompactionFilePicker::kMinOverlap:
          return "MinOverlap";
        case CompactionFilePicker::kCold:
          return "Cold";
        case CompactionFilePicker::kOldest:
          return "Oldest";
        default:
          return "Whole";
      }
    });

TEST_F(CompactionShapeTest, PartialCompactionSmoothsWork) {
  // Partial compaction moves less data per compaction than whole-level
  // (the tail-latency motivation of tutorial I-2).
  options_.merge_policy = MergePolicy::kLeveling;
  options_.file_picker = CompactionFilePicker::kWholeLevel;
  LoadUniform(20000);
  const DBStats whole = db_->GetStats();
  db_.reset();
  ASSERT_TRUE(DestroyDB(options_, "/db").ok());

  options_.file_picker = CompactionFilePicker::kMinOverlap;
  LoadUniform(20000);
  const DBStats partial = db_->GetStats();

  ASSERT_GT(whole.compactions, 0u);
  ASSERT_GT(partial.compactions, 0u);
  const double whole_avg =
      static_cast<double>(whole.bytes_compacted) / whole.compactions;
  const double partial_avg =
      static_cast<double>(partial.bytes_compacted) / partial.compactions;
  EXPECT_LT(partial_avg, whole_avg);
}

}  // namespace
}  // namespace lsmlab
