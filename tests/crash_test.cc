// Crash-recovery testing with fault injection: the environment rolls every
// file back to its last-synced prefix (what an OS crash can expose) and
// the DB must recover to a consistent state — synced data intact, torn
// tails dropped silently, never corruption.

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "core/sharded_db.h"
#include "storage/fault_env.h"
#include "util/random.h"
#include "workload/keygen.h"

namespace lsmlab {
namespace {

class CrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_env_.reset(NewMemEnv());
    env_ = std::make_unique<FaultInjectionEnv>(base_env_.get());
    options_.env = env_.get();
    options_.write_buffer_size = 8 << 10;
    options_.max_file_size = 8 << 10;
    options_.level0_compaction_trigger = 2;
    options_.size_ratio = 3;
  }

  void Open() { ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok()); }

  void CrashAndReopen() {
    db_.reset();  // the "process" dies; its buffered state is lost
    ASSERT_TRUE(env_->Crash().ok());
    Open();
  }

  std::unique_ptr<Env> base_env_;
  std::unique_ptr<FaultInjectionEnv> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(CrashTest, SyncedWritesSurviveCrash) {
  Open();
  WriteOptions sync;
  sync.sync = true;
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db_->Put(sync, EncodeKey(i), "v" + std::to_string(i)).ok());
  }
  CrashAndReopen();
  std::string value;
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db_->Get({}, EncodeKey(i), &value).ok()) << i;
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
}

TEST_F(CrashTest, UnsyncedWritesMayVanishButNeverCorrupt) {
  Open();
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Put({}, EncodeKey(i), "v" + std::to_string(i)).ok());
  }
  CrashAndReopen();
  // Any surviving key must carry exactly the value that was written.
  std::string value;
  for (int i = 0; i < 500; i++) {
    Status s = db_->Get({}, EncodeKey(i), &value);
    if (s.ok()) {
      EXPECT_EQ(value, "v" + std::to_string(i)) << i;
    } else {
      EXPECT_TRUE(s.IsNotFound()) << s.ToString();
    }
  }
}

TEST_F(CrashTest, FlushedDataSurvivesWithoutWal) {
  Open();
  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(db_->Put({}, EncodeKey(i), std::to_string(i * 3)).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());  // tables + manifest are synced
  CrashAndReopen();
  std::string value;
  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(db_->Get({}, EncodeKey(i), &value).ok()) << i;
    EXPECT_EQ(value, std::to_string(i * 3));
  }
}

TEST_F(CrashTest, CompactedDataSurvivesCrash) {
  Open();
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db_->Put({}, EncodeKey(i % 500),
                         "round" + std::to_string(i / 500))
                    .ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  CrashAndReopen();
  std::string value;
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Get({}, EncodeKey(i), &value).ok()) << i;
    EXPECT_EQ(value, "round5");
  }
}

TEST_F(CrashTest, RepeatedCrashesKeepDurablePrefix) {
  Open();
  WriteOptions sync;
  sync.sync = true;
  std::map<std::string, std::string> durable;
  Random rng(71);
  for (int round = 0; round < 8; round++) {
    // Some synced writes (durable), then some unsynced ones.
    for (int i = 0; i < 50; i++) {
      const std::string k = EncodeKey(rng.Uniform(300));
      const std::string v = "r" + std::to_string(round) + "-" +
                            std::to_string(i);
      ASSERT_TRUE(db_->Put(sync, k, v).ok());
      durable[k] = v;
    }
    for (int i = 0; i < 50; i++) {
      const std::string k = EncodeKey(rng.Uniform(300));
      ASSERT_TRUE(db_->Put({}, k, "volatile").ok());
      // May or may not survive; remove from the durable expectations.
      durable.erase(k);
    }
    CrashAndReopen();
    std::string value;
    for (const auto& [k, v] : durable) {
      ASSERT_TRUE(db_->Get({}, k, &value).ok())
          << "round " << round << " key " << DecodeKey(k);
      EXPECT_EQ(value, v);
    }
  }
}

TEST_F(CrashTest, DeletesAreDurableWhenSynced) {
  Open();
  WriteOptions sync;
  sync.sync = true;
  ASSERT_TRUE(db_->Put(sync, "k", "v").ok());
  ASSERT_TRUE(db_->Delete(sync, "k").ok());
  CrashAndReopen();
  std::string value;
  EXPECT_TRUE(db_->Get({}, "k", &value).IsNotFound());
}

TEST_F(CrashTest, SeparatedValuesSurviveSyncedCrash) {
  options_.value_separation_threshold = 64;
  Open();
  WriteOptions sync;
  sync.sync = true;
  const std::string big(2048, 'B');
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db_->Put(sync, EncodeKey(i), big).ok());
  }
  CrashAndReopen();
  std::string value;
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db_->Get({}, EncodeKey(i), &value).ok()) << i;
    EXPECT_EQ(value, big);
  }
}

TEST_F(CrashTest, SeparatedValuesSurviveCrashAfterFlush) {
  options_.value_separation_threshold = 64;
  Open();
  const std::string big(1024, 'F');
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db_->Put({}, EncodeKey(i), big).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());  // vlog synced before pointers
  CrashAndReopen();
  std::string value;
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db_->Get({}, EncodeKey(i), &value).ok()) << i;
    EXPECT_EQ(value, big);
  }
}

TEST_F(CrashTest, RandomizedCrashPointsArePrefixConsistent) {
  // Crash at pseudo-random moments of a mixed workload. After recovery the
  // DB must correspond to the state after some single cut point c in the
  // write sequence (WAL truncation keeps a prefix; flushes only extend
  // it), with c at least the last synced write. No reordering, no holes,
  // no resurrections.
  Open();
  Random rng(0x5eed);
  WriteOptions sync;
  sync.sync = true;

  // Global write log: (key, value-or-tombstone), index = op.
  std::vector<std::pair<std::string, std::optional<std::string>>> log;
  int durable_op = -1;  // ops <= durable_op must survive the next crash

  for (int round = 0; round < 6; round++) {
    const int ops = 100 + static_cast<int>(rng.Uniform(300));
    for (int i = 0; i < ops; i++) {
      const std::string k = EncodeKey(rng.Uniform(200));
      const bool synced = rng.OneIn(4);
      if (rng.OneIn(5)) {
        ASSERT_TRUE(db_->Delete(synced ? sync : WriteOptions(), k).ok());
        log.emplace_back(k, std::nullopt);
      } else {
        const std::string v = "v" + std::to_string(log.size());
        ASSERT_TRUE(db_->Put(synced ? sync : WriteOptions(), k, v).ok());
        log.emplace_back(k, v);
      }
      if (synced) {
        durable_op = static_cast<int>(log.size()) - 1;
      }
    }
    CrashAndReopen();

    // Observe the DB state for every key ever touched.
    std::map<std::string, std::optional<std::string>> observed;
    for (const auto& [k, v] : log) {
      if (observed.count(k)) {
        continue;
      }
      std::string value;
      Status s = db_->Get({}, k, &value);
      ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
      observed[k] = s.ok() ? std::optional<std::string>(value)
                           : std::nullopt;
    }

    // Find a cut c (>= durable_op) whose induced state matches exactly.
    const int last_op = static_cast<int>(log.size()) - 1;
    int found_cut = -2;
    for (int cut = std::max(durable_op, -1); cut <= last_op; cut++) {
      std::map<std::string, std::optional<std::string>> state;
      for (int w = 0; w <= cut; w++) {
        state[log[w].first] = log[w].second;
      }
      bool match = true;
      for (const auto& [k, v] : observed) {
        auto it = state.find(k);
        const std::optional<std::string> expect =
            it == state.end() ? std::nullopt : it->second;
        if (expect != v) {
          match = false;
          break;
        }
      }
      if (match) {
        found_cut = cut;
        break;
      }
    }
    ASSERT_NE(found_cut, -2)
        << "round " << round << ": no prefix cut >= " << durable_op
        << " explains the recovered state";

    // History rewrites itself: everything past the cut never happened, and
    // recovery flushed what survived, so the whole prefix is now durable.
    log.resize(found_cut + 1);
    durable_op = found_cut;
  }
}

TEST_F(CrashTest, KillPointFailsAllWritesAfterTrigger) {
  Open();
  const uint64_t base_ops = env_->write_ops();  // Open's own manifest traffic
  env_->ArmKillPoint(3);  // three more write ops, then the process "dies"
  WriteOptions sync;
  sync.sync = true;
  int failures = 0;
  for (int i = 0; i < 10; i++) {
    if (!db_->Put(sync, EncodeKey(i), "v").ok()) {
      failures++;
    }
  }
  EXPECT_GT(failures, 0);
  EXPECT_FALSE(env_->kill_file().empty());
  EXPECT_EQ(env_->write_ops() - base_ops, 3u);
}

TEST_F(CrashTest, KillPointMatrixIsPrefixConsistent) {
  // Deterministic kill-point matrix: replay one fixed workload, killing the
  // run at every write-operation boundary in turn — mid WAL record, between
  // a WAL append and its sync, inside an SSTable build, during a manifest
  // install. After each kill + crash + reopen, the recovered state must
  // equal the state after some single cut point in the acknowledged writes,
  // at least the last synced one. The env records which file each kill
  // landed in, so the sweep also proves it exercised all three structures.
  struct Op {
    std::string key;
    std::optional<std::string> value;  // nullopt = delete
    bool sync;
  };
  std::vector<Op> workload;
  {
    Random gen(0x4b11);
    const std::string pad(80, 'p');
    for (int i = 0; i < 160; i++) {
      Op op;
      op.key = EncodeKey(gen.Uniform(50));
      op.sync = (i % 13) == 0;
      if ((i % 7) == 6) {
        op.value = std::nullopt;
      } else {
        op.value = "v" + std::to_string(i) + pad;
      }
      workload.push_back(std::move(op));
    }
  }

  // The per-iteration runner: fresh world, kill after `kill_at` write ops
  // (no kill when kill_at < 0). Returns how many leading ops were
  // acknowledged and the index of the last acked synced op.
  auto run = [&](int64_t kill_at, int* acked, int* durable,
                 std::string* kill_file, uint64_t* total_ops) {
    db_.reset();  // before its env goes away
    base_env_.reset(NewMemEnv());
    env_ = std::make_unique<FaultInjectionEnv>(base_env_.get());
    options_.env = env_.get();
    if (kill_at >= 0) {
      env_->ArmKillPoint(static_cast<uint64_t>(kill_at));
    }
    *acked = 0;
    *durable = -1;
    std::unique_ptr<DB> db;
    if (DB::Open(options_, "/db", &db).ok()) {
      db_ = std::move(db);
      WriteOptions sync;
      sync.sync = true;
      for (size_t i = 0; i < workload.size(); i++) {
        const Op& op = workload[i];
        const WriteOptions& wo = op.sync ? sync : WriteOptions();
        Status s = op.value ? db_->Put(wo, op.key, *op.value)
                            : db_->Delete(wo, op.key);
        if (!s.ok()) {
          break;  // dead from here on; later ops would fail too
        }
        *acked = static_cast<int>(i) + 1;
        if (op.sync) {
          *durable = static_cast<int>(i);
        }
      }
    }
    *kill_file = env_->kill_file();
    *total_ops = env_->write_ops();
  };

  // Baseline: un-killed run counts the write ops the sweep must cover.
  int acked, durable;
  std::string kill_file;
  uint64_t total_ops;
  run(-1, &acked, &durable, &kill_file, &total_ops);
  ASSERT_EQ(acked, static_cast<int>(workload.size()));
  ASSERT_GT(total_ops, 100u);  // sanity: WAL + flush + manifest traffic

  std::map<std::string, int> kills_by_kind;
  const int sweep_end =
      std::min<int>(static_cast<int>(total_ops), 400);
  for (int k = 0; k < sweep_end; k++) {
    run(k, &acked, &durable, &kill_file, &total_ops);

    // Classify where this kill landed (suffix of the victim file).
    if (!kill_file.empty()) {
      std::string kind = "other";
      if (kill_file.size() > 4 &&
          kill_file.compare(kill_file.size() - 4, 4, ".wal") == 0) {
        kind = "wal";
      } else if (kill_file.size() > 4 &&
                 kill_file.compare(kill_file.size() - 4, 4, ".sst") == 0) {
        kind = "sst";
      } else if (kill_file.find("MANIFEST-") != std::string::npos) {
        kind = "manifest";
      }
      kills_by_kind[kind]++;
    }

    db_.reset();
    ASSERT_TRUE(env_->Crash().ok());
    Open();

    // Observe every key the workload touches.
    std::map<std::string, std::optional<std::string>> observed;
    for (const Op& op : workload) {
      if (observed.count(op.key)) {
        continue;
      }
      std::string value;
      Status s = db_->Get({}, op.key, &value);
      ASSERT_TRUE(s.ok() || s.IsNotFound()) << "k=" << k << " " << s.ToString();
      observed[op.key] =
          s.ok() ? std::optional<std::string>(value) : std::nullopt;
    }

    // Some cut c >= the last acked synced op must explain the state. The
    // op that failed may have been partially applied-and-made-durable
    // (e.g. its inline flush installed before the kill), so the search
    // includes it.
    const int last_candidate = std::min<int>(acked,
        static_cast<int>(workload.size()) - 1);
    bool explained = false;
    for (int cut = durable; cut <= last_candidate && !explained; cut++) {
      std::map<std::string, std::optional<std::string>> state;
      for (int w = 0; w <= cut; w++) {
        state[workload[w].key] = workload[w].value;
      }
      bool match = true;
      for (const auto& [key, v] : observed) {
        auto it = state.find(key);
        const std::optional<std::string> expect =
            it == state.end() ? std::nullopt : it->second;
        if (expect != v) {
          match = false;
          break;
        }
      }
      explained = match;
    }
    ASSERT_TRUE(explained)
        << "kill point " << k << " (file " << kill_file << "): no prefix cut"
        << " in [" << durable << ", " << last_candidate
        << "] explains the recovered state";
    db_.reset();
  }

  // The sweep must have died inside each structure at least once.
  EXPECT_GT(kills_by_kind["wal"], 0);
  EXPECT_GT(kills_by_kind["sst"], 0);
  EXPECT_GT(kills_by_kind["manifest"], 0);
}

TEST_F(CrashTest, GroupCommitKillPointsArePrefixConsistent) {
  // Kill-point sweep over a *concurrent* workload: four writer threads race
  // through the group-commit queue, so successive kill points land at every
  // boundary of a group's life — between the group's single WAL append and
  // its sync, and between the sync and the memtable apply/ack. After each
  // kill + crash + reopen, every thread's recovered writes must form a
  // prefix of the order that thread submitted them (a follower's write can
  // never surface without its leader-assigned predecessors: the group is
  // one WAL record, and groups commit in queue order), covering at least
  // the thread's last acknowledged synced op.
  constexpr int kThreads = 4;
  constexpr int kOps = 25;
  const std::string pad(60, 'g');
  auto key_of = [](int t, int j) {
    return "t" + std::to_string(t) + "-" + std::to_string(100 + j);
  };
  auto value_of = [&](int t, int j) {
    return "v" + std::to_string(t) + "." + std::to_string(j) + pad;
  };

  // Fresh world; kill after `kill_at` write ops (< 0 = never). Each thread
  // reports how many of its leading ops were acked and the index of its
  // last acked synced op.
  auto run = [&](int64_t kill_at, std::array<int, kThreads>* acked,
                 std::array<int, kThreads>* durable, uint64_t* total_ops) {
    db_.reset();
    base_env_.reset(NewMemEnv());
    env_ = std::make_unique<FaultInjectionEnv>(base_env_.get());
    options_.env = env_.get();
    if (kill_at >= 0) {
      env_->ArmKillPoint(static_cast<uint64_t>(kill_at));
    }
    acked->fill(0);
    durable->fill(-1);
    std::unique_ptr<DB> db;
    if (DB::Open(options_, "/db", &db).ok()) {
      db_ = std::move(db);
      std::vector<std::thread> threads;
      for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&, t] {
          WriteOptions wo;
          for (int j = 0; j < kOps; j++) {
            wo.sync = (j % 5 == 0);
            if (!db_->Put(wo, key_of(t, j), value_of(t, j)).ok()) {
              return;  // env is dead; every later op would fail too
            }
            (*acked)[t] = j + 1;
            if (wo.sync) {
              (*durable)[t] = j;
            }
          }
        });
      }
      for (auto& th : threads) {
        th.join();
      }
    }
    *total_ops = env_->write_ops();
  };

  std::array<int, kThreads> acked, durable;
  uint64_t total_ops;
  run(-1, &acked, &durable, &total_ops);
  for (int t = 0; t < kThreads; t++) {
    ASSERT_EQ(acked[t], kOps);
  }
  ASSERT_GT(total_ops, 50u);

  // Thread scheduling reshuffles groups between runs, so each kill point k
  // lands at whatever boundary that run's interleaving produced; across
  // the sweep that covers appends, syncs, and the gaps between them.
  const int sweep_end = std::min<int>(static_cast<int>(total_ops), 160);
  for (int k = 0; k < sweep_end; k++) {
    run(k, &acked, &durable, &total_ops);
    db_.reset();
    ASSERT_TRUE(env_->Crash().ok());
    Open();

    for (int t = 0; t < kThreads; t++) {
      // Length of the recovered prefix for this thread.
      int prefix = 0;
      std::string value;
      while (prefix < kOps) {
        Status s = db_->Get({}, key_of(t, prefix), &value);
        ASSERT_TRUE(s.ok() || s.IsNotFound())
            << "k=" << k << " " << s.ToString();
        if (!s.ok()) {
          break;
        }
        ASSERT_EQ(value, value_of(t, prefix)) << "k=" << k;
        prefix++;
      }
      // Everything past the prefix must be absent (no holes: an op may
      // never surface without its predecessors).
      for (int j = prefix + 1; j < kOps; j++) {
        ASSERT_TRUE(db_->Get({}, key_of(t, j), &value).IsNotFound())
            << "kill point " << k << ": thread " << t << " lost op "
            << prefix << " but kept op " << j;
      }
      // Acked synced ops survive; unsubmitted ops never appear. (The op
      // that failed, index acked[t], may legitimately surface: its group
      // could have become durable before the ack was suppressed.)
      EXPECT_GE(prefix, durable[t] + 1)
          << "kill point " << k << ": thread " << t
          << " lost an acknowledged synced write";
      EXPECT_LE(prefix, acked[t] + 1)
          << "kill point " << k << ": thread " << t
          << " resurrected a write it never submitted";
    }
    db_.reset();
  }
}

TEST_F(CrashTest, ShardedKillPointsArePerShardPrefixConsistent) {
  // The sharded analogue of the group-commit sweep above: four writer
  // threads spray a 4-shard DB while a kill point lands after k write
  // ops — inside some shard's WAL append, mid-sync, or mid-flush (the
  // values are big enough that shards flush during the run). Each shard
  // has its own WAL and group-commit queue, so after crash + recovery the
  // PR 6 window applies *per (thread, shard)*: the recovered subsequence
  // of a thread's ops restricted to one shard is a hole-free prefix of
  // what the thread submitted to that shard, covering at least its last
  // acknowledged synced op there and never exceeding acks+1. A shard that
  // loses its unsynced tail must not punch holes in another shard's
  // recovered prefix (shards recover independently).
  constexpr int kThreads = 4;
  constexpr int kShards = 4;
  constexpr int kOps = 20;
  const std::string pad(500, 's');
  options_.num_shards = kShards;
  auto key_of = [](int t, int j) {
    return "t" + std::to_string(t) + "-" + std::to_string(100 + j);
  };
  auto value_of = [&](int t, int j) {
    return "v" + std::to_string(t) + "." + std::to_string(j) + pad;
  };
  auto shard_of = [&](int t, int j) {
    return static_cast<int>(ShardOfKey(Slice(key_of(t, j)), kShards));
  };
  // Op indices of thread t that route to shard s, in submission order.
  std::array<std::array<std::vector<int>, kShards>, kThreads> ops_on;
  for (int t = 0; t < kThreads; t++) {
    for (int j = 0; j < kOps; j++) {
      ops_on[t][shard_of(t, j)].push_back(j);
    }
  }

  std::array<int, kThreads> acked;
  std::array<std::array<int, kShards>, kThreads> durable;
  uint64_t total_ops = 0;
  auto run = [&](int64_t kill_at) {
    db_.reset();
    base_env_.reset(NewMemEnv());
    env_ = std::make_unique<FaultInjectionEnv>(base_env_.get());
    options_.env = env_.get();
    if (kill_at >= 0) {
      env_->ArmKillPoint(static_cast<uint64_t>(kill_at));
    }
    acked.fill(0);
    for (auto& d : durable) {
      d.fill(-1);
    }
    std::unique_ptr<DB> db;
    if (DB::Open(options_, "/db", &db).ok()) {
      db_ = std::move(db);
      std::vector<std::thread> threads;
      for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&, t] {
          WriteOptions wo;
          for (int j = 0; j < kOps; j++) {
            wo.sync = (j % 5 == 0);
            if (!db_->Put(wo, key_of(t, j), value_of(t, j)).ok()) {
              return;  // env is dead; every later op would fail too
            }
            acked[t] = j + 1;
            if (wo.sync) {
              // This sync covered shard_of(t,j)'s WAL only; the thread's
              // earlier ops there are durable with it.
              durable[t][shard_of(t, j)] = j;
            }
          }
        });
      }
      for (auto& th : threads) {
        th.join();
      }
    }
    total_ops = env_->write_ops();
  };

  run(-1);
  for (int t = 0; t < kThreads; t++) {
    ASSERT_EQ(acked[t], kOps);
  }
  // Big values on small buffers: every shard must have flushed at least
  // once, or the sweep would never kill anyone mid-flush.
  {
    auto* sharded = static_cast<ShardedDB*>(db_.get());
    for (int s = 0; s < kShards; s++) {
      ASSERT_GT(sharded->TEST_Shard(s)->GetStats().flushes, 0u)
          << "shard " << s << " never flushed; grow the values";
    }
  }
  ASSERT_GT(total_ops, 100u);

  const int sweep_end = std::min<int>(static_cast<int>(total_ops), 240);
  for (int k = 0; k < sweep_end; k += 2) {
    run(k);
    db_.reset();
    ASSERT_TRUE(env_->Crash().ok());
    Open();

    for (int t = 0; t < kThreads; t++) {
      for (int s = 0; s < kShards; s++) {
        const std::vector<int>& ops = ops_on[t][s];
        // Recovered prefix of this thread's ops on this shard.
        size_t prefix = 0;
        std::string value;
        while (prefix < ops.size()) {
          Status st = db_->Get({}, key_of(t, ops[prefix]), &value);
          ASSERT_TRUE(st.ok() || st.IsNotFound())
              << "k=" << k << " " << st.ToString();
          if (!st.ok()) {
            break;
          }
          ASSERT_EQ(value, value_of(t, ops[prefix])) << "k=" << k;
          prefix++;
        }
        // No holes within the shard: an op never surfaces without its
        // same-shard predecessors.
        for (size_t i = prefix + 1; i < ops.size(); i++) {
          ASSERT_TRUE(db_->Get({}, key_of(t, ops[i]), &value).IsNotFound())
              << "kill point " << k << ": thread " << t << " shard " << s
              << " lost op " << ops[prefix] << " but kept op " << ops[i];
        }
        // Window lower bound: acked synced ops on this shard survive,
        // independent of what other shards lost.
        size_t durable_count = 0;
        while (durable_count < ops.size() &&
               ops[durable_count] <= durable[t][s]) {
          durable_count++;
        }
        EXPECT_GE(prefix, durable_count)
            << "kill point " << k << ": thread " << t << " shard " << s
            << " lost an acknowledged synced write";
        // Window upper bound: ops the thread never submitted (index >
        // acked; the in-flight op at index acked may survive) stay gone.
        for (size_t i = 0; i < prefix; i++) {
          EXPECT_LE(ops[i], acked[t])
              << "kill point " << k << ": thread " << t << " shard " << s
              << " resurrected a write it never submitted";
        }
      }
    }
    db_.reset();
  }
}

}  // namespace
}  // namespace lsmlab
