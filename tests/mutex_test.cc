#include "util/mutex.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/thread_pool.h"

namespace lsmlab {
namespace {

TEST(MutexTest, LockUnlock) {
  Mutex mu;
  mu.Lock();
  EXPECT_TRUE(mu.HeldByCurrentThread());
  mu.Unlock();
}

TEST(MutexTest, ScopedLock) {
  Mutex mu;
  {
    MutexLock lock(&mu);
    EXPECT_TRUE(mu.HeldByCurrentThread());
  }
  // Released on scope exit: an uncontended TryLock must succeed.
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, TryLockFailsWhenContended) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> acquired{true};
  std::thread other([&] { acquired = mu.TryLock(); });
  other.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();
}

#ifndef NDEBUG
TEST(MutexTest, HeldByCurrentThreadTracksHolder) {
  Mutex mu;
  EXPECT_FALSE(mu.HeldByCurrentThread());
  mu.Lock();
  EXPECT_TRUE(mu.HeldByCurrentThread());
  // Another thread holding nothing must not appear as the holder.
  std::atomic<bool> other_saw_held{true};
  std::thread other([&] { other_saw_held = mu.HeldByCurrentThread(); });
  other.join();
  EXPECT_FALSE(other_saw_held);
  mu.Unlock();
  EXPECT_FALSE(mu.HeldByCurrentThread());
}

TEST(MutexDeathTest, AssertHeldAbortsWhenNotHeld) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu;
  EXPECT_DEATH(mu.AssertHeld(), "");
}

// ------------------------------------------------- Lock-rank validator --

TEST(LockRankTest, InOrderNestingIsClean) {
  Mutex db(LockRank::kDbMu);
  Mutex cache(LockRank::kTableCacheMu);
  MutexLock outer(&db);
  MutexLock inner(&cache);  // 10 -> 50: documented order, no abort
  EXPECT_EQ(HeldRankedLockCount(), 2u);
}

TEST(LockRankTest, HeldLockCountBookkeeping) {
  Mutex db(LockRank::kDbMu);
  Mutex unranked;
  EXPECT_EQ(HeldRankedLockCount(), 0u);
  db.Lock();
  EXPECT_EQ(HeldRankedLockCount(), 1u);
  unranked.Lock();  // unranked locks never enter the stack
  EXPECT_EQ(HeldRankedLockCount(), 1u);
  unranked.Unlock();
  db.Unlock();
  EXPECT_EQ(HeldRankedLockCount(), 0u);
}

TEST(LockRankTest, ReacquisitionAfterReleaseIsClean) {
  Mutex db(LockRank::kDbMu);
  Mutex cache(LockRank::kTableCacheMu);
  // Release-then-acquire in rank-violating textual order is fine: only
  // simultaneous holding counts.
  cache.Lock();
  cache.Unlock();
  db.Lock();
  db.Unlock();
  cache.Lock();
  cache.Unlock();
  EXPECT_EQ(HeldRankedLockCount(), 0u);
}

TEST(LockRankTest, CondVarWaitPreservesRankState) {
  // Wait() releases and reacquires its mutex; the reacquisition must not
  // trip the rank check against locks acquired by other threads meanwhile,
  // and the held stack must be intact afterwards.
  Mutex db(LockRank::kDbMu);
  CondVar cv(&db);
  bool ready = false;
  std::thread signaller([&] {
    MutexLock lock(&db);
    ready = true;
    cv.Signal();
  });
  {
    MutexLock lock(&db);
    while (!ready) {
      cv.Wait();
    }
    EXPECT_EQ(HeldRankedLockCount(), 1u);
    // Deeper-ranked acquisition still works after the reacquire.
    Mutex cache(LockRank::kTableCacheMu);
    MutexLock inner(&cache);
    EXPECT_EQ(HeldRankedLockCount(), 2u);
  }
  signaller.join();
  EXPECT_EQ(HeldRankedLockCount(), 0u);
}

TEST(LockRankDeathTest, InversionAbortsWithBothLockNames) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex db(LockRank::kDbMu);
  Mutex cache(LockRank::kTableCacheMu);
  EXPECT_DEATH(
      {
        MutexLock outer(&cache);  // rank 50 first...
        MutexLock inner(&db);     // ...then rank 10: inversion
      },
      "lock rank inversion.*DBImpl::mu_.*TableCache::mu_");
}

TEST(LockRankDeathTest, EqualRankAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Two same-rank locks can deadlock against a thread nesting them the
  // other way round, so equal rank is an inversion too.
  Mutex a(LockRank::kDbMu);
  Mutex b(LockRank::kDbMu);
  EXPECT_DEATH(
      {
        MutexLock outer(&a);
        MutexLock inner(&b);
      },
      "lock rank inversion.*DBImpl::mu_.*DBImpl::mu_");
}

TEST(LockRankTest, TryLockSkipsTheRankCheck) {
  // TryLock cannot deadlock, so out-of-rank try-acquisition is permitted
  // but still tracked.
  Mutex db(LockRank::kDbMu);
  Mutex cache(LockRank::kTableCacheMu);
  MutexLock outer(&cache);
  ASSERT_TRUE(db.TryLock());
  EXPECT_EQ(HeldRankedLockCount(), 2u);
  db.Unlock();
}
#else
TEST(MutexTest, AssertHeldIsNoOpInRelease) {
  // Release builds cannot track the holder; AssertHeld must not fire.
  Mutex mu;
  mu.AssertHeld();
  EXPECT_TRUE(mu.HeldByCurrentThread());
}
#endif

TEST(CondVarTest, SignalWakesWaiter) {
  Mutex mu;
  CondVar cv(&mu);
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) {
      cv.Wait();
    }
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.Signal();
  waiter.join();
}

TEST(CondVarTest, TimedWaitTimesOut) {
  Mutex mu;
  CondVar cv(&mu);
  MutexLock lock(&mu);
  const auto start = std::chrono::steady_clock::now();
  // Nobody signals: the wait must report a timeout, and the mutex must be
  // held again afterwards.
  bool timed_out = cv.TimedWait(std::chrono::microseconds(2000));
  while (!timed_out &&
         std::chrono::steady_clock::now() - start < std::chrono::seconds(5)) {
    timed_out = cv.TimedWait(std::chrono::microseconds(2000));  // spurious
  }
  EXPECT_TRUE(timed_out);
  EXPECT_TRUE(mu.HeldByCurrentThread());
}

TEST(CondVarTest, TimedWaitSeesSignal) {
  Mutex mu;
  CondVar cv(&mu);
  bool ready = false;
  std::thread signaller([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.Signal();
  });
  {
    MutexLock lock(&mu);
    while (!ready) {
      // Generous timeout: the signaller should beat it by orders of
      // magnitude; looping also absorbs spurious wakeups.
      if (cv.TimedWait(std::chrono::microseconds(10'000'000))) {
        break;
      }
    }
    EXPECT_TRUE(ready);
  }
  signaller.join();
}

TEST(ThreadPoolTest, RunsScheduledWork) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(pool.Schedule([&] { ran++; }));
  }
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedWork) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(pool.Schedule([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ran++;
    }));
  }
  // Work accepted before Shutdown() must complete, never be dropped.
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, ScheduleRejectedAfterShutdown) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::atomic<bool> ran{false};
  EXPECT_FALSE(pool.Schedule([&] { ran = true; }));
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Schedule([&] { ran++; }));
  pool.Shutdown();
  pool.Shutdown();  // second call must be a harmless no-op
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, ConcurrentShutdownBlocksUntilStopped) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(pool.Schedule([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      ran++;
    }));
  }
  // Every caller of Shutdown() — not just the first — must observe the
  // pool fully stopped when the call returns.
  std::vector<std::thread> shutters;
  for (int i = 0; i < 4; i++) {
    shutters.emplace_back([&] {
      pool.Shutdown();
      EXPECT_EQ(ran.load(), 20);
    });
  }
  for (auto& t : shutters) {
    t.join();
  }
}

TEST(ThreadPoolTest, RacingProducersDuringShutdown) {
  ThreadPool pool(2);
  std::atomic<int> accepted{0};
  std::atomic<int> ran{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; p++) {
    producers.emplace_back([&] {
      for (int i = 0; i < 200; i++) {
        if (pool.Schedule([&] { ran++; })) {
          accepted++;
        }
      }
    });
  }
  pool.Shutdown();
  for (auto& t : producers) {
    t.join();
  }
  // The invariant under race: everything accepted ran, everything rejected
  // did not. (Late Schedule() calls return false instead of enqueueing
  // work no worker will drain.)
  EXPECT_EQ(ran.load(), accepted.load());
}

TEST(ThreadPoolTest, DestructorShutsDown) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; i++) {
      ASSERT_TRUE(pool.Schedule([&] { ran++; }));
    }
  }
  EXPECT_EQ(ran.load(), 10);
}

}  // namespace
}  // namespace lsmlab
