// Group commit (src/core/db_write.cc): concurrent writers fold into
// leader-built groups with contiguous sequences, mixed sync/non-sync
// groups sync once, a leader error fails every member, and redundant
// value-log syncs are skipped. Run under -DLSMLAB_SANITIZE=thread (the
// tsan-obs CI leg) to prove the queue handoff and the unlocked WAL window
// are race-free.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/db.h"
#include "core/db_impl.h"
#include "core/write_batch.h"
#include "storage/env.h"
#include "util/coding.h"

namespace lsmlab {
namespace {

bool IsWalFile(const std::string& fname) {
  return fname.size() > 4 &&
         fname.compare(fname.size() - 4, 4, ".wal") == 0;
}

bool IsVlogFile(const std::string& fname) {
  return fname.size() > 5 &&
         fname.compare(fname.size() - 5, 5, ".vlog") == 0;
}

/// Env wrapper that gates WAL durability: Sync on .wal files blocks while
/// the gate is closed (parking a group-commit leader mid-commit, with mu_
/// released, so followers can pile up behind it deterministically), and
/// the next .wal Append can be armed to fail (exercising leader-error
/// propagation).
class WalGateEnv : public Env {
 public:
  explicit WalGateEnv(Env* base) : base_(base) {}

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    std::unique_ptr<WritableFile> file;
    Status s = base_->NewWritableFile(fname, &file);
    if (!s.ok()) {
      return s;
    }
    if (IsWalFile(fname)) {
      *result = std::make_unique<GatedWalFile>(this, std::move(file));
    } else if (IsVlogFile(fname)) {
      *result = std::make_unique<CountingVlogFile>(this, std::move(file));
    } else {
      *result = std::move(file);
    }
    return s;
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    return base_->NewRandomAccessFile(fname, result);
  }
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }

  void CloseSyncGate() {
    std::lock_guard<std::mutex> lock(mu_);
    gate_closed_ = true;
  }
  void OpenSyncGate() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      gate_closed_ = false;
    }
    cv_.notify_all();
  }
  int sync_waiters() {
    std::lock_guard<std::mutex> lock(mu_);
    return sync_waiters_;
  }
  void FailNextAppend() { fail_next_append_.store(true); }
  void FailNextSync() { fail_next_sync_.store(true); }

  int wal_appends() const { return wal_appends_.load(); }
  int wal_syncs() const { return wal_syncs_.load(); }
  /// File-level fsyncs of .vlog files (ValueLog::Sync(false) only
  /// flushes, which this deliberately does not count).
  int vlog_syncs() const { return vlog_syncs_.load(); }

 private:
  class GatedWalFile : public WritableFile {
   public:
    GatedWalFile(WalGateEnv* env, std::unique_ptr<WritableFile> base)
        : env_(env), base_(std::move(base)) {}

    Status Append(const Slice& data) override {
      if (env_->fail_next_append_.exchange(false)) {
        return Status::IOError("injected WAL append failure");
      }
      env_->wal_appends_.fetch_add(1);
      return base_->Append(data);
    }
    Status Flush() override { return base_->Flush(); }
    Status Sync() override {
      {
        std::unique_lock<std::mutex> lock(env_->mu_);
        env_->sync_waiters_++;
        env_->cv_.wait(lock, [this] { return !env_->gate_closed_; });
        env_->sync_waiters_--;
      }
      if (env_->fail_next_sync_.exchange(false)) {
        return Status::IOError("injected WAL sync failure");
      }
      env_->wal_syncs_.fetch_add(1);
      return base_->Sync();
    }
    Status Close() override { return base_->Close(); }

   private:
    WalGateEnv* env_;
    std::unique_ptr<WritableFile> base_;
  };

  class CountingVlogFile : public WritableFile {
   public:
    CountingVlogFile(WalGateEnv* env, std::unique_ptr<WritableFile> base)
        : env_(env), base_(std::move(base)) {}

    Status Append(const Slice& data) override { return base_->Append(data); }
    Status Flush() override { return base_->Flush(); }
    Status Sync() override {
      env_->vlog_syncs_.fetch_add(1);
      return base_->Sync();
    }
    Status Close() override { return base_->Close(); }

   private:
    WalGateEnv* env_;
    std::unique_ptr<WritableFile> base_;
  };

  Env* const base_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool gate_closed_ = false;
  int sync_waiters_ = 0;
  std::atomic<bool> fail_next_append_{false};
  std::atomic<bool> fail_next_sync_{false};
  std::atomic<int> wal_appends_{0};
  std::atomic<int> wal_syncs_{0};
  std::atomic<int> vlog_syncs_{0};
};

std::string TestKey(int writer, int n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "w%d_%06d", writer, n);
  return buf;
}

// Waits (bounded) until `pred` holds; the staging below depends on other
// threads reaching known parked states, not on timing-sensitive sleeps.
template <typename Pred>
bool WaitFor(const Pred& pred, int timeout_ms = 10000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) {
      return false;
    }
    std::this_thread::yield();
  }
  return true;
}

// N concurrent writers: every write acknowledged, each with a distinct
// sequence, and the final sequence accounts for exactly N*K entries (no
// gaps, no double-assignment between racing leaders).
TEST(WriteGroupTest, ConcurrentWritersGetContiguousSequences) {
  std::unique_ptr<Env> env(NewMemEnv());
  Options options;
  options.env = env.get();
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/wg_seq", &db).ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        WriteOptions wo;
        wo.sync = (i % 7 == 0);  // mixed sync/non-sync traffic
        if (!db->Put(wo, TestKey(t, i), TestKey(t, i) + "_v").ok()) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(errors.load(), 0);

  // Sequences are assigned per entry from last_sequence; N*K acknowledged
  // single-entry batches must land exactly N*K sequence numbers.
  const Snapshot* snap = db->GetSnapshot();
  EXPECT_EQ(snap->sequence(), static_cast<uint64_t>(kThreads * kPerThread));
  db->ReleaseSnapshot(snap);

  std::string value;
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPerThread; i++) {
      ASSERT_TRUE(db->Get({}, TestKey(t, i), &value).ok());
      ASSERT_EQ(value, TestKey(t, i) + "_v");
    }
  }

  // Ticker reconciliation: every write was a leader or a follower, and
  // every group either synced or was counted as skipped.
  const DBStats stats = db->GetStats();
  EXPECT_EQ(stats.writes, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.group_commits + stats.group_followers, stats.writes);
  EXPECT_EQ(stats.wal_syncs + stats.wal_sync_skipped, stats.group_commits);
}

// Stages a deterministic group: writer X leads alone and parks inside the
// gated WAL sync (mu_ released); writers A (sync), B, C (non-sync) queue
// behind it. Opening the gate lets X finish; A then leads {A,B,C} as one
// group that appends once and — because one member wants durability —
// syncs exactly once for all three.
TEST(WriteGroupTest, MixedSyncGroupSyncsExactlyOnce) {
  std::unique_ptr<Env> base(NewMemEnv());
  WalGateEnv gate(base.get());
  Options options;
  options.env = &gate;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/wg_mixed", &db).ok());
  DBImpl* impl = static_cast<DBImpl*>(db.get());

  gate.CloseSyncGate();
  WriteOptions sync_wo;
  sync_wo.sync = true;

  std::thread x([&] { EXPECT_TRUE(db->Put(sync_wo, "x", "xv").ok()); });
  // X is leader and parked inside Sync with the DB mutex released.
  ASSERT_TRUE(WaitFor([&] { return gate.sync_waiters() == 1; }));

  std::thread a([&] { EXPECT_TRUE(db->Put(sync_wo, "a", "av").ok()); });
  std::thread b([&] { EXPECT_TRUE(db->Put({}, "b", "bv").ok()); });
  std::thread c([&] { EXPECT_TRUE(db->Put({}, "c", "cv").ok()); });
  // All three are queued behind the parked leader.
  ASSERT_TRUE(WaitFor([&] { return impl->TEST_WriteQueueLength() == 4; }));

  gate.OpenSyncGate();
  x.join();
  a.join();
  b.join();
  c.join();

  // Two groups: {X} and {A,B,C}. Each appended one record (the log writer
  // frames a record as separate header/payload Appends, so count logical
  // appends from the ticker) and each synced once at the file level (X
  // asked; A asked on behalf of its group).
  std::string dump;
  ASSERT_TRUE(db->GetProperty("lsmlab.stats", &dump));
  EXPECT_NE(dump.find("ticker.wal.appends=2\n"), std::string::npos) << dump;
  EXPECT_EQ(gate.wal_syncs(), 2);
  const DBStats stats = db->GetStats();
  EXPECT_EQ(stats.group_commits, 2u);
  EXPECT_EQ(stats.group_followers, 2u);
  EXPECT_EQ(stats.wal_syncs, 2u);
  EXPECT_EQ(stats.wal_sync_skipped, 0u);

  std::string value;
  for (const char* key : {"x", "a", "b", "c"}) {
    EXPECT_TRUE(db->Get({}, key, &value).ok()) << key;
  }
}

// Same staging, but the group's WAL append is armed to fail: the leader's
// error must fail every follower in the group, and none of the group's
// writes may become visible.
TEST(WriteGroupTest, LeaderErrorFailsEveryFollower) {
  std::unique_ptr<Env> base(NewMemEnv());
  WalGateEnv gate(base.get());
  Options options;
  options.env = &gate;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/wg_err", &db).ok());
  DBImpl* impl = static_cast<DBImpl*>(db.get());

  gate.CloseSyncGate();
  WriteOptions sync_wo;
  sync_wo.sync = true;

  Status sx, sa, sb, sc;
  std::thread x([&] { sx = db->Put(sync_wo, "x", "xv"); });
  ASSERT_TRUE(WaitFor([&] { return gate.sync_waiters() == 1; }));

  std::thread a([&] { sa = db->Put(sync_wo, "a", "av"); });
  std::thread b([&] { sb = db->Put({}, "b", "bv"); });
  std::thread c([&] { sc = db->Put({}, "c", "cv"); });
  ASSERT_TRUE(WaitFor([&] { return impl->TEST_WriteQueueLength() == 4; }));

  gate.FailNextAppend();  // hits the {A,B,C} group's single append
  gate.OpenSyncGate();
  x.join();
  a.join();
  b.join();
  c.join();

  EXPECT_TRUE(sx.ok());
  EXPECT_FALSE(sa.ok());
  EXPECT_FALSE(sb.ok());
  EXPECT_FALSE(sc.ok());

  std::string value;
  EXPECT_TRUE(db->Get({}, "x", &value).ok());
  EXPECT_TRUE(db->Get({}, "a", &value).IsNotFound());
  EXPECT_TRUE(db->Get({}, "b", &value).IsNotFound());
  EXPECT_TRUE(db->Get({}, "c", &value).IsNotFound());
}

// Regression for the redundant value-log sync: with separation enabled,
// a batch whose values all stay inline must not sync (or even touch) the
// value log; only batches that actually append to it pay the sync.
TEST(WriteGroupTest, VlogSyncSkippedWhenNothingSeparated) {
  std::unique_ptr<Env> env(NewMemEnv());
  Options options;
  options.env = env.get();
  options.value_separation_threshold = 64;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/wg_vlog", &db).ok());

  WriteOptions sync_wo;
  sync_wo.sync = true;
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(db->Put(sync_wo, TestKey(0, i), "small").ok());
  }
  EXPECT_EQ(db->GetStats().vlog_syncs, 0u);  // nothing separated, no syncs

  const std::string big(128, 'v');
  ASSERT_TRUE(db->Put(sync_wo, "big", big).ok());
  EXPECT_EQ(db->GetStats().vlog_syncs, 1u);

  std::string value;
  ASSERT_TRUE(db->Get({}, "big", &value).ok());
  EXPECT_EQ(value, big);
  ASSERT_TRUE(db->Get({}, TestKey(0, 3), &value).ok());
  EXPECT_EQ(value, "small");
}

// Regression for the cross-group WiscKey durability hole: a non-sync
// group appends to the value log without fsyncing it; a later group that
// separates NOTHING but fsyncs the WAL would make the earlier group's
// pointer records durable ahead of their values. The WAL fsync must be
// preceded by a value-log fsync whenever unsynced vlog bytes exist, no
// matter which group appended them.
TEST(WriteGroupTest, CrossGroupVlogDurabilityOrder) {
  std::unique_ptr<Env> base(NewMemEnv());
  WalGateEnv gate(base.get());
  Options options;
  options.env = &gate;
  options.value_separation_threshold = 64;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/wg_vlog_order", &db).ok());

  // Non-sync separated write: value appended to the vlog, flushed but not
  // fsynced; its pointer record sits unsynced in the WAL.
  const std::string big(128, 'v');
  ASSERT_TRUE(db->Put({}, "big", big).ok());
  EXPECT_EQ(gate.vlog_syncs(), 0);

  // Sync write that separates nothing: its WAL fsync makes the earlier
  // pointer durable, so it must fsync the value log first.
  WriteOptions sync_wo;
  sync_wo.sync = true;
  ASSERT_TRUE(db->Put(sync_wo, "small", "inline").ok());
  EXPECT_EQ(gate.vlog_syncs(), 1);
  EXPECT_EQ(gate.wal_syncs(), 1);

  // Once fsynced, further sync writes that separate nothing have no
  // unsynced vlog bytes to cover — no redundant fsyncs.
  ASSERT_TRUE(db->Put(sync_wo, "small2", "inline").ok());
  EXPECT_EQ(gate.vlog_syncs(), 1);

  std::string value;
  ASSERT_TRUE(db->Get({}, "big", &value).ok());
  EXPECT_EQ(value, big);
}

// A failure AFTER the group's WAL record landed (here: the fsync) leaves
// the log holding writes every caller was told failed, with last_sequence
// not advanced. The DB must go sticky-failed: a later commit would reuse
// the group's sequence numbers and recovery would resurrect it.
TEST(WriteGroupTest, PostAppendFailurePoisonsDb) {
  std::unique_ptr<Env> base(NewMemEnv());
  WalGateEnv gate(base.get());
  Options options;
  options.env = &gate;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/wg_poison", &db).ok());

  WriteOptions sync_wo;
  sync_wo.sync = true;
  ASSERT_TRUE(db->Put(sync_wo, "before", "v").ok());

  gate.FailNextSync();
  EXPECT_FALSE(db->Put(sync_wo, "poisoned", "v").ok());

  // Sticky: the record for "poisoned" is in the WAL but unacknowledged;
  // accepting this write would commit sequence numbers that diverge from
  // the log.
  EXPECT_FALSE(db->Put({}, "after", "v").ok());

  std::string value;
  EXPECT_TRUE(db->Get({}, "before", &value).ok());
  EXPECT_TRUE(db->Get({}, "poisoned", &value).IsNotFound());
  EXPECT_TRUE(db->Get({}, "after", &value).IsNotFound());
}

// WriteOptions::sync keeps its durable-at-ack guarantee in the relaxed
// modes: under kSyncIntervalMs with an interval far longer than the test,
// non-sync writes ride unsynced but a sync write (a commit marker, say)
// still forces the fsync for its group.
TEST(WriteGroupTest, SyncWriteForcesSyncInRelaxedModes) {
  std::unique_ptr<Env> base(NewMemEnv());
  WalGateEnv gate(base.get());
  Options options;
  options.env = &gate;
  options.wal_sync_mode = WalSyncMode::kSyncIntervalMs;
  options.wal_sync_interval_ms = 60 * 60 * 1000;  // never fires here
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/wg_relaxed", &db).ok());

  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(db->Put({}, TestKey(0, i), "v").ok());
  }
  EXPECT_EQ(gate.wal_syncs(), 0);  // interval not reached, none forced

  WriteOptions sync_wo;
  sync_wo.sync = true;
  ASSERT_TRUE(db->Put(sync_wo, "marker", "v").ok());
  EXPECT_EQ(gate.wal_syncs(), 1);

  ASSERT_TRUE(db->Put({}, "tail", "v").ok());
  EXPECT_EQ(gate.wal_syncs(), 1);

  const DBStats stats = db->GetStats();
  EXPECT_EQ(stats.wal_syncs, 1u);
  EXPECT_EQ(stats.wal_sync_skipped + stats.wal_syncs, stats.group_commits);
}

// Hammers group commit against WAL rotation: a small write buffer and the
// background pipeline force memtable freezes (which rotate the WAL) while
// leaders are mid-commit with mu_ released. log_busy_ must serialize the
// two; TSan verifies the handoff, the assertions verify no write is lost.
TEST(WriteGroupTest, GroupCommitRacesWalRotation) {
  std::unique_ptr<Env> env(NewMemEnv());
  Options options;
  options.env = env.get();
  options.background_compaction = true;
  options.write_buffer_size = 16 << 10;
  options.max_file_size = 16 << 10;
  options.level0_compaction_trigger = 2;
  options.size_ratio = 4;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/wg_rotate", &db).ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 300;
  const std::string filler(100, 'r');
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        WriteOptions wo;
        wo.sync = (i % 13 == 0);
        if (!db->Put(wo, TestKey(t, i), filler).ok()) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(errors.load(), 0);

  std::string value;
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPerThread; i++) {
      ASSERT_TRUE(db->Get({}, TestKey(t, i), &value).ok())
          << TestKey(t, i);
      ASSERT_EQ(value, filler);
    }
  }
  const DBStats stats = db->GetStats();
  EXPECT_EQ(stats.writes, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.group_commits + stats.group_followers, stats.writes);
}

// ------------------------------------------------ Parallel group apply --

// Stages one deterministic parallel group: X leads alone (serial apply,
// writer_count == 1) and parks in the gated sync; A, B, C queue behind it
// with multi-entry batches. Opening the gate lets A lead {A,B,C}, which
// must apply in parallel: each member inserts its own batch from its own
// thread at a pre-assigned sequence offset, and the group's sequences stay
// contiguous across members in queue order.
TEST(WriteGroupTest, ParallelApplyStagedGroup) {
  std::unique_ptr<Env> base(NewMemEnv());
  WalGateEnv gate(base.get());
  Options options;
  options.env = &gate;
  options.allow_concurrent_memtable_write = true;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/wg_par", &db).ok());
  DBImpl* impl = static_cast<DBImpl*>(db.get());

  gate.CloseSyncGate();
  WriteOptions sync_wo;
  sync_wo.sync = true;

  std::thread x([&] { EXPECT_TRUE(db->Put(sync_wo, "x", "xv").ok()); });
  ASSERT_TRUE(WaitFor([&] { return gate.sync_waiters() == 1; }));

  // Member batches with distinct entry counts (2, 3, 4) so contiguity of
  // the pre-assigned offsets is actually exercised, not just count == 1.
  auto writer = [&](int id, int entries, Status* out) {
    WriteBatch batch;
    for (int i = 0; i < entries; i++) {
      batch.Put(TestKey(id, i), TestKey(id, i) + "_v");
    }
    *out = db->Write({}, &batch);
  };
  Status sa, sb, sc;
  std::thread a([&] { writer(1, 2, &sa); });
  ASSERT_TRUE(WaitFor([&] { return impl->TEST_WriteQueueLength() == 2; }));
  std::thread b([&] { writer(2, 3, &sb); });
  ASSERT_TRUE(WaitFor([&] { return impl->TEST_WriteQueueLength() == 3; }));
  std::thread c([&] { writer(3, 4, &sc); });
  ASSERT_TRUE(WaitFor([&] { return impl->TEST_WriteQueueLength() == 4; }));

  gate.OpenSyncGate();
  x.join();
  a.join();
  b.join();
  c.join();
  EXPECT_TRUE(sa.ok());
  EXPECT_TRUE(sb.ok());
  EXPECT_TRUE(sc.ok());

  // {X} is a single-writer group (serial apply); {A,B,C} must have gone
  // parallel. Applies of both flavors reconcile exactly with the number
  // of groups committed.
  const DBStats stats = db->GetStats();
  EXPECT_EQ(stats.group_commits, 2u);
  EXPECT_EQ(stats.parallel_applies, 1u);
  EXPECT_EQ(stats.serial_applies, 1u);
  EXPECT_EQ(stats.parallel_applies + stats.serial_applies,
            stats.group_commits);

  // 1 (x) + 2 + 3 + 4 entries, no gaps and no double assignment.
  const Snapshot* snap = db->GetSnapshot();
  EXPECT_EQ(snap->sequence(), 10u);
  db->ReleaseSnapshot(snap);

  std::string value;
  EXPECT_TRUE(db->Get({}, "x", &value).ok());
  const int counts[] = {0, 2, 3, 4};
  for (int id = 1; id <= 3; id++) {
    for (int i = 0; i < counts[id]; i++) {
      ASSERT_TRUE(db->Get({}, TestKey(id, i), &value).ok()) << TestKey(id, i);
      ASSERT_EQ(value, TestKey(id, i) + "_v");
    }
  }
}

// The load-bearing hammer: many writers with multi-entry batches and the
// parallel path enabled must still assign exactly N*K*E sequences and lose
// nothing. Run under TSan (tsan-obs leg) this is the proof that the
// unlocked concurrent inserts and the leader/follower apply handshake are
// race-free.
TEST(WriteGroupTest, ParallelApplyContiguousSequencesUnderLoad) {
  std::unique_ptr<Env> env(NewMemEnv());
  Options options;
  options.env = env.get();
  options.allow_concurrent_memtable_write = true;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/wg_par_load", &db).ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 150;
  constexpr int kEntriesPerBatch = 3;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        WriteBatch batch;
        for (int e = 0; e < kEntriesPerBatch; e++) {
          batch.Put(TestKey(t, i * kEntriesPerBatch + e), "v");
        }
        WriteOptions wo;
        wo.sync = (i % 7 == 0);
        if (!db->Write(wo, &batch).ok()) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(errors.load(), 0);

  const Snapshot* snap = db->GetSnapshot();
  EXPECT_EQ(snap->sequence(), static_cast<uint64_t>(kThreads * kPerThread *
                                                    kEntriesPerBatch));
  db->ReleaseSnapshot(snap);

  std::string value;
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kPerThread * kEntriesPerBatch; i++) {
      ASSERT_TRUE(db->Get({}, TestKey(t, i), &value).ok()) << TestKey(t, i);
    }
  }

  // Every committed group applied exactly once, serially or in parallel.
  const DBStats stats = db->GetStats();
  EXPECT_EQ(stats.writes, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.group_commits + stats.group_followers, stats.writes);
  EXPECT_EQ(stats.parallel_applies + stats.serial_applies,
            stats.group_commits);
}

// A group becomes visible atomically: last_sequence is published once per
// group, after every member's inserts landed. Readers pin a snapshot and
// probe all entries of one batch — they must see all of them or none,
// never a prefix of a batch that is still being applied.
TEST(WriteGroupTest, NoPartialGroupVisibilityMidApply) {
  std::unique_ptr<Env> env(NewMemEnv());
  Options options;
  options.env = env.get();
  options.allow_concurrent_memtable_write = true;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/wg_par_vis", &db).ok());

  constexpr int kWriters = 4;
  constexpr int kReaders = 3;
  constexpr int kBatches = 150;
  constexpr int kEntriesPerBatch = 4;
  auto batch_key = [](int writer, int batch, int entry) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "t%d_b%06d_k%d", writer, batch, entry);
    return std::string(buf);
  };

  // published[t] = writer t has been acknowledged for batches [0, n).
  std::atomic<int> published[kWriters];
  for (auto& p : published) p.store(0);
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; t++) {
    threads.emplace_back([&, t] {
      for (int bnum = 0; bnum < kBatches; bnum++) {
        WriteBatch batch;
        for (int e = 0; e < kEntriesPerBatch; e++) {
          batch.Put(batch_key(t, bnum, e), "v");
        }
        ASSERT_TRUE(db->Write({}, &batch).ok());
        published[t].store(bnum + 1, std::memory_order_release);
      }
    });
  }
  for (int r = 0; r < kReaders; r++) {
    threads.emplace_back([&, r] {
      uint64_t salt = 0x9e3779b97f4a7c15ull * (r + 1);
      while (!done.load(std::memory_order_acquire)) {
        salt = salt * 6364136223846793005ull + 1442695040888963407ull;
        const int t = static_cast<int>((salt >> 33) % kWriters);
        // Probe the batch right at the frontier: it may be mid-apply.
        const int bnum = published[t].load(std::memory_order_acquire);
        if (bnum >= kBatches) {
          continue;
        }
        const Snapshot* snap = db->GetSnapshot();
        ReadOptions ro;
        ro.snapshot = snap;
        int found = 0;
        std::string value;
        for (int e = 0; e < kEntriesPerBatch; e++) {
          if (db->Get(ro, batch_key(t, bnum, e), &value).ok()) {
            found++;
          }
        }
        db->ReleaseSnapshot(snap);
        if (found != 0 && found != kEntriesPerBatch) {
          violations.fetch_add(1);
        }
      }
    });
  }
  for (int t = 0; t < kWriters; t++) threads[t].join();
  done.store(true, std::memory_order_release);
  for (int r = 0; r < kReaders; r++) threads[kWriters + r].join();

  EXPECT_EQ(violations.load(), 0);
  const DBStats stats = db->GetStats();
  EXPECT_EQ(stats.parallel_applies + stats.serial_applies,
            stats.group_commits);
}

// A follower whose batch fails to apply (here: a corrupted count, caught
// by Iterate during the parallel insert) must fail every member of the
// group, and — because the group's WAL record is already durable and the
// memtable may hold a partial group above last_sequence — poison the DB
// for all subsequent writes.
TEST(WriteGroupTest, FollowerInsertFailurePoisonsDb) {
  std::unique_ptr<Env> base(NewMemEnv());
  WalGateEnv gate(base.get());
  Options options;
  options.env = &gate;
  options.allow_concurrent_memtable_write = true;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, "/wg_par_poison", &db).ok());
  DBImpl* impl = static_cast<DBImpl*>(db.get());

  ASSERT_TRUE(db->Put({}, "before", "bv").ok());

  gate.CloseSyncGate();
  WriteOptions sync_wo;
  sync_wo.sync = true;

  Status sx, sa, sb, sc;
  std::thread x([&] { sx = db->Put(sync_wo, "x", "xv"); });
  ASSERT_TRUE(WaitFor([&] { return gate.sync_waiters() == 1; }));

  std::thread a([&] { sa = db->Put({}, "a", "av"); });
  ASSERT_TRUE(WaitFor([&] { return impl->TEST_WriteQueueLength() == 2; }));
  std::thread b([&] {
    // One real entry, but a count claiming two: Iterate reports
    // Corruption from B's own apply thread mid-parallel-group.
    WriteBatch bad;
    bad.Put("bkey", "bv");
    std::string rep(bad.Contents().data(), bad.Contents().size());
    EncodeFixed32(&rep[8], 2);
    bad.SetContentsFrom(rep);
    sb = db->Write({}, &bad);
  });
  ASSERT_TRUE(WaitFor([&] { return impl->TEST_WriteQueueLength() == 3; }));
  std::thread c([&] { sc = db->Put({}, "c", "cv"); });
  ASSERT_TRUE(WaitFor([&] { return impl->TEST_WriteQueueLength() == 4; }));

  gate.OpenSyncGate();
  x.join();
  a.join();
  b.join();
  c.join();

  EXPECT_TRUE(sx.ok());
  EXPECT_FALSE(sa.ok());
  EXPECT_FALSE(sb.ok());
  EXPECT_FALSE(sc.ok());

  // Sticky: the WAL holds a record the memtable only partially reflects,
  // so no later write may be acknowledged.
  EXPECT_FALSE(db->Put({}, "after", "av").ok());

  // Nothing from the failed group is visible; earlier data still is.
  std::string value;
  EXPECT_TRUE(db->Get({}, "before", &value).ok());
  EXPECT_TRUE(db->Get({}, "x", &value).ok());
  for (const char* key : {"a", "bkey", "c", "after"}) {
    EXPECT_TRUE(db->Get({}, key, &value).IsNotFound()) << key;
  }
}

}  // namespace
}  // namespace lsmlab
