#include "vlog/value_log.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/db.h"
#include "storage/env.h"
#include "workload/keygen.h"
#include "workload/workload.h"

namespace lsmlab {
namespace {

// ------------------------------------------------------ ValueLog (unit) --

class ValueLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_.reset(NewMemEnv());
    vlog_ = std::make_unique<ValueLog>(env_.get(), "/vlog", 4 << 10);
    ASSERT_TRUE(vlog_->Open().ok());
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<ValueLog> vlog_;
};

TEST_F(ValueLogTest, AddGetRoundtrip) {
  std::string p1, p2;
  ASSERT_TRUE(vlog_->Add("hello", &p1).ok());
  ASSERT_TRUE(vlog_->Add(std::string(1000, 'x'), &p2).ok());
  std::string v;
  ASSERT_TRUE(vlog_->Get(Slice(p1), &v).ok());
  EXPECT_EQ(v, "hello");
  ASSERT_TRUE(vlog_->Get(Slice(p2), &v).ok());
  EXPECT_EQ(v, std::string(1000, 'x'));
}

TEST_F(ValueLogTest, RotatesAtSizeLimit) {
  std::string p;
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(vlog_->Add(std::string(1 << 10, 'a' + i % 26), &p).ok());
  }
  EXPECT_GT(vlog_->NumFiles(), 2u);
  // Old records remain readable after rotation.
  std::string first_pointer;
  {
    ValueLog fresh(env_.get(), "/vlog2", 1 << 10);
    ASSERT_TRUE(fresh.Open().ok());
    ASSERT_TRUE(fresh.Add("early", &first_pointer).ok());
    std::string filler;
    for (int i = 0; i < 10; i++) {
      ASSERT_TRUE(fresh.Add(std::string(2000, 'z'), &filler).ok());
    }
    std::string v;
    ASSERT_TRUE(fresh.Get(Slice(first_pointer), &v).ok());
    EXPECT_EQ(v, "early");
  }
}

TEST_F(ValueLogTest, SurvivesReopen) {
  std::string p;
  ASSERT_TRUE(vlog_->Add("durable", &p).ok());
  vlog_.reset();
  vlog_ = std::make_unique<ValueLog>(env_.get(), "/vlog", 4 << 10);
  ASSERT_TRUE(vlog_->Open().ok());
  std::string v;
  ASSERT_TRUE(vlog_->Get(Slice(p), &v).ok());
  EXPECT_EQ(v, "durable");
  // New adds go to a fresh file, never clobbering old data.
  std::string p2;
  ASSERT_TRUE(vlog_->Add("fresh", &p2).ok());
  ASSERT_TRUE(vlog_->Get(Slice(p), &v).ok());
  EXPECT_EQ(v, "durable");
}

TEST_F(ValueLogTest, DetectsCorruption) {
  std::string p;
  ASSERT_TRUE(vlog_->Add("precious", &p).ok());
  // Flip a byte in the current log file.
  std::string name;
  {
    std::vector<std::string> children;
    ASSERT_TRUE(env_->GetChildren("/vlog", &children).ok());
    ASSERT_FALSE(children.empty());
    name = "/vlog/" + children[0];
  }
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_.get(), name, &data).ok());
  data[data.size() - 2] ^= 0x20;
  ASSERT_TRUE(WriteStringToFile(env_.get(), data, name).ok());

  ValueLog reopened(env_.get(), "/vlog", 4 << 10);
  ASSERT_TRUE(reopened.Open().ok());
  std::string v;
  EXPECT_TRUE(reopened.Get(Slice(p), &v).IsCorruption());
}

TEST_F(ValueLogTest, MalformedPointerRejected) {
  std::string v;
  EXPECT_FALSE(vlog_->Get("", &v).ok());
  EXPECT_FALSE(vlog_->Get("\x01", &v).ok());
}

TEST_F(ValueLogTest, DeleteFilesSkipsCurrent) {
  std::string p;
  ASSERT_TRUE(vlog_->Add("keep", &p).ok());
  std::vector<uint64_t> all;
  all.push_back(vlog_->current_file_number());
  ASSERT_TRUE(vlog_->DeleteFiles(all).ok());
  std::string v;
  EXPECT_TRUE(vlog_->Get(Slice(p), &v).ok());  // still readable
}

// -------------------------------------------------- DB with separation --

class KvSeparationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_.reset(NewMemEnv());
    options_.env = env_.get();
    options_.write_buffer_size = 16 << 10;
    options_.max_file_size = 16 << 10;
    options_.value_separation_threshold = 128;
    options_.max_vlog_file_bytes = 32 << 10;
    Open();
  }

  void Open() { ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok()); }
  void Reopen() {
    db_.reset();
    Open();
  }

  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(KvSeparationTest, SmallAndLargeValuesRoundtrip) {
  const std::string small = "tiny";
  const std::string large(4096, 'L');
  ASSERT_TRUE(db_->Put({}, "small", small).ok());
  ASSERT_TRUE(db_->Put({}, "large", large).ok());
  std::string v;
  ASSERT_TRUE(db_->Get({}, "small", &v).ok());
  EXPECT_EQ(v, small);
  ASSERT_TRUE(db_->Get({}, "large", &v).ok());
  EXPECT_EQ(v, large);
  DBStats stats = db_->GetStats();
  EXPECT_GE(stats.separated_reads, 1u);
  EXPECT_GT(stats.value_log_bytes, 4000u);
}

TEST_F(KvSeparationTest, LargeValuesSurviveFlushCompactReopen) {
  const int n = 300;
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(
        db_->Put({}, EncodeKey(i), ValueForKey(EncodeKey(i), 1024)).ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  Reopen();
  std::string v;
  for (int i = 0; i < n; i += 7) {
    ASSERT_TRUE(db_->Get({}, EncodeKey(i), &v).ok()) << i;
    EXPECT_EQ(v, ValueForKey(EncodeKey(i), 1024));
  }
}

TEST_F(KvSeparationTest, IteratorAndScanResolvePointers) {
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(
        db_->Put({}, EncodeKey(i), ValueForKey(EncodeKey(i), 512)).ok());
  }
  std::unique_ptr<Iterator> it(db_->NewIterator({}));
  int count = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next(), count++) {
    EXPECT_EQ(it->value().ToString(),
              ValueForKey(it->key().ToString(), 512));
  }
  EXPECT_EQ(count, 50);

  std::vector<std::pair<std::string, std::string>> results;
  ASSERT_TRUE(db_->Scan({}, EncodeKey(10), EncodeKey(19), 100, &results).ok());
  ASSERT_EQ(results.size(), 10u);
  for (const auto& [k, v] : results) {
    EXPECT_EQ(v, ValueForKey(k, 512));
  }
}

TEST_F(KvSeparationTest, CompactionMovesPointersNotValues) {
  // With separation, compaction write volume must be tiny relative to the
  // payload (the WiscKey headline).
  const int n = 500;
  const size_t value_size = 2048;
  for (int i = 0; i < n; i++) {
    ASSERT_TRUE(
        db_->Put({}, EncodeKey(i), ValueForKey(EncodeKey(i), value_size))
            .ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());
  DBStats stats = db_->GetStats();
  // Tree bytes hold only keys+pointers: far below the ~1 MB of payload.
  EXPECT_LT(stats.total_bytes, n * 256);
  EXPECT_GT(stats.value_log_bytes, n * value_size);
}

TEST_F(KvSeparationTest, GarbageCollectionReclaimsDeadValues) {
  const int n = 200;
  for (int round = 0; round < 4; round++) {
    for (int i = 0; i < n; i++) {
      ASSERT_TRUE(db_->Put({}, EncodeKey(i),
                           ValueForKey(EncodeKey(i * 1000 + round), 1024))
                      .ok());
    }
  }
  const uint64_t before = db_->GetStats().value_log_bytes;
  ASSERT_TRUE(db_->GarbageCollectValues().ok());
  const uint64_t after = db_->GetStats().value_log_bytes;
  EXPECT_LT(after, before / 2);  // 3 of 4 rounds were garbage

  // All latest values still readable.
  std::string v;
  for (int i = 0; i < n; i += 11) {
    ASSERT_TRUE(db_->Get({}, EncodeKey(i), &v).ok());
    EXPECT_EQ(v, ValueForKey(EncodeKey(i * 1000 + 3), 1024));
  }
}

TEST_F(KvSeparationTest, GcRefusedWithLiveSnapshot) {
  ASSERT_TRUE(db_->Put({}, "k", std::string(1024, 'v')).ok());
  const Snapshot* snap = db_->GetSnapshot();
  EXPECT_TRUE(db_->GarbageCollectValues().IsInvalidArgument());
  db_->ReleaseSnapshot(snap);
}

TEST_F(KvSeparationTest, GcNotSupportedWithoutSeparation) {
  Options plain;
  plain.env = env_.get();
  std::unique_ptr<DB> db2;
  ASSERT_TRUE(DB::Open(plain, "/plain", &db2).ok());
  EXPECT_TRUE(db2->GarbageCollectValues().IsNotSupported());
}

TEST_F(KvSeparationTest, DeletesWorkAcrossSeparation) {
  ASSERT_TRUE(db_->Put({}, "k", std::string(1024, 'v')).ok());
  ASSERT_TRUE(db_->Delete({}, "k").ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  std::string v;
  EXPECT_TRUE(db_->Get({}, "k", &v).IsNotFound());
}

TEST_F(KvSeparationTest, WalRecoveryOfPointers) {
  // Values written but not flushed: WAL carries pointers; the vlog carries
  // payloads; recovery reunites them.
  const std::string large(2000, 'R');
  ASSERT_TRUE(db_->Put({}, "unflushed", large).ok());
  Reopen();
  std::string v;
  ASSERT_TRUE(db_->Get({}, "unflushed", &v).ok());
  EXPECT_EQ(v, large);
}

}  // namespace
}  // namespace lsmlab
