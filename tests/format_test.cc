#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "format/block.h"
#include "format/block_builder.h"
#include "format/format.h"
#include "format/sstable_builder.h"
#include "format/sstable_reader.h"
#include "format/two_level_iterator.h"
#include "filter/filter_policy.h"
#include "storage/env.h"
#include "util/coding.h"
#include "util/hash.h"
#include "util/random.h"

namespace lsmlab {
namespace {

std::string Key(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

// ----------------------------------------------------------------- Block --

class BlockTest : public ::testing::Test {
 protected:
  BlockTest() { opts_.block_restart_interval = 4; }

  std::unique_ptr<Block> Build(const std::map<std::string, std::string>& kv) {
    BlockBuilder builder(&opts_);
    for (const auto& [k, v] : kv) {
      builder.Add(k, v);
    }
    Slice raw = builder.Finish();
    BlockContents contents;
    contents.owned = raw.ToString();
    contents.data = Slice(contents.owned);
    contents.heap_allocated = true;
    return std::make_unique<Block>(std::move(contents));
  }

  TableOptions opts_;
};

TEST_F(BlockTest, IterateAll) {
  std::map<std::string, std::string> kv;
  for (int i = 0; i < 100; i++) {
    kv[Key(i)] = "value" + std::to_string(i);
  }
  auto block = Build(kv);
  std::unique_ptr<Iterator> it(block->NewIterator(BytewiseComparator()));
  auto expect = kv.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expect) {
    ASSERT_NE(expect, kv.end());
    EXPECT_EQ(it->key().ToString(), expect->first);
    EXPECT_EQ(it->value().ToString(), expect->second);
  }
  EXPECT_EQ(expect, kv.end());
  EXPECT_TRUE(it->status().ok());
}

TEST_F(BlockTest, SeekSemantics) {
  std::map<std::string, std::string> kv;
  for (int i = 0; i < 100; i += 2) {
    kv[Key(i)] = "v";
  }
  auto block = Build(kv);
  std::unique_ptr<Iterator> it(block->NewIterator(BytewiseComparator()));
  // Seek to present key.
  it->Seek(Key(10));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), Key(10));
  // Seek to absent key lands on successor.
  it->Seek(Key(11));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), Key(12));
  // Seek past everything.
  it->Seek(Key(99));
  EXPECT_FALSE(it->Valid());
  // Seek before everything.
  it->Seek("");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), Key(0));
}

TEST_F(BlockTest, BackwardIteration) {
  std::map<std::string, std::string> kv;
  for (int i = 0; i < 50; i++) {
    kv[Key(i)] = std::to_string(i);
  }
  auto block = Build(kv);
  std::unique_ptr<Iterator> it(block->NewIterator(BytewiseComparator()));
  int expect = 49;
  for (it->SeekToLast(); it->Valid(); it->Prev()) {
    EXPECT_EQ(it->key().ToString(), Key(expect));
    expect--;
  }
  EXPECT_EQ(expect, -1);
}

TEST_F(BlockTest, EmptyBlock) {
  auto block = Build({});
  std::unique_ptr<Iterator> it(block->NewIterator(BytewiseComparator()));
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  it->Seek("anything");
  EXPECT_FALSE(it->Valid());
}

TEST_F(BlockTest, PrefixCompressionRestoresKeys) {
  // Long shared prefixes exercise the delta encoding.
  std::map<std::string, std::string> kv;
  const std::string prefix(100, 'p');
  for (int i = 0; i < 20; i++) {
    kv[prefix + Key(i)] = "v" + std::to_string(i);
  }
  auto block = Build(kv);
  std::unique_ptr<Iterator> it(block->NewIterator(BytewiseComparator()));
  auto expect = kv.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expect) {
    EXPECT_EQ(it->key().ToString(), expect->first);
  }
}

TEST_F(BlockTest, HashIndexLookup) {
  opts_.use_hash_index = true;
  std::map<std::string, std::string> kv;
  for (int i = 0; i < 64; i++) {
    kv[Key(i)] = "v";
  }
  auto block = Build(kv);
  EXPECT_TRUE(block->has_hash_index());

  int found = 0, absent = 0, collision = 0;
  for (int i = 0; i < 64; i++) {
    uint32_t restart;
    switch (block->HashLookup(Hash32(Slice(Key(i))), &restart)) {
      case Block::HashResult::kFound: {
        found++;
        // The key must live in restart group `restart`.
        std::unique_ptr<Block::BlockIterator> it(
            block->NewIterator(BytewiseComparator()));
        it->SeekToRestart(restart);
        bool ok = false;
        for (int step = 0; it->Valid() && step < 64; it->Next(), step++) {
          if (it->key() == Slice(Key(i))) {
            ok = true;
            break;
          }
        }
        EXPECT_TRUE(ok) << Key(i);
        break;
      }
      case Block::HashResult::kCollision:
        collision++;
        break;
      case Block::HashResult::kAbsent:
        absent++;  // impossible for present keys
        break;
      case Block::HashResult::kNoIndex:
        FAIL();
    }
  }
  EXPECT_EQ(absent, 0);
  EXPECT_EQ(found + collision, 64);
  EXPECT_GT(found, 10);  // a healthy share resolves without binary search
}

TEST_F(BlockTest, HashIndexProvesAbsence) {
  opts_.use_hash_index = true;
  std::map<std::string, std::string> kv;
  for (int i = 0; i < 32; i++) {
    kv[Key(i)] = "v";
  }
  auto block = Build(kv);
  int definitive_absent = 0;
  for (int i = 1000; i < 1200; i++) {
    uint32_t restart;
    if (block->HashLookup(Hash32(Slice(Key(i))), &restart) ==
        Block::HashResult::kAbsent) {
      definitive_absent++;
    }
  }
  // With a load factor of 0.75, a majority of absent probes hit empty
  // buckets.
  EXPECT_GT(definitive_absent, 50);
}

TEST_F(BlockTest, EntryLengthOverflowIsCorruption) {
  // Regression for a bug found by the corruption sweep: an entry header of
  // shared=0, non_shared=0xffffffff, value_length=1 summed to 0 in 32-bit
  // arithmetic, so the "enough bytes left?" check passed and the iterator
  // appended ~4GB of out-of-bounds memory to its key buffer. The lengths
  // must be summed in 64 bits and the entry rejected as corruption.
  std::string raw;
  PutVarint32(&raw, 0);           // shared
  PutVarint32(&raw, 0xffffffff);  // non_shared
  PutVarint32(&raw, 1);           // value_length (wraps the 32-bit sum to 0)
  PutFixed32(&raw, 0);            // restart array: one restart at offset 0
  PutFixed32(&raw, 1);            // trailer: num_restarts = 1

  BlockContents contents;
  contents.owned = raw;
  contents.data = Slice(contents.owned);
  contents.heap_allocated = true;
  Block block(std::move(contents));
  std::unique_ptr<Iterator> it(block.NewIterator(BytewiseComparator()));
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(it->status().IsCorruption());
}

TEST_F(BlockTest, RestartPointBeyondEntriesIsRejected) {
  // A restart offset pointing past the entry region must be caught at
  // construction (the block parses as malformed/empty), not chased later.
  std::string raw;
  PutVarint32(&raw, 0);  // shared
  PutVarint32(&raw, 1);  // non_shared
  PutVarint32(&raw, 0);  // value_length
  raw.push_back('k');
  PutFixed32(&raw, 0x7fffffff);  // restart far beyond the entry region
  PutFixed32(&raw, 1);           // trailer: num_restarts = 1

  BlockContents contents;
  contents.owned = raw;
  contents.data = Slice(contents.owned);
  contents.heap_allocated = true;
  Block block(std::move(contents));
  std::unique_ptr<Iterator> it(block.NewIterator(BytewiseComparator()));
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  it->Seek("k");
  EXPECT_FALSE(it->Valid());
}

// --------------------------------------------------------------- Footer --

TEST(FormatTest, FooterRoundtrip) {
  Footer footer;
  footer.set_metaindex_handle(BlockHandle(1234, 56));
  footer.set_index_handle(BlockHandle(7890, 12));
  std::string encoded;
  footer.EncodeTo(&encoded);
  EXPECT_EQ(encoded.size(), Footer::kEncodedLength);

  Footer decoded;
  Slice input(encoded);
  ASSERT_TRUE(decoded.DecodeFrom(&input).ok());
  EXPECT_EQ(decoded.metaindex_handle().offset(), 1234u);
  EXPECT_EQ(decoded.index_handle().offset(), 7890u);
}

TEST(FormatTest, FooterRejectsBadMagic) {
  std::string encoded(Footer::kEncodedLength, '\x42');
  Footer footer;
  Slice input(encoded);
  EXPECT_TRUE(footer.DecodeFrom(&input).IsCorruption());
}

// -------------------------------------------------------------- SSTable --

class SSTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_.reset(NewMemEnv());
    opts_.block_size = 512;  // many blocks
  }

  void BuildTable(const std::map<std::string, std::string>& kv) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile("/t.sst", &file).ok());
    SSTableBuilder builder(opts_, file.get());
    for (const auto& [k, v] : kv) {
      builder.Add(k, v);
    }
    ASSERT_TRUE(builder.Finish().ok());
    ASSERT_TRUE(file->Close().ok());
    file_size_ = builder.FileSize();
  }

  void OpenTable() {
    std::unique_ptr<RandomAccessFile> file;
    ASSERT_TRUE(env_->NewRandomAccessFile("/t.sst", &file).ok());
    ASSERT_TRUE(SSTable::Open(opts_, std::move(file), file_size_, 1, nullptr,
                              &table_)
                    .ok());
  }

  std::unique_ptr<Env> env_;
  TableOptions opts_;
  uint64_t file_size_ = 0;
  std::unique_ptr<SSTable> table_;
};

TEST_F(SSTableTest, RoundtripAndProperties) {
  std::map<std::string, std::string> kv;
  for (int i = 0; i < 1000; i++) {
    kv[Key(i)] = "value" + std::to_string(i);
  }
  BuildTable(kv);
  OpenTable();

  EXPECT_EQ(table_->properties().num_entries, 1000u);
  EXPECT_GT(table_->properties().num_data_blocks, 5u);

  std::unique_ptr<Iterator> it(table_->NewIterator());
  auto expect = kv.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expect) {
    ASSERT_NE(expect, kv.end());
    EXPECT_EQ(it->key().ToString(), expect->first);
    EXPECT_EQ(it->value().ToString(), expect->second);
  }
  EXPECT_EQ(expect, kv.end());
}

TEST_F(SSTableTest, SeekAcrossBlocks) {
  std::map<std::string, std::string> kv;
  for (int i = 0; i < 1000; i += 2) {
    kv[Key(i)] = "v";
  }
  BuildTable(kv);
  OpenTable();
  std::unique_ptr<Iterator> it(table_->NewIterator());
  for (int i = 0; i < 1000; i += 100) {
    it->Seek(Key(i + 1));  // absent; successor is i+2
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key().ToString(), Key(i + 2));
  }
}

TEST_F(SSTableTest, InternalGetFindsEntries) {
  std::map<std::string, std::string> kv;
  for (int i = 0; i < 500; i++) {
    kv[Key(i)] = std::to_string(i);
  }
  BuildTable(kv);
  OpenTable();
  for (int i = 0; i < 500; i += 17) {
    std::string got;
    ASSERT_TRUE(table_
                    ->InternalGet(Key(i), Key(i),
                                  [&](const Slice& k, const Slice& v) {
                                    if (k == Slice(Key(i))) {
                                      got = v.ToString();
                                    }
                                  })
                    .ok());
    EXPECT_EQ(got, std::to_string(i));
  }
}

TEST_F(SSTableTest, FilterBlockRoundtrip) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  opts_.filter_policy = policy.get();
  std::map<std::string, std::string> kv;
  for (int i = 0; i < 2000; i++) {
    kv[Key(i)] = "v";
  }
  BuildTable(kv);
  OpenTable();

  // No false negatives.
  for (int i = 0; i < 2000; i++) {
    EXPECT_TRUE(table_->KeyMayMatch(Key(i), Hash64(Slice(Key(i)))));
  }
  // Mostly true negatives for absent keys.
  int rejected = 0;
  for (int i = 10000; i < 12000; i++) {
    if (!table_->KeyMayMatch(Key(i), Hash64(Slice(Key(i))))) {
      rejected++;
    }
  }
  EXPECT_GT(rejected, 1900);  // FPR ~1% at 10 bits/key
}

TEST_F(SSTableTest, PartitionedFilterRoundtrip) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  opts_.filter_policy = policy.get();
  opts_.partition_filters = true;
  std::map<std::string, std::string> kv;
  for (int i = 0; i < 2000; i++) {
    kv[Key(i)] = "v" + std::to_string(i);
  }
  BuildTable(kv);
  OpenTable();

  // Whole-table probe cannot answer (partitions are per block).
  EXPECT_TRUE(table_->KeyMayMatch(Key(999999), Hash64(Slice(Key(999999)))));

  // No false negatives through InternalGet with partition filtering on.
  for (int i = 0; i < 2000; i += 13) {
    std::string got;
    bool skipped = false;
    ASSERT_TRUE(table_
                    ->InternalGet(Key(i), Key(i),
                                  [&](const Slice& k, const Slice& v) {
                                    if (k == Slice(Key(i))) {
                                      got = v.ToString();
                                    }
                                  },
                                  /*use_filter=*/true, &skipped)
                    .ok());
    EXPECT_FALSE(skipped) << Key(i);
    EXPECT_EQ(got, "v" + std::to_string(i));
  }

  // Absent keys (in-range) are mostly rejected by their partition.
  int rejected = 0;
  for (int i = 0; i < 500; i++) {
    bool skipped = false;
    std::string absent = Key(i) + "x";
    ASSERT_TRUE(table_
                    ->InternalGet(absent, absent,
                                  [](const Slice&, const Slice&) {},
                                  /*use_filter=*/true, &skipped)
                    .ok());
    if (skipped) {
      rejected++;
    }
  }
  EXPECT_GT(rejected, 450);
}

TEST_F(SSTableTest, PartitionedFilterDisabledProbeStillWorks) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  opts_.filter_policy = policy.get();
  opts_.partition_filters = true;
  std::map<std::string, std::string> kv;
  for (int i = 0; i < 200; i++) {
    kv[Key(i)] = "v";
  }
  BuildTable(kv);
  OpenTable();
  // use_filter=false must bypass the partitions entirely.
  bool skipped = true;
  std::string absent = Key(3) + "x";
  ASSERT_TRUE(table_
                  ->InternalGet(absent, absent,
                                [](const Slice&, const Slice&) {},
                                /*use_filter=*/false, &skipped)
                  .ok());
  EXPECT_FALSE(skipped);
}

TEST_F(SSTableTest, MismatchedFilterPolicyDegradesGracefully) {
  std::unique_ptr<const FilterPolicy> bloom(NewBloomFilterPolicy(10));
  opts_.filter_policy = bloom.get();
  std::map<std::string, std::string> kv{{Key(1), "v"}};
  BuildTable(kv);
  // Reopen expecting a different filter: the table must not reject keys.
  std::unique_ptr<const FilterPolicy> cuckoo(NewCuckooFilterPolicy(12));
  opts_.filter_policy = cuckoo.get();
  OpenTable();
  EXPECT_TRUE(table_->KeyMayMatch(Key(999), Hash64(Slice(Key(999)))));
}

TEST_F(SSTableTest, CorruptBlockDetected) {
  std::map<std::string, std::string> kv;
  for (int i = 0; i < 100; i++) {
    kv[Key(i)] = "vvvvvvvvvv";
  }
  BuildTable(kv);
  // Flip a byte in the middle of the data area.
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/t.sst", &data).ok());
  data[100] ^= 0x01;
  ASSERT_TRUE(WriteStringToFile(env_.get(), data, "/t.sst").ok());
  OpenTable();
  std::unique_ptr<Iterator> it(table_->NewIterator());
  it->SeekToFirst();
  // Either the iterator reports corruption eventually or the first block
  // fails immediately.
  while (it->Valid()) {
    it->Next();
  }
  EXPECT_TRUE(it->status().IsCorruption());
}

TEST_F(SSTableTest, TruncatedFileRejected) {
  std::map<std::string, std::string> kv{{Key(1), "v"}};
  BuildTable(kv);
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_.get(), "/t.sst", &data).ok());
  data.resize(data.size() / 2);
  ASSERT_TRUE(WriteStringToFile(env_.get(), data, "/t.sst").ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_->NewRandomAccessFile("/t.sst", &file).ok());
  std::unique_ptr<SSTable> table;
  EXPECT_FALSE(
      SSTable::Open(opts_, std::move(file), data.size(), 1, nullptr, &table)
          .ok());
}

TEST_F(SSTableTest, LearnedPlrIndexGet) {
  opts_.index_type = TableOptions::IndexType::kLearnedPlr;
  std::map<std::string, std::string> kv;
  for (int i = 0; i < 2000; i++) {
    kv[Key(i)] = std::to_string(i);
  }
  BuildTable(kv);
  OpenTable();
  for (int i = 0; i < 2000; i += 13) {
    std::string got;
    ASSERT_TRUE(table_
                    ->InternalGet(Key(i), Key(i),
                                  [&](const Slice& k, const Slice& v) {
                                    if (k == Slice(Key(i))) {
                                      got = v.ToString();
                                    }
                                  })
                    .ok());
    EXPECT_EQ(got, std::to_string(i)) << Key(i);
  }
  EXPECT_GT(table_->counters().learned_index_seeks, 0u);
}

TEST_F(SSTableTest, RadixSplineIndexGet) {
  opts_.index_type = TableOptions::IndexType::kRadixSpline;
  std::map<std::string, std::string> kv;
  for (int i = 0; i < 2000; i++) {
    kv[Key(i)] = std::to_string(i);
  }
  BuildTable(kv);
  OpenTable();
  for (int i = 0; i < 2000; i += 29) {
    std::string got;
    ASSERT_TRUE(table_
                    ->InternalGet(Key(i), Key(i),
                                  [&](const Slice& k, const Slice& v) {
                                    if (k == Slice(Key(i))) {
                                      got = v.ToString();
                                    }
                                  })
                    .ok());
    EXPECT_EQ(got, std::to_string(i));
  }
}

// --------------------------------------------------- Two-level iterator --

TEST(TwoLevelIteratorTest, ComposesIndexAndData) {
  // Index maps "1","2","3" -> synthetic single-entry iterators.
  TableOptions opts;
  BlockBuilder index(&opts);
  index.Add("1", "a");
  index.Add("2", "b");
  index.Add("3", "c");
  Slice raw = index.Finish();
  BlockContents contents;
  contents.owned = raw.ToString();
  contents.data = Slice(contents.owned);
  contents.heap_allocated = true;
  Block block(std::move(contents));

  auto factory = [](const Slice& value) -> Iterator* {
    // Each data "block" is one synthetic pair (value -> value).
    class OneEntry : public Iterator {
     public:
      explicit OneEntry(std::string v) : v_(std::move(v)) {}
      bool Valid() const override { return valid_; }
      void SeekToFirst() override { valid_ = true; }
      void SeekToLast() override { valid_ = true; }
      void Seek(const Slice& t) override { valid_ = Slice(v_).compare(t) >= 0; }
      void Next() override { valid_ = false; }
      void Prev() override { valid_ = false; }
      Slice key() const override { return Slice(v_); }
      Slice value() const override { return Slice(v_); }
      Status status() const override { return Status::OK(); }

     private:
      std::string v_;
      bool valid_ = false;
    };
    return new OneEntry(value.ToString());
  };

  std::unique_ptr<Iterator> it(NewTwoLevelIterator(
      block.NewIterator(BytewiseComparator()), factory));
  std::string seen;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    seen += it->key().ToString();
  }
  EXPECT_EQ(seen, "abc");
}

}  // namespace
}  // namespace lsmlab
