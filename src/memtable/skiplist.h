#ifndef LSMLAB_MEMTABLE_SKIPLIST_H_
#define LSMLAB_MEMTABLE_SKIPLIST_H_

#include <atomic>
#include <cassert>
#include <cstdlib>

#include "util/arena.h"
#include "util/random.h"

namespace lsmlab {

namespace skiplist_internal {

/// Per-thread tower-height generator. The height stream only shapes the
/// skiplist's expected search cost, never its contents, so giving every
/// thread an independent deterministically-seeded stream keeps
/// single-threaded runs reproducible while letting concurrent inserters
/// draw heights without sharing (racing on) one generator — and without
/// the correlated towers a shared fixed seed would hand to every thread.
inline Random& ThreadLocalHeightRng() {
  static std::atomic<uint64_t> counter{0};
  thread_local Random rng(0xdeadbeefull +
                          counter.fetch_add(1, std::memory_order_relaxed));
  return rng;
}

}  // namespace skiplist_internal

/// Arena-backed skiplist: the classic LSM write-buffer structure
/// (tutorial I-1). Readers may traverse concurrently with inserts without
/// locking (next pointers are released atomically, nodes are never
/// removed until the whole list is dropped). Writers come in two flavors:
/// Insert() assumes external serialization (one writer at a time), while
/// InsertConcurrently() lets any number of writers splice simultaneously
/// via per-level CAS — both uphold the same acquire/release contract
/// toward readers, so iterators never care which insert path ran.
///
/// Key is a trivially copyable handle (the memtable uses const char*).
/// Comparator is a functor: int operator()(const Key&, const Key&).
template <typename Key, class Comparator>
class SkipList {
 private:
  struct Node;

 public:
  SkipList(Comparator cmp, Arena* arena)
      : compare_(cmp),
        arena_(arena),
        head_(NewNode(Key{}, kMaxHeight)),
        max_height_(1) {
    for (int i = 0; i < kMaxHeight; i++) {
      head_->SetNext(i, nullptr);
    }
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts key. REQUIRES: no equal key is already in the list, and no
  /// other insert (of either flavor) is running concurrently.
  void Insert(const Key& key) {
    Node* prev[kMaxHeight];
    Node* x = FindGreaterOrEqual(key, prev);
    assert(x == nullptr || !Equal(key, x->key));

    const int height = RandomHeight();
    if (height > GetMaxHeight()) {
      for (int i = GetMaxHeight(); i < height; i++) {
        prev[i] = head_;
      }
      max_height_.store(height, std::memory_order_relaxed);
    }

    x = NewNode(key, height);
    for (int i = 0; i < height; i++) {
      x->NoBarrier_SetNext(i, prev[i]->NoBarrier_Next(i));
      prev[i]->SetNext(i, x);
    }
  }

  /// Thread-safe insert: any number of InsertConcurrently() calls may run
  /// at once, alongside lock-free readers. Each level is spliced with a
  /// CAS on prev->next; when the CAS loses (another writer spliced there
  /// first) the level's splice is recomputed by walking forward from the
  /// stale prev — valid because nodes are never removed, so a stale prev
  /// is still an ancestor of the right position. Levels link bottom-up:
  /// once level 0 succeeds the node is reachable, and the release CAS
  /// publishes the node's own next pointers to readers.
  ///
  /// REQUIRES: no equal key is in the list or being inserted, and the
  /// backing Arena must tolerate concurrent allocation (the memtable
  /// routes NewNode through Arena::AllocateAlignedConcurrent).
  /// Returns the number of CAS retries (for memtable.insert_cas_retries).
  uint64_t InsertConcurrently(const Key& key) {
    Node* prev[kMaxHeight];
    Node* next[kMaxHeight];
    const int height = RandomHeight();

    // Raise max_height_ with a CAS so racing tall inserts converge on the
    // tallest request. A reader that observes the new height before the
    // node is linked just walks head_'s null pointers at the top, as in
    // the serial path.
    int max_h = max_height_.load(std::memory_order_relaxed);
    while (height > max_h &&
           !max_height_.compare_exchange_weak(max_h, height,
                                              std::memory_order_relaxed)) {
    }

    Node* x = NewNodeConcurrently(key, height);
    FindSplice(key, prev, next);
    assert(next[0] == nullptr || !Equal(key, next[0]->key));

    uint64_t cas_retries = 0;
    for (int i = 0; i < height; i++) {
      while (true) {
        // Link the new node to its successor before publishing: the CAS
        // below releases, so a reader that reaches x through prev[i] also
        // sees x->next_[i]. Insert-only lists cannot ABA — a next pointer
        // never returns to a prior value because nodes are never unlinked.
        x->NoBarrier_SetNext(i, next[i]);
        if (prev[i]->CASNext(i, next[i], x)) {
          break;
        }
        // Lost the race at this level: someone spliced after prev[i].
        // prev[i] still compares < key, so re-walk forward from it.
        cas_retries++;
        FindSpliceForLevel(key, prev[i], i, &prev[i], &next[i]);
        assert(i != 0 || next[0] == nullptr || !Equal(key, next[0]->key));
      }
    }
    return cas_retries;
  }

  bool Contains(const Key& key) const {
    Node* x = FindGreaterOrEqual(key, nullptr);
    return x != nullptr && Equal(key, x->key);
  }

  /// Cursor over the list contents.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    const Key& key() const {
      assert(Valid());
      return node_->key;
    }
    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }
    void Prev() {
      assert(Valid());
      node_ = list_->FindLessThan(node_->key);
      if (node_ == list_->head_) {
        node_ = nullptr;
      }
    }
    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }
    void SeekToFirst() { node_ = list_->head_->Next(0); }
    void SeekToLast() {
      node_ = list_->FindLast();
      if (node_ == list_->head_) {
        node_ = nullptr;
      }
    }

   private:
    const SkipList* list_;
    Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  struct Node {
    explicit Node(const Key& k) : key(k) {}

    Key const key;

    Node* Next(int n) {
      return next_[n].load(std::memory_order_acquire);
    }
    void SetNext(int n, Node* x) {
      next_[n].store(x, std::memory_order_release);
    }
    Node* NoBarrier_Next(int n) {
      return next_[n].load(std::memory_order_relaxed);
    }
    void NoBarrier_SetNext(int n, Node* x) {
      next_[n].store(x, std::memory_order_relaxed);
    }
    /// Splice CAS for concurrent inserts: release on success (publishes
    /// x and its next pointers, like SetNext), relaxed on failure (the
    /// caller re-walks and retries).
    bool CASNext(int n, Node* expected, Node* x) {
      return next_[n].compare_exchange_strong(expected, x,
                                              std::memory_order_release,
                                              std::memory_order_relaxed);
    }

   private:
    // Array of length equal to the node height; [0] is the lowest level.
    std::atomic<Node*> next_[1];
  };

  Node* NewNode(const Key& key, int height) {
    char* mem = arena_->AllocateAligned(
        sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
    return new (mem) Node(key);
  }

  Node* NewNodeConcurrently(const Key& key, int height) {
    char* mem = arena_->AllocateAlignedConcurrent(
        sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
    return new (mem) Node(key);
  }

  int RandomHeight() {
    Random& rnd = skiplist_internal::ThreadLocalHeightRng();
    int height = 1;
    while (height < kMaxHeight && rnd.OneIn(kBranching)) {
      height++;
    }
    return height;
  }

  int GetMaxHeight() const {
    return max_height_.load(std::memory_order_relaxed);
  }

  bool Equal(const Key& a, const Key& b) const {
    return compare_(a, b) == 0;
  }

  /// Walks forward from `before` at `level` until the splice point:
  /// *out_prev compares < key and *out_next is its successor (nullptr or
  /// >= key). REQUIRES: before is head_ or compares < key.
  void FindSpliceForLevel(const Key& key, Node* before, int level,
                          Node** out_prev, Node** out_next) const {
    Node* x = before;
    while (true) {
      Node* next = x->Next(level);
      if (next == nullptr || compare_(next->key, key) >= 0) {
        *out_prev = x;
        *out_next = next;
        return;
      }
      x = next;
    }
  }

  /// Computes the splice (prev/next pair) for every level. Top levels
  /// above max_height_ just yield head_/nullptr, which is exactly the
  /// right splice if this insert raises the height.
  void FindSplice(const Key& key, Node** prev, Node** next) const {
    Node* before = head_;
    for (int level = kMaxHeight - 1; level >= 0; level--) {
      FindSpliceForLevel(key, before, level, &prev[level], &next[level]);
      before = prev[level];
    }
  }

  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else {
        if (prev != nullptr) {
          prev[level] = x;
        }
        if (level == 0) {
          return next;
        }
        level--;
      }
    }
  }

  Node* FindLessThan(const Key& key) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else {
        if (level == 0) {
          return x;
        }
        level--;
      }
    }
  }

  Node* FindLast() const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr) {
        x = next;
      } else {
        if (level == 0) {
          return x;
        }
        level--;
      }
    }
  }

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;
  std::atomic<int> max_height_;
};

}  // namespace lsmlab

#endif  // LSMLAB_MEMTABLE_SKIPLIST_H_
