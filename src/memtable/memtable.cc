#include "memtable/memtable.h"

#include <algorithm>
#include <cassert>

#include "util/coding.h"

namespace lsmlab {

namespace {

/// Decodes the internal key of a length-prefixed entry.
Slice GetInternalKey(const char* entry) {
  uint32_t len;
  const char* p = GetVarint32Ptr(entry, entry + 5, &len);
  return Slice(p, len);
}

/// Decodes the value of a length-prefixed entry.
Slice GetEntryValue(const char* entry) {
  uint32_t klen;
  const char* p = GetVarint32Ptr(entry, entry + 5, &klen);
  p += klen;
  uint32_t vlen;
  p = GetVarint32Ptr(p, p + 5, &vlen);
  return Slice(p, vlen);
}

}  // namespace

int MemTable::KeyComparator::operator()(const char* a, const char* b) const {
  return comparator->Compare(GetInternalKey(a), GetInternalKey(b));
}

MemTable::MemTable(const InternalKeyComparator& comparator, Rep rep,
                   bool hash_index)
    : comparator_(comparator),
      key_comparator_{&comparator_},
      rep_(rep),
      use_hash_index_(hash_index) {
  if (rep_ == Rep::kSkipList) {
    skiplist_ = std::make_unique<SkipList<const char*, KeyComparator>>(
        key_comparator_, &arena_);
  }
}

size_t MemTable::ApproximateMemoryUsage() const {
  size_t total = arena_.MemoryUsage() + vector_.capacity() * sizeof(char*);
  if (use_hash_index_) {
    total += hash_index_.size() *
             (sizeof(std::string_view) + sizeof(char*) + 16);
  }
  return total;
}

const char* MemTable::EncodeEntry(SequenceNumber seq, ValueType type,
                                  const Slice& user_key, const Slice& value,
                                  bool concurrent) {
  const size_t internal_key_size = user_key.size() + 8;
  const size_t encoded_len = VarintLength(internal_key_size) +
                             internal_key_size +
                             VarintLength(value.size()) + value.size();
  char* buf = concurrent ? arena_.AllocateConcurrent(encoded_len)
                         : arena_.Allocate(encoded_len);
  std::string scratch;
  scratch.reserve(encoded_len);
  PutVarint32(&scratch, static_cast<uint32_t>(internal_key_size));
  scratch.append(user_key.data(), user_key.size());
  PutFixed64(&scratch, PackSequenceAndType(seq, type));
  PutVarint32(&scratch, static_cast<uint32_t>(value.size()));
  scratch.append(value.data(), value.size());
  assert(scratch.size() == encoded_len);
  memcpy(buf, scratch.data(), encoded_len);
  return buf;
}

size_t MemTable::VectorLowerBound(const Slice& target) const {
  size_t lo = 0;
  size_t hi = vector_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (comparator_.Compare(GetInternalKey(vector_[mid]), target) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint64_t MemTable::AddConcurrent(SequenceNumber seq, ValueType type,
                                 const Slice& user_key, const Slice& value) {
  assert(SupportsConcurrentInsert());
  const char* entry = EncodeEntry(seq, type, user_key, value,
                                  /*concurrent=*/true);
  num_entries_.fetch_add(1, std::memory_order_relaxed);
  return skiplist_->InsertConcurrently(entry);
}

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& user_key,
                   const Slice& value) {
  const char* entry = EncodeEntry(seq, type, user_key, value,
                                  /*concurrent=*/false);
  num_entries_.fetch_add(1, std::memory_order_relaxed);
  if (rep_ == Rep::kSkipList) {
    skiplist_->Insert(entry);
  } else {
    const size_t pos = VectorLowerBound(GetInternalKey(entry));
    vector_.insert(vector_.begin() + pos, entry);
  }
  if (use_hash_index_) {
    Slice ik = GetInternalKey(entry);
    Slice uk = ExtractUserKey(ik);
    // Later Adds have higher sequence numbers, so overwrite unconditionally.
    hash_index_[std::string_view(uk.data(), uk.size())] = entry;
  }
}

bool MemTable::Get(const LookupKey& lkey, std::string* value, Status* s) {
  const char* entry = nullptr;

  if (use_hash_index_ &&
      ExtractSequence(lkey.internal_key()) == kMaxSequenceNumber) {
    // O(1) latest-version fast path.
    Slice uk = lkey.user_key();
    auto it = hash_index_.find(std::string_view(uk.data(), uk.size()));
    if (it == hash_index_.end()) {
      return false;
    }
    entry = it->second;
  } else if (rep_ == Rep::kSkipList) {
    SkipList<const char*, KeyComparator>::Iterator iter(skiplist_.get());
    // Seek wants an entry-encoded key; encode the lookup key likewise.
    std::string seek_entry;
    PutVarint32(&seek_entry,
                static_cast<uint32_t>(lkey.internal_key().size()));
    seek_entry.append(lkey.internal_key().data(),
                      lkey.internal_key().size());
    iter.Seek(seek_entry.data());
    if (!iter.Valid()) {
      return false;
    }
    entry = iter.key();
  } else {
    const size_t pos = VectorLowerBound(lkey.internal_key());
    if (pos >= vector_.size()) {
      return false;
    }
    entry = vector_[pos];
  }

  const Slice internal_key = GetInternalKey(entry);
  if (comparator_.user_comparator()->Compare(ExtractUserKey(internal_key),
                                             lkey.user_key()) != 0) {
    return false;
  }
  switch (ExtractValueType(internal_key)) {
    case ValueType::kTypeValue: {
      Slice v = GetEntryValue(entry);
      value->assign(v.data(), v.size());
      return true;
    }
    case ValueType::kTypeDeletion:
      *s = Status::NotFound("");
      return true;
  }
  return false;
}

namespace {

class MemTableIterator : public Iterator {
 public:
  MemTableIterator(MemTable* mem,
                   SkipList<const char*, MemTable::KeyComparator>* list,
                   const std::vector<const char*>* vec,
                   const InternalKeyComparator* cmp)
      : mem_(mem), vec_(vec), cmp_(cmp) {
    if (list != nullptr) {
      list_iter_ = std::make_unique<
          SkipList<const char*, MemTable::KeyComparator>::Iterator>(list);
    }
    mem_->Ref();
  }

  ~MemTableIterator() override { mem_->Unref(); }

  bool Valid() const override {
    return list_iter_ ? list_iter_->Valid() : vec_pos_ < vec_->size();
  }

  void SeekToFirst() override {
    if (list_iter_) {
      list_iter_->SeekToFirst();
    } else {
      vec_pos_ = 0;
    }
  }

  void SeekToLast() override {
    if (list_iter_) {
      list_iter_->SeekToLast();
    } else {
      vec_pos_ = vec_->empty() ? 0 : vec_->size() - 1;
      if (vec_->empty()) vec_pos_ = vec_->size();
    }
  }

  void Seek(const Slice& target) override {
    if (list_iter_) {
      std::string seek_entry;
      PutVarint32(&seek_entry, static_cast<uint32_t>(target.size()));
      seek_entry.append(target.data(), target.size());
      list_iter_->Seek(seek_entry.data());
    } else {
      vec_pos_ = LowerBound(target);
    }
  }

  void Next() override {
    if (list_iter_) {
      list_iter_->Next();
    } else {
      vec_pos_++;
    }
  }

  void Prev() override {
    if (list_iter_) {
      list_iter_->Prev();
    } else if (vec_pos_ == 0) {
      vec_pos_ = vec_->size();
    } else {
      vec_pos_--;
    }
  }

  Slice key() const override { return GetInternalKey(Entry()); }
  Slice value() const override { return GetEntryValue(Entry()); }
  Status status() const override { return Status::OK(); }

 private:
  const char* Entry() const {
    return list_iter_ ? list_iter_->key() : (*vec_)[vec_pos_];
  }

  size_t LowerBound(const Slice& target) const {
    size_t lo = 0;
    size_t hi = vec_->size();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (cmp_->Compare(GetInternalKey((*vec_)[mid]), target) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  MemTable* mem_;
  std::unique_ptr<SkipList<const char*, MemTable::KeyComparator>::Iterator>
      list_iter_;
  const std::vector<const char*>* vec_;
  size_t vec_pos_ = 0;
  const InternalKeyComparator* cmp_;
};

}  // namespace

Iterator* MemTable::NewIterator() {
  return new MemTableIterator(
      this, rep_ == Rep::kSkipList ? skiplist_.get() : nullptr, &vector_,
      &comparator_);
}

}  // namespace lsmlab
