#ifndef LSMLAB_MEMTABLE_MEMTABLE_H_
#define LSMLAB_MEMTABLE_MEMTABLE_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dbformat.h"
#include "memtable/skiplist.h"
#include "util/arena.h"
#include "util/iterator.h"
#include "util/status.h"

namespace lsmlab {

/// Mutable in-memory write buffer (tutorial I-1: ingestion is buffered here
/// and flushed to an immutable run when full).
///
/// Entries are stored arena-allocated as
///   varint32 internal_key_len | internal_key | varint32 value_len | value
/// and indexed by one of two representations (the buffer-design axis of
/// the read-update-memory tradeoff, tutorial I-2 / E13):
///  - kSkipList: O(log n) insert and search (default; LevelDB/RocksDB).
///  - kSortedVector: contiguous array kept sorted; cache-friendly searches,
///    O(n) inserts — the "sorted dense buffer" design point.
///
/// An optional hash index (tutorial §II-4: per-page hash maps) maps user
/// keys to their newest entry for O(1) latest-version Gets; snapshot reads
/// fall back to the ordered search.
class MemTable {
 public:
  enum class Rep { kSkipList, kSortedVector };

  explicit MemTable(const InternalKeyComparator& comparator,
                    Rep rep = Rep::kSkipList, bool hash_index = false);

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Reference counting: the DB holds one ref; iterators/readers add more.
  /// Drops itself when the count reaches zero. Atomic because iterators are
  /// released on reader threads while the background flush thread unrefs a
  /// frozen memtable.
  void Ref() { refs_.fetch_add(1, std::memory_order_relaxed); }
  void Unref() {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete this;
    }
  }

  /// Bytes consumed; compared against Options::write_buffer_size to
  /// trigger a flush.
  size_t ApproximateMemoryUsage() const;

  /// Iterator yielding internal keys (entry encoding stripped).
  Iterator* NewIterator();

  /// Adds an entry. A deletion is an entry of type kTypeDeletion.
  /// Single-writer: callers serialize Adds (the classic contract).
  void Add(SequenceNumber seq, ValueType type, const Slice& user_key,
           const Slice& value);

  /// Thread-safe Add for the parallel group apply: any number of
  /// AddConcurrent calls may run simultaneously, alongside lock-free
  /// readers. REQUIRES: SupportsConcurrentInsert(). Returns the number
  /// of skiplist CAS retries (memtable.insert_cas_retries ticker).
  uint64_t AddConcurrent(SequenceNumber seq, ValueType type,
                         const Slice& user_key, const Slice& value);

  /// True when this memtable accepts AddConcurrent: the skiplist rep
  /// without the auxiliary hash index. The sorted vector shifts a dense
  /// array on insert and the hash index is an unsynchronized
  /// unordered_map — both stay on the serial leader-apply path.
  bool SupportsConcurrentInsert() const {
    return rep_ == Rep::kSkipList && !use_hash_index_;
  }

  /// If a version visible at `lkey`'s snapshot exists, returns true and
  /// sets *value (found) or *s = NotFound (tombstone). Returns false when
  /// this memtable holds nothing visible for the key.
  bool Get(const LookupKey& lkey, std::string* value, Status* s);

  uint64_t num_entries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }

  /// Orders entry pointers by their encoded internal keys (public so the
  /// iterator implementation can name the skiplist type).
  struct KeyComparator {
    const InternalKeyComparator* comparator;
    int operator()(const char* a, const char* b) const;
  };

 private:
  ~MemTable() = default;  // only via Unref()

  const char* EncodeEntry(SequenceNumber seq, ValueType type,
                          const Slice& user_key, const Slice& value,
                          bool concurrent);

  /// Positions the ordered rep at the first entry >= `target` internal
  /// key; returns nullptr if none. (Vector rep only; skiplist uses its own
  /// iterator.)
  size_t VectorLowerBound(const Slice& target) const;

  InternalKeyComparator comparator_;
  KeyComparator key_comparator_;
  Rep rep_;
  std::atomic<int> refs_{0};
  // Relaxed atomic: bumped by concurrent appliers, read by flush sizing.
  std::atomic<uint64_t> num_entries_{0};
  Arena arena_;
  std::unique_ptr<SkipList<const char*, KeyComparator>> skiplist_;
  std::vector<const char*> vector_;  // sorted by internal key

  bool use_hash_index_;
  // user key (view into arena memory) -> newest entry
  std::unordered_map<std::string_view, const char*> hash_index_;
};

}  // namespace lsmlab

#endif  // LSMLAB_MEMTABLE_MEMTABLE_H_
