#ifndef LSMLAB_CORE_MERGING_ITERATOR_H_
#define LSMLAB_CORE_MERGING_ITERATOR_H_

#include "util/comparator.h"
#include "util/iterator.h"

namespace lsmlab {

/// Merges n ordered children into one ordered stream — the scan path of
/// tutorial I-1: one iterator per sorted run, advanced in lockstep.
/// Takes ownership of the children array contents.
Iterator* NewMergingIterator(const Comparator* comparator,
                             Iterator** children, int n);

}  // namespace lsmlab

#endif  // LSMLAB_CORE_MERGING_ITERATOR_H_
