#ifndef LSMLAB_CORE_DBFORMAT_H_
#define LSMLAB_CORE_DBFORMAT_H_

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/comparator.h"
#include "util/slice.h"

namespace lsmlab {

/// Monotonic version counter; every write gets a fresh sequence number and
/// snapshots pin one.
using SequenceNumber = uint64_t;

/// Sequence numbers are packed with a type tag into 8 bytes, so the top
/// byte is reserved.
constexpr SequenceNumber kMaxSequenceNumber = (uint64_t{1} << 56) - 1;

enum class ValueType : uint8_t {
  kTypeDeletion = 0x0,  ///< tombstone (out-of-place delete, tutorial I-1)
  kTypeValue = 0x1,
};

/// Tag ordering makes a Get seek position at the newest visible entry:
/// kTypeValue > kTypeDeletion within equal sequence numbers.
constexpr ValueType kValueTypeForSeek = ValueType::kTypeValue;

inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) {
  return (seq << 8) | static_cast<uint8_t>(t);
}

/// Internal keys are `user_key . fixed64(seq<<8|type)`. They sort by
/// (user key ascending, sequence number descending, type descending), so
/// the newest version of a user key comes first.
inline void AppendInternalKey(std::string* result, const Slice& user_key,
                              SequenceNumber seq, ValueType t) {
  result->append(user_key.data(), user_key.size());
  PutFixed64(result, PackSequenceAndType(seq, t));
}

/// Internal keys always carry an 8-byte trailing tag, but keys can reach
/// these helpers out of corrupt SSTable blocks, so the size must never be
/// trusted: a short key yields an empty user key / zero tag instead of a
/// wrapped size_t (which would hand the comparator a ~2^64-byte slice).
inline Slice ExtractUserKey(const Slice& internal_key) {
  if (internal_key.size() < 8) {
    return Slice();
  }
  return Slice(internal_key.data(), internal_key.size() - 8);
}

inline uint64_t ExtractTag(const Slice& internal_key) {
  if (internal_key.size() < 8) {
    return 0;
  }
  // bounds: size checked >= 8 immediately above.
  return DecodeFixed64(internal_key.data() + internal_key.size() - 8);
}

inline SequenceNumber ExtractSequence(const Slice& internal_key) {
  return ExtractTag(internal_key) >> 8;
}

inline ValueType ExtractValueType(const Slice& internal_key) {
  return static_cast<ValueType>(ExtractTag(internal_key) & 0xff);
}

/// Orders internal keys; wraps the user comparator.
class InternalKeyComparator : public Comparator {
 public:
  explicit InternalKeyComparator(const Comparator* user_comparator)
      : user_comparator_(user_comparator) {}

  int Compare(const Slice& a, const Slice& b) const override;
  const char* Name() const override {
    return "lsmlab.InternalKeyComparator";
  }
  void FindShortestSeparator(std::string* start,
                             const Slice& limit) const override;
  void FindShortSuccessor(std::string* key) const override;

  const Comparator* user_comparator() const { return user_comparator_; }

 private:
  const Comparator* user_comparator_;
};

/// The key form a Get searches for: user key + (snapshot seq, seek type),
/// which sorts before every visible version of the user key... after every
/// newer (invisible) one.
class LookupKey {
 public:
  LookupKey(const Slice& user_key, SequenceNumber sequence) {
    key_.reserve(user_key.size() + 8);
    AppendInternalKey(&key_, user_key, sequence, kValueTypeForSeek);
    user_key_size_ = user_key.size();
  }

  Slice internal_key() const { return Slice(key_); }
  Slice user_key() const { return Slice(key_.data(), user_key_size_); }

 private:
  std::string key_;
  size_t user_key_size_;
};

}  // namespace lsmlab

#endif  // LSMLAB_CORE_DBFORMAT_H_
