#include "core/db_impl.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <set>
#include <thread>

#include "cache/block_cache.h"
#include "core/db_iter.h"
#include "core/filename.h"
#include "core/merging_iterator.h"
#include "core/sharded_db.h"
#include "format/sstable_builder.h"
#include "format/two_level_iterator.h"
#include "obs/perf_context.h"
#include "tuning/monkey.h"
#include "util/coding.h"
#include "util/hash.h"
#include "wal/log_reader.h"

namespace lsmlab {

DBImpl::DBImpl(const Options& options, std::string dbname,
               ThreadPool* shared_bg_pool)
    : options_(options),
      dbname_(std::move(dbname)),
      icmp_(options.comparator) {
  table_cache_ = std::make_unique<TableCache>(dbname_, &options_, &icmp_);
  if (options_.filter_allocation == FilterAllocation::kMonkey) {
    table_cache_->ConfigureFilterBits(MonkeyBitsPerLevel(
        options_.filter_bits_per_key, options_.max_levels,
        options_.size_ratio));
  }
  versions_ = std::make_unique<VersionSet>(dbname_, &options_,
                                           table_cache_.get(), &icmp_);
  policy_ = CreateCompactionPolicy(options_, &icmp_, options_.block_cache);
  mem_ = new MemTable(icmp_, options_.memtable_rep,
                      options_.memtable_hash_index);
  mem_->Ref();
  if (options_.value_separation_threshold > 0) {
    vlog_ = std::make_unique<ValueLog>(options_.env, dbname_,
                                       options_.max_vlog_file_bytes);
  }
  if (options_.background_compaction) {
    if (shared_bg_pool != nullptr) {
      // Sharded mode: background work runs on the caller's pool, shared
      // with the other shards so their flushes/compactions overlap.
      bg_pool_ = shared_bg_pool;
    } else {
      // One private worker: flushes and compactions are serialized on it,
      // which is the mutual-exclusion backbone of the pipeline (no two
      // merges can pick overlapping inputs). The same exclusion holds in
      // sharded mode because bg_scheduled_ admits one task per instance.
      owned_bg_pool_ = std::make_unique<ThreadPool>(1);
      bg_pool_ = owned_bg_pool_.get();
    }
  }
  // Version cleanup hooks fire wherever the last reference to an obsolete
  // file drops — often under mu_ — so the observer only records the event;
  // listener callbacks fire from the next NotifyListeners.
  versions_->SetFileDeletionObserver([this](uint64_t number) {
    stats_.Add(Ticker::kTableFilesDeleted);
    if (has_listeners()) {
      MutexLock lock(&deletions_mu_);
      pending_deletions_.push_back(number);
    }
  });
}

DBImpl::~DBImpl() {
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
    // A queued task will still run (the pool drains before joining) but
    // exits promptly once it observes shutting_down_.
    while (bg_scheduled_) {
      bg_cv_.Wait();
    }
  }
  if (owned_bg_pool_ != nullptr) {
    owned_bg_pool_.reset();  // joins the worker thread
    bg_pool_ = nullptr;
  } else if (bg_pool_ != nullptr) {
    // Shared pool (sharded mode): we must not join other shards' workers,
    // but our BackgroundCall may still be in its tail — it clears
    // bg_scheduled_ under mu_, then touches stats_/listeners after
    // releasing it. WaitIdle returns only once every running task has
    // fully exited its closure, so no use-after-free. By the time a
    // ShardedDB destroys its shards no client issues writes, so the pool
    // quiesces and this wait terminates.
    bg_pool_->WaitIdle();
  }
  // stats_ and deletions_mu_ are declared after versions_, so they die
  // first; detach the observer before member destruction can race it.
  versions_->SetFileDeletionObserver(nullptr);
  // An unflushed imm_ is safe to drop: its WAL is only deleted after the
  // flush lands in the manifest, so recovery replays it. No thread can
  // race us here, but the guarded members keep a uniform discipline.
  MutexLock lock(&mu_);
  if (imm_ != nullptr) {
    imm_->Unref();
  }
  if (mem_ != nullptr) {
    mem_->Unref();
  }
}

Status DBImpl::Init() {
  PendingEvents events;
  Status s;
  {
    MutexLock lock(&mu_);
    s = InitLocked(&events);
  }
  // Recovery may flush and compact; listeners observe those like any
  // other flush/compaction, after the lock is gone.
  NotifyListeners(&events);
  return s;
}

Status DBImpl::InitLocked(PendingEvents* events) {
  // Recovery is single-threaded: no writer or background thread exists
  // yet, so holding mu_ across manifest/WAL/vlog I/O cannot stall anyone.
  ScopedBlockingIoAllowed allow_io("single-threaded recovery");
  // io-under-lock-ok: recovery manifest read precedes any concurrency.
  Status s = versions_->Recover();
  if (!s.ok()) {
    return s;
  }
  if (vlog_ != nullptr) {
    // io-under-lock-ok: value-log scan/open during single-threaded recovery.
    s = vlog_->Open();
    if (!s.ok()) {
      return s;
    }
  }
  s = RecoverWal(events);
  if (!s.ok()) {
    return s;
  }
  s = NewWal();
  if (!s.ok()) {
    return s;
  }
  // io-under-lock-ok: orphan sweep during single-threaded recovery.
  versions_->RemoveOrphanedFiles();
  return Status::OK();
}

// ------------------------------------------------------------- Listeners --

namespace {

TableFileInfo MakeTableFileInfo(const FileMetaData& meta, int level) {
  TableFileInfo info;
  info.file_number = meta.number;
  info.file_size = meta.file_size;
  info.level = level;
  info.smallest_user_key = ExtractUserKey(Slice(meta.smallest)).ToString();
  info.largest_user_key = ExtractUserKey(Slice(meta.largest)).ToString();
  return info;
}

}  // namespace

void DBImpl::DrainDeletions(PendingEvents* events) {
  if (!has_listeners()) {
    return;
  }
  std::vector<uint64_t> numbers;
  {
    MutexLock lock(&deletions_mu_);
    numbers.swap(pending_deletions_);
  }
  for (uint64_t number : numbers) {
    TableFileDeletionInfo info;
    info.db_name = dbname_;
    info.file_number = number;
    events->push_back(
        [info](EventListener& l) { l.OnTableFileDeleted(info); });
  }
}

void DBImpl::NotifyListeners(PendingEvents* events) {
  DrainDeletions(events);
  if (events->empty()) {
    return;
  }
  // The contract listeners rely on (see obs/event_listener.h): callbacks
  // never run under the DB mutex, so they may call read-side DB methods.
  assert(!mu_.HeldByCurrentThread());
  for (const auto& fire : *events) {
    for (const auto& listener : options_.listeners) {
      fire(*listener);
    }
  }
  events->clear();
}

Status DB::Open(const Options& options, const std::string& name,
                std::unique_ptr<DB>* dbptr) {
  dbptr->reset();
  if (options.env == nullptr) {
    return Status::InvalidArgument("Options::env must be set");
  }
  if (options.num_shards < 1) {
    return Status::InvalidArgument("Options::num_shards must be >= 1");
  }
  // Refuses to open a database whose on-disk shard count disagrees with
  // options.num_shards (including opening a sharded directory as a plain
  // single-instance DB — that would silently read an empty root).
  Status s = CheckShardMarker(options, name);
  if (!s.ok()) {
    return s;
  }
  if (options.num_shards > 1) {
    auto sharded = std::make_unique<ShardedDB>(options, name);
    s = sharded->Init();
    if (!s.ok()) {
      return s;
    }
    *dbptr = std::move(sharded);
    return Status::OK();
  }
  auto impl = std::make_unique<DBImpl>(options, name);
  s = impl->Init();
  if (!s.ok()) {
    return s;
  }
  *dbptr = std::move(impl);
  return Status::OK();
}

Status DestroyDB(const Options& options, const std::string& name) {
  if (options.env == nullptr) {
    return Status::InvalidArgument("Options::env must be set");
  }
  // A sharded database keeps each shard in its own subdirectory; read the
  // marker (before the sweep below deletes it) and clear each shard.
  std::string marker;
  if (ReadFileToString(options.env, name + "/" + kShardMarkerFile, &marker)
          .ok()) {
    int recorded = 0;
    for (char c : marker) {
      if (c < '0' || c > '9') {
        break;
      }
      recorded = recorded * 10 + (c - '0');
    }
    for (int k = 0; k < recorded; k++) {
      Options shard_options = options;
      shard_options.num_shards = 1;  // shard dirs are flat; no recursion
      // status-ok: best-effort per-shard destroy; leftovers surface in
      // the directory sweep below.
      DestroyDB(shard_options, ShardPath(name, k)).IgnoreError();
    }
  }
  std::vector<std::string> children;
  Status s = options.env->GetChildren(name, &children);
  if (!s.ok()) {
    return Status::OK();  // nothing to destroy
  }
  for (const std::string& child : children) {
    // status-ok: best-effort teardown; deleting a vanished file is not an
    // error here
    // (nor is a shard subdirectory, which RemoveFile cannot unlink).
    options.env->RemoveFile(name + "/" + child).IgnoreError();
  }
  return Status::OK();
}

// -------------------------------------------------- Key-value separation --
// (Batch separation itself — SeparatingHandler / MaybeSeparateBatch — lives
// in db_write.cc with the rest of the write path.)

Status DBImpl::ResolveValue(const Slice& stored, std::string* out) {
  if (vlog_ == nullptr) {
    out->assign(stored.data(), stored.size());
    return Status::OK();
  }
  if (stored.empty()) {
    out->clear();
    return Status::OK();
  }
  if (stored[0] == kVlogInlineTag) {
    out->assign(stored.data() + 1, stored.size() - 1);
    return Status::OK();
  }
  if (stored[0] == kVlogPointerTag) {
    stats_.Add(Ticker::kSeparatedReads);
    return vlog_->Get(Slice(stored.data() + 1, stored.size() - 1), out);
  }
  return Status::Corruption("unknown value tag");
}

Status DBImpl::GarbageCollectValues() {
  if (vlog_ == nullptr) {
    return Status::NotSupported("key-value separation is disabled");
  }
  {
    MutexLock lock(&mu_);
    if (!snapshots_.empty()) {
      return Status::InvalidArgument(
          "cannot garbage-collect the value log with live snapshots");
    }
  }
  const std::vector<uint64_t> closed = vlog_->ClosedFiles();
  if (closed.empty()) {
    return Status::OK();
  }
  std::set<uint64_t> victims(closed.begin(), closed.end());

  // Stream over the latest view; the iterator's snapshot is unaffected by
  // the re-puts below, so this visits each live key exactly once.
  std::unique_ptr<Iterator> it(NewRawIterator(ReadOptions()));
  Status s;
  for (it->SeekToFirst(); it->Valid() && s.ok(); it->Next()) {
    const Slice stored = it->value();
    if (stored.size() < 2 || stored[0] != kVlogPointerTag) {
      continue;
    }
    const Slice pointer(stored.data() + 1, stored.size() - 1);
    if (!ValueLog::PointsInto(pointer, victims)) {
      continue;
    }
    std::string value;
    s = vlog_->Get(pointer, &value);
    if (!s.ok()) {
      break;
    }
    // Re-put through the normal path: the value lands in the current log
    // segment and a fresh pointer supersedes the old one.
    s = Put({}, it->key(), value);
  }
  if (s.ok()) {
    s = it->status();
  }
  if (!s.ok()) {
    return s;
  }
  return vlog_->DeleteFiles(closed);
}

// ------------------------------------------------------------- Recovery --

namespace {

class WalReporter : public wal::Reader::Reporter {
 public:
  Status status;
  void Corruption(size_t /*bytes*/, const Status& s) override {
    if (status.ok()) {
      status = s;
    }
  }
};

}  // namespace

Status DBImpl::RecoverWal(PendingEvents* events) {
  std::vector<std::string> children;
  // io-under-lock-ok: WAL discovery during single-threaded recovery.
  Status s = options_.env->GetChildren(dbname_, &children);
  if (!s.ok()) {
    return s;
  }
  std::vector<uint64_t> wals;
  for (const std::string& child : children) {
    uint64_t number;
    FileType type;
    if (!ParseFileName(child, &number, &type)) {
      continue;
    }
    // Never re-allocate a number that exists on storage: a crash can roll
    // next_file_number back, and reusing a live WAL's number would
    // truncate synced data.
    versions_->MarkFileNumberUsed(number);
    if (type == FileType::kWalFile && number >= versions_->log_number()) {
      wals.push_back(number);
    }
  }
  std::sort(wals.begin(), wals.end());

  SequenceNumber max_sequence = versions_->last_sequence();
  for (uint64_t number : wals) {
    std::unique_ptr<SequentialFile> file;
    // io-under-lock-ok: WAL replay during single-threaded recovery.
    s = options_.env->NewSequentialFile(WalFileName(dbname_, number), &file);
    if (!s.ok()) {
      return s;
    }
    WalReporter reporter;
    wal::Reader reader(file.get(), &reporter);
    Slice record;
    std::string scratch;
    // io-under-lock-ok: WAL replay during single-threaded recovery.
    while (reader.ReadRecord(&record, &scratch)) {
      WriteBatch batch;
      batch.SetContentsFrom(record);
      s = batch.InsertInto(mem_);
      if (!s.ok()) {
        return s;
      }
      const SequenceNumber last = batch.sequence() + batch.Count() - 1;
      max_sequence = std::max(max_sequence, last);
    }
    if (!reporter.status.ok()) {
      return reporter.status;
    }
  }
  versions_->SetLastSequence(max_sequence);

  if (mem_->num_entries() > 0) {
    s = FlushMemTableLocked(events);
    if (!s.ok()) {
      return s;
    }
    s = MaybeCompact(events);
  }
  return s;
}

Status DBImpl::NewWal() {
  if (!options_.enable_wal) {
    return Status::OK();
  }
  wal_number_ = versions_->NewFileNumber();
  // io-under-lock-ok: WAL rotation creates the file under mu_ by design;
  // the expensive appends/syncs happen later with mu_ released.
  Status s = options_.env->NewWritableFile(WalFileName(dbname_, wal_number_),
                                           &wal_file_);
  if (!s.ok()) {
    return s;
  }
  wal_ = std::make_unique<wal::Writer>(wal_file_.get());
  // Fresh log: nothing in it is unsynced. Safe to touch the leader-owned
  // counter here because rotation only runs while the log is idle.
  wal_unsynced_bytes_ = 0;
  return Status::OK();
}

// ------------------------------------------------------------ Write path --
// Put/Delete/Write and the leader-based group-commit protocol live in
// db_write.cc, the only module allowed to touch the WAL file.

// ------------------------------------------------- Background pipeline --

Status DBImpl::FreezeMemTableLocked() {
  assert(imm_ == nullptr);
  // Rotation destroys the current WAL writer; the group-commit leader must
  // not be appending to it with mu_ released. Likewise the memtable being
  // swapped out must not be receiving parallel-apply inserts. Callers
  // that can race a leader (Flush paths) wait for log_busy_ and
  // apply_busy_ to clear before getting here; MakeRoomForWrite runs on
  // the leader itself, where both are idle.
  assert(!log_busy_);
  assert(!apply_busy_);
  // Rotation I/O (one vlog fsync + one WAL create) is intentionally done
  // under mu_: it must be atomic with the mem_/imm_ swap.
  ScopedBlockingIoAllowed allow_io("memtable freeze + WAL rotation");
  // WiscKey durability order: the frozen entries' values must be durable
  // in the value log before their pointers can become durable in tables.
  if (vlog_ != nullptr) {
    // io-under-lock-ok: durability barrier must precede the memtable swap.
    Status vs = vlog_->Sync(/*fsync=*/true);
    if (!vs.ok()) {
      return vs;
    }
    // Safe to touch the leader-owned flag here because rotation only runs
    // while the log is idle (same as wal_unsynced_bytes_ in NewWal).
    vlog_unsynced_ = false;
  }
  // Rotate the WAL so writes into the fresh memtable land in a fresh log;
  // the old log is pinned until the frozen memtable's flush is durable.
  const uint64_t old_wal = wal_number_;
  Status s = NewWal();
  if (!s.ok()) {
    return s;
  }
  imm_ = mem_;
  imm_log_number_ = wal_number_;
  imm_wal_to_delete_ = old_wal;
  mem_ = new MemTable(icmp_, options_.memtable_rep,
                      options_.memtable_hash_index);
  mem_->Ref();
  return Status::OK();
}

void DBImpl::StallWait() {
  const auto start = std::chrono::steady_clock::now();
  bg_cv_.Wait();
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  stats_.Add(Ticker::kWriteStalls);
  stats_.Add(Ticker::kWriteStallMicros, static_cast<uint64_t>(micros));
}

Status DBImpl::MakeRoomForWrite(PendingEvents* events) {
  bool allow_delay = true;
  // The stop trigger must sit at or above the compaction trigger, or the
  // stall below could wait for a compaction the policy never picks.
  const int stop_trigger =
      std::max(options_.l0_stop_trigger, options_.level0_compaction_trigger);
  auto stage_stall = [&](WriteStallInfo::Cause cause, int l0_runs) {
    if (!has_listeners()) {
      return;
    }
    WriteStallInfo info;
    info.db_name = dbname_;
    info.cause = cause;
    info.l0_runs = l0_runs;
    events->push_back([info](EventListener& l) { l.OnWriteStall(info); });
  };
  while (true) {
    if (!bg_error_.ok()) {
      return bg_error_;
    }
    const int l0_runs = static_cast<int>(
        versions_->current()->levels()[0].runs.size());
    if (allow_delay && options_.l0_slowdown_trigger > 0 &&
        l0_runs >= options_.l0_slowdown_trigger && l0_runs < stop_trigger) {
      // Close to the stop limit: surrender one millisecond per write so
      // compaction gains ground gradually, instead of stalling this writer
      // for seconds once the hard limit is hit.
      stage_stall(WriteStallInfo::Cause::kSlowdown, l0_runs);
      mu_.Unlock();
      const auto start = std::chrono::steady_clock::now();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      const auto micros =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      stats_.Add(Ticker::kWriteSlowdowns);
      stats_.Add(Ticker::kWriteSlowdownMicros,
                 static_cast<uint64_t>(micros));
      allow_delay = false;  // at most one delay per write
      mu_.Lock();
    } else if (mem_->ApproximateMemoryUsage() < options_.write_buffer_size) {
      return Status::OK();
    } else if (imm_ != nullptr) {
      // The previous memtable is still flushing: hard stall until the
      // background thread installs it.
      stage_stall(WriteStallInfo::Cause::kMemtableFull, l0_runs);
      StallWait();
    } else if (l0_runs >= stop_trigger) {
      // Too many L0 runs: every extra run taxes reads, so block until
      // compaction digests the backlog.
      stage_stall(WriteStallInfo::Cause::kL0Stop, l0_runs);
      bg_compaction_hint_ = true;
      MaybeScheduleBackgroundWork();
      StallWait();
    } else {
      Status s = FreezeMemTableLocked();
      if (!s.ok()) {
        return s;
      }
      MaybeScheduleBackgroundWork();
    }
  }
}

void DBImpl::MaybeScheduleBackgroundWork() {
  if (bg_pool_ == nullptr || bg_scheduled_ || shutting_down_ ||
      !bg_error_.ok()) {
    return;
  }
  // While CompactAll holds the token a hint alone schedules nothing (the
  // task would spin: it defers compactions until the token is released).
  if (imm_ == nullptr && !(bg_compaction_hint_ && !manual_compaction_)) {
    return;
  }
  bg_scheduled_ = true;
  if (!bg_pool_->Schedule([this] { BackgroundCall(); })) {
    // The pool already began draining; only possible during DB teardown,
    // where shutting_down_ is set before the pool shuts down. Keep the
    // flag consistent so no waiter hangs on a task that will never run.
    bg_scheduled_ = false;
  }
}

void DBImpl::BackgroundCall() {
  // One BackgroundStep per lock scope: the mutex is released between steps
  // so each flush/compaction's listener events fire promptly and without
  // mu_ held, and each step's PerfContext delta lands in the registry.
  while (true) {
    PendingEvents events;
    PerfContext* perf = GetPerfContext();
    const PerfContext before = *perf;
    bool more = false;
    {
      MutexLock lock(&mu_);
      assert(bg_scheduled_);
      if (!shutting_down_ && bg_error_.ok()) {
        more = BackgroundStep(&events);
      }
      if (!more) {
        bg_scheduled_ = false;
        // Work may have arrived while the lock was released during a build.
        MaybeScheduleBackgroundWork();
      }
      bg_cv_.SignalAll();
    }
    stats_.MergePerfDelta(perf->Delta(before));
    NotifyListeners(&events);
    if (!more) {
      return;
    }
  }
}

bool DBImpl::BackgroundStep(PendingEvents* events) {
  if (imm_ != nullptr) {
    // Flush has priority: a pending imm_ is what stalls writers.
    // status-ok: failures are sticky in bg_error_, which the caller's
    // loop checks.
    FlushImmMemTable(events).IgnoreError();
    return true;
  }
  if (manual_compaction_) {
    // CompactAll owns the compaction token; it drains the shape itself.
    return false;
  }
  auto pick = policy_->Pick(*versions_->current());
  if (!pick.has_value()) {
    bg_compaction_hint_ = false;
    return false;
  }
  Status s = DoCompaction(*pick, events);
  if (!s.ok()) {
    bg_error_ = s;
  }
  return s.ok();
}

Status DBImpl::FlushImmMemTable(PendingEvents* events) {
  assert(imm_ != nullptr);
  stats_.Add(Ticker::kFlushes);
  const auto flush_start = std::chrono::steady_clock::now();
  if (has_listeners()) {
    FlushJobInfo begin;
    begin.db_name = dbname_;
    begin.background = true;
    events->push_back([begin](EventListener& l) { l.OnFlushBegin(begin); });
  }
  ReconfigureMonkeyLocked(/*output_level=*/0);

  MemTable* imm = imm_;
  const SequenceNumber smallest_snapshot = SmallestSnapshotLocked();
  const uint64_t log_number = imm_log_number_;
  const uint64_t wal_to_delete = imm_wal_to_delete_;

  // Build the L0 tables without the lock: imm_ is immutable and writers
  // must be able to keep filling mem_ meanwhile.
  mu_.Unlock();
  std::unique_ptr<Iterator> iter(imm->NewIterator());
  std::vector<FileMetaData> outputs;
  uint64_t bytes_written = 0;
  Status s = BuildTables(iter.get(), /*output_level=*/0,
                         /*drop_shadowed=*/false, /*drop_tombstones=*/false,
                         smallest_snapshot, &outputs, &bytes_written);
  iter.reset();
  mu_.Lock();

  auto finish = [&](const Status& status) {
    const uint64_t micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - flush_start)
            .count());
    GetPerfContext()->flush_micros += micros;
    stats_.Record(PhaseHistogram::kFlushMicros,
                  static_cast<double>(micros));
    if (!has_listeners()) {
      return;
    }
    FlushJobInfo info;
    info.db_name = dbname_;
    info.background = true;
    info.bytes_written = bytes_written;
    info.micros = micros;
    info.status = status;
    if (status.ok()) {
      for (const FileMetaData& meta : outputs) {
        info.outputs.push_back(MakeTableFileInfo(meta, /*level=*/0));
        const TableFileInfo created = info.outputs.back();
        events->push_back(
            [created](EventListener& l) { l.OnTableFileCreated(created); });
      }
    }
    events->push_back([info](EventListener& l) { l.OnFlushEnd(info); });
  };

  if (!s.ok()) {
    bg_error_ = s;
    finish(s);
    return s;
  }
  stats_.Add(Ticker::kBytesFlushed, bytes_written);
  stats_.Add(Ticker::kTableFilesCreated, outputs.size());

  VersionEdit edit;
  const uint64_t run_seq = versions_->NewRunSeq();
  for (FileMetaData& meta : outputs) {
    meta.run_seq = run_seq;
    edit.AddFile(0, meta);
  }
  edit.SetLogNumber(log_number);  // everything older is durable in tables
  // The manifest install and WAL retirement must be atomic with the
  // version swap, so this short I/O tail runs under mu_ by design.
  ScopedBlockingIoAllowed allow_io("flush manifest install");
  // io-under-lock-ok: manifest install is atomic with the version swap.
  s = versions_->LogAndApply(&edit);
  if (!s.ok()) {
    bg_error_ = s;
    finish(s);
    return s;
  }

  imm_->Unref();
  imm_ = nullptr;
  if (options_.enable_wal && wal_to_delete != 0) {
    // status-ok: best-effort; a leftover WAL is re-deleted on the next
    // recovery.
    // io-under-lock-ok: WAL unlink is a metadata op tied to the install.
    options_.env->RemoveFile(WalFileName(dbname_, wal_to_delete))
        .IgnoreError();
  }
  finish(Status::OK());
  // A fresh L0 run may now violate the shape: fall through to compaction.
  bg_compaction_hint_ = true;
  bg_cv_.SignalAll();
  return Status::OK();
}

void DBImpl::WaitForBackgroundLocked() {
  while (bg_scheduled_) {
    bg_cv_.Wait();
  }
}

Status DBImpl::Flush() {
  PendingEvents events;
  Status s;
  {
    MutexLock lock(&mu_);
    s = FlushLocked(&events);
  }
  NotifyListeners(&events);
  return s;
}

Status DBImpl::FlushLocked(PendingEvents* events) {
  if (bg_pool_ == nullptr) {
    if (mem_->num_entries() == 0) {
      return Status::OK();
    }
    return FlushMemTableLocked(events);
  }
  // Background mode: freeze (waiting for a previous freeze to drain and
  // for any in-flight group commit to leave the WAL idle — freezing
  // rotates it), then wait until the background thread installs the flush.
  while ((imm_ != nullptr || log_busy_ || apply_busy_) && bg_error_.ok()) {
    bg_cv_.Wait();
  }
  if (!bg_error_.ok()) {
    return bg_error_;
  }
  if (mem_->num_entries() > 0) {
    Status s = FreezeMemTableLocked();
    if (!s.ok()) {
      return s;
    }
    MaybeScheduleBackgroundWork();
    while (imm_ != nullptr && bg_error_.ok()) {
      bg_cv_.Wait();
    }
  }
  return bg_error_;
}

Status DBImpl::CompactAll() {
  PendingEvents events;
  Status s;
  {
    MutexLock lock(&mu_);
    s = CompactAllLocked(&events);
  }
  NotifyListeners(&events);
  return s;
}

Status DBImpl::CompactAllLocked(PendingEvents* events) {
  // Take the compaction token: background work already running finishes
  // first, and the background thread then leaves compaction picks to us
  // (concurrent flushes of frozen memtables remain fine — they only add
  // newer L0 runs, which never invalidates a pick of older files).
  manual_compaction_ = true;
  WaitForBackgroundLocked();
  Status s = bg_error_.ok() ? Status::OK() : bg_error_;
  if (s.ok() && imm_ != nullptr) {
    s = FlushImmMemTable(events);
  }
  if (s.ok() && mem_->num_entries() > 0) {
    s = FlushMemTableLocked(events);
  }
  if (s.ok()) {
    s = MaybeCompact(events);
  }
  // Major compaction: merge level by level until the whole tree is a
  // single sorted run at the deepest populated level, so bottom-level
  // garbage (shadowed versions, spent tombstones) is fully collected.
  while (s.ok()) {
    const VersionPtr v = versions_->current();
    if (v->TotalRuns() <= 1) {
      break;
    }
    int shallowest = -1;
    for (int level = 0; level < v->num_levels(); level++) {
      if (!v->levels()[level].runs.empty()) {
        shallowest = level;
        break;
      }
    }
    const int bottom = v->MaxPopulatedLevel();
    CompactionPick pick;
    pick.level = shallowest;
    pick.output_run_seq = 0;  // outputs always form one fresh run
    for (const Run& run : v->levels()[shallowest].runs) {
      pick.inputs.insert(pick.inputs.end(), run.files.begin(),
                         run.files.end());
    }
    if (shallowest == bottom) {
      pick.output_level = shallowest;  // collapse the bottom's runs
    } else {
      // Consume the next level entirely too, producing one merged run.
      pick.output_level = shallowest + 1;
      for (const Run& run : v->levels()[shallowest + 1].runs) {
        pick.output_overlaps.insert(pick.output_overlaps.end(),
                                    run.files.begin(), run.files.end());
      }
    }
    s = DoCompaction(pick, events);
  }
  manual_compaction_ = false;
  MaybeScheduleBackgroundWork();
  return s;
}

void DBImpl::ReconfigureMonkeyLocked(int output_level) {
  if (options_.filter_allocation != FilterAllocation::kMonkey) {
    return;
  }
  // Monkey's optimum depends on the number of levels; re-derive it for the
  // tree's current depth so the budget matches the uniform baseline at
  // equal average bits/key. Newly built tables pick up the new bits; old
  // tables keep their (self-describing) filters until rewritten.
  const int depth =
      std::min(options_.max_levels,
               std::max({versions_->current()->MaxPopulatedLevel() + 1,
                         output_level + 1, 1}));
  table_cache_->ConfigureFilterBits(MonkeyBitsPerLevel(
      options_.filter_bits_per_key, depth, options_.size_ratio));
}

Status DBImpl::FlushMemTableLocked(PendingEvents* events) {
  // This flush rotates the WAL below; wait out any group-commit leader
  // that is appending — or parallel-applying — with mu_ released. (No
  // bg_error_ check needed: the leader clears log_busy_ and apply_busy_
  // on every path, success or failure.)
  while (log_busy_ || apply_busy_) {
    bg_cv_.Wait();
  }
  stats_.Add(Ticker::kFlushes);
  const auto flush_start = std::chrono::steady_clock::now();
  if (has_listeners()) {
    FlushJobInfo begin;
    begin.db_name = dbname_;
    events->push_back([begin](EventListener& l) { l.OnFlushBegin(begin); });
  }
  std::vector<FileMetaData> outputs;
  uint64_t bytes_written = 0;
  auto finish = [&](const Status& status) {
    const uint64_t micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - flush_start)
            .count());
    GetPerfContext()->flush_micros += micros;
    stats_.Record(PhaseHistogram::kFlushMicros,
                  static_cast<double>(micros));
    if (!has_listeners()) {
      return;
    }
    FlushJobInfo info;
    info.db_name = dbname_;
    info.bytes_written = bytes_written;
    info.micros = micros;
    info.status = status;
    if (status.ok()) {
      for (const FileMetaData& meta : outputs) {
        info.outputs.push_back(MakeTableFileInfo(meta, /*level=*/0));
        const TableFileInfo created = info.outputs.back();
        events->push_back(
            [created](EventListener& l) { l.OnTableFileCreated(created); });
      }
    }
    events->push_back([info](EventListener& l) { l.OnFlushEnd(info); });
  };
  ReconfigureMonkeyLocked(/*output_level=*/0);

  // Inline-mode flush: the whole freeze/build/install sequence runs under
  // mu_ by design (single-threaded configs have no one to yield to).
  ScopedBlockingIoAllowed allow_io("inline-mode flush");

  // WiscKey durability order: pointers are about to become durable in
  // tables, so their values must hit storage first.
  if (vlog_ != nullptr) {
    // io-under-lock-ok: inline-mode durability barrier before the flush.
    Status vs = vlog_->Sync(/*fsync=*/true);
    if (!vs.ok()) {
      finish(vs);
      return vs;
    }
  }

  // Rotate the WAL first so the new memtable's writes land in a fresh log.
  const uint64_t old_wal = wal_number_;
  Status s = NewWal();
  if (!s.ok()) {
    finish(s);
    return s;
  }

  std::unique_ptr<Iterator> iter(mem_->NewIterator());
  // io-under-lock-ok: inline-mode table build runs under mu_ by design.
  s = BuildTables(iter.get(), /*output_level=*/0,
                  /*drop_shadowed=*/false, /*drop_tombstones=*/false,
                  SmallestSnapshotLocked(), &outputs, &bytes_written);
  if (!s.ok()) {
    finish(s);
    return s;
  }
  stats_.Add(Ticker::kBytesFlushed, bytes_written);
  stats_.Add(Ticker::kTableFilesCreated, outputs.size());

  VersionEdit edit;
  const uint64_t run_seq = versions_->NewRunSeq();
  for (FileMetaData& meta : outputs) {
    meta.run_seq = run_seq;
    edit.AddFile(0, meta);
  }
  edit.SetLogNumber(wal_number_);  // everything older is durable in tables
  // io-under-lock-ok: inline-mode manifest install under mu_ by design.
  s = versions_->LogAndApply(&edit);
  if (!s.ok()) {
    finish(s);
    return s;
  }

  // Swap in an empty memtable and drop the old WAL.
  mem_->Unref();
  mem_ = new MemTable(icmp_, options_.memtable_rep,
                      options_.memtable_hash_index);
  mem_->Ref();
  if (options_.enable_wal && old_wal != 0) {
    // status-ok: best-effort; a leftover WAL is re-deleted on the next
    // recovery.
    // io-under-lock-ok: inline-mode WAL unlink tied to the install.
    options_.env->RemoveFile(WalFileName(dbname_, old_wal)).IgnoreError();
  }
  finish(Status::OK());
  return Status::OK();
}

Status DBImpl::BuildTables(Iterator* iter, int output_level,
                           bool drop_shadowed, bool drop_tombstones,
                           SequenceNumber smallest_snapshot,
                           std::vector<FileMetaData>* outputs,
                           uint64_t* bytes_written) {
  outputs->clear();
  *bytes_written = 0;
  const TableOptions& topts = table_cache_->TableOptionsForLevel(output_level);

  std::unique_ptr<WritableFile> file;
  std::unique_ptr<SSTableBuilder> builder;
  FileMetaData meta;
  Status s;

  auto finish_output = [&]() -> Status {
    if (builder == nullptr || builder->NumEntries() == 0) {
      if (builder != nullptr) {
        builder->Abandon();
        builder.reset();
        file.reset();
        // status-ok: empty output; the orphan sweep catches leftovers.
        options_.env->RemoveFile(TableFileName(dbname_, meta.number))
            .IgnoreError();
      }
      return Status::OK();
    }
    Status fs = builder->Finish();
    if (fs.ok()) {
      meta.file_size = builder->FileSize();
      *bytes_written += meta.file_size;
      meta.level = output_level;
      outputs->push_back(meta);
      fs = file->Close();
    }
    builder.reset();
    file.reset();
    return fs;
  };

  std::string last_user_key;
  bool has_last_user_key = false;
  SequenceNumber last_sequence_for_key = kMaxSequenceNumber;

  for (iter->SeekToFirst(); iter->Valid() && s.ok(); iter->Next()) {
    const Slice key = iter->key();
    const Slice user_key = ExtractUserKey(key);
    const SequenceNumber seq = ExtractSequence(key);
    const ValueType type = ExtractValueType(key);

    bool drop = false;
    if (drop_shadowed || drop_tombstones) {
      if (!has_last_user_key ||
          icmp_.user_comparator()->Compare(user_key, Slice(last_user_key)) !=
              0) {
        last_user_key.assign(user_key.data(), user_key.size());
        has_last_user_key = true;
        last_sequence_for_key = kMaxSequenceNumber;
      }
      if (drop_shadowed && last_sequence_for_key <= smallest_snapshot) {
        // A newer version visible to every snapshot shadows this entry.
        drop = true;
      } else if (drop_tombstones && type == ValueType::kTypeDeletion &&
                 seq <= smallest_snapshot) {
        // Bottom-most data: the tombstone has nothing left to delete.
        drop = true;
      }
      last_sequence_for_key = seq;
    }
    if (drop) {
      continue;
    }

    // Cut the output only at user-key boundaries: all versions of a user
    // key must live in one file, or a partial compaction could consume a
    // key's tombstone without its older versions (and vice versa),
    // breaking the bottommost-drop reasoning and run-overlap pruning.
    if (builder != nullptr &&
        builder->FileSize() >= options_.max_file_size &&
        icmp_.user_comparator()->Compare(
            user_key, ExtractUserKey(Slice(meta.largest))) != 0) {
      s = finish_output();
      if (!s.ok()) {
        break;
      }
    }

    if (builder == nullptr) {
      meta = FileMetaData();
      meta.number = versions_->NewFileNumber();
      s = options_.env->NewWritableFile(TableFileName(dbname_, meta.number),
                                        &file);
      if (!s.ok()) {
        break;
      }
      builder = std::make_unique<SSTableBuilder>(topts, file.get());
      meta.smallest = key.ToString();
    }
    builder->Add(key, iter->value());
    meta.largest = key.ToString();
  }
  if (s.ok()) {
    s = iter->status();
  }
  if (s.ok()) {
    s = finish_output();
  } else if (builder != nullptr) {
    builder->Abandon();
    builder.reset();
    file.reset();
    // status-ok: already failing; the orphan sweep catches leftovers.
    options_.env->RemoveFile(TableFileName(dbname_, meta.number))
        .IgnoreError();
  }
  return s;
}

SequenceNumber DBImpl::SmallestSnapshotLocked() const {
  if (snapshots_.empty()) {
    return versions_->last_sequence();
  }
  return *snapshots_.begin();
}

// ------------------------------------------------------------ Compaction --

Status DBImpl::MaybeCompact(PendingEvents* events, int max_picks) {
  Status s;
  int done = 0;
  while (s.ok() && (max_picks == 0 || done < max_picks)) {
    auto pick = policy_->Pick(*versions_->current());
    if (!pick.has_value()) {
      break;
    }
    s = DoCompaction(*pick, events);
    done++;
  }
  return s;
}

Status DBImpl::DoCompaction(const CompactionPick& pick,
                            PendingEvents* events) {
  stats_.Add(Ticker::kCompactions);
  ReconfigureMonkeyLocked(pick.output_level);

  if (pick.drop_only) {
    VersionEdit edit;
    for (const FileMetaPtr& f : pick.inputs) {
      edit.RemoveFile(pick.level, f->number);
    }
    ScopedBlockingIoAllowed allow_io("drop-only manifest install");
    // io-under-lock-ok: manifest install is atomic with the version swap.
    return versions_->LogAndApply(&edit);
  }

  const auto compaction_start = std::chrono::steady_clock::now();
  if (has_listeners()) {
    CompactionJobInfo begin;
    begin.db_name = dbname_;
    begin.input_level = pick.level;
    begin.output_level = pick.output_level;
    for (const FileMetaPtr& f : pick.inputs) {
      begin.inputs.push_back(MakeTableFileInfo(*f, pick.level));
    }
    for (const FileMetaPtr& f : pick.output_overlaps) {
      begin.inputs.push_back(MakeTableFileInfo(*f, pick.output_level));
    }
    events->push_back(
        [begin](EventListener& l) { l.OnCompactionBegin(begin); });
  }

  const VersionPtr base = versions_->current();
  const SequenceNumber smallest_snapshot = SmallestSnapshotLocked();

  // Tombstones can be dropped only when nothing deeper can hold the key:
  // no data below the output level, and every *other* run of the output
  // level is either the run we merge into (its remaining files cannot
  // overlap the compaction key range, or they would be in output_overlaps)
  // or fully consumed by this compaction.
  std::set<uint64_t> consumed;
  for (const FileMetaPtr& f : pick.inputs) {
    consumed.insert(f->number);
  }
  for (const FileMetaPtr& f : pick.output_overlaps) {
    consumed.insert(f->number);
  }
  bool bottommost = true;
  for (int lvl = pick.output_level + 1; lvl < base->num_levels(); lvl++) {
    if (!base->levels()[lvl].runs.empty()) {
      bottommost = false;
      break;
    }
  }
  if (bottommost) {
    for (const Run& run : base->levels()[pick.output_level].runs) {
      if (pick.output_run_seq != 0 && run.run_seq == pick.output_run_seq) {
        continue;
      }
      for (const FileMetaPtr& f : run.files) {
        if (consumed.count(f->number) == 0) {
          bottommost = false;
          break;
        }
      }
      if (!bottommost) {
        break;
      }
    }
  }

  // Merge all input + overlap files with the lock released: the inputs
  // are immutable files pinned by the pick's shared_ptrs, so reads and
  // writes proceed during the heavy lifting. Compactions themselves never
  // race — they are serialized on the background thread (or excluded by
  // the manual-compaction token).
  mu_.Unlock();
  std::vector<Iterator*> children;
  uint64_t input_accesses = 0;
  auto add_children = [&](const std::vector<FileMetaPtr>& files) {
    for (const FileMetaPtr& f : files) {
      children.push_back(table_cache_->NewIterator(f));
      if (options_.block_cache != nullptr) {
        input_accesses += options_.block_cache->FileAccesses(f->number);
      }
    }
  };
  add_children(pick.inputs);
  add_children(pick.output_overlaps);
  std::unique_ptr<Iterator> merged(NewMergingIterator(
      &icmp_, children.data(), static_cast<int>(children.size())));

  std::vector<FileMetaData> outputs;
  uint64_t bytes_written = 0;
  Status s = BuildTables(merged.get(), pick.output_level,
                         /*drop_shadowed=*/true,
                         /*drop_tombstones=*/bottommost, smallest_snapshot,
                         &outputs, &bytes_written);
  merged.reset();
  mu_.Lock();

  auto finish = [&](const Status& status) {
    const uint64_t micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - compaction_start)
            .count());
    GetPerfContext()->compaction_micros += micros;
    stats_.Record(PhaseHistogram::kCompactionMicros,
                  static_cast<double>(micros));
    if (!has_listeners()) {
      return;
    }
    CompactionJobInfo info;
    info.db_name = dbname_;
    info.input_level = pick.level;
    info.output_level = pick.output_level;
    info.bytes_written = bytes_written;
    info.micros = micros;
    info.status = status;
    for (const FileMetaPtr& f : pick.inputs) {
      info.inputs.push_back(MakeTableFileInfo(*f, pick.level));
    }
    for (const FileMetaPtr& f : pick.output_overlaps) {
      info.inputs.push_back(MakeTableFileInfo(*f, pick.output_level));
    }
    if (status.ok()) {
      for (const FileMetaData& meta : outputs) {
        info.outputs.push_back(MakeTableFileInfo(meta, pick.output_level));
        const TableFileInfo created = info.outputs.back();
        events->push_back(
            [created](EventListener& l) { l.OnTableFileCreated(created); });
      }
    }
    events->push_back([info](EventListener& l) { l.OnCompactionEnd(info); });
  };

  if (!s.ok()) {
    finish(s);
    return s;
  }
  stats_.Add(Ticker::kBytesCompacted, bytes_written);
  stats_.Add(Ticker::kTableFilesCreated, outputs.size());

  VersionEdit edit;
  for (const FileMetaPtr& f : pick.inputs) {
    edit.RemoveFile(pick.level, f->number);
  }
  for (const FileMetaPtr& f : pick.output_overlaps) {
    edit.RemoveFile(pick.output_level, f->number);
  }
  const uint64_t run_seq = pick.output_run_seq != 0 ? pick.output_run_seq
                                                    : versions_->NewRunSeq();
  for (FileMetaData& meta : outputs) {
    meta.run_seq = run_seq;
    edit.AddFile(pick.output_level, meta);
  }
  ScopedBlockingIoAllowed allow_io("compaction manifest install + re-warm");
  // io-under-lock-ok: manifest install is atomic with the version swap.
  s = versions_->LogAndApply(&edit);
  if (!s.ok()) {
    finish(s);
    return s;
  }

  // Leaper-style re-warm (tutorial §II-1): if the compaction consumed hot
  // files, immediately reload the output's blocks so readers do not take a
  // burst of cold misses.
  if (options_.prefetch_after_compaction && options_.block_cache != nullptr &&
      input_accesses >= options_.prefetch_hotness_threshold) {
    PrefetchOutputsLocked(pick, outputs);
  }
  finish(Status::OK());
  return Status::OK();
}

void DBImpl::PrefetchOutputsLocked(const CompactionPick& /*pick*/,
                                   const std::vector<FileMetaData>& outputs) {
  // Bounded by prefetch_budget_bytes and deliberately under mu_: the
  // re-warm must complete before readers see the new version's files cold.
  ScopedBlockingIoAllowed allow_io("post-compaction cache re-warm");
  size_t budget = options_.prefetch_budget_bytes;
  for (const FileMetaData& meta : outputs) {
    if (budget == 0) {
      break;
    }
    std::shared_ptr<SSTable> table;
    // io-under-lock-ok: budget-bounded output open for the re-warm.
    if (!table_cache_->FindTable(meta, &table).ok()) {
      continue;
    }
    // io-under-lock-ok: budget-bounded block reads re-warm the cache.
    const size_t loaded = table->PrefetchBlocks(budget);
    budget = loaded >= budget ? 0 : budget - loaded;
  }
}

// -------------------------------------------------------------- Read path --

Status DBImpl::Get(const ReadOptions& options, const Slice& key,
                   std::string* value) {
  // Measure the lookup with thread-local counters, then fold the delta
  // into the DB-wide registry — one snapshot/subtract per operation, no
  // atomics on the per-probe hot path.
  PerfContext* perf = GetPerfContext();
  const PerfContext before = *perf;
  Status s;
  {
    PerfTimer timer(&perf->get_micros);
    s = GetImpl(options, key, value);
  }
  stats_.Record(PhaseHistogram::kGetMicros,
                static_cast<double>(perf->get_micros - before.get_micros));
  stats_.MergePerfDelta(perf->Delta(before));
  return s;
}

DBImpl::ReadView DBImpl::PinReadView(const ReadOptions& options) {
  ReadView view;
  MutexLock lock(&mu_);
  view.mem = mem_;
  view.mem->Ref();
  view.imm = imm_;
  if (view.imm != nullptr) {
    view.imm->Ref();
  }
  view.version = versions_->current();
  view.sequence = options.snapshot != nullptr ? options.snapshot->sequence()
                                              : versions_->last_sequence();
  return view;
}

Status DBImpl::GetImpl(const ReadOptions& options, const Slice& key,
                       std::string* value) {
  stats_.Add(Ticker::kGets);

  const ReadView view = PinReadView(options);
  MemTable* mem = view.mem;
  MemTable* imm = view.imm;
  const VersionPtr& version = view.version;
  const SequenceNumber sequence = view.sequence;

  LookupKey lkey(key, sequence);
  Status s;
  bool done = false;

  // Newest data first: the live memtable, then the frozen one awaiting
  // flush, then the tree.
  if (mem->Get(lkey, value, &s) ||
      (imm != nullptr && imm->Get(lkey, value, &s))) {
    stats_.Add(Ticker::kMemtableHits);
    GetPerfContext()->memtable_hit_count++;
    done = true;
  }
  mem->Unref();
  if (imm != nullptr) {
    imm->Unref();
  }
  if (done) {
    if (s.ok()) {
      stats_.Add(Ticker::kGetsFound);
      if (vlog_ != nullptr) {
        const std::string stored = *value;
        s = ResolveValue(Slice(stored), value);
      }
    }
    return s;
  }

  // Hash the user key once; every filter probe reuses it (shared hashing,
  // tutorial §II-2 [95]).
  const uint64_t hash = Hash64(key);
  const Comparator* ucmp = icmp_.user_comparator();

  struct SaverState {
    const Comparator* ucmp;
    Slice user_key;
    std::string* value;
    enum { kNotFound, kFound, kDeleted } state = kNotFound;
  } saver{ucmp, key, value};

  auto handler = [&saver](const Slice& ikey, const Slice& v) {
    if (saver.ucmp->Compare(ExtractUserKey(ikey), saver.user_key) != 0) {
      return;  // seek overshot into the next user key: not present here
    }
    if (ExtractValueType(ikey) == ValueType::kTypeDeletion) {
      saver.state = SaverState::kDeleted;
    } else {
      saver.value->assign(v.data(), v.size());
      saver.state = SaverState::kFound;
    }
  };

  for (int level = 0; level < version->num_levels() && !done; level++) {
    for (const Run& run : version->levels()[level].runs) {
      // Locate the single candidate file within the (non-overlapping) run.
      const FileMetaPtr* candidate = FindFileInRun(run, ucmp, key);
      if (candidate == nullptr) {
        continue;
      }
      bool filter_skipped = false;
      s = table_cache_->Get(**candidate, lkey.internal_key(), key, hash,
                            options.use_filter, &filter_skipped, handler);
      if (!s.ok()) {
        return s;
      }
      if (filter_skipped) {
        stats_.Add(Ticker::kFilterSkips);
        continue;
      }
      stats_.Add(Ticker::kRunsProbed);
      if (saver.state != SaverState::kNotFound) {
        done = true;
        break;
      }
      // The probe paid an I/O and found nothing: read-trigger signal.
      const uint64_t wasted = (*candidate)->wasted_probes.fetch_add(
                                  1, std::memory_order_relaxed) +
                              1;
      if (options_.seek_compaction_threshold > 0 &&
          wasted >= options_.seek_compaction_threshold) {
        pending_seek_compaction_.store(true, std::memory_order_relaxed);
      }
    }
  }

  switch (saver.state) {
    case SaverState::kFound: {
      stats_.Add(Ticker::kGetsFound);
      if (vlog_ != nullptr) {
        const std::string stored = *value;
        return ResolveValue(Slice(stored), value);
      }
      return Status::OK();
    }
    case SaverState::kDeleted:
    case SaverState::kNotFound:
      return Status::NotFound("");
  }
  return Status::NotFound("");
}

Iterator* DBImpl::NewRunIterator(const Run& run) {
  if (run.files.size() == 1) {
    return table_cache_->NewIterator(run.files[0]);
  }
  // Index iterator over the run's files: key = largest internal key of the
  // file, value = index into a pinned copy of the file list.
  auto files = std::make_shared<std::vector<FileMetaPtr>>(run.files);

  class RunFileIndexIterator : public Iterator {
   public:
    explicit RunFileIndexIterator(
        std::shared_ptr<std::vector<FileMetaPtr>> files,
        const InternalKeyComparator* icmp)
        : files_(std::move(files)), icmp_(icmp), pos_(files_->size()) {}

    bool Valid() const override { return pos_ < files_->size(); }
    void SeekToFirst() override { pos_ = 0; }
    void SeekToLast() override {
      pos_ = files_->empty() ? 0 : files_->size() - 1;
    }
    void Seek(const Slice& target) override {
      // First file whose largest >= target.
      size_t lo = 0;
      size_t hi = files_->size();
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (icmp_->Compare(Slice((*files_)[mid]->largest), target) < 0) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      pos_ = lo;
    }
    void Next() override { pos_++; }
    void Prev() override { pos_ = pos_ == 0 ? files_->size() : pos_ - 1; }
    Slice key() const override { return Slice((*files_)[pos_]->largest); }
    Slice value() const override {
      buf_.clear();
      PutFixed64(&buf_, pos_);
      return Slice(buf_);
    }
    Status status() const override { return Status::OK(); }

   private:
    std::shared_ptr<std::vector<FileMetaPtr>> files_;
    const InternalKeyComparator* icmp_;
    size_t pos_;
    mutable std::string buf_;
  };

  TableCache* cache = table_cache_.get();
  return NewTwoLevelIterator(
      new RunFileIndexIterator(files, &icmp_),
      [files, cache](const Slice& index_value) -> Iterator* {
        const uint64_t pos = DecodeFixed64(index_value.data());
        return cache->NewIterator((*files)[pos]);
      });
}

void DBImpl::CollectIterators(const ReadView& view, const Slice* lo,
                              const Slice* hi,
                              std::vector<Iterator*>* children) {
  children->push_back(view.mem->NewIterator());
  if (view.imm != nullptr) {
    children->push_back(view.imm->NewIterator());
  }
  const Comparator* ucmp = icmp_.user_comparator();

  // No lock held here: RangeMayMatch may fault a cold table open, which
  // must never stall writers (found by tools/check_lock_io.py when this
  // ran under mu_).
  for (const LevelState& level : view.version->levels()) {
    for (const Run& run : level.runs) {
      if (lo != nullptr && hi != nullptr) {
        // Range-filter pruning: include only files that overlap the range
        // and whose range filter says "maybe" (tutorial §II-3).
        std::vector<FileMetaPtr> kept;
        for (const FileMetaPtr& f : run.files) {
          if (ucmp->Compare(*hi, ExtractUserKey(Slice(f->smallest))) < 0 ||
              ucmp->Compare(*lo, ExtractUserKey(Slice(f->largest))) > 0) {
            continue;  // outside the range entirely
          }
          if (!table_cache_->RangeMayMatch(*f, *lo, *hi)) {
            stats_.Add(Ticker::kRangeFilterSkips);
            continue;
          }
          kept.push_back(f);
        }
        if (kept.empty()) {
          continue;
        }
        Run pruned;
        pruned.run_seq = run.run_seq;
        pruned.files = std::move(kept);
        children->push_back(NewRunIterator(pruned));
      } else {
        children->push_back(NewRunIterator(run));
      }
    }
  }
}

Iterator* DBImpl::NewRawIterator(const ReadOptions& options) {
  ReadView view = PinReadView(options);
  std::vector<Iterator*> children;
  CollectIterators(view, nullptr, nullptr, &children);
  view.mem->Unref();
  if (view.imm != nullptr) {
    view.imm->Unref();
  }
  Iterator* merged = NewMergingIterator(&icmp_, children.data(),
                                        static_cast<int>(children.size()));
  return NewDBIterator(icmp_.user_comparator(), merged, view.sequence);
}

namespace {

/// User iterator that resolves separated values through the value log.
class ResolvingIterator : public Iterator {
 public:
  ResolvingIterator(Iterator* base, DBImpl* db) : base_(base), db_(db) {}

  bool Valid() const override { return base_->Valid(); }
  void SeekToFirst() override { Move([&] { base_->SeekToFirst(); }); }
  void SeekToLast() override { Move([&] { base_->SeekToLast(); }); }
  void Seek(const Slice& t) override { Move([&] { base_->Seek(t); }); }
  void Next() override { Move([&] { base_->Next(); }); }
  void Prev() override { Move([&] { base_->Prev(); }); }
  Slice key() const override { return base_->key(); }
  Slice value() const override { return Slice(resolved_); }
  Status status() const override {
    return status_.ok() ? base_->status() : status_;
  }

 private:
  template <typename Fn>
  void Move(Fn&& fn) {
    fn();
    resolved_.clear();
    if (base_->Valid()) {
      Status s = db_->ResolveValue(base_->value(), &resolved_);
      if (!s.ok() && status_.ok()) {
        status_ = s;
      }
    }
  }

  std::unique_ptr<Iterator> base_;
  DBImpl* db_;
  std::string resolved_;
  Status status_;
};

}  // namespace

Iterator* DBImpl::NewIterator(const ReadOptions& options) {
  Iterator* raw = NewRawIterator(options);
  if (vlog_ == nullptr) {
    return raw;
  }
  return new ResolvingIterator(raw, this);
}

Status DBImpl::Scan(
    const ReadOptions& options, const Slice& start, const Slice& end,
    size_t limit,
    std::vector<std::pair<std::string, std::string>>* results) {
  // Like Get: per-thread counters during the scan, one registry fold after.
  PerfContext* perf = GetPerfContext();
  const PerfContext before = *perf;
  Status s = ScanImpl(options, start, end, limit, results);
  stats_.MergePerfDelta(perf->Delta(before));
  return s;
}

Status DBImpl::ScanImpl(
    const ReadOptions& options, const Slice& start, const Slice& end,
    size_t limit,
    std::vector<std::pair<std::string, std::string>>* results) {
  results->clear();
  ReadView view = PinReadView(options);
  std::vector<Iterator*> children;
  CollectIterators(view, &start, &end, &children);
  view.mem->Unref();
  if (view.imm != nullptr) {
    view.imm->Unref();
  }
  Iterator* merged = NewMergingIterator(&icmp_, children.data(),
                                        static_cast<int>(children.size()));
  std::unique_ptr<Iterator> iter(
      NewDBIterator(icmp_.user_comparator(), merged, view.sequence));

  const Comparator* ucmp = icmp_.user_comparator();
  for (iter->Seek(start); iter->Valid(); iter->Next()) {
    if (ucmp->Compare(iter->key(), end) > 0) {
      break;
    }
    std::string resolved;
    Status rs = ResolveValue(iter->value(), &resolved);
    if (!rs.ok()) {
      return rs;
    }
    results->emplace_back(iter->key().ToString(), std::move(resolved));
    if (results->size() >= limit) {
      break;
    }
  }
  return iter->status();
}

const Snapshot* DBImpl::GetSnapshot() {
  MutexLock lock(&mu_);
  const SequenceNumber seq = versions_->last_sequence();
  snapshots_.insert(seq);
  return new SnapshotImpl(seq);
}

void DBImpl::ReleaseSnapshot(const Snapshot* snapshot) {
  if (snapshot == nullptr) {
    return;
  }
  MutexLock lock(&mu_);
  auto it = snapshots_.find(snapshot->sequence());
  if (it != snapshots_.end()) {
    snapshots_.erase(it);
  }
  delete snapshot;
}

// ------------------------------------------------------------------ Stats --

DBStats DBImpl::GetStats() {
  DBStats stats;
  MutexLock lock(&mu_);
  VersionPtr v = versions_->current();
  stats.num_levels = v->num_levels();
  stats.total_runs = v->TotalRuns();
  stats.total_files = v->NumFiles();
  for (const LevelState& level : v->levels()) {
    stats.runs_per_level.push_back(static_cast<int>(level.runs.size()));
    stats.bytes_per_level.push_back(level.TotalBytes());
    stats.total_bytes += level.TotalBytes();
  }
  stats.bytes_flushed = stats_.Get(Ticker::kBytesFlushed);
  stats.bytes_compacted = stats_.Get(Ticker::kBytesCompacted);
  stats.compactions = stats_.Get(Ticker::kCompactions);
  stats.flushes = stats_.Get(Ticker::kFlushes);
  stats.gets = stats_.Get(Ticker::kGets);
  stats.gets_found = stats_.Get(Ticker::kGetsFound);
  stats.memtable_hits = stats_.Get(Ticker::kMemtableHits);
  stats.runs_probed = stats_.Get(Ticker::kRunsProbed);
  stats.filter_skips = stats_.Get(Ticker::kFilterSkips);
  stats.range_filter_skips = stats_.Get(Ticker::kRangeFilterSkips);
  stats.multigets = stats_.Get(Ticker::kMultiGets);
  stats.multiget_keys = stats_.Get(Ticker::kMultiGetKeys);
  stats.multiget_filter_pruned = stats_.Get(Ticker::kMultiGetFilterPruned);
  stats.multiget_coalesced_block_hits =
      stats_.Get(Ticker::kMultiGetCoalescedBlockHits);
  stats.write_slowdowns = stats_.Get(Ticker::kWriteSlowdowns);
  stats.write_stalls = stats_.Get(Ticker::kWriteStalls);
  stats.write_slowdown_micros = stats_.Get(Ticker::kWriteSlowdownMicros);
  stats.write_stall_micros = stats_.Get(Ticker::kWriteStallMicros);
  stats.writes = stats_.Get(Ticker::kWrites);
  stats.group_commits = stats_.Get(Ticker::kWalGroupCommits);
  stats.group_followers = stats_.Get(Ticker::kWalGroupFollowers);
  stats.wal_syncs = stats_.Get(Ticker::kWalSyncs);
  stats.wal_sync_skipped = stats_.Get(Ticker::kWalSyncSkipped);
  stats.vlog_syncs = stats_.Get(Ticker::kVlogSyncs);
  stats.parallel_applies = stats_.Get(Ticker::kMemtableParallelApplies);
  stats.serial_applies = stats_.Get(Ticker::kMemtableSerialApplies);
  stats.insert_cas_retries = stats_.Get(Ticker::kMemtableInsertCasRetries);
  const SSTable::Counters counters = table_cache_->AggregateCounters();
  stats.hash_index_hits = counters.hash_index_hits;
  stats.hash_index_absent = counters.hash_index_absent;
  stats.learned_index_seeks = counters.learned_index_seeks;
  stats.index_filter_memory = table_cache_->IndexMemoryUsage();
  if (vlog_ != nullptr) {
    stats.value_log_bytes = vlog_->TotalBytes();
    stats.value_log_files = vlog_->NumFiles();
    stats.separated_reads = stats_.Get(Ticker::kSeparatedReads);
  }
  return stats;
}

bool DBImpl::GetProperty(const Slice& property, std::string* value) {
  value->clear();
  if (property == Slice("lsmlab.stats")) {
    *value = stats_.Dump();
    return true;
  }
  if (property == Slice("lsmlab.perf-context")) {
    *value = GetPerfContext()->ToString(/*include_zero=*/true);
    return true;
  }
  if (property == Slice("lsmlab.io-stats")) {
    *value = options_.env->io_stats()->ToString();
    return true;
  }
  return false;
}

std::string DBImpl::DebugShape() {
  MutexLock lock(&mu_);
  std::string shape = versions_->current()->DebugString();
  shape += "last_sequence=" + std::to_string(versions_->last_sequence()) +
           " log_number=" + std::to_string(versions_->log_number()) +
           " wal_number=" + std::to_string(wal_number_) + "\n";
  return shape;
}

}  // namespace lsmlab
