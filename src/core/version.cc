#include "core/version.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "core/filename.h"
#include "core/table_cache.h"
#include "util/coding.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace lsmlab {

// --------------------------------------------------------------- Version --

int Version::TotalRuns() const {
  int total = 0;
  for (const auto& level : levels_) {
    total += static_cast<int>(level.runs.size());
  }
  return total;
}

int Version::NumFiles() const {
  int total = 0;
  for (const auto& level : levels_) {
    for (const auto& run : level.runs) {
      total += static_cast<int>(run.files.size());
    }
  }
  return total;
}

const FileMetaPtr* FindFileInRun(const Run& run, const Comparator* ucmp,
                                 const Slice& user_key) {
  // First file whose largest user key is >= user_key; since run files are
  // sorted and disjoint, it is the only candidate.
  size_t lo = 0;
  size_t hi = run.files.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (ucmp->Compare(ExtractUserKey(Slice(run.files[mid]->largest)),
                      user_key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == run.files.size()) {
    return nullptr;
  }
  if (ucmp->Compare(user_key,
                    ExtractUserKey(Slice(run.files[lo]->smallest))) < 0) {
    return nullptr;
  }
  return &run.files[lo];
}

int Version::MaxPopulatedLevel() const {
  for (int i = num_levels() - 1; i >= 0; i--) {
    if (!levels_[i].runs.empty()) {
      return i;
    }
  }
  return -1;
}

std::string Version::DebugString() const {
  std::ostringstream out;
  for (int i = 0; i < num_levels(); i++) {
    if (levels_[i].runs.empty()) {
      continue;
    }
    out << "level " << i << ": ";
    for (const auto& run : levels_[i].runs) {
      out << "[run " << run.run_seq << ": " << run.files.size() << " files, "
          << run.TotalBytes() << " bytes] ";
    }
    out << "\n";
  }
  return out.str();
}

// ----------------------------------------------------------- VersionEdit --

namespace {

enum EditTag : uint32_t {
  kComparator = 1,
  kLogNumber = 2,
  kNextFileNumber = 3,
  kLastSequence = 4,
  kNextRunSeq = 5,
  kDeletedFile = 6,
  kNewFile = 7,
};

}  // namespace

void VersionEdit::EncodeTo(std::string* dst) const {
  if (has_comparator_) {
    PutVarint32(dst, kComparator);
    PutLengthPrefixedSlice(dst, Slice(comparator_));
  }
  if (has_log_number_) {
    PutVarint32(dst, kLogNumber);
    PutVarint64(dst, log_number_);
  }
  if (has_next_file_number_) {
    PutVarint32(dst, kNextFileNumber);
    PutVarint64(dst, next_file_number_);
  }
  if (has_last_sequence_) {
    PutVarint32(dst, kLastSequence);
    PutVarint64(dst, last_sequence_);
  }
  if (has_next_run_seq_) {
    PutVarint32(dst, kNextRunSeq);
    PutVarint64(dst, next_run_seq_);
  }
  for (const auto& [level, number] : deleted_files_) {
    PutVarint32(dst, kDeletedFile);
    PutVarint32(dst, static_cast<uint32_t>(level));
    PutVarint64(dst, number);
  }
  for (const auto& [level, meta] : new_files_) {
    PutVarint32(dst, kNewFile);
    PutVarint32(dst, static_cast<uint32_t>(level));
    PutVarint64(dst, meta.number);
    PutVarint64(dst, meta.file_size);
    PutVarint64(dst, meta.run_seq);
    PutLengthPrefixedSlice(dst, Slice(meta.smallest));
    PutLengthPrefixedSlice(dst, Slice(meta.largest));
  }
}

Status VersionEdit::DecodeFrom(const Slice& src) {
  *this = VersionEdit();
  Slice input = src;
  uint32_t tag;
  while (!input.empty()) {
    // A tag that ends mid-varint is a truncated edit, not a clean end.
    if (!GetVarint32(&input, &tag)) {
      return Status::Corruption("truncated version edit tag");
    }
    switch (tag) {
      case kComparator: {
        Slice name;
        if (!GetLengthPrefixedSlice(&input, &name)) {
          return Status::Corruption("bad comparator name in version edit");
        }
        has_comparator_ = true;
        comparator_ = name.ToString();
        break;
      }
      case kLogNumber:
        if (!GetVarint64(&input, &log_number_)) {
          return Status::Corruption("bad log number");
        }
        has_log_number_ = true;
        break;
      case kNextFileNumber:
        if (!GetVarint64(&input, &next_file_number_)) {
          return Status::Corruption("bad next file number");
        }
        has_next_file_number_ = true;
        break;
      case kLastSequence:
        if (!GetVarint64(&input, &last_sequence_)) {
          return Status::Corruption("bad last sequence");
        }
        has_last_sequence_ = true;
        break;
      case kNextRunSeq:
        if (!GetVarint64(&input, &next_run_seq_)) {
          return Status::Corruption("bad next run seq");
        }
        has_next_run_seq_ = true;
        break;
      case kDeletedFile: {
        uint32_t level;
        uint64_t number;
        if (!GetVarint32(&input, &level) || !GetVarint64(&input, &number)) {
          return Status::Corruption("bad deleted file");
        }
        deleted_files_.emplace_back(static_cast<int>(level), number);
        break;
      }
      case kNewFile: {
        uint32_t level;
        FileMetaData meta;
        Slice smallest, largest;
        if (!GetVarint32(&input, &level) ||
            !GetVarint64(&input, &meta.number) ||
            !GetVarint64(&input, &meta.file_size) ||
            !GetVarint64(&input, &meta.run_seq) ||
            !GetLengthPrefixedSlice(&input, &smallest) ||
            !GetLengthPrefixedSlice(&input, &largest)) {
          return Status::Corruption("bad new file");
        }
        meta.level = static_cast<int>(level);
        meta.smallest = smallest.ToString();
        meta.largest = largest.ToString();
        new_files_.emplace_back(static_cast<int>(level), meta);
        break;
      }
      default:
        return Status::Corruption("unknown version edit tag");
    }
  }
  return Status::OK();
}

// ------------------------------------------------------------ VersionSet --

VersionSet::VersionSet(std::string dbname, const Options* options,
                       TableCache* table_cache,
                       const InternalKeyComparator* icmp)
    : dbname_(std::move(dbname)),
      options_(options),
      env_(options->env),
      table_cache_(table_cache),
      icmp_(icmp),
      current_(std::make_shared<Version>(options->max_levels)) {}

VersionSet::~VersionSet() = default;

FileMetaPtr VersionSet::WrapFile(const FileMetaData& meta) {
  auto file = std::make_shared<FileMetaData>(meta);
  Env* env = env_;
  TableCache* cache = table_cache_;
  const std::string dbname = dbname_;
  // Reads deletion_observer_ at fire time (not capture time) so an observer
  // registered after recovery still sees recovery-era files; `this` outlives
  // every cleanup because ~VersionSet drops the last Version itself.
  file->cleanup = [this, env, cache, dbname](FileMetaData* f) {
    cache->Evict(f->number);
    // status-ok: best-effort; an undeleted table is swept as an orphan
    // on reopen.
    env->RemoveFile(TableFileName(dbname, f->number)).IgnoreError();
    if (deletion_observer_) {
      deletion_observer_(f->number);
    }
  };
  return file;
}

std::shared_ptr<Version> VersionSet::ApplyEdit(const Version& base,
                                               const VersionEdit& edit) {
  auto v = std::make_shared<Version>(options_->max_levels);
  std::set<uint64_t> deleted;
  for (const auto& [level, number] : edit.deleted_files_) {
    deleted.insert(number);
  }

  // Copy surviving files, preserving run structure.
  for (int level = 0; level < base.num_levels(); level++) {
    for (const Run& run : base.levels()[level].runs) {
      Run copy;
      copy.run_seq = run.run_seq;
      for (const FileMetaPtr& f : run.files) {
        if (deleted.count(f->number) == 0) {
          copy.files.push_back(f);
        }
        // NOT marked obsolete here: the edit may still fail to reach the
        // manifest, and a durable manifest must never reference a deleted
        // file. LogAndApply marks dropped files once the install is synced;
        // files dropped on other paths are swept as orphans at reopen.
      }
      if (!copy.files.empty()) {
        (*v->mutable_levels())[level].runs.push_back(std::move(copy));
      }
    }
  }

  // Insert new files, grouping by run_seq.
  for (const auto& [level, meta] : edit.new_files_) {
    if (level < 0 || level >= v->num_levels()) {
      // Levels come off the manifest; Recover rejects out-of-range ones
      // before this point, so this only defends internally-built edits.
      continue;
    }
    auto& runs = (*v->mutable_levels())[level].runs;
    Run* run = nullptr;
    for (Run& r : runs) {
      if (r.run_seq == meta.run_seq) {
        run = &r;
        break;
      }
    }
    if (run == nullptr) {
      runs.emplace_back();
      run = &runs.back();
      run->run_seq = meta.run_seq;
    }
    FileMetaData m = meta;
    m.level = level;
    run->files.push_back(WrapFile(m));
  }

  // Keep runs newest-first and files within a run ordered by smallest key.
  for (int level = 0; level < v->num_levels(); level++) {
    auto& runs = (*v->mutable_levels())[level].runs;
    std::sort(runs.begin(), runs.end(), [](const Run& a, const Run& b) {
      return a.run_seq > b.run_seq;
    });
    for (Run& run : runs) {
      std::sort(run.files.begin(), run.files.end(),
                [this](const FileMetaPtr& a, const FileMetaPtr& b) {
                  return icmp_->Compare(Slice(a->smallest),
                                        Slice(b->smallest)) < 0;
                });
    }
  }
  return v;
}

Status VersionSet::WriteSnapshot(wal::Writer* manifest_writer) {
  VersionEdit edit;
  edit.SetComparatorName(icmp_->user_comparator()->Name());
  edit.SetNextFileNumber(next_file_number_);
  edit.SetLastSequence(last_sequence_);
  edit.SetNextRunSeq(next_run_seq_);
  edit.SetLogNumber(log_number_);
  for (int level = 0; level < current_->num_levels(); level++) {
    for (const Run& run : current_->levels()[level].runs) {
      for (const FileMetaPtr& f : run.files) {
        edit.AddFile(level, *f);
      }
    }
  }
  std::string record;
  edit.EncodeTo(&record);
  return manifest_writer->AddRecord(Slice(record));
}

Status VersionSet::LogAndApply(VersionEdit* edit) {
  if (edit->has_log_number_) {
    log_number_ = edit->log_number_;
  } else {
    edit->SetLogNumber(log_number_);
  }
  edit->SetNextFileNumber(next_file_number_);
  edit->SetLastSequence(last_sequence_);
  edit->SetNextRunSeq(next_run_seq_);

  auto v = ApplyEdit(*current_, *edit);

  std::string record;
  edit->EncodeTo(&record);
  Status s = manifest_writer_->AddRecord(Slice(record));
  if (s.ok()) {
    s = manifest_file_->Sync();
  }
  if (!s.ok()) {
    return s;
  }
  // The edit is durable: files it drops may be physically deleted once the
  // last reference (old versions, iterators) goes away. Marking before the
  // sync would let a failed install delete files a crash-recovered manifest
  // still references.
  if (!edit->deleted_files_.empty()) {
    std::set<uint64_t> deleted;
    for (const auto& [level, number] : edit->deleted_files_) {
      deleted.insert(number);
    }
    for (const auto& level : current_->levels()) {
      for (const Run& run : level.runs) {
        for (const FileMetaPtr& f : run.files) {
          if (deleted.count(f->number) != 0) {
            f->obsolete = true;
          }
        }
      }
    }
  }
  current_ = std::move(v);
  return Status::OK();
}

namespace {

class LogReporter : public wal::Reader::Reporter {
 public:
  Status status;
  void Corruption(size_t /*bytes*/, const Status& s) override {
    if (status.ok()) {
      status = s;
    }
  }
};

}  // namespace

Status VersionSet::Recover() {
  // status-ok: dir may already exist; a real failure surfaces when
  // CURRENT is read.
  env_->CreateDir(dbname_).IgnoreError();
  const std::string current_name = CurrentFileName(dbname_);

  if (!env_->FileExists(current_name)) {
    if (!options_->create_if_missing) {
      return Status::InvalidArgument(dbname_, "does not exist");
    }
    // Fresh DB: write an initial manifest.
    manifest_number_ = NewFileNumber();
    const std::string manifest_name =
        ManifestFileName(dbname_, manifest_number_);
    Status s = env_->NewWritableFile(manifest_name, &manifest_file_);
    if (!s.ok()) {
      return s;
    }
    manifest_writer_ = std::make_unique<wal::Writer>(manifest_file_.get());
    s = WriteSnapshot(manifest_writer_.get());
    if (s.ok()) {
      // The manifest must be durable before CURRENT points at it.
      s = manifest_file_->Sync();
    }
    if (!s.ok()) {
      return s;
    }
    return WriteStringToFile(
        env_, Slice(manifest_name.substr(dbname_.size() + 1) + "\n"),
        current_name);
  }

  if (options_->error_if_exists) {
    return Status::InvalidArgument(dbname_, "exists (error_if_exists)");
  }

  std::string current_contents;
  Status s = ReadFileToString(env_, current_name, &current_contents);
  if (!s.ok()) {
    return s;
  }
  if (current_contents.empty() || current_contents.back() != '\n') {
    return Status::Corruption("CURRENT file malformed");
  }
  current_contents.pop_back();
  const std::string manifest_name = dbname_ + "/" + current_contents;

  std::unique_ptr<SequentialFile> manifest;
  s = env_->NewSequentialFile(manifest_name, &manifest);
  if (!s.ok()) {
    return s;
  }
  LogReporter reporter;
  wal::Reader reader(manifest.get(), &reporter);
  Slice record;
  std::string scratch;
  auto v = std::make_shared<Version>(options_->max_levels);
  while (reader.ReadRecord(&record, &scratch)) {
    VersionEdit edit;
    s = edit.DecodeFrom(record);
    if (!s.ok()) {
      return s;
    }
    // A manifest is untrusted input: levels index straight into the
    // version's level vector, so reject out-of-range ones here instead of
    // corrupting memory in ApplyEdit on a release build.
    for (const auto& [level, meta] : edit.new_files_) {
      if (level < 0 || level >= options_->max_levels) {
        return Status::Corruption("version edit level out of range");
      }
    }
    for (const auto& [level, number] : edit.deleted_files_) {
      if (level < 0 || level >= options_->max_levels) {
        return Status::Corruption("version edit level out of range");
      }
    }
    if (edit.has_comparator_ &&
        edit.comparator_ != icmp_->user_comparator()->Name()) {
      return Status::InvalidArgument("comparator mismatch: ",
                                     edit.comparator_);
    }
    if (edit.has_next_file_number_) {
      next_file_number_ = edit.next_file_number_;
    }
    if (edit.has_last_sequence_) {
      last_sequence_ = edit.last_sequence_;
    }
    if (edit.has_next_run_seq_) {
      next_run_seq_ = edit.next_run_seq_;
    }
    if (edit.has_log_number_) {
      log_number_ = edit.log_number_;
    }
    v = ApplyEdit(*v, edit);
  }
  if (!reporter.status.ok()) {
    return reporter.status;
  }
  current_ = std::move(v);

  // Continue appending to a fresh manifest (simplest correct form of
  // manifest rollover).
  manifest_number_ = NewFileNumber();
  const std::string new_manifest =
      ManifestFileName(dbname_, manifest_number_);
  s = env_->NewWritableFile(new_manifest, &manifest_file_);
  if (!s.ok()) {
    return s;
  }
  manifest_writer_ = std::make_unique<wal::Writer>(manifest_file_.get());
  s = WriteSnapshot(manifest_writer_.get());
  if (s.ok()) {
    s = manifest_file_->Sync();  // durable before CURRENT references it
  }
  if (!s.ok()) {
    return s;
  }
  s = WriteStringToFile(
      env_, Slice(new_manifest.substr(dbname_.size() + 1) + "\n"),
      current_name);
  if (s.ok()) {
    // status-ok: best-effort; a stale manifest is ignored once CURRENT
    // moved on.
    env_->RemoveFile(manifest_name).IgnoreError();
  }
  return s;
}

void VersionSet::RemoveOrphanedFiles() {
  std::vector<std::string> children;
  if (!env_->GetChildren(dbname_, &children).ok()) {
    return;
  }
  std::set<uint64_t> live;
  for (const auto& level : current_->levels()) {
    for (const auto& run : level.runs) {
      for (const auto& f : run.files) {
        live.insert(f->number);
      }
    }
  }
  for (const std::string& child : children) {
    uint64_t number;
    FileType type;
    if (!ParseFileName(child, &number, &type)) {
      continue;
    }
    bool keep = true;
    switch (type) {
      case FileType::kTableFile:
        keep = live.count(number) > 0;
        break;
      case FileType::kWalFile:
        keep = number >= log_number_;
        break;
      case FileType::kManifestFile:
        keep = number >= manifest_number_;
        break;
      default:
        keep = true;
    }
    if (!keep) {
      table_cache_->Evict(number);
      // status-ok: best-effort; an unremovable orphan is retried on the
      // next reopen.
      env_->RemoveFile(dbname_ + "/" + child).IgnoreError();
    }
  }
}

}  // namespace lsmlab
