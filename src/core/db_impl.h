#ifndef LSMLAB_CORE_DB_IMPL_H_
#define LSMLAB_CORE_DB_IMPL_H_

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/compaction/compaction_policy.h"
#include "core/db.h"
#include "core/table_cache.h"
#include "core/version.h"
#include "memtable/memtable.h"
#include "util/mutex.h"
#include "util/thread_pool.h"
#include "vlog/value_log.h"
#include "wal/log_writer.h"

namespace lsmlab {

class DBImpl : public DB {
 public:
  DBImpl(const Options& options, std::string dbname);
  ~DBImpl() override;

  /// Recovers manifest + WAL; called once by DB::Open.
  Status Init();

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  Status Scan(const ReadOptions& options, const Slice& start,
              const Slice& end, size_t limit,
              std::vector<std::pair<std::string, std::string>>* results)
      override;
  Status GarbageCollectValues() override;
  /// Unwraps a stored (possibly tagged/separated) value into *out. Public
  /// for the resolving iterator; not part of the DB interface.
  Status ResolveValue(const Slice& stored, std::string* out);
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  Status CompactAll() override;
  Status Flush() override;
  DBStats GetStats() override;
  std::string DebugShape() override;

 private:
  class SnapshotImpl : public Snapshot {
   public:
    explicit SnapshotImpl(SequenceNumber seq) : seq_(seq) {}
    SequenceNumber sequence() const override { return seq_; }

   private:
    SequenceNumber seq_;
  };

  /// Replays WAL files newer than the manifest's log number.
  Status RecoverWal() REQUIRES(mu_);
  Status NewWal() REQUIRES(mu_);
  /// Flushes the current memtable into a level-0 run, entirely under mu_
  /// (inline mode and recovery).
  Status FlushMemTableLocked() REQUIRES(mu_);
  /// Freezes mem_ into imm_ behind a fresh memtable + WAL so writers can
  /// continue while the background thread flushes. REQUIRES additionally:
  /// imm_ == nullptr.
  Status FreezeMemTableLocked() REQUIRES(mu_);
  /// Write controller (background mode): blocks until mem_ has room,
  /// applying the L0 slowdown/stop triggers and the pending-imm stall.
  /// May release and reacquire mu_.
  Status MakeRoomForWrite() REQUIRES(mu_);
  /// Schedules a background task when work is pending (a frozen memtable
  /// or a compaction hint) and none is queued.
  void MaybeScheduleBackgroundWork() REQUIRES(mu_);
  /// Thread-pool entry point: drains flush + compaction work.
  void BackgroundCall() EXCLUDES(mu_);
  /// Runs flushes and compactions until none is pending; releases mu_
  /// while building tables.
  void BackgroundWork() REQUIRES(mu_);
  /// Flushes imm_ into a level-0 run, building tables with mu_ released;
  /// only the manifest install holds it. REQUIRES additionally:
  /// imm_ != nullptr. On failure the error is also recorded in bg_error_.
  Status FlushImmMemTable() REQUIRES(mu_);
  /// Waits until no background task is queued or running.
  void WaitForBackgroundLocked() REQUIRES(mu_);
  /// Counted condition-variable wait: blocks on bg_cv_ and accrues the
  /// stall counters.
  void StallWait() REQUIRES(mu_);
  /// Re-derives the Monkey per-level filter allocation for the current
  /// tree depth.
  void ReconfigureMonkeyLocked(int output_level) REQUIRES(mu_);
  /// Runs compactions until the policy is satisfied, or until `max_picks`
  /// compactions have run (0 = unlimited); may release mu_ during merges.
  Status MaybeCompact(int max_picks = 0) REQUIRES(mu_);
  /// Executes one compaction: the merge itself runs with mu_ released
  /// (inputs are immutable files); pick metadata capture and the version
  /// install hold it.
  Status DoCompaction(const CompactionPick& pick) REQUIRES(mu_);
  /// Builds output file(s) from `iter`, splitting at max_file_size.
  /// Thread-safe: touches no mu_-protected state (the snapshot horizon is
  /// captured by the caller while it still holds mu_).
  Status BuildTables(Iterator* iter, int output_level, bool drop_shadowed,
                     bool drop_tombstones, SequenceNumber smallest_snapshot,
                     std::vector<FileMetaData>* outputs,
                     uint64_t* bytes_written);
  SequenceNumber SmallestSnapshotLocked() const REQUIRES(mu_);
  void PrefetchOutputsLocked(const CompactionPick& pick,
                             const std::vector<FileMetaData>& outputs)
      REQUIRES(mu_);
  /// One run's iterator: concatenation of its (non-overlapping) files.
  Iterator* NewRunIterator(const Run& run);
  /// Collects child iterators for the given bounds (nullptr bounds = all),
  /// consulting range filters when bounds are present.
  void CollectIterators(const Slice* lo, const Slice* hi,
                        std::vector<Iterator*>* children) REQUIRES(mu_);
  /// Key-value separation: rewrites large values of `updates` into the
  /// value log, leaving tagged pointers (no-op when disabled).
  Status MaybeSeparateBatch(WriteBatch* updates);
  bool separation_enabled() const { return vlog_ != nullptr; }
  /// User-view iterator over raw (tagged) stored values.
  Iterator* NewRawIterator(const ReadOptions& options);

  const Options options_;
  const std::string dbname_;
  InternalKeyComparator icmp_;
  /// Internally synchronized (own mutex + sharded LruCache locks).
  std::unique_ptr<TableCache> table_cache_;
  /// All VersionSet state is guarded by mu_ except the atomic file-number
  /// counter, which background table builds bump with mu_ released (and
  /// Versions themselves, immutable once installed and pinned via
  /// shared_ptr). Not annotated GUARDED_BY for exactly that reason.
  std::unique_ptr<VersionSet> versions_;
  std::unique_ptr<CompactionPolicy> policy_;

  Mutex mu_;
  MemTable* mem_ GUARDED_BY(mu_) = nullptr;  // owned via Ref/Unref
  /// Frozen memtable awaiting background flush.
  MemTable* imm_ GUARDED_BY(mu_) = nullptr;
  /// WAL of the memtable that replaced imm_; once imm_'s flush is in the
  /// manifest this becomes the manifest log number, and only then may any
  /// older WAL be deleted (crash-recovery ordering).
  uint64_t imm_log_number_ GUARDED_BY(mu_) = 0;
  uint64_t imm_wal_to_delete_ GUARDED_BY(mu_) = 0;
  std::unique_ptr<WritableFile> wal_file_ GUARDED_BY(mu_);
  std::unique_ptr<wal::Writer> wal_ GUARDED_BY(mu_);
  uint64_t wal_number_ GUARDED_BY(mu_) = 0;
  std::multiset<SequenceNumber> snapshots_ GUARDED_BY(mu_);
  /// Non-null iff separation enabled; internally synchronized.
  std::unique_ptr<ValueLog> vlog_;

  // Background pipeline (non-null pool iff options_.background_compaction).
  std::unique_ptr<ThreadPool> bg_pool_;
  /// Signalled on background progress (flush/compaction install, task
  /// completion); stalled writers and waiters sleep on it.
  CondVar bg_cv_{&mu_};
  bool bg_scheduled_ GUARDED_BY(mu_) = false;  // a task is queued or running
  /// Shape/seek work may be pending.
  bool bg_compaction_hint_ GUARDED_BY(mu_) = false;
  /// CompactAll holds the compaction token: the background thread defers
  /// compaction picks (flushes still run) so two merges never race over
  /// the same input files.
  bool manual_compaction_ GUARDED_BY(mu_) = false;
  bool shutting_down_ GUARDED_BY(mu_) = false;
  /// First background failure; surfaced to writers and sticky (matches the
  /// usual LSM posture: a failed flush/compaction poisons the DB).
  Status bg_error_ GUARDED_BY(mu_);

  // Counters (relaxed; exactness across threads is not load-bearing).
  std::atomic<uint64_t> bytes_flushed_{0};
  std::atomic<uint64_t> bytes_compacted_{0};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> gets_{0};
  std::atomic<uint64_t> gets_found_{0};
  std::atomic<uint64_t> memtable_hits_{0};
  std::atomic<uint64_t> runs_probed_{0};
  std::atomic<uint64_t> filter_skips_{0};
  std::atomic<uint64_t> range_filter_skips_{0};
  std::atomic<uint64_t> separated_reads_{0};
  std::atomic<uint64_t> write_slowdowns_{0};
  std::atomic<uint64_t> write_stalls_{0};
  std::atomic<uint64_t> write_slowdown_micros_{0};
  std::atomic<uint64_t> write_stall_micros_{0};
  // Set by Get when a file crosses the seek-compaction threshold; the
  // next write services it (reads never mutate the tree themselves).
  std::atomic<bool> pending_seek_compaction_{false};
};

}  // namespace lsmlab

#endif  // LSMLAB_CORE_DB_IMPL_H_
