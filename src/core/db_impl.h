#ifndef LSMLAB_CORE_DB_IMPL_H_
#define LSMLAB_CORE_DB_IMPL_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/compaction/compaction_policy.h"
#include "core/db.h"
#include "core/table_cache.h"
#include "core/version.h"
#include "memtable/memtable.h"
#include "util/thread_pool.h"
#include "vlog/value_log.h"
#include "wal/log_writer.h"

namespace lsmlab {

class DBImpl : public DB {
 public:
  DBImpl(const Options& options, std::string dbname);
  ~DBImpl() override;

  /// Recovers manifest + WAL; called once by DB::Open.
  Status Init();

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  Status Scan(const ReadOptions& options, const Slice& start,
              const Slice& end, size_t limit,
              std::vector<std::pair<std::string, std::string>>* results)
      override;
  Status GarbageCollectValues() override;
  /// Unwraps a stored (possibly tagged/separated) value into *out. Public
  /// for the resolving iterator; not part of the DB interface.
  Status ResolveValue(const Slice& stored, std::string* out);
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  Status CompactAll() override;
  Status Flush() override;
  DBStats GetStats() override;
  std::string DebugShape() override;

 private:
  class SnapshotImpl : public Snapshot {
   public:
    explicit SnapshotImpl(SequenceNumber seq) : seq_(seq) {}
    SequenceNumber sequence() const override { return seq_; }

   private:
    SequenceNumber seq_;
  };

  /// Replays WAL files newer than the manifest's log number.
  Status RecoverWal();
  Status NewWal();
  /// Flushes the current memtable into a level-0 run, entirely under mu_
  /// (inline mode and recovery). REQUIRES: mu_ held.
  Status FlushMemTableLocked();
  /// Freezes mem_ into imm_ behind a fresh memtable + WAL so writers can
  /// continue while the background thread flushes. REQUIRES: mu_ held,
  /// imm_ == nullptr.
  Status FreezeMemTableLocked();
  /// Write controller (background mode): blocks until mem_ has room,
  /// applying the L0 slowdown/stop triggers and the pending-imm stall.
  /// REQUIRES: `lock` held; may release and reacquire it.
  Status MakeRoomForWrite(std::unique_lock<std::mutex>& lock);
  /// Schedules a background task when work is pending (a frozen memtable
  /// or a compaction hint) and none is queued. REQUIRES: mu_ held.
  void MaybeScheduleBackgroundWork();
  /// Thread-pool entry point: drains flush + compaction work.
  void BackgroundCall();
  /// Runs flushes and compactions until none is pending. REQUIRES: `lock`
  /// held; releases it while building tables.
  void BackgroundWork(std::unique_lock<std::mutex>& lock);
  /// Flushes imm_ into a level-0 run, building tables with `lock`
  /// released; only the manifest install holds it. REQUIRES: `lock` held,
  /// imm_ != nullptr. On failure the error is also recorded in bg_error_.
  Status FlushImmMemTable(std::unique_lock<std::mutex>& lock);
  /// Waits until no background task is queued or running. REQUIRES: `lock`
  /// held.
  void WaitForBackgroundLocked(std::unique_lock<std::mutex>& lock);
  /// Counted condition-variable wait: blocks on bg_cv_ and accrues the
  /// stall counters. REQUIRES: `lock` held.
  void StallWait(std::unique_lock<std::mutex>& lock);
  /// Re-derives the Monkey per-level filter allocation for the current
  /// tree depth. REQUIRES: mu_ held.
  void ReconfigureMonkeyLocked(int output_level);
  /// Runs compactions until the policy is satisfied, or until `max_picks`
  /// compactions have run (0 = unlimited). REQUIRES: `lock` held; may
  /// release it during merges.
  Status MaybeCompact(std::unique_lock<std::mutex>& lock, int max_picks = 0);
  /// Executes one compaction: the merge itself runs with `lock` released
  /// (inputs are immutable files); pick metadata capture and the version
  /// install hold it. REQUIRES: `lock` held.
  Status DoCompaction(const CompactionPick& pick,
                      std::unique_lock<std::mutex>& lock);
  /// Builds output file(s) from `iter`, splitting at max_file_size.
  /// Thread-safe: touches no mu_-protected state (the snapshot horizon is
  /// captured by the caller while it still holds mu_).
  Status BuildTables(Iterator* iter, int output_level, bool drop_shadowed,
                     bool drop_tombstones, SequenceNumber smallest_snapshot,
                     std::vector<FileMetaData>* outputs,
                     uint64_t* bytes_written);
  SequenceNumber SmallestSnapshotLocked() const;
  void PrefetchOutputsLocked(const CompactionPick& pick,
                             const std::vector<FileMetaData>& outputs);
  /// One run's iterator: concatenation of its (non-overlapping) files.
  Iterator* NewRunIterator(const Run& run);
  /// Collects child iterators for the given bounds (nullptr bounds = all),
  /// consulting range filters when bounds are present.
  void CollectIterators(const Slice* lo, const Slice* hi,
                        std::vector<Iterator*>* children);
  /// Key-value separation: rewrites large values of `updates` into the
  /// value log, leaving tagged pointers (no-op when disabled).
  Status MaybeSeparateBatch(WriteBatch* updates);
  bool separation_enabled() const { return vlog_ != nullptr; }
  /// User-view iterator over raw (tagged) stored values.
  Iterator* NewRawIterator(const ReadOptions& options);

  const Options options_;
  const std::string dbname_;
  InternalKeyComparator icmp_;
  std::unique_ptr<TableCache> table_cache_;
  std::unique_ptr<VersionSet> versions_;
  std::unique_ptr<CompactionPolicy> policy_;

  std::mutex mu_;
  MemTable* mem_ = nullptr;  // owned via Ref/Unref
  MemTable* imm_ = nullptr;  // frozen memtable awaiting background flush
  /// WAL of the memtable that replaced imm_; once imm_'s flush is in the
  /// manifest this becomes the manifest log number, and only then may any
  /// older WAL be deleted (crash-recovery ordering).
  uint64_t imm_log_number_ = 0;
  uint64_t imm_wal_to_delete_ = 0;
  std::unique_ptr<WritableFile> wal_file_;
  std::unique_ptr<wal::Writer> wal_;
  uint64_t wal_number_ = 0;
  std::multiset<SequenceNumber> snapshots_;
  std::unique_ptr<ValueLog> vlog_;  // non-null iff separation enabled

  // Background pipeline (non-null pool iff options_.background_compaction).
  std::unique_ptr<ThreadPool> bg_pool_;
  /// Signalled on background progress (flush/compaction install, task
  /// completion); stalled writers and waiters sleep on it. Guarded by mu_.
  std::condition_variable bg_cv_;
  bool bg_scheduled_ = false;        // a task is queued or running
  bool bg_compaction_hint_ = false;  // shape/seek work may be pending
  /// CompactAll holds the compaction token: the background thread defers
  /// compaction picks (flushes still run) so two merges never race over
  /// the same input files.
  bool manual_compaction_ = false;
  bool shutting_down_ = false;
  /// First background failure; surfaced to writers and sticky (matches the
  /// usual LSM posture: a failed flush/compaction poisons the DB).
  Status bg_error_;

  // Counters (relaxed; exactness across threads is not load-bearing).
  std::atomic<uint64_t> bytes_flushed_{0};
  std::atomic<uint64_t> bytes_compacted_{0};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> gets_{0};
  std::atomic<uint64_t> gets_found_{0};
  std::atomic<uint64_t> memtable_hits_{0};
  std::atomic<uint64_t> runs_probed_{0};
  std::atomic<uint64_t> filter_skips_{0};
  std::atomic<uint64_t> range_filter_skips_{0};
  std::atomic<uint64_t> separated_reads_{0};
  std::atomic<uint64_t> write_slowdowns_{0};
  std::atomic<uint64_t> write_stalls_{0};
  std::atomic<uint64_t> write_slowdown_micros_{0};
  std::atomic<uint64_t> write_stall_micros_{0};
  // Set by Get when a file crosses the seek-compaction threshold; the
  // next write services it (reads never mutate the tree themselves).
  std::atomic<bool> pending_seek_compaction_{false};
};

}  // namespace lsmlab

#endif  // LSMLAB_CORE_DB_IMPL_H_
