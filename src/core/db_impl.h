#ifndef LSMLAB_CORE_DB_IMPL_H_
#define LSMLAB_CORE_DB_IMPL_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "core/compaction/compaction_policy.h"
#include "core/db.h"
#include "core/table_cache.h"
#include "core/version.h"
#include "core/write_batch.h"
#include "memtable/memtable.h"
#include "obs/event_listener.h"
#include "obs/stats_registry.h"
#include "util/mutex.h"
#include "util/thread_pool.h"
#include "vlog/value_log.h"
#include "wal/log_writer.h"

namespace lsmlab {

/// Value tags used when key-value separation is enabled: every stored value
/// carries one as its first byte. Shared by the single-key path
/// (db_impl.cc) and the batched path (db_multiget.cc).
inline constexpr char kVlogInlineTag = 0x00;
inline constexpr char kVlogPointerTag = 0x01;

class DBImpl : public DB {
 public:
  /// `shared_bg_pool` (optional) is a caller-owned ThreadPool to run this
  /// instance's background flushes/compactions on, instead of a private
  /// single worker. ShardedDB passes one pool to all its shards so their
  /// background jobs overlap; the pool must outlive this DBImpl. Ignored
  /// unless options.background_compaction is set.
  DBImpl(const Options& options, std::string dbname,
         ThreadPool* shared_bg_pool = nullptr);
  ~DBImpl() override;

  /// Recovers manifest + WAL; called once by DB::Open.
  Status Init();

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  void MultiGet(const ReadOptions& options, std::span<const Slice> keys,
                std::vector<std::string>* values,
                std::vector<Status>* statuses) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  Status Scan(const ReadOptions& options, const Slice& start,
              const Slice& end, size_t limit,
              std::vector<std::pair<std::string, std::string>>* results)
      override;
  Status GarbageCollectValues() override;
  /// Unwraps a stored (possibly tagged/separated) value into *out. Public
  /// for the resolving iterator; not part of the DB interface.
  Status ResolveValue(const Slice& stored, std::string* out);
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  Status CompactAll() override;
  Status Flush() override;
  DBStats GetStats() override;
  bool GetProperty(const Slice& property, std::string* value) override;
  std::string DebugShape() override;

  /// True iff the calling thread holds the DB mutex. Test hook for the
  /// listener contract ("callbacks never run under mu_"). Holder tracking
  /// is compiled out under NDEBUG, where this always returns false — the
  /// check is meaningful in Debug/sanitizer builds and vacuous in release.
  bool TEST_MutexHeldByCurrentThread() const {
#ifdef NDEBUG
    return false;
#else
    return mu_.HeldByCurrentThread();
#endif
  }

  /// Writers currently parked in the group-commit queue (leader included).
  /// Test hook for staging deterministic commit groups.
  size_t TEST_WriteQueueLength() {
    MutexLock lock(&mu_);
    return writers_.size();
  }

 private:
  /// Listener callbacks staged while mu_ is held; NotifyListeners fires
  /// them in staging order once the mutex is released.
  using PendingEvents = std::vector<std::function<void(EventListener&)>>;
  /// One queued write (batch + options + a CondVar to park on); defined in
  /// db_write.cc with the rest of the group-commit module.
  struct Writer;
  class SnapshotImpl : public Snapshot {
   public:
    explicit SnapshotImpl(SequenceNumber seq) : seq_(seq) {}
    SequenceNumber sequence() const override { return seq_; }

   private:
    SequenceNumber seq_;
  };

  /// Fires staged events — and any queued table-file-deletion events — on
  /// every registered listener, in order. Never called with mu_ held (the
  /// listener contract); asserts so in debug builds.
  void NotifyListeners(PendingEvents* events) EXCLUDES(mu_);
  /// Moves queued file-deletion events (recorded by the VersionSet
  /// observer, possibly under mu_) into *events.
  void DrainDeletions(PendingEvents* events) EXCLUDES(deletions_mu_);

  Status InitLocked(PendingEvents* events) REQUIRES(mu_);
  /// Locked bodies of Get/Write (events fire after the caller releases
  /// mu_; Get takes mu_ only briefly to pin state).
  Status GetImpl(const ReadOptions& options, const Slice& key,
                 std::string* value) EXCLUDES(mu_);
  /// Body of MultiGet (defined in db_multiget.cc): takes mu_ only briefly
  /// to pin the memtables/version/sequence; all batch I/O runs unlocked.
  void MultiGetImpl(const ReadOptions& options, std::span<const Slice> keys,
                    std::vector<std::string>* values,
                    std::vector<Status>* statuses) EXCLUDES(mu_);
  Status ScanImpl(const ReadOptions& options, const Slice& start,
                  const Slice& end, size_t limit,
                  std::vector<std::pair<std::string, std::string>>* results)
      EXCLUDES(mu_);
  /// Body of Write: the leader/follower group-commit protocol. Defined in
  /// db_write.cc — the only module allowed to touch the WAL file (see
  /// DESIGN.md "Group commit" and the lint.sh ban). Takes mu_ to queue the
  /// writer; the leader releases it during WAL/value-log I/O.
  Status WriteImpl(const WriteOptions& options, WriteBatch* updates,
                   PendingEvents* events) EXCLUDES(mu_);
  /// Claims queued writers from the front of writers_ up to the group size
  /// cap. Returns the batch to commit — the leader's own for a group of
  /// one, else group_batch_ — and reports the last claimed writer, whether
  /// any member requested sync, and the member count.
  WriteBatch* BuildWriteGroupLocked(Writer** last_writer, bool* group_sync,
                                    uint64_t* writer_count) REQUIRES(mu_);
  /// Applies the committed group to the memtable. Serial path: the leader
  /// inserts the concatenated group under mu_ (unchanged from PR 6).
  /// Parallel path (Options::allow_concurrent_memtable_write, skiplist
  /// rep, no kv-separation, group of >1): the leader pre-assigns every
  /// member its sequence offset within the group, wakes the followers to
  /// insert their own batches outside mu_ (apply_busy_ keeps freeze out),
  /// inserts its own batch likewise, and waits for the last finisher on
  /// apply_cv_. Releases and reacquires mu_ on the parallel path. The
  /// caller publishes last_sequence afterwards, so readers never observe
  /// a partial group either way.
  Status ApplyWriteGroupLocked(Writer* leader, Writer* last_writer,
                               WriteBatch* group, SequenceNumber base,
                               uint64_t writer_count) REQUIRES(mu_);
  /// Durability policy (Options::wal_sync_mode): whether the commit whose
  /// WAL record is `record_bytes` long syncs the log. A group containing a
  /// sync writer syncs in every mode; the interval/bytes policies only add
  /// syncs for non-sync traffic. Leader-only state (last_wal_sync_,
  /// wal_unsynced_bytes_); called without mu_.
  bool ShouldSyncWal(bool group_sync, uint64_t record_bytes) const;
  Status FlushLocked(PendingEvents* events) REQUIRES(mu_);
  Status CompactAllLocked(PendingEvents* events) REQUIRES(mu_);
  /// Replays WAL files newer than the manifest's log number.
  Status RecoverWal(PendingEvents* events) REQUIRES(mu_);
  Status NewWal() REQUIRES(mu_);
  /// Flushes the current memtable into a level-0 run, entirely under mu_
  /// (inline mode and recovery).
  Status FlushMemTableLocked(PendingEvents* events) REQUIRES(mu_);
  /// Freezes mem_ into imm_ behind a fresh memtable + WAL so writers can
  /// continue while the background thread flushes. REQUIRES additionally:
  /// imm_ == nullptr.
  Status FreezeMemTableLocked() REQUIRES(mu_);
  /// Write controller (background mode): blocks until mem_ has room,
  /// applying the L0 slowdown/stop triggers and the pending-imm stall.
  /// May release and reacquire mu_.
  Status MakeRoomForWrite(PendingEvents* events) REQUIRES(mu_);
  /// Schedules a background task when work is pending (a frozen memtable
  /// or a compaction hint) and none is queued.
  void MaybeScheduleBackgroundWork() REQUIRES(mu_);
  /// Thread-pool entry point: loops over BackgroundStep, releasing mu_
  /// between steps to fire that step's listener events.
  void BackgroundCall() EXCLUDES(mu_);
  /// Runs one unit of background work (a flush or one compaction),
  /// releasing mu_ while building tables. Returns true while more work may
  /// be pending.
  bool BackgroundStep(PendingEvents* events) REQUIRES(mu_);
  /// Flushes imm_ into a level-0 run, building tables with mu_ released;
  /// only the manifest install holds it. REQUIRES additionally:
  /// imm_ != nullptr. On failure the error is also recorded in bg_error_.
  Status FlushImmMemTable(PendingEvents* events) REQUIRES(mu_);
  /// Waits until no background task is queued or running.
  void WaitForBackgroundLocked() REQUIRES(mu_);
  /// Counted condition-variable wait: blocks on bg_cv_ and accrues the
  /// stall counters.
  void StallWait() REQUIRES(mu_);
  /// Re-derives the Monkey per-level filter allocation for the current
  /// tree depth.
  void ReconfigureMonkeyLocked(int output_level) REQUIRES(mu_);
  /// Runs compactions until the policy is satisfied, or until `max_picks`
  /// compactions have run (0 = unlimited); may release mu_ during merges.
  Status MaybeCompact(PendingEvents* events, int max_picks = 0)
      REQUIRES(mu_);
  /// Executes one compaction: the merge itself runs with mu_ released
  /// (inputs are immutable files); pick metadata capture and the version
  /// install hold it.
  Status DoCompaction(const CompactionPick& pick, PendingEvents* events)
      REQUIRES(mu_);
  /// Builds output file(s) from `iter`, splitting at max_file_size.
  /// Thread-safe: touches no mu_-protected state (the snapshot horizon is
  /// captured by the caller while it still holds mu_).
  Status BuildTables(Iterator* iter, int output_level, bool drop_shadowed,
                     bool drop_tombstones, SequenceNumber smallest_snapshot,
                     std::vector<FileMetaData>* outputs,
                     uint64_t* bytes_written);
  SequenceNumber SmallestSnapshotLocked() const REQUIRES(mu_);
  void PrefetchOutputsLocked(const CompactionPick& pick,
                             const std::vector<FileMetaData>& outputs)
      REQUIRES(mu_);
  /// One run's iterator: concatenation of its (non-overlapping) files.
  Iterator* NewRunIterator(const Run& run);
  /// Pinned snapshot of everything a read needs: referenced memtables, the
  /// current version (shared_ptr), and the visible sequence. Taken under
  /// mu_ in one short critical section so that iterator construction —
  /// which may open cold table files for range-filter pruning — runs with
  /// the lock released. Callers must Unref() mem/imm when done pinning
  /// (child iterators hold their own references).
  struct ReadView {
    MemTable* mem = nullptr;
    MemTable* imm = nullptr;
    VersionPtr version;
    SequenceNumber sequence = 0;
  };
  ReadView PinReadView(const ReadOptions& options) EXCLUDES(mu_);
  /// Collects child iterators for the given bounds (nullptr bounds = all),
  /// consulting range filters when bounds are present. Works on a pinned
  /// view, not live state: safe (and intended) to call without mu_.
  void CollectIterators(const ReadView& view, const Slice* lo,
                        const Slice* hi, std::vector<Iterator*>* children);
  /// Key-value separation: rewrites large values of `updates` into the
  /// value log, leaving tagged pointers (no-op when disabled). Sets
  /// *vlog_appended iff at least one value actually moved to the log, so
  /// the caller can skip the value-log sync otherwise.
  Status MaybeSeparateBatch(WriteBatch* updates, bool* vlog_appended);
  bool separation_enabled() const { return vlog_ != nullptr; }
  bool has_listeners() const { return !options_.listeners.empty(); }
  /// User-view iterator over raw (tagged) stored values.
  Iterator* NewRawIterator(const ReadOptions& options);

  const Options options_;
  const std::string dbname_;
  InternalKeyComparator icmp_;
  /// Internally synchronized (own mutex + sharded LruCache locks).
  std::unique_ptr<TableCache> table_cache_;
  /// All VersionSet state is guarded by mu_ except the atomic file-number
  /// counter, which background table builds bump with mu_ released (and
  /// Versions themselves, immutable once installed and pinned via
  /// shared_ptr). Not annotated GUARDED_BY for exactly that reason.
  std::unique_ptr<VersionSet> versions_;
  std::unique_ptr<CompactionPolicy> policy_;

  Mutex mu_{LockRank::kDbMu};
  MemTable* mem_ GUARDED_BY(mu_) = nullptr;  // owned via Ref/Unref
  /// Frozen memtable awaiting background flush.
  MemTable* imm_ GUARDED_BY(mu_) = nullptr;
  /// WAL of the memtable that replaced imm_; once imm_'s flush is in the
  /// manifest this becomes the manifest log number, and only then may any
  /// older WAL be deleted (crash-recovery ordering).
  uint64_t imm_log_number_ GUARDED_BY(mu_) = 0;
  uint64_t imm_wal_to_delete_ GUARDED_BY(mu_) = 0;
  std::unique_ptr<WritableFile> wal_file_ GUARDED_BY(mu_);
  std::unique_ptr<wal::Writer> wal_ GUARDED_BY(mu_);
  uint64_t wal_number_ GUARDED_BY(mu_) = 0;

  // --- Group commit (src/core/db_write.cc) --------------------------------
  /// FIFO of pending writes. The front writer is the leader; it commits a
  /// prefix of the queue as one group and signals each member's CondVar.
  std::deque<Writer*> writers_ GUARDED_BY(mu_);
  /// True while the leader runs WAL/value-log I/O with mu_ released. WAL
  /// rotation (FreezeMemTableLocked / FlushMemTableLocked) must wait for
  /// the log to go idle, or it would destroy the file mid-append.
  bool log_busy_ GUARDED_BY(mu_) = false;
  /// True while a parallel group apply runs outside mu_ (leader and
  /// followers inserting into mem_ concurrently). Freeze must wait for it
  /// exactly as for log_busy_: the memtable about to be swapped out is
  /// still receiving inserts.
  bool apply_busy_ GUARDED_BY(mu_) = false;
  /// Members (leader included) still applying their sub-batches; the last
  /// finisher signals apply_cv_, where the leader waits.
  uint64_t parallel_pending_ GUARDED_BY(mu_) = 0;
  /// First member insert failure of the in-flight parallel apply; the
  /// leader folds it into the group status (and thus bg_error_).
  Status parallel_status_ GUARDED_BY(mu_);
  CondVar apply_cv_{&mu_};
  /// Leader-owned scratch and durability-policy state. Not GUARDED_BY:
  /// only the current leader touches these, between setting and clearing
  /// log_busy_, and the mu_ handoff at those edges orders the accesses
  /// (queue-front discipline means there is never more than one leader).
  WriteBatch group_batch_;
  uint64_t wal_unsynced_bytes_ = 0;
  /// True while the value log holds appended-but-not-fsynced bytes.
  /// WiscKey durability order: any WAL fsync makes previously appended
  /// pointer records durable, so it must be preceded by a value-log fsync
  /// whenever this is set — even if the fsyncing group itself separated
  /// nothing (tests/write_group_test.cc CrossGroupVlogDurabilityOrder).
  bool vlog_unsynced_ = false;
  std::chrono::steady_clock::time_point last_wal_sync_ =
      std::chrono::steady_clock::now();

  std::multiset<SequenceNumber> snapshots_ GUARDED_BY(mu_);
  /// Non-null iff separation enabled; internally synchronized.
  std::unique_ptr<ValueLog> vlog_;

  // Background pipeline. bg_pool_ is non-null iff
  // options_.background_compaction: it points at owned_bg_pool_ (the
  // standalone case — one private worker, which serializes this
  // instance's flushes and compactions) or at a caller-owned pool shared
  // across shards (ShardedDB). Either way bg_scheduled_ admits at most
  // one queued-or-running task per DBImpl, so per-instance background
  // work stays serialized even on a wide shared pool.
  std::unique_ptr<ThreadPool> owned_bg_pool_;
  ThreadPool* bg_pool_ = nullptr;
  /// Signalled on background progress (flush/compaction install, task
  /// completion); stalled writers and waiters sleep on it.
  CondVar bg_cv_{&mu_};
  bool bg_scheduled_ GUARDED_BY(mu_) = false;  // a task is queued or running
  /// Shape/seek work may be pending.
  bool bg_compaction_hint_ GUARDED_BY(mu_) = false;
  /// CompactAll holds the compaction token: the background thread defers
  /// compaction picks (flushes still run) so two merges never race over
  /// the same input files.
  bool manual_compaction_ GUARDED_BY(mu_) = false;
  bool shutting_down_ GUARDED_BY(mu_) = false;
  /// First background failure; surfaced to writers and sticky (matches the
  /// usual LSM posture: a failed flush/compaction poisons the DB).
  Status bg_error_ GUARDED_BY(mu_);

  /// Every named DB-wide counter and phase histogram; internally
  /// synchronized (relaxed atomics + a private histogram mutex), so both
  /// locked and unlocked code paths bump it directly. Per-operation
  /// PerfContext deltas are folded in at the end of each instrumented op.
  StatsRegistry stats_;
  /// Table-file-deletion events queue here (the VersionSet cleanup hooks
  /// fire under mu_, where listener callbacks are forbidden) until the
  /// next NotifyListeners drains them.
  Mutex deletions_mu_{LockRank::kDeletionsMu};
  std::vector<uint64_t> pending_deletions_ GUARDED_BY(deletions_mu_);
  // Set by Get when a file crosses the seek-compaction threshold; the
  // next write services it (reads never mutate the tree themselves).
  std::atomic<bool> pending_seek_compaction_{false};
};

}  // namespace lsmlab

#endif  // LSMLAB_CORE_DB_IMPL_H_
