#include "core/dbformat.h"

#include <cassert>

namespace lsmlab {

int InternalKeyComparator::Compare(const Slice& a, const Slice& b) const {
  // Ascending user key, then descending tag (newer versions first).
  int r = user_comparator_->Compare(ExtractUserKey(a), ExtractUserKey(b));
  if (r == 0) {
    const uint64_t atag = ExtractTag(a);
    const uint64_t btag = ExtractTag(b);
    if (atag > btag) {
      r = -1;
    } else if (atag < btag) {
      r = +1;
    }
  }
  return r;
}

void InternalKeyComparator::FindShortestSeparator(std::string* start,
                                                  const Slice& limit) const {
  // Shorten the user-key portion only; a shortened user key gets the
  // maximal tag so it still sorts before every real version of itself.
  Slice user_start = ExtractUserKey(Slice(*start));
  Slice user_limit = ExtractUserKey(limit);
  std::string tmp(user_start.data(), user_start.size());
  user_comparator_->FindShortestSeparator(&tmp, user_limit);
  if (tmp.size() < user_start.size() &&
      user_comparator_->Compare(user_start, Slice(tmp)) < 0) {
    PutFixed64(&tmp,
               PackSequenceAndType(kMaxSequenceNumber, kValueTypeForSeek));
    assert(Compare(Slice(*start), Slice(tmp)) < 0);
    assert(Compare(Slice(tmp), limit) < 0);
    start->swap(tmp);
  }
}

void InternalKeyComparator::FindShortSuccessor(std::string* key) const {
  Slice user_key = ExtractUserKey(Slice(*key));
  std::string tmp(user_key.data(), user_key.size());
  user_comparator_->FindShortSuccessor(&tmp);
  if (tmp.size() < user_key.size() &&
      user_comparator_->Compare(user_key, Slice(tmp)) < 0) {
    PutFixed64(&tmp,
               PackSequenceAndType(kMaxSequenceNumber, kValueTypeForSeek));
    assert(Compare(Slice(*key), Slice(tmp)) < 0);
    key->swap(tmp);
  }
}

}  // namespace lsmlab
