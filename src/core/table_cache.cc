#include "core/table_cache.h"

#include "core/filename.h"
#include "filter/filter_policy.h"
#include "obs/perf_context.h"

namespace lsmlab {

TableCache::TableCache(std::string dbname, const Options* options,
                       const InternalKeyComparator* icmp)
    : dbname_(std::move(dbname)), options_(options), icmp_(icmp) {
  // Default: uniform bits everywhere; ConfigureFilterBits overrides.
  std::vector<double> uniform(options_->max_levels,
                              options_->filter_bits_per_key);
  if (options_->filter_allocation == FilterAllocation::kNone) {
    std::fill(uniform.begin(), uniform.end(), 0.0);
  }
  ConfigureFilterBits(uniform);
}

TableCache::~TableCache() {
  // Debug builds: any reader pin handed out by FindTable that is still
  // alive here would dangle once tables_ is torn down — abort with the
  // acquisition sites instead.
  pin_tracker_.CheckNoLivePins();
}

std::shared_ptr<SSTable> TableCache::TrackPin(
    const std::shared_ptr<SSTable>& table, const std::source_location& loc) {
#ifndef NDEBUG
  pin_tracker_.Acquire(table.get(), loc);
  PinTracker* tracker = &pin_tracker_;
  // Aliasing wrapper: copies share one pin record; the deleter (which
  // runs when the last copy derived from this FindTable call dies)
  // unregisters the pin and only then lets go of the reader itself.
  return std::shared_ptr<SSTable>(table.get(),
                                  [tracker, inner = table](SSTable* p) mutable {
                                    tracker->Release(p);
                                    inner.reset();
                                  });
#else
  (void)loc;
  return table;
#endif
}

void TableCache::ConfigureFilterBits(
    const std::vector<double>& bits_per_level) {
  // Note: previously created FilterPolicy objects are intentionally kept
  // alive in owned_filters_ — already-open tables hold pointers to them.
  per_level_options_.clear();
  per_level_options_.resize(options_->max_levels);
  for (int level = 0; level < options_->max_levels; level++) {
    TableOptions& t = per_level_options_[level];
    t.comparator = icmp_;
    t.block_size = options_->block_size;
    t.block_restart_interval = options_->block_restart_interval;
    t.use_hash_index = options_->block_hash_index;
    t.partition_filters = options_->partition_filters;
    t.hash_index_util_ratio = options_->hash_index_util_ratio;
    t.index_type = options_->index_type;
    t.learned_index_epsilon = options_->learned_index_epsilon;
    t.searchable_key = [](const Slice& internal_key) {
      return ExtractUserKey(internal_key);
    };
    t.range_filter_policy = options_->range_filter_policy;

    const double bits =
        level < static_cast<int>(bits_per_level.size())
            ? bits_per_level[level]
            : options_->filter_bits_per_key;
    if (bits > 0 &&
        options_->filter_allocation != FilterAllocation::kNone) {
      const FilterPolicy* policy =
          options_->filter_factory != nullptr
              ? options_->filter_factory(bits)
              : NewBloomFilterPolicy(bits);
      owned_filters_.emplace_back(policy);
      t.filter_policy = policy;
    } else {
      t.filter_policy = nullptr;
    }
  }
}

const TableOptions& TableCache::TableOptionsForLevel(int level) const {
  // Levels ultimately come off the manifest; clamp rather than index out
  // of bounds if a corrupt FileMetaData slips past recovery validation.
  if (level < 0) {
    level = 0;
  }
  if (level >= static_cast<int>(per_level_options_.size())) {
    level = static_cast<int>(per_level_options_.size()) - 1;
  }
  return per_level_options_[level];
}

Status TableCache::FindTable(const FileMetaData& meta,
                             std::shared_ptr<SSTable>* table,
                             std::source_location loc) {
  // Error paths must not leave a previously-resolved reader pinned in the
  // out-param: callers that reuse one shared_ptr across a loop (the batch
  // read path does) would otherwise keep the last table's handle — and its
  // open file — alive past Evict for as long as the loop variable lives.
  table->reset();
  {
    MutexLock lock(&mu_);
    auto it = tables_.find(meta.number);
    if (it != tables_.end()) {
      *table = TrackPin(it->second, loc);
      return Status::OK();
    }
  }

  std::unique_ptr<RandomAccessFile> file;
  const std::string fname = TableFileName(dbname_, meta.number);
  // batch-io-ok: one open per table, amortized across every key probing it.
  Status s = options_->env->NewRandomAccessFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  std::unique_ptr<SSTable> t;
  s = SSTable::Open(TableOptionsForLevel(meta.level), std::move(file),
                    meta.file_size, meta.number, options_->block_cache, &t);
  if (!s.ok()) {
    return s;
  }
  MutexLock lock(&mu_);
  auto [it, inserted] = tables_.emplace(meta.number, std::move(t));
  *table = TrackPin(it->second, loc);
  return Status::OK();
}

namespace {

/// Pins the reader (and its file metadata) for the iterator's lifetime.
class TableIterator : public Iterator {
 public:
  TableIterator(Iterator* iter, std::shared_ptr<SSTable> table,
                FileMetaPtr file)
      : iter_(iter), table_(std::move(table)), file_(std::move(file)) {}

  bool Valid() const override { return iter_->Valid(); }
  void SeekToFirst() override { iter_->SeekToFirst(); }
  void SeekToLast() override { iter_->SeekToLast(); }
  void Seek(const Slice& target) override { iter_->Seek(target); }
  void Next() override { iter_->Next(); }
  void Prev() override { iter_->Prev(); }
  Slice key() const override { return iter_->key(); }
  Slice value() const override { return iter_->value(); }
  Status status() const override { return iter_->status(); }

 private:
  std::unique_ptr<Iterator> iter_;
  std::shared_ptr<SSTable> table_;
  FileMetaPtr file_;
};

}  // namespace

Iterator* TableCache::NewIterator(const FileMetaPtr& file) {
  std::shared_ptr<SSTable> table;
  Status s = FindTable(*file, &table);
  if (!s.ok()) {
    return NewEmptyIterator(s);
  }
  Iterator* iter = table->NewIterator();
  return new TableIterator(iter, std::move(table), file);
}

Status TableCache::Get(
    const FileMetaData& meta, const Slice& internal_target,
    const Slice& user_key, uint64_t hash, bool use_filter,
    bool* filter_skipped,
    const std::function<void(const Slice&, const Slice&)>& handler) {
  *filter_skipped = false;
  std::shared_ptr<SSTable> table;
  Status s = FindTable(meta, &table);
  if (!s.ok()) {
    return s;
  }
  if (use_filter && !table->KeyMayMatch(user_key, hash)) {
    *filter_skipped = true;
    return Status::OK();
  }
  return table->InternalGet(internal_target, user_key, handler, use_filter,
                            filter_skipped);
}

Status TableCache::GetBatch(const FileMetaData& meta,
                            std::span<BatchGetContext* const> keys,
                            bool use_filter) {
  std::shared_ptr<SSTable> table;  // pinned until the whole probe is done
  Status s = FindTable(meta, &table);
  if (!s.ok()) {
    for (BatchGetContext* ctx : keys) {
      ctx->filter_pruned = false;
      ctx->status = s;
    }
    return s;
  }
  // Monolithic filter-first pruning: one probe per key, before any index
  // seek or data-block I/O.
  std::vector<BatchGetContext*> survivors;
  survivors.reserve(keys.size());
  for (BatchGetContext* ctx : keys) {
    ctx->filter_pruned = false;
    ctx->status = Status::OK();
    if (use_filter && !table->KeyMayMatch(ctx->searchable, ctx->hash)) {
      ctx->filter_pruned = true;
      GetPerfContext()->multiget_filter_pruned++;
      continue;
    }
    survivors.push_back(ctx);
  }
  if (!survivors.empty()) {
    table->MultiGet(std::span<BatchGetContext* const>(survivors), use_filter);
  }
  return Status::OK();
}

bool TableCache::RangeMayMatch(const FileMetaData& meta, const Slice& lo_user,
                               const Slice& hi_user) {
  std::shared_ptr<SSTable> table;
  Status s = FindTable(meta, &table);
  if (!s.ok()) {
    return true;  // cannot prove emptiness
  }
  return table->RangeMayMatch(lo_user, hi_user);
}

void TableCache::Evict(uint64_t file_number) {
  MutexLock lock(&mu_);
  tables_.erase(file_number);
}

SSTable::Counters TableCache::AggregateCounters() const {
  SSTable::Counters total;
  MutexLock lock(&mu_);
  for (const auto& [number, table] : tables_) {
    total.hash_index_hits += table->counters().hash_index_hits;
    total.hash_index_absent += table->counters().hash_index_absent;
    total.learned_index_seeks += table->counters().learned_index_seeks;
  }
  return total;
}

size_t TableCache::IndexMemoryUsage() const {
  size_t total = 0;
  MutexLock lock(&mu_);
  for (const auto& [number, table] : tables_) {
    total += table->IndexMemoryUsage();
  }
  return total;
}

}  // namespace lsmlab
