#ifndef LSMLAB_CORE_WRITE_BATCH_H_
#define LSMLAB_CORE_WRITE_BATCH_H_

#include <cstdint>
#include <string>

#include "core/dbformat.h"
#include "util/slice.h"
#include "util/status.h"

namespace lsmlab {

class MemTable;

/// Atomic group of puts/deletes. The serialized form — fixed64 base
/// sequence | fixed32 count | (type, key, [value])* — is exactly what one
/// WAL record carries, so recovery replays batches verbatim.
class WriteBatch {
 public:
  WriteBatch() { Clear(); }

  void Put(const Slice& key, const Slice& value);
  void Delete(const Slice& key);
  void Clear();

  /// Appends src's entries to this batch (group-commit concatenation: the
  /// leader folds follower batches into one WAL record). src's sequence is
  /// ignored; the combined batch is renumbered by set_sequence().
  void Append(const WriteBatch& src);

  uint32_t Count() const;
  size_t ApproximateSize() const { return rep_.size(); }

  /// Replays the batch into callbacks; used by recovery and the memtable
  /// insert path.
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void Put(const Slice& key, const Slice& value) = 0;
    virtual void Delete(const Slice& key) = 0;
  };
  Status Iterate(Handler* handler) const;

  // --- Internal (DB use) --------------------------------------------------
  SequenceNumber sequence() const;
  void set_sequence(SequenceNumber seq);
  Slice Contents() const { return Slice(rep_); }
  void SetContentsFrom(const Slice& contents);
  /// Applies the batch to `mem`, assigning sequence(), sequence()+1, ...
  Status InsertInto(MemTable* mem) const;

  /// Parallel-group-apply variant: applies the batch to `mem` through the
  /// thread-safe insert path, assigning base_sequence, base_sequence+1, ...
  /// (the group-commit leader pre-assigns each member its offset within
  /// the group, so members apply concurrently yet sequences stay exactly
  /// the ones the WAL record carries). Safe to run concurrently with
  /// other members' InsertIntoConcurrent calls on the same memtable.
  /// *cas_retries accumulates skiplist splice retries.
  Status InsertIntoConcurrent(MemTable* mem, SequenceNumber base_sequence,
                              uint64_t* cas_retries) const;

 private:
  void SetCount(uint32_t n);

  std::string rep_;
};

}  // namespace lsmlab

#endif  // LSMLAB_CORE_WRITE_BATCH_H_
