#include "core/merging_iterator.h"

#include <memory>
#include <vector>

#include "obs/perf_context.h"

namespace lsmlab {

namespace {

/// K-way merge by linear scan over children. Runs-per-level is small
/// (<= T per level), so a heap buys little; children that are invalid are
/// skipped. Ties (same internal key cannot occur; same user key differs by
/// sequence) resolve by comparator order, which already puts newer
/// versions first.
class MergingIterator : public Iterator {
 public:
  MergingIterator(const Comparator* comparator, Iterator** children, int n)
      : comparator_(comparator), current_(nullptr) {
    children_.reserve(n);
    for (int i = 0; i < n; i++) {
      children_.emplace_back(children[i]);
    }
  }

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    GetPerfContext()->merge_iter_seek_count++;
    for (auto& child : children_) {
      child->SeekToFirst();
    }
    FindSmallest();
    direction_ = kForward;
  }

  void SeekToLast() override {
    GetPerfContext()->merge_iter_seek_count++;
    for (auto& child : children_) {
      child->SeekToLast();
    }
    FindLargest();
    direction_ = kReverse;
  }

  void Seek(const Slice& target) override {
    GetPerfContext()->merge_iter_seek_count++;
    for (auto& child : children_) {
      child->Seek(target);
    }
    FindSmallest();
    direction_ = kForward;
  }

  void Next() override {
    GetPerfContext()->merge_iter_step_count++;
    // If we were moving backwards, reposition all non-current children
    // to the first entry after key().
    if (direction_ != kForward) {
      const std::string saved_key = key().ToString();
      for (auto& child : children_) {
        if (child.get() == current_) {
          continue;
        }
        child->Seek(Slice(saved_key));
        if (child->Valid() &&
            comparator_->Compare(child->key(), Slice(saved_key)) == 0) {
          child->Next();
        }
      }
      direction_ = kForward;
    }
    current_->Next();
    FindSmallest();
  }

  void Prev() override {
    GetPerfContext()->merge_iter_step_count++;
    if (direction_ != kReverse) {
      const std::string saved_key = key().ToString();
      for (auto& child : children_) {
        if (child.get() == current_) {
          continue;
        }
        child->Seek(Slice(saved_key));
        if (child->Valid()) {
          child->Prev();
        } else {
          child->SeekToLast();
        }
      }
      direction_ = kReverse;
    }
    current_->Prev();
    FindLargest();
  }

  Slice key() const override { return current_->key(); }
  Slice value() const override { return current_->value(); }

  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) {
        return s;
      }
    }
    return Status::OK();
  }

 private:
  enum Direction { kForward, kReverse };

  void FindSmallest() {
    Iterator* smallest = nullptr;
    for (auto& child : children_) {
      if (child->Valid() &&
          (smallest == nullptr ||
           comparator_->Compare(child->key(), smallest->key()) < 0)) {
        smallest = child.get();
      }
    }
    current_ = smallest;
  }

  void FindLargest() {
    Iterator* largest = nullptr;
    for (auto& child : children_) {
      if (child->Valid() &&
          (largest == nullptr ||
           comparator_->Compare(child->key(), largest->key()) > 0)) {
        largest = child.get();
      }
    }
    current_ = largest;
  }

  const Comparator* comparator_;
  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_;
  Direction direction_ = kForward;
};

}  // namespace

Iterator* NewMergingIterator(const Comparator* comparator,
                             Iterator** children, int n) {
  if (n == 0) {
    return NewEmptyIterator();
  }
  if (n == 1) {
    return children[0];
  }
  return new MergingIterator(comparator, children, n);
}

}  // namespace lsmlab
