#ifndef LSMLAB_CORE_VERSION_H_
#define LSMLAB_CORE_VERSION_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/dbformat.h"
#include "core/options.h"
#include "storage/env.h"
#include "util/slice.h"
#include "util/status.h"

namespace lsmlab {

class Env;
class TableCache;

namespace wal {
class Writer;
}

/// Metadata of one immutable SSTable. Shared (via shared_ptr) by every
/// Version that contains the file; when the last reference drops and the
/// file was superseded by a compaction, the on-disk file is deleted and the
/// open table is evicted from the table cache.
struct FileMetaData {
  uint64_t number = 0;
  uint64_t file_size = 0;
  std::string smallest;  // smallest internal key
  std::string largest;   // largest internal key
  /// Identity of the sorted run this file belongs to; globally monotonic,
  /// larger = newer. All files of one flush/compaction output share it.
  uint64_t run_seq = 0;
  int level = 0;

  /// Point probes that reached this file but found nothing (a filterless
  /// or false-positive probe): the signal for read-triggered compaction
  /// (the "compaction trigger" primitive of [76]; LevelDB's allowed_seeks).
  mutable std::atomic<uint64_t> wasted_probes{0};

  /// True once the file left the latest version; the destructor then
  /// removes it from storage.
  bool obsolete = false;
  std::function<void(FileMetaData*)> cleanup;

  FileMetaData() = default;
  /// Copies describe the file (for manifest edits); runtime state — probe
  /// counters, obsolescence, cleanup hooks — intentionally stays behind.
  FileMetaData(const FileMetaData& o)
      : number(o.number),
        file_size(o.file_size),
        smallest(o.smallest),
        largest(o.largest),
        run_seq(o.run_seq),
        level(o.level) {}
  FileMetaData& operator=(const FileMetaData& o) {
    number = o.number;
    file_size = o.file_size;
    smallest = o.smallest;
    largest = o.largest;
    run_seq = o.run_seq;
    level = o.level;
    return *this;
  }

  ~FileMetaData() {
    if (obsolete && cleanup) {
      cleanup(this);
    }
  }
};

using FileMetaPtr = std::shared_ptr<FileMetaData>;

/// One sorted run: files ordered by smallest key, pairwise non-overlapping.
struct Run {
  uint64_t run_seq = 0;
  std::vector<FileMetaPtr> files;

  uint64_t TotalBytes() const {
    uint64_t total = 0;
    for (const auto& f : files) {
      total += f->file_size;
    }
    return total;
  }
};

/// The single file of `run` whose [smallest, largest] user-key range covers
/// `user_key`, or nullptr when no file does. Run files are ordered by
/// smallest key and pairwise non-overlapping, so a binary search over the
/// fence pointers suffices. Shared by the Get and MultiGet read paths.
const FileMetaPtr* FindFileInRun(const Run& run, const Comparator* ucmp,
                                 const Slice& user_key);

/// One level: runs ordered newest-first (queries probe in this order).
/// Leveling keeps at most one run here; tiering up to T.
struct LevelState {
  std::vector<Run> runs;

  uint64_t TotalBytes() const {
    uint64_t total = 0;
    for (const auto& r : runs) {
      total += r.TotalBytes();
    }
    return total;
  }
};

/// An immutable snapshot of the tree shape. Readers pin a Version
/// (shared_ptr) for the duration of a Get/iterator, which transitively pins
/// every file it references.
class Version {
 public:
  explicit Version(int max_levels) : levels_(max_levels) {}

  const std::vector<LevelState>& levels() const { return levels_; }
  std::vector<LevelState>* mutable_levels() { return &levels_; }

  int num_levels() const { return static_cast<int>(levels_.size()); }
  /// Total sorted runs a worst-case point lookup probes.
  int TotalRuns() const;
  int NumFiles() const;
  /// Deepest level index holding any data, or -1 when empty.
  int MaxPopulatedLevel() const;

  std::string DebugString() const;

 private:
  std::vector<LevelState> levels_;
};

using VersionPtr = std::shared_ptr<const Version>;

/// A delta between two versions; serialized as one manifest record.
class VersionEdit {
 public:
  void SetLogNumber(uint64_t n) {
    has_log_number_ = true;
    log_number_ = n;
  }
  void SetNextFileNumber(uint64_t n) {
    has_next_file_number_ = true;
    next_file_number_ = n;
  }
  void SetLastSequence(SequenceNumber s) {
    has_last_sequence_ = true;
    last_sequence_ = s;
  }
  void SetNextRunSeq(uint64_t n) {
    has_next_run_seq_ = true;
    next_run_seq_ = n;
  }
  void SetComparatorName(const std::string& name) {
    has_comparator_ = true;
    comparator_ = name;
  }

  void AddFile(int level, const FileMetaData& meta) {
    new_files_.emplace_back(level, meta);
  }
  void RemoveFile(int level, uint64_t file_number) {
    deleted_files_.emplace_back(level, file_number);
  }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(const Slice& src);

 private:
  friend class VersionSet;

  bool has_log_number_ = false;
  uint64_t log_number_ = 0;
  bool has_next_file_number_ = false;
  uint64_t next_file_number_ = 0;
  bool has_last_sequence_ = false;
  SequenceNumber last_sequence_ = 0;
  bool has_next_run_seq_ = false;
  uint64_t next_run_seq_ = 0;
  bool has_comparator_ = false;
  std::string comparator_;
  std::vector<std::pair<int, FileMetaData>> new_files_;
  std::vector<std::pair<int, uint64_t>> deleted_files_;
};

/// Owns the chain of versions, the manifest, and the file/sequence/run
/// counters. One per DB.
class VersionSet {
 public:
  VersionSet(std::string dbname, const Options* options,
             TableCache* table_cache, const InternalKeyComparator* icmp);
  ~VersionSet();

  VersionSet(const VersionSet&) = delete;
  VersionSet& operator=(const VersionSet&) = delete;

  /// Loads CURRENT -> MANIFEST and replays edits into the initial version.
  /// Creates a fresh DB when none exists and options.create_if_missing.
  Status Recover();

  /// Applies `edit` to the current version, persists it to the manifest,
  /// and installs the result as current.
  Status LogAndApply(VersionEdit* edit);

  VersionPtr current() const { return current_; }

  /// Thread-safe: background table builds allocate output numbers while
  /// the DB mutex is released.
  uint64_t NewFileNumber() {
    return next_file_number_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Ensures future allocations skip `number` — called during recovery for
  /// every file found on storage, so a crash that rolled back the manifest
  /// can never cause a live file's number to be reused (and truncated).
  void MarkFileNumberUsed(uint64_t number) {
    uint64_t cur = next_file_number_.load(std::memory_order_relaxed);
    while (cur <= number &&
           !next_file_number_.compare_exchange_weak(
               cur, number + 1, std::memory_order_relaxed)) {
    }
  }
  uint64_t NewRunSeq() { return next_run_seq_++; }
  SequenceNumber last_sequence() const { return last_sequence_; }
  void SetLastSequence(SequenceNumber s) { last_sequence_ = s; }
  uint64_t log_number() const { return log_number_; }

  /// Deletes files in the db dir that no version references (crash
  /// leftovers); called once after recovery.
  void RemoveOrphanedFiles();

  /// Registers an observer invoked with the file number of every obsolete
  /// table file as its on-disk bytes are removed. Cleanup runs when the
  /// last Version referencing the file drops — often inside LogAndApply
  /// with the DB mutex held — so the observer must only record the event
  /// (no locking back into the DB, no listener callbacks).
  void SetFileDeletionObserver(std::function<void(uint64_t)> observer) {
    deletion_observer_ = std::move(observer);
  }

 private:
  Status WriteSnapshot(wal::Writer* manifest_writer);
  FileMetaPtr WrapFile(const FileMetaData& meta);
  std::shared_ptr<Version> ApplyEdit(const Version& base,
                                     const VersionEdit& edit);

  const std::string dbname_;
  const Options* const options_;
  Env* const env_;
  TableCache* const table_cache_;
  const InternalKeyComparator* const icmp_;

  VersionPtr current_;
  std::atomic<uint64_t> next_file_number_{2};
  uint64_t next_run_seq_ = 1;
  SequenceNumber last_sequence_ = 0;
  uint64_t log_number_ = 0;
  uint64_t manifest_number_ = 1;

  std::unique_ptr<WritableFile> manifest_file_;
  std::unique_ptr<wal::Writer> manifest_writer_;
  std::function<void(uint64_t)> deletion_observer_;
};

}  // namespace lsmlab

#endif  // LSMLAB_CORE_VERSION_H_
