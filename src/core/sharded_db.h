#ifndef LSMLAB_CORE_SHARDED_DB_H_
#define LSMLAB_CORE_SHARDED_DB_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/db_impl.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace lsmlab {

/// Seed for the shard-routing hash. Deliberately distinct from the
/// default seed (0) used by table filters and block hash indexes: keys
/// that collide in a filter must not therefore pile onto one shard, and a
/// shard's key population must not bias its filters.
inline constexpr uint64_t kShardRouteSeed = 0x53484152445342ULL;  // "SHARDSB"

/// Which of `num_shards` shards owns `key`. Pure function of the key
/// bytes — stable across processes and reopens, which is what makes the
/// on-disk shard layout self-describing (plus the SHARDS marker below
/// guarding the shard count itself).
uint32_t ShardOfKey(const Slice& key, uint32_t num_shards);

/// Name of the marker file (directly under the DB root) recording the
/// shard count the database was created with. DB::Open refuses to open a
/// database whose marker disagrees with Options::num_shards — silently
/// rehashing the keyspace would strand every key on the wrong shard.
inline constexpr char kShardMarkerFile[] = "SHARDS";

/// Subdirectory holding shard `shard`'s files: "<dbname>/shard-<shard>".
std::string ShardPath(const std::string& dbname, int shard);

/// Creates/validates the SHARDS marker for opening `name` with
/// `options.num_shards` shards. Called by DB::Open for every shard count
/// (a plain single-instance open must also refuse a sharded directory).
Status CheckShardMarker(const Options& options, const std::string& name);

/// Hash-partitioned DB: a thin router over `num_shards` independent
/// DBImpl instances, one per key-space partition (see DESIGN.md
/// "Sharding"). Each shard is a complete engine — its own memtable, WAL,
/// manifest, value log, and write controller — under its own
/// subdirectory, so the single-mutex, single-background-worker limits of
/// one instance become per-shard limits:
///
///   - Put/Delete/Get route by key hash to exactly one shard.
///   - WriteBatch splits into per-shard sub-batches dispatched in
///     parallel. Atomicity is per shard: each sub-batch commits as one
///     group on its shard, but there is no cross-shard commit point.
///   - MultiGet partitions the key list and scatters/gathers in parallel.
///   - NewIterator/Scan merge the per-shard ordered streams with the
///     merging iterator under a consistent per-shard snapshot vector
///     (one snapshot per shard, all taken at creation).
///   - Flushes/compactions from different shards overlap on one shared
///     background pool; within a shard they stay strictly serialized.
///
/// Construct through DB::Open with Options::num_shards > 1.
class ShardedDB : public DB {
 public:
  ShardedDB(const Options& options, std::string dbname);
  ~ShardedDB() override;

  /// Opens every shard (recovering each independently); called once by
  /// DB::Open.
  Status Init();

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  void MultiGet(const ReadOptions& options, std::span<const Slice> keys,
                std::vector<std::string>* values,
                std::vector<Status>* statuses) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  Status Scan(const ReadOptions& options, const Slice& start,
              const Slice& end, size_t limit,
              std::vector<std::pair<std::string, std::string>>* results)
      override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  Status CompactAll() override;
  Status GarbageCollectValues() override;
  Status Flush() override;
  DBStats GetStats() override;
  /// Adds, on top of the per-shard properties:
  ///   "lsmlab.num-shards"          — the shard count.
  ///   "lsmlab.bg-jobs-high-water"  — most background jobs ever running
  ///                                  at once on the shared pool (proof
  ///                                  of cross-shard overlap).
  ///   "lsmlab.shard.<k>.<prop>"    — <prop> forwarded to shard k.
  ///   "lsmlab.stats"               — tickers summed across shards, then
  ///                                  each shard's histogram lines
  ///                                  prefixed "shard.<k>.".
  bool GetProperty(const Slice& property, std::string* value) override;
  std::string DebugShape() override;

  int num_shards() const { return num_shards_; }
  /// Test hooks.
  DBImpl* TEST_Shard(int shard) { return shards_[shard].get(); }
  int TEST_BgJobsHighWater() {
    return bg_pool_ == nullptr ? 0 : bg_pool_->concurrency_high_water();
  }

 private:
  class ShardedSnapshot;

  uint32_t ShardOf(const Slice& key) const {
    return ShardOfKey(key, static_cast<uint32_t>(num_shards_));
  }
  /// Per-shard view of the caller's ReadOptions: a sharded snapshot is
  /// translated to shard `shard`'s member of the snapshot vector.
  ReadOptions ShardReadOptions(const ReadOptions& options, int shard) const;
  /// Runs fn(shard) for every index in `targets`, overlapping the calls
  /// on dispatch_pool_ (the caller's thread runs the first target, and
  /// any target the draining pool rejects, inline). Returns when all are
  /// done.
  void FanOut(const std::vector<int>& targets,
              const std::function<void(int)>& fn);

  const Options options_;
  const std::string dbname_;
  const int num_shards_;

  /// Completion latch for FanOut: each dispatched call decrements its
  /// caller's counter under mu_ and signals. Held only around counter
  /// updates — never across a shard call or any I/O.
  Mutex mu_{LockRank::kShardedDbMu};
  CondVar fanout_cv_{&mu_};

  /// Shared flush/compaction pool, one slot per shard (non-null iff
  /// options_.background_compaction). Each shard still runs at most one
  /// background job at a time (DBImpl::bg_scheduled_); the width lets
  /// jobs from different shards overlap.
  std::unique_ptr<ThreadPool> bg_pool_;
  /// Router-side workers for parallel WriteBatch/MultiGet/maintenance
  /// fan-out; sized like bg_pool_ but separate so a stalled shard write
  /// can never starve background flushes (or vice versa).
  std::unique_ptr<ThreadPool> dispatch_pool_;
  /// Destroyed before the pools (declared after them): a shard destructor
  /// may wait on in-flight background work.
  std::vector<std::unique_ptr<DBImpl>> shards_;
};

}  // namespace lsmlab

#endif  // LSMLAB_CORE_SHARDED_DB_H_
