#include "core/write_batch.h"

#include "memtable/memtable.h"
#include "util/coding.h"

namespace lsmlab {

namespace {
// fixed64 sequence + fixed32 count.
constexpr size_t kHeader = 12;
}  // namespace

void WriteBatch::Clear() {
  rep_.clear();
  rep_.resize(kHeader, '\0');
}

uint32_t WriteBatch::Count() const {
  // bounds: rep_.size() >= kHeader (12) is a class invariant; Clear() and
  // SetContentsFrom() both re-establish it.
  return DecodeFixed32(rep_.data() + 8);
}

void WriteBatch::SetCount(uint32_t n) {
  EncodeFixed32(rep_.data() + 8, n);
}

SequenceNumber WriteBatch::sequence() const {
  // bounds: rep_.size() >= kHeader (12) is a class invariant.
  return DecodeFixed64(rep_.data());
}

void WriteBatch::set_sequence(SequenceNumber seq) {
  EncodeFixed64(rep_.data(), seq);
}

void WriteBatch::Put(const Slice& key, const Slice& value) {
  SetCount(Count() + 1);
  rep_.push_back(static_cast<char>(ValueType::kTypeValue));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, value);
}

void WriteBatch::Delete(const Slice& key) {
  SetCount(Count() + 1);
  rep_.push_back(static_cast<char>(ValueType::kTypeDeletion));
  PutLengthPrefixedSlice(&rep_, key);
}

void WriteBatch::Append(const WriteBatch& src) {
  SetCount(Count() + src.Count());
  // bounds: rep_.size() >= kHeader (12) is a class invariant of src too.
  rep_.append(src.rep_.data() + kHeader, src.rep_.size() - kHeader);
}

void WriteBatch::SetContentsFrom(const Slice& contents) {
  rep_.assign(contents.data(), contents.size());
  if (rep_.size() < kHeader) {
    Clear();
  }
}

Status WriteBatch::Iterate(Handler* handler) const {
  Slice input(rep_);
  if (input.size() < kHeader) {
    return Status::Corruption("malformed WriteBatch (too small)");
  }
  input.remove_prefix(kHeader);
  uint32_t found = 0;
  while (!input.empty()) {
    found++;
    const ValueType tag = static_cast<ValueType>(input[0]);
    input.remove_prefix(1);
    Slice key, value;
    switch (tag) {
      case ValueType::kTypeValue:
        if (!GetLengthPrefixedSlice(&input, &key) ||
            !GetLengthPrefixedSlice(&input, &value)) {
          return Status::Corruption("bad WriteBatch Put");
        }
        handler->Put(key, value);
        break;
      case ValueType::kTypeDeletion:
        if (!GetLengthPrefixedSlice(&input, &key)) {
          return Status::Corruption("bad WriteBatch Delete");
        }
        handler->Delete(key);
        break;
      default:
        return Status::Corruption("unknown WriteBatch tag");
    }
  }
  if (found != Count()) {
    return Status::Corruption("WriteBatch has wrong count");
  }
  return Status::OK();
}

namespace {

/// Applies batch entries to a memtable with an explicit base sequence.
/// `concurrent` selects the thread-safe memtable path (parallel group
/// apply); the serial path is the recovery / leader-apply default.
class MemTableInserter : public WriteBatch::Handler {
 public:
  MemTableInserter(SequenceNumber base_sequence, MemTable* mem,
                   bool concurrent)
      : sequence_(base_sequence), mem_(mem), concurrent_(concurrent) {}

  void Put(const Slice& key, const Slice& value) override {
    Insert(ValueType::kTypeValue, key, value);
  }
  void Delete(const Slice& key) override {
    Insert(ValueType::kTypeDeletion, key, Slice());
  }

  uint64_t cas_retries() const { return cas_retries_; }

 private:
  void Insert(ValueType type, const Slice& key, const Slice& value) {
    if (concurrent_) {
      cas_retries_ += mem_->AddConcurrent(sequence_, type, key, value);
    } else {
      mem_->Add(sequence_, type, key, value);
    }
    sequence_++;
  }

  SequenceNumber sequence_;
  MemTable* mem_;
  const bool concurrent_;
  uint64_t cas_retries_ = 0;
};

}  // namespace

Status WriteBatch::InsertInto(MemTable* mem) const {
  MemTableInserter inserter(sequence(), mem, /*concurrent=*/false);
  return Iterate(&inserter);
}

Status WriteBatch::InsertIntoConcurrent(MemTable* mem,
                                        SequenceNumber base_sequence,
                                        uint64_t* cas_retries) const {
  MemTableInserter inserter(base_sequence, mem, /*concurrent=*/true);
  Status s = Iterate(&inserter);
  *cas_retries += inserter.cas_retries();
  return s;
}

}  // namespace lsmlab
