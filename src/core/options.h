#ifndef LSMLAB_CORE_OPTIONS_H_
#define LSMLAB_CORE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "format/table_options.h"
#include "memtable/memtable.h"
#include "util/comparator.h"

namespace lsmlab {

class Env;
class EventListener;
class FilterPolicy;
class RangeFilterPolicy;
class BlockCache;
class Snapshot;

/// The merge-policy axis of the LSM design space (tutorial I-2, III-1).
enum class MergePolicy {
  /// One sorted run per level; a full level merges into the next.
  /// Read-optimized: O(L) runs. [O'Neil '96; LevelDB/RocksDB leveled]
  kLeveling,
  /// Up to T runs per level; a full level merges into one run of the next.
  /// Write-optimized: O(L*T) runs. [Jagadish '97; Cassandra/RocksDB
  /// universal]
  kTiering,
  /// Tiering on all levels except the largest, which is leveled — most of
  /// the read benefit at most of the write savings. [Dostoevsky, Dayan '18]
  kLazyLeveling,
  /// No merging: drop the oldest run once total size exceeds the budget.
  /// [RocksDB FIFO]
  kFifo,
};

/// Which file a leveled partial compaction picks from the overflowing level
/// (tutorial I-2 "which file(s) to compact affects performance" [74, 76]).
enum class CompactionFilePicker {
  kRoundRobin,   ///< cycle through the level's key space
  kMinOverlap,   ///< file with least overlapping bytes in the next level
  kCold,         ///< file least recently read (via block-cache hotness)
  kOldest,       ///< file that has been in the level longest
  kWholeLevel,   ///< no partial compaction: merge the entire level
};

/// WAL durability policy applied by the group-commit leader (the only
/// code that touches the log file; see src/core/db_write.cc).
enum class WalSyncMode {
  /// Sync iff the group contains a writer with WriteOptions::sync. The
  /// classic contract: an acknowledged sync write survives a crash.
  kSyncEveryCommit,
  /// Sync on the first commit after wal_sync_interval_ms has elapsed
  /// since the previous sync. WriteOptions::sync still forces a sync for
  /// its group; an acknowledged non-sync write may be lost up to one
  /// interval back.
  kSyncIntervalMs,
  /// Sync once at least wal_sync_bytes of unsynced WAL have accumulated.
  /// WriteOptions::sync still forces a sync, as with kSyncIntervalMs.
  kSyncBytes,
};

/// How filter memory is spread across levels (tutorial §II-5).
enum class FilterAllocation {
  kUniform,  ///< same bits/key at every level (production default)
  kMonkey,   ///< exponentially fewer bits at deeper levels [Monkey, 18/19]
  kNone,     ///< no point filters
};

/// Options controls every axis of the LSM design space the tutorial
/// surveys. Defaults mirror a small leveled RocksDB.
struct Options {
  // --- Substrate ---------------------------------------------------------
  /// Storage environment. Defaults to the process-wide in-memory counting
  /// env from NewMemEnv() owned by the caller; required.
  Env* env = nullptr;
  const Comparator* comparator = BytewiseComparator();
  bool create_if_missing = true;
  bool error_if_exists = false;

  // --- Shape (Module I) --------------------------------------------------
  MergePolicy merge_policy = MergePolicy::kLeveling;
  /// Size ratio T between adjacent levels (and max runs/level for tiering).
  int size_ratio = 10;
  /// Memory buffer capacity in bytes; a full buffer flushes to level 0.
  size_t write_buffer_size = 1 << 20;
  int max_levels = 8;
  /// Max bytes per SSTable file written by flushes/compactions.
  size_t max_file_size = 1 << 20;
  /// Level-0 flush runs that trigger a merge into level 1.
  int level0_compaction_trigger = 4;
  CompactionFilePicker file_picker = CompactionFilePicker::kWholeLevel;
  /// Read-triggered compaction (the trigger primitive of [76]; LevelDB's
  /// allowed_seeks): once this many point probes reach a file without
  /// finding their key, the file is compacted down so future lookups stop
  /// paying for it. 0 disables.
  uint64_t seek_compaction_threshold = 0;
  /// Max compactions executed inline per write (tutorial III-2
  /// [8, 51, 56]: pacing compaction work bounds write tail latency).
  /// 0 = drain fully after each write (lowest read cost, spiky writes).
  int max_compactions_per_write = 0;
  /// FIFO only: total size budget before the oldest run is dropped.
  uint64_t fifo_size_budget = 64 << 20;

  // --- Background write pipeline (III-2) ----------------------------------
  /// Run flushes and compactions on a background thread. A full memtable is
  /// frozen and handed off (writers continue into a fresh memtable + WAL),
  /// and compaction debt is repaid off the write path; the write controller
  /// below converts hard stalls into bounded slowdowns. Off = inline
  /// flush/compaction on the writing thread (deterministic benchmarking).
  bool background_compaction = false;
  /// Background mode: L0 run count at which each write is delayed ~1ms so
  /// compaction can catch up before the stop trigger is hit. 0 disables.
  int l0_slowdown_trigger = 8;
  /// Background mode: L0 run count at which writers stall until compaction
  /// reduces the backlog. Effectively clamped to at least
  /// level0_compaction_trigger so the stall can always be relieved.
  int l0_stop_trigger = 12;

  // --- Sharding -----------------------------------------------------------
  /// Hash-partition the keyspace into this many independent shard
  /// instances behind one DB facade (see DESIGN.md "Sharding"). Each shard
  /// is a full engine — its own memtable, WAL, manifest, value log, and
  /// write controller — living under `<name>/shard-<k>`, so flushes and
  /// compactions from different shards proceed in parallel on a shared
  /// background pool. The shard count is fixed at creation (recorded in a
  /// SHARDS marker file); reopening with a different count fails rather
  /// than silently misrouting keys. 1 = the plain single-instance engine.
  /// Note: every other option applies per shard (each shard gets its own
  /// write_buffer_size, L0 triggers, etc.).
  int num_shards = 1;

  // --- Memtable (I-2, II-4) ----------------------------------------------
  MemTable::Rep memtable_rep = MemTable::Rep::kSkipList;
  bool memtable_hash_index = false;
  /// Parallel group apply: group-commit followers insert their own
  /// sub-batches into the memtable concurrently (lock-free skiplist CAS
  /// splice) instead of waiting for the leader to apply the whole group
  /// under the DB mutex. Takes effect only for the kSkipList rep without
  /// the hash index and without key-value separation; other
  /// configurations keep the serial leader apply (the memtable.
  /// parallel_applies / memtable.serial_applies tickers show which path
  /// ran). Readers are unaffected: last_sequence still publishes once per
  /// group, after every member's inserts land.
  bool allow_concurrent_memtable_write = false;

  // --- Point filters (II-2, II-5) ----------------------------------------
  FilterAllocation filter_allocation = FilterAllocation::kUniform;
  /// Average bits/key across the tree; Monkey redistributes this budget.
  double filter_bits_per_key = 10.0;
  /// Filter implementation factory; nullptr = standard Bloom. Receives the
  /// per-level bits/key and must return a new FilterPolicy (ownership
  /// passes to the DB).
  const FilterPolicy* (*filter_factory)(double bits_per_key) = nullptr;
  /// Per-data-block filter partitions cached on demand instead of one
  /// resident monolithic filter per table (§II-2 [89]).
  bool partition_filters = false;

  // --- Range filters (II-3) ----------------------------------------------
  /// Shared across levels; not owned. nullptr disables range filtering.
  const RangeFilterPolicy* range_filter_policy = nullptr;

  // --- Index (II-1, II-4) -------------------------------------------------
  TableOptions::IndexType index_type = TableOptions::IndexType::kBinarySearch;
  uint32_t learned_index_epsilon = 8;
  bool block_hash_index = false;
  double hash_index_util_ratio = 0.75;
  size_t block_size = 4096;
  int block_restart_interval = 16;

  // --- Caching (II-1) -----------------------------------------------------
  /// Shared block cache; not owned. nullptr disables caching.
  BlockCache* block_cache = nullptr;
  /// Leaper-style re-warm: after a compaction whose inputs were hot,
  /// prefetch the output files' blocks into the block cache (II-1, [90]).
  bool prefetch_after_compaction = false;
  /// Inputs are "hot" when their cached-block accesses exceed this.
  uint64_t prefetch_hotness_threshold = 16;
  /// Max bytes prefetched per compaction.
  size_t prefetch_budget_bytes = 1 << 20;

  // --- Key-value separation (I-2; WiscKey [53], HashKV [12]) --------------
  /// Values of at least this many bytes are stored in the value log; the
  /// tree keeps a small pointer. 0 disables separation.
  size_t value_separation_threshold = 0;
  /// Value-log segment size before rotating to a new file.
  size_t max_vlog_file_bytes = 4 << 20;

  // --- Durability ---------------------------------------------------------
  bool enable_wal = true;
  /// When the group-commit leader syncs the WAL (see DESIGN.md "Group
  /// commit" for the full durability matrix). A group containing any sync
  /// writer syncs once for all of them, in every mode. The interval/bytes
  /// modes additionally sync non-sync traffic on a time or unsynced-WAL-
  /// bytes policy, bounding how much of it a crash can lose.
  WalSyncMode wal_sync_mode = WalSyncMode::kSyncEveryCommit;
  /// kSyncIntervalMs: a policy-driven (non-forced) WAL sync happens at
  /// most once per this many milliseconds.
  uint64_t wal_sync_interval_ms = 50;
  /// kSyncBytes: sync once at least this many unsynced WAL bytes exist.
  uint64_t wal_sync_bytes = 1 << 20;
  /// Upper bound on the serialized size of one commit group. The leader
  /// stops claiming followers past this cap (and keeps small-leader groups
  /// near leader_size + 128 KiB so a tiny write is never stuck behind a
  /// megabyte of followers).
  size_t max_write_group_bytes = 1 << 20;

  // --- Observability ------------------------------------------------------
  /// Observers of flush/compaction/stall/file lifecycle events; see
  /// obs/event_listener.h for the delivery contract (callbacks never run
  /// with the DB mutex held). Shared: listeners may outlive the DB.
  std::vector<std::shared_ptr<EventListener>> listeners;
};

struct ReadOptions {
  /// nullptr reads the latest data; otherwise reads at the snapshot.
  const Snapshot* snapshot = nullptr;
  /// Verify block checksums on every read (always on in this build).
  bool verify_checksums = true;
  /// Let Get consult point filters (off to measure their benefit).
  bool use_filter = true;
};

struct WriteOptions {
  /// fsync the WAL before acknowledging (mem env: no-op).
  bool sync = false;
};

}  // namespace lsmlab

#endif  // LSMLAB_CORE_OPTIONS_H_
