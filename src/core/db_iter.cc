#include "core/db_iter.h"

#include <memory>
#include <string>

#include "obs/perf_context.h"

namespace lsmlab {

namespace {

/// Forward/backward filtering over the internal key space.
///
/// Forward: stand on the newest visible version of a user key; Next skips
/// the remaining (older) versions and any tombstoned keys.
/// Backward: scan versions of the previous user key and remember the
/// newest visible one (LevelDB's two-direction scheme).
class DBIter : public Iterator {
 public:
  DBIter(const Comparator* user_comparator, Iterator* iter,
         SequenceNumber sequence)
      : ucmp_(user_comparator), iter_(iter), sequence_(sequence) {}

  bool Valid() const override { return valid_; }

  Slice key() const override {
    return direction_ == kForward ? ExtractUserKey(iter_->key())
                                  : Slice(saved_key_);
  }

  Slice value() const override {
    return direction_ == kForward ? iter_->value() : Slice(saved_value_);
  }

  Status status() const override {
    return status_.ok() ? iter_->status() : status_;
  }

  void SeekToFirst() override {
    PerfTimer timer(&GetPerfContext()->seek_micros);
    direction_ = kForward;
    iter_->SeekToFirst();
    FindNextUserEntry(/*skipping=*/false);
  }

  void SeekToLast() override {
    PerfTimer timer(&GetPerfContext()->seek_micros);
    direction_ = kReverse;
    iter_->SeekToLast();
    FindPrevUserEntry();
  }

  void Seek(const Slice& target) override {
    PerfTimer timer(&GetPerfContext()->seek_micros);
    direction_ = kForward;
    std::string seek_key;
    AppendInternalKey(&seek_key, target, sequence_, kValueTypeForSeek);
    iter_->Seek(Slice(seek_key));
    FindNextUserEntry(/*skipping=*/false);
  }

  void Next() override {
    PerfTimer timer(&GetPerfContext()->next_micros);
    assert(valid_);
    if (direction_ == kReverse) {
      // Position iter_ at the first entry past saved_key_.
      direction_ = kForward;
      if (!iter_->Valid()) {
        iter_->SeekToFirst();
      } else {
        iter_->Next();
      }
      // iter_ now points at entries of saved_key_ or beyond; skip to the
      // next user key.
      skip_key_ = saved_key_;
      FindNextUserEntry(/*skipping=*/true);
      return;
    }
    skip_key_ = ExtractUserKey(iter_->key()).ToString();
    iter_->Next();
    FindNextUserEntry(/*skipping=*/true);
  }

  void Prev() override {
    PerfTimer timer(&GetPerfContext()->next_micros);
    assert(valid_);
    if (direction_ == kForward) {
      // Back iter_ off to before the current user key's entries.
      saved_key_ = ExtractUserKey(iter_->key()).ToString();
      while (true) {
        iter_->Prev();
        if (!iter_->Valid()) {
          valid_ = false;
          saved_key_.clear();
          saved_value_.clear();
          return;
        }
        if (ucmp_->Compare(ExtractUserKey(iter_->key()),
                           Slice(saved_key_)) < 0) {
          break;
        }
      }
      direction_ = kReverse;
    }
    FindPrevUserEntry();
  }

 private:
  enum Direction { kForward, kReverse };

  bool Visible(const Slice& internal_key) const {
    return ExtractSequence(internal_key) <= sequence_;
  }

  /// Forward scan: leave iter_ on the newest visible non-deleted version of
  /// the next user key (skipping skip_key_ when `skipping`).
  void FindNextUserEntry(bool skipping) {
    while (iter_->Valid()) {
      const Slice ikey = iter_->key();
      if (!Visible(ikey)) {
        iter_->Next();
        continue;
      }
      const Slice user_key = ExtractUserKey(ikey);
      if (skipping && ucmp_->Compare(user_key, Slice(skip_key_)) <= 0) {
        iter_->Next();  // older version of a key we already emitted/skipped
        continue;
      }
      switch (ExtractValueType(ikey)) {
        case ValueType::kTypeDeletion:
          // Key is dead; skip all its older versions too.
          skip_key_ = user_key.ToString();
          skipping = true;
          iter_->Next();
          break;
        case ValueType::kTypeValue:
          valid_ = true;
          return;
      }
    }
    valid_ = false;
  }

  /// Backward scan: iter_ enters positioned before the entries of the user
  /// key we just left. Walk backwards accumulating the newest visible
  /// version of each key until we find a live one.
  void FindPrevUserEntry() {
    ValueType value_type = ValueType::kTypeDeletion;
    while (iter_->Valid()) {
      const Slice ikey = iter_->key();
      if (Visible(ikey)) {
        const Slice user_key = ExtractUserKey(ikey);
        if (value_type != ValueType::kTypeDeletion &&
            ucmp_->Compare(user_key, Slice(saved_key_)) < 0) {
          // Crossed into the previous key with a live version saved.
          break;
        }
        // Entering this key from the right: every earlier-seen entry of it
        // was older; this one is newer, so it overrides.
        value_type = ExtractValueType(ikey);
        if (value_type == ValueType::kTypeDeletion) {
          saved_key_.clear();
          saved_value_.clear();
        } else {
          saved_key_ = user_key.ToString();
          saved_value_ = iter_->value().ToString();
        }
      }
      iter_->Prev();
    }
    if (value_type == ValueType::kTypeDeletion) {
      valid_ = false;
      saved_key_.clear();
      saved_value_.clear();
      direction_ = kForward;
    } else {
      valid_ = true;
    }
  }

  const Comparator* ucmp_;
  std::unique_ptr<Iterator> iter_;
  SequenceNumber sequence_;
  Status status_;
  std::string saved_key_;
  std::string saved_value_;
  std::string skip_key_;
  Direction direction_ = kForward;
  bool valid_ = false;
};

}  // namespace

Iterator* NewDBIterator(const Comparator* user_comparator,
                        Iterator* internal_iter, SequenceNumber sequence) {
  return new DBIter(user_comparator, internal_iter, sequence);
}

}  // namespace lsmlab
