#include "core/filename.h"

#include <cstdio>

namespace lsmlab {

namespace {

std::string MakeFileName(const std::string& dbname, uint64_t number,
                         const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/%06llu.%s",
                static_cast<unsigned long long>(number), suffix);
  return dbname + buf;
}

}  // namespace

std::string TableFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "sst");
}

std::string WalFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "wal");
}

std::string ManifestFileName(const std::string& dbname, uint64_t number) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/MANIFEST-%06llu",
                static_cast<unsigned long long>(number));
  return dbname + buf;
}

std::string CurrentFileName(const std::string& dbname) {
  return dbname + "/CURRENT";
}

bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type) {
  if (filename == "CURRENT") {
    *number = 0;
    *type = FileType::kCurrentFile;
    return true;
  }
  if (filename.rfind("MANIFEST-", 0) == 0) {
    char* end;
    *number = strtoull(filename.c_str() + 9, &end, 10);
    if (*end != '\0') {
      return false;
    }
    *type = FileType::kManifestFile;
    return true;
  }
  const size_t dot = filename.find('.');
  if (dot == std::string::npos) {
    return false;
  }
  const std::string num_part = filename.substr(0, dot);
  char* end;
  *number = strtoull(num_part.c_str(), &end, 10);
  if (end != num_part.c_str() + num_part.size() || num_part.empty()) {
    return false;
  }
  const std::string suffix = filename.substr(dot + 1);
  if (suffix == "sst") {
    *type = FileType::kTableFile;
  } else if (suffix == "wal") {
    *type = FileType::kWalFile;
  } else {
    *type = FileType::kUnknown;
    return false;
  }
  return true;
}

}  // namespace lsmlab
