#ifndef LSMLAB_CORE_DB_H_
#define LSMLAB_CORE_DB_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/dbformat.h"
#include "core/options.h"
#include "core/write_batch.h"
#include "util/iterator.h"
#include "util/slice.h"
#include "util/status.h"

namespace lsmlab {

/// An immutable view of the database at one point in time.
class Snapshot {
 public:
  virtual ~Snapshot() = default;
  virtual SequenceNumber sequence() const = 0;
};

/// Read-path and shape statistics; see DB::GetStats.
struct DBStats {
  // Shape.
  int num_levels = 0;
  int total_runs = 0;
  int total_files = 0;
  uint64_t total_bytes = 0;
  std::vector<int> runs_per_level;
  std::vector<uint64_t> bytes_per_level;

  // Write path.
  uint64_t bytes_flushed = 0;       ///< user data written by flushes
  uint64_t bytes_compacted = 0;     ///< bytes written by compactions
  uint64_t compactions = 0;
  uint64_t flushes = 0;
  /// Write amplification: (flushed + compacted) / flushed.
  double WriteAmplification() const {
    return bytes_flushed == 0
               ? 0.0
               : static_cast<double>(bytes_flushed + bytes_compacted) /
                     static_cast<double>(bytes_flushed);
  }

  // Group commit (see DESIGN.md "Group commit"). The registry reconciles
  // wal_syncs + wal_sync_skipped == group_commits (every group either
  // syncs or is counted as skipped), and — absent write errors —
  // group_commits + group_followers == writes.
  uint64_t writes = 0;             ///< DB::Write calls (each Put/Delete is one)
  uint64_t group_commits = 0;      ///< commit groups built by a leader
  uint64_t group_followers = 0;    ///< writers committed by someone else's group
  uint64_t wal_syncs = 0;          ///< group commits that synced the WAL
  uint64_t wal_sync_skipped = 0;   ///< group commits the policy left unsynced
  uint64_t vlog_syncs = 0;         ///< write-path value-log syncs
  // Memtable apply phase: parallel_applies + serial_applies ==
  // group_commits (each group takes exactly one apply path; see
  // Options::allow_concurrent_memtable_write).
  uint64_t parallel_applies = 0;    ///< groups applied by members concurrently
  uint64_t serial_applies = 0;      ///< groups applied by the leader serially
  uint64_t insert_cas_retries = 0;  ///< lost skiplist splice CASes
  /// Mean writers per commit group.
  double MeanWriteGroupSize() const {
    return group_commits == 0
               ? 0.0
               : static_cast<double>(group_commits + group_followers) /
                     static_cast<double>(group_commits);
  }

  // Write controller (background pipeline; see Options::l0_slowdown_trigger
  // and Options::l0_stop_trigger).
  uint64_t write_slowdowns = 0;        ///< writes delayed by the L0 trigger
  uint64_t write_stalls = 0;           ///< waits on flush/compaction backlog
  uint64_t write_slowdown_micros = 0;  ///< total delay injected into writers
  uint64_t write_stall_micros = 0;     ///< total time writers spent blocked

  // Read path.
  uint64_t gets = 0;
  uint64_t gets_found = 0;
  uint64_t memtable_hits = 0;
  uint64_t runs_probed = 0;            ///< runs consulted after filters
  uint64_t filter_skips = 0;           ///< runs skipped by point filters
  uint64_t range_filter_skips = 0;     ///< runs skipped by range filters
  uint64_t hash_index_hits = 0;
  uint64_t hash_index_absent = 0;
  uint64_t learned_index_seeks = 0;
  size_t index_filter_memory = 0;      ///< bytes of in-memory metadata

  // Batched reads (DB::MultiGet).
  uint64_t multigets = 0;              ///< MultiGet batches
  uint64_t multiget_keys = 0;          ///< keys across all batches
  uint64_t multiget_filter_pruned = 0; ///< per-key probes filters rejected
  uint64_t multiget_coalesced_block_hits = 0;  ///< keys served by a block
                                               ///< another key already paid
                                               ///< for

  // Key-value separation.
  uint64_t value_log_bytes = 0;
  uint64_t value_log_files = 0;
  uint64_t separated_reads = 0;        ///< gets resolved through the vlog
};

/// A log-structured merge key-value store over an Env.
///
/// Concurrent readers are always safe against the writer. By default
/// flushes and compactions run inline on the writing thread, one writer at
/// a time (deterministic by design — the benchmark substrate). With
/// Options::background_compaction they run on a background thread instead:
/// writers (any number; they serialize internally) hand full memtables off
/// and are paced by the L0 slowdown/stop triggers rather than doing the
/// merge work themselves.
class DB {
 public:
  /// Opens (creating if needed) the database at `name`.
  static Status Open(const Options& options, const std::string& name,
                     std::unique_ptr<DB>* dbptr);

  virtual ~DB() = default;

  virtual Status Put(const WriteOptions& options, const Slice& key,
                     const Slice& value) = 0;
  virtual Status Delete(const WriteOptions& options, const Slice& key) = 0;
  virtual Status Write(const WriteOptions& options, WriteBatch* updates) = 0;

  virtual Status Get(const ReadOptions& options, const Slice& key,
                     std::string* value) = 0;

  /// Batched point lookup: resolves every key of `keys` against one
  /// consistent view of the database (one snapshot, one version pin for the
  /// whole batch). `values` and `statuses` are resized to keys.size();
  /// `(*statuses)[i]` is OK / NotFound / an error for `keys[i]` alone —
  /// a corrupt block fails only the keys it serves, the rest of the batch
  /// still resolves. Compared with looping Get, a batch probes each
  /// table's filter before any data-block I/O and fetches every distinct
  /// data block at most once no matter how many keys land in it.
  /// Duplicate keys are fine (each slot gets its own answer).
  virtual void MultiGet(const ReadOptions& options,
                        std::span<const Slice> keys,
                        std::vector<std::string>* values,
                        std::vector<Status>* statuses) = 0;

  /// Ordered iterator over the live user keys. The caller deletes it
  /// before the DB is destroyed.
  virtual Iterator* NewIterator(const ReadOptions& options) = 0;

  /// Collects up to `limit` entries with user keys in [start, end]
  /// (inclusive), consulting range filters to skip runs (tutorial §II-3).
  virtual Status Scan(const ReadOptions& options, const Slice& start,
                      const Slice& end, size_t limit,
                      std::vector<std::pair<std::string, std::string>>*
                          results) = 0;

  virtual const Snapshot* GetSnapshot() = 0;
  virtual void ReleaseSnapshot(const Snapshot* snapshot) = 0;

  /// Flushes the memtable and runs compactions until the shape is stable.
  virtual Status CompactAll() = 0;

  /// Rewrites live separated values out of closed value-log segments and
  /// deletes the segments (WiscKey-style GC). Requires key-value
  /// separation to be enabled and no live snapshots.
  virtual Status GarbageCollectValues() = 0;
  /// Flushes the memtable to level 0 without compacting.
  virtual Status Flush() = 0;

  virtual DBStats GetStats() = 0;
  /// Exports one named introspection property into *value; returns false
  /// for unknown names. Known properties:
  ///   "lsmlab.stats"         — StatsRegistry dump: every ticker as a
  ///                            "ticker.<name>=<value>" line, then one
  ///                            summary line per phase histogram.
  ///   "lsmlab.perf-context"  — the calling thread's PerfContext
  ///                            (thread-local; reflects this thread's ops).
  ///   "lsmlab.io-stats"      — the Env's logical-I/O counters.
  virtual bool GetProperty(const Slice& property, std::string* value) = 0;
  /// Human-readable levels/runs/files layout.
  virtual std::string DebugShape() = 0;
};

/// Deletes all files of the database at `name`. Use with care.
Status DestroyDB(const Options& options, const std::string& name);

}  // namespace lsmlab

#endif  // LSMLAB_CORE_DB_H_
