// Group-commit write path: the only module allowed to append to or sync
// the WAL (tools/lint.sh bans wal_->AddRecord / wal_file_->Sync anywhere
// else; annotate deliberate exceptions with group-commit-ok:).
//
// Protocol (the LevelDB/RocksDB writer queue):
//
//   1. Every DBImpl::Write parks a Writer{batch, sync, cv} in writers_.
//      The front of the queue is the leader; everyone else sleeps on a
//      per-writer CondVar.
//   2. The leader claims a prefix of the queue up to a size cap and
//      concatenates the members into one batch with contiguous sequence
//      numbers. It then sets log_busy_ and RELEASES mu_ for the expensive
//      part: key-value separation, the single WAL append, and the sync
//      the durability mode calls for. Readers and the background thread
//      proceed under mu_ meanwhile; only WAL rotation (memtable freeze)
//      must wait for log_busy_ to clear.
//   3. The leader re-acquires mu_ and applies the group to the memtable.
//      Serial path: one InsertInto of the concatenated group under mu_.
//      Parallel path (Options::allow_concurrent_memtable_write + skiplist
//      rep, no kv-separation): the leader pre-assigns each member its
//      sequence offset within the group, sets apply_busy_, and wakes the
//      followers; every member — leader included — inserts its own batch
//      outside mu_ through the memtable's concurrent path, and the last
//      finisher signals the leader (ApplyWriteGroupLocked).
//   4. The leader publishes last_sequence once, after the whole group is
//      in (so no reader observes a partial group on either path), pops
//      the group — completing each follower with the group status — and
//      signals the next queued writer to lead. Member insert failures
//      funnel into the group status and poison bg_error_ exactly like a
//      serial apply failure.
//
// Mixed-group sync semantics: one group containing any sync writer syncs
// once for all members. The interval/bytes modes additionally bound the
// staleness of non-sync writes by time or by unsynced WAL bytes; a sync
// writer still forces a sync for its group in every mode.

#include <algorithm>
#include <cassert>
#include <chrono>

#include "core/db_impl.h"
#include "obs/perf_context.h"

namespace lsmlab {

struct DBImpl::Writer {
  explicit Writer(Mutex* mu) : cv(mu) {}

  WriteBatch* batch = nullptr;
  bool sync = false;
  bool done = false;
  // Parallel group apply: the leader sets parallel_base/parallel_apply
  // under mu_ and signals the member, which applies its own batch outside
  // mu_ starting at parallel_base, clears the flag, and parks again until
  // done. Both fields are only touched under mu_.
  SequenceNumber parallel_base = 0;
  bool parallel_apply = false;
  Status status;
  CondVar cv;
};

Status DBImpl::Put(const WriteOptions& options, const Slice& key,
                   const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(options, &batch);
}

Status DBImpl::Delete(const WriteOptions& options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(options, &batch);
}

Status DBImpl::Write(const WriteOptions& options, WriteBatch* updates) {
  PerfContext* perf = GetPerfContext();
  const PerfContext before = *perf;
  PendingEvents events;
  Status s;
  {
    PerfTimer timer(&perf->write_micros);
    s = WriteImpl(options, updates, &events);
  }
  stats_.Add(Ticker::kWrites);
  stats_.Record(PhaseHistogram::kWriteMicros,
                static_cast<double>(perf->write_micros - before.write_micros));
  stats_.MergePerfDelta(perf->Delta(before));
  NotifyListeners(&events);
  return s;
}

Status DBImpl::WriteImpl(const WriteOptions& options, WriteBatch* updates,
                         PendingEvents* events) {
  Writer w(&mu_);
  w.batch = updates;
  w.sync = options.sync;

  mu_.Lock();
  writers_.push_back(&w);
  if (&w != writers_.front()) {
    const auto park_start = std::chrono::steady_clock::now();
    while (!w.done && !w.parallel_apply && &w != writers_.front()) {
      w.cv.Wait();
    }
    GetPerfContext()->write_queue_wait_micros += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - park_start)
            .count());
    if (w.parallel_apply) {
      // Woken mid-group to apply our own sub-batch at the sequence offset
      // the leader assigned (see ApplyWriteGroupLocked). The leader still
      // owns the group: apply outside mu_, report in, and park again for
      // the commit status.
      MemTable* mem = mem_;
      mu_.Unlock();
      uint64_t cas_retries = 0;
      const Status as =
          w.batch->InsertIntoConcurrent(mem, w.parallel_base, &cas_retries);
      GetPerfContext()->memtable_insert_cas_retries += cas_retries;
      mu_.Lock();
      w.parallel_apply = false;
      if (!as.ok() && parallel_status_.ok()) {
        parallel_status_ = as;
      }
      assert(parallel_pending_ > 0);
      if (--parallel_pending_ == 0) {
        apply_cv_.Signal();
      }
      while (!w.done) {
        w.cv.Wait();
      }
    }
    if (w.done) {
      // A leader committed (or failed) this batch on our behalf.
      const Status s = w.status;
      mu_.Unlock();
      return s;
    }
  }

  // This writer leads.
  Status s;
  if (!bg_error_.ok()) {
    // A prior failure poisoned the DB — a failed flush/compaction, or a
    // group whose WAL record landed but whose commit could not complete.
    // Accepting more writes would diverge further from the log.
    s = bg_error_;
  } else if (bg_pool_ != nullptr) {
    // Background mode: make room first so the group lands in the memtable
    // and WAL that will stay current (a freeze rotates both). May release
    // and reacquire mu_; writers arriving meanwhile queue behind us.
    s = MakeRoomForWrite(events);
  }

  Writer* last_writer = &w;
  if (s.ok()) {
    bool group_sync = false;
    uint64_t writer_count = 1;
    WriteBatch* group =
        BuildWriteGroupLocked(&last_writer, &group_sync, &writer_count);
    const SequenceNumber base = versions_->last_sequence() + 1;
    // Raw pointers for the unlocked window: log_busy_ keeps rotation out,
    // so the WAL writer and file cannot be replaced while we use them.
    wal::Writer* wal = wal_.get();
    WritableFile* wal_file = wal_file_.get();

    log_busy_ = true;
    mu_.Unlock();

    PerfContext* perf = GetPerfContext();
    bool vlog_appended = false;
    s = MaybeSeparateBatch(group, &vlog_appended);
    group->set_sequence(base);
    const bool want_sync =
        s.ok() && ShouldSyncWal(group_sync, group->Contents().size());
    bool synced = false;
    bool wal_appended = false;
    if (vlog_appended) {
      // This group buffered new value-log bytes (Add flushes, never
      // fsyncs); they stay unsynced until the next value-log fsync.
      vlog_unsynced_ = true;
    }
    if (s.ok() && vlog_ != nullptr && vlog_unsynced_ &&
        (vlog_appended || want_sync)) {
      // WiscKey durability order: separated values must be durable before
      // their pointers are. A WAL fsync makes every previously appended
      // pointer record durable, so it must be preceded by a value-log
      // fsync whenever ANY unsynced value-log bytes exist — whether this
      // group appended them or an earlier non-sync group did. Groups that
      // separated nothing and fsync nothing skip the call entirely.
      s = vlog_->Sync(/*fsync=*/want_sync);
      if (s.ok()) {
        stats_.Add(Ticker::kVlogSyncs);
        if (want_sync) {
          vlog_unsynced_ = false;
        }
      }
    }
    if (s.ok() && wal != nullptr) {
      s = wal->AddRecord(group->Contents());
      if (s.ok()) {
        wal_appended = true;
        perf->wal_append_count++;
        wal_unsynced_bytes_ += group->Contents().size();
        if (want_sync) {
          s = wal_file->Sync();
          if (s.ok()) {
            perf->wal_sync_count++;
            synced = true;
            wal_unsynced_bytes_ = 0;
            last_wal_sync_ = std::chrono::steady_clock::now();
          }
        }
      }
    }
    stats_.Add(Ticker::kWalGroupCommits);
    if (writer_count > 1) {
      stats_.Add(Ticker::kWalGroupFollowers, writer_count - 1);
    }
    if (!synced) {
      stats_.Add(Ticker::kWalSyncSkipped);
    }
    stats_.Record(PhaseHistogram::kWriteGroupSize,
                  static_cast<double>(writer_count));

    mu_.Lock();
    log_busy_ = false;
    // Freeze/flush waiters park on bg_cv_ until the log is idle again.
    bg_cv_.SignalAll();

    if (s.ok()) {
      s = ApplyWriteGroupLocked(&w, last_writer, group, base, writer_count);
    }
    if (s.ok()) {
      versions_->SetLastSequence(base + group->Count() - 1);
    } else if (wal_appended && bg_error_.ok()) {
      // The WAL holds this group's record, but every member will be told
      // the write failed and last_sequence did not advance: the next
      // group would reuse the same sequence numbers, and recovery would
      // replay writes the client saw fail. Poison the DB (LevelDB's
      // RecordBackgroundError posture) so no later write can commit
      // against the divergent log.
      bg_error_ = s;
    }

    if (s.ok()) {
      if (bg_pool_ != nullptr) {
        if (pending_seek_compaction_.exchange(false,
                                              std::memory_order_relaxed)) {
          // Reads flagged a file that keeps wasting probes; wake the
          // background thread to service it (tutorial I-2 trigger
          // primitive).
          bg_compaction_hint_ = true;
          MaybeScheduleBackgroundWork();
        }
      } else if (mem_->ApproximateMemoryUsage() >=
                 options_.write_buffer_size) {
        s = FlushMemTableLocked(events);
        if (s.ok()) {
          s = MaybeCompact(events, options_.max_compactions_per_write);
        }
      } else if (pending_seek_compaction_.exchange(
                     false, std::memory_order_relaxed)) {
        // Inline mode services the read-triggered compaction on this
        // write.
        s = MaybeCompact(events, options_.max_compactions_per_write);
      }
    }
  }

  // Complete the group: pop [leader .. last_writer], waking each follower
  // with the group status (a leader error fails every member), then hand
  // leadership to the next queued writer. On a MakeRoomForWrite failure no
  // group was built and last_writer == &w, so only the leader pops.
  while (true) {
    Writer* ready = writers_.front();
    writers_.pop_front();
    if (ready != &w) {
      ready->status = s;
      ready->done = true;
      ready->cv.Signal();
    }
    if (ready == last_writer) {
      break;
    }
  }
  if (!writers_.empty()) {
    writers_.front()->cv.Signal();
  }
  mu_.Unlock();
  return s;
}

WriteBatch* DBImpl::BuildWriteGroupLocked(Writer** last_writer,
                                          bool* group_sync,
                                          uint64_t* writer_count) {
  Writer* leader = writers_.front();
  size_t bytes = leader->batch->ApproximateSize();
  // Cap group growth so one commit cannot balloon its members' latency; a
  // small leader picks up at most ~128 KiB of followers, so a tiny write
  // is never stuck behind a megabyte of concatenation.
  size_t max_bytes = options_.max_write_group_bytes;
  if (bytes <= (128u << 10)) {
    max_bytes = std::min(max_bytes, bytes + (128u << 10));
  }

  *group_sync = leader->sync;
  *last_writer = leader;
  *writer_count = 1;
  WriteBatch* group = leader->batch;
  for (auto it = writers_.begin() + 1; it != writers_.end(); ++it) {
    Writer* follower = *it;
    if (bytes + follower->batch->ApproximateSize() > max_bytes) {
      break;
    }
    if (group == leader->batch) {
      // First follower: switch to the scratch batch (leader-owned while
      // we sit at the queue front) so the caller's batch stays intact.
      group_batch_.Clear();
      group_batch_.Append(*leader->batch);
      group = &group_batch_;
    }
    group_batch_.Append(*follower->batch);
    bytes += follower->batch->ApproximateSize();
    *group_sync = *group_sync || follower->sync;
    *last_writer = follower;
    ++(*writer_count);
  }
  return group;
}

Status DBImpl::ApplyWriteGroupLocked(Writer* leader, Writer* last_writer,
                                     WriteBatch* group, SequenceNumber base,
                                     uint64_t writer_count) {
  const auto apply_start = std::chrono::steady_clock::now();
  Status s;
  // Parallel apply needs a real group (followers to hand work to), the
  // option on, a memtable rep that takes concurrent inserts, and no
  // kv-separation: MaybeSeparateBatch rewrote only the concatenated group
  // (tagging values inline/pointer), so the members' raw batches no
  // longer match what the WAL recorded — separation keeps the serial
  // leader-apply of the rewritten group.
  const bool parallel = writer_count > 1 &&
                        options_.allow_concurrent_memtable_write &&
                        vlog_ == nullptr && mem_->SupportsConcurrentInsert();
  if (!parallel) {
    stats_.Add(Ticker::kMemtableSerialApplies);
    s = group->InsertInto(mem_);
  } else {
    stats_.Add(Ticker::kMemtableParallelApplies);
    apply_busy_ = true;
    parallel_status_ = Status::OK();
    parallel_pending_ = writer_count;
    // Hand every follower its precomputed sequence offset — the leader's
    // entries come first, then each member in queue order, mirroring the
    // concatenation order of BuildWriteGroupLocked — and wake it.
    SequenceNumber running = base + leader->batch->Count();
    for (auto it = writers_.begin() + 1;; ++it) {
      assert(it != writers_.end());
      Writer* member = *it;
      member->parallel_base = running;
      running += member->batch->Count();
      member->parallel_apply = true;
      member->cv.Signal();
      if (member == last_writer) {
        break;
      }
    }
    assert(running == base + group->Count());

    MemTable* mem = mem_;
    mu_.Unlock();
    uint64_t cas_retries = 0;
    const Status ls =
        leader->batch->InsertIntoConcurrent(mem, base, &cas_retries);
    GetPerfContext()->memtable_insert_cas_retries += cas_retries;
    mu_.Lock();
    if (!ls.ok() && parallel_status_.ok()) {
      parallel_status_ = ls;
    }
    assert(parallel_pending_ > 0);
    --parallel_pending_;
    while (parallel_pending_ > 0) {
      apply_cv_.Wait();
    }
    s = parallel_status_;
    apply_busy_ = false;
    // Freeze/flush waiters gate on apply_busy_ exactly like log_busy_.
    bg_cv_.SignalAll();
  }
  stats_.Record(PhaseHistogram::kMemtableApplyMicros,
                static_cast<double>(
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - apply_start)
                        .count()));
  return s;
}

bool DBImpl::ShouldSyncWal(bool group_sync, uint64_t record_bytes) const {
  // A group containing a sync writer syncs in every mode — an application
  // mixing a relaxed mode with an occasional must-be-durable write (a
  // commit marker, say) keeps its guarantee. The interval/bytes policies
  // only add syncs for non-sync traffic, bounding its staleness.
  switch (options_.wal_sync_mode) {
    case WalSyncMode::kSyncEveryCommit:
      return group_sync;
    case WalSyncMode::kSyncIntervalMs:
      return group_sync ||
             std::chrono::steady_clock::now() - last_wal_sync_ >=
                 std::chrono::milliseconds(options_.wal_sync_interval_ms);
    case WalSyncMode::kSyncBytes:
      return group_sync ||
             wal_unsynced_bytes_ + record_bytes >= options_.wal_sync_bytes;
  }
  return group_sync;
}

// -------------------------------------------------- Key-value separation --

namespace {

/// Batch rewriter: moves large values into the value log.
class SeparatingHandler : public WriteBatch::Handler {
 public:
  SeparatingHandler(ValueLog* vlog, size_t threshold, WriteBatch* out)
      : vlog_(vlog), threshold_(threshold), out_(out) {}

  void Put(const Slice& key, const Slice& value) override {
    if (!status_.ok()) {
      return;
    }
    std::string stored;
    if (value.size() >= threshold_) {
      stored.push_back(kVlogPointerTag);
      std::string pointer;
      status_ = vlog_->Add(value, &pointer);
      if (!status_.ok()) {
        return;
      }
      stored.append(pointer);
      separated_count_++;
    } else {
      stored.push_back(kVlogInlineTag);
      stored.append(value.data(), value.size());
    }
    out_->Put(key, stored);
  }

  void Delete(const Slice& key) override { out_->Delete(key); }

  Status status() const { return status_; }
  /// Values actually appended to the value log (a batch of small values
  /// separates nothing and needs no value-log sync).
  uint64_t separated_count() const { return separated_count_; }

 private:
  ValueLog* vlog_;
  size_t threshold_;
  WriteBatch* out_;
  uint64_t separated_count_ = 0;
  Status status_;
};

}  // namespace

Status DBImpl::MaybeSeparateBatch(WriteBatch* updates, bool* vlog_appended) {
  *vlog_appended = false;
  if (vlog_ == nullptr) {
    return Status::OK();
  }
  WriteBatch separated;
  SeparatingHandler handler(vlog_.get(), options_.value_separation_threshold,
                            &separated);
  Status s = updates->Iterate(&handler);
  if (s.ok()) {
    s = handler.status();
  }
  if (!s.ok()) {
    return s;
  }
  *updates = separated;
  *vlog_appended = handler.separated_count() > 0;
  return Status::OK();
}

}  // namespace lsmlab
