#ifndef LSMLAB_CORE_DB_ITER_H_
#define LSMLAB_CORE_DB_ITER_H_

#include "core/dbformat.h"
#include "util/iterator.h"

namespace lsmlab {

/// Wraps a merged internal-key iterator into the user view: yields each
/// live user key once (its newest version visible at `sequence`), hides
/// tombstones and shadowed versions. Takes ownership of `internal_iter`.
Iterator* NewDBIterator(const Comparator* user_comparator,
                        Iterator* internal_iter, SequenceNumber sequence);

}  // namespace lsmlab

#endif  // LSMLAB_CORE_DB_ITER_H_
