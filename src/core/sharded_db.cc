#include "core/sharded_db.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "core/merging_iterator.h"
#include "storage/env.h"
#include "util/hash.h"

namespace lsmlab {

// ------------------------------------------------------------- Routing --

uint32_t ShardOfKey(const Slice& key, uint32_t num_shards) {
  assert(num_shards > 0);
  return static_cast<uint32_t>(Hash64(key, kShardRouteSeed) % num_shards);
}

std::string ShardPath(const std::string& dbname, int shard) {
  return dbname + "/shard-" + std::to_string(shard);
}

Status CheckShardMarker(const Options& options, const std::string& name) {
  Env* env = options.env;
  const std::string marker = name + "/" + kShardMarkerFile;
  if (env->FileExists(marker)) {
    std::string contents;
    Status s = ReadFileToString(env, marker, &contents);
    if (!s.ok()) {
      return s;
    }
    int recorded = 0;
    for (char c : contents) {
      if (c < '0' || c > '9') {
        break;  // tolerate a trailing newline
      }
      recorded = recorded * 10 + (c - '0');
    }
    if (recorded < 1) {
      return Status::Corruption(marker, "unparseable shard count");
    }
    if (recorded != options.num_shards) {
      return Status::InvalidArgument(
          name, "created with " + std::to_string(recorded) +
                    " shards; reopen with Options::num_shards = " +
                    std::to_string(recorded));
    }
    return Status::OK();
  }
  if (options.num_shards <= 1) {
    return Status::OK();  // plain single-instance layout; no marker
  }
  // First sharded open: record the count before any shard writes data, so
  // a crash mid-create cannot leave shard directories with no marker.
  Status s = env->CreateDir(name);
  if (!s.ok()) {
    return s;
  }
  return WriteStringToFile(env, std::to_string(options.num_shards) + "\n",
                           marker);
}

// ------------------------------------------------------------ Snapshots --

/// One Snapshot handle per shard, all taken at the same GetSnapshot call.
/// There is no global sequence across shards; consistency is the vector
/// itself (each reader of the snapshot sees each shard at its member
/// snapshot). sequence() reports the max member sequence, for display.
class ShardedDB::ShardedSnapshot : public Snapshot {
 public:
  explicit ShardedSnapshot(std::vector<const Snapshot*> members)
      : members_(std::move(members)) {}

  SequenceNumber sequence() const override {
    SequenceNumber max_seq = 0;
    for (const Snapshot* s : members_) {
      max_seq = std::max(max_seq, s->sequence());
    }
    return max_seq;
  }

  const Snapshot* member(int shard) const { return members_[shard]; }
  const std::vector<const Snapshot*>& members() const { return members_; }

 private:
  std::vector<const Snapshot*> members_;
};

const Snapshot* ShardedDB::GetSnapshot() {
  std::vector<const Snapshot*> members;
  members.reserve(num_shards_);
  for (const auto& shard : shards_) {
    members.push_back(shard->GetSnapshot());
  }
  return new ShardedSnapshot(std::move(members));
}

void ShardedDB::ReleaseSnapshot(const Snapshot* snapshot) {
  if (snapshot == nullptr) {
    return;
  }
  const auto* sharded = static_cast<const ShardedSnapshot*>(snapshot);
  for (int k = 0; k < num_shards_; k++) {
    shards_[k]->ReleaseSnapshot(sharded->member(k));
  }
  delete sharded;
}

ReadOptions ShardedDB::ShardReadOptions(const ReadOptions& options,
                                        int shard) const {
  ReadOptions ro = options;
  if (options.snapshot != nullptr) {
    ro.snapshot =
        static_cast<const ShardedSnapshot*>(options.snapshot)->member(shard);
  }
  return ro;
}

// ------------------------------------------------------------ Lifecycle --

ShardedDB::ShardedDB(const Options& options, std::string dbname)
    : options_(options),
      dbname_(std::move(dbname)),
      num_shards_(options.num_shards) {
  assert(num_shards_ > 1);
  if (options_.background_compaction) {
    bg_pool_ = std::make_unique<ThreadPool>(num_shards_);
  }
  dispatch_pool_ = std::make_unique<ThreadPool>(num_shards_);
  shards_.reserve(num_shards_);
  for (int k = 0; k < num_shards_; k++) {
    shards_.push_back(std::make_unique<DBImpl>(
        options_, ShardPath(dbname_, k), bg_pool_.get()));
  }
}

ShardedDB::~ShardedDB() {
  // Stop the shared pools before the shards. Shutdown drains: background
  // work already queued (e.g. a flush of a frozen memtable) still runs,
  // while any MaybeScheduleBackgroundWork racing with the drain takes the
  // Schedule()==false path and resets its flag — the kDraining contract.
  // Unflushed memtables the drain leaves behind are recovered from each
  // shard's WAL on the next open.
  if (bg_pool_ != nullptr) {
    bg_pool_->Shutdown();
  }
  dispatch_pool_->Shutdown();
  shards_.clear();
}

Status ShardedDB::Init() {
  // The root must exist before each shard creates its subdirectory (the
  // marker write normally creates it, but be safe on handmade layouts).
  Status s = options_.env->CreateDir(dbname_);
  if (!s.ok()) {
    return s;
  }
  for (const auto& shard : shards_) {
    s = shard->Init();
    if (!s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

// -------------------------------------------------------------- Fan-out --

void ShardedDB::FanOut(const std::vector<int>& targets,
                       const std::function<void(int)>& fn) {
  if (targets.empty()) {
    return;
  }
  if (targets.size() == 1) {
    fn(targets[0]);
    return;
  }
  // Dispatch all but the first target; this thread works too instead of
  // just blocking. `remaining` lives on this frame — safe because we do
  // not return until it reaches zero.
  int remaining = 0;
  {
    MutexLock lock(&mu_);
    remaining = static_cast<int>(targets.size()) - 1;
  }
  std::vector<int> inline_targets;
  inline_targets.push_back(targets[0]);
  for (size_t i = 1; i < targets.size(); i++) {
    const int target = targets[i];
    const bool queued = dispatch_pool_->Schedule([this, target, &fn,
                                                  &remaining] {
      fn(target);
      MutexLock lock(&mu_);
      remaining--;
      fanout_cv_.SignalAll();
    });
    if (!queued) {
      // Pool draining (teardown); honor the rejection by running inline.
      inline_targets.push_back(target);
      MutexLock lock(&mu_);
      remaining--;
    }
  }
  for (int target : inline_targets) {
    fn(target);
  }
  MutexLock lock(&mu_);
  while (remaining > 0) {
    fanout_cv_.Wait();
  }
}

// ------------------------------------------------------------ Write path --

Status ShardedDB::Put(const WriteOptions& options, const Slice& key,
                      const Slice& value) {
  return shards_[ShardOf(key)]->Put(options, key, value);
}

Status ShardedDB::Delete(const WriteOptions& options, const Slice& key) {
  return shards_[ShardOf(key)]->Delete(options, key);
}

namespace {

/// Routes a batch's entries into one sub-batch per shard.
class ShardSplitter : public WriteBatch::Handler {
 public:
  explicit ShardSplitter(int num_shards) : subs_(num_shards) {}

  void Put(const Slice& key, const Slice& value) override {
    subs_[ShardOfKey(key, static_cast<uint32_t>(subs_.size()))].Put(key,
                                                                    value);
  }
  void Delete(const Slice& key) override {
    subs_[ShardOfKey(key, static_cast<uint32_t>(subs_.size()))].Delete(key);
  }

  std::vector<WriteBatch>& subs() { return subs_; }

 private:
  std::vector<WriteBatch> subs_;
};

void MergeStatus(Status* dst, const Status& src) {
  if (dst->ok() && !src.ok()) {
    *dst = src;
  }
}

}  // namespace

Status ShardedDB::Write(const WriteOptions& options, WriteBatch* updates) {
  if (updates == nullptr || updates->Count() == 0) {
    return shards_[0]->Write(options, updates);
  }
  ShardSplitter splitter(num_shards_);
  Status s = updates->Iterate(&splitter);
  if (!s.ok()) {
    return s;
  }
  std::vector<int> targets;
  for (int k = 0; k < num_shards_; k++) {
    if (splitter.subs()[k].Count() > 0) {
      targets.push_back(k);
    }
  }
  if (targets.size() == 1) {
    // Single-shard batch: full batch atomicity on that shard.
    return shards_[targets[0]]->Write(options, &splitter.subs()[targets[0]]);
  }
  // Cross-shard batch: each sub-batch commits atomically on its shard
  // (in parallel), but there is no cross-shard commit point — a reader
  // may observe shard A's sub-batch before shard B's lands.
  std::vector<Status> statuses(num_shards_);
  FanOut(targets, [&](int k) {
    statuses[k] = shards_[k]->Write(options, &splitter.subs()[k]);
  });
  for (int k : targets) {
    MergeStatus(&s, statuses[k]);
  }
  return s;
}

// ------------------------------------------------------------- Read path --

Status ShardedDB::Get(const ReadOptions& options, const Slice& key,
                      std::string* value) {
  const int k = static_cast<int>(ShardOf(key));
  return shards_[k]->Get(ShardReadOptions(options, k), key, value);
}

void ShardedDB::MultiGet(const ReadOptions& options,
                         std::span<const Slice> keys,
                         std::vector<std::string>* values,
                         std::vector<Status>* statuses) {
  values->assign(keys.size(), std::string());
  statuses->assign(keys.size(), Status::OK());
  if (keys.empty()) {
    return;
  }
  // Partition the key list by shard, remembering original slots so the
  // scattered answers land back in caller order.
  std::vector<std::vector<size_t>> slots(num_shards_);
  for (size_t i = 0; i < keys.size(); i++) {
    slots[ShardOf(keys[i])].push_back(i);
  }
  std::vector<int> targets;
  for (int k = 0; k < num_shards_; k++) {
    if (!slots[k].empty()) {
      targets.push_back(k);
    }
  }
  FanOut(targets, [&](int k) {
    std::vector<Slice> sub_keys;
    sub_keys.reserve(slots[k].size());
    for (size_t slot : slots[k]) {
      sub_keys.push_back(keys[slot]);
    }
    std::vector<std::string> sub_values;
    std::vector<Status> sub_statuses;
    shards_[k]->MultiGet(ShardReadOptions(options, k), sub_keys, &sub_values,
                         &sub_statuses);
    for (size_t j = 0; j < slots[k].size(); j++) {
      (*values)[slots[k][j]] = std::move(sub_values[j]);
      (*statuses)[slots[k][j]] = sub_statuses[j];
    }
  });
}

namespace {

/// Owns the per-shard snapshot vector backing a merged iterator created
/// without an explicit snapshot, releasing it when the iterator dies.
class SnapshotOwningIterator : public Iterator {
 public:
  SnapshotOwningIterator(Iterator* base, DB* db, const Snapshot* snapshot)
      : base_(base), db_(db), snapshot_(snapshot) {}
  ~SnapshotOwningIterator() override { db_->ReleaseSnapshot(snapshot_); }

  bool Valid() const override { return base_->Valid(); }
  void SeekToFirst() override { base_->SeekToFirst(); }
  void SeekToLast() override { base_->SeekToLast(); }
  void Seek(const Slice& target) override { base_->Seek(target); }
  void Next() override { base_->Next(); }
  void Prev() override { base_->Prev(); }
  Slice key() const override { return base_->key(); }
  Slice value() const override { return base_->value(); }
  Status status() const override { return base_->status(); }

 private:
  std::unique_ptr<Iterator> base_;
  DB* db_;
  const Snapshot* snapshot_;
};

}  // namespace

Iterator* ShardedDB::NewIterator(const ReadOptions& options) {
  // Consistent per-shard snapshot vector: every shard is read at one
  // point in its own history, fixed here. User keys are disjoint across
  // shards (a key hashes to exactly one), so the merge needs no
  // cross-shard dedup, and per-shard iterators already resolve values.
  const Snapshot* owned = nullptr;
  ReadOptions ro = options;
  if (ro.snapshot == nullptr) {
    owned = GetSnapshot();
    ro.snapshot = owned;
  }
  std::vector<Iterator*> children(num_shards_);
  for (int k = 0; k < num_shards_; k++) {
    children[k] = shards_[k]->NewIterator(ShardReadOptions(ro, k));
  }
  Iterator* merged = NewMergingIterator(options_.comparator, children.data(),
                                        num_shards_);
  if (owned == nullptr) {
    return merged;
  }
  return new SnapshotOwningIterator(merged, this, owned);
}

Status ShardedDB::Scan(
    const ReadOptions& options, const Slice& start, const Slice& end,
    size_t limit,
    std::vector<std::pair<std::string, std::string>>* results) {
  results->clear();
  // Every shard may hold keys in [start, end]; scan them all in parallel,
  // each up to `limit` (the global cut cannot be known per shard), then
  // merge the ordered partials and truncate.
  std::vector<std::vector<std::pair<std::string, std::string>>> partials(
      num_shards_);
  std::vector<Status> statuses(num_shards_);
  std::vector<int> targets;
  for (int k = 0; k < num_shards_; k++) {
    targets.push_back(k);
  }
  FanOut(targets, [&](int k) {
    statuses[k] = shards_[k]->Scan(ShardReadOptions(options, k), start, end,
                                   limit, &partials[k]);
  });
  Status s;
  for (int k = 0; k < num_shards_; k++) {
    MergeStatus(&s, statuses[k]);
  }
  if (!s.ok()) {
    return s;
  }
  const Comparator* cmp = options_.comparator;
  using Cursor = std::pair<int, size_t>;  // (shard, next index)
  auto greater = [&](const Cursor& a, const Cursor& b) {
    return cmp->Compare(Slice(partials[a.first][a.second].first),
                        Slice(partials[b.first][b.second].first)) > 0;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(greater)> heap(
      greater);
  for (int k = 0; k < num_shards_; k++) {
    if (!partials[k].empty()) {
      heap.emplace(k, 0);
    }
  }
  while (!heap.empty() && results->size() < limit) {
    auto [k, i] = heap.top();
    heap.pop();
    results->push_back(std::move(partials[k][i]));
    if (i + 1 < partials[k].size()) {
      heap.emplace(k, i + 1);
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------- Maintenance --

Status ShardedDB::CompactAll() {
  std::vector<Status> statuses(num_shards_);
  std::vector<int> targets;
  for (int k = 0; k < num_shards_; k++) {
    targets.push_back(k);
  }
  FanOut(targets, [&](int k) { statuses[k] = shards_[k]->CompactAll(); });
  Status s;
  for (const Status& st : statuses) {
    MergeStatus(&s, st);
  }
  return s;
}

Status ShardedDB::Flush() {
  std::vector<Status> statuses(num_shards_);
  std::vector<int> targets;
  for (int k = 0; k < num_shards_; k++) {
    targets.push_back(k);
  }
  FanOut(targets, [&](int k) { statuses[k] = shards_[k]->Flush(); });
  Status s;
  for (const Status& st : statuses) {
    MergeStatus(&s, st);
  }
  return s;
}

Status ShardedDB::GarbageCollectValues() {
  // Sequential: vlog GC is rare, heavy, and per-shard independent.
  Status s;
  for (const auto& shard : shards_) {
    MergeStatus(&s, shard->GarbageCollectValues());
  }
  return s;
}

// -------------------------------------------------------- Observability --

DBStats ShardedDB::GetStats() {
  DBStats total;
  for (const auto& shard : shards_) {
    const DBStats stats = shard->GetStats();
    total.num_levels = std::max(total.num_levels, stats.num_levels);
    total.total_runs += stats.total_runs;
    total.total_files += stats.total_files;
    total.total_bytes += stats.total_bytes;
    if (total.runs_per_level.size() < stats.runs_per_level.size()) {
      total.runs_per_level.resize(stats.runs_per_level.size(), 0);
      total.bytes_per_level.resize(stats.bytes_per_level.size(), 0);
    }
    for (size_t i = 0; i < stats.runs_per_level.size(); i++) {
      total.runs_per_level[i] += stats.runs_per_level[i];
      total.bytes_per_level[i] += stats.bytes_per_level[i];
    }
    total.bytes_flushed += stats.bytes_flushed;
    total.bytes_compacted += stats.bytes_compacted;
    total.compactions += stats.compactions;
    total.flushes += stats.flushes;
    total.writes += stats.writes;
    total.group_commits += stats.group_commits;
    total.group_followers += stats.group_followers;
    total.wal_syncs += stats.wal_syncs;
    total.wal_sync_skipped += stats.wal_sync_skipped;
    total.vlog_syncs += stats.vlog_syncs;
    total.parallel_applies += stats.parallel_applies;
    total.serial_applies += stats.serial_applies;
    total.insert_cas_retries += stats.insert_cas_retries;
    total.write_slowdowns += stats.write_slowdowns;
    total.write_stalls += stats.write_stalls;
    total.write_slowdown_micros += stats.write_slowdown_micros;
    total.write_stall_micros += stats.write_stall_micros;
    total.gets += stats.gets;
    total.gets_found += stats.gets_found;
    total.memtable_hits += stats.memtable_hits;
    total.runs_probed += stats.runs_probed;
    total.filter_skips += stats.filter_skips;
    total.range_filter_skips += stats.range_filter_skips;
    total.hash_index_hits += stats.hash_index_hits;
    total.hash_index_absent += stats.hash_index_absent;
    total.learned_index_seeks += stats.learned_index_seeks;
    total.index_filter_memory += stats.index_filter_memory;
    total.multigets += stats.multigets;
    total.multiget_keys += stats.multiget_keys;
    total.multiget_filter_pruned += stats.multiget_filter_pruned;
    total.multiget_coalesced_block_hits += stats.multiget_coalesced_block_hits;
    total.value_log_bytes += stats.value_log_bytes;
    total.value_log_files += stats.value_log_files;
    total.separated_reads += stats.separated_reads;
  }
  return total;
}

namespace {

/// Sums "ticker.<name>=<value>" lines across per-shard dumps (order and
/// set of tickers is identical in every dump), and collects non-ticker
/// lines (histograms) per shard under a "shard.<k>." prefix.
std::string AggregateStatsDumps(const std::vector<std::string>& dumps) {
  std::vector<std::string> ticker_names;   // first-seen order
  std::vector<uint64_t> ticker_totals;
  std::string histograms;
  for (size_t k = 0; k < dumps.size(); k++) {
    size_t ticker_index = 0;
    size_t pos = 0;
    const std::string& dump = dumps[k];
    while (pos < dump.size()) {
      size_t eol = dump.find('\n', pos);
      if (eol == std::string::npos) {
        eol = dump.size();
      }
      const std::string line = dump.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.rfind("ticker.", 0) == 0) {
        const size_t eq = line.find('=');
        if (eq == std::string::npos) {
          continue;
        }
        const std::string name = line.substr(0, eq);
        uint64_t v = 0;
        for (size_t i = eq + 1; i < line.size(); i++) {
          if (line[i] < '0' || line[i] > '9') {
            break;
          }
          v = v * 10 + static_cast<uint64_t>(line[i] - '0');
        }
        if (ticker_index == ticker_names.size()) {
          ticker_names.push_back(name);
          ticker_totals.push_back(0);
        }
        ticker_totals[ticker_index] += v;
        ticker_index++;
      } else if (!line.empty()) {
        histograms += "shard." + std::to_string(k) + "." + line + "\n";
      }
    }
  }
  std::string out;
  for (size_t i = 0; i < ticker_names.size(); i++) {
    out += ticker_names[i] + "=" + std::to_string(ticker_totals[i]) + "\n";
  }
  out += histograms;
  return out;
}

}  // namespace

bool ShardedDB::GetProperty(const Slice& property, std::string* value) {
  value->clear();
  if (property == Slice("lsmlab.num-shards")) {
    *value = std::to_string(num_shards_);
    return true;
  }
  if (property == Slice("lsmlab.bg-jobs-high-water")) {
    *value = std::to_string(TEST_BgJobsHighWater());
    return true;
  }
  const std::string prop = property.ToString();
  const std::string shard_prefix = "lsmlab.shard.";
  if (prop.rfind(shard_prefix, 0) == 0) {
    const size_t dot = prop.find('.', shard_prefix.size());
    if (dot == std::string::npos || dot == shard_prefix.size()) {
      return false;
    }
    int shard = 0;
    for (size_t i = shard_prefix.size(); i < dot; i++) {
      if (prop[i] < '0' || prop[i] > '9') {
        return false;
      }
      shard = shard * 10 + (prop[i] - '0');
    }
    if (shard >= num_shards_) {
      return false;
    }
    return shards_[shard]->GetProperty(
        Slice("lsmlab." + prop.substr(dot + 1)), value);
  }
  if (property == Slice("lsmlab.stats")) {
    std::vector<std::string> dumps(num_shards_);
    for (int k = 0; k < num_shards_; k++) {
      if (!shards_[k]->GetProperty(property, &dumps[k])) {
        return false;
      }
    }
    *value = AggregateStatsDumps(dumps);
    return true;
  }
  // Thread-local (perf-context) and Env-global (io-stats) properties are
  // shard-independent; any shard reports the same numbers.
  if (property == Slice("lsmlab.perf-context") ||
      property == Slice("lsmlab.io-stats")) {
    return shards_[0]->GetProperty(property, value);
  }
  return false;
}

std::string ShardedDB::DebugShape() {
  std::string shape;
  for (int k = 0; k < num_shards_; k++) {
    shape += "--- shard " + std::to_string(k) + " ---\n";
    shape += shards_[k]->DebugShape();
  }
  return shape;
}

}  // namespace lsmlab
