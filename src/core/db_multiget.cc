/// DB::MultiGet — the batched point-lookup path.
///
/// One batch pins the read view (memtables, version, sequence) exactly once,
/// probes the memtables for every key, then walks the tree level by level:
/// the keys still unresolved after a run are grouped by candidate file
/// (fence pointers), each file's filter is consulted per key before any
/// data-block I/O, and every distinct data block is fetched at most once no
/// matter how many keys land in it (TableCache::GetBatch ->
/// SSTable::MultiGet). Separated values resolve through one
/// ValueLog::GetBatch sorted by (file, offset).
///
/// Lock discipline: mu_ is held only for the initial pin; all batch I/O
/// runs unlocked against immutable state (the pinned version and its
/// files). Per-key statuses observe the corruption contract — a corrupt
/// block or value-log record fails only the keys it serves.

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "core/db_impl.h"
#include "obs/perf_context.h"
#include "util/hash.h"

namespace lsmlab {

namespace {

/// One key's state across the whole batch.
struct KeyState {
  KeyState(const Slice& user_key, SequenceNumber sequence)
      : lkey(user_key, sequence) {}

  LookupKey lkey;        // owns the encoded key bytes the Slices point into
  BatchGetContext ctx;
  size_t slot = 0;       // index into the caller's keys/values/statuses
  const Comparator* ucmp = nullptr;
  enum : uint8_t { kNotFound, kFound, kDeleted } state = kNotFound;
  bool failed = false;   // an I/O/corruption error is this key's answer
  std::string stored;    // raw (possibly vlog-tagged) stored value
};

/// BatchGetContext handler: plain function pointer, `arg` is the KeyState.
/// Mirrors GetImpl's saver lambda.
void SaveValue(void* arg, const Slice& ikey, const Slice& v) {
  auto* ks = static_cast<KeyState*>(arg);
  if (ks->state != KeyState::kNotFound) {
    return;  // already answered by a newer run
  }
  if (ks->ucmp->Compare(ExtractUserKey(ikey), ks->ctx.searchable) != 0) {
    return;  // seek overshot into the next user key: not present here
  }
  if (ExtractValueType(ikey) == ValueType::kTypeDeletion) {
    ks->state = KeyState::kDeleted;
  } else {
    ks->stored.assign(v.data(), v.size());
    ks->state = KeyState::kFound;
  }
}

}  // namespace

void DBImpl::MultiGet(const ReadOptions& options, std::span<const Slice> keys,
                      std::vector<std::string>* values,
                      std::vector<Status>* statuses) {
  PerfContext* perf = GetPerfContext();
  const PerfContext before = *perf;
  {
    PerfTimer timer(&perf->multiget_micros);
    MultiGetImpl(options, keys, values, statuses);
  }
  stats_.Record(
      PhaseHistogram::kMultiGetMicros,
      static_cast<double>(perf->multiget_micros - before.multiget_micros));
  stats_.MergePerfDelta(perf->Delta(before));
}

void DBImpl::MultiGetImpl(const ReadOptions& options,
                          std::span<const Slice> keys,
                          std::vector<std::string>* values,
                          std::vector<Status>* statuses) {
  values->clear();
  values->resize(keys.size());
  statuses->assign(keys.size(), Status::OK());
  stats_.Add(Ticker::kMultiGets);
  if (keys.empty()) {
    return;
  }
  GetPerfContext()->multiget_keys += keys.size();

  // Pin one consistent view for the whole batch: every key resolves at the
  // same sequence against the same memtables and tree shape, regardless of
  // concurrent writes and flushes.
  MemTable* mem;
  MemTable* imm = nullptr;
  VersionPtr version;
  SequenceNumber sequence;
  {
    const ReadView view = PinReadView(options);
    mem = view.mem;
    imm = view.imm;
    version = view.version;
    sequence = view.sequence;
  }

  const Comparator* ucmp = icmp_.user_comparator();
  std::vector<KeyState> states;
  // reserve() is load-bearing: ctx.target/searchable are Slices into each
  // LookupKey's internal buffer, so the vector must never reallocate after
  // the Slices are taken.
  states.reserve(keys.size());
  for (const Slice& key : keys) {
    states.emplace_back(key, sequence);
  }
  for (size_t i = 0; i < states.size(); i++) {
    KeyState& ks = states[i];
    ks.slot = i;
    ks.ucmp = ucmp;
    ks.ctx.target = ks.lkey.internal_key();
    ks.ctx.searchable = ks.lkey.user_key();
    // Hash each user key once; every filter probe across every run reuses
    // it (shared hashing).
    ks.ctx.hash = Hash64(ks.ctx.searchable);
    ks.ctx.handler = &SaveValue;
    ks.ctx.arg = &ks;
  }

  // Phase 1: newest data first — the live memtable, then the frozen one.
  std::vector<KeyState*> pending;
  pending.reserve(states.size());
  for (KeyState& ks : states) {
    Status mem_status;
    if (mem->Get(ks.lkey, &ks.stored, &mem_status) ||
        (imm != nullptr && imm->Get(ks.lkey, &ks.stored, &mem_status))) {
      stats_.Add(Ticker::kMemtableHits);
      GetPerfContext()->memtable_hit_count++;
      ks.state = mem_status.ok() ? KeyState::kFound : KeyState::kDeleted;
    } else {
      pending.push_back(&ks);
    }
  }
  mem->Unref();
  if (imm != nullptr) {
    imm->Unref();
  }

  // Phase 2: the tree, newest run first. After each run, keys that got an
  // answer (or a confined error) leave the pending set; the batch narrows
  // as it descends.
  for (int level = 0; level < version->num_levels() && !pending.empty();
       level++) {
    for (const Run& run : version->levels()[level].runs) {
      if (pending.empty()) {
        break;
      }
      // Group the unresolved keys by candidate file via the fence
      // pointers, preserving batch order within each file.
      std::vector<std::pair<const FileMetaPtr*, std::vector<BatchGetContext*>>>
          work;
      std::unordered_map<const FileMetaData*, size_t> file_to_work;
      for (KeyState* ks : pending) {
        const FileMetaPtr* file = FindFileInRun(run, ucmp, ks->ctx.searchable);
        if (file == nullptr) {
          continue;  // the run's key space does not cover this key
        }
        auto [it, inserted] = file_to_work.emplace(file->get(), work.size());
        if (inserted) {
          work.emplace_back(file, std::vector<BatchGetContext*>());
        }
        work[it->second].second.push_back(&ks->ctx);
      }
      for (auto& [file, ctxs] : work) {
        // status-ok: a table-level failure is already mirrored into every
        // member's ctx->status, which the loop below consumes per key.
        table_cache_
            ->GetBatch(**file, std::span<BatchGetContext* const>(ctxs),
                       options.use_filter)
            .IgnoreError();
        for (BatchGetContext* ctx : ctxs) {
          KeyState* ks = static_cast<KeyState*>(ctx->arg);
          if (ctx->filter_pruned) {
            stats_.Add(Ticker::kFilterSkips);
            continue;
          }
          if (!ctx->status.ok()) {
            // Confined failure: the error is this key's final answer; the
            // rest of the batch keeps probing.
            (*statuses)[ks->slot] = ctx->status;
            ks->failed = true;
            continue;
          }
          stats_.Add(Ticker::kRunsProbed);
          if (ks->state == KeyState::kNotFound) {
            // The probe paid an I/O and found nothing: read-trigger signal,
            // same accounting as the single-key path.
            const uint64_t wasted = (*file)->wasted_probes.fetch_add(
                                        1, std::memory_order_relaxed) +
                                    1;
            if (options_.seek_compaction_threshold > 0 &&
                wasted >= options_.seek_compaction_threshold) {
              pending_seek_compaction_.store(true, std::memory_order_relaxed);
            }
          }
        }
      }
      pending.erase(std::remove_if(pending.begin(), pending.end(),
                                   [](const KeyState* ks) {
                                     return ks->state != KeyState::kNotFound ||
                                            ks->failed;
                                   }),
                    pending.end());
    }
  }

  // Phase 3: per-key outcomes. Separated values are collected and resolved
  // in one (file, offset)-sorted pass over the value log.
  std::vector<ValueLog::BatchRead> vlog_reads;
  for (KeyState& ks : states) {
    if (ks.failed) {
      continue;  // the confined error is already in the slot
    }
    Status& slot_status = (*statuses)[ks.slot];
    if (ks.state != KeyState::kFound) {
      slot_status = Status::NotFound("");
      continue;
    }
    if (vlog_ == nullptr) {
      (*values)[ks.slot] = std::move(ks.stored);
      continue;
    }
    const std::string& stored = ks.stored;  // tag dispatch, as ResolveValue
    if (stored.empty()) {
      (*values)[ks.slot].clear();
    } else if (stored[0] == kVlogInlineTag) {
      (*values)[ks.slot].assign(stored.data() + 1, stored.size() - 1);
    } else if (stored[0] == kVlogPointerTag) {
      stats_.Add(Ticker::kSeparatedReads);
      vlog_reads.push_back(
          ValueLog::BatchRead{Slice(stored.data() + 1, stored.size() - 1),
                              &(*values)[ks.slot], &slot_status});
    } else {
      slot_status = Status::Corruption("unknown value tag");
    }
  }
  if (!vlog_reads.empty()) {
    vlog_->GetBatch(&vlog_reads);
  }
}

}  // namespace lsmlab
