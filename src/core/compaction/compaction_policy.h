#ifndef LSMLAB_CORE_COMPACTION_COMPACTION_POLICY_H_
#define LSMLAB_CORE_COMPACTION_COMPACTION_POLICY_H_

#include <memory>
#include <optional>
#include <vector>

#include "core/options.h"
#include "core/version.h"

namespace lsmlab {

class BlockCache;

/// One unit of compaction work chosen by a policy (tutorial I-2 / [76]:
/// trigger, granularity, and data-movement policy are the compaction
/// primitives; the data-layout primitive is the policy subclass itself).
struct CompactionPick {
  /// Source level; -1 means "drop only" (FIFO eviction).
  int level = 0;
  int output_level = 0;
  /// Files consumed from the source level.
  std::vector<FileMetaPtr> inputs;
  /// Files of the output level's run overlapping the inputs (leveled
  /// merges); they are consumed and rewritten too.
  std::vector<FileMetaPtr> output_overlaps;
  /// Run the outputs join; 0 = allocate a fresh run (tiered push).
  uint64_t output_run_seq = 0;
  /// FIFO: delete inputs without rewriting them.
  bool drop_only = false;
};

/// Strategy deciding when a level overflows and what to merge — the
/// merge-policy axis of the design space (leveling / tiering / lazy
/// leveling / FIFO).
class CompactionPolicy {
 public:
  virtual ~CompactionPolicy() = default;

  virtual const char* Name() const = 0;

  /// Returns the next compaction to run against `v`, or nullopt when the
  /// shape is within bounds. Policies may keep cursor state (round-robin
  /// picking), so this is non-const.
  virtual std::optional<CompactionPick> Pick(const Version& v) = 0;

  /// Byte capacity of `level` under this policy's shape.
  virtual uint64_t LevelCapacity(int level) const = 0;
};

/// Builds the policy selected by options.merge_policy. `block_cache` (may
/// be null) supplies hotness data for the kCold file picker.
std::unique_ptr<CompactionPolicy> CreateCompactionPolicy(
    const Options& options, const InternalKeyComparator* icmp,
    BlockCache* block_cache);

}  // namespace lsmlab

#endif  // LSMLAB_CORE_COMPACTION_COMPACTION_POLICY_H_
