#include "core/compaction/compaction_policy.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "cache/block_cache.h"

namespace lsmlab {

namespace {

/// Shared helpers for capacity math and overlap computation.
class PolicyBase : public CompactionPolicy {
 public:
  PolicyBase(const Options& options, const InternalKeyComparator* icmp,
             BlockCache* block_cache)
      : options_(options), icmp_(icmp), block_cache_(block_cache) {}

  uint64_t LevelCapacity(int level) const override {
    // Level 0 holds flushed buffers; deeper levels grow by T.
    double cap = static_cast<double>(options_.write_buffer_size) *
                 options_.level0_compaction_trigger;
    for (int i = 0; i < level; i++) {
      cap *= options_.size_ratio;
    }
    return static_cast<uint64_t>(cap);
  }

 protected:
  /// All files of every run in `level`.
  static std::vector<FileMetaPtr> AllFiles(const Version& v, int level) {
    std::vector<FileMetaPtr> files;
    for (const Run& run : v.levels()[level].runs) {
      files.insert(files.end(), run.files.begin(), run.files.end());
    }
    return files;
  }

  /// Files of the output level's newest run overlapping [smallest,
  /// largest] in user-key space.
  std::vector<FileMetaPtr> Overlaps(const Version& v, int output_level,
                                    const Slice& smallest,
                                    const Slice& largest) const {
    std::vector<FileMetaPtr> result;
    if (output_level >= v.num_levels()) {
      return result;
    }
    const Comparator* ucmp = icmp_->user_comparator();
    Slice user_lo = ExtractUserKey(smallest);
    Slice user_hi = ExtractUserKey(largest);
    for (const Run& run : v.levels()[output_level].runs) {
      for (const FileMetaPtr& f : run.files) {
        Slice f_lo = ExtractUserKey(Slice(f->smallest));
        Slice f_hi = ExtractUserKey(Slice(f->largest));
        if (ucmp->Compare(f_hi, user_lo) < 0 ||
            ucmp->Compare(f_lo, user_hi) > 0) {
          continue;
        }
        result.push_back(f);
      }
    }
    return result;
  }

  /// Key range (internal keys) spanned by `files`.
  void KeyRange(const std::vector<FileMetaPtr>& files, Slice* smallest,
                Slice* largest) const {
    assert(!files.empty());
    *smallest = Slice(files[0]->smallest);
    *largest = Slice(files[0]->largest);
    for (const FileMetaPtr& f : files) {
      if (icmp_->Compare(Slice(f->smallest), *smallest) < 0) {
        *smallest = Slice(f->smallest);
      }
      if (icmp_->Compare(Slice(f->largest), *largest) > 0) {
        *largest = Slice(f->largest);
      }
    }
  }

  /// run_seq of the run the outputs should join in `output_level`:
  /// the level's existing single run under leveling, else 0 (new run).
  static uint64_t ExistingRunSeq(const Version& v, int output_level) {
    if (output_level < v.num_levels() &&
        !v.levels()[output_level].runs.empty()) {
      return v.levels()[output_level].runs[0].run_seq;
    }
    return 0;
  }

  const Options options_;
  const InternalKeyComparator* const icmp_;
  BlockCache* const block_cache_;
};

// ---------------------------------------------------------------- Leveled --

/// Classic leveling: one run per level; an over-capacity level pushes data
/// into the next. With a partial file picker only one file (plus its
/// overlaps) moves per compaction — the tail-latency-friendly granularity
/// of RocksDB leveled compaction (tutorial I-2).
class LeveledPolicy : public PolicyBase {
 public:
  using PolicyBase::PolicyBase;

  const char* Name() const override { return "leveled"; }

  std::optional<CompactionPick> Pick(const Version& v) override {
    // Read-triggered compaction (trigger primitive of [76]): a file that
    // keeps wasting point probes gets merged down regardless of sizes.
    if (options_.seek_compaction_threshold > 0) {
      auto pick = PickSeekTriggered(v);
      if (pick.has_value()) {
        return pick;
      }
    }

    // Level 0 first: merge all flush runs into level 1 when the trigger is
    // reached.
    if (static_cast<int>(v.levels()[0].runs.size()) >=
        options_.level0_compaction_trigger) {
      CompactionPick pick;
      pick.level = 0;
      pick.output_level = 1;
      pick.inputs = AllFiles(v, 0);
      Slice smallest, largest;
      KeyRange(pick.inputs, &smallest, &largest);
      pick.output_overlaps = Overlaps(v, 1, smallest, largest);
      pick.output_run_seq = ExistingRunSeq(v, 1);
      return pick;
    }

    for (int level = 1; level < v.num_levels() - 1; level++) {
      if (v.levels()[level].TotalBytes() <= LevelCapacity(level)) {
        continue;
      }
      CompactionPick pick;
      pick.level = level;
      pick.output_level = level + 1;
      pick.inputs = PickFiles(v, level);
      if (pick.inputs.empty()) {
        continue;
      }
      Slice smallest, largest;
      KeyRange(pick.inputs, &smallest, &largest);
      pick.output_overlaps = Overlaps(v, level + 1, smallest, largest);
      pick.output_run_seq = ExistingRunSeq(v, level + 1);
      return pick;
    }
    return std::nullopt;
  }

 private:
  std::optional<CompactionPick> PickSeekTriggered(const Version& v) {
    for (int level = 0; level < v.num_levels() - 1; level++) {
      FileMetaPtr hottest;
      for (const Run& run : v.levels()[level].runs) {
        for (const FileMetaPtr& f : run.files) {
          if (f->wasted_probes.load(std::memory_order_relaxed) >=
                  options_.seek_compaction_threshold &&
              (hottest == nullptr ||
               f->wasted_probes > hottest->wasted_probes)) {
            hottest = f;
          }
        }
      }
      if (hottest == nullptr) {
        continue;
      }
      CompactionPick pick;
      pick.level = level;
      pick.output_level = level + 1;
      if (level == 0) {
        // Level-0 runs overlap; a partial pick would break run ordering,
        // so a level-0 seek trigger merges the whole level like the
        // count trigger does.
        pick.inputs = AllFiles(v, 0);
      } else {
        pick.inputs = {hottest};
      }
      Slice smallest, largest;
      KeyRange(pick.inputs, &smallest, &largest);
      pick.output_overlaps = Overlaps(v, level + 1, smallest, largest);
      pick.output_run_seq = ExistingRunSeq(v, level + 1);
      return pick;
    }
    return std::nullopt;
  }

  std::vector<FileMetaPtr> PickFiles(const Version& v, int level) {
    std::vector<FileMetaPtr> files = AllFiles(v, level);
    if (files.empty()) {
      return files;
    }
    switch (options_.file_picker) {
      case CompactionFilePicker::kWholeLevel:
        return files;
      case CompactionFilePicker::kRoundRobin:
        return {PickRoundRobin(files, level)};
      case CompactionFilePicker::kMinOverlap:
        return {PickMinOverlap(v, files, level)};
      case CompactionFilePicker::kCold:
        return {PickCold(files)};
      case CompactionFilePicker::kOldest:
        return {PickOldest(files)};
    }
    return files;
  }

  FileMetaPtr PickRoundRobin(const std::vector<FileMetaPtr>& files,
                             int level) {
    // Resume after the last compacted key; wrap at the end of the level.
    if (static_cast<int>(cursors_.size()) <= level) {
      cursors_.resize(level + 1);
    }
    const std::string& cursor = cursors_[level];
    FileMetaPtr chosen;
    for (const FileMetaPtr& f : files) {
      if (cursor.empty() || icmp_->Compare(Slice(f->smallest),
                                           Slice(cursor)) > 0) {
        if (chosen == nullptr ||
            icmp_->Compare(Slice(f->smallest), Slice(chosen->smallest)) < 0) {
          chosen = f;
        }
      }
    }
    if (chosen == nullptr) {
      chosen = files[0];  // wrap around
    }
    cursors_[level] = chosen->smallest;
    return chosen;
  }

  FileMetaPtr PickMinOverlap(const Version& v,
                             const std::vector<FileMetaPtr>& files,
                             int level) const {
    FileMetaPtr best;
    uint64_t best_bytes = std::numeric_limits<uint64_t>::max();
    for (const FileMetaPtr& f : files) {
      uint64_t bytes = 0;
      for (const FileMetaPtr& o :
           Overlaps(v, level + 1, Slice(f->smallest), Slice(f->largest))) {
        bytes += o->file_size;
      }
      if (bytes < best_bytes) {
        best_bytes = bytes;
        best = f;
      }
    }
    return best;
  }

  FileMetaPtr PickCold(const std::vector<FileMetaPtr>& files) const {
    FileMetaPtr best;
    uint64_t best_heat = std::numeric_limits<uint64_t>::max();
    for (const FileMetaPtr& f : files) {
      const uint64_t heat =
          block_cache_ != nullptr ? block_cache_->FileAccesses(f->number) : 0;
      if (heat < best_heat) {
        best_heat = heat;
        best = f;
      }
    }
    return best;
  }

  static FileMetaPtr PickOldest(const std::vector<FileMetaPtr>& files) {
    FileMetaPtr best = files[0];
    for (const FileMetaPtr& f : files) {
      if (f->number < best->number) {
        best = f;
      }
    }
    return best;
  }

  std::vector<std::string> cursors_;  // per-level round-robin position
};

// ----------------------------------------------------------------- Tiered --

/// Tiering: levels accumulate up to T runs; a full level merges all its
/// runs into ONE new run of the next level (no read-merge with the next
/// level's data) — minimal write amplification, more runs per lookup.
class TieredPolicy : public PolicyBase {
 public:
  using PolicyBase::PolicyBase;

  const char* Name() const override { return "tiered"; }

  std::optional<CompactionPick> Pick(const Version& v) override {
    for (int level = 0; level < v.num_levels() - 1; level++) {
      const int trigger = level == 0 ? options_.level0_compaction_trigger
                                     : options_.size_ratio;
      if (static_cast<int>(v.levels()[level].runs.size()) < trigger) {
        continue;
      }
      CompactionPick pick;
      pick.level = level;
      pick.output_level = level + 1;
      pick.inputs = AllFiles(v, level);
      pick.output_run_seq = 0;  // always a fresh run
      return pick;
    }
    return std::nullopt;
  }
};

// ----------------------------------------------------- Lazy leveling ------

/// Dostoevsky's lazy leveling [Dayan & Idreos '18]: tiering at every level
/// except the largest populated one, which stays a single run. Point reads
/// and long scans cost ~like leveling (the largest level dominates) while
/// most merging — which happens at the largest level — is avoided
/// elsewhere (tutorial I-2, II-iv).
class LazyLevelingPolicy : public PolicyBase {
 public:
  using PolicyBase::PolicyBase;

  const char* Name() const override { return "lazy-leveling"; }

  std::optional<CompactionPick> Pick(const Version& v) override {
    const int last = std::max(v.MaxPopulatedLevel(), 1);

    for (int level = 0; level < v.num_levels() - 1; level++) {
      const int trigger = level == 0 ? options_.level0_compaction_trigger
                                     : options_.size_ratio;
      const bool is_last = (level == last);

      if (is_last) {
        // The largest level is leveled: overflow by bytes pushes it down.
        if (level + 1 < v.num_levels() &&
            v.levels()[level].TotalBytes() > LevelCapacity(level)) {
          CompactionPick pick;
          pick.level = level;
          pick.output_level = level + 1;
          pick.inputs = AllFiles(v, level);
          pick.output_run_seq = ExistingRunSeq(v, level + 1);
          if (pick.output_run_seq != 0) {
            Slice smallest, largest;
            KeyRange(pick.inputs, &smallest, &largest);
            pick.output_overlaps =
                Overlaps(v, level + 1, smallest, largest);
          }
          return pick;
        }
        continue;
      }

      if (static_cast<int>(v.levels()[level].runs.size()) < trigger) {
        continue;
      }
      CompactionPick pick;
      pick.level = level;
      pick.output_level = level + 1;
      pick.inputs = AllFiles(v, level);
      if (level + 1 == last) {
        // Merging into the single run of the largest level.
        Slice smallest, largest;
        KeyRange(pick.inputs, &smallest, &largest);
        pick.output_overlaps = Overlaps(v, level + 1, smallest, largest);
        pick.output_run_seq = ExistingRunSeq(v, level + 1);
      } else {
        pick.output_run_seq = 0;  // tiered push
      }
      return pick;
    }
    return std::nullopt;
  }
};

// ------------------------------------------------------------------ FIFO --

/// FIFO: no merging at all. Flush runs pile up in level 0 and the oldest
/// run is dropped once the total size exceeds the budget — the
/// cache/TTL-style layout RocksDB ships for time-series data.
class FifoPolicy : public PolicyBase {
 public:
  using PolicyBase::PolicyBase;

  const char* Name() const override { return "fifo"; }

  std::optional<CompactionPick> Pick(const Version& v) override {
    if (v.levels()[0].TotalBytes() <= options_.fifo_size_budget ||
        v.levels()[0].runs.empty()) {
      return std::nullopt;
    }
    // Oldest run = smallest run_seq = last in the newest-first ordering.
    const Run& oldest = v.levels()[0].runs.back();
    CompactionPick pick;
    pick.level = 0;
    pick.output_level = 0;
    pick.inputs = oldest.files;
    pick.drop_only = true;
    return pick;
  }
};

}  // namespace

std::unique_ptr<CompactionPolicy> CreateCompactionPolicy(
    const Options& options, const InternalKeyComparator* icmp,
    BlockCache* block_cache) {
  switch (options.merge_policy) {
    case MergePolicy::kLeveling:
      return std::make_unique<LeveledPolicy>(options, icmp, block_cache);
    case MergePolicy::kTiering:
      return std::make_unique<TieredPolicy>(options, icmp, block_cache);
    case MergePolicy::kLazyLeveling:
      return std::make_unique<LazyLevelingPolicy>(options, icmp, block_cache);
    case MergePolicy::kFifo:
      return std::make_unique<FifoPolicy>(options, icmp, block_cache);
  }
  return std::make_unique<LeveledPolicy>(options, icmp, block_cache);
}

}  // namespace lsmlab
