#ifndef LSMLAB_CORE_FILENAME_H_
#define LSMLAB_CORE_FILENAME_H_

#include <cstdint>
#include <string>

namespace lsmlab {

enum class FileType {
  kTableFile,
  kWalFile,
  kManifestFile,
  kCurrentFile,
  kUnknown,
};

std::string TableFileName(const std::string& dbname, uint64_t number);
std::string WalFileName(const std::string& dbname, uint64_t number);
std::string ManifestFileName(const std::string& dbname, uint64_t number);
std::string CurrentFileName(const std::string& dbname);

/// Parses a directory entry name; returns false for foreign files.
bool ParseFileName(const std::string& filename, uint64_t* number,
                   FileType* type);

}  // namespace lsmlab

#endif  // LSMLAB_CORE_FILENAME_H_
