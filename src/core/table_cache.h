#ifndef LSMLAB_CORE_TABLE_CACHE_H_
#define LSMLAB_CORE_TABLE_CACHE_H_

#include <functional>
#include <memory>
#include <source_location>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/options.h"
#include "core/version.h"
#include "format/sstable_reader.h"
#include "util/iterator.h"
#include "util/mutex.h"
#include "util/pin_tracker.h"

namespace lsmlab {

/// Keeps SSTable readers open and shared across the read path. Tables stay
/// open until their file is evicted (when the FileMetaData dies), matching
/// the "index/filter blocks pinned in memory" regime of tutorial §II-1.
///
/// Also owns the per-level TableOptions — in particular the per-level
/// FilterPolicy instances that realize uniform vs. Monkey filter-memory
/// allocation (tutorial §II-5).
class TableCache {
 public:
  TableCache(std::string dbname, const Options* options,
             const InternalKeyComparator* icmp);
  ~TableCache();

  TableCache(const TableCache&) = delete;
  TableCache& operator=(const TableCache&) = delete;

  /// Installs per-level filter bits/key (index = level). Must be called
  /// before any table is opened; also used by flush/compaction builders.
  void ConfigureFilterBits(const std::vector<double>& bits_per_level);

  const TableOptions& TableOptionsForLevel(int level) const;

  /// Opens (or returns the cached) reader for `meta`. The out-param pins
  /// the reader; in debug builds the pin is tracked with the caller's
  /// source location, and destroying the TableCache while reader pins are
  /// still outstanding aborts with a per-site leak report.
  Status FindTable(const FileMetaData& meta, std::shared_ptr<SSTable>* table,
                   std::source_location loc = std::source_location::current());

  /// Iterator over the whole table; pins the file and reader.
  Iterator* NewIterator(const FileMetaPtr& file);

  /// Point lookup within one table. Returns, via out-params, whether the
  /// filter rejected the table (definitive skip, no I/O) and forwards
  /// qualifying entries to `handler`.
  Status Get(const FileMetaData& meta, const Slice& internal_target,
             const Slice& user_key, uint64_t hash, bool use_filter,
             bool* filter_skipped,
             const std::function<void(const Slice&, const Slice&)>& handler);

  /// Batched point lookup within one table: resolves the reader handle
  /// once (pinned across the whole probe), probes the monolithic filter
  /// once per key, and forwards the survivors to SSTable::MultiGet for
  /// coalesced block I/O. A table that cannot be opened fails every key in
  /// the batch — they all needed it — while filter rejections and
  /// per-block corruption are reported per key via the contexts.
  Status GetBatch(const FileMetaData& meta,
                  std::span<BatchGetContext* const> keys, bool use_filter);

  /// Probes only the table's range filter.
  bool RangeMayMatch(const FileMetaData& meta, const Slice& lo_user,
                     const Slice& hi_user);

  void Evict(uint64_t file_number);

  /// Aggregated learned/hash-index counters across open tables.
  SSTable::Counters AggregateCounters() const;

  /// Total in-memory index+filter bytes across open tables.
  size_t IndexMemoryUsage() const;

 private:
  /// Debug builds: wraps the cached reader in a shared_ptr whose deleter
  /// unregisters the pin when the last copy handed to this caller dies.
  /// Release builds return `table` unchanged.
  std::shared_ptr<SSTable> TrackPin(const std::shared_ptr<SSTable>& table,
                                    const std::source_location& loc);

  const std::string dbname_;
  const Options* const options_;
  const InternalKeyComparator* const icmp_;

  std::vector<TableOptions> per_level_options_;
  std::vector<std::unique_ptr<const FilterPolicy>> owned_filters_;

  mutable Mutex mu_{LockRank::kTableCacheMu};
  std::unordered_map<uint64_t, std::shared_ptr<SSTable>> tables_
      GUARDED_BY(mu_);
  PinTracker pin_tracker_{"TableCache reader pin"};
};

}  // namespace lsmlab

#endif  // LSMLAB_CORE_TABLE_CACHE_H_
