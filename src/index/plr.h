#ifndef LSMLAB_INDEX_PLR_H_
#define LSMLAB_INDEX_PLR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lsmlab {

/// Greedy piecewise-linear regression with a hard error bound, the learned
/// index fitted over sorted numeric keys (tutorial §II-4; the algorithm is
/// the greedy corridor construction used by Bourbon [17] and equivalent in
/// guarantee to one level of the PGM-index [31]).
///
/// Build feeds sorted (key, position) pairs in one pass; each segment is
/// grown while a line through its origin can stay within ±epsilon of every
/// fed position. Lookup returns a candidate position range of width
/// <= 2*epsilon+1 which the caller resolves with a local search.
class PiecewiseLinearModel {
 public:
  struct Segment {
    uint64_t start_key;
    double slope;
    double intercept;  // predicted position at start_key
  };

  explicit PiecewiseLinearModel(uint32_t epsilon) : epsilon_(epsilon) {}

  /// Feeds the next (key, position) pair. REQUIRES: keys non-decreasing,
  /// positions strictly increasing by 1 from 0.
  void Add(uint64_t key);

  /// Finalizes the model. No Add() afterwards.
  void Finish();

  /// Returns [lo, hi] (inclusive) candidate positions for `key`.
  /// The true position of `key` (if it was fed) is guaranteed inside.
  void Lookup(uint64_t key, size_t* lo, size_t* hi) const;

  size_t num_segments() const { return segments_.size(); }
  size_t num_keys() const { return n_; }
  uint32_t epsilon() const { return epsilon_; }

  /// Heap bytes of the model (what the learned index saves vs. fences).
  size_t MemoryUsage() const { return segments_.capacity() * sizeof(Segment); }

 private:
  void StartSegment(uint64_t key, size_t pos);
  void CloseSegment();

  uint32_t epsilon_;
  size_t n_ = 0;
  std::vector<Segment> segments_;
  bool finished_ = false;

  // State of the segment under construction (slope corridor).
  bool in_segment_ = false;
  uint64_t seg_start_key_ = 0;
  size_t seg_start_pos_ = 0;
  uint64_t last_key_ = 0;
  double slope_lo_ = 0;  // corridor of admissible slopes
  double slope_hi_ = 0;
};

}  // namespace lsmlab

#endif  // LSMLAB_INDEX_PLR_H_
