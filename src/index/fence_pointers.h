#ifndef LSMLAB_INDEX_FENCE_POINTERS_H_
#define LSMLAB_INDEX_FENCE_POINTERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/comparator.h"
#include "util/slice.h"

namespace lsmlab {

/// In-memory fence-pointer array: the last key of each page/block of a
/// sorted run (a Zonemap [Moerkotte '98]; tutorial §II-1). One binary
/// search locates the single block that can contain a key, so a run costs
/// one storage access per lookup.
///
/// This standalone form backs the learned-index comparison (E7); inside
/// SSTables the same structure is the index block.
class FencePointers {
 public:
  explicit FencePointers(const Comparator* comparator = BytewiseComparator())
      : comparator_(comparator) {}

  /// Appends the fence (last key) of the next block.
  /// REQUIRES: fences strictly increasing.
  void Add(const Slice& last_key_of_block);

  /// Returns the index of the block that may contain `key`, or npos if
  /// `key` is greater than every fence (not in the run).
  size_t FindBlock(const Slice& key) const;

  static constexpr size_t npos = ~size_t{0};

  size_t num_blocks() const { return fences_.size(); }
  size_t MemoryUsage() const;

 private:
  const Comparator* comparator_;
  std::vector<std::string> fences_;
};

}  // namespace lsmlab

#endif  // LSMLAB_INDEX_FENCE_POINTERS_H_
