#ifndef LSMLAB_INDEX_REMIX_H_
#define LSMLAB_INDEX_REMIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace lsmlab {

/// REMIX-style globally-sorted view over multiple sorted runs
/// [Zhong et al., FAST'21] (tutorial §II-3).
///
/// A scan over an LSM normally runs a K-way merge: every Next() pays
/// O(log K) (or O(K)) key comparisons to pick the smallest head. REMIX
/// materializes the *merge order itself*: one run-id per entry in global
/// sorted order, plus anchors every `kSegmentSize` entries holding the
/// per-run cursor offsets at that point. Seek binary-searches the anchors
/// and walks at most one segment; iteration after that is comparison-free
/// pointer chasing. The data stays in the runs — REMIX adds ~1 byte per
/// entry plus anchors, and is rebuilt when the set of runs changes
/// (i.e., at compaction, exactly like the paper).
class RemixView {
 public:
  /// Builds the view over `runs`; each run must be sorted ascending with
  /// bytewise order and the runs must outlive the view. At most 255 runs.
  explicit RemixView(std::vector<const std::vector<std::string>*> runs);

  RemixView(const RemixView&) = delete;
  RemixView& operator=(const RemixView&) = delete;

  size_t num_entries() const { return run_ids_.size(); }
  size_t num_runs() const { return runs_.size(); }

  /// Bytes of index metadata (run ids + anchors), excluding the runs.
  size_t MemoryUsage() const;

  /// Comparison-free cursor over the global sorted order.
  class Cursor {
   public:
    explicit Cursor(const RemixView* view) : view_(view) {}

    bool Valid() const { return global_pos_ < view_->run_ids_.size(); }

    /// Positions at the first key >= target (binary search over anchors,
    /// then at most one segment walk of key comparisons).
    void Seek(const Slice& target);
    void SeekToFirst();

    /// Advances in global order without any key comparison.
    void Next();

    const std::string& key() const;
    uint32_t run() const { return view_->run_ids_[global_pos_]; }

   private:
    friend class RemixView;
    void LoadAnchor(size_t anchor_index);

    const RemixView* view_;
    size_t global_pos_ = 0;
    std::vector<uint32_t> cursors_;  // next position per run
  };

  Cursor NewCursor() const { return Cursor(this); }

 private:
  friend class Cursor;
  static constexpr size_t kSegmentSize = 64;

  struct Anchor {
    std::string key;                // first key of the segment
    std::vector<uint32_t> cursors;  // per-run positions at segment start
  };

  std::vector<const std::vector<std::string>*> runs_;
  std::vector<uint8_t> run_ids_;  // run of the i-th smallest key
  std::vector<Anchor> anchors_;   // one per kSegmentSize entries
};

}  // namespace lsmlab

#endif  // LSMLAB_INDEX_REMIX_H_
