#include "index/remix.h"

#include <cassert>

namespace lsmlab {

RemixView::RemixView(std::vector<const std::vector<std::string>*> runs)
    : runs_(std::move(runs)) {
  assert(runs_.size() <= 255);
  size_t total = 0;
  for (const auto* run : runs_) {
    total += run->size();
  }
  run_ids_.reserve(total);
  anchors_.reserve(total / kSegmentSize + 1);

  // One-time K-way merge to materialize the global order (the cost REMIX
  // pays at build/compaction time so queries never pay it again).
  std::vector<uint32_t> cursors(runs_.size(), 0);
  while (run_ids_.size() < total) {
    if (run_ids_.size() % kSegmentSize == 0) {
      Anchor anchor;
      anchor.cursors = cursors;
      // The anchor key is filled below once the minimum is known.
      anchors_.push_back(std::move(anchor));
    }
    int best = -1;
    for (size_t r = 0; r < runs_.size(); r++) {
      if (cursors[r] >= runs_[r]->size()) {
        continue;
      }
      if (best < 0 ||
          Slice((*runs_[r])[cursors[r]])
                  .compare(Slice((*runs_[best])[cursors[best]])) < 0) {
        best = static_cast<int>(r);
      }
    }
    assert(best >= 0);
    if (run_ids_.size() % kSegmentSize == 0) {
      anchors_.back().key = (*runs_[best])[cursors[best]];
    }
    run_ids_.push_back(static_cast<uint8_t>(best));
    cursors[best]++;
  }
}

size_t RemixView::MemoryUsage() const {
  size_t total = run_ids_.capacity();
  for (const Anchor& a : anchors_) {
    total += a.key.capacity() + a.cursors.capacity() * sizeof(uint32_t);
  }
  return total;
}

void RemixView::Cursor::LoadAnchor(size_t anchor_index) {
  global_pos_ = anchor_index * kSegmentSize;
  cursors_ = view_->anchors_[anchor_index].cursors;
}

void RemixView::Cursor::SeekToFirst() {
  if (view_->anchors_.empty()) {
    global_pos_ = view_->run_ids_.size();
    return;
  }
  LoadAnchor(0);
}

void RemixView::Cursor::Seek(const Slice& target) {
  if (view_->anchors_.empty()) {
    global_pos_ = view_->run_ids_.size();
    return;
  }
  // Last anchor with key <= target.
  size_t lo = 0;
  size_t hi = view_->anchors_.size();
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (Slice(view_->anchors_[mid].key).compare(target) <= 0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  LoadAnchor(lo);
  // Walk at most one segment (plus spill into the next when the target
  // falls between the last key of segment lo and the next anchor).
  while (Valid() && Slice(key()).compare(target) < 0) {
    Next();
  }
}

void RemixView::Cursor::Next() {
  cursors_[view_->run_ids_[global_pos_]]++;
  global_pos_++;
}

const std::string& RemixView::Cursor::key() const {
  const uint32_t run = view_->run_ids_[global_pos_];
  return (*view_->runs_[run])[cursors_[run]];
}

}  // namespace lsmlab
