#include "index/radix_spline.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace lsmlab {

void RadixSpline::AddKnot(const Point& p) {
  spline_.push_back(p);
}

void RadixSpline::Add(uint64_t key) {
  assert(!finished_);
  assert(n_ == 0 || key > last_key_);
  const size_t pos = n_;
  n_++;
  last_key_ = key;
  max_key_ = key;

  if (pos == 0) {
    min_key_ = key;
    AddKnot(Point{key, 0});
    last_knot_ = Point{key, 0};
    prev_point_ = Point{key, 0};
    slope_lo_ = 0;
    slope_hi_ = std::numeric_limits<double>::infinity();
    return;
  }

  const double dx = static_cast<double>(key - last_knot_.key);
  const double dy = static_cast<double>(pos - last_knot_.pos);
  const double chord = dy / dx;
  const double lo = (dy - epsilon_) / dx;
  const double hi = (dy + epsilon_) / dx;
  const double new_lo = std::max(slope_lo_, lo);
  const double new_hi = std::min(slope_hi_, hi);
  // The chord to the current point must itself lie in the corridor:
  // the final spline segment interpolates knot->knot, so every
  // intermediate point is within epsilon only if each prefix chord was
  // admissible.
  if (new_lo <= new_hi && chord >= new_lo && chord <= new_hi) {
    slope_lo_ = new_lo;
    slope_hi_ = new_hi;
  } else {
    // Corridor collapsed: promote the previous point to a knot and restart
    // the corridor from it through the current point.
    AddKnot(prev_point_);
    last_knot_ = prev_point_;
    const double dx2 = static_cast<double>(key - last_knot_.key);
    const double dy2 = static_cast<double>(pos - last_knot_.pos);
    slope_lo_ = (dy2 - epsilon_) / dx2;
    slope_hi_ = (dy2 + epsilon_) / dx2;
  }
  prev_point_ = Point{key, pos};
}

void RadixSpline::Finish() {
  assert(!finished_);
  if (n_ > 0 && (spline_.empty() || spline_.back().key != prev_point_.key)) {
    AddKnot(prev_point_);  // terminal knot
  }
  spline_.shrink_to_fit();
  BuildRadixTable();
  finished_ = true;
}

void RadixSpline::BuildRadixTable() {
  if (radix_bits_ == 0 || spline_.empty()) {
    radix_table_.clear();
    shift_ = 64;
    return;
  }
  const uint64_t range = max_key_ - min_key_;
  // Choose shift so that range >> shift_ fits in 2^radix_bits slots.
  shift_ = 0;
  while (shift_ < 64 && (range >> shift_) >= (uint64_t{1} << radix_bits_)) {
    shift_++;
  }
  const size_t num_slots = static_cast<size_t>((range >> shift_)) + 2;
  radix_table_.assign(num_slots + 1, 0);
  // radix_table_[s] = index of first spline point whose slot >= s.
  size_t current = 0;
  for (size_t s = 0; s < num_slots + 1; s++) {
    while (current < spline_.size() && RadixSlot(spline_[current].key) < s) {
      current++;
    }
    radix_table_[s] = static_cast<uint32_t>(current);
  }
}

void RadixSpline::Lookup(uint64_t key, size_t* lo, size_t* hi) const {
  assert(finished_);
  if (n_ == 0) {
    *lo = 0;
    *hi = 0;
    return;
  }
  if (key <= min_key_) {
    *lo = 0;
    *hi = std::min<size_t>(epsilon_, n_ - 1);
    return;
  }
  if (key >= max_key_) {
    *lo = n_ >= 1 + epsilon_ ? n_ - 1 - epsilon_ : 0;
    *hi = n_ - 1;
    return;
  }

  // Narrow the knot search with the radix table, then binary search for the
  // spline segment [knot_i.key, knot_{i+1}.key] containing `key`.
  size_t begin = 0;
  size_t end = spline_.size();
  if (!radix_table_.empty()) {
    const size_t slot = RadixSlot(key);
    if (slot + 1 < radix_table_.size()) {
      begin = radix_table_[slot] > 0 ? radix_table_[slot] - 1 : 0;
      end = std::min<size_t>(radix_table_[slot + 1] + 1, spline_.size());
    }
  }
  auto it = std::upper_bound(
      spline_.begin() + begin, spline_.begin() + end, key,
      [](uint64_t k, const Point& p) { return k < p.key; });
  // it points at the first knot with key > `key`; segment starts before it.
  assert(it != spline_.begin());
  const Point& right = (it == spline_.end()) ? spline_.back() : *it;
  const Point& left = *(it - 1);

  double predicted;
  if (right.key == left.key) {
    predicted = static_cast<double>(left.pos);
  } else {
    const double frac = static_cast<double>(key - left.key) /
                        static_cast<double>(right.key - left.key);
    predicted = static_cast<double>(left.pos) +
                frac * static_cast<double>(right.pos - left.pos);
  }
  const double lo_d = predicted - epsilon_;
  const double hi_d = predicted + epsilon_ + 1;
  *lo = lo_d <= 0 ? 0 : std::min<size_t>(static_cast<size_t>(lo_d), n_ - 1);
  *hi = hi_d <= 0 ? 0 : std::min<size_t>(static_cast<size_t>(hi_d), n_ - 1);
}

}  // namespace lsmlab
