#include "index/plr.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace lsmlab {

void PiecewiseLinearModel::StartSegment(uint64_t key, size_t pos) {
  in_segment_ = true;
  seg_start_key_ = key;
  seg_start_pos_ = pos;
  slope_lo_ = 0;
  slope_hi_ = std::numeric_limits<double>::infinity();
}

void PiecewiseLinearModel::CloseSegment() {
  assert(in_segment_);
  double slope;
  if (std::isinf(slope_hi_)) {
    slope = slope_lo_;  // single-point segment; any slope works
  } else {
    slope = (slope_lo_ + slope_hi_) / 2;
  }
  segments_.push_back(Segment{seg_start_key_, slope,
                              static_cast<double>(seg_start_pos_)});
  in_segment_ = false;
}

void PiecewiseLinearModel::Add(uint64_t key) {
  assert(!finished_);
  assert(n_ == 0 || key >= last_key_);
  const size_t pos = n_;
  n_++;

  if (!in_segment_) {
    StartSegment(key, pos);
    last_key_ = key;
    return;
  }
  if (key == seg_start_key_) {
    // Duplicate of the segment origin; position error is bounded by the
    // run length, so force a corridor that still covers it if possible.
    last_key_ = key;
    // A vertical stack of duplicates cannot be modeled once it exceeds
    // epsilon positions; close and restart.
    if (pos - seg_start_pos_ > epsilon_) {
      CloseSegment();
      StartSegment(key, pos);
    }
    return;
  }

  const double dx = static_cast<double>(key - seg_start_key_);
  const double dy = static_cast<double>(pos - seg_start_pos_);
  // The line must pass within +-epsilon of (key, pos).
  const double lo = (dy - epsilon_) / dx;
  const double hi = (dy + epsilon_) / dx;
  const double new_lo = std::max(slope_lo_, lo);
  const double new_hi = std::min(slope_hi_, hi);
  if (new_lo <= new_hi) {
    slope_lo_ = new_lo;
    slope_hi_ = new_hi;
  } else {
    CloseSegment();
    StartSegment(key, pos);
  }
  last_key_ = key;
}

void PiecewiseLinearModel::Finish() {
  assert(!finished_);
  if (in_segment_) {
    CloseSegment();
  }
  segments_.shrink_to_fit();
  finished_ = true;
}

void PiecewiseLinearModel::Lookup(uint64_t key, size_t* lo, size_t* hi) const {
  assert(finished_);
  if (segments_.empty() || n_ == 0) {
    *lo = 0;
    *hi = 0;
    return;
  }
  // Find the last segment with start_key <= key.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), key,
      [](uint64_t k, const Segment& s) { return k < s.start_key; });
  if (it != segments_.begin()) {
    --it;
  }
  const Segment& s = *it;
  double predicted = s.intercept;
  if (key > s.start_key) {
    predicted += s.slope * static_cast<double>(key - s.start_key);
  }
  const double lo_d = predicted - epsilon_;
  const double hi_d = predicted + epsilon_;
  *lo = lo_d <= 0 ? 0 : std::min<size_t>(static_cast<size_t>(lo_d), n_ - 1);
  *hi = hi_d <= 0 ? 0 : std::min<size_t>(static_cast<size_t>(hi_d) + 1, n_ - 1);
}

}  // namespace lsmlab
