#include "index/fence_pointers.h"

namespace lsmlab {

void FencePointers::Add(const Slice& last_key_of_block) {
  // Fences come from on-disk index blocks, so key order cannot be trusted.
  // Out-of-order fences only make FindBlock route a lookup to the wrong
  // block, which the block-level key comparison then rejects (NotFound) —
  // never memory-unsafe, so no ordering assertion here.
  fences_.push_back(last_key_of_block.ToString());
}

size_t FencePointers::FindBlock(const Slice& key) const {
  // First fence >= key identifies the only block that can contain key.
  size_t lo = 0;
  size_t hi = fences_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (comparator_->Compare(Slice(fences_[mid]), key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < fences_.size() ? lo : npos;
}

size_t FencePointers::MemoryUsage() const {
  size_t total = fences_.capacity() * sizeof(std::string);
  for (const auto& f : fences_) {
    total += f.capacity();
  }
  return total;
}

}  // namespace lsmlab
