#ifndef LSMLAB_INDEX_RADIX_SPLINE_H_
#define LSMLAB_INDEX_RADIX_SPLINE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lsmlab {

/// Single-pass learned index over sorted numeric keys [Kipf et al.,
/// RadixSpline, aiDM'20] (tutorial §II-4): a greedy error-bounded linear
/// spline plus a radix table over the top `radix_bits` of the key that
/// narrows the spline-segment search to O(1) expected.
///
/// Read-only by construction — a perfect match for immutable SSTables: the
/// model is built in the same single pass that writes the run, so training
/// never stalls ingestion (the property the tutorial highlights).
class RadixSpline {
 public:
  RadixSpline(uint32_t epsilon, uint32_t radix_bits)
      : epsilon_(epsilon), radix_bits_(radix_bits) {}

  /// Feeds the next key. REQUIRES: keys strictly increasing.
  void Add(uint64_t key);

  /// Finalizes spline and radix table.
  void Finish();

  /// Returns [lo, hi] (inclusive) candidate positions for `key`; the true
  /// position of any fed key is guaranteed inside.
  void Lookup(uint64_t key, size_t* lo, size_t* hi) const;

  size_t num_spline_points() const { return spline_.size(); }
  size_t num_keys() const { return n_; }
  size_t MemoryUsage() const {
    return spline_.capacity() * sizeof(Point) +
           radix_table_.capacity() * sizeof(uint32_t);
  }

 private:
  struct Point {
    uint64_t key;
    size_t pos;
  };

  size_t RadixSlot(uint64_t key) const {
    if (radix_bits_ == 0 || shift_ >= 64) {
      return 0;
    }
    return static_cast<size_t>((key - min_key_) >> shift_);
  }

  uint32_t epsilon_;
  uint32_t radix_bits_;
  size_t n_ = 0;
  uint64_t min_key_ = 0;
  uint64_t max_key_ = 0;
  uint64_t last_key_ = 0;
  uint32_t shift_ = 0;
  bool finished_ = false;

  std::vector<Point> spline_;
  std::vector<uint32_t> radix_table_;  // slot -> first spline point index

  // Online greedy-spline-corridor state: the corridor of admissible slopes
  // from the last knot through all points seen since.
  Point last_knot_{0, 0};
  Point prev_point_{0, 0};
  double slope_lo_ = 0;
  double slope_hi_ = 0;

  void AddKnot(const Point& p);
  void BuildRadixTable();
};

}  // namespace lsmlab

#endif  // LSMLAB_INDEX_RADIX_SPLINE_H_
