#include "cache/lru_cache.h"

#include <cassert>

#include "util/hash.h"

namespace lsmlab {

struct LruCache::Handle {
  std::string key;
  void* value;
  size_t charge;
  Deleter deleter;
  int refs;         // pins: 1 for the cache itself while resident, +1 per user
  bool in_cache;    // still reachable via the table
  std::list<Handle*>::iterator lru_pos;  // valid iff in_cache
};

struct LruCache::Shard {
  Mutex mu{LockRank::kLruShardMu};
  size_t capacity = 0;  // set once before use, then read-only
  size_t usage GUARDED_BY(mu) = 0;
  // Front = most recently used.
  std::list<Handle*> lru GUARDED_BY(mu);
  std::unordered_map<std::string, Handle*> table GUARDED_BY(mu);
  Stats stats GUARDED_BY(mu);

  // Handles are mutated only under mu (the deleter itself runs under mu,
  // which Release() callers must tolerate).
  void Unref(Handle* h) REQUIRES(mu) {
    assert(h->refs > 0);
    h->refs--;
    if (h->refs == 0) {
      h->deleter(Slice(h->key), h->value);
      delete h;
    }
  }

  // Detach h from the table+LRU (does not drop the cache's reference).
  void DetachLocked(Handle* h) REQUIRES(mu) {
    assert(h->in_cache);
    lru.erase(h->lru_pos);
    table.erase(h->key);
    h->in_cache = false;
    usage -= h->charge;
  }

  void EvictLocked() REQUIRES(mu) {
    while (usage > capacity && !lru.empty()) {
      Handle* victim = nullptr;
      // Evict from the cold end, skipping pinned entries.
      for (auto it = lru.rbegin(); it != lru.rend(); ++it) {
        if ((*it)->refs == 1) {  // only the cache holds it
          victim = *it;
          break;
        }
      }
      if (victim == nullptr) {
        break;  // everything resident is pinned
      }
      DetachLocked(victim);
      stats.evictions++;
      Unref(victim);
    }
  }
};

namespace {

// A shard with zero capacity evicts everything on insert, so a tiny cache
// must not be split into more shards than it has bytes.
int ClampShards(int num_shards, size_t capacity) {
  if (num_shards < 1) {
    num_shards = 1;
  }
  if (capacity > 0 && static_cast<size_t>(num_shards) > capacity) {
    num_shards = static_cast<int>(capacity);
  }
  return num_shards;
}

}  // namespace

LruCache::LruCache(size_t capacity, int num_shards)
    : capacity_(capacity), num_shards_(ClampShards(num_shards, capacity)) {
  shards_ = new Shard[num_shards_];
  // Distribute the budget evenly; the first `capacity % num_shards_` shards
  // absorb the remainder so no byte of the budget is dropped.
  const size_t base = capacity / num_shards_;
  const size_t remainder = capacity % num_shards_;
  for (int i = 0; i < num_shards_; i++) {
    shards_[i].capacity = base + (static_cast<size_t>(i) < remainder ? 1 : 0);
  }
}

LruCache::~LruCache() {
  // Before tearing down the shards, fail loudly (debug builds) if any
  // caller still holds a handle — including handles whose entry was
  // Erase()d while pinned, which are detached from the LRU list and thus
  // invisible to the per-entry assert below.
  pin_tracker_.CheckNoLivePins();
  for (int i = 0; i < num_shards_; i++) {
    Shard& shard = shards_[i];
    // No other thread may touch the cache during destruction; the lock is
    // taken anyway so the annotated Unref/guarded members stay uniform.
    MutexLock lock(&shard.mu);
    for (Handle* h : shard.lru) {
      assert(h->refs == 1);  // callers must release all handles first
      h->in_cache = false;
      shard.Unref(h);
    }
  }
  delete[] shards_;
}

LruCache::Shard* LruCache::GetShard(const Slice& key) {
  return &shards_[Hash64(key, /*seed=*/0x5ca1ab1e) % num_shards_];
}

LruCache::Handle* LruCache::Insert(const Slice& key, void* value,
                                   size_t charge, Deleter deleter,
                                   std::source_location loc) {
  Shard* shard = GetShard(key);
  MutexLock lock(&shard->mu);

  Handle* h = new Handle();
  h->key = key.ToString();
  h->value = value;
  h->charge = charge;
  h->deleter = std::move(deleter);
  h->refs = 2;  // one for the cache, one returned to the caller
  h->in_cache = true;

  auto it = shard->table.find(h->key);
  if (it != shard->table.end()) {
    Handle* old = it->second;
    shard->DetachLocked(old);
    shard->Unref(old);
  }
  shard->lru.push_front(h);
  h->lru_pos = shard->lru.begin();
  shard->table[h->key] = h;
  shard->usage += charge;
  shard->stats.inserts++;
  shard->EvictLocked();
  pin_tracker_.Acquire(h, loc);
  return h;
}

LruCache::Handle* LruCache::Lookup(const Slice& key, std::source_location loc) {
  Shard* shard = GetShard(key);
  MutexLock lock(&shard->mu);
  auto it = shard->table.find(std::string(key.data(), key.size()));
  if (it == shard->table.end()) {
    shard->stats.misses++;
    return nullptr;
  }
  Handle* h = it->second;
  h->refs++;
  shard->lru.erase(h->lru_pos);
  shard->lru.push_front(h);
  h->lru_pos = shard->lru.begin();
  shard->stats.hits++;
  pin_tracker_.Acquire(h, loc);
  return h;
}

void LruCache::Release(Handle* handle) {
  // Unpin in the tracker before Unref: the handle may be freed below.
  pin_tracker_.Release(handle);
  Shard* shard = GetShard(Slice(handle->key));
  MutexLock lock(&shard->mu);
  shard->Unref(handle);
}

void* LruCache::Value(Handle* handle) { return handle->value; }

void LruCache::Erase(const Slice& key) {
  Shard* shard = GetShard(key);
  MutexLock lock(&shard->mu);
  auto it = shard->table.find(std::string(key.data(), key.size()));
  if (it == shard->table.end()) {
    return;
  }
  Handle* h = it->second;
  shard->DetachLocked(h);
  shard->stats.erases++;
  shard->Unref(h);
}

void LruCache::Prune() {
  for (int i = 0; i < num_shards_; i++) {
    Shard& shard = shards_[i];
    MutexLock lock(&shard.mu);
    auto it = shard.lru.begin();
    while (it != shard.lru.end()) {
      Handle* h = *it;
      ++it;
      if (h->refs == 1) {
        shard.DetachLocked(h);
        shard.Unref(h);
      }
    }
  }
}

size_t LruCache::TotalCharge() const {
  size_t total = 0;
  for (int i = 0; i < num_shards_; i++) {
    MutexLock lock(&shards_[i].mu);
    total += shards_[i].usage;
  }
  return total;
}

LruCache::Stats LruCache::GetStats() const {
  Stats total;
  for (int i = 0; i < num_shards_; i++) {
    MutexLock lock(&shards_[i].mu);
    const Stats& s = shards_[i].stats;
    total.hits += s.hits;
    total.misses += s.misses;
    total.inserts += s.inserts;
    total.evictions += s.evictions;
    total.erases += s.erases;
  }
  return total;
}

void LruCache::ResetStats() {
  for (int i = 0; i < num_shards_; i++) {
    MutexLock lock(&shards_[i].mu);
    shards_[i].stats = Stats();
  }
}

}  // namespace lsmlab
