#ifndef LSMLAB_CACHE_BLOCK_CACHE_H_
#define LSMLAB_CACHE_BLOCK_CACHE_H_

#include <cstdint>
#include <memory>
#include <source_location>
#include <unordered_map>

#include "cache/lru_cache.h"
#include "format/block.h"
#include "util/mutex.h"

namespace lsmlab {

/// Typed block cache: maps (file_number, block_offset) -> parsed Block.
///
/// Also keeps per-file access counters so the compaction-aware prefetcher
/// (Leaper-style, tutorial §II-1) can decide whether a compaction destroyed
/// hot blocks and should re-warm the cache with the output file's blocks.
class BlockCache {
 public:
  explicit BlockCache(size_t capacity_bytes)
      : cache_(capacity_bytes, /*num_shards=*/4) {}

  /// RAII pin on a cached block.
  class Ref {
   public:
    Ref() : cache_(nullptr), handle_(nullptr), block_(nullptr) {}
    Ref(LruCache* cache, LruCache::Handle* handle, const Block* block)
        : cache_(cache), handle_(handle), block_(block) {}
    Ref(Ref&& o) noexcept
        : cache_(o.cache_), handle_(o.handle_), block_(o.block_) {
      o.cache_ = nullptr;
      o.handle_ = nullptr;
      o.block_ = nullptr;
    }
    Ref& operator=(Ref&& o) noexcept {
      Reset();
      cache_ = o.cache_;
      handle_ = o.handle_;
      block_ = o.block_;
      o.cache_ = nullptr;
      o.handle_ = nullptr;
      o.block_ = nullptr;
      return *this;
    }
    Ref(const Ref&) = delete;
    Ref& operator=(const Ref&) = delete;
    ~Ref() { Reset(); }

    const Block* block() const { return block_; }
    explicit operator bool() const { return block_ != nullptr; }

    void Reset() {
      if (handle_ != nullptr) {
        cache_->Release(handle_);
        handle_ = nullptr;
        block_ = nullptr;
      }
    }

   private:
    LruCache* cache_;
    LruCache::Handle* handle_;
    const Block* block_;
  };

  /// Returns a pinned ref, or an empty Ref on miss. `access_weight` is the
  /// number of logical accesses this lookup stands for — a coalesced
  /// MultiGet probe serving N keys from one block credits the file's
  /// hotness counter with N, keeping the prefetcher's signal comparable to
  /// N looped Gets.
  Ref Lookup(uint64_t file_number, uint64_t offset,
             uint64_t access_weight = 1,
             std::source_location loc = std::source_location::current());

  /// Inserts `block` (ownership transferred) and returns a pinned ref.
  Ref Insert(uint64_t file_number, uint64_t offset,
             std::unique_ptr<const Block> block,
             std::source_location loc = std::source_location::current());

  LruCache::Stats GetStats() const { return cache_.GetStats(); }
  /// Resets hit/miss counters and the per-file hotness counters.
  void ResetStats();
  size_t TotalCharge() const { return cache_.TotalCharge(); }
  size_t capacity() const { return cache_.capacity(); }

  /// Cache accesses (hits) attributed to `file_number` since the last
  /// ResetStats — the prefetcher's hotness signal.
  uint64_t FileAccesses(uint64_t file_number) const;

 private:
  static std::string MakeKey(uint64_t file_number, uint64_t offset);

  LruCache cache_;
  mutable Mutex access_mu_{LockRank::kBlockCacheAccessMu};
  std::unordered_map<uint64_t, uint64_t> file_accesses_
      GUARDED_BY(access_mu_);
};

}  // namespace lsmlab

#endif  // LSMLAB_CACHE_BLOCK_CACHE_H_
