#include "cache/block_cache.h"

#include "obs/perf_context.h"
#include "util/coding.h"

namespace lsmlab {

std::string BlockCache::MakeKey(uint64_t file_number, uint64_t offset) {
  std::string key;
  key.reserve(16);
  PutFixed64(&key, file_number);
  PutFixed64(&key, offset);
  return key;
}

BlockCache::Ref BlockCache::Lookup(uint64_t file_number, uint64_t offset,
                                   uint64_t access_weight,
                                   std::source_location loc) {
  const std::string key = MakeKey(file_number, offset);
  // Forward the caller's site so debug pin-leak reports name the reader
  // that took the ref, not this wrapper.
  LruCache::Handle* handle = cache_.Lookup(key, loc);
  if (handle == nullptr) {
    GetPerfContext()->block_cache_miss_count++;
    return Ref();
  }
  GetPerfContext()->block_cache_hit_count++;
  {
    MutexLock lock(&access_mu_);
    file_accesses_[file_number] += access_weight;
  }
  return Ref(&cache_, handle,
             static_cast<const Block*>(cache_.Value(handle)));
}

BlockCache::Ref BlockCache::Insert(uint64_t file_number, uint64_t offset,
                                   std::unique_ptr<const Block> block,
                                   std::source_location loc) {
  const std::string key = MakeKey(file_number, offset);
  const Block* raw = block.release();
  LruCache::Handle* handle = cache_.Insert(
      key, const_cast<Block*>(raw), raw->size(),
      [](const Slice&, void* value) {
        delete static_cast<const Block*>(value);
      },
      loc);
  return Ref(&cache_, handle, raw);
}

void BlockCache::ResetStats() {
  cache_.ResetStats();
  MutexLock lock(&access_mu_);
  file_accesses_.clear();
}

uint64_t BlockCache::FileAccesses(uint64_t file_number) const {
  MutexLock lock(&access_mu_);
  auto it = file_accesses_.find(file_number);
  return it == file_accesses_.end() ? 0 : it->second;
}

}  // namespace lsmlab
