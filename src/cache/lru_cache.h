#ifndef LSMLAB_CACHE_LRU_CACHE_H_
#define LSMLAB_CACHE_LRU_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <source_location>
#include <string>
#include <unordered_map>

#include "util/mutex.h"
#include "util/pin_tracker.h"
#include "util/slice.h"

namespace lsmlab {

/// Sharded LRU cache with per-entry byte charges and refcounted handles.
///
/// This is the engine's block cache substrate (tutorial §II-1: "block-level
/// caching"). Entries are pinned while a Handle is outstanding; Release()
/// unpins. Evicted-but-pinned entries are freed when their last handle is
/// released. The deleter runs exactly once per entry.
///
/// Debug builds track every outstanding handle with the acquisition site
/// captured from the caller (util/pin_tracker.h); destroying the cache
/// with unreleased handles aborts with a per-site leak report instead of
/// tripping a bare assert.
class LruCache {
 public:
  struct Handle;
  using Deleter = std::function<void(const Slice& key, void* value)>;

  /// `capacity` is the total byte budget across all shards.
  explicit LruCache(size_t capacity, int num_shards = 4);
  ~LruCache();

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Inserts key->value with the given byte charge, returning a pinned
  /// handle. An existing entry under the same key is displaced.
  Handle* Insert(const Slice& key, void* value, size_t charge,
                 Deleter deleter,
                 std::source_location loc = std::source_location::current());

  /// Returns a pinned handle or nullptr. Counts toward hit/miss stats.
  Handle* Lookup(const Slice& key,
                 std::source_location loc = std::source_location::current());

  void Release(Handle* handle);
  void* Value(Handle* handle);

  /// Drops the entry if present (it stays alive while pinned). Used to
  /// invalidate blocks of deleted files after compaction.
  void Erase(const Slice& key);

  /// Removes all unpinned entries.
  void Prune();

  size_t TotalCharge() const;
  size_t capacity() const { return capacity_; }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    uint64_t erases = 0;
  };
  Stats GetStats() const;
  void ResetStats();

 private:
  struct Shard;
  Shard* GetShard(const Slice& key);

  const size_t capacity_;
  const int num_shards_;
  Shard* shards_;
  PinTracker pin_tracker_{"LruCache handle"};
};

}  // namespace lsmlab

#endif  // LSMLAB_CACHE_LRU_CACHE_H_
