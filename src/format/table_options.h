#ifndef LSMLAB_FORMAT_TABLE_OPTIONS_H_
#define LSMLAB_FORMAT_TABLE_OPTIONS_H_

#include <cstddef>
#include <functional>

#include "util/comparator.h"
#include "util/slice.h"

namespace lsmlab {

class FilterPolicy;
class RangeFilterPolicy;

/// Knobs controlling the physical layout of one SSTable. The engine derives
/// a TableOptions per level (e.g. Monkey assigns a different FilterPolicy
/// to each level).
struct TableOptions {
  /// Order of keys in the table. For DB-internal tables this compares
  /// internal keys; standalone users can keep the default bytewise order.
  const Comparator* comparator = BytewiseComparator();

  /// Target uncompressed size of each data block.
  size_t block_size = 4096;

  /// One restart point (full key) every N entries; entries in between are
  /// prefix-compressed against their predecessor.
  int block_restart_interval = 16;

  /// Point filter stored in the filter meta block; nullptr disables.
  const FilterPolicy* filter_policy = nullptr;

  /// Partition the point filter per data block (RocksDB partitioned
  /// filters, tutorial §II-2 [89]): probes fetch only the one partition a
  /// lookup needs, through the block cache, instead of keeping one
  /// monolithic filter resident per table.
  bool partition_filters = false;

  /// Range filter stored in its own meta block; nullptr disables.
  const RangeFilterPolicy* range_filter_policy = nullptr;

  /// Build a per-data-block hash index for constant-time point lookups
  /// [RocksDB data-block hash index; tutorial §II-4].
  bool use_hash_index = false;

  /// Hash-index load factor: buckets = entries / ratio.
  double hash_index_util_ratio = 0.75;

  /// How point lookups locate the data block holding a key.
  enum class IndexType {
    kBinarySearch,  ///< binary search over the fence-pointer index block
    kLearnedPlr,    ///< piecewise-linear model over numeric fences [17, 31]
    kRadixSpline,   ///< single-pass radix spline over numeric fences [46]
  };

  /// Learned index types require keys whose searchable portion is numeric:
  /// the first 8 bytes, big-endian, must order the keys. Fences are stored
  /// unshortened in learned modes so the model can be trained at open.
  IndexType index_type = IndexType::kBinarySearch;

  /// Error bound for learned fence indexes (candidate window half-width).
  uint32_t learned_index_epsilon = 8;

  /// Maps a stored key to its "searchable" portion — the bytes filters and
  /// the hash index operate on. The DB sets this to strip the internal-key
  /// trailer so filters see user keys; standalone use keeps identity.
  std::function<Slice(const Slice&)> searchable_key = nullptr;

  Slice SearchableKey(const Slice& key) const {
    return searchable_key ? searchable_key(key) : key;
  }
};

}  // namespace lsmlab

#endif  // LSMLAB_FORMAT_TABLE_OPTIONS_H_
