#ifndef LSMLAB_FORMAT_SSTABLE_READER_H_
#define LSMLAB_FORMAT_SSTABLE_READER_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/block_cache.h"
#include "format/block.h"
#include "format/format.h"
#include "format/sstable_builder.h"
#include "format/table_options.h"
#include "index/plr.h"
#include "index/radix_spline.h"
#include "storage/env.h"
#include "util/iterator.h"

namespace lsmlab {

/// One key's state within a batched lookup (DB::MultiGet). The same
/// contexts travel through TableCache::GetBatch and SSTable::MultiGet for
/// every table the batch probes; the per-probe outputs (`filter_pruned`,
/// `status`) are reset by the callee at the start of each table.
struct BatchGetContext {
  // Inputs, set once per batch by the caller.
  Slice target;       ///< internal lookup key (user_key . seq/type tag)
  Slice searchable;   ///< user-key portion, for filters and hash indexes
  uint64_t hash = 0;  ///< Hash64(searchable), shared across all probes
  /// Invoked with the first entry >= target in the candidate block, exactly
  /// like InternalGet's handler. A plain function pointer (not
  /// std::function) so a batch of hundreds of keys allocates nothing per
  /// key.
  void (*handler)(void* arg, const Slice& key, const Slice& value) = nullptr;
  void* arg = nullptr;

  // Per-table-probe outputs, reset by the callee.
  bool filter_pruned = false;  ///< a filter rejected this key: no block I/O
  Status status;               ///< failure confined to this key's block
};

/// Immutable reader over one SSTable file.
///
/// The index block (fence pointers), filter blocks, and properties are
/// loaded into memory at Open — the "lightweight structures pre-fetched to
/// memory" of tutorial §II-1. Data blocks are read on demand, optionally
/// through a shared BlockCache. With a learned index type, a PLR or radix
/// spline over the numeric fences replaces binary search for point lookups.
class SSTable {
 public:
  /// Opens a table. `file_number` keys the block cache (pass 0 with a null
  /// cache for standalone use). On success *table owns the file.
  static Status Open(const TableOptions& options,
                     std::unique_ptr<RandomAccessFile> file,
                     uint64_t file_size, uint64_t file_number,
                     BlockCache* block_cache, std::unique_ptr<SSTable>* table);

  ~SSTable();

  SSTable(const SSTable&) = delete;
  SSTable& operator=(const SSTable&) = delete;

  /// Ordered iterator over all entries.
  Iterator* NewIterator() const;

  /// Probes the point filter with the searchable key. `hash` must be
  /// Hash64(searchable_key); it is reused across runs (shared hashing).
  /// Returns true when the table has no filter or the filter says "maybe".
  bool KeyMayMatch(const Slice& searchable_key, uint64_t hash) const;

  /// Probes the range filter with inclusive bounds over searchable keys.
  /// Returns true when the table has no range filter or it says "maybe".
  bool RangeMayMatch(const Slice& lo, const Slice& hi) const;

  /// Seeks to the first entry >= `target` and, if one exists, invokes
  /// `handler` on it exactly once. `searchable` is the filter/hash-index
  /// portion of target (its user key). Monolithic point filters are probed
  /// by the caller via KeyMayMatch; *partitioned* filters are probed here
  /// (after the block is located) when `use_filter` is set, reporting a
  /// rejection through *filter_skipped.
  Status InternalGet(
      const Slice& target, const Slice& searchable,
      const std::function<void(const Slice& key, const Slice& value)>&
          handler,
      bool use_filter = true, bool* filter_skipped = nullptr) const;

  /// Batched point lookup: resolves every context against this table with
  /// one fence-pointer seek per key but at most ONE block-cache lookup and
  /// ONE file read per distinct data block, no matter how many keys land in
  /// it. Keys a partitioned filter rejects get `filter_pruned` set before
  /// any data-block I/O; a corrupt or unreadable block sets `status` only
  /// on the keys it serves. Monolithic filters are the caller's job
  /// (KeyMayMatch), as with InternalGet.
  void MultiGet(std::span<BatchGetContext* const> keys,
                bool use_filter) const;

  const TableProperties& properties() const { return props_; }
  uint64_t file_number() const { return file_number_; }

  /// Loads up to `budget_bytes` of data blocks (front to back) through the
  /// block cache — the Leaper-style re-warm after compaction (§II-1).
  /// No-op without a block cache. Returns bytes loaded.
  size_t PrefetchBlocks(size_t budget_bytes) const;

  /// Bytes of in-memory metadata (index + filters + learned model).
  size_t IndexMemoryUsage() const;

  /// Per-table read-path counters (monotonic; summed by DB stats).
  struct Counters {
    mutable uint64_t hash_index_hits = 0;     // definitive hash-index seeks
    mutable uint64_t hash_index_absent = 0;   // proven-absent via hash index
    mutable uint64_t learned_index_seeks = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  SSTable(const TableOptions& options, uint64_t file_number,
          BlockCache* block_cache);

  Status ReadMeta(const Footer& footer);

  /// Returns an iterator over the data block named by an index-block value
  /// (encoded BlockHandle), reading through the block cache when present.
  Iterator* BlockReader(const Slice& index_value) const;

  /// Fetches (and pins/owns) the block at `handle`. On success *block
  /// points at a Block kept alive by *ref or *owned. `access_weight` is the
  /// number of keys this fetch serves (see BlockCache::Lookup).
  Status GetBlock(const BlockHandle& handle, BlockCache::Ref* ref,
                  std::shared_ptr<const Block>* owned, const Block** block,
                  uint64_t access_weight = 1) const;

  /// Resolves the subset of a batch that mapped to one data block: one
  /// block fetch, then one in-block seek per key.
  void MultiGetFromBlock(const BlockHandle& handle,
                         std::span<BatchGetContext* const> keys) const;

  /// Locates the data block that may hold `target` via the learned fence
  /// index. Returns false if the learned index is not available.
  bool LearnedFindBlock(const Slice& searchable, size_t* block_idx) const;

  /// Probes the filter partition of data block `ordinal` (true = maybe).
  bool PartitionMayMatch(size_t ordinal, uint64_t hash) const;
  bool has_partitioned_filter() const { return !partition_handles_.empty(); }

  TableOptions options_;
  uint64_t file_number_;
  uint64_t file_size_ = 0;  // bounds every untrusted BlockHandle
  BlockCache* block_cache_;
  std::unique_ptr<RandomAccessFile> file_;
  std::unique_ptr<Block> index_block_;
  std::string filter_data_;
  bool has_filter_ = false;
  std::string range_filter_data_;
  bool has_range_filter_ = false;
  TableProperties props_;
  Counters counters_;

  // Partitioned filters (§II-2 [89]): one filter blob per data block,
  // fetched through the block cache on demand.
  std::vector<BlockHandle> partition_handles_;
  std::unordered_map<uint64_t, size_t> block_offset_to_ordinal_;
  uint64_t partition_hash_seed_ = 0;  // reserved

  // Learned fence index state (index_type != kBinarySearch).
  std::vector<uint64_t> fence_nums_;         // numeric fence per block
  std::vector<std::string> block_handles_;   // encoded handle per block
  std::unique_ptr<PiecewiseLinearModel> plr_;
  std::unique_ptr<RadixSpline> spline_;
};

}  // namespace lsmlab

#endif  // LSMLAB_FORMAT_SSTABLE_READER_H_
