#ifndef LSMLAB_FORMAT_BLOCK_BUILDER_H_
#define LSMLAB_FORMAT_BLOCK_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "format/table_options.h"
#include "util/slice.h"

namespace lsmlab {

/// Serializes a sorted sequence of key/value entries into one block.
///
/// Entry keys are delta-encoded against their predecessor; every
/// `block_restart_interval` entries a full key ("restart point") is stored
/// so readers can binary-search restart points and then scan forward.
/// When `opts->use_hash_index` is set, a byte-per-bucket hash table mapping
/// searchable-key hashes to restart indexes is appended, enabling
/// constant-time point lookups inside the block (tutorial §II-4).
///
/// Block layout:
///   entry*      : varint32 shared | varint32 non_shared | varint32 vlen
///                 | key delta | value
///   restarts    : fixed32 * num_restarts
///   hash index  : uint8 * num_buckets, fixed32 num_buckets   (optional)
///   trailer word: fixed32 (num_restarts | kHashIndexFlag)
class BlockBuilder {
 public:
  explicit BlockBuilder(const TableOptions* opts);

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  /// Appends an entry. REQUIRES: key > all previously added keys.
  void Add(const Slice& key, const Slice& value);

  /// Finishes the block and returns a slice referencing builder-owned
  /// memory valid until Reset().
  Slice Finish();

  void Reset();

  /// Uncompressed size estimate of the block being built.
  size_t CurrentSizeEstimate() const;

  bool empty() const { return counter_ == 0 && buffer_.empty(); }
  size_t num_entries() const { return num_entries_; }

  static constexpr uint32_t kHashIndexFlag = 0x80000000u;
  static constexpr uint8_t kHashBucketEmpty = 0xFF;
  static constexpr uint8_t kHashBucketCollision = 0xFE;
  /// Restart indexes >= this cannot be stored in a byte bucket; the hash
  /// index is dropped for such (pathologically large) blocks.
  static constexpr uint32_t kMaxHashRestartIndex = 0xFD;

 private:
  const TableOptions* opts_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_;          // entries since last restart point
  bool finished_;
  size_t num_entries_;
  std::string last_key_;
  std::string last_searchable_;  // to dedupe hash entries per user key

  // (hash of searchable key, restart index of its first occurrence)
  std::vector<std::pair<uint32_t, uint32_t>> hash_entries_;
};

}  // namespace lsmlab

#endif  // LSMLAB_FORMAT_BLOCK_BUILDER_H_
