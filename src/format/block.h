#ifndef LSMLAB_FORMAT_BLOCK_H_
#define LSMLAB_FORMAT_BLOCK_H_

#include <cstdint>

#include "format/format.h"
#include "util/comparator.h"
#include "util/iterator.h"

namespace lsmlab {

/// Immutable, parsed view of one block (data, index, or meta).
///
/// Owns its bytes (moved in via BlockContents) so cached blocks are safe to
/// use after the producing table is closed.
class Block {
 public:
  explicit Block(BlockContents&& contents);
  ~Block() = default;

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  size_t size() const { return data_.size(); }

  /// Block iterators additionally support jumping straight to a restart
  /// group, which is how the hash-index fast path enters the block.
  class BlockIterator : public Iterator {
   public:
    /// Positions at the first entry of restart group `index`.
    virtual void SeekToRestart(uint32_t index) = 0;
  };

  BlockIterator* NewIterator(const Comparator* comparator) const;

  /// Outcome of probing the optional in-block hash index.
  enum class HashResult {
    kNoIndex,    ///< block has no hash index; use a normal Seek
    kAbsent,     ///< key definitively not in this block
    kCollision,  ///< bucket ambiguous; use a normal Seek
    kFound,      ///< key (if present) lives in restart group *restart_index
  };

  /// Probes the hash index with Hash32(searchable key).
  HashResult HashLookup(uint32_t hash, uint32_t* restart_index) const;

  uint32_t num_restarts() const { return num_restarts_; }
  bool has_hash_index() const { return num_buckets_ > 0; }

 private:
  class Iter;

  const char* data_end() const { return data_.data() + entries_size_; }
  uint32_t RestartPoint(uint32_t index) const;

  /// Latches the block as unusable: empty entry region, no restarts, no
  /// hash index. Every trailer-driven size check funnels through here.
  void MarkMalformed();

  std::string owned_;
  Slice data_;             // full block bytes
  size_t entries_size_;    // bytes of entry region (before restart array)
  uint32_t num_restarts_;
  size_t restarts_offset_;  // offset of restart array
  size_t buckets_offset_;   // offset of hash buckets (if any)
  uint32_t num_buckets_;    // 0 when no hash index
  bool malformed_;
};

}  // namespace lsmlab

#endif  // LSMLAB_FORMAT_BLOCK_H_
