#ifndef LSMLAB_FORMAT_TWO_LEVEL_ITERATOR_H_
#define LSMLAB_FORMAT_TWO_LEVEL_ITERATOR_H_

#include <functional>

#include "util/iterator.h"

namespace lsmlab {

/// Composes an index-level iterator with per-entry data iterators.
///
/// The index iterator yields opaque values (e.g. encoded BlockHandles); the
/// factory turns each value into an iterator over the corresponding data
/// (e.g. a data block, or a whole table for leveled runs). Takes ownership
/// of `index_iter`.
Iterator* NewTwoLevelIterator(
    Iterator* index_iter,
    std::function<Iterator*(const Slice& index_value)> data_factory);

}  // namespace lsmlab

#endif  // LSMLAB_FORMAT_TWO_LEVEL_ITERATOR_H_
