#include "format/format.h"

#include "obs/perf_context.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace lsmlab {

void BlockHandle::EncodeTo(std::string* dst) const {
  PutVarint64(dst, offset_);
  PutVarint64(dst, size_);
}

Status BlockHandle::DecodeFrom(Slice* input) {
  if (GetVarint64(input, &offset_) && GetVarint64(input, &size_)) {
    return Status::OK();
  }
  return Status::Corruption("bad block handle");
}

void Footer::EncodeTo(std::string* dst) const {
  const size_t original_size = dst->size();
  metaindex_handle_.EncodeTo(dst);
  index_handle_.EncodeTo(dst);
  dst->resize(original_size + 2 * BlockHandle::kMaxEncodedLength);  // pad
  PutFixed32(dst, kFormatVersion);
  PutFixed64(dst, kTableMagicNumber);
}

Status Footer::DecodeFrom(Slice* input) {
  if (input->size() < kEncodedLength) {
    return Status::Corruption("footer too short");
  }
  const char* magic_ptr = input->data() + kEncodedLength - 8;
  // bounds: input->size() >= kEncodedLength was checked above.
  const uint64_t magic = DecodeFixed64(magic_ptr);
  if (magic != kTableMagicNumber) {
    return Status::Corruption("not an sstable (bad magic number)");
  }
  // bounds: magic_ptr - 4 is kEncodedLength - 12 bytes into the footer.
  const uint32_t version = DecodeFixed32(magic_ptr - 4);
  if (version != kFormatVersion) {
    return Status::NotSupported("unsupported table format version");
  }

  Status result = metaindex_handle_.DecodeFrom(input);
  if (result.ok()) {
    result = index_handle_.DecodeFrom(input);
  }
  return result;
}

Status ReadBlock(RandomAccessFile* file, uint64_t file_size,
                 const BlockHandle& handle, BlockContents* result) {
  result->data = Slice();
  result->heap_allocated = false;
  result->owned.clear();

  // The handle was decoded from untrusted bytes; bound it by the file
  // before sizing any buffer. Subtractions are ordered so nothing wraps.
  if (handle.size() > file_size ||
      file_size - handle.size() < kBlockTrailerSize ||
      handle.offset() > file_size - handle.size() - kBlockTrailerSize) {
    return Status::Corruption("block handle out of file bounds");
  }

  const size_t n = static_cast<size_t>(handle.size());
  result->owned.resize(n + kBlockTrailerSize);
  // PerfContext charges block fetches here — the same call the Env-level
  // IoStats sees — so per-operation byte totals reconcile exactly with the
  // env's bytes_read on read-only workloads.
  PerfContext* perf = GetPerfContext();
  perf->block_read_count++;
  perf->block_read_bytes += n + kBlockTrailerSize;
  Slice contents;
  Status s = file->Read(handle.offset(), n + kBlockTrailerSize, &contents,
                        result->owned.data());
  if (!s.ok()) {
    return s;
  }
  if (contents.size() != n + kBlockTrailerSize) {
    return Status::Corruption("truncated block read");
  }

  const char* data = contents.data();
  // bounds: contents.size() == n + kBlockTrailerSize (5) was checked above.
  const uint32_t expected = crc32c::Unmask(DecodeFixed32(data + n + 1));
  const uint32_t actual = crc32c::Value(data, n + 1);
  if (actual != expected) {
    return Status::Corruption("block checksum mismatch");
  }
  if (data[n] != 0) {
    return Status::Corruption("unknown block compression type");
  }

  if (data != result->owned.data()) {
    // Env returned a pointer into its own memory (mem env). Copy so the
    // block owns its bytes: cached blocks may outlive the file handle.
    result->owned.assign(data, n);
  }
  result->owned.resize(n);  // drop trailer (no-op for the copy branch)
  result->data = Slice(result->owned.data(), n);
  result->heap_allocated = true;
  return Status::OK();
}

}  // namespace lsmlab
