#include "format/block.h"

#include <algorithm>

#include "format/block_builder.h"
#include "util/coding.h"

namespace lsmlab {

Block::Block(BlockContents&& contents)
    : owned_(std::move(contents.owned)),
      data_(contents.heap_allocated ? Slice(owned_) : contents.data),
      entries_size_(0),
      num_restarts_(0),
      restarts_offset_(0),
      buckets_offset_(0),
      num_buckets_(0),
      malformed_(false) {
  // Parse from the tail: trailer word, optional hash index, restart array.
  // Every count here comes straight off disk and is validated against the
  // block size before use; a block that fails any check is latched malformed
  // (empty iterator, no hash index) instead of trusted.
  if (data_.size() < sizeof(uint32_t)) {
    MarkMalformed();
    return;
  }
  size_t pos = data_.size() - sizeof(uint32_t);
  // bounds: pos = size - 4, checked >= 0 above.
  const uint32_t trailer = DecodeFixed32(data_.data() + pos);
  num_restarts_ = trailer & ~BlockBuilder::kHashIndexFlag;
  const bool has_hash = (trailer & BlockBuilder::kHashIndexFlag) != 0;

  if (has_hash) {
    if (pos < sizeof(uint32_t)) {
      MarkMalformed();
      return;
    }
    pos -= sizeof(uint32_t);
    // bounds: pos >= 0 after the check above.
    num_buckets_ = DecodeFixed32(data_.data() + pos);
    if (num_buckets_ > pos) {
      MarkMalformed();
      return;
    }
    pos -= num_buckets_;
    buckets_offset_ = pos;
  }

  const size_t restart_bytes =
      static_cast<size_t>(num_restarts_) * sizeof(uint32_t);
  if (restart_bytes > pos) {
    MarkMalformed();
    return;
  }
  restarts_offset_ = pos - restart_bytes;
  entries_size_ = restarts_offset_;

  // The restart offsets themselves are untrusted; reject any that point
  // outside the entry region so iterator positioning can rely on them.
  for (uint32_t i = 0; i < num_restarts_; i++) {
    if (RestartPoint(i) > entries_size_) {
      MarkMalformed();
      return;
    }
  }
}

void Block::MarkMalformed() {
  malformed_ = true;
  entries_size_ = 0;
  num_restarts_ = 0;
  restarts_offset_ = 0;
  buckets_offset_ = 0;
  num_buckets_ = 0;
}

uint32_t Block::RestartPoint(uint32_t index) const {
  if (index >= num_restarts_) {
    // Corrupt callers latch through the iterator path; clamp to "end of
    // entries" so even a buggy index never reads past the restart array.
    return static_cast<uint32_t>(entries_size_);
  }
  // bounds: restarts_offset_ + num_restarts_ * 4 <= data_.size() was
  // established at construction, and index < num_restarts_ here.
  return DecodeFixed32(data_.data() + restarts_offset_ +
                       index * sizeof(uint32_t));
}

Block::HashResult Block::HashLookup(uint32_t hash,
                                    uint32_t* restart_index) const {
  if (num_buckets_ == 0 || malformed_) {
    return HashResult::kNoIndex;
  }
  // bounds: buckets_offset_ + num_buckets_ <= data_.size() was validated at
  // construction, and hash % num_buckets_ < num_buckets_.
  const uint8_t bucket = static_cast<uint8_t>(
      data_.data()[buckets_offset_ + hash % num_buckets_]);
  if (bucket == BlockBuilder::kHashBucketEmpty) {
    return HashResult::kAbsent;
  }
  if (bucket == BlockBuilder::kHashBucketCollision) {
    return HashResult::kCollision;
  }
  if (bucket >= num_restarts_) {
    return HashResult::kCollision;  // defensive: treat as unusable
  }
  *restart_index = bucket;
  return HashResult::kFound;
}

namespace {

/// Decodes the entry header at p: shared/non_shared/value lengths.
/// Returns nullptr on malformed input, else pointer to the key delta bytes.
const char* DecodeEntry(const char* p, const char* limit, uint32_t* shared,
                        uint32_t* non_shared, uint32_t* value_length) {
  // bounds: the three varint reads below are limit-checked by GetVarint32Ptr.
  if ((p = GetVarint32Ptr(p, limit, shared)) == nullptr) return nullptr;
  if ((p = GetVarint32Ptr(p, limit, non_shared)) == nullptr) return nullptr;
  if ((p = GetVarint32Ptr(p, limit, value_length)) == nullptr) return nullptr;
  // Sum in 64 bits: non_shared + value_length can wrap uint32 (e.g.
  // 0xffffffff + 1 == 0), which would pass a 32-bit comparison and let the
  // caller append ~4GB of out-of-bounds bytes to its key buffer.
  if (static_cast<uint64_t>(limit - p) <
      static_cast<uint64_t>(*non_shared) + *value_length) {
    return nullptr;
  }
  return p;
}

}  // namespace

class Block::Iter : public Block::BlockIterator {
 public:
  Iter(const Block* block, const Comparator* comparator)
      : block_(block),
        comparator_(comparator),
        current_(block->entries_size_),
        restart_index_(block->num_restarts_) {}

  bool Valid() const override { return current_ < block_->entries_size_; }

  Status status() const override { return status_; }

  Slice key() const override { return Slice(key_); }

  Slice value() const override { return value_; }

  void Next() override {
    if (!Valid()) {
      return;
    }
    ParseNextKey();
  }

  void Prev() override {
    if (!Valid()) {
      return;
    }
    // Scan backwards to a restart point before current_, then walk forward.
    const size_t original = current_;
    while (block_->RestartPoint(restart_index_) >= original) {
      if (restart_index_ == 0) {
        current_ = block_->entries_size_;  // no entry before the first
        restart_index_ = block_->num_restarts_;
        return;
      }
      restart_index_--;
    }
    SeekToRestartPoint(restart_index_);
    do {
    } while (ParseNextKey() && NextEntryOffset() < original);
  }

  void Seek(const Slice& target) override {
    if (block_->num_restarts_ == 0 || block_->malformed_) {
      current_ = block_->entries_size_;
      return;
    }
    // Binary-search restart points for the last restart whose key < target,
    // then linearly scan forward.
    uint32_t left = 0;
    uint32_t right = block_->num_restarts_ == 0 ? 0 : block_->num_restarts_ - 1;
    while (left < right) {
      const uint32_t mid = (left + right + 1) / 2;
      SeekToRestartPoint(mid);
      if (!ParseNextKey()) {
        return;  // corruption
      }
      if (comparator_->Compare(Slice(key_), target) < 0) {
        left = mid;
      } else {
        right = mid - 1;
      }
    }
    SeekToRestartPoint(left);
    while (ParseNextKey()) {
      if (comparator_->Compare(Slice(key_), target) >= 0) {
        return;
      }
    }
  }

  void SeekToFirst() override {
    if (block_->num_restarts_ == 0 || block_->malformed_) {
      current_ = block_->entries_size_;
      return;
    }
    SeekToRestartPoint(0);
    ParseNextKey();
  }

  void SeekToLast() override {
    if (block_->num_restarts_ == 0 || block_->malformed_) {
      current_ = block_->entries_size_;
      return;
    }
    SeekToRestartPoint(block_->num_restarts_ - 1);
    while (ParseNextKey() && NextEntryOffset() < block_->entries_size_) {
    }
  }

  void SeekToRestart(uint32_t index) override {
    if (index >= block_->num_restarts_) {
      current_ = block_->entries_size_;
      return;
    }
    SeekToRestartPoint(index);
    ParseNextKey();
  }

 private:
  size_t NextEntryOffset() const {
    return (value_.data() + value_.size()) - block_->data_.data();
  }

  void SeekToRestartPoint(uint32_t index) {
    key_.clear();
    restart_index_ = index;
    const uint32_t offset = block_->RestartPoint(index);
    // ParseNextKey starts from the end of value_; fake a zero-length value
    // ending at the restart offset.
    value_ = Slice(block_->data_.data() + offset, 0);
  }

  bool ParseNextKey() {
    current_ = NextEntryOffset();
    const char* p = block_->data_.data() + current_;
    const char* limit = block_->data_end();
    if (p >= limit) {
      current_ = block_->entries_size_;
      restart_index_ = block_->num_restarts_;
      return false;
    }

    uint32_t shared, non_shared, value_length;
    p = DecodeEntry(p, limit, &shared, &non_shared, &value_length);
    if (p == nullptr || key_.size() < shared) {
      CorruptionError();
      return false;
    }
    key_.resize(shared);
    key_.append(p, non_shared);
    value_ = Slice(p + non_shared, value_length);
    while (restart_index_ + 1 < block_->num_restarts_ &&
           block_->RestartPoint(restart_index_ + 1) < current_) {
      restart_index_++;
    }
    return true;
  }

  void CorruptionError() {
    current_ = block_->entries_size_;
    restart_index_ = block_->num_restarts_;
    status_ = Status::Corruption("bad entry in block");
    key_.clear();
    value_ = Slice();
  }

  const Block* block_;
  const Comparator* comparator_;
  size_t current_;          // offset of current entry; >= entries_size_ if !Valid
  uint32_t restart_index_;  // restart group containing current_
  std::string key_;
  Slice value_;
  Status status_;
};

Block::BlockIterator* Block::NewIterator(const Comparator* comparator) const {
  // A malformed or empty block yields an iterator whose seeks all land in
  // the !Valid() state.
  return new Iter(this, comparator);
}

}  // namespace lsmlab
