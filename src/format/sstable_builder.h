#ifndef LSMLAB_FORMAT_SSTABLE_BUILDER_H_
#define LSMLAB_FORMAT_SSTABLE_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "format/block_builder.h"
#include "format/format.h"
#include "format/table_options.h"
#include "storage/env.h"

namespace lsmlab {

/// Table-level statistics persisted in the properties meta block.
struct TableProperties {
  uint64_t num_entries = 0;
  uint64_t num_data_blocks = 0;
  uint64_t raw_key_bytes = 0;
  uint64_t raw_value_bytes = 0;
  uint64_t filter_bytes = 0;
  uint64_t range_filter_bytes = 0;
  uint64_t index_bytes = 0;

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice input);
};

/// Streams sorted key/value entries into an SSTable file.
///
/// File layout:
///   [data block]* [filter block] [range filter block] [properties block]
///   [metaindex block] [index block] [footer]
/// The index block's entries are fence pointers: a shortened divider key
/// per data block mapping to its BlockHandle (tutorial §II-1).
class SSTableBuilder {
 public:
  SSTableBuilder(const TableOptions& options, WritableFile* file);
  ~SSTableBuilder();

  SSTableBuilder(const SSTableBuilder&) = delete;
  SSTableBuilder& operator=(const SSTableBuilder&) = delete;

  /// Adds an entry. REQUIRES: key > all previously added keys; Finish() and
  /// Abandon() not yet called.
  void Add(const Slice& key, const Slice& value);

  /// Writes all pending blocks, meta blocks, index, and footer.
  Status Finish();

  /// Abandons the table; the caller deletes the underlying file.
  void Abandon();

  uint64_t NumEntries() const { return props_.num_entries; }
  /// Bytes written so far (grows as blocks are flushed).
  uint64_t FileSize() const { return offset_; }
  Status status() const { return status_; }
  const TableProperties& properties() const { return props_; }

 private:
  void FlushDataBlock();
  /// Writes `contents` plus trailer; records its handle.
  void WriteRawBlock(const Slice& contents, BlockHandle* handle);

  TableOptions options_;
  TableOptions index_options_;  // like options_ but no hash index, restart=1
  WritableFile* file_;
  uint64_t offset_ = 0;
  Status status_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  std::string last_key_;
  bool pending_index_entry_ = false;
  BlockHandle pending_handle_;  // handle of the block awaiting index entry
  bool closed_ = false;
  TableProperties props_;

  // Searchable keys (deduplicated consecutive) retained for filter builds.
  std::vector<std::string> filter_keys_;
  // With partitioned filters: index of the first filter key of the data
  // block currently being built; one finished filter blob per flushed
  // data block.
  size_t partition_first_key_ = 0;
  std::vector<std::string> partition_filters_;
};

}  // namespace lsmlab

#endif  // LSMLAB_FORMAT_SSTABLE_BUILDER_H_
