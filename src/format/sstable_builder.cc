#include "format/sstable_builder.h"

#include <algorithm>
#include <cassert>

#include "filter/filter_policy.h"
#include "rangefilter/range_filter.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace lsmlab {

void TableProperties::EncodeTo(std::string* dst) const {
  PutVarint64(dst, num_entries);
  PutVarint64(dst, num_data_blocks);
  PutVarint64(dst, raw_key_bytes);
  PutVarint64(dst, raw_value_bytes);
  PutVarint64(dst, filter_bytes);
  PutVarint64(dst, range_filter_bytes);
  PutVarint64(dst, index_bytes);
}

Status TableProperties::DecodeFrom(Slice input) {
  if (GetVarint64(&input, &num_entries) &&
      GetVarint64(&input, &num_data_blocks) &&
      GetVarint64(&input, &raw_key_bytes) &&
      GetVarint64(&input, &raw_value_bytes) &&
      GetVarint64(&input, &filter_bytes) &&
      GetVarint64(&input, &range_filter_bytes) &&
      GetVarint64(&input, &index_bytes)) {
    return Status::OK();
  }
  return Status::Corruption("bad table properties");
}

namespace {

TableOptions IndexBlockOptions(const TableOptions& options) {
  TableOptions index_options = options;
  index_options.use_hash_index = false;
  // Index entries are full keys so the reader can binary-search them all.
  index_options.block_restart_interval = 1;
  return index_options;
}

}  // namespace

SSTableBuilder::SSTableBuilder(const TableOptions& options, WritableFile* file)
    : options_(options),
      index_options_(IndexBlockOptions(options)),
      file_(file),
      data_block_(&options_),
      index_block_(&index_options_) {}

SSTableBuilder::~SSTableBuilder() { assert(closed_); }

void SSTableBuilder::Add(const Slice& key, const Slice& value) {
  assert(!closed_);
  if (!status_.ok()) {
    return;
  }
  assert(props_.num_entries == 0 ||
         options_.comparator->Compare(key, Slice(last_key_)) > 0);

  if (pending_index_entry_) {
    // The previous block was flushed; emit its fence pointer now that we
    // know the next key, so the divider can be shortened to lie strictly
    // between the two blocks. Learned index modes keep the full key so the
    // reader can decode fences numerically.
    assert(data_block_.empty());
    if (options_.index_type == TableOptions::IndexType::kBinarySearch) {
      options_.comparator->FindShortestSeparator(&last_key_, key);
    }
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(Slice(last_key_), Slice(handle_encoding));
    pending_index_entry_ = false;
  }

  if (options_.filter_policy != nullptr ||
      options_.range_filter_policy != nullptr) {
    Slice searchable = options_.SearchableKey(key);
    // Successive versions of one user key dedupe to a single filter entry.
    if (filter_keys_.empty() ||
        Slice(filter_keys_.back()) != searchable) {
      filter_keys_.push_back(searchable.ToString());
    }
  }

  props_.num_entries++;
  props_.raw_key_bytes += key.size();
  props_.raw_value_bytes += value.size();
  last_key_.assign(key.data(), key.size());
  data_block_.Add(key, value);

  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    FlushDataBlock();
  }
}

void SSTableBuilder::FlushDataBlock() {
  assert(!closed_);
  if (!status_.ok() || data_block_.empty()) {
    return;
  }
  assert(!pending_index_entry_);
  if (options_.partition_filters && options_.filter_policy != nullptr) {
    // One filter partition per data block, over this block's keys only.
    std::vector<Slice> key_slices;
    key_slices.reserve(filter_keys_.size() - partition_first_key_);
    for (size_t i = partition_first_key_; i < filter_keys_.size(); i++) {
      key_slices.emplace_back(filter_keys_[i]);
    }
    std::string filter_data;
    options_.filter_policy->CreateFilter(key_slices.data(),
                                         key_slices.size(), &filter_data);
    props_.filter_bytes += filter_data.size();
    partition_filters_.push_back(std::move(filter_data));
    partition_first_key_ = filter_keys_.size();
  }
  Slice raw = data_block_.Finish();
  WriteRawBlock(raw, &pending_handle_);
  data_block_.Reset();
  pending_index_entry_ = true;
  props_.num_data_blocks++;
  if (status_.ok()) {
    status_ = file_->Flush();
  }
}

void SSTableBuilder::WriteRawBlock(const Slice& contents,
                                   BlockHandle* handle) {
  handle->set_offset(offset_);
  handle->set_size(contents.size());
  status_ = file_->Append(contents);
  if (status_.ok()) {
    char trailer[kBlockTrailerSize];
    trailer[0] = 0;  // uncompressed
    uint32_t crc = crc32c::Value(contents.data(), contents.size());
    crc = crc32c::Extend(crc, trailer, 1);  // cover the type byte
    EncodeFixed32(trailer + 1, crc32c::Mask(crc));
    status_ = file_->Append(Slice(trailer, kBlockTrailerSize));
  }
  if (status_.ok()) {
    offset_ += contents.size() + kBlockTrailerSize;
  }
}

Status SSTableBuilder::Finish() {
  assert(!closed_);
  FlushDataBlock();
  closed_ = true;

  BlockHandle filter_handle, range_filter_handle, props_handle,
      metaindex_handle, index_handle;

  // Filter partitions: each partition is a single-entry block (key "f",
  // value = filter blob) so it flows through the normal block-cache read
  // path; a partition-index maps data-block ordinals to their handles.
  BlockHandle partition_index_handle;
  if (status_.ok() && options_.partition_filters &&
      options_.filter_policy != nullptr) {
    std::string partition_index;
    PutVarint32(&partition_index,
                static_cast<uint32_t>(partition_filters_.size()));
    for (const std::string& filter_data : partition_filters_) {
      BlockBuilder partition(&index_options_);
      partition.Add("f", Slice(filter_data));
      BlockHandle handle;
      WriteRawBlock(partition.Finish(), &handle);
      if (!status_.ok()) {
        break;
      }
      handle.EncodeTo(&partition_index);
    }
    if (status_.ok()) {
      WriteRawBlock(Slice(partition_index), &partition_index_handle);
    }
  }

  // Filter block (monolithic; skipped when partitioned).
  if (status_.ok() && !options_.partition_filters &&
      options_.filter_policy != nullptr) {
    std::vector<Slice> key_slices;
    key_slices.reserve(filter_keys_.size());
    for (const auto& k : filter_keys_) {
      key_slices.emplace_back(k);
    }
    std::string filter_data;
    options_.filter_policy->CreateFilter(
        key_slices.data(), key_slices.size(), &filter_data);
    props_.filter_bytes = filter_data.size();
    WriteRawBlock(Slice(filter_data), &filter_handle);
  }

  // Range filter block.
  if (status_.ok() && options_.range_filter_policy != nullptr) {
    std::vector<Slice> key_slices;
    key_slices.reserve(filter_keys_.size());
    for (const auto& k : filter_keys_) {
      key_slices.emplace_back(k);
    }
    std::string filter_data;
    options_.range_filter_policy->CreateFilter(key_slices, &filter_data);
    props_.range_filter_bytes = filter_data.size();
    WriteRawBlock(Slice(filter_data), &range_filter_handle);
  }

  // Properties block (must be written before metaindex references it; note
  // index_bytes is not yet known so it reflects the index block only after
  // reopen via footer, and we record 0 here after this comment clarifies).
  if (status_.ok()) {
    std::string props_data;
    props_.EncodeTo(&props_data);
    WriteRawBlock(Slice(props_data), &props_handle);
  }

  // Metaindex block maps meta block names to handles. Its keys are ASCII
  // names, not table keys, so it is always built in bytewise order.
  if (status_.ok()) {
    TableOptions meta_options = index_options_;
    meta_options.comparator = BytewiseComparator();
    BlockBuilder metaindex(&meta_options);
    // Entries must be added in sorted key order.
    struct Entry {
      std::string name;
      BlockHandle handle;
    };
    std::vector<Entry> entries;
    if (options_.filter_policy != nullptr && !filter_handle.IsNull()) {
      entries.push_back(
          {std::string("filter.") + options_.filter_policy->Name(),
           filter_handle});
    }
    if (options_.filter_policy != nullptr &&
        !partition_index_handle.IsNull()) {
      entries.push_back(
          {std::string("filterpartitions.") + options_.filter_policy->Name(),
           partition_index_handle});
    }
    entries.push_back({"lsmlab.properties", props_handle});
    if (options_.range_filter_policy != nullptr &&
        !range_filter_handle.IsNull()) {
      entries.push_back(
          {std::string("rangefilter.") + options_.range_filter_policy->Name(),
           range_filter_handle});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.name < b.name; });
    for (const auto& e : entries) {
      std::string handle_encoding;
      e.handle.EncodeTo(&handle_encoding);
      metaindex.Add(Slice(e.name), Slice(handle_encoding));
    }
    WriteRawBlock(metaindex.Finish(), &metaindex_handle);
  }

  // Index block (fence pointers).
  if (status_.ok()) {
    if (pending_index_entry_) {
      if (options_.index_type == TableOptions::IndexType::kBinarySearch) {
        options_.comparator->FindShortSuccessor(&last_key_);
      }
      std::string handle_encoding;
      pending_handle_.EncodeTo(&handle_encoding);
      index_block_.Add(Slice(last_key_), Slice(handle_encoding));
      pending_index_entry_ = false;
    }
    Slice index_contents = index_block_.Finish();
    props_.index_bytes = index_contents.size();
    WriteRawBlock(index_contents, &index_handle);
  }

  // Footer.
  if (status_.ok()) {
    Footer footer;
    footer.set_metaindex_handle(metaindex_handle);
    footer.set_index_handle(index_handle);
    std::string footer_encoding;
    footer.EncodeTo(&footer_encoding);
    status_ = file_->Append(Slice(footer_encoding));
    if (status_.ok()) {
      offset_ += footer_encoding.size();
    }
  }
  if (status_.ok()) {
    status_ = file_->Sync();
  }
  return status_;
}

void SSTableBuilder::Abandon() {
  assert(!closed_);
  closed_ = true;
}

}  // namespace lsmlab
