#ifndef LSMLAB_FORMAT_FORMAT_H_
#define LSMLAB_FORMAT_FORMAT_H_

#include <cstdint>
#include <string>

#include "storage/env.h"
#include "util/slice.h"
#include "util/status.h"

namespace lsmlab {

/// Location (offset, size) of a block within an SSTable file.
class BlockHandle {
 public:
  BlockHandle() : offset_(~uint64_t{0}), size_(~uint64_t{0}) {}
  BlockHandle(uint64_t offset, uint64_t size) : offset_(offset), size_(size) {}

  uint64_t offset() const { return offset_; }
  uint64_t size() const { return size_; }
  void set_offset(uint64_t offset) { offset_ = offset; }
  void set_size(uint64_t size) { size_ = size; }
  bool IsNull() const { return offset_ == ~uint64_t{0}; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

  // Maximum encoding length of a BlockHandle (two varint64).
  static constexpr size_t kMaxEncodedLength = 20;

 private:
  uint64_t offset_;
  uint64_t size_;
};

/// Fixed-size footer at the tail of every SSTable.
///
/// Layout: metaindex handle, index handle, padding to kEncodedLength-12,
/// format version (fixed32), magic (fixed64).
class Footer {
 public:
  // Two handles (padded) + version + magic.
  static constexpr size_t kEncodedLength =
      2 * BlockHandle::kMaxEncodedLength + 4 + 8;
  static constexpr uint64_t kTableMagicNumber = 0x6c736d6c61623031ull;
  static constexpr uint32_t kFormatVersion = 1;

  const BlockHandle& metaindex_handle() const { return metaindex_handle_; }
  const BlockHandle& index_handle() const { return index_handle_; }
  void set_metaindex_handle(const BlockHandle& h) { metaindex_handle_ = h; }
  void set_index_handle(const BlockHandle& h) { index_handle_ = h; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

 private:
  BlockHandle metaindex_handle_;
  BlockHandle index_handle_;
};

/// Every block is followed by a 5-byte trailer: 1-byte type
/// (0 = uncompressed; reserved for future codecs) + 4-byte masked CRC32C of
/// the block contents + type byte.
constexpr size_t kBlockTrailerSize = 5;

/// Contents of a block as read from a file. `heap_allocated` is true when
/// the data was copied into caller-owned memory (POSIX env) rather than
/// pointing into an env-owned buffer (mem env).
struct BlockContents {
  Slice data;
  bool heap_allocated = false;
  // Owning buffer when heap_allocated; kept so Block can free it.
  std::string owned;
};

/// Reads the block identified by `handle`, verifying its trailer CRC.
/// `file_size` bounds the untrusted handle before any allocation: a corrupt
/// offset/size pair is reported as Corruption instead of driving a
/// multi-gigabyte buffer resize or an out-of-range read.
Status ReadBlock(RandomAccessFile* file, uint64_t file_size,
                 const BlockHandle& handle, BlockContents* result);

}  // namespace lsmlab

#endif  // LSMLAB_FORMAT_FORMAT_H_
