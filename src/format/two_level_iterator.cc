#include "format/two_level_iterator.h"

#include <memory>
#include <string>

namespace lsmlab {

namespace {

class TwoLevelIterator : public Iterator {
 public:
  TwoLevelIterator(Iterator* index_iter,
                   std::function<Iterator*(const Slice&)> data_factory)
      : index_iter_(index_iter), data_factory_(std::move(data_factory)) {}

  bool Valid() const override {
    return data_iter_ != nullptr && data_iter_->Valid();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataIterator();
    if (data_iter_ != nullptr) {
      data_iter_->SeekToFirst();
    }
    SkipEmptyDataBlocksForward();
  }

  void SeekToLast() override {
    index_iter_->SeekToLast();
    InitDataIterator();
    if (data_iter_ != nullptr) {
      data_iter_->SeekToLast();
    }
    SkipEmptyDataBlocksBackward();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataIterator();
    if (data_iter_ != nullptr) {
      data_iter_->Seek(target);
    }
    SkipEmptyDataBlocksForward();
  }

  void Next() override {
    data_iter_->Next();
    SkipEmptyDataBlocksForward();
  }

  void Prev() override {
    data_iter_->Prev();
    SkipEmptyDataBlocksBackward();
  }

  Slice key() const override { return data_iter_->key(); }
  Slice value() const override { return data_iter_->value(); }

  Status status() const override {
    if (!index_iter_->status().ok()) {
      return index_iter_->status();
    }
    if (data_iter_ != nullptr && !data_iter_->status().ok()) {
      return data_iter_->status();
    }
    return status_;
  }

 private:
  void InitDataIterator() {
    // Preserve any error from the iterator being replaced; otherwise a
    // corrupt block would be skipped silently.
    if (data_iter_ != nullptr && !data_iter_->status().ok() &&
        status_.ok()) {
      status_ = data_iter_->status();
    }
    if (!index_iter_->Valid()) {
      data_iter_.reset();
      current_index_value_.clear();
      return;
    }
    Slice handle = index_iter_->value();
    if (data_iter_ != nullptr && Slice(current_index_value_) == handle) {
      return;  // same data source; keep position machinery untouched
    }
    current_index_value_.assign(handle.data(), handle.size());
    data_iter_.reset(data_factory_(handle));
    if (data_iter_ == nullptr) {
      status_ = Status::Corruption("data factory returned null");
    }
  }

  void SkipEmptyDataBlocksForward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        data_iter_.reset();
        return;
      }
      index_iter_->Next();
      InitDataIterator();
      if (data_iter_ != nullptr) {
        data_iter_->SeekToFirst();
      }
    }
  }

  void SkipEmptyDataBlocksBackward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        data_iter_.reset();
        return;
      }
      index_iter_->Prev();
      InitDataIterator();
      if (data_iter_ != nullptr) {
        data_iter_->SeekToLast();
      }
    }
  }

  std::unique_ptr<Iterator> index_iter_;
  std::function<Iterator*(const Slice&)> data_factory_;
  std::unique_ptr<Iterator> data_iter_;
  std::string current_index_value_;
  Status status_;
};

}  // namespace

Iterator* NewTwoLevelIterator(
    Iterator* index_iter,
    std::function<Iterator*(const Slice& index_value)> data_factory) {
  return new TwoLevelIterator(index_iter, std::move(data_factory));
}

}  // namespace lsmlab
