#include "format/block_builder.h"

#include <algorithm>
#include <cassert>

#include "util/coding.h"
#include "util/hash.h"

namespace lsmlab {

BlockBuilder::BlockBuilder(const TableOptions* opts)
    : opts_(opts), counter_(0), finished_(false), num_entries_(0) {
  assert(opts->block_restart_interval >= 1);
  restarts_.push_back(0);  // first restart point is at offset 0
}

void BlockBuilder::Reset() {
  buffer_.clear();
  restarts_.clear();
  restarts_.push_back(0);
  counter_ = 0;
  finished_ = false;
  num_entries_ = 0;
  last_key_.clear();
  last_searchable_.clear();
  hash_entries_.clear();
}

size_t BlockBuilder::CurrentSizeEstimate() const {
  size_t size = buffer_.size() + restarts_.size() * sizeof(uint32_t) +
                sizeof(uint32_t);
  if (opts_->use_hash_index) {
    size += static_cast<size_t>(num_entries_ /
                                std::max(opts_->hash_index_util_ratio, 0.1)) +
            sizeof(uint32_t);
  }
  return size;
}

void BlockBuilder::Add(const Slice& key, const Slice& value) {
  assert(!finished_);
  assert(counter_ <= opts_->block_restart_interval);
  assert(buffer_.empty() ||
         opts_->comparator->Compare(key, Slice(last_key_)) > 0);

  size_t shared = 0;
  if (counter_ < opts_->block_restart_interval) {
    // Shared-prefix compress against the previous key.
    const size_t min_length = std::min(last_key_.size(), key.size());
    while (shared < min_length && last_key_[shared] == key[shared]) {
      shared++;
    }
  } else {
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    counter_ = 0;
  }
  const size_t non_shared = key.size() - shared;

  PutVarint32(&buffer_, static_cast<uint32_t>(shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(non_shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(value.size()));
  buffer_.append(key.data() + shared, non_shared);
  buffer_.append(value.data(), value.size());

  last_key_.resize(shared);
  last_key_.append(key.data() + shared, non_shared);
  assert(Slice(last_key_) == key);

  if (opts_->use_hash_index) {
    Slice searchable = opts_->SearchableKey(key);
    // Record only the first (newest) occurrence of each searchable key so a
    // hash hit lands on the version a point lookup wants.
    if (hash_entries_.empty() || Slice(last_searchable_) != searchable) {
      hash_entries_.emplace_back(
          Hash32(searchable),
          static_cast<uint32_t>(restarts_.size() - 1));
      last_searchable_.assign(searchable.data(), searchable.size());
    }
  }

  counter_++;
  num_entries_++;
}

Slice BlockBuilder::Finish() {
  for (uint32_t restart : restarts_) {
    PutFixed32(&buffer_, restart);
  }

  uint32_t trailer = static_cast<uint32_t>(restarts_.size());
  const bool want_hash =
      opts_->use_hash_index &&
      restarts_.size() <= kMaxHashRestartIndex;  // bucket bytes must fit
  if (want_hash) {
    const uint32_t num_buckets = std::max<uint32_t>(
        1, static_cast<uint32_t>(
               num_entries_ /
               std::max(opts_->hash_index_util_ratio, 0.1)));
    std::string buckets(num_buckets, static_cast<char>(kHashBucketEmpty));
    for (const auto& [hash, restart] : hash_entries_) {
      uint8_t& b = reinterpret_cast<uint8_t&>(buckets[hash % num_buckets]);
      if (b == kHashBucketEmpty) {
        b = static_cast<uint8_t>(restart);
      } else if (b != static_cast<uint8_t>(restart)) {
        b = kHashBucketCollision;
      }
    }
    buffer_.append(buckets);
    PutFixed32(&buffer_, num_buckets);
    trailer |= kHashIndexFlag;
  }

  PutFixed32(&buffer_, trailer);
  finished_ = true;
  return Slice(buffer_);
}

}  // namespace lsmlab
