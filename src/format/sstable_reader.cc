#include "format/sstable_reader.h"

#include <algorithm>

#include "filter/filter_policy.h"
#include "format/two_level_iterator.h"
#include "obs/perf_context.h"
#include "rangefilter/range_filter.h"
#include "util/coding.h"
#include "util/hash.h"

namespace lsmlab {

namespace {

/// First 8 bytes of `s`, big-endian, zero-padded: the numeric image of a
/// key used by the learned fence indexes.
uint64_t NumericKey(const Slice& s) {
  uint64_t v = 0;
  const size_t n = std::min<size_t>(8, s.size());
  for (size_t i = 0; i < n; i++) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(s[i]))
         << (8 * (7 - i));
  }
  return v;
}

/// Iterator over one data block that keeps the block alive via either a
/// cache pin or shared ownership.
class PinnedBlockIterator : public Iterator {
 public:
  PinnedBlockIterator(Block::BlockIterator* iter, BlockCache::Ref ref,
                      std::shared_ptr<const Block> owned)
      : iter_(iter), ref_(std::move(ref)), owned_(std::move(owned)) {}

  bool Valid() const override { return iter_->Valid(); }
  void SeekToFirst() override { iter_->SeekToFirst(); }
  void SeekToLast() override { iter_->SeekToLast(); }
  void Seek(const Slice& target) override { iter_->Seek(target); }
  void Next() override { iter_->Next(); }
  void Prev() override { iter_->Prev(); }
  Slice key() const override { return iter_->key(); }
  Slice value() const override { return iter_->value(); }
  Status status() const override { return iter_->status(); }

 private:
  std::unique_ptr<Block::BlockIterator> iter_;
  BlockCache::Ref ref_;
  std::shared_ptr<const Block> owned_;
};

}  // namespace

SSTable::SSTable(const TableOptions& options, uint64_t file_number,
                 BlockCache* block_cache)
    : options_(options), file_number_(file_number), block_cache_(block_cache) {}

SSTable::~SSTable() = default;

Status SSTable::Open(const TableOptions& options,
                     std::unique_ptr<RandomAccessFile> file,
                     uint64_t file_size, uint64_t file_number,
                     BlockCache* block_cache,
                     std::unique_ptr<SSTable>* table) {
  table->reset();
  if (file_size < Footer::kEncodedLength) {
    return Status::Corruption("file is too short to be an sstable");
  }

  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  Status s = file->Read(file_size - Footer::kEncodedLength,
                        Footer::kEncodedLength, &footer_input, footer_space);
  if (!s.ok()) {
    return s;
  }
  Footer footer;
  s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) {
    return s;
  }

  std::unique_ptr<SSTable> t(new SSTable(options, file_number, block_cache));
  t->file_ = std::move(file);
  t->file_size_ = file_size;

  BlockContents index_contents;
  s = ReadBlock(t->file_.get(), file_size, footer.index_handle(),
                &index_contents);
  if (!s.ok()) {
    return s;
  }
  t->index_block_ = std::make_unique<Block>(std::move(index_contents));

  s = t->ReadMeta(footer);
  if (!s.ok()) {
    return s;
  }

  // Partitioned filters need the ordinal of a data block given its handle;
  // map block offsets to ordinals from the (memory-resident) index block.
  if (!t->partition_handles_.empty()) {
    std::unique_ptr<Iterator> it(
        t->index_block_->NewIterator(options.comparator));
    size_t ordinal = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next(), ordinal++) {
      Slice v = it->value();
      BlockHandle handle;
      if (handle.DecodeFrom(&v).ok()) {
        t->block_offset_to_ordinal_[handle.offset()] = ordinal;
      }
    }
    if (ordinal != t->partition_handles_.size()) {
      // Partition count must match data blocks; degrade to no filtering.
      t->partition_handles_.clear();
      t->block_offset_to_ordinal_.clear();
    }
  }

  // Train the learned fence index if requested. Falls back silently to
  // binary search when the fences are not strictly increasing numerically
  // (non-numeric keys truncated to equal 8-byte prefixes).
  if (options.index_type != TableOptions::IndexType::kBinarySearch) {
    std::unique_ptr<Iterator> it(
        t->index_block_->NewIterator(options.comparator));
    bool ok = true;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      const uint64_t num = NumericKey(options.SearchableKey(it->key()));
      if (!t->fence_nums_.empty() && num <= t->fence_nums_.back()) {
        ok = false;
        break;
      }
      t->fence_nums_.push_back(num);
      t->block_handles_.push_back(it->value().ToString());
    }
    if (ok && !t->fence_nums_.empty()) {
      if (options.index_type == TableOptions::IndexType::kLearnedPlr) {
        t->plr_ = std::make_unique<PiecewiseLinearModel>(
            options.learned_index_epsilon);
        for (uint64_t num : t->fence_nums_) {
          t->plr_->Add(num);
        }
        t->plr_->Finish();
      } else {
        t->spline_ = std::make_unique<RadixSpline>(
            options.learned_index_epsilon, /*radix_bits=*/12);
        for (uint64_t num : t->fence_nums_) {
          t->spline_->Add(num);
        }
        t->spline_->Finish();
      }
    } else {
      t->fence_nums_.clear();
      t->block_handles_.clear();
    }
  }

  *table = std::move(t);
  return Status::OK();
}

Status SSTable::ReadMeta(const Footer& footer) {
  BlockContents meta_contents;
  Status s = ReadBlock(file_.get(), file_size_, footer.metaindex_handle(),
                       &meta_contents);
  if (!s.ok()) {
    return s;
  }
  Block metaindex(std::move(meta_contents));
  std::unique_ptr<Iterator> it(metaindex.NewIterator(BytewiseComparator()));

  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    const std::string name = it->key().ToString();
    Slice handle_value = it->value();
    BlockHandle handle;
    if (!handle.DecodeFrom(&handle_value).ok()) {
      return Status::Corruption("bad metaindex handle for ", name);
    }
    BlockContents contents;
    if (name == "lsmlab.properties") {
      s = ReadBlock(file_.get(), file_size_, handle, &contents);
      if (!s.ok()) {
        return s;
      }
      s = props_.DecodeFrom(contents.data);
      if (!s.ok()) {
        return s;
      }
    } else if (options_.filter_policy != nullptr &&
               name == std::string("filter.") + options_.filter_policy->Name()) {
      s = ReadBlock(file_.get(), file_size_, handle, &contents);
      if (!s.ok()) {
        return s;
      }
      filter_data_ = contents.data.ToString();
      has_filter_ = true;
    } else if (options_.filter_policy != nullptr &&
               name == std::string("filterpartitions.") +
                           options_.filter_policy->Name()) {
      s = ReadBlock(file_.get(), file_size_, handle, &contents);
      if (!s.ok()) {
        return s;
      }
      Slice input = contents.data;
      uint32_t count;
      if (!GetVarint32(&input, &count)) {
        return Status::Corruption("bad filter partition index");
      }
      // Each encoded handle is at least two bytes; a count that could not
      // possibly fit in the remaining bytes is corruption, not a reserve()
      // of up to 4G entries.
      if (count > input.size() / 2) {
        return Status::Corruption("bad filter partition count");
      }
      partition_handles_.reserve(count);
      for (uint32_t i = 0; i < count; i++) {
        BlockHandle ph;
        if (!ph.DecodeFrom(&input).ok()) {
          return Status::Corruption("bad filter partition handle");
        }
        partition_handles_.push_back(ph);
      }
    } else if (options_.range_filter_policy != nullptr &&
               name == std::string("rangefilter.") +
                           options_.range_filter_policy->Name()) {
      s = ReadBlock(file_.get(), file_size_, handle, &contents);
      if (!s.ok()) {
        return s;
      }
      range_filter_data_ = contents.data.ToString();
      has_range_filter_ = true;
    }
    // Unknown meta blocks (or filters built with a different policy) are
    // skipped: the table degrades to filter-less reads.
  }
  return it->status();
}

Status SSTable::GetBlock(const BlockHandle& handle, BlockCache::Ref* ref,
                         std::shared_ptr<const Block>* owned,
                         const Block** block, uint64_t access_weight) const {
  *block = nullptr;
  if (block_cache_ != nullptr) {
    *ref = block_cache_->Lookup(file_number_, handle.offset(), access_weight);
    if (*ref) {
      *block = ref->block();
      return Status::OK();
    }
  }
  BlockContents contents;
  Status s = ReadBlock(file_.get(), file_size_, handle, &contents);
  if (!s.ok()) {
    return s;
  }
  auto fresh = std::make_unique<const Block>(std::move(contents));
  if (block_cache_ != nullptr) {
    *ref = block_cache_->Insert(file_number_, handle.offset(),
                                std::move(fresh));
    *block = ref->block();
  } else {
    *owned = std::shared_ptr<const Block>(fresh.release());
    *block = owned->get();
  }
  return Status::OK();
}

Iterator* SSTable::BlockReader(const Slice& index_value) const {
  Slice input = index_value;
  BlockHandle handle;
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) {
    return NewEmptyIterator(s);
  }
  BlockCache::Ref ref;
  std::shared_ptr<const Block> owned;
  const Block* block = nullptr;
  s = GetBlock(handle, &ref, &owned, &block);
  if (!s.ok()) {
    return NewEmptyIterator(s);
  }
  return new PinnedBlockIterator(block->NewIterator(options_.comparator),
                                 std::move(ref), std::move(owned));
}

Iterator* SSTable::NewIterator() const {
  return NewTwoLevelIterator(
      index_block_->NewIterator(options_.comparator),
      [this](const Slice& index_value) { return BlockReader(index_value); });
}

bool SSTable::KeyMayMatch(const Slice& searchable_key, uint64_t hash) const {
  if (!has_filter_) {
    return true;
  }
  GetPerfContext()->filter_probe_count++;
  const FilterPolicy* policy = options_.filter_policy;
  const bool maybe = policy->SupportsHashProbe()
                         ? policy->HashMayMatch(hash, Slice(filter_data_))
                         : policy->KeyMayMatch(searchable_key,
                                               Slice(filter_data_));
  if (!maybe) {
    GetPerfContext()->filter_negative_count++;
  }
  return maybe;
}

bool SSTable::RangeMayMatch(const Slice& lo, const Slice& hi) const {
  if (!has_range_filter_) {
    return true;
  }
  GetPerfContext()->range_filter_probe_count++;
  const bool maybe = options_.range_filter_policy->RangeMayMatch(
      lo, hi, Slice(range_filter_data_));
  if (!maybe) {
    GetPerfContext()->range_filter_negative_count++;
  }
  return maybe;
}

bool SSTable::LearnedFindBlock(const Slice& searchable,
                               size_t* block_idx) const {
  if (fence_nums_.empty()) {
    return false;
  }
  const uint64_t num = NumericKey(searchable);
  size_t lo = 0;
  size_t hi = 0;
  if (plr_ != nullptr) {
    plr_->Lookup(num, &lo, &hi);
  } else if (spline_ != nullptr) {
    spline_->Lookup(num, &lo, &hi);
  } else {
    return false;
  }
  // Binary search for the first fence >= num inside [lo, hi]; widen to a
  // full search if the window was misleading (possible for keys that were
  // never fed to the model).
  auto begin = fence_nums_.begin() + lo;
  auto end = fence_nums_.begin() + std::min(hi + 1, fence_nums_.size());
  auto it = std::lower_bound(begin, end, num);
  bool trustworthy =
      (it != end || hi + 1 >= fence_nums_.size()) &&
      (it != begin || lo == 0);
  if (!trustworthy) {
    it = std::lower_bound(fence_nums_.begin(), fence_nums_.end(), num);
    if (it == fence_nums_.end()) {
      return false;  // beyond the last fence: key not in this table
    }
    *block_idx = static_cast<size_t>(it - fence_nums_.begin());
    return true;
  }
  if (it == fence_nums_.end()) {
    return false;  // beyond the last fence
  }
  *block_idx = static_cast<size_t>(it - fence_nums_.begin());
  return true;
}

bool SSTable::PartitionMayMatch(size_t ordinal, uint64_t hash) const {
  if (ordinal >= partition_handles_.size()) {
    return true;
  }
  BlockCache::Ref ref;
  std::shared_ptr<const Block> owned;
  const Block* block = nullptr;
  if (!GetBlock(partition_handles_[ordinal], &ref, &owned, &block).ok()) {
    return true;  // unreadable partition: never reject
  }
  std::unique_ptr<Iterator> it(block->NewIterator(BytewiseComparator()));
  it->SeekToFirst();
  if (!it->Valid()) {
    return true;
  }
  const Slice blob = it->value();
  const FilterPolicy* policy = options_.filter_policy;
  if (policy == nullptr) {
    return true;
  }
  GetPerfContext()->filter_probe_count++;
  const bool maybe = policy->HashMayMatch(hash, blob);
  if (!maybe) {
    GetPerfContext()->filter_negative_count++;
  }
  return maybe;
}

Status SSTable::InternalGet(
    const Slice& target, const Slice& searchable,
    const std::function<void(const Slice& key, const Slice& value)>& handler,
    bool use_filter, bool* filter_skipped) const {
  const uint32_t hash32 = Hash32(searchable);
  const uint64_t hash64 = Hash64(searchable);
  if (filter_skipped != nullptr) {
    *filter_skipped = false;
  }

  // Learned fast path: model -> candidate block.
  if (plr_ != nullptr || spline_ != nullptr) {
    size_t block_idx;
    if (!LearnedFindBlock(searchable, &block_idx)) {
      // Numeric fences say the key is beyond this table, but numeric order
      // is only trustworthy if fences were trained; fall through only when
      // training succeeded (fence_nums_ non-empty).
      if (!fence_nums_.empty()) {
        return Status::OK();
      }
    } else {
      counters_.learned_index_seeks++;
      GetPerfContext()->learned_index_seek_count++;
      if (use_filter && has_partitioned_filter() &&
          !PartitionMayMatch(block_idx, hash64)) {
        if (filter_skipped != nullptr) {
          *filter_skipped = true;
        }
        return Status::OK();
      }
      Slice handle_value(block_handles_[block_idx]);
      BlockHandle handle;
      Status s = handle.DecodeFrom(&handle_value);
      if (!s.ok()) {
        return s;
      }
      BlockCache::Ref ref;
      std::shared_ptr<const Block> owned;
      const Block* block = nullptr;
      s = GetBlock(handle, &ref, &owned, &block);
      if (!s.ok()) {
        return s;
      }
      std::unique_ptr<Block::BlockIterator> iter(
          block->NewIterator(options_.comparator));
      iter->Seek(target);
      if (iter->Valid()) {
        handler(iter->key(), iter->value());
        return iter->status();
      }
      if (!iter->status().ok()) {
        return iter->status();
      }
      // Numeric tie-breaking can land one block early (same user key,
      // different sequence numbers); fall through to the exact path.
    }
  }

  // Exact path: binary search the index block for the fence >= target.
  GetPerfContext()->index_seek_count++;
  std::unique_ptr<Iterator> index_iter(
      index_block_->NewIterator(options_.comparator));
  index_iter->Seek(target);
  if (!index_iter->Valid()) {
    return index_iter->status();  // past the last block: absent
  }
  Slice handle_value = index_iter->value();
  BlockHandle handle;
  Status s = handle.DecodeFrom(&handle_value);
  if (!s.ok()) {
    return s;
  }
  // Partitioned filter probe (§II-2 [89]): reject before paying for the
  // data block.
  if (use_filter && has_partitioned_filter()) {
    auto ord = block_offset_to_ordinal_.find(handle.offset());
    if (ord != block_offset_to_ordinal_.end() &&
        !PartitionMayMatch(ord->second, hash64)) {
      if (filter_skipped != nullptr) {
        *filter_skipped = true;
      }
      return Status::OK();
    }
  }
  BlockCache::Ref ref;
  std::shared_ptr<const Block> owned;
  const Block* block = nullptr;
  s = GetBlock(handle, &ref, &owned, &block);
  if (!s.ok()) {
    return s;
  }

  std::unique_ptr<Block::BlockIterator> iter(
      block->NewIterator(options_.comparator));

  // In-block hash index fast path (tutorial §II-4): resolves the restart
  // group of the newest version of `searchable` in O(1), or proves absence.
  uint32_t restart;
  switch (block->HashLookup(hash32, &restart)) {
    case Block::HashResult::kAbsent:
      counters_.hash_index_absent++;
      GetPerfContext()->hash_index_absent_count++;
      return Status::OK();
    case Block::HashResult::kFound:
      counters_.hash_index_hits++;
      GetPerfContext()->hash_index_hit_count++;
      iter->SeekToRestart(restart);
      while (iter->Valid() &&
             options_.comparator->Compare(iter->key(), target) < 0) {
        iter->Next();
      }
      if (!iter->Valid() && iter->status().ok()) {
        // The sought version can spill into the next block when a user
        // key's versions straddle a block boundary (snapshot reads).
        index_iter->Next();
        if (index_iter->Valid()) {
          handle_value = index_iter->value();
          s = handle.DecodeFrom(&handle_value);
          if (!s.ok()) {
            return s;
          }
          BlockCache::Ref next_ref;
          std::shared_ptr<const Block> next_owned;
          s = GetBlock(handle, &next_ref, &next_owned, &block);
          if (!s.ok()) {
            return s;
          }
          ref = std::move(next_ref);
          owned = std::move(next_owned);
          iter.reset(block->NewIterator(options_.comparator));
          iter->Seek(target);
        }
      }
      break;
    case Block::HashResult::kCollision:
    case Block::HashResult::kNoIndex:
      iter->Seek(target);
      break;
  }

  if (iter->Valid()) {
    handler(iter->key(), iter->value());
  }
  return iter->status();
}

void SSTable::MultiGetFromBlock(
    const BlockHandle& handle,
    std::span<BatchGetContext* const> keys) const {
  BlockCache::Ref ref;
  std::shared_ptr<const Block> owned;
  const Block* block = nullptr;
  Status s = GetBlock(handle, &ref, &owned, &block,
                      /*access_weight=*/keys.size());
  if (!s.ok()) {
    // Corruption contract: a bad block fails only the keys it serves; the
    // rest of the batch is untouched.
    for (BatchGetContext* ctx : keys) {
      ctx->status = s;
    }
    return;
  }
  // Every key past the first rides a block another key already paid for.
  GetPerfContext()->multiget_coalesced_block_hits += keys.size() - 1;
  std::unique_ptr<Block::BlockIterator> iter(
      block->NewIterator(options_.comparator));
  for (BatchGetContext* ctx : keys) {
    iter->Seek(ctx->target);
    if (!iter->status().ok()) {
      ctx->status = iter->status();
      continue;
    }
    // The fence pointer guarantees this block's largest key >= target, so
    // the seek always lands on an entry; the handler's user-key comparison
    // decides whether it actually covers the sought key.
    if (iter->Valid()) {
      ctx->handler(ctx->arg, iter->key(), iter->value());
    }
  }
}

void SSTable::MultiGet(std::span<BatchGetContext* const> keys,
                       bool use_filter) const {
  // Phase 1 (index pass): map every key to its candidate data block via
  // the fence pointers and prune with the partitioned filter, all before
  // any data-block I/O. The batch path intentionally uses plain binary
  // fence search — no learned index or in-block hash index — because keys
  // sharing a block must resolve against one iterator.
  struct BlockWork {
    BlockHandle handle;
    std::vector<BatchGetContext*> keys;
  };
  std::vector<BlockWork> work;
  std::unordered_map<uint64_t, size_t> offset_to_work;

  std::unique_ptr<Iterator> index_iter(
      index_block_->NewIterator(options_.comparator));
  for (BatchGetContext* ctx : keys) {
    ctx->filter_pruned = false;
    ctx->status = Status::OK();
    GetPerfContext()->index_seek_count++;
    index_iter->Seek(ctx->target);
    if (!index_iter->Valid()) {
      // Past the last fence (absent from this table), or a corrupt index:
      // either way the iterator's status is this key's answer.
      ctx->status = index_iter->status();
      continue;
    }
    Slice handle_value = index_iter->value();
    BlockHandle handle;
    Status s = handle.DecodeFrom(&handle_value);
    if (!s.ok()) {
      ctx->status = s;
      continue;
    }
    if (use_filter && has_partitioned_filter()) {
      auto ord = block_offset_to_ordinal_.find(handle.offset());
      if (ord != block_offset_to_ordinal_.end() &&
          !PartitionMayMatch(ord->second, ctx->hash)) {
        ctx->filter_pruned = true;
        GetPerfContext()->multiget_filter_pruned++;
        continue;
      }
    }
    auto [it, inserted] = offset_to_work.emplace(handle.offset(), work.size());
    if (inserted) {
      work.push_back(BlockWork{handle, {}});
    }
    work[it->second].keys.push_back(ctx);
  }

  // Phase 2 (block pass): fetch each distinct block exactly once, in file
  // order (sequential-friendly on a miss-heavy batch), and resolve all of
  // its keys against the one decoded copy.
  std::sort(work.begin(), work.end(),
            [](const BlockWork& a, const BlockWork& b) {
              return a.handle.offset() < b.handle.offset();
            });
  for (const BlockWork& w : work) {
    MultiGetFromBlock(w.handle, w.keys);
  }
}

size_t SSTable::PrefetchBlocks(size_t budget_bytes) const {
  if (block_cache_ == nullptr) {
    return 0;
  }
  size_t loaded = 0;
  std::unique_ptr<Iterator> index_iter(
      index_block_->NewIterator(options_.comparator));
  for (index_iter->SeekToFirst();
       index_iter->Valid() && loaded < budget_bytes; index_iter->Next()) {
    Slice handle_value = index_iter->value();
    BlockHandle handle;
    if (!handle.DecodeFrom(&handle_value).ok()) {
      break;
    }
    BlockCache::Ref ref;
    std::shared_ptr<const Block> owned;
    const Block* block = nullptr;
    if (!GetBlock(handle, &ref, &owned, &block).ok()) {
      break;
    }
    loaded += static_cast<size_t>(handle.size());
  }
  return loaded;
}

size_t SSTable::IndexMemoryUsage() const {
  size_t total = index_block_->size() + filter_data_.size() +
                 range_filter_data_.size();
  total += fence_nums_.capacity() * sizeof(uint64_t);
  for (const auto& h : block_handles_) {
    total += h.capacity();
  }
  if (plr_ != nullptr) {
    total += plr_->MemoryUsage();
  }
  if (spline_ != nullptr) {
    total += spline_->MemoryUsage();
  }
  return total;
}

}  // namespace lsmlab
