#include <algorithm>
#include <cmath>
#include <cstring>

#include "filter/filter_policy.h"
#include "util/coding.h"
#include "util/hash.h"

namespace lsmlab {

namespace {

/// Standard Bloom filter with double hashing (Kirsch-Mitzenmacher): probe
/// positions h + i*delta derived from one 64-bit key hash, so a lookup
/// hashes once regardless of k.
///
/// Serialized layout: bit array | fixed32 num_bits | uint8 k.
/// bits_per_key <= 0 produces an empty filter that never rejects — that is
/// how Monkey "turns off" filters at the largest level.
class BloomFilterPolicy : public FilterPolicy {
 public:
  explicit BloomFilterPolicy(double bits_per_key)
      : bits_per_key_(bits_per_key) {
    // k = bits_per_key * ln2 minimizes FPR.
    k_ = static_cast<int>(std::lround(bits_per_key * 0.69314718056));
    k_ = std::clamp(k_, 1, 30);
  }

  const char* Name() const override { return "lsmlab.Bloom"; }

  void CreateFilter(const Slice* keys, size_t n,
                    std::string* dst) const override {
    if (bits_per_key_ <= 0 || n == 0) {
      return;  // empty filter: KeyMayMatch always returns true
    }
    size_t bits = static_cast<size_t>(
        std::ceil(static_cast<double>(n) * bits_per_key_));
    bits = std::max<size_t>(bits, 64);
    const size_t bytes = (bits + 7) / 8;
    bits = bytes * 8;

    const size_t init_size = dst->size();
    dst->resize(init_size + bytes, 0);
    char* array = dst->data() + init_size;
    for (size_t i = 0; i < n; i++) {
      uint64_t h = Hash64(keys[i]);
      const uint64_t delta = Remix64(h) | 1;  // odd stride
      for (int j = 0; j < k_; j++) {
        const uint64_t bitpos = h % bits;
        array[bitpos / 8] |= (1 << (bitpos % 8));
        h += delta;
      }
    }
    PutFixed32(dst, static_cast<uint32_t>(bits));
    dst->push_back(static_cast<char>(k_));
  }

  bool KeyMayMatch(const Slice& key, const Slice& filter) const override {
    return HashMayMatch(Hash64(key), filter);
  }

  bool HashMayMatch(uint64_t hash, const Slice& filter) const override {
    if (filter.size() < 5) {
      return true;  // empty or malformed filter never rejects
    }
    const size_t len = filter.size();
    // bounds: len >= 5 was checked on entry.
    const uint32_t bits = DecodeFixed32(filter.data() + len - 5);
    const int k = static_cast<unsigned char>(filter[len - 1]);
    if (k > 30 || bits == 0 || (bits + 7) / 8 + 5 != len) {
      return true;
    }
    const char* array = filter.data();
    uint64_t h = hash;
    const uint64_t delta = Remix64(h) | 1;
    for (int j = 0; j < k; j++) {
      const uint64_t bitpos = h % bits;
      if ((array[bitpos / 8] & (1 << (bitpos % 8))) == 0) {
        return false;
      }
      h += delta;
    }
    return true;
  }

  bool SupportsHashProbe() const override { return true; }

 private:
  double bits_per_key_;
  int k_;
};

}  // namespace

const FilterPolicy* NewBloomFilterPolicy(double bits_per_key) {
  return new BloomFilterPolicy(bits_per_key);
}

}  // namespace lsmlab
