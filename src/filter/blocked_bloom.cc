#include <algorithm>
#include <cmath>
#include <cstring>

#include "filter/filter_policy.h"
#include "util/coding.h"
#include "util/hash.h"

namespace lsmlab {

namespace {

constexpr size_t kCacheLineBytes = 64;
constexpr size_t kCacheLineBits = kCacheLineBytes * 8;

/// Cache-line-blocked Bloom filter [Putze et al., JEA'09]: a key's k probe
/// bits all land inside one 64-byte line, so a negative lookup costs one
/// cache miss instead of k. The price is a slightly higher false-positive
/// rate at equal space because keys are unevenly distributed over lines
/// (tutorial §II-2, RocksDB's "block-based filter").
///
/// Serialized layout: lines | fixed32 num_lines | uint8 k.
class BlockedBloomFilterPolicy : public FilterPolicy {
 public:
  explicit BlockedBloomFilterPolicy(double bits_per_key)
      : bits_per_key_(bits_per_key) {
    k_ = static_cast<int>(std::lround(bits_per_key * 0.69314718056));
    k_ = std::clamp(k_, 1, 30);
  }

  const char* Name() const override { return "lsmlab.BlockedBloom"; }

  void CreateFilter(const Slice* keys, size_t n,
                    std::string* dst) const override {
    if (bits_per_key_ <= 0 || n == 0) {
      return;
    }
    const double total_bits = static_cast<double>(n) * bits_per_key_;
    uint32_t num_lines = static_cast<uint32_t>(
        std::max(1.0, std::ceil(total_bits / kCacheLineBits)));

    const size_t init_size = dst->size();
    dst->resize(init_size + num_lines * kCacheLineBytes, 0);
    char* base = dst->data() + init_size;
    for (size_t i = 0; i < n; i++) {
      const uint64_t h = Hash64(keys[i]);
      AddHash(h, base, num_lines);
    }
    PutFixed32(dst, num_lines);
    dst->push_back(static_cast<char>(k_));
  }

  bool KeyMayMatch(const Slice& key, const Slice& filter) const override {
    return HashMayMatch(Hash64(key), filter);
  }

  bool HashMayMatch(uint64_t hash, const Slice& filter) const override {
    if (filter.size() < 5) {
      return true;
    }
    const size_t len = filter.size();
    // bounds: len >= 5 was checked on entry.
    const uint32_t num_lines = DecodeFixed32(filter.data() + len - 5);
    const int k = static_cast<unsigned char>(filter[len - 1]);
    if (k > 30 || num_lines == 0 ||
        num_lines * kCacheLineBytes + 5 != len) {
      return true;
    }
    const char* line =
        filter.data() + (hash % num_lines) * kCacheLineBytes;
    uint64_t h = Remix64(hash);
    for (int j = 0; j < k; j++) {
      const uint32_t bitpos = h % kCacheLineBits;
      if ((line[bitpos / 8] & (1 << (bitpos % 8))) == 0) {
        return false;
      }
      h = (h >> 9) | (h << 55);  // cheap in-register rotation per probe
    }
    return true;
  }

  bool SupportsHashProbe() const override { return true; }

 private:
  void AddHash(uint64_t hash, char* base, uint32_t num_lines) const {
    char* line = base + (hash % num_lines) * kCacheLineBytes;
    uint64_t h = Remix64(hash);
    for (int j = 0; j < k_; j++) {
      const uint32_t bitpos = h % kCacheLineBits;
      line[bitpos / 8] |= (1 << (bitpos % 8));
      h = (h >> 9) | (h << 55);
    }
  }

  double bits_per_key_;
  int k_;
};

}  // namespace

const FilterPolicy* NewBlockedBloomFilterPolicy(double bits_per_key) {
  return new BlockedBloomFilterPolicy(bits_per_key);
}

}  // namespace lsmlab
