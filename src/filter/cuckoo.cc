#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "filter/filter_policy.h"
#include "util/coding.h"
#include "util/hash.h"
#include "util/random.h"

namespace lsmlab {

namespace {

constexpr int kSlotsPerBucket = 4;
constexpr int kMaxKicks = 500;

/// Cuckoo filter [Fan et al., CoNEXT'14]: partial-key cuckoo hashing of
/// f-bit fingerprints into 4-way buckets. At low target FPR it is smaller
/// than a Bloom filter (load factor ~95%, bits/key ~ (f+3)/0.95 vs
/// 1.44*log2(1/fpr)) and supports deletes (unused here; SSTable filters
/// are immutable). Used as the Bloom replacement of SlimDB and Chucky
/// (tutorial §II-2).
///
/// Serialized layout: packed fingerprint array | fixed32 num_buckets |
/// uint8 fingerprint_bits | uint8 flags (bit0 = saturated).
class CuckooFilterPolicy : public FilterPolicy {
 public:
  explicit CuckooFilterPolicy(size_t fingerprint_bits)
      : fp_bits_(std::clamp<size_t>(fingerprint_bits, 2, 32)) {}

  const char* Name() const override { return "lsmlab.Cuckoo"; }

  void CreateFilter(const Slice* keys, size_t n,
                    std::string* dst) const override {
    if (n == 0) {
      return;
    }
    // Power-of-two bucket count so the partner-bucket XOR is an involution.
    const double target_load = 0.84;
    uint64_t min_buckets = static_cast<uint64_t>(std::ceil(
        static_cast<double>(n) / (kSlotsPerBucket * target_load)));
    uint64_t num_buckets = 1;
    while (num_buckets < min_buckets) {
      num_buckets <<= 1;
    }

    std::vector<uint32_t> slots(num_buckets * kSlotsPerBucket, 0);
    bool saturated = false;
    Random rng(0xc0ffee);
    for (size_t i = 0; i < n && !saturated; i++) {
      const uint64_t h = Hash64(keys[i]);
      uint32_t fp = Fingerprint(h);
      uint64_t b = BucketIndex(h, num_buckets);
      if (!Insert(slots.data(), num_buckets, b, fp, &rng)) {
        saturated = true;  // degrade to always-maybe
      }
    }

    const size_t init_size = dst->size();
    const uint64_t total_slots = num_buckets * kSlotsPerBucket;
    const size_t array_bytes = (total_slots * fp_bits_ + 7) / 8;
    dst->resize(init_size + array_bytes, 0);
    char* array = dst->data() + init_size;
    for (uint64_t s = 0; s < total_slots; s++) {
      WriteSlot(array, s, slots[s]);
    }
    PutFixed32(dst, static_cast<uint32_t>(num_buckets));
    dst->push_back(static_cast<char>(fp_bits_));
    dst->push_back(saturated ? 1 : 0);
  }

  bool KeyMayMatch(const Slice& key, const Slice& filter) const override {
    return HashMayMatch(Hash64(key), filter);
  }

  bool HashMayMatch(uint64_t hash, const Slice& filter) const override {
    if (filter.size() < 6) {
      return true;
    }
    const size_t len = filter.size();
    const uint8_t flags = static_cast<uint8_t>(filter[len - 1]);
    const size_t fp_bits = static_cast<uint8_t>(filter[len - 2]);
    // bounds: len >= 6 was checked on entry.
    const uint64_t num_buckets = DecodeFixed32(filter.data() + len - 6);
    if ((flags & 1) != 0 || fp_bits < 2 || fp_bits > 32 ||
        num_buckets == 0 || (num_buckets & (num_buckets - 1)) != 0) {
      return true;  // saturated or malformed: never reject
    }
    const size_t array_bytes =
        (num_buckets * kSlotsPerBucket * fp_bits + 7) / 8;
    if (array_bytes + 6 != len) {
      return true;
    }
    const char* array = filter.data();
    const uint32_t fp = FingerprintFor(hash, fp_bits);
    const uint64_t b1 = BucketIndex(hash, num_buckets);
    const uint64_t b2 = AltBucket(b1, fp, num_buckets);
    for (int s = 0; s < kSlotsPerBucket; s++) {
      if (ReadSlot(array, b1 * kSlotsPerBucket + s, fp_bits) == fp ||
          ReadSlot(array, b2 * kSlotsPerBucket + s, fp_bits) == fp) {
        return true;
      }
    }
    return false;
  }

  bool SupportsHashProbe() const override { return true; }

 private:
  uint32_t Fingerprint(uint64_t hash) const {
    return FingerprintFor(hash, fp_bits_);
  }

  static uint32_t FingerprintFor(uint64_t hash, size_t fp_bits) {
    // Fingerprint from high bits (bucket index uses low bits); never 0,
    // which marks an empty slot.
    uint32_t fp = static_cast<uint32_t>(hash >> 32) &
                  ((fp_bits >= 32) ? 0xFFFFFFFFu
                                   : ((1u << fp_bits) - 1));
    return fp == 0 ? 1 : fp;
  }

  static uint64_t BucketIndex(uint64_t hash, uint64_t num_buckets) {
    return hash & (num_buckets - 1);
  }

  static uint64_t AltBucket(uint64_t bucket, uint32_t fp,
                            uint64_t num_buckets) {
    // Partner bucket by fingerprint-hash XOR (involutive for pow2 sizes).
    return (bucket ^ (static_cast<uint64_t>(fp) * 0x5bd1e995)) &
           (num_buckets - 1);
  }

  static bool TryBucket(uint32_t* slots, uint64_t bucket, uint32_t fp) {
    uint32_t* base = slots + bucket * kSlotsPerBucket;
    for (int s = 0; s < kSlotsPerBucket; s++) {
      if (base[s] == 0 || base[s] == fp) {
        base[s] = fp;
        return true;
      }
    }
    return false;
  }

  bool Insert(uint32_t* slots, uint64_t num_buckets, uint64_t bucket,
              uint32_t fp, Random* rng) const {
    const uint64_t b1 = bucket;
    const uint64_t b2 = AltBucket(b1, fp, num_buckets);
    if (TryBucket(slots, b1, fp) || TryBucket(slots, b2, fp)) {
      return true;
    }
    // Random-walk eviction: displace a victim from the current bucket and
    // retry the victim at its partner (standard partial-key cuckoo).
    uint64_t b = rng->OneIn(2) ? b1 : b2;
    for (int kick = 0; kick < kMaxKicks; kick++) {
      uint32_t* base = slots + b * kSlotsPerBucket;
      const int victim = static_cast<int>(rng->Uniform(kSlotsPerBucket));
      std::swap(fp, base[victim]);
      b = AltBucket(b, fp, num_buckets);
      if (TryBucket(slots, b, fp)) {
        return true;
      }
    }
    return false;
  }

  void WriteSlot(char* array, uint64_t slot, uint32_t value) const {
    const uint64_t bit = slot * fp_bits_;
    for (size_t i = 0; i < fp_bits_; i++) {
      if (value & (1u << i)) {
        array[(bit + i) / 8] |= (1 << ((bit + i) % 8));
      }
    }
  }

  static uint32_t ReadSlot(const char* array, uint64_t slot, size_t fp_bits) {
    const uint64_t bit = slot * fp_bits;
    uint32_t value = 0;
    for (size_t i = 0; i < fp_bits; i++) {
      if (array[(bit + i) / 8] & (1 << ((bit + i) % 8))) {
        value |= (1u << i);
      }
    }
    return value;
  }

  size_t fp_bits_;
};

}  // namespace

const FilterPolicy* NewCuckooFilterPolicy(size_t fingerprint_bits) {
  return new CuckooFilterPolicy(fingerprint_bits);
}

}  // namespace lsmlab
