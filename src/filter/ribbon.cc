#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "filter/filter_policy.h"
#include "util/coding.h"
#include "util/hash.h"

namespace lsmlab {

namespace {

constexpr int kBandWidth = 64;  // coefficient band width w

/// Standard ribbon filter [Dillinger & Walzer, 2021]: each key defines a
/// linear equation over GF(2) — a 64-bit coefficient band starting at a
/// hashed position — whose right-hand side is the key's r-bit fingerprint.
/// Incremental Gaussian elimination ("banding") solves the system at build
/// time; back-substitution yields an m x r solution matrix stored as r
/// bit-columns. A query recomputes the band and XORs the selected solution
/// rows; equality with the fingerprint means "maybe present".
///
/// Space is ~(1+overhead)*r bits/key vs Bloom's 1.44*r at the same FPR of
/// 2^-r — the space/CPU tradeoff of tutorial §II-2.
///
/// Serialized layout: r columns of ceil(m/8) bytes | fixed32 m |
/// uint8 r | uint8 seed | uint8 ok-flag.
class RibbonFilterPolicy : public FilterPolicy {
 public:
  explicit RibbonFilterPolicy(double bits_per_key) {
    // All space goes into r bits per slot with ~5% slot overhead.
    r_ = std::clamp<int>(
        static_cast<int>(std::lround(bits_per_key / 1.05)), 1, 24);
  }

  const char* Name() const override { return "lsmlab.Ribbon"; }

  void CreateFilter(const Slice* keys, size_t n,
                    std::string* dst) const override {
    if (n == 0) {
      return;
    }
    double overhead = 1.05;
    for (uint8_t seed = 0; seed < 4; seed++, overhead += 0.05) {
      const uint32_t m = static_cast<uint32_t>(
          std::ceil(n * overhead)) + kBandWidth;
      if (TryBuild(keys, n, m, seed, dst)) {
        return;
      }
    }
    // Could not band the system (astronomically unlikely): emit a filter
    // flagged unusable so queries degrade to always-maybe.
    PutFixed32(dst, 0);
    dst->push_back(static_cast<char>(r_));
    dst->push_back(0);
    dst->push_back(0);  // ok-flag = 0
  }

  bool KeyMayMatch(const Slice& key, const Slice& filter) const override {
    return HashMayMatch(Hash64(key), filter);
  }

  bool HashMayMatch(uint64_t hash, const Slice& filter) const override {
    if (filter.size() < 7) {
      return true;
    }
    const size_t len = filter.size();
    const uint8_t ok = static_cast<uint8_t>(filter[len - 1]);
    const uint8_t seed = static_cast<uint8_t>(filter[len - 2]);
    const int r = static_cast<uint8_t>(filter[len - 3]);
    // bounds: len >= 7 was checked on entry.
    const uint32_t m = DecodeFixed32(filter.data() + len - 7);
    if (!ok || r < 1 || r > 24 || m < kBandWidth) {
      return true;
    }
    const size_t column_bytes = (m + 7) / 8;
    if (column_bytes * r + 7 != len) {
      return true;
    }

    uint32_t start;
    uint64_t coeff;
    KeyEquation(hash, seed, m, &start, &coeff);
    const uint32_t expected = FingerprintFor(hash, r);

    uint32_t actual = 0;
    for (int bit = 0; bit < r; bit++) {
      const char* column = filter.data() + bit * column_bytes;
      // Parity of (coeff AND column[start .. start+63]).
      uint64_t window = LoadWindow(column, column_bytes, start);
      actual |= static_cast<uint32_t>(Parity(window & coeff)) << bit;
    }
    return actual == expected;
  }

  bool SupportsHashProbe() const override { return true; }

 private:
  static void KeyEquation(uint64_t hash, uint8_t seed, uint32_t m,
                          uint32_t* start, uint64_t* coeff) {
    uint64_t h = Remix64(hash + 0x9E3779B97f4A7C15ull * (seed + 1));
    *start = static_cast<uint32_t>(
        (static_cast<unsigned __int128>(h) * (m - kBandWidth + 1)) >> 64);
    uint64_t c = Remix64(h + 1);
    *coeff = c | 1;  // leading coefficient at `start` must be 1
  }

  static uint32_t FingerprintFor(uint64_t hash, int r) {
    return static_cast<uint32_t>(Remix64(hash ^ 0xdeadbeef)) &
           ((1u << r) - 1);
  }

  static uint64_t LoadWindow(const char* column, size_t column_bytes,
                             uint32_t start) {
    // 64-bit window of column bits [start, start+64).
    uint64_t window = 0;
    const size_t first_byte = start / 8;
    const int shift = start % 8;
    unsigned char buf[9] = {0};
    const size_t avail = std::min<size_t>(9, column_bytes - first_byte);
    memcpy(buf, column + first_byte, avail);
    uint64_t lo;
    memcpy(&lo, buf, 8);
    window = lo >> shift;
    if (shift != 0) {
      window |= static_cast<uint64_t>(buf[8]) << (64 - shift);
    }
    return window;
  }

  static int Parity(uint64_t x) { return __builtin_parityll(x); }

  bool TryBuild(const Slice* keys, size_t n, uint32_t m, uint8_t seed,
                std::string* dst) const {
    // Banding: rows[i] holds the reduced coefficient vector whose leading
    // 1 is at position i; rhs[i] the reduced fingerprint.
    std::vector<uint64_t> rows(m, 0);
    std::vector<uint32_t> rhs(m, 0);

    for (size_t i = 0; i < n; i++) {
      const uint64_t hash = Hash64(keys[i]);
      uint32_t start;
      uint64_t coeff;
      KeyEquation(hash, seed, m, &start, &coeff);
      uint32_t fp = FingerprintFor(hash, r_);

      uint32_t pos = start;
      while (coeff != 0) {
        if (rows[pos] == 0) {
          rows[pos] = coeff;
          rhs[pos] = fp;
          break;
        }
        coeff ^= rows[pos];
        fp ^= rhs[pos];
        if (coeff == 0) {
          if (fp != 0) {
            return false;  // inconsistent: duplicate key w/ distinct rhs
                           // cannot happen, but a 2^-r collision can
          }
          break;  // redundant equation; key already covered
        }
        const int shift = __builtin_ctzll(coeff);
        coeff >>= shift;
        pos += shift;
        if (pos >= m) {
          return false;  // fell off the band
        }
      }
    }

    // Back-substitution, last row to first: solution[pos] (r bits).
    std::vector<uint32_t> solution(m, 0);
    for (uint32_t pos = m; pos-- > 0;) {
      if (rows[pos] == 0) {
        solution[pos] = 0;  // free variable
        continue;
      }
      uint32_t value = rhs[pos];
      uint64_t coeff = rows[pos];
      // Leading coefficient is bit 0 (== position pos); fold in the rest.
      for (int j = 1; j < kBandWidth && pos + j < m; j++) {
        if ((coeff >> j) & 1) {
          value ^= solution[pos + j];
        }
      }
      solution[pos] = value;
    }

    // Serialize as r bit-columns.
    const size_t column_bytes = (m + 7) / 8;
    const size_t init_size = dst->size();
    dst->resize(init_size + column_bytes * r_, 0);
    char* base = dst->data() + init_size;
    for (uint32_t pos = 0; pos < m; pos++) {
      const uint32_t v = solution[pos];
      for (int bit = 0; bit < r_; bit++) {
        if ((v >> bit) & 1) {
          char* column = base + bit * column_bytes;
          column[pos / 8] |= (1 << (pos % 8));
        }
      }
    }
    PutFixed32(dst, m);
    dst->push_back(static_cast<char>(r_));
    dst->push_back(static_cast<char>(seed));
    dst->push_back(1);  // ok-flag
    return true;
  }

  int r_;
};

}  // namespace

const FilterPolicy* NewRibbonFilterPolicy(double bits_per_key) {
  return new RibbonFilterPolicy(bits_per_key);
}

}  // namespace lsmlab
