#ifndef LSMLAB_FILTER_FILTER_POLICY_H_
#define LSMLAB_FILTER_FILTER_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace lsmlab {

/// Approximate-membership filter over the keys of one sorted run.
///
/// One filter blob is built per SSTable from all its (searchable) keys and
/// stored in the table's filter block; point lookups probe it before
/// touching any data block (tutorial §II-2). Implementations: standard
/// Bloom, register-blocked Bloom, cuckoo, ribbon, elastic (multi-unit).
///
/// All implementations derive their probe positions from the 64-bit
/// Hash64() of the key, which enables the shared-hash-computation
/// optimization [Zhu et al., DAMON'21]: the engine hashes the lookup key
/// once and calls HashMayMatch() on every level's filter.
class FilterPolicy {
 public:
  virtual ~FilterPolicy() = default;

  /// Name persisted in the table; probing with a mismatched policy is
  /// detected and treated as "no filter".
  virtual const char* Name() const = 0;

  /// Appends a filter for keys[0..n-1] to *dst.
  virtual void CreateFilter(const Slice* keys, size_t n,
                            std::string* dst) const = 0;

  /// May return false only if `key` was not passed to CreateFilter.
  virtual bool KeyMayMatch(const Slice& key, const Slice& filter) const = 0;

  /// Hash-probe variant used by the shared-hash read path; `hash` must be
  /// Hash64(key). Default falls back to "maybe" (no filtering).
  virtual bool HashMayMatch(uint64_t hash, const Slice& filter) const {
    (void)hash;
    (void)filter;
    return true;
  }

  /// True when HashMayMatch is a faithful implementation (not the
  /// pessimistic default), letting the read path skip re-hashing.
  virtual bool SupportsHashProbe() const { return false; }
};

/// Standard Bloom filter with double hashing; `bits_per_key` may be
/// fractional (Monkey hands out fractional budgets per level).
const FilterPolicy* NewBloomFilterPolicy(double bits_per_key);

/// Register-blocked Bloom filter: all probes of a key land in one 64-byte
/// cache line (one cache miss per query; slightly higher FPR at equal
/// space) [Putze et al.; RocksDB "block-based filter"].
const FilterPolicy* NewBlockedBloomFilterPolicy(double bits_per_key);

/// Cuckoo filter storing f-bit fingerprints in 4-way buckets
/// [Fan et al., CoNEXT'14]; Bloom replacement used by SlimDB and Chucky.
const FilterPolicy* NewCuckooFilterPolicy(size_t fingerprint_bits);

/// Standard ribbon filter (Gaussian elimination over a banded linear
/// system) [Dillinger & Walzer '21]: ~30% smaller than Bloom at equal FPR,
/// more CPU at build time.
const FilterPolicy* NewRibbonFilterPolicy(double bits_per_key);

/// ElasticBF-style modular filter: `units` independent small Bloom filters
/// per run; cold runs can disable some units to save memory at the cost of
/// FPR [Li et al., ATC'19; Mun et al., ADMS'22].
const FilterPolicy* NewElasticBloomFilterPolicy(double bits_per_key,
                                                int units,
                                                int enabled_units);

}  // namespace lsmlab

#endif  // LSMLAB_FILTER_FILTER_POLICY_H_
