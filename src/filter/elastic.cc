#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "filter/filter_policy.h"
#include "util/coding.h"
#include "util/hash.h"

namespace lsmlab {

namespace {

/// ElasticBF-style modular Bloom filter [Li et al., ATC'19; Mun et al.,
/// ADMS'22]: the per-run budget is split into `units` independent small
/// Bloom filters; a probe consults only `enabled_units` of them. Hot runs
/// enable all units (lowest FPR); cold runs keep fewer resident, trading
/// false positives for memory (tutorial §II-2 "access skew").
///
/// The units are built over the same keys with different hash seeds, so
/// FPR(enabled) = fpr_unit^enabled.
///
/// Serialized layout: unit blobs | fixed32 unit_size * units |
/// fixed32 unit_size | uint8 units | uint8 k.
class ElasticBloomFilterPolicy : public FilterPolicy {
 public:
  ElasticBloomFilterPolicy(double bits_per_key, int units, int enabled_units)
      : bits_per_key_(bits_per_key),
        units_(std::clamp(units, 1, 8)),
        enabled_units_(std::clamp(enabled_units, 1, units_)) {
    const double unit_bits = bits_per_key_ / units_;
    k_ = std::clamp(
        static_cast<int>(std::lround(unit_bits * 0.69314718056)), 1, 30);
  }

  const char* Name() const override { return "lsmlab.ElasticBloom"; }

  void CreateFilter(const Slice* keys, size_t n,
                    std::string* dst) const override {
    if (bits_per_key_ <= 0 || n == 0) {
      return;
    }
    const double unit_bits_per_key = bits_per_key_ / units_;
    size_t bits = static_cast<size_t>(
        std::ceil(static_cast<double>(n) * unit_bits_per_key));
    bits = std::max<size_t>(bits, 64);
    const size_t unit_bytes = (bits + 7) / 8;
    bits = unit_bytes * 8;

    const size_t init_size = dst->size();
    dst->resize(init_size + unit_bytes * units_, 0);
    for (int u = 0; u < units_; u++) {
      char* array = dst->data() + init_size + u * unit_bytes;
      for (size_t i = 0; i < n; i++) {
        uint64_t h = UnitHash(Hash64(keys[i]), u);
        const uint64_t delta = Remix64(h) | 1;
        for (int j = 0; j < k_; j++) {
          const uint64_t bitpos = h % bits;
          array[bitpos / 8] |= (1 << (bitpos % 8));
          h += delta;
        }
      }
    }
    PutFixed32(dst, static_cast<uint32_t>(unit_bytes));
    dst->push_back(static_cast<char>(units_));
    dst->push_back(static_cast<char>(k_));
  }

  bool KeyMayMatch(const Slice& key, const Slice& filter) const override {
    return HashMayMatch(Hash64(key), filter);
  }

  bool HashMayMatch(uint64_t hash, const Slice& filter) const override {
    if (filter.size() < 6) {
      return true;
    }
    const size_t len = filter.size();
    const int k = static_cast<unsigned char>(filter[len - 1]);
    const int units = static_cast<unsigned char>(filter[len - 2]);
    // bounds: len >= 6 was checked on entry.
    const uint32_t unit_bytes = DecodeFixed32(filter.data() + len - 6);
    if (k > 30 || units < 1 || units > 8 ||
        static_cast<size_t>(unit_bytes) * units + 6 != len) {
      return true;
    }
    const uint64_t bits = static_cast<uint64_t>(unit_bytes) * 8;
    const int probe_units = std::min(enabled_units_, units);
    for (int u = 0; u < probe_units; u++) {
      const char* array = filter.data() + u * unit_bytes;
      uint64_t h = UnitHash(hash, u);
      const uint64_t delta = Remix64(h) | 1;
      bool match = true;
      for (int j = 0; j < k; j++) {
        const uint64_t bitpos = h % bits;
        if ((array[bitpos / 8] & (1 << (bitpos % 8))) == 0) {
          match = false;
          break;
        }
        h += delta;
      }
      if (!match) {
        return false;
      }
    }
    return true;
  }

  bool SupportsHashProbe() const override { return true; }

 private:
  static uint64_t UnitHash(uint64_t hash, int unit) {
    return Remix64(hash + 0x9E3779B97f4A7C15ull * (unit + 1));
  }

  double bits_per_key_;
  int units_;
  int enabled_units_;
  int k_;
};

}  // namespace

const FilterPolicy* NewElasticBloomFilterPolicy(double bits_per_key,
                                                int units,
                                                int enabled_units) {
  return new ElasticBloomFilterPolicy(bits_per_key, units, enabled_units);
}

}  // namespace lsmlab
