#include "tuning/navigator.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace lsmlab {

WorkloadMix WorkloadMix::Normalized() const {
  WorkloadMix m = *this;
  const double sum =
      m.zero_result_lookups + m.existing_lookups + m.short_scans + m.writes;
  if (sum > 0) {
    m.zero_result_lookups /= sum;
    m.existing_lookups /= sum;
    m.short_scans /= sum;
    m.writes /= sum;
  }
  return m;
}

double WorkloadCost(const LsmDesignSpec& spec, const WorkloadMix& mix,
                    bool monkey_filters) {
  LsmCostModel model(spec);
  const WorkloadMix m = mix.Normalized();
  return m.zero_result_lookups * model.ZeroResultPointLookup(monkey_filters) +
         m.existing_lookups * model.ExistingPointLookup(monkey_filters) +
         m.short_scans * model.ShortScanCost() +
         m.writes * model.WriteCost();
}

std::string DesignCandidate::Describe() const {
  const char* policy = "leveling";
  if (spec.policy == LsmDesignSpec::Policy::kTiering) {
    policy = "tiering";
  } else if (spec.policy == LsmDesignSpec::Policy::kLazyLeveling) {
    policy = "lazy-leveling";
  }
  std::ostringstream out;
  out << policy << " T=" << spec.size_ratio
      << " buffer=" << (spec.buffer_bytes >> 10) << "KiB"
      << " filter_bits=" << spec.filter_bits_per_key << " cost=" << cost;
  return out.str();
}

std::vector<DesignCandidate> NavigateDesignSpace(uint64_t num_entries,
                                                 uint64_t entry_bytes,
                                                 uint64_t memory_bytes,
                                                 const WorkloadMix& mix) {
  std::vector<DesignCandidate> candidates;
  const LsmDesignSpec::Policy policies[] = {
      LsmDesignSpec::Policy::kLeveling,
      LsmDesignSpec::Policy::kTiering,
      LsmDesignSpec::Policy::kLazyLeveling,
  };
  // Memory split sweep: fraction of memory given to the write buffer; the
  // remainder becomes filter bits (tutorial §II-5 interior optimum).
  const double buffer_fractions[] = {0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 0.9};

  for (auto policy : policies) {
    for (int t = 2; t <= 16; t += (t < 8 ? 1 : 2)) {
      for (double frac : buffer_fractions) {
        LsmDesignSpec spec;
        spec.policy = policy;
        spec.size_ratio = t;
        spec.num_entries = num_entries;
        spec.entry_bytes = entry_bytes;
        spec.buffer_bytes = std::max<uint64_t>(
            4096, static_cast<uint64_t>(memory_bytes * frac));
        const double filter_bytes = memory_bytes * (1.0 - frac);
        spec.filter_bits_per_key =
            filter_bytes * 8.0 / static_cast<double>(num_entries);
        DesignCandidate c;
        c.spec = spec;
        c.cost = WorkloadCost(spec, mix);
        candidates.push_back(c);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const DesignCandidate& a, const DesignCandidate& b) {
              return a.cost < b.cost;
            });
  return candidates;
}

}  // namespace lsmlab
