#include "tuning/cost_model.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tuning/monkey.h"

namespace lsmlab {

namespace {
constexpr double kLn2Sq = 0.4804530139182014;
}  // namespace

LsmCostModel::LsmCostModel(const LsmDesignSpec& spec) : spec_(spec) {
  const double t = std::max(2, spec_.size_ratio);
  const double data_bytes =
      static_cast<double>(spec_.num_entries) * spec_.entry_bytes;
  const double ratio = data_bytes / std::max<double>(1, spec_.buffer_bytes);
  levels_ = std::max(1, static_cast<int>(std::ceil(
                            std::log(std::max(ratio, 1.0)) / std::log(t))));
  b_ = static_cast<double>(spec_.page_bytes) /
       std::max<uint64_t>(1, spec_.entry_bytes);
}

double LsmCostModel::RunsAtLevel(int /*level*/) const {
  switch (spec_.policy) {
    case LsmDesignSpec::Policy::kLeveling:
      return 1;
    case LsmDesignSpec::Policy::kTiering:
    case LsmDesignSpec::Policy::kLazyLeveling:
      return spec_.size_ratio - 1;
  }
  return 1;
}

int LsmCostModel::TotalRuns() const {
  switch (spec_.policy) {
    case LsmDesignSpec::Policy::kLeveling:
      return levels_;
    case LsmDesignSpec::Policy::kTiering:
      return levels_ * (spec_.size_ratio - 1);
    case LsmDesignSpec::Policy::kLazyLeveling:
      return (levels_ - 1) * (spec_.size_ratio - 1) + 1;
  }
  return levels_;
}

double LsmCostModel::ZeroResultPointLookup(bool monkey) const {
  if (spec_.filter_bits_per_key <= 0) {
    return TotalRuns();
  }
  if (!monkey) {
    // Uniform bits: every run has the same FPR e^{-bits ln^2 2}.
    const double fpr = std::exp(-spec_.filter_bits_per_key * kLn2Sq);
    return fpr * TotalRuns();
  }
  // Monkey: per-level FPR proportional to level size; evaluate the closed
  // allocation numerically for the configured shape.
  auto bits = MonkeyBitsPerLevel(spec_.filter_bits_per_key, levels_,
                                 spec_.size_ratio);
  double total = 0;
  for (int i = 0; i < levels_; i++) {
    const double fpr = bits[i] <= 0 ? 1.0 : std::exp(-bits[i] * kLn2Sq);
    double runs;
    if (spec_.policy == LsmDesignSpec::Policy::kLeveling) {
      runs = 1;
    } else if (spec_.policy == LsmDesignSpec::Policy::kLazyLeveling &&
               i == levels_ - 1) {
      runs = 1;
    } else {
      runs = spec_.size_ratio - 1;
    }
    total += fpr * runs;
  }
  return total;
}

double LsmCostModel::ExistingPointLookup(bool monkey) const {
  // One true hit plus expected false positives above the target run; on
  // average the key is in the largest level, so the zero-result cost is a
  // good proxy for the overhead term.
  return 1.0 + ZeroResultPointLookup(monkey);
}

double LsmCostModel::WriteCost() const {
  const double t = spec_.size_ratio;
  switch (spec_.policy) {
    case LsmDesignSpec::Policy::kLeveling:
      // Each entry is rewritten ~T/2 times per level (leveled merges
      // re-merge a level's run T times before it moves down).
      return (t / 2.0) * levels_ / b_;
    case LsmDesignSpec::Policy::kTiering:
      // One copy per level.
      return static_cast<double>(levels_) / b_;
    case LsmDesignSpec::Policy::kLazyLeveling:
      // Tiered levels cost 1 copy each; the largest (leveled) level T/2.
      return ((levels_ - 1) + t / 2.0) / b_;
  }
  return 0;
}

double LsmCostModel::ShortScanCost() const {
  // A short scan pays ~1 I/O per qualifying run (range filters excluded).
  return TotalRuns();
}

double LsmCostModel::LongScanCost(double selectivity) const {
  // Dominated by the largest level; tiering reads T-1 runs of it.
  const double pages =
      selectivity * static_cast<double>(spec_.num_entries) / b_;
  switch (spec_.policy) {
    case LsmDesignSpec::Policy::kLeveling:
    case LsmDesignSpec::Policy::kLazyLeveling:
      return std::max(1.0, pages) * (1.0 + 1.0 / spec_.size_ratio);
    case LsmDesignSpec::Policy::kTiering:
      return std::max(1.0, pages) * (spec_.size_ratio - 1);
  }
  return pages;
}

double LsmCostModel::SpaceAmplification() const {
  switch (spec_.policy) {
    case LsmDesignSpec::Policy::kLeveling:
      return 1.0 / spec_.size_ratio;
    case LsmDesignSpec::Policy::kTiering:
      return static_cast<double>(spec_.size_ratio) - 1;
    case LsmDesignSpec::Policy::kLazyLeveling:
      return 1.0 / spec_.size_ratio +
             1.0 / std::max(1, levels_ - 1);
  }
  return 1;
}

std::string LsmCostModel::DebugString() const {
  std::ostringstream out;
  out << "L=" << levels_ << " runs=" << TotalRuns()
      << " R0=" << ZeroResultPointLookup()
      << " W=" << WriteCost() << " S=" << ShortScanCost();
  return out.str();
}

}  // namespace lsmlab
