#ifndef LSMLAB_TUNING_MONKEY_H_
#define LSMLAB_TUNING_MONKEY_H_

#include <vector>

namespace lsmlab {

/// Monkey's optimal filter-memory allocation [Dayan et al., SIGMOD'17;
/// TODS'18] (tutorial §II-5).
///
/// Production engines give every level the same bits/key; Monkey proves
/// the optimum sets each level's false-positive rate proportional to its
/// size, i.e. exponentially more bits/key at the small shallow levels where
/// a saved probe is cheapest per byte of filter.
///
/// Given the tree's average filter budget `avg_bits_per_key`, the level
/// count, and the size ratio T (level i holds ~T^i times the data of level
/// 0), returns the per-level bits/key (index = level) with the same total
/// memory as the uniform allocation. Levels whose optimal FPR reaches 1
/// get zero bits (no filter).
std::vector<double> MonkeyBitsPerLevel(double avg_bits_per_key, int levels,
                                       int size_ratio);

/// Expected worst-case I/Os of a zero-result point lookup: the sum of
/// per-level false-positive rates times runs per level (Monkey's cost
/// model; `runs_per_level` = 1 for leveling, T for tiering).
double ExpectedZeroResultLookupIos(const std::vector<double>& bits_per_level,
                                   int runs_per_level);

}  // namespace lsmlab

#endif  // LSMLAB_TUNING_MONKEY_H_
