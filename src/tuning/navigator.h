#ifndef LSMLAB_TUNING_NAVIGATOR_H_
#define LSMLAB_TUNING_NAVIGATOR_H_

#include <string>
#include <vector>

#include "tuning/cost_model.h"

namespace lsmlab {

/// Workload mix as operation fractions (sum to 1), the coordinate system
/// of Monkey/Dostoevsky/Endure tuning.
struct WorkloadMix {
  double zero_result_lookups = 0.25;  ///< z0
  double existing_lookups = 0.25;     ///< z1
  double short_scans = 0.25;          ///< q
  double writes = 0.25;               ///< w

  WorkloadMix Normalized() const;
};

/// Expected I/O cost per operation of `spec` under `mix`.
double WorkloadCost(const LsmDesignSpec& spec, const WorkloadMix& mix,
                    bool monkey_filters = true);

/// One explored point of the design space.
struct DesignCandidate {
  LsmDesignSpec spec;
  double cost = 0;
  std::string Describe() const;
};

/// Navigates the (policy x size-ratio) design space for a fixed data size
/// and memory budget, returning candidates sorted by modeled cost — the
/// "navigable design space" of tutorial Module III [37, 21, 15].
/// `memory_bytes` is split between buffer and filters per candidate via a
/// small sweep (tutorial §II-5 [54, 57]).
std::vector<DesignCandidate> NavigateDesignSpace(
    uint64_t num_entries, uint64_t entry_bytes, uint64_t memory_bytes,
    const WorkloadMix& mix);

}  // namespace lsmlab

#endif  // LSMLAB_TUNING_NAVIGATOR_H_
