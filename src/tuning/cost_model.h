#ifndef LSMLAB_TUNING_COST_MODEL_H_
#define LSMLAB_TUNING_COST_MODEL_H_

#include <cstdint>
#include <string>

namespace lsmlab {

/// Closed-form I/O cost model of the LSM design space, following the
/// analyses of Monkey [18, 19] and Dostoevsky [20] that the tutorial's
/// Module III builds on. All costs are expected storage I/Os per
/// operation; B is entries per storage page.
struct LsmDesignSpec {
  enum class Policy { kLeveling, kTiering, kLazyLeveling };

  Policy policy = Policy::kLeveling;
  int size_ratio = 10;          ///< T >= 2
  uint64_t num_entries = 1e7;   ///< N
  uint64_t entry_bytes = 64;    ///< E
  uint64_t buffer_bytes = 1 << 20;  ///< M_buf
  double filter_bits_per_key = 10;  ///< across the whole tree
  uint64_t page_bytes = 4096;
};

class LsmCostModel {
 public:
  explicit LsmCostModel(const LsmDesignSpec& spec);

  /// Number of storage levels L.
  int levels() const { return levels_; }
  /// Entries per page B.
  double entries_per_page() const { return b_; }

  /// Expected I/Os of a point lookup on a missing key (filter false
  /// positives only). Assumes Monkey allocation when `monkey`.
  double ZeroResultPointLookup(bool monkey = false) const;

  /// Expected I/Os of a point lookup on an existing key (1 hit + false
  /// positives on the runs above it).
  double ExistingPointLookup(bool monkey = false) const;

  /// Amortized I/Os per inserted entry (each entry is copied once per
  /// merge it participates in, over pages of B entries).
  double WriteCost() const;

  /// I/Os of a short scan returning ~1 page per qualifying run.
  double ShortScanCost() const;

  /// I/Os of a long scan returning `selectivity` * N entries.
  double LongScanCost(double selectivity) const;

  /// Space amplification upper bound (invalidated data resident).
  double SpaceAmplification() const;

  /// Worst-case number of sorted runs a lookup must consider.
  int TotalRuns() const;

  std::string DebugString() const;

 private:
  double RunsAtLevel(int level) const;

  LsmDesignSpec spec_;
  int levels_;
  double b_;  // entries per page
};

}  // namespace lsmlab

#endif  // LSMLAB_TUNING_COST_MODEL_H_
