#include "tuning/endure.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/random.h"

namespace lsmlab {

double WorkloadKlDivergence(const WorkloadMix& w, const WorkloadMix& w_hat) {
  const WorkloadMix a = w.Normalized();
  const WorkloadMix b = w_hat.Normalized();
  auto term = [](double p, double q) {
    if (p <= 0) {
      return 0.0;
    }
    return p * std::log(p / std::max(q, 1e-12));
  };
  return term(a.zero_result_lookups, b.zero_result_lookups) +
         term(a.existing_lookups, b.existing_lookups) +
         term(a.short_scans, b.short_scans) + term(a.writes, b.writes);
}

std::vector<WorkloadMix> SampleWorkloadNeighborhood(const WorkloadMix& w_hat,
                                                    double rho, int samples,
                                                    uint64_t seed) {
  std::vector<WorkloadMix> result;
  result.push_back(w_hat.Normalized());
  Random rng(seed);
  int attempts = 0;
  while (static_cast<int>(result.size()) < samples &&
         attempts < samples * 50) {
    attempts++;
    // Dirichlet-ish proposal: exponential weights renormalized.
    WorkloadMix w;
    w.zero_result_lookups = -std::log(std::max(rng.NextDouble(), 1e-12));
    w.existing_lookups = -std::log(std::max(rng.NextDouble(), 1e-12));
    w.short_scans = -std::log(std::max(rng.NextDouble(), 1e-12));
    w.writes = -std::log(std::max(rng.NextDouble(), 1e-12));
    w = w.Normalized();
    // Blend toward w_hat so small-rho balls still get dense coverage.
    const double alpha = rng.NextDouble();
    const WorkloadMix h = w_hat.Normalized();
    w.zero_result_lookups =
        alpha * w.zero_result_lookups + (1 - alpha) * h.zero_result_lookups;
    w.existing_lookups =
        alpha * w.existing_lookups + (1 - alpha) * h.existing_lookups;
    w.short_scans = alpha * w.short_scans + (1 - alpha) * h.short_scans;
    w.writes = alpha * w.writes + (1 - alpha) * h.writes;
    if (WorkloadKlDivergence(w, w_hat) <= rho) {
      result.push_back(w);
    }
  }
  return result;
}

RobustTuningResult RobustTune(uint64_t num_entries, uint64_t entry_bytes,
                              uint64_t memory_bytes,
                              const WorkloadMix& expected, double rho,
                              int neighborhood_samples) {
  RobustTuningResult result;
  auto candidates =
      NavigateDesignSpace(num_entries, entry_bytes, memory_bytes, expected);
  result.nominal = candidates.front();

  const auto neighborhood =
      SampleWorkloadNeighborhood(expected, rho, neighborhood_samples);

  auto worst_cost = [&](const LsmDesignSpec& spec) {
    double worst = 0;
    for (const WorkloadMix& w : neighborhood) {
      worst = std::max(worst, WorkloadCost(spec, w));
    }
    return worst;
  };

  result.nominal_worst_cost = worst_cost(result.nominal.spec);
  double best = std::numeric_limits<double>::max();
  for (const DesignCandidate& c : candidates) {
    const double wc = worst_cost(c.spec);
    if (wc < best) {
      best = wc;
      result.robust = c;
      result.robust_worst_cost = wc;
    }
  }
  return result;
}

}  // namespace lsmlab
