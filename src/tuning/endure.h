#ifndef LSMLAB_TUNING_ENDURE_H_
#define LSMLAB_TUNING_ENDURE_H_

#include <vector>

#include "tuning/navigator.h"

namespace lsmlab {

/// Endure-style robust tuning [Huynh et al., VLDB'22] (tutorial III-2):
/// instead of tuning for the expected workload ŵ, minimize the worst-case
/// cost over a neighborhood of workloads within distance ρ of ŵ.
///
/// Endure uses the KL-divergence ball and Lagrangian duality; we evaluate
/// the same objective by sampling the neighborhood densely (documented
/// substitution — the argmin is the same up to sampling resolution, and
/// the experiment only needs the nominal-vs-robust comparison).
struct RobustTuningResult {
  DesignCandidate nominal;       ///< best for ŵ exactly
  DesignCandidate robust;        ///< best worst-case within the ρ-ball
  double nominal_worst_cost = 0; ///< worst case of the nominal design
  double robust_worst_cost = 0;  ///< worst case of the robust design
};

/// KL divergence between workload mixes (natural log).
double WorkloadKlDivergence(const WorkloadMix& w, const WorkloadMix& w_hat);

/// Samples workload mixes with KL(w || w_hat) <= rho.
std::vector<WorkloadMix> SampleWorkloadNeighborhood(const WorkloadMix& w_hat,
                                                    double rho,
                                                    int samples,
                                                    uint64_t seed = 42);

/// Tunes nominally and robustly over the (policy, T, memory-split) space.
RobustTuningResult RobustTune(uint64_t num_entries, uint64_t entry_bytes,
                              uint64_t memory_bytes,
                              const WorkloadMix& expected, double rho,
                              int neighborhood_samples = 256);

}  // namespace lsmlab

#endif  // LSMLAB_TUNING_ENDURE_H_
