#include "tuning/monkey.h"

#include <algorithm>
#include <cmath>

namespace lsmlab {

namespace {

constexpr double kLn2Sq = 0.4804530139182014;  // ln(2)^2

/// Bits/key needed for false-positive rate p (standard Bloom bound).
double BitsForFpr(double p) { return -std::log(p) / kLn2Sq; }

}  // namespace

std::vector<double> MonkeyBitsPerLevel(double avg_bits_per_key, int levels,
                                       int size_ratio) {
  std::vector<double> bits(levels, 0.0);
  if (levels <= 0) {
    return bits;
  }
  if (avg_bits_per_key <= 0) {
    return bits;
  }

  // Level i holds n_i = T^i units of keys (relative sizes are all that
  // matter). Total memory budget equals the uniform allocation:
  //   M = avg_bits * sum(n_i).
  std::vector<double> n(levels);
  double total_keys = 0;
  for (int i = 0; i < levels; i++) {
    n[i] = std::pow(static_cast<double>(size_ratio), i);
    total_keys += n[i];
  }
  const double budget = avg_bits_per_key * total_keys;

  // Lagrangian optimum: p_i = min(1, mu * n_i) for the multiplier mu that
  // exhausts the budget. Memory is monotonically decreasing in mu, so
  // binary search.
  auto memory_for = [&](double mu) {
    double mem = 0;
    for (int i = 0; i < levels; i++) {
      const double p = std::min(1.0, mu * n[i]);
      if (p < 1.0) {
        mem += n[i] * BitsForFpr(p);
      }
    }
    return mem;
  };

  double lo = 1e-30;
  double hi = 1.0;
  for (int iter = 0; iter < 200; iter++) {
    const double mid = std::sqrt(lo * hi);  // geometric midpoint
    if (memory_for(mid) > budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double mu = std::sqrt(lo * hi);
  for (int i = 0; i < levels; i++) {
    const double p = std::min(1.0, mu * n[i]);
    bits[i] = p < 1.0 ? BitsForFpr(p) : 0.0;
  }
  return bits;
}

double ExpectedZeroResultLookupIos(const std::vector<double>& bits_per_level,
                                   int runs_per_level) {
  double total = 0;
  for (double b : bits_per_level) {
    const double fpr = b <= 0 ? 1.0 : std::exp(-b * kLn2Sq);
    total += fpr * runs_per_level;
  }
  return total;
}

}  // namespace lsmlab
