#ifndef LSMLAB_WORKLOAD_WORKLOAD_H_
#define LSMLAB_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "workload/keygen.h"

namespace lsmlab {

/// One operation of a generated workload trace.
struct Op {
  enum class Kind { kPut, kGet, kDelete, kScan };
  Kind kind = Kind::kPut;
  std::string key;
  std::string value;    // puts
  std::string end_key;  // scans
};

/// Parameters of a synthetic workload (the substitution for production
/// traces; DESIGN.md §4). Fractions need not sum to 1 — they are
/// normalized.
struct WorkloadSpec {
  uint64_t key_domain = 1'000'000;
  size_t value_bytes = 64;
  double put_fraction = 0.5;
  double get_fraction = 0.5;
  double delete_fraction = 0.0;
  double scan_fraction = 0.0;
  uint64_t scan_width = 100;  ///< keys per scan range
  /// 0 = uniform; otherwise Zipfian theta (0.99 ~ YCSB default skew).
  double zipfian_theta = 0.0;
  uint64_t seed = 1;
};

/// Generates `n` operations from the spec.
std::vector<Op> GenerateWorkload(const WorkloadSpec& spec, size_t n);

/// Deterministic value payload for a key (self-verifying workloads).
std::string ValueForKey(const std::string& key, size_t value_bytes);

}  // namespace lsmlab

#endif  // LSMLAB_WORKLOAD_WORKLOAD_H_
