#include "workload/workload.h"

#include <algorithm>

#include "util/hash.h"
#include "util/random.h"

namespace lsmlab {

std::string ValueForKey(const std::string& key, size_t value_bytes) {
  std::string value;
  value.reserve(value_bytes);
  uint64_t h = Hash64(key.data(), key.size(), /*seed=*/77);
  while (value.size() < value_bytes) {
    h = Remix64(h);
    const char* p = reinterpret_cast<const char*>(&h);
    value.append(p, std::min<size_t>(8, value_bytes - value.size()));
  }
  return value;
}

std::vector<Op> GenerateWorkload(const WorkloadSpec& spec, size_t n) {
  std::vector<Op> ops;
  ops.reserve(n);

  std::unique_ptr<KeyGenerator> gen;
  if (spec.zipfian_theta > 0) {
    gen = NewZipfianGenerator(spec.key_domain, spec.zipfian_theta, spec.seed);
  } else {
    gen = NewUniformGenerator(spec.key_domain, spec.seed);
  }
  Random rng(spec.seed ^ 0xabcdef);

  const double total = spec.put_fraction + spec.get_fraction +
                       spec.delete_fraction + spec.scan_fraction;
  const double p_put = spec.put_fraction / total;
  const double p_get = p_put + spec.get_fraction / total;
  const double p_del = p_get + spec.delete_fraction / total;

  for (size_t i = 0; i < n; i++) {
    const double r = rng.NextDouble();
    Op op;
    const uint64_t k = gen->Next();
    op.key = EncodeKey(k);
    if (r < p_put) {
      op.kind = Op::Kind::kPut;
      op.value = ValueForKey(op.key, spec.value_bytes);
    } else if (r < p_get) {
      op.kind = Op::Kind::kGet;
    } else if (r < p_del) {
      op.kind = Op::Kind::kDelete;
    } else {
      op.kind = Op::Kind::kScan;
      op.end_key = EncodeKey(std::min(k + spec.scan_width,
                                      spec.key_domain - 1));
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

}  // namespace lsmlab
