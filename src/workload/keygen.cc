#include "workload/keygen.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"

namespace lsmlab {

std::string EncodeKey(uint64_t v) {
  std::string key(8, '\0');
  for (int i = 0; i < 8; i++) {
    key[i] = static_cast<char>((v >> (8 * (7 - i))) & 0xff);
  }
  return key;
}

uint64_t DecodeKey(const std::string& key) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8 && i < key.size(); i++) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(key[i]))
         << (8 * (7 - i));
  }
  return v;
}

namespace {

class UniformGenerator : public KeyGenerator {
 public:
  UniformGenerator(uint64_t domain, uint64_t seed)
      : domain_(domain == 0 ? 1 : domain), rng_(seed) {}

  uint64_t Next() override { return rng_.Uniform(domain_); }

 private:
  uint64_t domain_;
  Random rng_;
};

class SequentialGenerator : public KeyGenerator {
 public:
  explicit SequentialGenerator(uint64_t start) : next_(start) {}
  uint64_t Next() override { return next_++; }

 private:
  uint64_t next_;
};

/// YCSB-style Zipfian generator (Gray et al.'s algorithm with incremental
/// zeta). Rank 0 is the hottest item; `scramble` hashes ranks onto the
/// domain so hot keys are spread across the key space.
class ZipfianGenerator : public KeyGenerator {
 public:
  ZipfianGenerator(uint64_t domain, double theta, uint64_t seed,
                   bool scramble)
      : n_(domain == 0 ? 1 : domain),
        theta_(theta),
        scramble_(scramble),
        rng_(seed) {
    zeta_n_ = Zeta(n_, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1 - std::pow(2.0 / static_cast<double>(n_), 1 - theta_)) /
           (1 - zeta2_ / zeta_n_);
  }

  uint64_t Next() override {
    const double u = rng_.NextDouble();
    const double uz = u * zeta_n_;
    uint64_t rank;
    if (uz < 1.0) {
      rank = 0;
    } else if (uz < 1.0 + std::pow(0.5, theta_)) {
      rank = 1;
    } else {
      rank = static_cast<uint64_t>(
          static_cast<double>(n_) *
          std::pow(eta_ * u - eta_ + 1, alpha_));
      if (rank >= n_) {
        rank = n_ - 1;
      }
    }
    if (!scramble_) {
      return rank;
    }
    return Hash64(reinterpret_cast<const char*>(&rank), sizeof(rank),
                  /*seed=*/0x5eed) %
           n_;
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    // Exact for small n, Euler-Maclaurin style approximation for large.
    if (n <= 1'000'000) {
      double sum = 0;
      for (uint64_t i = 1; i <= n; i++) {
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
      }
      return sum;
    }
    const double n_d = static_cast<double>(n);
    return (std::pow(n_d, 1 - theta) - 1) / (1 - theta) + 0.5 +
           std::pow(n_d, -theta) / 2 + theta / 12.0;
  }

  uint64_t n_;
  double theta_;
  bool scramble_;
  Random rng_;
  double zeta_n_;
  double zeta2_;
  double alpha_;
  double eta_;
};

}  // namespace

std::unique_ptr<KeyGenerator> NewUniformGenerator(uint64_t domain,
                                                  uint64_t seed) {
  return std::make_unique<UniformGenerator>(domain, seed);
}

std::unique_ptr<KeyGenerator> NewSequentialGenerator(uint64_t start) {
  return std::make_unique<SequentialGenerator>(start);
}

std::unique_ptr<KeyGenerator> NewZipfianGenerator(uint64_t domain,
                                                  double theta, uint64_t seed,
                                                  bool scramble) {
  return std::make_unique<ZipfianGenerator>(domain, theta, seed, scramble);
}

std::vector<uint64_t> SortedUniqueKeys(size_t n, uint64_t domain,
                                       uint64_t seed) {
  Random rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(n + n / 8);
  while (keys.size() < n + n / 8) {
    keys.push_back(rng.Uniform(domain));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  if (keys.size() > n) {
    keys.resize(n);
  }
  return keys;
}

}  // namespace lsmlab
