#ifndef LSMLAB_WORKLOAD_KEYGEN_H_
#define LSMLAB_WORKLOAD_KEYGEN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/random.h"

namespace lsmlab {

/// Encodes a uint64 as an 8-byte big-endian string: bytewise order equals
/// numeric order, which every numeric filter/index in lsmlab relies on.
std::string EncodeKey(uint64_t v);
uint64_t DecodeKey(const std::string& key);

/// Draws keys from a distribution over [0, domain).
class KeyGenerator {
 public:
  virtual ~KeyGenerator() = default;
  virtual uint64_t Next() = 0;
};

/// Uniform over [0, domain).
std::unique_ptr<KeyGenerator> NewUniformGenerator(uint64_t domain,
                                                  uint64_t seed);

/// 0, 1, 2, ... (time-series style ingestion).
std::unique_ptr<KeyGenerator> NewSequentialGenerator(uint64_t start = 0);

/// Zipfian over [0, domain) with parameter `theta` (YCSB's generator with
/// the scrambled-output option to decorrelate rank from key order).
std::unique_ptr<KeyGenerator> NewZipfianGenerator(uint64_t domain,
                                                  double theta, uint64_t seed,
                                                  bool scramble = true);

/// Convenience: n distinct uniform keys, sorted (bulk-load input).
std::vector<uint64_t> SortedUniqueKeys(size_t n, uint64_t domain,
                                       uint64_t seed);

}  // namespace lsmlab

#endif  // LSMLAB_WORKLOAD_KEYGEN_H_
