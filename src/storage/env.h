#ifndef LSMLAB_STORAGE_ENV_H_
#define LSMLAB_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/io_stats.h"
#include "util/slice.h"
#include "util/status.h"

namespace lsmlab {

/// Random-access handle over an immutable file (an SSTable).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to n bytes at `offset` into scratch; *result points either
  /// into scratch or into an internal buffer that outlives the file handle.
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;

  virtual uint64_t Size() const = 0;
};

/// Append-only handle used while building SSTables, WAL, and manifest.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const Slice& data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Sequential reader for WAL/manifest replay.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  /// Reads up to n bytes from the current position.
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

/// Filesystem abstraction. The engine only talks to storage through Env,
/// which is what lets the benchmarks run on a deterministic in-memory
/// counting environment while the examples run on real files.
class Env {
 public:
  virtual ~Env() = default;

  virtual Status NewRandomAccessFile(const std::string& fname,
                                     std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;
  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDir(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;

  /// Logical-I/O counters for this environment.
  IoStats* io_stats() { return &io_stats_; }

 protected:
  IoStats io_stats_;
};

/// In-memory environment: files are byte strings, I/O is counted, nothing
/// touches the real filesystem. Deterministic substrate for tests/benches.
Env* NewMemEnv();

/// Environment backed by the local POSIX filesystem.
Env* NewPosixEnv();

// Convenience helpers shared by recovery code and tests.
Status WriteStringToFile(Env* env, const Slice& data, const std::string& fname);
Status ReadFileToString(Env* env, const std::string& fname, std::string* data);

}  // namespace lsmlab

#endif  // LSMLAB_STORAGE_ENV_H_
