#include <algorithm>
#include <map>
#include <memory>

#include "storage/env.h"
#include "util/mutex.h"

namespace lsmlab {

namespace {

/// Shared, refcounted contents of one in-memory file. Readers opened before
/// a RemoveFile keep their snapshot alive via shared_ptr (mirrors POSIX
/// unlink semantics, which the engine relies on when dropping compacted
/// tables that live snapshots still read).
struct MemFile {
  std::string data;
};

class MemRandomAccessFile : public RandomAccessFile {
 public:
  MemRandomAccessFile(std::shared_ptr<MemFile> file, IoStats* stats)
      : file_(std::move(file)), stats_(stats) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    const std::string& data = file_->data;
    if (offset > data.size()) {
      return Status::IOError("read past end of file");
    }
    const size_t avail = data.size() - static_cast<size_t>(offset);
    const size_t len = std::min(n, avail);
    stats_->RecordRead(offset, len);
    // Point directly into the immutable buffer; no copy needed.
    *result = Slice(data.data() + offset, len);
    (void)scratch;
    return Status::OK();
  }

  uint64_t Size() const override { return file_->data.size(); }

 private:
  std::shared_ptr<MemFile> file_;
  IoStats* stats_;
};

class MemWritableFile : public WritableFile {
 public:
  MemWritableFile(std::shared_ptr<MemFile> file, IoStats* stats)
      : file_(std::move(file)), stats_(stats) {}

  Status Append(const Slice& data) override {
    file_->data.append(data.data(), data.size());
    stats_->RecordAppend(data.size());
    return Status::OK();
  }
  Status Flush() override { return Status::OK(); }
  Status Sync() override {
    stats_->RecordSync();
    return Status::OK();
  }
  Status Close() override { return Status::OK(); }

 private:
  std::shared_ptr<MemFile> file_;
  IoStats* stats_;
};

class MemSequentialFile : public SequentialFile {
 public:
  MemSequentialFile(std::shared_ptr<MemFile> file, IoStats* stats)
      : file_(std::move(file)), stats_(stats) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    const std::string& data = file_->data;
    if (pos_ >= data.size()) {
      *result = Slice();
      return Status::OK();
    }
    const size_t len = std::min(n, data.size() - pos_);
    stats_->RecordRead(pos_, len);
    *result = Slice(data.data() + pos_, len);
    pos_ += len;
    (void)scratch;
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    pos_ = std::min(file_->data.size(), pos_ + static_cast<size_t>(n));
    return Status::OK();
  }

 private:
  std::shared_ptr<MemFile> file_;
  IoStats* stats_;
  size_t pos_ = 0;
};

class MemEnv : public Env {
 public:
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    MutexLock lock(&mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      return Status::IOError(fname, "file not found");
    }
    *result = std::make_unique<MemRandomAccessFile>(it->second, &io_stats_);
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    MutexLock lock(&mu_);
    auto file = std::make_shared<MemFile>();
    files_[fname] = file;  // truncate-on-open semantics
    *result = std::make_unique<MemWritableFile>(std::move(file), &io_stats_);
    return Status::OK();
  }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    MutexLock lock(&mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      return Status::IOError(fname, "file not found");
    }
    *result = std::make_unique<MemSequentialFile>(it->second, &io_stats_);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    MutexLock lock(&mu_);
    return files_.count(fname) > 0;
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    MutexLock lock(&mu_);
    result->clear();
    std::string prefix = dir;
    if (!prefix.empty() && prefix.back() != '/') {
      prefix += '/';
    }
    for (const auto& [name, file] : files_) {
      if (name.size() > prefix.size() &&
          name.compare(0, prefix.size(), prefix) == 0 &&
          name.find('/', prefix.size()) == std::string::npos) {
        result->push_back(name.substr(prefix.size()));
      }
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    MutexLock lock(&mu_);
    if (files_.erase(fname) == 0) {
      return Status::IOError(fname, "file not found");
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    (void)dirname;  // directories are implicit in the flat namespace
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    MutexLock lock(&mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      return Status::IOError(fname, "file not found");
    }
    *size = it->second->data.size();
    return Status::OK();
  }

  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    MutexLock lock(&mu_);
    auto it = files_.find(src);
    if (it == files_.end()) {
      return Status::IOError(src, "file not found");
    }
    files_[target] = it->second;
    files_.erase(it);
    return Status::OK();
  }

 private:
  Mutex mu_{LockRank::kMemEnvMu};
  std::map<std::string, std::shared_ptr<MemFile>> files_ GUARDED_BY(mu_);
};

}  // namespace

Env* NewMemEnv() { return new MemEnv(); }

Status WriteStringToFile(Env* env, const Slice& data,
                         const std::string& fname) {
  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  s = file->Append(data);
  if (s.ok()) {
    // Durable by contract: callers use this for CURRENT and other
    // small metadata files whose loss would orphan the database.
    s = file->Sync();
  }
  if (s.ok()) {
    s = file->Close();
  }
  return s;
}

Status ReadFileToString(Env* env, const std::string& fname,
                        std::string* data) {
  data->clear();
  std::unique_ptr<SequentialFile> file;
  Status s = env->NewSequentialFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  static const size_t kBufferSize = 8192;
  std::string scratch(kBufferSize, '\0');
  while (true) {
    Slice fragment;
    s = file->Read(kBufferSize, &fragment, scratch.data());
    if (!s.ok() || fragment.empty()) {
      break;
    }
    data->append(fragment.data(), fragment.size());
  }
  return s;
}

}  // namespace lsmlab
