#ifndef LSMLAB_STORAGE_IO_STATS_H_
#define LSMLAB_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/mutex.h"

namespace lsmlab {

/// Logical-I/O accounting for an Env.
///
/// This is the measurement substrate for every experiment: the tutorial's
/// claims are about *logical block accesses*, so instead of timing a
/// specific SSD we count 4 KiB-aligned block reads/writes deterministically.
/// Counters are atomic so readers and the (inline) compaction path can
/// update them without coordination.
struct IoStats {
  static constexpr uint64_t kBlockSize = 4096;

  std::atomic<uint64_t> block_reads{0};
  std::atomic<uint64_t> block_writes{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> random_reads{0};   // positioned read calls
  std::atomic<uint64_t> sequential_writes{0};  // append calls
  std::atomic<uint64_t> syncs{0};              // fsync/Sync calls

  // Every Env implementation funnels each blocking operation through
  // exactly one Record* call (tools/lint.sh check 5), which makes these
  // the chokepoint for the debug-build no-I/O-under-engine-lock guard:
  // AssertBlockingIoAllowed aborts when a ranked no-io mutex is held here.

  void RecordRead(uint64_t offset, uint64_t n) {
    AssertBlockingIoAllowed("read");
    if (n == 0) return;
    const uint64_t first = offset / kBlockSize;
    const uint64_t last = (offset + n - 1) / kBlockSize;
    block_reads.fetch_add(last - first + 1, std::memory_order_relaxed);
    bytes_read.fetch_add(n, std::memory_order_relaxed);
    random_reads.fetch_add(1, std::memory_order_relaxed);
  }

  void RecordAppend(uint64_t n) {
    AssertBlockingIoAllowed("append");
    // Appends are sequential; charge whole blocks on flush boundaries is
    // overkill, so charge ceil(n / block) which matches write amp math.
    block_writes.fetch_add((n + kBlockSize - 1) / kBlockSize,
                           std::memory_order_relaxed);
    bytes_written.fetch_add(n, std::memory_order_relaxed);
    sequential_writes.fetch_add(1, std::memory_order_relaxed);
  }

  void RecordSync() {
    AssertBlockingIoAllowed("sync");
    syncs.fetch_add(1, std::memory_order_relaxed);
  }

  void Reset() {
    block_reads.store(0);
    block_writes.store(0);
    bytes_read.store(0);
    bytes_written.store(0);
    random_reads.store(0);
    sequential_writes.store(0);
    syncs.store(0);
  }

  std::string ToString() const;
};

}  // namespace lsmlab

#endif  // LSMLAB_STORAGE_IO_STATS_H_
