#include "storage/fault_env.h"

#include <atomic>
#include <map>

#include "util/mutex.h"

namespace lsmlab {

namespace {

struct FileDurability {
  uint64_t synced_bytes = 0;  // prefix guaranteed to survive a crash
  bool ever_synced = false;
};

}  // namespace

struct FaultInjectionEnv::State {
  Env* base = nullptr;
  Mutex mu{LockRank::kFaultStateMu};
  std::map<std::string, FileDurability> files GUARDED_BY(mu);
  std::atomic<bool> crashed{false};

  // Kill-point machinery: counts write ops (Append/Sync) and starts
  // rejecting them once the armed budget is spent.
  bool kill_armed GUARDED_BY(mu) = false;
  uint64_t ops_until_kill GUARDED_BY(mu) = 0;
  uint64_t write_ops GUARDED_BY(mu) = 0;
  std::string kill_file GUARDED_BY(mu);

  /// Charges one write op against the kill budget. False = the op must
  /// fail (kill point reached); records the first victim's filename.
  bool AllowWriteOp(const std::string& fname) {
    MutexLock lock(&mu);
    if (kill_armed && ops_until_kill == 0) {
      if (kill_file.empty()) {
        kill_file = fname;
      }
      return false;
    }
    if (kill_armed) {
      ops_until_kill--;
    }
    write_ops++;
    return true;
  }
};

namespace {

/// Writable handle that reports durability transitions to the env state.
class TrackedWritableFile : public WritableFile {
 public:
  TrackedWritableFile(std::unique_ptr<WritableFile> base, std::string fname,
                      FaultInjectionEnv::State* state)
      : base_(std::move(base)), fname_(std::move(fname)), state_(state) {}

  Status Append(const Slice& data) override {
    if (state_->crashed.load()) {
      return Status::IOError("simulated crash");
    }
    if (!state_->AllowWriteOp(fname_)) {
      return Status::IOError("simulated kill");
    }
    Status s = base_->Append(data);
    if (s.ok()) {
      size_ += data.size();
    }
    return s;
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    if (state_->crashed.load()) {
      return Status::IOError("simulated crash");
    }
    if (!state_->AllowWriteOp(fname_)) {
      return Status::IOError("simulated kill");
    }
    Status s = base_->Sync();
    if (s.ok()) {
      MutexLock lock(&state_->mu);
      auto& d = state_->files[fname_];
      d.synced_bytes = size_;
      d.ever_synced = true;
    }
    return s;
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  std::string fname_;
  FaultInjectionEnv::State* state_;
  uint64_t size_ = 0;
};

}  // namespace

FaultInjectionEnv::FaultInjectionEnv(Env* base)
    : state_(std::make_unique<State>()) {
  state_->base = base;
}

FaultInjectionEnv::~FaultInjectionEnv() = default;

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  return state_->base->NewRandomAccessFile(fname, result);
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  std::unique_ptr<WritableFile> base_file;
  Status s = state_->base->NewWritableFile(fname, &base_file);
  if (!s.ok()) {
    return s;
  }
  {
    MutexLock lock(&state_->mu);
    state_->files[fname] = FileDurability();  // fresh, nothing durable
  }
  *result = std::make_unique<TrackedWritableFile>(std::move(base_file),
                                                  fname, state_.get());
  return Status::OK();
}

Status FaultInjectionEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* result) {
  return state_->base->NewSequentialFile(fname, result);
}

bool FaultInjectionEnv::FileExists(const std::string& fname) {
  return state_->base->FileExists(fname);
}

Status FaultInjectionEnv::GetChildren(const std::string& dir,
                                      std::vector<std::string>* result) {
  return state_->base->GetChildren(dir, result);
}

Status FaultInjectionEnv::RemoveFile(const std::string& fname) {
  {
    MutexLock lock(&state_->mu);
    state_->files.erase(fname);
  }
  return state_->base->RemoveFile(fname);
}

Status FaultInjectionEnv::CreateDir(const std::string& dirname) {
  return state_->base->CreateDir(dirname);
}

Status FaultInjectionEnv::GetFileSize(const std::string& fname,
                                      uint64_t* size) {
  return state_->base->GetFileSize(fname, size);
}

Status FaultInjectionEnv::RenameFile(const std::string& src,
                                     const std::string& target) {
  {
    MutexLock lock(&state_->mu);
    auto it = state_->files.find(src);
    if (it != state_->files.end()) {
      state_->files[target] = it->second;
      state_->files.erase(it);
    }
  }
  return state_->base->RenameFile(src, target);
}

Status FaultInjectionEnv::Crash() {
  state_->crashed.store(true);
  MutexLock lock(&state_->mu);
  Status result = Status::OK();
  for (const auto& [fname, d] : state_->files) {
    if (!state_->base->FileExists(fname)) {
      continue;
    }
    if (!d.ever_synced) {
      Status s = state_->base->RemoveFile(fname);
      if (!s.ok() && result.ok()) {
        result = s;
      }
      continue;
    }
    uint64_t size = 0;
    Status s = state_->base->GetFileSize(fname, &size);
    if (!s.ok()) {
      continue;
    }
    if (size > d.synced_bytes) {
      // Truncate to the durable prefix by rewriting.
      std::string data;
      s = ReadFileToString(state_->base, fname, &data);
      if (!s.ok()) {
        if (result.ok()) result = s;
        continue;
      }
      data.resize(static_cast<size_t>(d.synced_bytes));
      s = WriteStringToFile(state_->base, data, fname);
      if (!s.ok() && result.ok()) {
        result = s;
      }
    }
  }
  state_->files.clear();
  state_->kill_armed = false;
  state_->ops_until_kill = 0;
  state_->write_ops = 0;
  state_->kill_file.clear();
  state_->crashed.store(false);
  return result;
}

void FaultInjectionEnv::MarkSynced() {
  MutexLock lock(&state_->mu);
  state_->files.clear();  // untracked files are implicitly durable
}

void FaultInjectionEnv::ArmKillPoint(uint64_t ops) {
  MutexLock lock(&state_->mu);
  state_->kill_armed = true;
  state_->ops_until_kill = ops;
  state_->kill_file.clear();
}

uint64_t FaultInjectionEnv::write_ops() const {
  MutexLock lock(&state_->mu);
  return state_->write_ops;
}

std::string FaultInjectionEnv::kill_file() const {
  MutexLock lock(&state_->mu);
  return state_->kill_file;
}

}  // namespace lsmlab
