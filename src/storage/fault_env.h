#ifndef LSMLAB_STORAGE_FAULT_ENV_H_
#define LSMLAB_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/env.h"

namespace lsmlab {

/// Fault-injection environment for crash testing.
///
/// Wraps a base Env and tracks, per file, how many bytes have been made
/// durable via Sync(). Crash() then rolls the world back to the durable
/// state: unsynced tails are truncated and files that were never synced
/// disappear — the on-disk state an OS crash could expose. Recovery code
/// (WAL replay, manifest load) must cope with exactly this.
class FaultInjectionEnv : public Env {
 public:
  /// Does not take ownership of `base`.
  explicit FaultInjectionEnv(Env* base);
  ~FaultInjectionEnv() override;

  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;

  /// Simulates a kill -9 + machine crash: every file reverts to its last
  /// synced prefix; never-synced files are deleted. Writable handles
  /// still held by the (dead) DB become inert. Call while no live DB uses
  /// this env, then reopen the DB to exercise recovery.
  Status Crash();

  /// Treat every byte written so far as durable (a checkpoint).
  void MarkSynced();

  /// Deterministic kill point: the next `ops` write operations (Append or
  /// Sync on any writable file) succeed, then every later one fails with
  /// an IOError — the process is "dead" from that operation onward.
  /// Sweeping `ops` over a fixed workload visits every write-op boundary:
  /// mid-WAL-record, between append and sync, during an SSTable build,
  /// inside a manifest install. Crash() disarms.
  void ArmKillPoint(uint64_t ops);

  /// Write operations that have been *allowed* since construction or the
  /// last Crash(). A full un-killed run's count bounds the sweep above.
  uint64_t write_ops() const;

  /// File whose operation first hit an armed kill point (empty until then;
  /// cleared by ArmKillPoint/Crash). Lets tests classify which structure
  /// the kill landed in: "*.wal", "*.sst", "MANIFEST-*".
  std::string kill_file() const;

  // Implementation detail, public so file-handle wrappers in the .cc can
  // reference it.
  struct State;

 private:
  std::unique_ptr<State> state_;
};

}  // namespace lsmlab

#endif  // LSMLAB_STORAGE_FAULT_ENV_H_
