#include "storage/io_stats.h"

#include <cstdio>

namespace lsmlab {

std::string IoStats::ToString() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "block_reads=%llu block_writes=%llu bytes_read=%llu bytes_written=%llu "
      "syncs=%llu",
      static_cast<unsigned long long>(block_reads.load()),
      static_cast<unsigned long long>(block_writes.load()),
      static_cast<unsigned long long>(bytes_read.load()),
      static_cast<unsigned long long>(bytes_written.load()),
      static_cast<unsigned long long>(syncs.load()));
  return buf;
}

}  // namespace lsmlab
