#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>

#include "storage/env.h"

namespace lsmlab {

namespace {

Status PosixError(const std::string& context, int err) {
  return Status::IOError(context, std::strerror(err));
}

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string fname, int fd, uint64_t size,
                        IoStats* stats)
      : fname_(std::move(fname)), fd_(fd), size_(size), stats_(stats) {}

  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    ssize_t r = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (r < 0) {
      return PosixError(fname_, errno);
    }
    stats_->RecordRead(offset, static_cast<uint64_t>(r));
    *result = Slice(scratch, static_cast<size_t>(r));
    return Status::OK();
  }

  uint64_t Size() const override { return size_; }

 private:
  std::string fname_;
  int fd_;
  uint64_t size_;
  IoStats* stats_;
};

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string fname, FILE* f, IoStats* stats)
      : fname_(std::move(fname)), file_(f), stats_(stats) {}

  ~PosixWritableFile() override {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
  }

  Status Append(const Slice& data) override {
    size_t r = std::fwrite(data.data(), 1, data.size(), file_);
    if (r != data.size()) {
      return PosixError(fname_, errno);
    }
    stats_->RecordAppend(data.size());
    return Status::OK();
  }

  Status Flush() override {
    if (std::fflush(file_) != 0) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

  Status Sync() override {
    Status s = Flush();
    if (!s.ok()) {
      return s;
    }
    if (::fsync(::fileno(file_)) != 0) {
      return PosixError(fname_, errno);
    }
    stats_->RecordSync();
    return Status::OK();
  }

  Status Close() override {
    int r = std::fclose(file_);
    file_ = nullptr;
    if (r != 0) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  std::string fname_;
  FILE* file_;
  IoStats* stats_;
};

class PosixSequentialFile : public SequentialFile {
 public:
  PosixSequentialFile(std::string fname, FILE* f, IoStats* stats)
      : fname_(std::move(fname)), file_(f), stats_(stats) {}

  ~PosixSequentialFile() override { std::fclose(file_); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    size_t r = std::fread(scratch, 1, n, file_);
    if (r < n && std::ferror(file_)) {
      return PosixError(fname_, errno);
    }
    stats_->RecordRead(pos_, r);
    pos_ += r;
    *result = Slice(scratch, r);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    if (std::fseek(file_, static_cast<long>(n), SEEK_CUR) != 0) {
      return PosixError(fname_, errno);
    }
    pos_ += n;
    return Status::OK();
  }

 private:
  std::string fname_;
  FILE* file_;
  IoStats* stats_;
  uint64_t pos_ = 0;
};

class PosixEnv : public Env {
 public:
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY);
    if (fd < 0) {
      return PosixError(fname, errno);
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      int err = errno;
      ::close(fd);
      return PosixError(fname, err);
    }
    *result = std::make_unique<PosixRandomAccessFile>(
        fname, fd, static_cast<uint64_t>(st.st_size), &io_stats_);
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    FILE* f = std::fopen(fname.c_str(), "wb");
    if (f == nullptr) {
      return PosixError(fname, errno);
    }
    *result = std::make_unique<PosixWritableFile>(fname, f, &io_stats_);
    return Status::OK();
  }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    FILE* f = std::fopen(fname.c_str(), "rb");
    if (f == nullptr) {
      return PosixError(fname, errno);
    }
    *result = std::make_unique<PosixSequentialFile>(fname, f, &io_stats_);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    return ::access(fname.c_str(), F_OK) == 0;
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    result->clear();
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      result->push_back(entry.path().filename().string());
    }
    if (ec) {
      return Status::IOError(dir, ec.message());
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    if (::unlink(fname.c_str()) != 0) {
      return PosixError(fname, errno);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    if (::mkdir(dirname.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    struct stat st;
    if (::stat(fname.c_str(), &st) != 0) {
      return PosixError(fname, errno);
    }
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    if (std::rename(src.c_str(), target.c_str()) != 0) {
      return PosixError(src, errno);
    }
    return Status::OK();
  }
};

}  // namespace

Env* NewPosixEnv() { return new PosixEnv(); }

}  // namespace lsmlab
