#ifndef LSMLAB_WAL_LOG_READER_H_
#define LSMLAB_WAL_LOG_READER_H_

#include <memory>
#include <string>

#include "storage/env.h"
#include "util/slice.h"
#include "wal/log_writer.h"

namespace lsmlab {
namespace wal {

/// Replays records written by wal::Writer. Corrupt or torn tail records are
/// skipped and reported, so a crash mid-write loses at most the unsynced
/// suffix — never previously acknowledged records.
class Reader {
 public:
  /// Interface for corruption reports during replay.
  class Reporter {
   public:
    virtual ~Reporter() = default;
    virtual void Corruption(size_t bytes, const Status& status) = 0;
  };

  /// Does not take ownership of `file` or `reporter`.
  Reader(SequentialFile* file, Reporter* reporter);

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  /// Reads the next complete record into *record (may point into *scratch).
  /// Returns false at end of input.
  bool ReadRecord(Slice* record, std::string* scratch);

 private:
  // Extended record types for internal signalling.
  enum { kEof = kMaxRecordType + 1, kBadRecord = kMaxRecordType + 2 };

  unsigned int ReadPhysicalRecord(Slice* result);
  void ReportCorruption(uint64_t bytes, const char* reason);

  SequentialFile* const file_;
  Reporter* const reporter_;
  std::unique_ptr<char[]> backing_store_;
  Slice buffer_;
  bool eof_ = false;
};

}  // namespace wal
}  // namespace lsmlab

#endif  // LSMLAB_WAL_LOG_READER_H_
