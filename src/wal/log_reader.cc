#include "wal/log_reader.h"

#include "util/coding.h"
#include "util/crc32c.h"

namespace lsmlab {
namespace wal {

Reader::Reader(SequentialFile* file, Reporter* reporter)
    : file_(file),
      reporter_(reporter),
      backing_store_(new char[kBlockSize]) {}

void Reader::ReportCorruption(uint64_t bytes, const char* reason) {
  if (reporter_ != nullptr) {
    reporter_->Corruption(static_cast<size_t>(bytes),
                          Status::Corruption(reason));
  }
}

bool Reader::ReadRecord(Slice* record, std::string* scratch) {
  scratch->clear();
  record->clear();
  bool in_fragmented_record = false;

  Slice fragment;
  while (true) {
    const unsigned int record_type = ReadPhysicalRecord(&fragment);
    switch (record_type) {
      case kFullType:
        if (in_fragmented_record) {
          ReportCorruption(scratch->size(), "partial record without end");
          scratch->clear();
        }
        *record = fragment;
        return true;

      case kFirstType:
        if (in_fragmented_record) {
          ReportCorruption(scratch->size(), "partial record without end");
        }
        scratch->assign(fragment.data(), fragment.size());
        in_fragmented_record = true;
        break;

      case kMiddleType:
        if (!in_fragmented_record) {
          ReportCorruption(fragment.size(),
                           "missing start of fragmented record");
        } else {
          scratch->append(fragment.data(), fragment.size());
        }
        break;

      case kLastType:
        if (!in_fragmented_record) {
          ReportCorruption(fragment.size(),
                           "missing start of fragmented record");
        } else {
          scratch->append(fragment.data(), fragment.size());
          *record = Slice(*scratch);
          return true;
        }
        break;

      case kEof:
        if (in_fragmented_record) {
          // Torn tail write: drop the partial record silently.
          scratch->clear();
        }
        return false;

      case kBadRecord:
        if (in_fragmented_record) {
          ReportCorruption(scratch->size(), "error in middle of record");
          in_fragmented_record = false;
          scratch->clear();
        }
        break;

      default:
        ReportCorruption(fragment.size() + scratch->size(),
                         "unknown record type");
        in_fragmented_record = false;
        scratch->clear();
        break;
    }
  }
}

unsigned int Reader::ReadPhysicalRecord(Slice* result) {
  while (true) {
    if (buffer_.size() < kHeaderSize) {
      if (!eof_) {
        // Skip block trailer padding and read the next block.
        buffer_.clear();
        Status status =
            file_->Read(kBlockSize, &buffer_, backing_store_.get());
        if (!status.ok()) {
          buffer_.clear();
          ReportCorruption(kBlockSize, "read error");
          eof_ = true;
          return kEof;
        }
        if (buffer_.size() < kBlockSize) {
          eof_ = true;
        }
        continue;
      }
      // Truncated header at EOF: implicit torn write; ignore.
      buffer_.clear();
      return kEof;
    }

    const char* header = buffer_.data();
    const uint32_t a = static_cast<uint8_t>(header[4]);
    const uint32_t b = static_cast<uint8_t>(header[5]);
    const unsigned int type = static_cast<uint8_t>(header[6]);
    const uint32_t length = a | (b << 8);
    if (kHeaderSize + length > buffer_.size()) {
      const size_t drop_size = buffer_.size();
      buffer_.clear();
      if (!eof_) {
        ReportCorruption(drop_size, "bad record length");
        return kBadRecord;
      }
      return kEof;  // torn tail
    }

    if (type == kZeroType && length == 0) {
      // Padding emitted by the writer (or preallocated space); skip.
      buffer_.clear();
      return kBadRecord;
    }

    // bounds: buffer_.size() >= kHeaderSize (7) was checked above.
    const uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(header));
    uint32_t actual_crc = crc32c::Value(header + 6, 1 + length);
    if (actual_crc != expected_crc) {
      const size_t drop_size = buffer_.size();
      buffer_.clear();
      ReportCorruption(drop_size, "checksum mismatch");
      return kBadRecord;
    }

    buffer_.remove_prefix(kHeaderSize + length);
    *result = Slice(header + kHeaderSize, length);
    return type;
  }
}

}  // namespace wal
}  // namespace lsmlab
