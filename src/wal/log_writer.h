#ifndef LSMLAB_WAL_LOG_WRITER_H_
#define LSMLAB_WAL_LOG_WRITER_H_

#include <cstdint>

#include "storage/env.h"
#include "util/slice.h"
#include "util/status.h"

namespace lsmlab {
namespace wal {

// Records are framed into 32 KiB blocks; a record that does not fit is
// split into FIRST/MIDDLE/LAST fragments. Frame header: masked CRC32C
// (fixed32) | length (fixed16) | type (uint8). The same format carries the
// write-ahead log and the manifest.
enum RecordType : uint8_t {
  kZeroType = 0,  // preallocated zeroed space
  kFullType = 1,
  kFirstType = 2,
  kMiddleType = 3,
  kLastType = 4,
};
constexpr int kMaxRecordType = kLastType;
constexpr size_t kBlockSize = 32768;
constexpr size_t kHeaderSize = 4 + 2 + 1;

/// Appends CRC-framed records to a WritableFile.
class Writer {
 public:
  /// Does not take ownership of `dest`, which must remain open while the
  /// Writer is in use.
  explicit Writer(WritableFile* dest);

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Status AddRecord(const Slice& record);

 private:
  Status EmitPhysicalRecord(RecordType type, const char* ptr, size_t length);

  WritableFile* dest_;
  size_t block_offset_ = 0;
};

}  // namespace wal
}  // namespace lsmlab

#endif  // LSMLAB_WAL_LOG_WRITER_H_
