#ifndef LSMLAB_UTIL_HASH_H_
#define LSMLAB_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

#include "util/slice.h"

namespace lsmlab {

/// 64-bit hash of data[0, n-1] (xxHash64-style mixing, from scratch).
///
/// All filters hash keys through this one function so that "shared hash
/// computation" across a tree's filters [Zhu et al., DAMON'21] falls out
/// naturally: the engine hashes a lookup key once and reuses the 64-bit
/// value for every level's filter probe.
uint64_t Hash64(const char* data, size_t n, uint64_t seed = 0);

inline uint64_t Hash64(const Slice& s, uint64_t seed = 0) {
  return Hash64(s.data(), s.size(), seed);
}

/// 32-bit convenience wrapper.
inline uint32_t Hash32(const Slice& s, uint32_t seed = 0) {
  return static_cast<uint32_t>(Hash64(s.data(), s.size(), seed));
}

/// Finalization-style remix for deriving independent hash streams from one
/// base hash (used by double hashing in the Bloom variants).
inline uint64_t Remix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_HASH_H_
