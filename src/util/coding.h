#ifndef LSMLAB_UTIL_CODING_H_
#define LSMLAB_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace lsmlab {

// Little-endian fixed-width and LEB128 varint encodings used throughout the
// on-disk formats (blocks, footers, WAL frames, manifest records).

inline void EncodeFixed32(char* dst, uint32_t value) {
  memcpy(dst, &value, sizeof(value));  // little-endian hosts only
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

/// Appends a LEB128 varint32 to *dst (1-5 bytes).
void PutVarint32(std::string* dst, uint32_t value);
/// Appends a LEB128 varint64 to *dst (1-10 bytes).
void PutVarint64(std::string* dst, uint64_t value);
/// Appends varint-length-prefixed bytes of `value` to *dst.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

/// Parses a varint32 from the front of *input, advancing it.
/// Returns false on malformed input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

/// Checked fixed-width reads from the front of *input, advancing it.
/// Returns false when fewer than 4/8 bytes remain. Untrusted-byte decoders
/// must use these (or an explicitly bounds-annotated DecodeFixed*) so the
/// parser contract stays grep-enforceable; see tools/check_parsers.sh.
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);

/// Lower-level raw-pointer variants; return nullptr on failure, otherwise a
/// pointer just past the parsed varint.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

/// Number of bytes PutVarint{32,64} would emit for `value`.
int VarintLength(uint64_t value);

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_CODING_H_
