#ifndef LSMLAB_UTIL_BITVECTOR_H_
#define LSMLAB_UTIL_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lsmlab {

/// Append-only bit vector with O(1) rank and O(log n) select, the substrate
/// for the LOUDS-dense succinct trie in the SuRF-style range filter.
///
/// Rank support is built once via BuildRank(); bits must not be appended
/// afterwards. rank1(i) counts set bits in [0, i); select1(k) returns the
/// position of the k-th (0-based) set bit.
class BitVector {
 public:
  BitVector() = default;

  void PushBack(bool bit) {
    const size_t word = size_ / 64;
    if (word >= words_.size()) {
      words_.push_back(0);
    }
    if (bit) {
      words_[word] |= (uint64_t{1} << (size_ % 64));
    }
    size_++;
  }

  bool Get(size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1;
  }

  size_t size() const { return size_; }

  /// Precomputes per-word cumulative popcounts. Call once after all
  /// PushBack calls.
  void BuildRank();

  /// Number of set bits in [0, i). Requires BuildRank().
  size_t Rank1(size_t i) const;

  /// Number of clear bits in [0, i). Requires BuildRank().
  size_t Rank0(size_t i) const { return i - Rank1(i); }

  /// Position of the k-th (0-based) set bit, or size() if out of range.
  /// Requires BuildRank().
  size_t Select1(size_t k) const;

  /// Approximate heap footprint in bytes (bits + rank directory).
  size_t MemoryUsage() const {
    return (words_.capacity() + rank_.capacity()) * sizeof(uint64_t);
  }

  size_t OneCount() const {
    return rank_.empty() ? 0 : total_ones_;
  }

 private:
  std::vector<uint64_t> words_;
  std::vector<uint64_t> rank_;  // rank_[w] = popcount of words_[0..w)
  size_t size_ = 0;
  size_t total_ones_ = 0;
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_BITVECTOR_H_
