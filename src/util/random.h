#ifndef LSMLAB_UTIL_RANDOM_H_
#define LSMLAB_UTIL_RANDOM_H_

#include <cstdint>

namespace lsmlab {

/// Deterministic pseudo-random generator (xorshift128+).
///
/// All randomness in lsmlab flows through this class with explicit seeds so
/// tests and benchmarks are reproducible run to run.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 seeding to spread low-entropy seeds over the state.
    s_[0] = SplitMix(&seed);
    s_[1] = SplitMix(&seed);
    if ((s_[0] | s_[1]) == 0) {
      s_[0] = 1;
    }
  }

  uint64_t Next64() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  uint32_t Next() { return static_cast<uint32_t>(Next64() >> 32); }

  /// Uniform value in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) { return Next64() % n; }

  /// Returns true with probability 1/n.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / (1ull << 53));
  }

  /// Skewed: picks base in [0, max_log] uniformly, then returns a uniform
  /// value in [0, 2^base). Favors small numbers (matches LevelDB's helper).
  uint64_t Skewed(int max_log) {
    return Uniform(uint64_t{1} << Uniform(max_log + 1));
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97f4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  uint64_t s_[2];
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_RANDOM_H_
