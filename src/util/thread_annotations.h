#ifndef LSMLAB_UTIL_THREAD_ANNOTATIONS_H_
#define LSMLAB_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attributes (LevelDB/RocksDB-style).
///
/// Annotating a mutex-protected member with GUARDED_BY(mu_) and every
/// *Locked() helper with REQUIRES(mu_) turns the compiler into a static
/// race detector: building with `clang++ -Wthread-safety -Werror` rejects
/// any access to guarded state without the right lock held, and any
/// lock-order or double-acquire mistake the analysis can see. On compilers
/// without the attribute (gcc, msvc) every macro degrades to a no-op, so
/// the annotations are free documentation there.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LSMLAB_TSA_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef LSMLAB_TSA_ATTR
#define LSMLAB_TSA_ATTR(x)  // no-op on non-clang compilers
#endif

// Class of a synchronization primitive (e.g. "mutex").
#define CAPABILITY(x) LSMLAB_TSA_ATTR(capability(x))

// RAII classes that acquire on construction / release on destruction.
#define SCOPED_CAPABILITY LSMLAB_TSA_ATTR(scoped_lockable)

// Data member readable/writable only with the given capability held.
#define GUARDED_BY(x) LSMLAB_TSA_ATTR(guarded_by(x))

// Pointer member whose *pointee* is protected by the given capability.
#define PT_GUARDED_BY(x) LSMLAB_TSA_ATTR(pt_guarded_by(x))

// Static lock-ordering declarations.
#define ACQUIRED_BEFORE(...) LSMLAB_TSA_ATTR(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) LSMLAB_TSA_ATTR(acquired_after(__VA_ARGS__))

// Function requires the capability held on entry (and still held on exit;
// it may release and reacquire internally).
#define REQUIRES(...) LSMLAB_TSA_ATTR(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  LSMLAB_TSA_ATTR(requires_shared_capability(__VA_ARGS__))

// Function acquires / releases the capability.
#define ACQUIRE(...) LSMLAB_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) LSMLAB_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) LSMLAB_TSA_ATTR(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) LSMLAB_TSA_ATTR(release_shared_capability(__VA_ARGS__))

// Function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) LSMLAB_TSA_ATTR(try_acquire_capability(__VA_ARGS__))

// Function must NOT be called with the capability held (non-reentrancy).
#define EXCLUDES(...) LSMLAB_TSA_ATTR(locks_excluded(__VA_ARGS__))

// Runtime assertion that informs the static analysis the lock is held.
#define ASSERT_CAPABILITY(x) LSMLAB_TSA_ATTR(assert_capability(x))

// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) LSMLAB_TSA_ATTR(lock_returned(x))

// Escape hatch: disables analysis for one function. Keep confined to the
// synchronization-primitive internals (mutex.h) — tools/lint.sh rejects
// uses elsewhere.
#define NO_THREAD_SAFETY_ANALYSIS LSMLAB_TSA_ATTR(no_thread_safety_analysis)

#endif  // LSMLAB_UTIL_THREAD_ANNOTATIONS_H_
