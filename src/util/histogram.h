#ifndef LSMLAB_UTIL_HISTOGRAM_H_
#define LSMLAB_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lsmlab {

/// Latency/size histogram with exponentially spaced buckets.
///
/// Used by the benchmark harness to report medians and tails without
/// storing every sample.
class Histogram {
 public:
  Histogram();

  void Add(double value);
  void Merge(const Histogram& other);
  void Clear();

  double Min() const { return count_ == 0 ? 0 : min_; }
  double Max() const { return count_ == 0 ? 0 : max_; }
  uint64_t Count() const { return count_; }
  double Sum() const { return sum_; }
  double Average() const { return count_ == 0 ? 0 : sum_ / count_; }

  /// Value at percentile p in [0, 100], linearly interpolated inside the
  /// containing bucket.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  /// Multi-line summary (count, avg, p50/p95/p99, min/max).
  std::string ToString() const;

 private:
  static const std::vector<double>& BucketLimits();

  double min_;
  double max_;
  uint64_t count_;
  double sum_;
  std::vector<uint64_t> buckets_;
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_HISTOGRAM_H_
