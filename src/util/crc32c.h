#ifndef LSMLAB_UTIL_CRC32C_H_
#define LSMLAB_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace lsmlab {
namespace crc32c {

/// Returns the CRC32C (Castagnoli polynomial) of data[0, n-1], extending
/// `init_crc` so large payloads can be checksummed incrementally.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

/// CRC32C of data[0, n-1].
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

constexpr uint32_t kMaskDelta = 0xa282ead8ul;

/// Returns a masked representation of `crc`.
///
/// Storage formats that embed CRCs of strings that themselves contain CRCs
/// mask the value so a recursive checksum does not degenerate (same scheme
/// as LevelDB/RocksDB log frames).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

/// Inverse of Mask().
inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace crc32c
}  // namespace lsmlab

#endif  // LSMLAB_UTIL_CRC32C_H_
