#ifndef LSMLAB_UTIL_LOCK_RANK_H_
#define LSMLAB_UTIL_LOCK_RANK_H_

/// Lock-rank table for the debug-build lock-order validator in
/// util/mutex.h.
///
/// Every long-lived engine mutex registers a rank at construction. A
/// thread may only acquire a mutex whose rank is strictly greater than
/// every ranked mutex it already holds, so any acquisition order that
/// could deadlock aborts deterministically in debug builds instead of
/// deadlocking rarely in production. Ranks encode the documented
/// acquisition order (DESIGN.md "Lock ordering"); the machine-readable
/// mirror of this table is tools/lock_ranks.tsv, and
/// tools/check_lock_io.py --check-ranks fails CI when the two drift.
///
/// The `allows_io` flag marks mutexes that intentionally serialize
/// blocking file I/O (the value-log writer lock, the in-memory /
/// fault-injection Env bookkeeping locks). Holding any mutex with
/// allows_io == false when a blocking Env call starts trips
/// AssertBlockingIoAllowed() in the storage layer -- the runtime half of
/// the static no-I/O-under-lock analysis in tools/check_lock_io.py.
///
/// X-macro row format: X(enumerator, rank, "Qualified::name", allows_io)
#define LSMLAB_LOCK_RANKS(X)                                   \
  X(kShardedDbMu, 5, "ShardedDB::mu_", false)                  \
  X(kDbMu, 10, "DBImpl::mu_", false)                           \
  X(kThreadPoolMu, 20, "ThreadPool::mu_", false)               \
  X(kValueLogMu, 30, "ValueLog::mu_", true)                    \
  X(kValueLogReadersMu, 40, "ValueLog::readers_mu_", true)     \
  X(kTableCacheMu, 50, "TableCache::mu_", false)               \
  X(kBlockCacheAccessMu, 60, "BlockCache::access_mu_", false)  \
  X(kLruShardMu, 70, "LruCache::Shard::mu", false)             \
  X(kDeletionsMu, 80, "DBImpl::deletions_mu_", false)          \
  X(kStatsHistMu, 90, "StatsRegistry::hist_mu_", false)        \
  X(kFaultStateMu, 95, "FaultInjectionEnv::State::mu", true)   \
  X(kMemEnvMu, 100, "MemEnv::mu_", true)                       \
  X(kPinTrackerMu, 110, "PinTracker::mu_", false)                \
  X(kArenaMu, 115, "Arena::blocks_mu_", false)

namespace lsmlab {

/// Acquisition order: lower rank first. kUnranked mutexes (the default
/// for test scaffolding and short-lived scratch locks) are exempt from
/// both the ordering check and the blocking-I/O guard.
enum class LockRank : int {
  kUnranked = 0,
#define LSMLAB_LOCK_RANK_ENUM(name, rank, str, io) name = (rank),
  LSMLAB_LOCK_RANKS(LSMLAB_LOCK_RANK_ENUM)
#undef LSMLAB_LOCK_RANK_ENUM
};

constexpr const char* LockRankName(LockRank r) {
  switch (r) {
    case LockRank::kUnranked:
      return "<unranked>";
#define LSMLAB_LOCK_RANK_NAME(name, rank, str, io) \
  case LockRank::name:                             \
    return str;
      LSMLAB_LOCK_RANKS(LSMLAB_LOCK_RANK_NAME)
#undef LSMLAB_LOCK_RANK_NAME
  }
  return "<invalid>";
}

/// True when the mutex is allowed to be held across blocking Env calls.
constexpr bool LockRankAllowsIo(LockRank r) {
  switch (r) {
    case LockRank::kUnranked:
      return true;
#define LSMLAB_LOCK_RANK_IO(name, rank, str, io) \
  case LockRank::name:                           \
    return (io);
      LSMLAB_LOCK_RANKS(LSMLAB_LOCK_RANK_IO)
#undef LSMLAB_LOCK_RANK_IO
  }
  return true;
}

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_LOCK_RANK_H_
