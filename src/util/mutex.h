#ifndef LSMLAB_UTIL_MUTEX_H_
#define LSMLAB_UTIL_MUTEX_H_

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <mutex>
#include <thread>
#include <vector>

#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace lsmlab {

class CondVar;

#ifndef NDEBUG
namespace lock_debug {

/// Per-thread stack of ranked mutexes currently held, newest last.
/// Unranked mutexes never appear here. Drives the rank-inversion abort
/// in Mutex::Lock() and the blocking-I/O guard below.
struct HeldLock {
  const void* mu;
  LockRank rank;
};

inline std::vector<HeldLock>& HeldLockStack() {
  static thread_local std::vector<HeldLock> stack;
  return stack;
}

/// Depth of active ScopedBlockingIoAllowed scopes on this thread.
inline int& BlockingIoAllowedDepth() {
  static thread_local int depth = 0;
  return depth;
}

}  // namespace lock_debug

/// Number of ranked mutexes the calling thread currently holds (debug
/// bookkeeping introspection for tests).
inline size_t HeldRankedLockCount() {
  return lock_debug::HeldLockStack().size();
}
#else
inline size_t HeldRankedLockCount() { return 0; }
#endif

/// Aborts (debug builds) when the calling thread holds any ranked
/// no-I/O engine mutex while a blocking storage call starts. Called from
/// the IoStats chokepoints every Env implementation reports through, so
/// each ctest run dynamically validates the invariant that
/// tools/check_lock_io.py proves statically. `what` names the blocking
/// operation for the abort message.
inline void AssertBlockingIoAllowed(const char* what) {
#ifndef NDEBUG
  if (lock_debug::BlockingIoAllowedDepth() > 0) {
    return;
  }
  for (const lock_debug::HeldLock& held : lock_debug::HeldLockStack()) {
    if (!LockRankAllowsIo(held.rank)) {
      std::fprintf(stderr,
                   "lsmlab: blocking I/O (%s) while holding engine mutex %s; "
                   "audited exceptions must use ScopedBlockingIoAllowed\n",
                   what, LockRankName(held.rank));
      std::abort();
    }
  }
#else
  (void)what;
#endif
}

/// RAII exemption for the audited call sites where blocking I/O under an
/// engine mutex is by design (recovery, inline-mode flush, manifest
/// install under mu_). Every use must match an entry in
/// tools/lock_io_audit.list so the static and dynamic audit lists stay
/// one list.
class ScopedBlockingIoAllowed {
 public:
#ifndef NDEBUG
  explicit ScopedBlockingIoAllowed(const char* why) {
    (void)why;  // documentation at the call site
    lock_debug::BlockingIoAllowedDepth()++;
  }
  ~ScopedBlockingIoAllowed() { lock_debug::BlockingIoAllowedDepth()--; }
#else
  explicit ScopedBlockingIoAllowed(const char* why) { (void)why; }
  ~ScopedBlockingIoAllowed() = default;
#endif

  ScopedBlockingIoAllowed(const ScopedBlockingIoAllowed&) = delete;
  ScopedBlockingIoAllowed& operator=(const ScopedBlockingIoAllowed&) = delete;
};

/// The engine's only mutex. Wraps std::mutex with the clang
/// thread-safety-analysis capability attributes so that `GUARDED_BY(mu_)`
/// members and `REQUIRES(mu_)` helpers are checked at compile time under
/// `clang++ -Wthread-safety` (tools/check_thread_safety.sh). Raw
/// std::mutex / std::lock_guard / std::unique_lock are banned outside this
/// header (tools/lint.sh): unannotated locks are invisible to the analysis.
///
/// Debug builds additionally track the holding thread, so AssertHeld()
/// aborts at runtime when the discipline is violated on a compiler without
/// the static analysis.
///
/// Mutexes constructed with a LockRank additionally participate in the
/// debug-build lock-order validator: Lock() aborts when the calling
/// thread already holds a ranked mutex of equal or greater rank, with
/// both lock names in the message. TryLock() and CondVar reacquisition
/// are exempt from the ordering check (neither can deadlock) but still
/// maintain the held-lock stack.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank) : rank_(rank) {}
  ~Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    DebugCheckRank();
    mu_.lock();
    DebugMarkHeld();
  }

  void Unlock() RELEASE() {
    DebugMarkReleased();
    mu_.unlock();
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) {
      return false;
    }
    DebugMarkHeld();
    return true;
  }

  /// Runtime check (debug builds) + static-analysis assertion that the
  /// calling thread holds this mutex. Use at the top of a helper whose
  /// REQUIRES contract cannot be expressed to the analysis (e.g. callbacks).
  void AssertHeld() ASSERT_CAPABILITY(this) { assert(HeldByCurrentThread()); }

#ifndef NDEBUG
  /// Debug builds only; release builds cannot verify and return true.
  bool HeldByCurrentThread() const {
    return holder_.load(std::memory_order_relaxed) ==
           std::this_thread::get_id();
  }
#else
  bool HeldByCurrentThread() const { return true; }
#endif

 private:
  friend class CondVar;

#ifndef NDEBUG
  void DebugMarkHeld() {
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    if (rank_ != LockRank::kUnranked) {
      lock_debug::HeldLockStack().push_back({this, rank_});
    }
  }
  void DebugMarkReleased() {
    holder_.store(std::thread::id(), std::memory_order_relaxed);
    if (rank_ != LockRank::kUnranked) {
      // Engine locks are usually released LIFO, but hand-over-hand
      // sequences may release out of order; remove the newest entry for
      // this mutex wherever it sits.
      auto& stack = lock_debug::HeldLockStack();
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (it->mu == this) {
          stack.erase(std::next(it).base());
          return;
        }
      }
      assert(false && "released a ranked mutex not on the held stack");
    }
  }
  /// Abort (before blocking on the lock) when acquiring this mutex would
  /// invert the documented lock order.
  void DebugCheckRank() const {
    if (rank_ == LockRank::kUnranked) {
      return;
    }
    for (const lock_debug::HeldLock& held : lock_debug::HeldLockStack()) {
      if (held.rank >= rank_) {
        std::fprintf(
            stderr,
            "lsmlab: lock rank inversion: acquiring %s (rank %d) while "
            "holding %s (rank %d); see tools/lock_ranks.tsv\n",
            LockRankName(rank_), static_cast<int>(rank_),
            LockRankName(held.rank), static_cast<int>(held.rank));
        std::abort();
      }
    }
  }
#else
  void DebugMarkHeld() {}
  void DebugMarkReleased() {}
  void DebugCheckRank() const {}
#endif

  std::mutex mu_;
  const LockRank rank_ = LockRank::kUnranked;
#ifndef NDEBUG
  std::atomic<std::thread::id> holder_{};
#endif
};

/// Condition variable bound to one Mutex for its lifetime. Callers must
/// hold the mutex around Wait()/TimedWait(); the analysis cannot express
/// "requires the mutex passed at construction", so the requirement is
/// enforced by the caller's own REQUIRES annotation plus the debug-build
/// holder check.
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) { assert(mu != nullptr); }

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases the mutex, blocks until signalled, reacquires.
  void Wait() NO_THREAD_SAFETY_ANALYSIS {
    assert(mu_->HeldByCurrentThread());
    mu_->DebugMarkReleased();
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership returns to the caller's discipline
    mu_->DebugMarkHeld();
  }

  /// Like Wait() but gives up after `timeout`. Returns true if the wait
  /// timed out, false if it was signalled (spurious wakeups report false,
  /// as with std::condition_variable).
  bool TimedWait(std::chrono::microseconds timeout)
      NO_THREAD_SAFETY_ANALYSIS {
    assert(mu_->HeldByCurrentThread());
    mu_->DebugMarkReleased();
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    mu_->DebugMarkHeld();
    return status == std::cv_status::timeout;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
  Mutex* const mu_;
};

/// RAII scope lock, visible to the static analysis.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_MUTEX_H_
