#ifndef LSMLAB_UTIL_MUTEX_H_
#define LSMLAB_UTIL_MUTEX_H_

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "util/thread_annotations.h"

namespace lsmlab {

class CondVar;

/// The engine's only mutex. Wraps std::mutex with the clang
/// thread-safety-analysis capability attributes so that `GUARDED_BY(mu_)`
/// members and `REQUIRES(mu_)` helpers are checked at compile time under
/// `clang++ -Wthread-safety` (tools/check_thread_safety.sh). Raw
/// std::mutex / std::lock_guard / std::unique_lock are banned outside this
/// header (tools/lint.sh): unannotated locks are invisible to the analysis.
///
/// Debug builds additionally track the holding thread, so AssertHeld()
/// aborts at runtime when the discipline is violated on a compiler without
/// the static analysis.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    mu_.lock();
    DebugMarkHeld();
  }

  void Unlock() RELEASE() {
    DebugMarkReleased();
    mu_.unlock();
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) {
      return false;
    }
    DebugMarkHeld();
    return true;
  }

  /// Runtime check (debug builds) + static-analysis assertion that the
  /// calling thread holds this mutex. Use at the top of a helper whose
  /// REQUIRES contract cannot be expressed to the analysis (e.g. callbacks).
  void AssertHeld() ASSERT_CAPABILITY(this) { assert(HeldByCurrentThread()); }

#ifndef NDEBUG
  /// Debug builds only; release builds cannot verify and return true.
  bool HeldByCurrentThread() const {
    return holder_.load(std::memory_order_relaxed) ==
           std::this_thread::get_id();
  }
#else
  bool HeldByCurrentThread() const { return true; }
#endif

 private:
  friend class CondVar;

#ifndef NDEBUG
  void DebugMarkHeld() {
    holder_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }
  void DebugMarkReleased() {
    holder_.store(std::thread::id(), std::memory_order_relaxed);
  }
#else
  void DebugMarkHeld() {}
  void DebugMarkReleased() {}
#endif

  std::mutex mu_;
#ifndef NDEBUG
  std::atomic<std::thread::id> holder_{};
#endif
};

/// Condition variable bound to one Mutex for its lifetime. Callers must
/// hold the mutex around Wait()/TimedWait(); the analysis cannot express
/// "requires the mutex passed at construction", so the requirement is
/// enforced by the caller's own REQUIRES annotation plus the debug-build
/// holder check.
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) { assert(mu != nullptr); }

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases the mutex, blocks until signalled, reacquires.
  void Wait() NO_THREAD_SAFETY_ANALYSIS {
    assert(mu_->HeldByCurrentThread());
    mu_->DebugMarkReleased();
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership returns to the caller's discipline
    mu_->DebugMarkHeld();
  }

  /// Like Wait() but gives up after `timeout`. Returns true if the wait
  /// timed out, false if it was signalled (spurious wakeups report false,
  /// as with std::condition_variable).
  bool TimedWait(std::chrono::microseconds timeout)
      NO_THREAD_SAFETY_ANALYSIS {
    assert(mu_->HeldByCurrentThread());
    mu_->DebugMarkReleased();
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    mu_->DebugMarkHeld();
    return status == std::cv_status::timeout;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
  Mutex* const mu_;
};

/// RAII scope lock, visible to the static analysis.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_MUTEX_H_
