#include "util/crc32c.h"

#include <array>

namespace lsmlab {
namespace crc32c {

namespace {

// Table-driven CRC32C (Castagnoli, reflected polynomial 0x82F63B78),
// generated at static-init time; the table is trivially destructible.
struct Crc32cTable {
  std::array<uint32_t, 256> t;
  constexpr Crc32cTable() : t() {
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int j = 0; j < 8; j++) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
      t[i] = crc;
    }
  }
};

constexpr Crc32cTable kTable;

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  uint32_t crc = init_crc ^ 0xFFFFFFFFu;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; i++) {
    crc = kTable.t[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace crc32c
}  // namespace lsmlab
