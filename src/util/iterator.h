#ifndef LSMLAB_UTIL_ITERATOR_H_
#define LSMLAB_UTIL_ITERATOR_H_

#include "util/slice.h"
#include "util/status.h"

namespace lsmlab {

/// Ordered cursor over key/value pairs.
///
/// The same interface is implemented by memtables, data blocks, SSTables,
/// and the merging/DB iterators, so the read path composes uniformly.
/// An iterator is either positioned at a key/value pair (Valid() == true)
/// or not. key()/value() slices remain valid until the next mutation of the
/// iterator.
class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator() = default;

  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  virtual void SeekToLast() = 0;
  /// Positions at the first entry with key >= target.
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;
  virtual void Prev() = 0;
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;
  /// Non-OK iff the iterator encountered corruption or an I/O error.
  virtual Status status() const = 0;
};

/// An empty iterator carrying `status` (OK by default).
Iterator* NewEmptyIterator(const Status& status = Status::OK());

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_ITERATOR_H_
