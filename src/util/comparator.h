#ifndef LSMLAB_UTIL_COMPARATOR_H_
#define LSMLAB_UTIL_COMPARATOR_H_

#include <string>

#include "util/slice.h"

namespace lsmlab {

/// Total order over user keys. The engine, SSTables, and all index/filter
/// structures that partition the key space consult the same comparator.
class Comparator {
 public:
  virtual ~Comparator() = default;

  /// <0, 0, >0 if a is <, ==, > b.
  virtual int Compare(const Slice& a, const Slice& b) const = 0;

  /// Name embedded in SSTable footers; opening a table with a mismatched
  /// comparator name fails fast instead of silently mis-sorting.
  virtual const char* Name() const = 0;

  /// If *start < limit, may shorten *start to a string in [start, limit).
  /// Used to shrink index-block divider keys (fence pointers).
  virtual void FindShortestSeparator(std::string* start,
                                     const Slice& limit) const = 0;

  /// May shorten *key to a string >= *key (terminal divider of a table).
  virtual void FindShortSuccessor(std::string* key) const = 0;
};

/// Singleton bytewise (memcmp-order) comparator.
const Comparator* BytewiseComparator();

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_COMPARATOR_H_
