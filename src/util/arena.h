#ifndef LSMLAB_UTIL_ARENA_H_
#define LSMLAB_UTIL_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace lsmlab {

/// Bump allocator backing the memtable skiplist.
///
/// Allocations are never individually freed; all memory is released when the
/// Arena is destroyed (which is when the memtable is dropped after a flush).
/// MemoryUsage() is what the engine compares against the write-buffer size
/// to decide when to flush.
class Arena {
 public:
  Arena();
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns a pointer to a newly allocated block of `bytes` bytes.
  char* Allocate(size_t bytes);

  /// Allocate with the platform's pointer alignment (for node structs).
  char* AllocateAligned(size_t bytes);

  /// Total memory reserved by the arena (including block headroom).
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  char* alloc_ptr_;
  size_t alloc_bytes_remaining_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_;
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_ARENA_H_
