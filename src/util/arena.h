#ifndef LSMLAB_UTIL_ARENA_H_
#define LSMLAB_UTIL_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/mutex.h"

namespace lsmlab {

/// Bump allocator backing the memtable skiplist.
///
/// Allocations are never individually freed; all memory is released when the
/// Arena is destroyed (which is when the memtable is dropped after a flush).
/// MemoryUsage() is what the engine compares against the write-buffer size
/// to decide when to flush.
///
/// Two allocation paths share the block list:
///  - Allocate()/AllocateAligned(): the classic single-writer bump pointer.
///  - AllocateConcurrent()/AllocateAlignedConcurrent(): each thread bumps a
///    private per-thread block (no synchronization on the hot path); only
///    block refills take blocks_mu_. Used by the parallel group apply,
///    where group-commit followers insert into the memtable simultaneously.
/// The two paths may be interleaved over the arena's lifetime but carry
/// their own contracts: the serial calls assume no other allocation (of
/// either flavor) is in flight, exactly the single-writer discipline the
/// serial memtable Add path already has.
class Arena {
 public:
  Arena();
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns a pointer to a newly allocated block of `bytes` bytes.
  char* Allocate(size_t bytes);

  /// Allocate with the platform's pointer alignment (for node structs).
  char* AllocateAligned(size_t bytes);

  /// Thread-safe Allocate: any number of threads may call concurrently.
  char* AllocateConcurrent(size_t bytes) { return ConcurrentImpl(bytes, 1); }

  /// Thread-safe AllocateAligned.
  char* AllocateAlignedConcurrent(size_t bytes);

  /// Total memory reserved by the arena (including block headroom).
  /// Relaxed atomic read; safe from any thread, including while
  /// concurrent allocations run.
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  char* AllocateFallback(size_t bytes);
  char* ConcurrentImpl(size_t bytes, size_t align);
  char* AllocateNewBlock(size_t block_bytes) REQUIRES(blocks_mu_);

  /// Never-reused id distinguishing this arena in the per-thread block
  /// cache (see arena.cc): a thread slot left over from a destroyed arena
  /// can never match a live one.
  const uint64_t id_;

  char* alloc_ptr_;
  size_t alloc_bytes_remaining_;
  /// Guards the block list for both paths (serial refills take it too —
  /// uncontended — so every push_back is under the same lock).
  Mutex blocks_mu_{LockRank::kArenaMu};
  std::vector<std::unique_ptr<char[]>> blocks_ GUARDED_BY(blocks_mu_);
  std::atomic<size_t> memory_usage_;
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_ARENA_H_
