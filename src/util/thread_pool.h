#ifndef LSMLAB_UTIL_THREAD_POOL_H_
#define LSMLAB_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lsmlab {

/// Fixed-size pool of background threads draining a FIFO work queue.
///
/// Schedule() never blocks. The destructor finishes all queued work before
/// joining, so an in-flight task (e.g. a scheduled memtable flush) is never
/// dropped; tasks that must observe shutdown should check their own flag.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `work` to run on one of the pool's threads.
  void Schedule(std::function<void()> work);

  /// Blocks until the queue is empty and no task is executing.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // work arrived or shutdown began
  std::condition_variable idle_cv_;  // a task finished; the pool may be idle
  std::deque<std::function<void()>> queue_;
  int running_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_THREAD_POOL_H_
