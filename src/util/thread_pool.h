#ifndef LSMLAB_UTIL_THREAD_POOL_H_
#define LSMLAB_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace lsmlab {

/// Fixed-size pool of background threads draining a FIFO work queue.
///
/// Lifecycle is an explicit state machine (checked under mu_):
///
///   kRunning --Shutdown()--> kDraining --queue empty, workers joined-->
///   kStopped
///
/// Schedule() never blocks; it returns false (dropping the task) once
/// shutdown has begun, so a racing producer can never enqueue work that no
/// worker will run. Work queued before shutdown is always finished — an
/// in-flight task (e.g. a scheduled memtable flush) is never dropped;
/// tasks that must observe shutdown should check their own flag.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `work` to run on one of the pool's threads. Returns false —
  /// and does not enqueue — if Shutdown() has already begun.
  [[nodiscard]] bool Schedule(std::function<void()> work);

  /// Blocks until the queue is empty and no task is executing.
  void WaitIdle();

  /// Stops accepting work, finishes everything already queued, and joins
  /// the worker threads. Idempotent; safe to call from any thread (a
  /// concurrent caller blocks until the pool reaches kStopped). Invoked by
  /// the destructor.
  void Shutdown();

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// High-water mark of tasks that were ever executing at the same moment.
  /// Monotonic; lets tests assert that work from independent producers
  /// (e.g. different DB shards) genuinely overlapped, without timing.
  int concurrency_high_water();

 private:
  enum class State { kRunning, kDraining, kStopped };

  void WorkerLoop();

  Mutex mu_{LockRank::kThreadPoolMu};
  CondVar work_cv_{&mu_};  // work arrived or shutdown began
  CondVar idle_cv_{&mu_};  // a task finished or the pool stopped
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  int running_ GUARDED_BY(mu_) = 0;
  int high_water_ GUARDED_BY(mu_) = 0;
  State state_ GUARDED_BY(mu_) = State::kRunning;
  std::vector<std::thread> threads_;  // immutable after construction
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_THREAD_POOL_H_
