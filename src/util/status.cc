#include "util/status.h"

namespace lsmlab {

std::string Status::ToString() const {
  const char* type;
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kNotFound:
      type = "NotFound: ";
      break;
    case Code::kCorruption:
      type = "Corruption: ";
      break;
    case Code::kNotSupported:
      type = "NotSupported: ";
      break;
    case Code::kInvalidArgument:
      type = "InvalidArgument: ";
      break;
    case Code::kIOError:
      type = "IOError: ";
      break;
    default:
      type = "Unknown: ";
      break;
  }
  std::string result(type);
  result.append(msg_);
  return result;
}

}  // namespace lsmlab
