#include "util/thread_pool.h"

namespace lsmlab {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) {
    num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; i++) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Schedule(std::function<void()> work) {
  {
    MutexLock lock(&mu_);
    if (state_ != State::kRunning) {
      return false;
    }
    queue_.push_back(std::move(work));
  }
  work_cv_.Signal();
  return true;
}

int ThreadPool::concurrency_high_water() {
  MutexLock lock(&mu_);
  return high_water_;
}

void ThreadPool::WaitIdle() {
  MutexLock lock(&mu_);
  while (!queue_.empty() || running_ != 0) {
    idle_cv_.Wait();
  }
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(&mu_);
    if (state_ != State::kRunning) {
      // Another thread is already draining (or has finished); wait for the
      // terminal state so every Shutdown() caller sees the same postcondition.
      while (state_ != State::kStopped) {
        idle_cv_.Wait();
      }
      return;
    }
    state_ = State::kDraining;
  }
  work_cv_.SignalAll();
  for (std::thread& t : threads_) {
    t.join();
  }
  {
    MutexLock lock(&mu_);
    state_ = State::kStopped;
  }
  idle_cv_.SignalAll();
}

void ThreadPool::WorkerLoop() {
  mu_.Lock();
  while (true) {
    while (state_ == State::kRunning && queue_.empty()) {
      work_cv_.Wait();
    }
    if (queue_.empty()) {
      break;  // draining and fully drained
    }
    std::function<void()> work = std::move(queue_.front());
    queue_.pop_front();
    running_++;
    if (running_ > high_water_) {
      high_water_ = running_;
    }
    mu_.Unlock();
    work();
    mu_.Lock();
    running_--;
    if (queue_.empty() && running_ == 0) {
      idle_cv_.SignalAll();
    }
  }
  mu_.Unlock();
}

}  // namespace lsmlab
