#include "util/thread_pool.h"

namespace lsmlab {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) {
    num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; i++) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Schedule(std::function<void()> work) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(work));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      return;  // stop_ set and all queued work drained
    }
    std::function<void()> work = std::move(queue_.front());
    queue_.pop_front();
    running_++;
    lock.unlock();
    work();
    lock.lock();
    running_--;
    if (queue_.empty() && running_ == 0) {
      idle_cv_.notify_all();
    }
  }
}

}  // namespace lsmlab
